package infoshield

// One benchmark per table/figure of the paper (DESIGN.md §4 maps each to
// its experiment runner), plus micro-benchmarks for the pipeline stages.
// Benchmarks run the Small experiment scale so `go test -bench=.` stays
// laptop-friendly; `cmd/experiments -scale full` is the paper-scale path.

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"infoshield/internal/align"
	"infoshield/internal/core"
	"infoshield/internal/datagen"
	"infoshield/internal/experiments"
	"infoshield/internal/poa"
	"infoshield/internal/tfidf"
	"infoshield/internal/tokenize"
)

// BenchmarkToyExample covers Tables II-V: the full pipeline on the paper's
// worked example.
func BenchmarkToyExample(b *testing.B) {
	docs := demoCorpus()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Detect(docs, Config{})
	}
}

// BenchmarkFig1Precision regenerates Figure 1 (left).
func BenchmarkFig1Precision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig1Precision(io.Discard, experiments.Small)
	}
}

// BenchmarkFig2Scalability regenerates Figure 2 (the runtime sweep is the
// measurement itself; the benchmark wraps one full sweep).
func BenchmarkFig2Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig2Scalability(io.Discard, experiments.Small)
	}
}

// BenchmarkTable8Twitter regenerates the Twitter half of Table VIII.
func BenchmarkTable8Twitter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table8Twitter(io.Discard, experiments.Small)
	}
}

// BenchmarkTable8HT regenerates the human-trafficking half of Table VIII.
func BenchmarkTable8HT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table8HT(io.Discard, experiments.Small)
	}
}

// BenchmarkTable9Multilingual regenerates Table IX.
func BenchmarkTable9Multilingual(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table9Multilingual(io.Discard)
	}
}

// BenchmarkTable10Slots regenerates Table X.
func BenchmarkTable10Slots(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table10Slots(io.Discard)
	}
}

// BenchmarkTable11HT regenerates Table XI.
func BenchmarkTable11HT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table11HT(io.Discard)
	}
}

// BenchmarkFig3RelativeLength regenerates Figure 3.
func BenchmarkFig3RelativeLength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig3RelativeLength(io.Discard, experiments.Small)
	}
}

// BenchmarkFig4Ngram regenerates Figure 4.
func BenchmarkFig4Ngram(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig4Ngram(io.Discard, experiments.Small)
	}
}

// BenchmarkAblations runs the DESIGN.md §5 ablation suite.
func BenchmarkAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationSlots(io.Discard, experiments.Small)
		experiments.AblationMSA(io.Discard, experiments.Small)
		experiments.AblationConsensusSearch(io.Discard, experiments.Small)
		experiments.AblationCoarseStrictness(io.Discard, experiments.Small)
	}
}

// --- pipeline-stage micro-benchmarks ---

func twitterTexts(b *testing.B, accounts int) []string {
	b.Helper()
	c := datagen.Twitter(datagen.TwitterConfig{Seed: 1, GenuineAccounts: accounts, BotAccounts: accounts})
	return c.Texts()
}

// BenchmarkPipelineEndToEnd measures full Detect throughput on mixed
// corpora of ~2k and ~8k tweets (docs/op scales linearly per Fig 2 /
// Lemma 2; the two sizes track the scaling curve, not just one point).
func BenchmarkPipelineEndToEnd(b *testing.B) {
	for _, accounts := range []int{50, 200} {
		texts := twitterTexts(b, accounts)
		b.Run(fmt.Sprintf("accounts=%d", accounts), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Detect(texts, Config{})
			}
		})
	}
}

// BenchmarkCoarse isolates InfoShield-Coarse (tf-idf + components).
func BenchmarkCoarse(b *testing.B) {
	texts := twitterTexts(b, 50)
	var tk tokenize.Tokenizer
	words := make([][]string, len(texts))
	for i, t := range texts {
		words[i] = tk.Tokens(t)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Coarse(words, core.Options{})
	}
}

// BenchmarkCoarseParallel sweeps the coarse pass's worker pool so the
// scaling curve across cores is tracked, not just the default point.
func BenchmarkCoarseParallel(b *testing.B) {
	texts := twitterTexts(b, 50)
	var tk tokenize.Tokenizer
	words := tk.All(texts, 0)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.Coarse(words, core.Options{Workers: workers})
			}
		})
	}
}

// BenchmarkTopPhrases isolates the tf-idf phrase extraction through the
// string-keyed compatibility wrapper (the pre-rewrite measurement point).
func BenchmarkTopPhrases(b *testing.B) {
	texts := twitterTexts(b, 50)
	var tk tokenize.Tokenizer
	words := make([][]string, len(texts))
	for i, t := range texts {
		words[i] = tk.Tokens(t)
	}
	ex := &tfidf.Extractor{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.TopPhrases(words)
	}
}

// BenchmarkTopPhraseIDs measures the hashed-key extraction path the
// pipeline actually runs (no string materialization at all).
func BenchmarkTopPhraseIDs(b *testing.B) {
	texts := twitterTexts(b, 50)
	var tk tokenize.Tokenizer
	words := tk.All(texts, 0)
	vocab := tokenize.NewVocab()
	tokens := make([][]int, len(words))
	for i, w := range words {
		tokens[i] = vocab.Encode(w)
	}
	ex := &tfidf.Extractor{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.TopPhraseIDs(tokens, vocab)
	}
}

// fineInputs runs the pipeline front half (tokenize → encode → coarse)
// so the fine-stage benchmarks measure refinement alone.
func fineInputs(texts []string) (clusters [][]int, tokens [][]int, top [][]tfidf.PhraseID, v int) {
	var tk tokenize.Tokenizer
	words := tk.All(texts, 0)
	vocab := tokenize.NewVocab()
	tokens = make([][]int, len(words))
	for i, w := range words {
		tokens[i] = vocab.Encode(w)
	}
	clusters, top = core.Coarse(words, core.Options{})
	return clusters, tokens, top, vocab.Size()
}

// BenchmarkFine isolates InfoShield-Fine (screen → MSA → consensus →
// slots) on the mixed Twitter corpus, sweeping the worker pool.
func BenchmarkFine(b *testing.B) {
	clusters, tokens, top, v := fineInputs(twitterTexts(b, 50))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.Refine(clusters, tokens, top, v, core.Options{Workers: workers})
			}
		})
	}
}

// BenchmarkFineSkewed runs the fine pass on the straggler-shaped corpus
// (one mega cluster plus many small ones): the case the largest-first
// schedule and the nested screening fan-out exist for.
func BenchmarkFineSkewed(b *testing.B) {
	clusters, tokens, top, v := fineInputs(skewedTexts())
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				core.Refine(clusters, tokens, top, v, core.Options{Workers: workers})
			}
		})
	}
}

// BenchmarkPairwiseAlign measures the token-level Needleman-Wunsch on
// tweet-length sequences (the Fine pass's inner loop).
func BenchmarkPairwiseAlign(b *testing.B) {
	ref := make([]int, 30)
	doc := make([]int, 32)
	for i := range ref {
		ref[i] = i
	}
	copy(doc, ref)
	doc[7] = 99
	doc[30], doc[31] = 100, 101
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		align.Pairwise(ref, doc)
	}
}

// BenchmarkPOABuild measures partial-order alignment of a 20-document
// near-duplicate cluster.
func BenchmarkPOABuild(b *testing.B) {
	base := make([]int, 25)
	for i := range base {
		base[i] = i
	}
	seqs := make([][]int, 20)
	for s := range seqs {
		dup := append([]int(nil), base...)
		dup[s%len(dup)] = 1000 + s
		seqs[s] = dup
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		poa.Build(seqs)
	}
}

// BenchmarkStreamDetector measures incremental template matching (the
// per-document cost of the streaming deployment path).
func BenchmarkStreamDetector(b *testing.B) {
	s := NewStreamDetector(Config{}, 1<<30)
	var docs []string
	for i := 0; i < 25; i++ {
		docs = append(docs, "flash sale grab the deluxe winter bundle now at shop.example today")
	}
	for i := 0; i < 300; i++ {
		docs = append(docs, fmt.Sprintf(
			"sb%daa sb%dbb sb%dcc sb%ddd sb%dee sb%dff sb%dgg sb%dhh", i, i, i, i, i, i, i, i))
	}
	s.AddBatch(docs)
	s.Flush()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add("flash sale grab the deluxe winter bundle now at shop.example today")
	}
}

// seedStreamTemplates mines `campaigns` distinct templates into s by
// flushing one strongly-templated near-duplicate cluster per campaign
// (entirely disjoint vocabularies, so the coarse pass cannot merge them).
// It returns a probe text that matches campaign 0.
func seedStreamTemplates(b *testing.B, s *StreamDetector, campaigns int) string {
	b.Helper()
	var docs []string
	for c := 0; c < campaigns; c++ {
		for i := 0; i < 8; i++ {
			docs = append(docs, fmt.Sprintf(
				"promo%03da alpha%03db beta%03dc gamma%03dd delta%03de epsilon%03df visit site%03d-%02d.example now",
				c, c, c, c, c, c, c, i))
		}
	}
	s.AddBatch(docs)
	s.Flush()
	if got := s.NumTemplates(); got < campaigns*9/10 {
		b.Fatalf("seeded only %d/%d templates", got, campaigns)
	}
	return "promo000a alpha000b beta000c gamma000d delta000e epsilon000f visit site000-99.example now"
}

// BenchmarkStreamAdd measures the steady-state per-document serving cost
// with many mined templates — the regime where the detector has succeeded
// and every incoming document must be screened against hundreds of
// campaigns (the inverted-index pruning path's reason to exist).
func BenchmarkStreamAdd(b *testing.B) {
	s := NewStreamDetector(Config{}, 1<<30)
	probe := seedStreamTemplates(b, s, 220)
	before := s.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Add(probe)
	}
	b.StopTimer()
	st := s.Stats()
	if c := st.Candidates - before.Candidates; c > 0 {
		b.ReportMetric(float64(st.DPPruned-before.DPPruned)/float64(c), "dpskip/candidate")
	}
}

// BenchmarkStreamAddBatch sweeps the batched serving path's worker pool
// at the same many-templates steady state.
func BenchmarkStreamAddBatch(b *testing.B) {
	const batch = 64
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := NewStreamDetector(Config{Workers: workers}, 1<<30)
			seedStreamTemplates(b, s, 220)
			texts := make([]string, batch)
			for i := range texts {
				c := i % 220
				texts[i] = fmt.Sprintf(
					"promo%03da alpha%03db beta%03dc gamma%03dd delta%03de epsilon%03df visit site%03d-%02d.example now",
					c, c, c, c, c, c, c, 90+i%10)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.AddBatch(texts)
			}
		})
	}
}

// BenchmarkStreamAddScale pins the template-count scaling curve of the
// serving path: steady-state Add cost against 1k/10k/100k bulk-loaded
// multi-market templates (datagen.ScaleTemplates — market-local rare
// vocabulary plus shared serving words that exercise the saturated-token
// tier). dpskip/candidate is the DP-skip rate at that scale and
// cand/probe the mean candidate set surviving the tiered index; sublinear
// scaling means ns/op grows far slower than the template count.
func BenchmarkStreamAddScale(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		b.Run(fmt.Sprintf("templates=%d", n), func(b *testing.B) {
			s := NewStreamDetector(Config{}, 1<<30)
			set := datagen.ScaleTemplates(datagen.ScaleConfig{Seed: 1, Templates: n})
			for _, tmpl := range set.Templates {
				if _, err := s.RegisterTemplate(tmpl.Words, tmpl.Wild); err != nil {
					b.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(2))
			probes := make([]string, 512)
			for i := range probes {
				if i%8 == 7 {
					probes[i] = set.Noise(rng)
				} else {
					probes[i] = set.Probe(rng, rng.Intn(n))
				}
			}
			before := s.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Add(probes[i%len(probes)])
			}
			b.StopTimer()
			st := s.Stats()
			if c := st.Candidates - before.Candidates; c > 0 {
				b.ReportMetric(float64(st.DPPruned-before.DPPruned)/float64(c), "dpskip/candidate")
				b.ReportMetric(float64(st.Examined-before.Examined)/float64(st.Probes-before.Probes), "cand/probe")
			}
		})
	}
}

// BenchmarkTokenizer measures raw tokenization throughput.
func BenchmarkTokenizer(b *testing.B) {
	var tk tokenize.Tokenizer
	text := "Honestly we watched the golden sunset near the misty harbor, call 123-456.7890 or visit example.test 今日は映画"
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tk.Tokens(text)
	}
}
