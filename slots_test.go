package infoshield

import (
	"fmt"
	"testing"
)

// slottedCorpus builds a campaign whose slots carry typed content.
func slottedCorpus() []string {
	names := []string{"mia", "vera", "zoe", "jade", "cora", "lily", "anna", "ruby"}
	docs := make([]string, 0, len(names))
	for i, n := range names {
		docs = append(docs, fmt.Sprintf(
			"grand opening come visit %s today at our downtown studio call 412-555.%04d price %d dollars",
			n, 1000+i*7, 40+i*10))
	}
	for i := 0; i < 300; i++ {
		docs = append(docs, fmt.Sprintf(
			"zz%daa zz%dbb zz%dcc zz%ddd zz%dee zz%dff zz%dgg zz%dhh", i, i, i, i, i, i, i, i))
	}
	return docs
}

func TestSlotProfilesTyped(t *testing.T) {
	res := Detect(slottedCorpus(), Config{})
	if res.NumTemplates() == 0 {
		t.Fatal("no template found")
	}
	profiles := res.SlotProfiles(0)
	if len(profiles) == 0 {
		t.Fatal("no slot profiles")
	}
	kinds := map[string]bool{}
	for _, p := range profiles {
		kinds[p.Kind] = true
		if p.Fills == 0 {
			t.Errorf("profile with zero fills: %+v", p)
		}
		if p.Purity < 0 || p.Purity > 1 {
			t.Errorf("purity out of range: %+v", p)
		}
		if len(p.Values) == 0 {
			t.Errorf("no values: %+v", p)
		}
	}
	// The campaign's slots carry names (word), phones, and prices; at
	// least two distinct typed kinds should surface.
	if len(kinds) < 2 {
		t.Errorf("kinds = %v, want >= 2 distinct", kinds)
	}
}

func TestSlotProfilesOutOfRange(t *testing.T) {
	res := Detect(slottedCorpus(), Config{})
	if got := res.SlotProfiles(-1); got != nil {
		t.Errorf("negative index: %v", got)
	}
	if got := res.SlotProfiles(res.NumTemplates() + 5); got != nil {
		t.Errorf("past-end index: %v", got)
	}
}

func TestRankedOrdering(t *testing.T) {
	res := Detect(demoCorpus(), Config{})
	ranked := res.Ranked()
	if len(ranked) != len(res.Clusters()) {
		t.Fatalf("ranked %d vs %d clusters", len(ranked), len(res.Clusters()))
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].RelativeLength < ranked[i-1].RelativeLength {
			t.Errorf("not sorted by relative length at %d", i)
		}
	}
	// Ranked must not mutate the original order.
	orig := res.Clusters()
	if len(orig) > 1 && &orig[0] == &ranked[0] {
		t.Log("note: shares backing array? values copied, fine")
	}
}
