package infoshield

import (
	"bytes"
	"reflect"
	"testing"

	"infoshield/internal/datagen"
)

// TestDetectWorkersEquivalence is the parallelism correctness gate: on a
// realistic mixed corpus (the Twitter datagen set: genuine accounts plus
// bot campaigns), Detect must produce byte-identical output — clusters,
// templates, slots, costs, and the rendered report — for Workers: 1 and
// Workers: 8. Parallel tokenization, sharded DF counting, parallel
// scoring, and concurrent refinement may change scheduling, never
// results.
func TestDetectWorkersEquivalence(t *testing.T) {
	cfg := datagen.TwitterConfig{Seed: 1, GenuineAccounts: 25, BotAccounts: 25}
	if testing.Short() {
		// Keep the gate meaningful but fast under -short (the race-enabled
		// CI leg runs it this way); the full corpus runs in the normal leg.
		cfg.GenuineAccounts, cfg.BotAccounts = 8, 8
	}
	c := datagen.Twitter(cfg)
	texts := c.Texts()

	ref := Detect(texts, Config{Workers: 1})
	var refText bytes.Buffer
	ref.WriteText(&refText)

	got := Detect(texts, Config{Workers: 8})

	// Public surface: clusters with templates, slot counts, doc sets, and
	// the cost-derived compression diagnostics.
	if !reflect.DeepEqual(got.Clusters(), ref.Clusters()) {
		t.Error("Clusters() differ between Workers:1 and Workers:8")
	}
	if !reflect.DeepEqual(got.DocTemplate(), ref.DocTemplate()) {
		t.Error("DocTemplate() differs between Workers:1 and Workers:8")
	}
	if got.NumTemplates() != ref.NumTemplates() || got.VocabSize() != ref.VocabSize() {
		t.Errorf("counts differ: %d/%d templates, %d/%d vocab",
			got.NumTemplates(), ref.NumTemplates(), got.VocabSize(), ref.VocabSize())
	}

	// Internal surface: raw MDL costs must be bit-identical, not merely
	// close — parallel Coarse feeds Fine the exact same candidates.
	if len(got.res.Clusters) != len(ref.res.Clusters) {
		t.Fatalf("core cluster counts differ: %d vs %d", len(got.res.Clusters), len(ref.res.Clusters))
	}
	for i := range ref.res.Clusters {
		g, r := &got.res.Clusters[i], &ref.res.Clusters[i]
		if g.CostBefore != r.CostBefore || g.CostAfter != r.CostAfter {
			t.Errorf("cluster %d costs differ: (%v,%v) vs (%v,%v)",
				i, g.CostBefore, g.CostAfter, r.CostBefore, r.CostAfter)
		}
		if !reflect.DeepEqual(g.Docs, r.Docs) {
			t.Errorf("cluster %d doc sets differ", i)
		}
	}

	// Rendered report: byte-identical.
	var gotText bytes.Buffer
	got.WriteText(&gotText)
	if !bytes.Equal(gotText.Bytes(), refText.Bytes()) {
		t.Error("WriteText output differs between Workers:1 and Workers:8")
	}
}

// TestTimingsPopulated checks the new stage timings are wired through.
func TestTimingsPopulated(t *testing.T) {
	c := datagen.Twitter(datagen.TwitterConfig{Seed: 2, GenuineAccounts: 5, BotAccounts: 5})
	res := Detect(c.Texts(), Config{})
	tm := res.Timings()
	if tm.Coarse <= 0 {
		t.Errorf("Coarse duration not recorded: %+v", tm)
	}
	if tm.Tokenize <= 0 || tm.CoarseExtract <= 0 || tm.CoarseScore <= 0 {
		t.Errorf("stage timings not recorded: %+v", tm)
	}
	if tm.Tokenize+tm.CoarseExtract+tm.CoarseScore+tm.CoarseComponents > tm.Coarse {
		t.Errorf("stages exceed coarse total: %+v", tm)
	}
}
