package infoshield

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"infoshield/internal/datagen"
)

// skewedTexts builds the cluster-size distribution the paper's
// Cluster-Trafficking data exhibits (Fig. 3): one mega spam campaign that
// dominates fine-pass wall clock, many small campaigns, and unclusterable
// background noise. Shared by the determinism/goroutine tests and the
// BenchmarkFineSkewed straggler benchmark.
func skewedTexts() []string {
	var texts []string
	for i := 0; i < 260; i++ {
		texts = append(texts, fmt.Sprintf(
			"mega sale best deals call now 555-01%02d visit mega.example promo%d today", i%100, i))
	}
	for g := 0; g < 60; g++ {
		for k := 0; k < 4; k++ {
			texts = append(texts, fmt.Sprintf(
				"alpha%d beta%d gamma%d delta%d epsilon%d offer %d ships fast", g, g, g, g, g, k))
		}
	}
	for i := 0; i < 40; i++ {
		texts = append(texts, fmt.Sprintf(
			"bg%da bg%db bg%dc bg%dd bg%de bg%df bg%dg bg%dh", i, i, i, i, i, i, i, i))
	}
	return texts
}

// TestDetectWorkersEquivalence is the parallelism correctness gate: on a
// realistic mixed corpus (the Twitter datagen set: genuine accounts plus
// bot campaigns), Detect must produce byte-identical output — clusters,
// templates, slots, costs, and the rendered report — for Workers: 1 and
// Workers: 8. Parallel tokenization, sharded DF counting, parallel
// scoring, and concurrent refinement may change scheduling, never
// results.
func TestDetectWorkersEquivalence(t *testing.T) {
	cfg := datagen.TwitterConfig{Seed: 1, GenuineAccounts: 25, BotAccounts: 25}
	if testing.Short() {
		// Keep the gate meaningful but fast under -short (the race-enabled
		// CI leg runs it this way); the full corpus runs in the normal leg.
		cfg.GenuineAccounts, cfg.BotAccounts = 8, 8
	}
	c := datagen.Twitter(cfg)
	texts := c.Texts()

	ref := Detect(texts, Config{Workers: 1})
	var refText bytes.Buffer
	ref.WriteText(&refText)

	got := Detect(texts, Config{Workers: 8})

	// Public surface: clusters with templates, slot counts, doc sets, and
	// the cost-derived compression diagnostics.
	if !reflect.DeepEqual(got.Clusters(), ref.Clusters()) {
		t.Error("Clusters() differ between Workers:1 and Workers:8")
	}
	if !reflect.DeepEqual(got.DocTemplate(), ref.DocTemplate()) {
		t.Error("DocTemplate() differs between Workers:1 and Workers:8")
	}
	if got.NumTemplates() != ref.NumTemplates() || got.VocabSize() != ref.VocabSize() {
		t.Errorf("counts differ: %d/%d templates, %d/%d vocab",
			got.NumTemplates(), ref.NumTemplates(), got.VocabSize(), ref.VocabSize())
	}

	// Internal surface: raw MDL costs must be bit-identical, not merely
	// close — parallel Coarse feeds Fine the exact same candidates.
	if len(got.res.Clusters) != len(ref.res.Clusters) {
		t.Fatalf("core cluster counts differ: %d vs %d", len(got.res.Clusters), len(ref.res.Clusters))
	}
	for i := range ref.res.Clusters {
		g, r := &got.res.Clusters[i], &ref.res.Clusters[i]
		if g.CostBefore != r.CostBefore || g.CostAfter != r.CostAfter {
			t.Errorf("cluster %d costs differ: (%v,%v) vs (%v,%v)",
				i, g.CostBefore, g.CostAfter, r.CostBefore, r.CostAfter)
		}
		if !reflect.DeepEqual(g.Docs, r.Docs) {
			t.Errorf("cluster %d doc sets differ", i)
		}
	}

	// Rendered report: byte-identical.
	var gotText bytes.Buffer
	got.WriteText(&gotText)
	if !bytes.Equal(gotText.Bytes(), refText.Bytes()) {
		t.Error("WriteText output differs between Workers:1 and Workers:8")
	}
}

// TestDetectSkewedWorkersEquivalence re-runs the byte-identity gate on
// the skewed corpus, where the nested screening fan-out actually fires:
// the mega-cluster's per-round neighbor list is large enough to borrow
// idle workers, so this covers the intra-cluster parallel path the
// Twitter corpus's smaller clusters may not reach.
func TestDetectSkewedWorkersEquivalence(t *testing.T) {
	texts := skewedTexts()

	ref := Detect(texts, Config{Workers: 1})
	got := Detect(texts, Config{Workers: 8})

	if !reflect.DeepEqual(got.Clusters(), ref.Clusters()) {
		t.Error("Clusters() differ between Workers:1 and Workers:8 on skewed corpus")
	}
	if !reflect.DeepEqual(got.DocTemplate(), ref.DocTemplate()) {
		t.Error("DocTemplate() differs between Workers:1 and Workers:8 on skewed corpus")
	}
	var refText, gotText bytes.Buffer
	ref.WriteText(&refText)
	got.WriteText(&gotText)
	if !bytes.Equal(gotText.Bytes(), refText.Bytes()) {
		t.Error("WriteText output differs between Workers:1 and Workers:8 on skewed corpus")
	}
	if ref.NumTemplates() == 0 {
		t.Fatal("skewed corpus produced no templates; the gate is vacuous")
	}
}

// TestFineGoroutineBound is the regression gate for the worker-pool
// rewrite: the old fine stage spawned one goroutine per coarse cluster
// up front (hundreds parked behind a semaphore on corpora like this
// one); the pool must keep the process's goroutine count O(Workers)
// throughout the run.
func TestFineGoroutineBound(t *testing.T) {
	texts := skewedTexts() // ~60 coarse clusters
	const workers = 2
	base := runtime.NumGoroutine()

	var peak atomic.Int64
	done := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		for {
			select {
			case <-done:
				return
			default:
			}
			if n := int64(runtime.NumGoroutine()); n > peak.Load() {
				peak.Store(n)
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()
	Detect(texts, Config{Workers: workers})
	close(done)
	<-sampled

	// Budget: the pool's `workers` goroutines, the sampler itself, the
	// nested screening fan-out (bounded by the same budget), and a little
	// slack for runtime/test goroutines. The old goroutine-per-cluster
	// code peaks ~60 above base here and fails by a wide margin.
	extra := peak.Load() - int64(base)
	if extra > workers+12 {
		t.Errorf("goroutine peak %d above baseline (want <= Workers+12 = %d): fine stage is not O(Workers)",
			extra, workers+12)
	}
}

// TestTimingsPopulated checks the new stage timings are wired through.
func TestTimingsPopulated(t *testing.T) {
	c := datagen.Twitter(datagen.TwitterConfig{Seed: 2, GenuineAccounts: 5, BotAccounts: 5})
	res := Detect(c.Texts(), Config{})
	tm := res.Timings()
	if tm.Coarse <= 0 {
		t.Errorf("Coarse duration not recorded: %+v", tm)
	}
	if tm.Tokenize <= 0 || tm.CoarseExtract <= 0 || tm.CoarseScore <= 0 {
		t.Errorf("stage timings not recorded: %+v", tm)
	}
	if tm.Tokenize+tm.CoarseExtract+tm.CoarseScore+tm.CoarseComponents > tm.Coarse {
		t.Errorf("stages exceed coarse total: %+v", tm)
	}
	if res.NumTemplates() == 0 {
		t.Fatal("corpus produced no templates; fine-stage timing checks are vacuous")
	}
	if tm.FineScreen <= 0 || tm.FineAlign <= 0 || tm.FineConsensus <= 0 || tm.FineSlots <= 0 {
		t.Errorf("fine stage timings not recorded: %+v", tm)
	}
	if tm.Fine <= 0 {
		t.Errorf("fine duration not recorded: %+v", tm)
	}
}
