// DNA motif discovery: the paper's generality claim taken literally —
// "it can be run on text in almost any language, or on other text data
// such as DNA strings" (Advantage 1).
//
// Reads are token sequences over {A,C,G,T} codons. A motif is shared by a
// family of reads with point mutations; background reads are random.
// InfoShield recovers the motif as the template constants and the
// mutation hot-spots as slots — no genomics-specific code anywhere.
//
//	go run ./examples/dna
package main

import (
	"fmt"
	"math/rand"
	"strings"

	"infoshield"
)

const bases = "ACGT"

// codon emits one random 3-base codon token.
func codon(rng *rand.Rand) string {
	return string([]byte{
		bases[rng.Intn(4)], bases[rng.Intn(4)], bases[rng.Intn(4)],
	})
}

func main() {
	rng := rand.New(rand.NewSource(23))

	// The conserved motif: 18 codons.
	motif := make([]string, 18)
	for i := range motif {
		motif[i] = codon(rng)
	}
	// Two hyper-variable positions (think: SNP sites).
	variable := []int{5, 12}

	var reads []string
	// A family of 12 reads of the motif with mutations at the SNP sites
	// and occasional random point mutations elsewhere.
	for r := 0; r < 12; r++ {
		read := append([]string(nil), motif...)
		for _, p := range variable {
			read[p] = codon(rng)
		}
		if rng.Float64() < 0.3 {
			read[rng.Intn(len(read))] = codon(rng)
		}
		reads = append(reads, strings.Join(read, " "))
	}
	// Background: unrelated random reads.
	for r := 0; r < 200; r++ {
		read := make([]string, 15+rng.Intn(8))
		for i := range read {
			read[i] = codon(rng)
		}
		reads = append(reads, strings.Join(read, " "))
	}

	result := infoshield.Detect(reads, infoshield.Config{})

	fmt.Printf("%d reads -> %d motif families found\n\n", len(reads), result.NumTemplates())
	for _, c := range result.Clusters() {
		for _, t := range c.Templates {
			fmt.Printf("motif (%d reads, %d variable sites):\n  %s\n",
				len(t.Docs), t.Slots, strings.ToUpper(t.Pattern))
			fmt.Printf("  members: %v\n", t.Docs)
		}
	}
	sus := result.Suspicious()
	family, background := 0, 0
	for i, s := range sus {
		if !s {
			continue
		}
		if i < 12 {
			family++
		} else {
			background++
		}
	}
	fmt.Printf("\nfamily reads recovered: %d/12; background false positives: %d/200\n",
		family, background)
}
