// Language independence: one corpus, four languages, zero configuration.
//
// InfoShield uses no stop-word lists, no stemming, no syntax — tf-idf
// penalizes each language's own common words automatically, and the MDL
// cost is token-based. Spanish, Italian, English and Japanese campaigns
// are found by the identical code path.
//
//	go run ./examples/multilang
package main

import (
	"fmt"
	"io"
	"os"

	"infoshield"
	"infoshield/internal/datagen"
)

func main() {
	corpus := datagen.Twitter(datagen.TwitterConfig{
		Seed:            7,
		GenuineAccounts: 60,
		BotAccounts:     40,
		Languages: []datagen.Language{
			datagen.English, datagen.Spanish, datagen.Italian, datagen.Japanese,
		},
	})
	fmt.Printf("corpus: %d tweets across 4 languages\n\n", corpus.Len())

	result := infoshield.Detect(corpus.Texts(), infoshield.Config{})
	fmt.Printf("found %d templates in %d clusters\n\n", result.NumTemplates(), len(result.Clusters()))

	// Group discovered templates by script for display.
	shown := map[string]bool{}
	for _, c := range result.Clusters() {
		for _, t := range c.Templates {
			lang := scriptOf(t.Pattern)
			if shown[lang] || len(t.Docs) < 4 {
				continue
			}
			shown[lang] = true
			fmt.Printf("[%s] %d docs: %s\n", lang, len(t.Docs), t.Pattern)
		}
	}
	fmt.Println("\nfull rendering (truncated):")
	if cs := result.Clusters(); len(cs) > 0 {
		result.WriteText(&limitedWriter{w: os.Stdout, n: 2000})
	}
	fmt.Println()
}

// scriptOf crudely classifies a template's script for display.
func scriptOf(s string) string {
	for _, r := range s {
		if r >= 0x3040 && r <= 0x30ff || r >= 0x4e00 && r <= 0x9fff {
			return "japanese"
		}
	}
	for _, r := range s {
		switch r {
		case 'é', 'í', 'ó', 'ñ', 'á':
			return "spanish/italian"
		case 'è', 'à', 'ù':
			return "spanish/italian"
		}
	}
	return "english/latin"
}

// limitedWriter truncates output for the demo.
type limitedWriter struct {
	w io.Writer
	n int
}

func (l *limitedWriter) Write(p []byte) (int, error) {
	want := len(p)
	if l.n <= 0 {
		return want, nil
	}
	if len(p) > l.n {
		p = p[:l.n]
	}
	l.n -= len(p)
	if _, err := l.w.Write(p); err != nil {
		return 0, err
	}
	return want, nil
}
