// Quickstart: the paper's running toy example (Tables II-V).
//
// Seven documents — four product ads sharing a template, two scam
// messages sharing another, one innocent birthday wish — hidden among
// background chatter. InfoShield finds both templates, marks the variable
// positions as slots, and leaves the birthday message alone.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"infoshield"
)

func main() {
	docs := []string{
		"This is a great soap, and the 5 dollar price is great",
		"This is a great chair, and the 10 dollar price is great",
		"This is a great hat, and the 3 dollar price is great",
		"This is great blue pen, and the 3 dollar price is so good",
		"I made 30K working on this job - call 123-456.7890 or visit scam.com",
		"I made 30K working from home - call 123-456.7890 or visit fraud.com",
		"Happy birthday to my dear friend Mike",
	}
	// A realistic corpus has a large vocabulary of documents that belong
	// to no cluster; the toy needs the same backdrop for MDL to have
	// compression headroom (V appears in every coding cost).
	for i := 0; i < 30; i++ {
		docs = append(docs, fmt.Sprintf(
			"unrelated%dq filler%dw chatter%de noise%dr words%dt here%dy only%du once%di",
			i, i, i, i, i, i, i, i))
	}

	result := infoshield.Detect(docs, infoshield.Config{})

	fmt.Printf("%d documents -> %d templates\n\n", len(docs), result.NumTemplates())
	for _, c := range result.Clusters() {
		for _, t := range c.Templates {
			fmt.Printf("template (%d docs, %d slots):\n  %s\n  members: %v\n\n",
				len(t.Docs), t.Slots, t.Pattern, t.Docs)
		}
	}

	fmt.Println("full color rendering:")
	result.WriteText(os.Stdout)

	sus := result.Suspicious()
	fmt.Printf("\ndoc 6 (%q) suspicious: %v (expected false)\n", docs[6], sus[6])
}
