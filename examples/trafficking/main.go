// Human-trafficking triage: the paper's driving application.
//
// Generates a Cluster-Trafficking-style ad corpus (spam campaigns, HT
// "massage parlor" micro-clusters, benign one-off ads), detects the
// organized activity, and triages the clusters the way Figure 3 suggests:
// relative length near the Lemma-1 lower bound with many documents means
// bulk spam; mid-size clusters with slotted variation are the HT-shaped
// signals an investigator reads first.
//
//	go run ./examples/trafficking
package main

import (
	"fmt"
	"sort"

	"infoshield"
	"infoshield/internal/datagen"
	"infoshield/internal/metrics"
)

func main() {
	corpus := datagen.ClusterTrafficking(datagen.ClusterTraffickingConfig{
		Seed:  9,
		Scale: 0.02, // ~3k ads
	})
	fmt.Printf("corpus: %d ads\n", corpus.Len())

	result := infoshield.Detect(corpus.Texts(), infoshield.Config{})

	truth := make([]bool, corpus.Len())
	for i, d := range corpus.Docs {
		truth[i] = d.Label
	}
	conf := metrics.NewConfusion(result.Suspicious(), truth)
	fmt.Printf("precision %.1f%%  recall %.1f%%  (precision is what keeps law enforcement's trust)\n\n",
		conf.Precision()*100, conf.Recall()*100)

	// Triage: order clusters by size and compression.
	clusters := result.Clusters()
	sort.Slice(clusters, func(i, j int) bool { return len(clusters[i].Docs) > len(clusters[j].Docs) })
	fmt.Printf("%8s %10s %10s   %s\n", "ads", "rel.len", "lower.bd", "template (first)")
	for i, c := range clusters {
		if i >= 10 {
			fmt.Printf("... %d more clusters\n", len(clusters)-10)
			break
		}
		pattern := ""
		if len(c.Templates) > 0 {
			pattern = c.Templates[0].Pattern
			if len(pattern) > 70 {
				pattern = pattern[:70] + "..."
			}
		}
		fmt.Printf("%8d %10.4f %10.4f   %s\n", len(c.Docs), c.RelativeLength, c.LowerBound, pattern)
	}

	// The slot content is the investigator's lead sheet: names, times,
	// prices pulled out of the templates automatically (the paper's
	// stated future work, Section V-D2).
	fmt.Println("\nlead sheet for template 0:")
	for s, p := range result.SlotProfiles(0) {
		vals := p.Values
		if len(vals) > 6 {
			vals = vals[:6]
		}
		fmt.Printf("  slot %d: %-6s (%d fills, %.0f%% pure): %v\n",
			s, p.Kind, p.Fills, p.Purity*100, vals)
	}
	fmt.Println("\nan investigator reads ONE template per cluster instead of")
	fmt.Println("hundreds of ads; the slots point at the victim-specific fields.")
}
