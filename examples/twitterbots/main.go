// Twitter bot detection: the paper's first evaluation domain.
//
// Generates a Cresci-2017-style test set (50% genuine accounts, 50%
// social spambots, four languages), runs InfoShield on the tweet text
// alone — no retweet counts, no posting times, no platform features —
// and scores the result against ground truth.
//
//	go run ./examples/twitterbots
package main

import (
	"fmt"
	"os"

	"infoshield"
	"infoshield/internal/datagen"
	"infoshield/internal/metrics"
)

func main() {
	corpus := datagen.Twitter(datagen.TwitterConfig{
		Seed:            2026,
		GenuineAccounts: 100,
		BotAccounts:     100,
	})
	fmt.Printf("test set: %d tweets from %d accounts (half spambots)\n",
		corpus.Len(), 200)

	result := infoshield.Detect(corpus.Texts(), infoshield.Config{})

	truth := make([]bool, corpus.Len())
	clusters := make([]int, corpus.Len())
	for i, d := range corpus.Docs {
		truth[i] = d.Label
		clusters[i] = d.ClusterLabel
	}
	conf := metrics.NewConfusion(result.Suspicious(), truth)
	fmt.Printf("precision %.1f%%  recall %.1f%%  F1 %.1f%%  ARI %.1f\n",
		conf.Precision()*100, conf.Recall()*100, conf.F1()*100,
		metrics.ARI(result.DocTemplate(), clusters)*100)
	fmt.Printf("templates: %d   clusters: %d\n\n", result.NumTemplates(), len(result.Clusters()))

	// Show the three most compressed clusters — the strongest spam
	// campaigns — with full slot highlighting.
	fmt.Println("three most near-duplicate campaigns:")
	shown := 0
	for _, c := range result.Clusters() {
		if shown >= 3 {
			break
		}
		fmt.Printf("\n[relative length %.4f, %d tweets]\n", c.RelativeLength, len(c.Docs))
		for _, t := range c.Templates {
			fmt.Printf("  %s\n", t.Pattern)
		}
		shown++
	}

	// And an HTML report for the full result.
	f, err := os.Create("twitterbots_report.html")
	if err == nil {
		if werr := result.WriteHTML(f); werr == nil {
			fmt.Println("\nwrote twitterbots_report.html")
		}
		_ = f.Close() // report already written; nothing useful to do on close failure
	}
}
