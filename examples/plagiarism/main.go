// Plagiarism detection: one of the additional settings the paper's
// introduction motivates ("spotting micro-clusters of near-duplicate
// documents is useful in multiple, additional settings, including ...
// plagiarism").
//
// A batch of "essays" contains a few submissions that copied the same
// source passage, each with light paraphrasing (word substitutions,
// insertions). InfoShield surfaces the copied passage as the template's
// constant text and the paraphrased spots as slots/edits — the grader
// reads one line, not every essay.
//
//	go run ./examples/plagiarism
package main

import (
	"fmt"
	"math/rand"
	"os"
	"strings"

	"infoshield"
	"infoshield/internal/datagen"
)

func main() {
	rng := rand.New(rand.NewSource(17))

	// The copied source passage.
	passage := "the industrial revolution transformed not only the means of production " +
		"but the whole structure of society reshaping cities labor and family life " +
		"in ways that historians still debate today"

	synonyms := map[string][]string{
		"transformed": {"changed", "reshaped", "altered"},
		"whole":       {"entire", "complete"},
		"structure":   {"fabric", "organization"},
		"reshaping":   {"remaking", "redefining"},
		"debate":      {"dispute", "argue", "discuss"},
		"today":       {"now", "currently"},
	}

	var docs []string
	// Five students copied the passage with light paraphrasing.
	for s := 0; s < 5; s++ {
		words := strings.Fields(passage)
		for i, w := range words {
			if alts, ok := synonyms[w]; ok && rng.Float64() < 0.6 {
				words[i] = alts[rng.Intn(len(alts))]
			}
		}
		intro := []string{"in conclusion", "as we have seen", "to summarize", "clearly", "in short"}[s]
		docs = append(docs, intro+" "+strings.Join(words, " "))
	}
	// The rest of the class wrote original essays.
	for i := 0; i < 120; i++ {
		docs = append(docs, datagen.Sentence(rng, datagen.English)+" "+
			datagen.Sentence(rng, datagen.English))
	}

	result := infoshield.Detect(docs, infoshield.Config{})

	fmt.Printf("%d essays -> %d flagged, %d templates\n\n",
		len(docs), countTrue(result.Suspicious()), result.NumTemplates())
	for _, c := range result.Clusters() {
		for _, t := range c.Templates {
			fmt.Printf("copied passage (%d submissions):\n  %s\n\n", len(t.Docs), t.Pattern)
			fmt.Printf("submissions: %v\n", t.Docs)
		}
	}
	fmt.Println("\nside-by-side with paraphrases highlighted:")
	result.WriteText(os.Stdout)
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
