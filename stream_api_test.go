package infoshield

import (
	"fmt"
	"testing"
)

func TestStreamDetectorFacade(t *testing.T) {
	s := NewStreamDetector(Config{}, 0)
	var docs []string
	for i := 0; i < 25; i++ {
		docs = append(docs, fmt.Sprintf(
			"flash sale grab the deluxe winter bundle now at shop%04d.example today", i))
	}
	for i := 0; i < 300; i++ {
		docs = append(docs, fmt.Sprintf(
			"sx%daa sx%dbb sx%dcc sx%ddd sx%dee sx%dff sx%dgg sx%dhh", i, i, i, i, i, i, i, i))
	}
	ids := s.AddBatch(docs)
	s.Flush()
	if s.NumTemplates() == 0 {
		t.Fatal("no templates mined")
	}
	matched := 0
	for _, id := range ids[:25] {
		if tpl, _ := s.Template(id); tpl >= 0 {
			matched++
		}
	}
	if matched < 20 {
		t.Errorf("only %d/25 campaign docs matched", matched)
	}
	// New campaign member attaches without buffering.
	id := s.Add("flash sale grab the deluxe winter bundle now at shop9999.example today")
	if tpl, pending := s.Template(id); tpl < 0 || pending {
		t.Errorf("live match failed: tpl=%d pending=%v", tpl, pending)
	}
	if s.Pending() > 1 {
		t.Errorf("pending = %d", s.Pending())
	}
}
