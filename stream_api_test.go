package infoshield

import (
	"bytes"
	"fmt"
	"testing"
)

func TestStreamDetectorFacade(t *testing.T) {
	s := NewStreamDetector(Config{}, 0)
	var docs []string
	for i := 0; i < 25; i++ {
		docs = append(docs, fmt.Sprintf(
			"flash sale grab the deluxe winter bundle now at shop%04d.example today", i))
	}
	for i := 0; i < 300; i++ {
		docs = append(docs, fmt.Sprintf(
			"sx%daa sx%dbb sx%dcc sx%ddd sx%dee sx%dff sx%dgg sx%dhh", i, i, i, i, i, i, i, i))
	}
	ids := s.AddBatch(docs)
	s.Flush()
	if s.NumTemplates() == 0 {
		t.Fatal("no templates mined")
	}
	matched := 0
	for _, id := range ids[:25] {
		if tpl, _ := s.Template(id); tpl >= 0 {
			matched++
		}
	}
	if matched < 20 {
		t.Errorf("only %d/25 campaign docs matched", matched)
	}
	// New campaign member attaches without buffering.
	id := s.Add("flash sale grab the deluxe winter bundle now at shop9999.example today")
	if tpl, pending := s.Template(id); tpl < 0 || pending {
		t.Errorf("live match failed: tpl=%d pending=%v", tpl, pending)
	}
	if s.Pending() > 1 {
		t.Errorf("pending = %d", s.Pending())
	}

	// Serving stats are exposed and internally consistent.
	st := s.Stats()
	if st.Probes == 0 || st.Candidates == 0 {
		t.Errorf("stats not accumulated: %+v", st)
	}
	if st.DPRuns+st.DPPruned != st.Candidates {
		t.Errorf("stats out of balance: %+v", st)
	}

	// Save / Load round-trips through the facade.
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStreamDetector(Config{}, 0)
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.NumTemplates() != s.NumTemplates() {
		t.Errorf("loaded %d templates, want %d", s2.NumTemplates(), s.NumTemplates())
	}
	id = s2.Add("flash sale grab the deluxe winter bundle now at shop0042.example today")
	if tpl, pending := s2.Template(id); tpl < 0 || pending {
		t.Errorf("loaded facade failed to match: tpl=%d pending=%v", tpl, pending)
	}
}
