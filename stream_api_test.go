package infoshield

import (
	"bytes"
	"fmt"
	"testing"
)

func TestStreamDetectorFacade(t *testing.T) {
	s := NewStreamDetector(Config{}, 0)
	var docs []string
	for i := 0; i < 25; i++ {
		docs = append(docs, fmt.Sprintf(
			"flash sale grab the deluxe winter bundle now at shop%04d.example today", i))
	}
	for i := 0; i < 300; i++ {
		docs = append(docs, fmt.Sprintf(
			"sx%daa sx%dbb sx%dcc sx%ddd sx%dee sx%dff sx%dgg sx%dhh", i, i, i, i, i, i, i, i))
	}
	ids := s.AddBatch(docs)
	s.Flush()
	if s.NumTemplates() == 0 {
		t.Fatal("no templates mined")
	}
	matched := 0
	for _, id := range ids[:25] {
		if tpl, _ := s.Template(id); tpl >= 0 {
			matched++
		}
	}
	if matched < 20 {
		t.Errorf("only %d/25 campaign docs matched", matched)
	}
	// New campaign member attaches without buffering.
	id := s.Add("flash sale grab the deluxe winter bundle now at shop9999.example today")
	if tpl, pending := s.Template(id); tpl < 0 || pending {
		t.Errorf("live match failed: tpl=%d pending=%v", tpl, pending)
	}
	if s.Pending() > 1 {
		t.Errorf("pending = %d", s.Pending())
	}

	// Serving stats are exposed and internally consistent.
	st := s.Stats()
	if st.Probes == 0 || st.Candidates == 0 {
		t.Errorf("stats not accumulated: %+v", st)
	}
	if st.DPRuns+st.DPPruned != st.Candidates {
		t.Errorf("stats out of balance: %+v", st)
	}
	if st.Examined > st.Candidates {
		t.Errorf("examined %d exceeds candidates %d", st.Examined, st.Candidates)
	}
	histMass := 0
	for _, c := range st.CandHist {
		histMass += c
	}
	if histMass != st.Probes {
		t.Errorf("candidate histogram mass %d != probes %d", histMass, st.Probes)
	}

	// Bulk-load path: a hand-registered template (slot at the "_") serves
	// immediately, without a mining pass.
	rti, err := s.RegisterTemplate(
		[]string{"mega", "clearance", "single", "day", "event", "_", "doors", "open", "early"},
		[]bool{false, false, false, false, false, true, false, false, false})
	if err != nil {
		t.Fatal(err)
	}
	id = s.Add("mega clearance single day event code77 doors open early")
	if tpl, pending := s.Template(id); tpl != rti || pending {
		t.Errorf("registered template not matched: tpl=%d want %d pending=%v", tpl, rti, pending)
	}
	if _, err := s.RegisterTemplate([]string{"a"}, []bool{true, false}); err == nil {
		t.Error("mismatched words/wild accepted")
	}

	// Save / Load round-trips through the facade.
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStreamDetector(Config{}, 0)
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.NumTemplates() != s.NumTemplates() {
		t.Errorf("loaded %d templates, want %d", s2.NumTemplates(), s.NumTemplates())
	}
	id = s2.Add("flash sale grab the deluxe winter bundle now at shop0042.example today")
	if tpl, pending := s2.Template(id); tpl < 0 || pending {
		t.Errorf("loaded facade failed to match: tpl=%d pending=%v", tpl, pending)
	}
}
