// Package infoshield finds micro-clusters of near-duplicate documents in
// large corpora and summarizes each cluster as a template with slots —
// an implementation of "InfoShield: Generalizable Information-Theoretic
// Human-Trafficking Detection" (Lee, Vajiac, et al., ICDE 2021).
//
// The method is unsupervised, parameter-free, language-independent, and
// interpretable: given N documents where most belong to no cluster, it
// returns small clusters of organized near-duplication, each described by
// one template ("This is a great *, and the * dollar price is great")
// whose slots mark the positions that vary per document. Minimum
// Description Length arbitrates everything: a template exists only if it
// compresses its documents.
//
// Basic use:
//
//	result := infoshield.Detect(texts, infoshield.Config{})
//	for _, c := range result.Clusters() {
//	    for _, t := range c.Templates {
//	        fmt.Println(t.Pattern, t.Docs)
//	    }
//	}
//
// Detect is deterministic for a given input and configuration.
package infoshield

import (
	"infoshield/internal/core"
)

// Config holds the optional knobs. The zero value reproduces the paper's
// parameter-free defaults; everything here exists for ablations and
// benchmarking, not tuning.
type Config struct {
	// MaxNgram caps the coarse pass's tf-idf n-grams (default 5; the
	// paper shows results stabilize by 4-5, Fig. 4).
	MaxNgram int
	// TopPhraseFraction is the fraction of each document's phrases kept
	// as graph edges in the coarse pass (default 0.10).
	TopPhraseFraction float64
	// MinSharedPhrases requires documents to share this many top phrases
	// to be joined coarsely (default 1, the paper's permissive setting).
	MinSharedPhrases int
	// UseLSHCoarse swaps the coarse pass's tf-idf phrase graph for
	// MinHash-LSH banding (recall-leaning alternative).
	UseLSHCoarse bool
	// UseStarMSA swaps Partial Order Alignment for a cheaper star MSA.
	UseStarMSA bool
	// DisableSlots turns slot detection off.
	DisableSlots bool
	// Workers bounds the worker pool used across the whole pipeline:
	// tokenization, coarse phrase extraction and scoring, LSH signature
	// computation, and concurrent cluster refinement (default GOMAXPROCS).
	// Output is identical for any value — parallelism never changes what
	// Detect returns, only how fast it returns it.
	Workers int
}

func (c Config) toCore() core.Options {
	return core.Options{
		MaxNgram:         c.MaxNgram,
		TopFraction:      c.TopPhraseFraction,
		MinSharedPhrases: c.MinSharedPhrases,
		UseLSHCoarse:     c.UseLSHCoarse,
		UseStarMSA:       c.UseStarMSA,
		DisableSlots:     c.DisableSlots,
		Workers:          c.Workers,
	}
}

// Detect runs the full InfoShield pipeline (coarse candidate clustering,
// then MDL template mining) over the documents and returns the discovered
// micro-clusters.
func Detect(texts []string, cfg Config) *Result {
	return newResult(core.Run(texts, cfg.toCore()))
}
