GO ?= go

.PHONY: check test build vet vet-fast race race-short fuzz fuzz-stream fuzz-serve bench bench-coarse bench-json bench-scale bench-shard bench-lifecycle bench-all profile-scale experiments

## check: the full gate — vet (go vet + infoshield-vet), build, and
## race-enabled tests.
check: vet
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

## vet: go vet plus the project's own static-analysis suite
## (cmd/infoshield-vet: maporder, looprace, floateq, ctxerr, and the
## interprocedural scratchalias, goleak, atomicmix, chanproto). Must
## exit 0 with zero unsuppressed findings. Pass extra infoshield-vet
## flags through VET_FLAGS, e.g.
## `make vet VET_FLAGS='-json -sarif infoshield-vet.sarif'`.
VET_FLAGS ?=
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/infoshield-vet $(VET_FLAGS)

## vet-fast: incremental re-run — analyzes only packages with files
## newer than the .vet-stamp left by the previous clean vet-fast run
## (first run is a full pass). The module is still fully type-checked,
## so interprocedural facts stay exact.
vet-fast:
	$(GO) run ./cmd/infoshield-vet -since .vet-stamp $(VET_FLAGS)
	@touch .vet-stamp

test:
	$(GO) test ./...

## race: the race detector over every package. The -short leg of the
## worker-equivalence gate keeps this tractable in CI.
race:
	$(GO) test -race ./...

## race-short: the CI-shaped race run — -short trims the scale suites to
## the 1k-template concurrent AddBatch exercise of the arena and index
## paths (TestScaleRaceShort) so the detector still covers them.
race-short:
	$(GO) test -race -short ./...

## fuzz: a bounded burst of the Workers:1-vs-Workers:4 determinism fuzzer.
fuzz:
	$(GO) test -fuzz FuzzDetectDeterminism -fuzztime 30s .

## fuzz-stream: a bounded burst of the streaming serve-path fuzzer
## (interleaved Add / AddBatch / Flush / persist round-trips, serial vs
## batched-parallel equivalence).
fuzz-stream:
	$(GO) test -fuzz FuzzStreamOps -fuzztime 30s ./internal/stream

## fuzz-serve: bounded bursts of both daemon fuzzers — the single-shard
## HTTP fuzzer (interleaved single/batch/flush/snapshot requests,
## verdicts checked op-by-op against a serial reference detector) and
## the sharded fuzzer (random shard count, WAL-backed, kill + replay
## crash recovery against per-shard serial references). The patterns
## are anchored: Go refuses a -fuzz that matches more than one target.
fuzz-serve:
	$(GO) test -fuzz 'FuzzServe$$' -fuzztime 30s ./internal/serve
	$(GO) test -fuzz 'FuzzServeSharded$$' -fuzztime 30s ./internal/serve

## bench: the end-to-end pipeline benchmark at both corpus sizes,
## repeated for stable numbers.
bench:
	$(GO) test -bench=PipelineEndToEnd -benchmem -count=5 -run '^$$'

## bench-coarse: the coarse-pass microbenchmarks, including the
## 1/2/4/8-worker scaling sweep.
bench-coarse:
	$(GO) test -bench='Coarse|TopPhrase' -benchmem -run '^$$'

## bench-json: the coarse, fine, end-to-end, streaming, and serving
## benchmarks archived as machine-readable JSON via cmd/benchjson (plus
## the raw text). CI runs this with BENCH_COUNT=1 and uploads
## BENCH_fine.json, BENCH_stream.json, and BENCH_serve.json as
## artifacts; use the default count locally for stable numbers.
BENCH_COUNT ?= 5
bench-json:
	$(GO) test -bench='Coarse|Fine|PipelineEndToEnd' -benchmem -count=$(BENCH_COUNT) -run '^$$' > BENCH_fine.txt
	$(GO) run ./cmd/benchjson -o BENCH_fine.json < BENCH_fine.txt
	$(GO) test -bench='StreamAdd$$|StreamAddBatch' -benchmem -count=$(BENCH_COUNT) -run '^$$' > BENCH_stream.txt
	$(GO) run ./cmd/benchjson -o BENCH_stream.json < BENCH_stream.txt
	$(GO) test -bench='ServeCoalesce|ServeHTTP' -benchmem -count=$(BENCH_COUNT) -run '^$$' ./internal/serve > BENCH_serve.txt
	$(GO) run ./cmd/benchjson -o BENCH_serve.json < BENCH_serve.txt

## bench-scale: the template-count scaling curve — steady-state Add at
## 1k/10k/100k bulk-loaded multi-market templates with DP-skip rates and
## surviving-candidate counts (BenchmarkStreamAddScale) — archived as
## BENCH_scale.{txt,json}. CI runs this with BENCH_COUNT=1 and uploads
## both as artifacts.
bench-scale:
	$(GO) test -bench='StreamAddScale' -benchmem -count=$(BENCH_COUNT) -run '^$$' -timeout 30m > BENCH_scale.txt
	$(GO) run ./cmd/benchjson -o BENCH_scale.json < BENCH_scale.txt

## profile-scale: CPU and heap profiles of the 100k-template steady-state
## Add path (BenchmarkStreamAddScale), written to profile_scale_cpu.out /
## profile_scale_mem.out for `go tool pprof`. CI uploads both as
## artifacts so a perf regression caught by bench-scale can be diagnosed
## from the archived run without reproducing locally.
profile-scale:
	$(GO) test -bench='StreamAddScale/templates=100000' -run '^$$' -timeout 30m \
		-cpuprofile profile_scale_cpu.out -memprofile profile_scale_mem.out \
		-o profile_scale.test > PROFILE_scale.txt
	cat PROFILE_scale.txt

## bench-shard: the sharded-serving sweep — shards 1/2/4/8 under 16 and
## 64 concurrent clients, plus WAL-enabled points at 1 and 4 shards —
## archived as BENCH_shard.{txt,json}. Docs-per-group-commit is reported
## per run; on a single-vCPU runner the shard sweep measures routing and
## fan-out overhead rather than parallel speedup (the benchmark logs a
## note when GOMAXPROCS=1).
bench-shard:
	$(GO) test -bench='ServeSharded' -benchmem -count=$(BENCH_COUNT) -run '^$$' -timeout 30m ./internal/serve > BENCH_shard.txt
	$(GO) run ./cmd/benchjson -o BENCH_shard.json < BENCH_shard.txt

## bench-lifecycle: steady-state continuous mining on an unbounded
## drifting-campaign stream (BenchmarkStreamLifecycleFlush) with the
## template cap, TTL, MDL merge, and incremental miner on — flush p50/p99
## latency (promoted to first-class JSON fields), bytes/op as the RSS
## proxy, the steady-state live-template count, and the incremental
## variant against the from-scratch re-clustering baseline — archived as
## BENCH_lifecycle.{txt,json}. CI runs this with BENCH_COUNT=1 and
## uploads both as artifacts.
bench-lifecycle:
	$(GO) test -bench='StreamLifecycleFlush' -benchmem -count=$(BENCH_COUNT) -run '^$$' -timeout 30m ./internal/stream > BENCH_lifecycle.txt
	$(GO) run ./cmd/benchjson -o BENCH_lifecycle.json < BENCH_lifecycle.txt

bench-all:
	$(GO) test -bench=. -benchmem -run '^$$'

## experiments: regenerate the paper's tables and figures (small scale).
experiments:
	$(GO) run ./cmd/experiments
