GO ?= go

.PHONY: check test build vet bench bench-coarse bench-all experiments

## check: the full gate — vet, build, and race-enabled tests.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

## bench: the end-to-end pipeline benchmark at both corpus sizes,
## repeated for stable numbers.
bench:
	$(GO) test -bench=PipelineEndToEnd -benchmem -count=5 -run '^$$'

## bench-coarse: the coarse-pass microbenchmarks, including the
## 1/2/4/8-worker scaling sweep.
bench-coarse:
	$(GO) test -bench='Coarse|TopPhrase' -benchmem -run '^$$'

bench-all:
	$(GO) test -bench=. -benchmem -run '^$$'

## experiments: regenerate the paper's tables and figures (small scale).
experiments:
	$(GO) run ./cmd/experiments
