package infoshield

import (
	"infoshield/internal/stream"
)

// StreamDetector ingests documents incrementally: each document either
// attaches to an already-mined template immediately (the same MDL
// criterion as the batch pipeline, with slots matching as wildcards) or
// buffers until BatchSize documents accumulate, at which point the full
// pipeline mines new templates from the buffer.
//
// This is the deployment shape of the paper's application: ads and tweets
// arrive continuously, and known campaigns should be recognized without
// re-clustering the world.
type StreamDetector struct {
	d *stream.Detector
}

// NewStreamDetector creates an empty incremental detector. batchSize <= 0
// selects the default (512).
func NewStreamDetector(cfg Config, batchSize int) *StreamDetector {
	d := stream.New(cfg.toCore())
	if batchSize > 0 {
		d.BatchSize = batchSize
	}
	return &StreamDetector{d: d}
}

// Add ingests one document and returns its id.
func (s *StreamDetector) Add(text string) int { return s.d.Add(text) }

// AddBatch ingests many documents and returns their ids.
func (s *StreamDetector) AddBatch(texts []string) []int { return s.d.AddBatch(texts) }

// Flush forces a mining pass over the buffered documents.
func (s *StreamDetector) Flush() { s.d.Flush() }

// Template returns the template index assigned to a document id, or -1.
// pending reports that the document still waits for the next mining pass.
func (s *StreamDetector) Template(id int) (template int, pending bool) {
	a := s.d.Assignment(id)
	return a.Template, a.Pending
}

// NumTemplates returns the number of templates mined so far.
func (s *StreamDetector) NumTemplates() int { return s.d.NumTemplates() }

// Pending returns the number of buffered documents.
func (s *StreamDetector) Pending() int { return s.d.Pending() }
