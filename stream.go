package infoshield

import (
	"io"

	"infoshield/internal/stream"
)

// StreamDetector ingests documents incrementally: each document either
// attaches to an already-mined template immediately (the same MDL
// criterion as the batch pipeline, with slots matching as wildcards) or
// buffers until BatchSize documents accumulate, at which point the full
// pipeline mines new templates from the buffer.
//
// This is the deployment shape of the paper's application: ads and tweets
// arrive continuously, and known campaigns should be recognized without
// re-clustering the world.
type StreamDetector struct {
	d *stream.Detector
}

// NewStreamDetector creates an empty incremental detector. batchSize <= 0
// selects the default (512).
func NewStreamDetector(cfg Config, batchSize int) *StreamDetector {
	d := stream.New(cfg.toCore())
	if batchSize > 0 {
		d.BatchSize = batchSize
	}
	return &StreamDetector{d: d}
}

// StreamLifecycle bounds a long-running detector. The zero value keeps
// today's behavior: every mined template lives forever and each flush
// re-mines only the pending buffer.
type StreamLifecycle struct {
	// MaxTemplates caps the live template count; 0 means unbounded. When
	// a flush pushes the count over the cap, the least-recently-matched
	// templates are evicted (ties broken by smaller DocCount, then lower
	// index).
	MaxTemplates int
	// TTL retires a template once more than TTL documents have been
	// ingested since it last matched; 0 disables age-out.
	TTL int
	// Merge folds a freshly mined template into an existing near-duplicate
	// when the MDL cost says the pair compresses better as one.
	Merge bool
	// Incremental carries document-frequency counts and recent unmatched
	// documents across flushes, so each mining pass clusters only new and
	// touched documents instead of re-clustering the buffer from scratch.
	Incremental bool
	// RetainFlushes / RetainDocs bound the incremental miner's carryover
	// window (flush epochs and document count); 0 selects the defaults.
	RetainFlushes int
	RetainDocs    int
}

// SetLifecycle configures template aging, eviction, merging, and
// incremental mining. Call before ingesting documents.
func (s *StreamDetector) SetLifecycle(lc StreamLifecycle) {
	s.d.Lifecycle = stream.Lifecycle{
		MaxTemplates:  lc.MaxTemplates,
		TTL:           lc.TTL,
		Merge:         lc.Merge,
		Incremental:   lc.Incremental,
		RetainFlushes: lc.RetainFlushes,
		RetainDocs:    lc.RetainDocs,
	}
}

// Add ingests one document and returns its id.
func (s *StreamDetector) Add(text string) int { return s.d.Add(text) }

// AddBatch ingests many documents and returns their ids.
func (s *StreamDetector) AddBatch(texts []string) []int { return s.d.AddBatch(texts) }

// Flush forces a mining pass over the buffered documents.
func (s *StreamDetector) Flush() { s.d.Flush() }

// Template returns the template index assigned to a document id, or -1.
// pending reports that the document still waits for the next mining pass.
func (s *StreamDetector) Template(id int) (template int, pending bool) {
	a := s.d.Assignment(id)
	return a.Template, a.Pending
}

// NumTemplates returns the number of template slots allocated so far,
// including retired ones — indices returned by Template stay in range.
func (s *StreamDetector) NumTemplates() int { return s.d.NumTemplates() }

// NumLive returns the number of templates currently matching documents
// (mined or registered, minus evicted, aged-out, and merged-away).
func (s *StreamDetector) NumLive() int { return s.d.NumLive() }

// StreamTemplate is a reporting view of one mined template.
type StreamTemplate struct {
	// Pattern renders constants verbatim and slots as "*".
	Pattern string
	// Slots is the number of slot positions.
	Slots int
	// DocCount is the running number of documents the template has
	// encoded (mined members plus later streaming matches).
	DocCount int
	// Dead marks a retired slot (evicted, aged out, or merged away).
	// Positions are stable, so historical Template verdicts still index
	// into this slice.
	Dead bool
}

// Templates renders the mined templates for reporting, in mining order
// (indices match the values returned by Template).
func (s *StreamDetector) Templates() []StreamTemplate {
	out := make([]StreamTemplate, s.d.NumTemplates())
	for i := range out {
		ti := s.d.TemplateInfo(i)
		out[i] = StreamTemplate{Pattern: ti.Pattern, Slots: ti.Slots, DocCount: ti.DocCount, Dead: ti.Dead}
	}
	return out
}

// Pending returns the number of buffered documents.
func (s *StreamDetector) Pending() int { return s.d.Pending() }

// StreamStats reports the cumulative work of the serving path's template
// matcher — the streaming analogue of Result.Timings(). DPPruned over
// Candidates is the DP-skip rate: the fraction of template comparisons
// the tiered index and its admissible lower bounds resolved without
// running the wildcard alignment.
type StreamStats struct {
	// Probes counts documents tested against a non-empty template set.
	Probes int
	// Candidates counts template candidates considered across all probes.
	Candidates int
	// Examined counts candidates that survived the tiered index's bucket
	// and mass pruning and reached the per-candidate bounds.
	Examined int
	// DPRuns counts full wildcard-alignment DPs executed.
	DPRuns int
	// DPPruned counts candidates skipped by the admissible lower bounds
	// (bucket skips, mass prunes, and per-candidate rejections).
	DPPruned int
	// BitDPRuns counts bit-parallel exact-distance evaluations.
	BitDPRuns int
	// BitDPPruned counts candidates the exact-distance refinement
	// rejected after the overlap bound had passed them.
	BitDPPruned int
	// BandRuns counts exact alignments routed through the banded DP
	// (band seeded by the bit-parallel distance); BandRetries counts band
	// widenings — zero in healthy operation, since the seed is exact.
	BandRuns    int
	BandRetries int
	// BitmapSkips counts probes the token → bucket-set bitmap resolved
	// without touching a postings chunk; PostingsWalks counts probes that
	// walked at least one chain. Together they partition the probes the
	// pruning index served.
	BitmapSkips   int
	PostingsWalks int
	// WalkNs / BoundNs / BitDPNs / ExactDPNs attribute the matcher's
	// wall-clock to its stages: postings walk + candidate assembly, the
	// batched bound loop, bit-parallel distance refinement, and exact
	// alignment. Unlike the counters above these are timings, not pure
	// per-document functions.
	WalkNs    int64
	BoundNs   int64
	BitDPNs   int64
	ExactDPNs int64
	// CandHist is the log2 histogram of per-probe examined-candidate
	// counts: bucket k counts probes whose surviving set had
	// ⌈lg(n+1)⌉ = k candidates.
	CandHist [stream.CandHistBuckets]int
	// Lifecycle counters: Flushes and FlushDocs count mining passes and
	// the documents they consumed; TemplatesMined / Merged / Evicted /
	// Aged count lifecycle events. MineReusedDocs over MineClusteredDocs
	// is the incremental miner's reuse rate — the fraction of clustered
	// documents that were carried over from earlier flushes rather than
	// arriving in the pending buffer.
	Flushes           int
	FlushDocs         int
	TemplatesMined    int
	TemplatesMerged   int
	TemplatesEvicted  int
	TemplatesAged     int
	MineReusedDocs    int
	MineClusteredDocs int
}

// Stats returns the serving-path counters accumulated since creation.
func (s *StreamDetector) Stats() StreamStats {
	st := s.d.Stats()
	return StreamStats{
		Probes:        st.Probes,
		Candidates:    st.Candidates,
		Examined:      st.Examined,
		DPRuns:        st.DPRuns,
		DPPruned:      st.DPPruned,
		BitDPRuns:     st.BitDPRuns,
		BitDPPruned:   st.BitDPPruned,
		BandRuns:      st.BandRuns,
		BandRetries:   st.BandRetries,
		BitmapSkips:   st.BitmapSkips,
		PostingsWalks: st.PostingsWalks,
		WalkNs:        st.WalkNs,
		BoundNs:       st.BoundNs,
		BitDPNs:       st.BitDPNs,
		ExactDPNs:     st.ExactDPNs,
		CandHist:      st.CandHist,

		Flushes:           st.Flushes,
		FlushDocs:         st.FlushDocs,
		TemplatesMined:    st.TemplatesMined,
		TemplatesMerged:   st.TemplatesMerged,
		TemplatesEvicted:  st.TemplatesEvicted,
		TemplatesAged:     st.TemplatesAged,
		MineReusedDocs:    st.MineReusedDocs,
		MineClusteredDocs: st.MineClusteredDocs,
	}
}

// RegisterTemplate adds one template directly, bypassing mining — the
// bulk-load path for serving processes that receive template sets mined
// elsewhere. words and wild run in lockstep; words at wild positions are
// ignored (slots match any token). Returns the new template's index.
func (s *StreamDetector) RegisterTemplate(words []string, wild []bool) (int, error) {
	return s.d.Register(words, wild)
}

// Save serializes the detector state: mined templates (with lifecycle
// markers), the pending buffer (texts and ids), and the incremental
// miner's carryover window — a snapshot taken mid-buffer loses nothing.
func (s *StreamDetector) Save(w io.Writer) error { return s.d.Save(w) }

// Load restores templates saved by Save, merging after any templates the
// detector already holds; the candidate-pruning index is rebuilt over the
// loading detector's vocabulary.
func (s *StreamDetector) Load(r io.Reader) error { return s.d.Load(r) }
