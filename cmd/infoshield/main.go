// Command infoshield runs near-duplicate micro-cluster detection over a
// document file and reports the discovered templates.
//
// Input formats (chosen by extension, or forced with -format):
//
//	.jsonl  one JSON document per line ({"text": ...}, see internal/corpus)
//	.csv    CSV with a header produced by gencorpus, or bare text rows
//	.txt    one raw document per line
//
// Examples:
//
//	infoshield ads.csv
//	infoshield -html report.html tweets.jsonl
//	cat docs.txt | infoshield -format txt -
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"infoshield"
	"infoshield/internal/corpus"
	"infoshield/internal/metrics"
)

func main() {
	format := flag.String("format", "", "input format: jsonl, csv, or txt (default: by extension)")
	htmlOut := flag.String("html", "", "write an HTML report to this file")
	evalFlag := flag.Bool("eval", false, "score against labels in the input (csv/jsonl with label columns)")
	noColor := flag.Bool("no-color", false, "plain text output without ANSI colors")
	maxNgram := flag.Int("max-ngram", 0, "coarse max n-gram length (0 = paper default 5)")
	topFrac := flag.Float64("top-fraction", 0, "coarse top-phrase fraction (0 = paper default 0.10)")
	starMSA := flag.Bool("star-msa", false, "use star MSA instead of partial order alignment")
	noSlots := flag.Bool("no-slots", false, "disable slot detection")
	workers := flag.Int("workers", 0, "worker pool for the whole pipeline (0 = GOMAXPROCS); never changes output")
	timings := flag.Bool("timings", false, "print per-stage pipeline durations to stderr")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: infoshield [flags] <input file or ->")
		flag.PrintDefaults()
		os.Exit(2)
	}
	docs, err := readInput(flag.Arg(0), *format)
	if err != nil {
		fmt.Fprintln(os.Stderr, "infoshield:", err)
		os.Exit(1)
	}
	texts := docs.Texts()

	result := infoshield.Detect(texts, infoshield.Config{
		MaxNgram:          *maxNgram,
		TopPhraseFraction: *topFrac,
		UseStarMSA:        *starMSA,
		DisableSlots:      *noSlots,
		Workers:           *workers,
	})

	fmt.Printf("documents: %d   vocabulary: %d   clusters: %d   templates: %d\n\n",
		len(texts), result.VocabSize(), len(result.Clusters()), result.NumTemplates())
	if *timings {
		writeTimings(os.Stderr, result.Timings())
	}
	if *evalFlag {
		truth := make([]bool, docs.Len())
		clusters := make([]int, docs.Len())
		for i := range docs.Docs {
			truth[i] = docs.Docs[i].Label
			clusters[i] = docs.Docs[i].ClusterLabel
		}
		conf := metrics.NewConfusion(result.Suspicious(), truth)
		fmt.Printf("eval: precision %.1f%%  recall %.1f%%  F1 %.1f%%  ARI %.1f\n\n",
			conf.Precision()*100, conf.Recall()*100, conf.F1()*100,
			metrics.ARI(result.DocTemplate(), clusters)*100)
	}
	for ci, c := range result.Clusters() {
		fmt.Printf("cluster %d: %d docs, relative length %.4f (lower bound %.4f)\n",
			ci, len(c.Docs), c.RelativeLength, c.LowerBound)
		for _, t := range c.Templates {
			fmt.Printf("  [%d docs, %d slots] %s\n", len(t.Docs), t.Slots, t.Pattern)
		}
	}
	if !*noColor {
		fmt.Println()
		result.WriteText(os.Stdout)
	}
	if *htmlOut != "" {
		f, err := os.Create(*htmlOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "infoshield:", err)
			os.Exit(1)
		}
		if err := result.WriteHTML(f); err == nil {
			err = f.Close()
		} else {
			_ = f.Close() // the write error is the one worth reporting
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "infoshield:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *htmlOut)
	}
}

// writeTimings prints the per-stage durations of a Detect run. Fine
// sub-stages are summed across concurrent cluster workers, so with
// Workers > 1 they measure aggregate CPU time, not wall clock.
func writeTimings(w io.Writer, tm infoshield.Timings) {
	fmt.Fprintf(w, "timings:\n")
	fmt.Fprintf(w, "  coarse     %12v   (tokenize %v, extract %v, score %v, components %v)\n",
		tm.Coarse, tm.Tokenize, tm.CoarseExtract, tm.CoarseScore, tm.CoarseComponents)
	fmt.Fprintf(w, "  fine       %12v   (screen %v, align %v, consensus %v, slots %v; CPU time across workers)\n",
		tm.Fine, tm.FineScreen, tm.FineAlign, tm.FineConsensus, tm.FineSlots)
	fmt.Fprintf(w, "  total      %12v\n", tm.Coarse+tm.Fine)
}

// readInput loads documents from path ("-" = stdin).
func readInput(path, format string) (*corpus.Corpus, error) {
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	if format == "" {
		switch {
		case strings.HasSuffix(path, ".jsonl"):
			format = "jsonl"
		case strings.HasSuffix(path, ".csv"):
			format = "csv"
		default:
			format = "txt"
		}
	}
	switch format {
	case "jsonl":
		return corpus.ReadJSONL(r)
	case "csv":
		return corpus.ReadCSV(r)
	case "txt":
		var texts []string
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			if line := strings.TrimSpace(sc.Text()); line != "" {
				texts = append(texts, line)
			}
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return corpus.New(texts), nil
	}
	return nil, fmt.Errorf("unknown format %q", format)
}
