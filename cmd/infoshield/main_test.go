package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestReadInputTxt(t *testing.T) {
	path := writeTemp(t, "in.txt", "first doc\n\nsecond doc\n   \nthird\n")
	c, err := readInput(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 || c.Docs[1].Text != "second doc" {
		t.Errorf("texts = %v", c.Texts())
	}
}

func TestReadInputCSVByExtension(t *testing.T) {
	path := writeTemp(t, "in.csv",
		"id,text,account,label,cluster_label,ordinal\n0,hello world,u1,true,3,5\n")
	c, err := readInput(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 || !c.Docs[0].Label || c.Docs[0].ClusterLabel != 3 {
		t.Errorf("doc = %+v", c.Docs[0])
	}
}

func TestReadInputJSONL(t *testing.T) {
	path := writeTemp(t, "in.jsonl",
		`{"text":"a b c","label":true,"cluster_label":7}`+"\n"+
			`{"text":"d e f","cluster_label":-1}`+"\n")
	c, err := readInput(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Docs[0].ClusterLabel != 7 {
		t.Errorf("docs = %+v", c.Docs)
	}
}

func TestReadInputForcedFormat(t *testing.T) {
	// A .dat file parsed as txt.
	path := writeTemp(t, "in.dat", "one line\n")
	c, err := readInput(path, "txt")
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
	if _, err := readInput(path, "parquet"); err == nil {
		t.Error("expected unknown-format error")
	}
}

func TestReadInputMissingFile(t *testing.T) {
	if _, err := readInput("/nonexistent/nope.txt", ""); err == nil {
		t.Error("expected open error")
	}
}
