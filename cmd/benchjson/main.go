// Command benchjson converts `go test -bench` text output (read from
// stdin) into a JSON document, so CI can archive benchmark runs as
// machine-readable artifacts and diff them across commits.
//
// Usage:
//
//	go test -bench=. -benchmem -run '^$' | benchjson -o BENCH.json
//
// Each "BenchmarkX ... N iter ... ns/op ..." result line becomes one
// entry; repeated names (from -count=N) stay separate entries so
// downstream tooling can aggregate however it likes. The goos / goarch /
// pkg / cpu header lines are captured as run metadata.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// CandPerProbe and DPSkipRate are the matcher's two headline serving
	// metrics (candidates examined per probe, and the fraction of
	// candidates resolved without an exact DP), promoted from Extra so
	// regression tooling can diff them without knowing ReportMetric unit
	// strings.
	CandPerProbe float64 `json:"cand_per_probe,omitempty"`
	DPSkipRate   float64 `json:"dp_skip_rate,omitempty"`
	// FlushP50Ns and FlushP99Ns are the lifecycle benchmark's flush-
	// latency distribution (mining-pass wall-clock per flush at steady
	// state), promoted for the same reason.
	FlushP50Ns float64 `json:"flush_p50_ns,omitempty"`
	FlushP99Ns float64 `json:"flush_p99_ns,omitempty"`
	// Extra holds any benchmark metric beyond those above
	// (e.g. MB/s from SetBytes, or custom ReportMetric units).
	Extra map[string]float64 `json:"extra,omitempty"`
}

type report struct {
	Goos    string   `json:"goos,omitempty"`
	Goarch  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []result `json:"results"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*report, error) {
	rep := &report{Results: []result{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			res, ok := parseResult(line)
			if ok {
				rep.Results = append(rep.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseResult parses one benchmark result line:
//
//	BenchmarkFine/workers=1   40   27097762 ns/op   7049147 B/op   28544 allocs/op
//
// Fields after the iteration count come in (value, unit) pairs.
func parseResult(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	res := result{Name: fields[0], Iters: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		case "cand/probe":
			res.CandPerProbe = v
		case "dpskip/candidate":
			res.DPSkipRate = v
		case "flush-p50-ns":
			res.FlushP50Ns = v
		case "flush-p99-ns":
			res.FlushP99Ns = v
		default:
			if res.Extra == nil {
				res.Extra = map[string]float64{}
			}
			res.Extra[unit] = v
		}
	}
	return res, true
}
