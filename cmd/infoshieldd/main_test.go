package main

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"infoshield/internal/serve"
)

// freePort reserves an ephemeral port and releases it for the daemon.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// devNull returns a writable sink file.
func devNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// TestDaemonLifecycle boots the daemon, feeds it documents over HTTP,
// shuts it down with SIGTERM, and verifies the drain protocol left a
// loadable state snapshot behind.
func TestDaemonLifecycle(t *testing.T) {
	addr := freePort(t)
	statePath := filepath.Join(t.TempDir(), "state.json")
	sink := devNull(t)

	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-state", statePath}, sink, sink)
	}()

	base := "http://" + addr
	waitHealthy(t, base, done)

	// 3 campaign near-duplicates + 4 noise docs: enough idf contrast for
	// the shutdown flush to mine one template from the buffer.
	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"text":"limited offer buy the premium golden package today visit site%04d.example now"}`, i)
		postOK(t, base+"/v1/docs", body)
	}
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"text":"nq%da nq%db nq%dc nq%dd nq%de nq%df"}`, i, i, i, i, i, i)
		postOK(t, base+"/v1/docs", body)
	}

	// SIGTERM: the daemon must drain, flush the buffered docs, snapshot,
	// and exit 0.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exited %d", code)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	checkSnapshot(t, statePath, 1)
}

// checkSnapshot boots a fresh sharded detector set from the manifest the
// drain left behind and verifies the shutdown flush mined templates.
func checkSnapshot(t *testing.T, statePath string, shards int) {
	t.Helper()
	if _, err := os.Stat(statePath); err != nil {
		t.Fatalf("no state snapshot after shutdown: %v", err)
	}
	sh, err := serve.NewSharded(serve.ShardedConfig{Shards: shards, StatePath: statePath})
	if err != nil {
		t.Fatalf("snapshot does not load: %v", err)
	}
	defer sh.Close()
	tmpls, err := sh.Templates()
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpls) == 0 {
		t.Error("shutdown flush mined no template")
	}
}

// TestDaemonShardedLifecycle runs the daemon with multiple shards and a
// write-ahead log: ingest, SIGTERM drain, then verify the manifest loads
// with the right shard count and the WALs were truncated.
func TestDaemonShardedLifecycle(t *testing.T) {
	addr := freePort(t)
	dir := t.TempDir()
	statePath := filepath.Join(dir, "state.json")
	walDir := filepath.Join(dir, "wal")
	if err := os.MkdirAll(walDir, 0o755); err != nil {
		t.Fatal(err)
	}
	sink := devNull(t)

	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-addr", addr, "-state", statePath,
			"-shards", "2", "-wal-dir", walDir}, sink, sink)
	}()

	base := "http://" + addr
	waitHealthy(t, base, done)

	for i := 0; i < 6; i++ {
		body := fmt.Sprintf(`{"text":"limited offer buy the premium golden package today visit site%04d.example now"}`, i)
		postOK(t, base+"/v1/docs", body)
	}
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"text":"nq%da nq%db nq%dc nq%dd nq%de nq%df"}`, i, i, i, i, i, i)
		postOK(t, base+"/v1/docs", body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-done:
		if code != 0 {
			t.Fatalf("daemon exited %d", code)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}

	checkSnapshot(t, statePath, 2)
	for k := 0; k < 2; k++ {
		info, err := os.Stat(filepath.Join(walDir, fmt.Sprintf("wal-%d.log", k)))
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() != 0 {
			t.Errorf("wal-%d not truncated by drain: %d bytes", k, info.Size())
		}
	}
}

func TestDaemonBadFlags(t *testing.T) {
	sink := devNull(t)
	if code := run([]string{"-nope"}, sink, sink); code != 2 {
		t.Errorf("bad flag: exit %d, want 2", code)
	}
	if code := run([]string{"positional"}, sink, sink); code != 2 {
		t.Errorf("positional arg: exit %d, want 2", code)
	}
}

func TestDaemonBadStateFile(t *testing.T) {
	sink := devNull(t)
	path := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(path, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{"-state", path}, sink, sink); code != 1 {
		t.Errorf("corrupt state: exit %d, want 1", code)
	}
}

// waitHealthy polls /healthz until the daemon answers (or it exited).
func waitHealthy(t *testing.T, base string, done <-chan int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		select {
		case code := <-done:
			t.Fatalf("daemon exited %d before becoming healthy", code)
		default:
		}
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

func postOK(t *testing.T, url, body string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", url, resp.StatusCode)
	}
}
