// Command infoshieldd serves the streaming InfoShield detector over
// HTTP/JSON. Concurrent single-document requests are transparently
// coalesced into detector batches (group-commit micro-batching), so the
// parallel AddBatch fan-out is exercised even when every client sends
// one document at a time.
//
// Endpoints:
//
//	POST /v1/docs             {"text": "..."} or {"texts": ["...", ...]}
//	GET  /v1/assignments/{id}
//	GET  /v1/templates
//	GET  /v1/stats
//	POST /v1/flush
//	POST /v1/snapshot         {"path": "..."} optional
//	GET  /healthz
//	GET  /debug/pprof/...
//
// On SIGINT/SIGTERM the daemon stops accepting connections, waits for
// in-flight requests, drains the coalescer queue, and — when -state is
// set — mines the remaining buffer and snapshots the templates before
// exiting.
//
// Example:
//
//	infoshieldd -addr :8743 -state /var/lib/infoshield/state.json &
//	curl -s localhost:8743/v1/docs -d '{"text":"big sale call now"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"infoshield/internal/core"
	"infoshield/internal/serve"
	"infoshield/internal/stream"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so tests can drive it.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("infoshieldd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8743", "listen address")
	state := fs.String("state", "", "state file: loaded at startup if present, snapshotted on shutdown and by POST /v1/snapshot")
	workers := fs.Int("workers", 0, "worker pool for batched matching and mining (0 = GOMAXPROCS); never changes verdicts")
	mineBatch := fs.Int("mine-batch", 0, "buffered documents that trigger a mining pass (0 = detector default 512)")
	maxBatch := fs.Int("max-batch", 0, "documents that flush a coalesced ingest batch (0 = default 256)")
	maxWait := fs.Duration("max-wait", 0, "latency budget for growing an ingest batch (0 = commit as soon as the queue drains)")
	queueDepth := fs.Int("queue-depth", 0, "ingest queue depth in requests (0 = default 1024)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: infoshieldd [flags]")
		fs.PrintDefaults()
		return 2
	}

	det := stream.New(core.Options{Workers: *workers})
	if *mineBatch > 0 {
		det.BatchSize = *mineBatch
	}
	if *state != "" {
		if err := loadState(det, *state); err != nil {
			fmt.Fprintln(stderr, "infoshieldd:", err)
			return 1
		}
	}

	c := serve.NewCoalescer(det, serve.Options{
		MaxBatch:   *maxBatch,
		MaxWait:    *maxWait,
		QueueDepth: *queueDepth,
	})
	srv := &http.Server{
		Addr:    *addr,
		Handler: serve.NewServer(c, *state).Handler(),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(stdout, "infoshieldd: listening on %s (%d templates loaded)\n",
			*addr, det.NumTemplates())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listen failed before any signal: nothing to drain.
		fmt.Fprintln(stderr, "infoshieldd:", err)
		return 1
	case <-ctx.Done():
	}

	// Shutdown protocol: stop accepting connections and wait for in-flight
	// HTTP requests (whose Submits must reach the queue before we close
	// it), then mine + snapshot while the coalescer still accepts control
	// requests, and finally drain and stop the sequencer.
	fmt.Fprintln(stdout, "infoshieldd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(stderr, "infoshieldd: shutdown:", err)
	}
	code := 0
	if *state != "" {
		if err := c.Flush(); err != nil {
			fmt.Fprintln(stderr, "infoshieldd: final flush:", err)
			code = 1
		}
		if _, err := serve.SnapshotToFile(c, *state); err != nil {
			fmt.Fprintln(stderr, "infoshieldd: final snapshot:", err)
			code = 1
		} else {
			fmt.Fprintf(stdout, "infoshieldd: snapshotted state to %s\n", *state)
		}
	}
	if err := c.Close(); err != nil {
		fmt.Fprintln(stderr, "infoshieldd: close:", err)
		code = 1
	}
	return code
}

// loadState restores a previous snapshot; a missing file is a fresh
// start, not an error.
func loadState(det *stream.Detector, path string) error {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	return det.Load(f)
}
