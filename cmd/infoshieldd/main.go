// Command infoshieldd serves the streaming InfoShield detector over
// HTTP/JSON. Concurrent single-document requests are transparently
// coalesced into detector batches (group-commit micro-batching), and
// -shards splits the detector into S independent shards — each with its
// own sequencer, coalescer, and write-ahead log — routed by a hash or
// language key computed from the token stream.
//
// Endpoints:
//
//	POST /v1/docs             {"text": "..."} or {"texts": ["...", ...]}
//	GET  /v1/assignments/{id}
//	GET  /v1/templates
//	GET  /v1/stats            per-shard blocks plus the rolled-up total
//	POST /v1/flush
//	POST /v1/snapshot         {"path": "..."} optional
//	GET  /healthz
//	GET  /debug/pprof/...
//
// On SIGINT/SIGTERM the daemon stops accepting connections, waits for
// in-flight requests, drains every shard's coalescer queue, and — when
// -state is set — mines the remaining buffers, snapshots the manifest,
// and truncates the write-ahead logs before exiting.
//
// Example:
//
//	infoshieldd -addr :8743 -shards 4 -wal-dir /var/lib/infoshield/wal \
//	    -state /var/lib/infoshield/state.json &
//	curl -s localhost:8743/v1/docs -d '{"text":"big sale call now"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"infoshield/internal/core"
	"infoshield/internal/serve"
	"infoshield/internal/stream"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment injected, so tests can drive it.
func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("infoshieldd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", ":8743", "listen address")
	state := fs.String("state", "", "state file: loaded at startup if present, snapshotted on shutdown and by POST /v1/snapshot")
	shards := fs.Int("shards", 1, "detector shard count; each shard has its own sequencer, coalescer, and WAL")
	route := fs.String("route", serve.RouteHash, `shard routing: "hash" (balanced) or "lang" (keeps each language's templates on one shard)`)
	walDir := fs.String("wal-dir", "", "write-ahead-log directory: every acked document is logged (and fsynced) before its verdict returns, and replayed on boot")
	workers := fs.Int("workers", 0, "per-shard worker pool for batched matching and mining (0 = GOMAXPROCS); never changes verdicts")
	mineBatch := fs.Int("mine-batch", 0, "buffered documents that trigger a mining pass (0 = detector default 512)")
	maxBatch := fs.Int("max-batch", 0, "documents that flush a coalesced ingest batch (0 = default 256)")
	maxWait := fs.Duration("max-wait", 0, "latency budget for growing an ingest batch (0 = commit as soon as the queue drains)")
	queueDepth := fs.Int("queue-depth", 0, "per-shard ingest queue depth in requests (0 = default 1024)")
	maxTemplates := fs.Int("max-templates", 0, "per-shard live-template cap; the least-recently-matched templates are evicted past it (0 = unbounded)")
	templateTTL := fs.Int("template-ttl", 0, "retire a template after this many ingested documents without a match (0 = never)")
	mergeTemplates := fs.Bool("merge-templates", false, "fold freshly mined templates into existing near-duplicates when the MDL cost favors one template")
	incrementalMine := fs.Bool("incremental-mine", false, "carry document-frequency counts and recent unmatched documents across flushes so each mining pass clusters only new and touched documents")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 0 {
		fmt.Fprintln(stderr, "usage: infoshieldd [flags]")
		fs.PrintDefaults()
		return 2
	}

	sh, err := serve.NewSharded(serve.ShardedConfig{
		Shards:    *shards,
		Route:     *route,
		WALDir:    *walDir,
		StatePath: *state,
		Coalescer: serve.Options{
			MaxBatch:   *maxBatch,
			MaxWait:    *maxWait,
			QueueDepth: *queueDepth,
		},
		NewDetector: func() *stream.Detector {
			det := stream.New(core.Options{Workers: *workers})
			if *mineBatch > 0 {
				det.BatchSize = *mineBatch
			}
			det.Lifecycle = stream.Lifecycle{
				MaxTemplates: *maxTemplates,
				TTL:          *templateTTL,
				Merge:        *mergeTemplates,
				Incremental:  *incrementalMine,
			}
			return det
		},
	})
	if err != nil {
		fmt.Fprintln(stderr, "infoshieldd:", err)
		return 1
	}

	srv := &http.Server{
		Addr:    *addr,
		Handler: serve.NewServer(sh, *state).Handler(),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(stdout, "infoshieldd: listening on %s (%d shards, route=%s)\n",
			*addr, sh.Shards(), sh.Route())
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		// Listen failed before any signal: nothing to drain.
		fmt.Fprintln(stderr, "infoshieldd:", err)
		_ = sh.Close()
		return 1
	case <-ctx.Done():
	}

	// Shutdown protocol: stop accepting connections and wait for in-flight
	// HTTP requests (whose Submits must reach the shard queues before the
	// accept gate closes), then hand off to Drain — which drains every
	// shard, final-flushes, snapshots the manifest when -state is set, and
	// truncates the WALs only after the manifest commits.
	fmt.Fprintln(stdout, "infoshieldd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(stderr, "infoshieldd: shutdown:", err)
	}
	code := 0
	if err := sh.Drain(*state); err != nil {
		fmt.Fprintln(stderr, "infoshieldd: drain:", err)
		code = 1
	} else if *state != "" {
		fmt.Fprintf(stdout, "infoshieldd: snapshotted state to %s\n", *state)
	}
	return code
}
