// Command infoshield-vet runs the project's custom static-analysis suite
// (internal/analysis) over every package of the module: determinism
// (maporder), concurrency discipline (looprace), MDL-cost comparison
// hygiene (floateq), dropped results (ctxerr), and the interprocedural
// fact-layer analyzers — pooled-memory escapes (scratchalias), goroutine
// join discipline (goleak), atomic/plain access mixing and lock copies
// (atomicmix), and channel shutdown protocol (chanproto). It is
// stdlib-only — the loader type-checks the module with go/parser and
// go/types, with no golang.org/x/tools dependency.
//
// Usage:
//
//	infoshield-vet [flags] [dir]
//
//	-run  maporder,floateq   run only the named analyzers (default all)
//	-json                    machine-readable output
//	-sarif file              also write a SARIF 2.1.0 report to file
//	-since stampfile         analyze only packages with files newer than
//	                         the stamp's mtime (full run if it is absent)
//	-baseline file           tolerate findings recorded in the baseline
//	-write-baseline file     record current findings and exit 0
//	-list                    print the analyzers and exit
//	-v                       also print suppressed/baselined findings
//
// Exit status: 0 when no unsuppressed, non-baselined finding exists;
// 1 when findings remain; 2 on usage or load errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"infoshield/internal/analysis"
)

type jsonReport struct {
	Module     string                `json:"module"`
	Findings   []analysis.Diagnostic `json:"findings"`
	Baselined  []analysis.Diagnostic `json:"baselined,omitempty"`
	Suppressed []analysis.Diagnostic `json:"suppressed,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	runFlag := flag.String("run", "all", "comma-separated analyzers to run")
	jsonFlag := flag.Bool("json", false, "emit findings as JSON")
	sarifFlag := flag.String("sarif", "", "also write a SARIF 2.1.0 report to this file")
	sinceFlag := flag.String("since", "", "stamp file: analyze only packages with files newer than its mtime")
	baselineFlag := flag.String("baseline", "", "baseline file of accepted findings")
	writeBaseline := flag.String("write-baseline", "", "write current findings to this baseline file and exit")
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	verbose := flag.Bool("v", false, "also print suppressed and baselined findings")
	flag.Parse()

	if *listFlag {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	azs, err := analysis.ByName(*runFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "infoshield-vet:", err)
		return 2
	}
	dir := "."
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: infoshield-vet [flags] [dir]")
		return 2
	}
	if flag.NArg() == 1 {
		dir = flag.Arg(0)
	}

	mod, err := analysis.LoadModule(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "infoshield-vet:", err)
		return 2
	}
	keep := keepFunc(mod, *sinceFlag)
	findings, suppressed := analysis.RunFiltered(mod, azs, keep)

	if *writeBaseline != "" {
		if err := analysis.WriteBaseline(*writeBaseline, findings); err != nil {
			fmt.Fprintln(os.Stderr, "infoshield-vet:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "infoshield-vet: wrote %d finding(s) to %s\n", len(findings), *writeBaseline)
		return 0
	}

	var baselined []analysis.Diagnostic
	if *baselineFlag != "" {
		b, err := analysis.ReadBaseline(*baselineFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, "infoshield-vet:", err)
			return 2
		}
		findings, baselined = b.Filter(findings)
	}

	if *jsonFlag {
		if findings == nil {
			findings = []analysis.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		report := jsonReport{Module: mod.Path, Findings: findings, Baselined: baselined}
		if *verbose {
			report.Suppressed = suppressed
		}
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "infoshield-vet:", err)
			return 2
		}
	} else {
		for _, d := range findings {
			fmt.Println(d)
		}
		if *verbose {
			for _, d := range baselined {
				fmt.Printf("%s (baselined)\n", d)
			}
			for _, d := range suppressed {
				fmt.Printf("%s (suppressed)\n", d)
			}
		}
		fmt.Fprintf(os.Stderr, "infoshield-vet: %d package(s), %d finding(s), %d baselined, %d suppressed\n",
			len(mod.Pkgs), len(findings), len(baselined), len(suppressed))
	}
	if *sarifFlag != "" {
		if err := analysis.WriteSARIF(*sarifFlag, azs, findings, baselined, suppressed); err != nil {
			fmt.Fprintln(os.Stderr, "infoshield-vet:", err)
			return 2
		}
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// keepFunc builds the changed-package filter for -since: a package is
// re-analyzed when any of its files is at least as new as the stamp.
// With no stamp (or an unreadable one) every package runs — fast mode
// degrades to a full run, never to a silent skip.
func keepFunc(mod *analysis.Module, stamp string) func(*analysis.Package) bool {
	if stamp == "" {
		return nil
	}
	info, err := os.Stat(stamp)
	if err != nil {
		return nil
	}
	cutoff := info.ModTime()
	return func(pkg *analysis.Package) bool {
		for _, f := range pkg.Files {
			name := mod.Fset.Position(f.Package).Filename
			fi, err := os.Stat(name)
			if err != nil || !fi.ModTime().Before(cutoff) {
				return true
			}
		}
		return false
	}
}
