// Command gencorpus generates the synthetic evaluation corpora (the
// substitutes for the gated Cresci-2017 and Marinus datasets — see
// DESIGN.md §3) as JSONL or CSV.
//
// Examples:
//
//	gencorpus -kind twitter -accounts 200 -seed 1 -o tweets.jsonl
//	gencorpus -kind trafficking10k -o t10k.csv
//	gencorpus -kind clustertrafficking -ct-scale 0.1 -o ct.jsonl
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"infoshield/internal/corpus"
	"infoshield/internal/datagen"
)

func main() {
	kind := flag.String("kind", "twitter", "twitter | trafficking10k | clustertrafficking")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("o", "-", "output file (.jsonl or .csv; - = jsonl on stdout)")
	accounts := flag.Int("accounts", 100, "twitter: accounts per side (genuine and bot)")
	size := flag.Int("size", 0, "trafficking10k: total ads (0 = the real 10265)")
	ctScale := flag.Float64("ct-scale", 1.0, "clustertrafficking: population scale (1.0 = the paper's 157k ads)")
	flag.Parse()

	var c *corpus.Corpus
	switch *kind {
	case "twitter":
		c = datagen.Twitter(datagen.TwitterConfig{
			Seed:            *seed,
			GenuineAccounts: *accounts,
			BotAccounts:     *accounts,
		})
	case "trafficking10k":
		c = datagen.Trafficking10k(datagen.Trafficking10kConfig{Seed: *seed, Size: *size})
	case "clustertrafficking":
		c = datagen.ClusterTrafficking(datagen.ClusterTraffickingConfig{Seed: *seed, Scale: *ctScale})
	default:
		fmt.Fprintf(os.Stderr, "gencorpus: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if err := write(c, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gencorpus:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "generated %d documents (%s, seed %d)\n", c.Len(), *kind, *seed)
}

func write(c *corpus.Corpus, out string) error {
	if out == "-" {
		return c.WriteJSONL(os.Stdout)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if strings.HasSuffix(out, ".csv") {
		err = c.WriteCSV(f)
	} else {
		err = c.WriteJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
