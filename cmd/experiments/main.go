// Command experiments regenerates the paper's tables and figures on the
// synthetic data substitutes (see DESIGN.md §4 for the index and
// EXPERIMENTS.md for recorded results).
//
//	experiments                       # everything at medium scale
//	experiments -run fig2 -scale full # one artifact, paper-scale
//	experiments -run table8ht,fig3
//
// Artifacts: fig1, fig2, fig3 (+fig3.svg), fig4, table8twitter, table8ht,
// table9, table10, table11, language, clustering, ablations.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"infoshield/internal/experiments"
)

type runner struct {
	name string
	fn   func(io.Writer, experiments.Scale)
}

func main() {
	runFlag := flag.String("run", "all", "comma-separated artifacts, or all")
	scaleFlag := flag.String("scale", "medium", "small | medium | full")
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(2)
	}
	all := []runner{
		{"fig1", experiments.Fig1Precision},
		{"fig2", experiments.Fig2Scalability},
		{"table8twitter", experiments.Table8Twitter},
		{"table8ht", experiments.Table8HT},
		{"table9", func(w io.Writer, _ experiments.Scale) { experiments.Table9Multilingual(w) }},
		{"table10", func(w io.Writer, _ experiments.Scale) { experiments.Table10Slots(w) }},
		{"table11", func(w io.Writer, _ experiments.Scale) { experiments.Table11HT(w) }},
		{"fig3", func(w io.Writer, s experiments.Scale) {
			experiments.Fig3RelativeLength(w, s)
			f, err := os.Create("fig3.svg")
			if err == nil {
				if werr := experiments.Fig3SVG(f, s); werr == nil {
					fmt.Fprintln(w, "wrote fig3.svg")
				}
				_ = f.Close() // best-effort figure dump alongside the report
			}
		}},
		{"fig4", experiments.Fig4Ngram},
		{"language", experiments.LanguageBreakdown},
		{"clustering", experiments.ClusteringComparison},
		{"ablations", func(w io.Writer, s experiments.Scale) {
			experiments.AblationSlots(w, s)
			experiments.AblationMSA(w, s)
			experiments.AblationConsensusSearch(w, s)
			experiments.AblationCoarseStrictness(w, s)
			experiments.AblationTopFraction(w, s)
			experiments.AblationCoarseMethod(w, s)
		}},
	}
	want := map[string]bool{}
	if *runFlag != "all" {
		for _, name := range strings.Split(*runFlag, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	ran := 0
	for _, r := range all {
		if len(want) > 0 && !want[r.name] {
			continue
		}
		start := time.Now()
		r.fn(os.Stdout, scale)
		fmt.Printf("[%s done in %.1fs]\n", r.name, time.Since(start).Seconds())
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "experiments: nothing matched -run=%s\n", *runFlag)
		os.Exit(2)
	}
}
