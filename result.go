package infoshield

import (
	"fmt"
	"io"
	"strings"
	"time"

	"infoshield/internal/core"
	"infoshield/internal/viz"
)

// Result is the outcome of Detect.
type Result struct {
	res      *core.Result
	clusters []Cluster
}

// Cluster is one refined micro-cluster: at least one template plus
// compression diagnostics.
type Cluster struct {
	// Templates discovered inside this cluster.
	Templates []Template
	// Docs is the union of member document indices (into the Detect
	// input), ascending.
	Docs []int
	// RelativeLength is compressed/uncompressed cost (Eq. 7): near its
	// LowerBound means near-duplicates; near 1 means weak structure.
	RelativeLength float64
	// LowerBound is the Lemma-1 floor t/n + 1/lg V for this cluster.
	LowerBound float64
}

// Template is one discovered pattern.
type Template struct {
	// Pattern renders constants verbatim and slots as "*".
	Pattern string
	// Slots is the number of slot positions.
	Slots int
	// Docs are the indices of the documents this template encodes, in
	// alignment order.
	Docs []int
}

func newResult(res *core.Result) *Result {
	r := &Result{res: res}
	for i := range res.Clusters {
		cc := &res.Clusters[i]
		pc := Cluster{
			Docs:           cc.Docs,
			RelativeLength: cc.RelativeLength(),
			LowerBound:     cc.LowerBound(res.Vocab.Size()),
		}
		for _, tr := range cc.Templates {
			pc.Templates = append(pc.Templates, Template{
				Pattern: patternString(tr, res),
				Slots:   tr.Template.NumSlots(),
				Docs:    tr.Docs,
			})
		}
		r.clusters = append(r.clusters, pc)
	}
	return r
}

// patternString renders constants verbatim and slots as "*".
func patternString(tr core.TemplateResult, res *core.Result) string {
	var sb strings.Builder
	for i, id := range tr.Template.TokenIDs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if tr.Template.IsSlot[i] {
			sb.WriteByte('*')
		} else {
			sb.WriteString(res.Vocab.Word(id))
		}
	}
	return sb.String()
}

// Clusters returns the discovered micro-clusters in deterministic order.
func (r *Result) Clusters() []Cluster { return r.clusters }

// Suspicious returns, per input document, whether it was encoded by any
// template — the binary prediction the paper evaluates precision and
// recall on.
func (r *Result) Suspicious() []bool { return r.res.Suspicious() }

// DocTemplate returns, per input document, the global index of the
// template that encodes it, or -1. Template indices enumerate
// Clusters()[i].Templates in order.
func (r *Result) DocTemplate() []int { return r.res.DocTemplate }

// NumTemplates returns the total number of discovered templates.
func (r *Result) NumTemplates() int { return r.res.NumTemplates() }

// VocabSize returns V, the number of distinct tokens in the corpus.
func (r *Result) VocabSize() int { return r.res.Vocab.Size() }

// Timings reports the wall-clock durations of a Detect run's pipeline
// stages. Coarse is the whole front half (and includes the four
// sub-stage durations); Fine is the MDL refinement of the candidate
// clusters. Under Config.UseLSHCoarse the tf-idf sub-stages are zero and
// CoarseComponents covers signatures plus banding.
type Timings struct {
	// Tokenize covers word-splitting and vocabulary encoding.
	Tokenize time.Duration
	// CoarseExtract covers phrase-set hashing and document-frequency
	// counting; CoarseScore the tf-idf scoring and top-phrase selection;
	// CoarseComponents the phrase graph and connected components.
	CoarseExtract, CoarseScore, CoarseComponents time.Duration
	// FineScreen covers candidate screening (overlap bound plus the
	// conditional-alignment test); FineAlign the MSA construction;
	// FineConsensus the consensus search; FineSlots slot detection.
	// Fine-stage durations are summed across concurrent cluster workers,
	// so with Workers > 1 they measure aggregate CPU time and may exceed
	// the Fine wall-clock total.
	FineScreen, FineAlign, FineConsensus, FineSlots time.Duration
	// Coarse and Fine are the two pipeline halves' totals.
	Coarse, Fine time.Duration
}

// Timings returns the stage durations of the run that produced r.
func (r *Result) Timings() Timings {
	s := r.res.CoarseStages
	f := r.res.FineStages
	return Timings{
		Tokenize:         s.Tokenize,
		CoarseExtract:    s.Extract,
		CoarseScore:      s.Score,
		CoarseComponents: s.Components,
		FineScreen:       f.Screen,
		FineAlign:        f.Align,
		FineConsensus:    f.Consensus,
		FineSlots:        f.Slots,
		Coarse:           r.res.CoarseDuration,
		Fine:             r.res.FineDuration,
	}
}

// WriteText renders every cluster with ANSI colors (constants plain,
// slots red, insertions green, deletions struck, substitutions yellow).
func (r *Result) WriteText(w io.Writer) {
	tid := 0
	for ci := range r.res.Clusters {
		for _, tr := range r.res.Clusters[ci].Templates {
			label := fmt.Sprintf("T%d", tid)
			viz.WriteCluster(w, label, tr.Template, tr.Fit, tr.Docs, r.res.Vocab, viz.ANSIPalette)
			tid++
		}
	}
}

// WriteHTML renders every cluster as a standalone HTML report.
func (r *Result) WriteHTML(w io.Writer) error {
	var clusters []viz.HTMLCluster
	tid := 0
	for ci := range r.res.Clusters {
		for _, tr := range r.res.Clusters[ci].Templates {
			clusters = append(clusters, viz.HTMLCluster{
				Label:  fmt.Sprintf("Template %d (%d documents)", tid, len(tr.Docs)),
				T:      tr.Template,
				Fit:    tr.Fit,
				DocIDs: tr.Docs,
			})
			tid++
		}
	}
	return viz.WriteHTML(w, clusters, r.res.Vocab)
}
