package infoshield

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// fuzzCorpus turns one fuzz input into a bounded document list: one
// document per line, capped in count and length so Detect stays fast
// under the fuzzer.
func fuzzCorpus(data string) []string {
	const maxDocs, maxLen = 48, 200
	var texts []string
	for _, line := range strings.Split(data, "\n") {
		if len(texts) == maxDocs {
			break
		}
		if len(line) > maxLen {
			line = line[:maxLen]
		}
		texts = append(texts, line)
	}
	return texts
}

// FuzzDetectDeterminism generalizes TestDetectWorkersEquivalence from one
// pinned corpus to arbitrary inputs: for any document list, Detect must
// produce identical clusters and a byte-identical text report at
// Workers: 1 and Workers: 4. This is the invariant the looprace and
// maporder analyzers exist to protect; the fuzzer hunts for corpora whose
// shape (empty docs, near-duplicates, degenerate tokens) slips past the
// deterministic merge paths.
func FuzzDetectDeterminism(f *testing.F) {
	f.Add("big sale call now 555-0101\nbig sale call now 555-0102\nbig sale call now 555-0103\nunrelated chatter over here")
	f.Add("a b c d e f g\na b x d e f g\na b y d e f g\na b z d e f g")
	f.Add("")
	f.Add("solo document with nothing to cluster")
	f.Add("same same\nsame same\nsame same\nsame same")
	f.Fuzz(func(t *testing.T, data string) {
		texts := fuzzCorpus(data)
		if len(texts) == 0 {
			t.Skip("empty corpus")
		}
		ref := Detect(texts, Config{Workers: 1})
		got := Detect(texts, Config{Workers: 4})

		var refOut, gotOut bytes.Buffer
		ref.WriteText(&refOut)
		got.WriteText(&gotOut)
		if !bytes.Equal(refOut.Bytes(), gotOut.Bytes()) {
			t.Errorf("WriteText differs between Workers:1 and Workers:4 on %d docs:\n--- w1 ---\n%s\n--- w4 ---\n%s",
				len(texts), refOut.String(), gotOut.String())
		}
		if !reflect.DeepEqual(ref.Clusters(), got.Clusters()) {
			t.Errorf("Clusters() differ between Workers:1 and Workers:4 on %d docs", len(texts))
		}
	})
}
