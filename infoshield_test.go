package infoshield

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

func demoCorpus() []string {
	docs := []string{
		"This is a great soap, and the 5 dollar price is great",
		"This is a great chair, and the 10 dollar price is great",
		"This is a great hat, and the 3 dollar price is great",
		"This is great blue pen, and the 3 dollar price is so good",
		"I made 30K working on this job - call 123-456.7890 or visit scam.com",
		"I made 30K working from home - call 123-456.7890 or visit fraud.com",
		"Happy birthday to my dear friend Mike",
	}
	for i := 0; i < 30; i++ {
		docs = append(docs, fmt.Sprintf(
			"bg%da bg%db bg%dc bg%dd bg%de bg%df bg%dg bg%dh", i, i, i, i, i, i, i, i))
	}
	return docs
}

func TestDetectToyExample(t *testing.T) {
	res := Detect(demoCorpus(), Config{})
	if res.NumTemplates() < 2 {
		t.Fatalf("NumTemplates = %d", res.NumTemplates())
	}
	sus := res.Suspicious()
	for i := 0; i <= 5; i++ {
		if !sus[i] {
			t.Errorf("doc %d should be suspicious", i)
		}
	}
	if sus[6] {
		t.Error("doc 6 should not be suspicious")
	}
	// The product template's pattern contains the shared constants.
	var productPattern string
	for _, c := range res.Clusters() {
		for _, tpl := range c.Templates {
			for _, d := range tpl.Docs {
				if d == 0 {
					productPattern = tpl.Pattern
				}
			}
		}
	}
	if !strings.Contains(productPattern, "dollar price is") {
		t.Errorf("product pattern = %q", productPattern)
	}
}

func TestDetectClusterDiagnostics(t *testing.T) {
	res := Detect(demoCorpus(), Config{})
	for _, c := range res.Clusters() {
		if c.RelativeLength >= 1 {
			t.Errorf("relative length %v >= 1", c.RelativeLength)
		}
		if c.RelativeLength < c.LowerBound-1e-9 {
			t.Errorf("relative length %v below bound %v", c.RelativeLength, c.LowerBound)
		}
		if len(c.Docs) < 2 {
			t.Errorf("cluster with %d docs", len(c.Docs))
		}
	}
	if res.VocabSize() < 50 {
		t.Errorf("VocabSize = %d", res.VocabSize())
	}
}

func TestDetectRenderers(t *testing.T) {
	res := Detect(demoCorpus(), Config{})
	var text bytes.Buffer
	res.WriteText(&text)
	if !strings.Contains(text.String(), "T0") {
		t.Error("text render missing template label")
	}
	var html bytes.Buffer
	if err := res.WriteHTML(&html); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(html.String(), "<!DOCTYPE html>") {
		t.Error("html render missing doctype")
	}
}

func TestDetectEmpty(t *testing.T) {
	res := Detect(nil, Config{})
	if res.NumTemplates() != 0 || len(res.Clusters()) != 0 {
		t.Error("empty input should produce empty result")
	}
}

func TestDetectAblationConfigs(t *testing.T) {
	docs := demoCorpus()
	for _, cfg := range []Config{
		{UseStarMSA: true},
		{DisableSlots: true},
		{MaxNgram: 3},
		{TopPhraseFraction: 0.2},
		{Workers: 1},
	} {
		res := Detect(docs, cfg)
		if res.NumTemplates() == 0 {
			t.Errorf("config %+v found nothing", cfg)
		}
	}
}
