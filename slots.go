package infoshield

import (
	"sort"

	"infoshield/internal/core"
	"infoshield/internal/slotinfo"
)

// SlotProfile describes what one slot of a template holds across the
// template's documents — the automated version of the paper's Table XI
// annotations ("this slot always discusses time"). This implements the
// extension the paper marks as future work in Section V-D2.
type SlotProfile struct {
	// Kind is the dominant field type: "phone", "price", "time", "url",
	// "handle", "number", or "word".
	Kind string
	// Purity is the fraction of non-empty fills matching Kind.
	Purity float64
	// Fills is the number of documents that put content in the slot.
	Fills int
	// Values lists the distinct normalized fill values, most common first.
	Values []string
}

// SlotProfiles returns the per-slot content analysis of a template
// (indexed as in DocTemplate), or nil for an out-of-range index.
func (r *Result) SlotProfiles(templateIndex int) []SlotProfile {
	tr := r.templateAt(templateIndex)
	if tr == nil {
		return nil
	}
	fills := make([][][]string, len(tr.Fit.M.Rows))
	for row := range tr.Fit.M.Rows {
		rowFills := tr.Fit.SlotFills(row)
		words := make([][]string, len(rowFills))
		for s, ids := range rowFills {
			words[s] = r.res.Vocab.Decode(ids)
		}
		fills[row] = words
	}
	var out []SlotProfile
	for _, p := range slotinfo.Profiles(fills) {
		out = append(out, SlotProfile{
			Kind:   p.Dominant.String(),
			Purity: p.Purity,
			Fills:  p.Fills,
			Values: p.Values,
		})
	}
	return out
}

// templateAt resolves a global template index to its TemplateResult.
func (r *Result) templateAt(idx int) *core.TemplateResult {
	if idx < 0 {
		return nil
	}
	tid := 0
	for ci := range r.res.Clusters {
		for ti := range r.res.Clusters[ci].Templates {
			if tid == idx {
				return &r.res.Clusters[ci].Templates[ti]
			}
			tid++
		}
	}
	return nil
}

// Ranked returns the clusters ordered for triage, most suspicious first:
// primarily by compression quality (relative length ascending — closer to
// the Lemma-1 bound means more organized), with larger clusters first on
// ties. This is the "ranked output" property of the paper's Table I: an
// investigator with limited time starts from the top.
func (r *Result) Ranked() []Cluster {
	out := append([]Cluster(nil), r.clusters...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].RelativeLength != out[j].RelativeLength {
			return out[i].RelativeLength < out[j].RelativeLength
		}
		return len(out[i].Docs) > len(out[j].Docs)
	})
	return out
}
