package infoshield_test

import (
	"fmt"

	"infoshield"
)

// The paper's toy example: product ads sharing one template, scam
// messages another, and an innocent message left alone. Background
// documents give MDL a realistic vocabulary to compress against.
func Example() {
	docs := []string{
		"This is a great soap, and the 5 dollar price is great",
		"This is a great chair, and the 10 dollar price is great",
		"This is a great hat, and the 3 dollar price is great",
		"This is a great lamp, and the 9 dollar price is great",
		"This is a great mug, and the 2 dollar price is great",
		"This is a great book, and the 7 dollar price is great",
		"Happy birthday to my dear friend Mike",
	}
	for i := 0; i < 30; i++ {
		docs = append(docs, fmt.Sprintf(
			"pad%dk pad%dl pad%dm pad%dn pad%do pad%dp pad%dq pad%dr", i, i, i, i, i, i, i, i))
	}

	result := infoshield.Detect(docs, infoshield.Config{})
	for _, c := range result.Clusters() {
		for _, t := range c.Templates {
			fmt.Printf("%d docs: %s\n", len(t.Docs), t.Pattern)
		}
	}
	fmt.Printf("birthday message suspicious: %v\n", result.Suspicious()[6])
	// Output:
	// 6 docs: this is a great * and the * dollar price is great
	// birthday message suspicious: false
}

// Slot profiles type the variable fields of a template — the automated
// version of the paper's Table XI annotations.
func ExampleResult_SlotProfiles() {
	docs := []string{
		"call me at 412-555.1001 before 9pm for the special",
		"call me at 412-555.1002 before 7pm for the special",
		"call me at 412-555.1003 before 11am for the special",
		"call me at 412-555.1004 before 8pm for the special",
		"call me at 412-555.1005 before 10pm for the special",
		"call me at 412-555.1006 before 6pm for the special",
	}
	for i := 0; i < 300; i++ {
		docs = append(docs, fmt.Sprintf(
			"qq%dk qq%dl qq%dm qq%dn qq%do qq%dp qq%dq qq%dr", i, i, i, i, i, i, i, i))
	}
	result := infoshield.Detect(docs, infoshield.Config{})
	for _, p := range result.SlotProfiles(0) {
		fmt.Printf("%s slot, %d fills\n", p.Kind, p.Fills)
	}
	// Output:
	// phone slot, 6 fills
	// time slot, 6 fills
}
