package infoshield

import (
	"bytes"
	"strings"
	"testing"
)

// TestGoldenTableIV pins the exact plain-text rendering of the paper's
// running example (Table IV): the product template with its slot, and
// doc #4's deletion/insertion/substitution decomposition. Any change to
// tokenization, alignment, consensus, or slot detection that alters this
// output fails loudly here.
func TestGoldenTableIV(t *testing.T) {
	res := Detect(demoCorpus(), Config{Workers: 1})
	var buf bytes.Buffer
	res.WriteText(&buf)
	out := stripANSI(buf.String())

	golden := []string{
		"T0  this is a great * and the 3 dollar price is great",
		"  #0     this is a great soap and the 5 dollar price is great",
		"  #1     this is a great chair and the 10 dollar price is great",
		"  #2     this is a great hat and the 3 dollar price is great",
		"  #3     this is great blue pen and the 3 dollar price is so good",
		"T1  i made 30k working on this job call 123-456.7890 or visit scam.com",
		"  #4     i made 30k working on this job call 123-456.7890 or visit scam.com",
		"  #5     i made 30k working on from home call 123-456.7890 or visit fraud.com",
	}
	for _, line := range golden {
		if !strings.Contains(out, line) {
			t.Errorf("golden line missing:\n  want %q\n  in:\n%s", line, out)
		}
	}
}

// stripANSI removes color escapes so the golden text is style-agnostic.
func stripANSI(s string) string {
	var sb strings.Builder
	inEsc := false
	for _, r := range s {
		switch {
		case inEsc:
			if r == 'm' {
				inEsc = false
			}
		case r == '\x1b':
			inEsc = true
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}
