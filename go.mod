module infoshield

go 1.22
