// Package lsh implements MinHash signatures with LSH banding — the
// standard near-duplicate grouping machinery behind systems like the
// Template Matching baseline of Li et al. (IEEE Big Data 2018), the first
// anti-HT clustering method the paper compares against conceptually
// (Table I). Documents whose token-shingle sets have high Jaccard
// similarity hash to the same band bucket with high probability, giving
// candidate near-duplicate groups in one pass.
package lsh

import (
	"hash/fnv"

	"infoshield/internal/graph"
	"infoshield/internal/par"
)

// MinHasher computes fixed-length MinHash signatures of token-shingle
// sets. The zero value is not usable; construct with NewMinHasher.
type MinHasher struct {
	numHashes int
	shingle   int
	// Parameters of the 64-bit universal hash family h_i(x) = a_i*x + b_i.
	a, b []uint64
}

// NewMinHasher builds a hasher with numHashes signature rows over
// shingle-token shingles. Deterministic per seed.
func NewMinHasher(numHashes, shingle int, seed uint64) *MinHasher {
	if numHashes <= 0 {
		numHashes = 128
	}
	if shingle <= 0 {
		shingle = 3
	}
	m := &MinHasher{
		numHashes: numHashes,
		shingle:   shingle,
		a:         make([]uint64, numHashes),
		b:         make([]uint64, numHashes),
	}
	// SplitMix64 stream for the hash family parameters.
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < numHashes; i++ {
		m.a[i] = next() | 1 // odd multiplier
		m.b[i] = next()
	}
	return m
}

// NumHashes returns the signature length.
func (m *MinHasher) NumHashes() int { return m.numHashes }

// shingleHashes hashes each shingle of the token sequence to a uint64.
func (m *MinHasher) shingleHashes(tokens []string) []uint64 {
	k := m.shingle
	if len(tokens) < k {
		k = len(tokens)
	}
	if k == 0 {
		return nil
	}
	out := make([]uint64, 0, len(tokens)-k+1)
	for i := 0; i+k <= len(tokens); i++ {
		h := fnv.New64a()
		for j := i; j < i+k; j++ {
			h.Write([]byte(tokens[j]))
			h.Write([]byte{0x1f})
		}
		out = append(out, h.Sum64())
	}
	return out
}

// Signature returns the MinHash signature of the document's shingle set.
// Empty documents get an all-max signature (similar to nothing).
func (m *MinHasher) Signature(tokens []string) []uint64 {
	sig := make([]uint64, m.numHashes)
	for i := range sig {
		sig[i] = ^uint64(0)
	}
	for _, sh := range m.shingleHashes(tokens) {
		for i := 0; i < m.numHashes; i++ {
			if v := m.a[i]*sh + m.b[i]; v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// Signatures computes every document's signature across workers
// goroutines (<= 0: GOMAXPROCS). Signature computation is read-only on
// the hasher, so the result matches the serial loop exactly.
func (m *MinHasher) Signatures(docs [][]string, workers int) [][]uint64 {
	sigs := make([][]uint64, len(docs))
	par.Ranges(len(docs), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			sigs[i] = m.Signature(docs[i])
		}
	})
	return sigs
}

// EstimateJaccard estimates the Jaccard similarity of two signatures.
func EstimateJaccard(a, b []uint64) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}

// Bands groups documents whose signatures collide in any of numBands
// bands (rows = numHashes/numBands per band) and returns the connected
// components with at least two members — the LSH candidate groups.
func Bands(signatures [][]uint64, numBands int) [][]int {
	n := len(signatures)
	if n == 0 {
		return nil
	}
	if numBands <= 0 {
		numBands = 16
	}
	rows := len(signatures[0]) / numBands
	if rows == 0 {
		rows = 1
	}
	uf := graph.NewUnionFind(n)
	for band := 0; band < numBands; band++ {
		lo := band * rows
		hi := lo + rows
		if hi > len(signatures[0]) {
			break
		}
		buckets := make(map[uint64]int)
		for d, sig := range signatures {
			h := fnv.New64a()
			var buf [8]byte
			for _, v := range sig[lo:hi] {
				for i := 0; i < 8; i++ {
					buf[i] = byte(v >> (8 * i))
				}
				h.Write(buf[:])
			}
			key := h.Sum64()
			if first, ok := buckets[key]; ok {
				uf.Union(first, d)
			} else {
				buckets[key] = d
			}
		}
	}
	var groups [][]int
	for _, comp := range uf.Components() {
		if len(comp) >= 2 {
			groups = append(groups, comp)
		}
	}
	return groups
}
