package lsh

import (
	"math"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func toks(s string) []string { return strings.Fields(s) }

func TestSignatureDeterministic(t *testing.T) {
	m := NewMinHasher(64, 3, 7)
	a := m.Signature(toks("the quick brown fox jumps over the lazy dog"))
	b := m.Signature(toks("the quick brown fox jumps over the lazy dog"))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic signature")
		}
	}
	m2 := NewMinHasher(64, 3, 8)
	c := m2.Signature(toks("the quick brown fox jumps over the lazy dog"))
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical signatures")
	}
}

func TestEstimateJaccardIdenticalAndDisjoint(t *testing.T) {
	m := NewMinHasher(128, 3, 1)
	d1 := toks("alpha beta gamma delta epsilon zeta eta theta")
	d2 := toks("one two three four five six seven eight")
	s1, s2 := m.Signature(d1), m.Signature(d2)
	if got := EstimateJaccard(s1, s1); got != 1 {
		t.Errorf("identical = %v", got)
	}
	if got := EstimateJaccard(s1, s2); got > 0.05 {
		t.Errorf("disjoint = %v", got)
	}
	if got := EstimateJaccard(nil, nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

// Property: the MinHash estimate tracks true shingle Jaccard within
// sampling error for documents of graded overlap.
func TestEstimateTracksTrueJaccard(t *testing.T) {
	m := NewMinHasher(256, 3, 2)
	base := make([]string, 40)
	for i := range base {
		base[i] = "w" + strconv.Itoa(i)
	}
	trueJaccard := func(a, b []string) float64 {
		set := func(xs []string) map[string]bool {
			s := map[string]bool{}
			for i := 0; i+3 <= len(xs); i++ {
				s[strings.Join(xs[i:i+3], " ")] = true
			}
			return s
		}
		sa, sb := set(a), set(b)
		inter := 0
		for k := range sa {
			if sb[k] {
				inter++
			}
		}
		union := len(sa) + len(sb) - inter
		if union == 0 {
			return 0
		}
		return float64(inter) / float64(union)
	}
	for _, cut := range []int{0, 10, 20, 30} {
		other := append(append([]string(nil), base[:40-cut]...), make([]string, 0)...)
		for i := 0; i < cut; i++ {
			other = append(other, "x"+strconv.Itoa(i))
		}
		want := trueJaccard(base, other)
		got := EstimateJaccard(m.Signature(base), m.Signature(other))
		if math.Abs(got-want) > 0.12 {
			t.Errorf("cut %d: estimate %v vs true %v", cut, got, want)
		}
	}
}

func TestBandsGroupNearDuplicates(t *testing.T) {
	m := NewMinHasher(128, 3, 3)
	rng := rand.New(rand.NewSource(4))
	var docs [][]string
	// Three near-duplicate pairs.
	for p := 0; p < 3; p++ {
		base := make([]string, 20)
		for i := range base {
			base[i] = "p" + strconv.Itoa(p) + "w" + strconv.Itoa(i)
		}
		dup := append([]string(nil), base...)
		dup[rng.Intn(len(dup))] = "changed"
		docs = append(docs, base, dup)
	}
	// Plus unrelated docs.
	for d := 0; d < 20; d++ {
		doc := make([]string, 15)
		for i := range doc {
			doc[i] = "u" + strconv.Itoa(d) + "x" + strconv.Itoa(i)
		}
		docs = append(docs, doc)
	}
	sigs := make([][]uint64, len(docs))
	for i, d := range docs {
		sigs[i] = m.Signature(d)
	}
	groups := Bands(sigs, 32)
	if len(groups) != 3 {
		t.Fatalf("groups = %v", groups)
	}
	for _, g := range groups {
		if len(g) != 2 || g[0]/2 != g[1]/2 {
			t.Errorf("wrong group %v", g)
		}
	}
}

func TestBandsEmptyAndDegenerate(t *testing.T) {
	if got := Bands(nil, 16); got != nil {
		t.Errorf("empty: %v", got)
	}
	m := NewMinHasher(16, 3, 1)
	sigs := [][]uint64{m.Signature(toks("only one document here"))}
	if got := Bands(sigs, 4); got != nil {
		t.Errorf("single doc: %v", got)
	}
}

// Property: banding never groups exactly-disjoint documents when bands
// have several rows (collision probability negligible), and always groups
// exact duplicates.
func TestBandsProperty(t *testing.T) {
	m := NewMinHasher(64, 2, 5)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := make([]string, 12)
		for i := range doc {
			doc[i] = "t" + strconv.Itoa(rng.Intn(1000)) + "_" + strconv.Itoa(i)
		}
		sigs := [][]uint64{m.Signature(doc), m.Signature(doc)}
		groups := Bands(sigs, 16)
		return len(groups) == 1 && len(groups[0]) == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSignaturesMatchesSerial(t *testing.T) {
	m := NewMinHasher(64, 2, 9)
	docs := [][]string{
		toks("the quick brown fox"),
		toks("jumps over the lazy dog"),
		nil,
		toks("a b c d e f g h i j k l m n o p"),
	}
	want := make([][]uint64, len(docs))
	for i, d := range docs {
		want[i] = m.Signature(d)
	}
	for _, workers := range []int{1, 3, 0} {
		got := m.Signatures(docs, workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Signatures(workers=%d) differs from serial loop", workers)
		}
	}
}
