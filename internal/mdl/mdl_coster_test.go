package mdl

import (
	"math"
	"math/rand"
	"testing"
)

// TestMatchCosterBitIdentical pins MatchCoster.CostOnes to the exact bit
// patterns of DataCostMatched over all-ones SlotWords vectors: the hoisted
// form must make byte-identical cost comparisons on the serving path.
func TestMatchCosterBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ones := make([]int, 24)
	for i := range ones {
		ones[i] = 1
	}
	for it := 0; it < 20000; it++ {
		alignLen := rng.Intn(4000) // straddles the lookup-table boundary
		unmatched := rng.Intn(alignLen + 2)
		added := rng.Intn(alignLen + 2)
		slots := rng.Intn(len(ones) + 1)
		numT := 1 + rng.Intn(300000)
		vocab := 2 + rng.Intn(8000000)
		co := NewMatchCoster(numT, vocab)
		want := DataCostMatched(AlignStats{
			AlignLen:   alignLen,
			Unmatched:  unmatched,
			AddedWords: added,
			SlotWords:  ones[:slots],
		}, numT, vocab)
		got := co.CostOnes(alignLen, unmatched, added, slots)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("CostOnes(l=%d e=%d u=%d s=%d t=%d V=%d) = %v, want %v",
				alignLen, unmatched, added, slots, numT, vocab, got, want)
		}
	}
}
