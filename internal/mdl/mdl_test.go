package mdl

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLg(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0}, {1, 0}, {2, 1}, {8, 3}, {0.5, 0}, {-3, 0},
	}
	for _, c := range cases {
		if got := Lg(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Lg(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestUniversal(t *testing.T) {
	if got := Universal(0); got != 1 {
		t.Errorf("Universal(0) = %v", got)
	}
	if got := Universal(1); got != 1 {
		t.Errorf("Universal(1) = %v", got)
	}
	// ⟨n⟩ = 2 lg n + 1
	if got, want := Universal(8), 2*3.0+1; math.Abs(got-want) > 1e-12 {
		t.Errorf("Universal(8) = %v, want %v", got, want)
	}
}

// Property: Universal is monotone non-decreasing and always >= 1.
func TestUniversalMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		ux, uy := Universal(x), Universal(y)
		return ux >= 1 && ux <= uy
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The approximation 2 lg n + 1 should stay within a few bits of the exact
// log* code for moderate n.
func TestUniversalApproxTracksExact(t *testing.T) {
	for n := 1; n <= 1<<16; n *= 2 {
		approx, exact := Universal(n), UniversalExact(n)
		if math.Abs(approx-exact) > 0.9*exact+4 {
			t.Errorf("n=%d: approx %v too far from exact %v", n, approx, exact)
		}
		if exact <= 0 {
			t.Errorf("UniversalExact(%d) = %v", n, exact)
		}
	}
}

func TestDocCost(t *testing.T) {
	// 10 words, V=1024: ⟨10⟩ + 10*10
	want := Universal(10) + 100.0
	if got := DocCost(10, 1024); math.Abs(got-want) > 1e-9 {
		t.Errorf("DocCost = %v, want %v", got, want)
	}
	if got := DocCost(0, 1024); got != 1 {
		t.Errorf("DocCost(0) = %v, want 1 (just the length code)", got)
	}
}

// Arithmetic Example 1 from the paper: a template with 10 tokens of which
// 2 are slots costs ⟨10⟩ + 8 lg V + 3 lg 10 — plus ⟨1⟩ for the template
// count, which ModelCost includes for the whole set. (The paper's example
// charges lg V for the slots too; we charge word indices for constants
// only, since slot content is charged per document via S(w).)
func TestModelCostArithmeticExample1(t *testing.T) {
	V := 1 << 12
	got := ModelCost([]TemplateStats{{Length: 10, Slots: 2}}, V)
	want := Universal(1) + Universal(10) + 8*WordCost(V) + 3*Lg(10)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ModelCost = %v, want %v", got, want)
	}
}

func TestModelCostEmpty(t *testing.T) {
	if got := ModelCost(nil, 100); got != 1 {
		t.Errorf("ModelCost(nil) = %v, want ⟨0⟩ = 1", got)
	}
}

// Property: model cost grows when adding a template.
func TestModelCostMonotoneInTemplates(t *testing.T) {
	f := func(lens []uint8) bool {
		V := 4096
		var stats []TemplateStats
		prev := ModelCost(stats, V)
		for _, l := range lens {
			length := int(l%50) + 1
			slots := int(l % 3)
			if slots > length {
				slots = length
			}
			stats = append(stats, TemplateStats{Length: length, Slots: slots})
			cur := ModelCost(stats, V)
			if cur <= prev-1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSlotCost(t *testing.T) {
	if got := SlotCost(0, 100); got != 1 {
		t.Errorf("empty slot = %v, want 1", got)
	}
	V := 256
	want := 1 + Universal(3) + 3*WordCost(V)
	if got := SlotCost(3, V); math.Abs(got-want) > 1e-9 {
		t.Errorf("SlotCost(3) = %v, want %v", got, want)
	}
}

// Arithmetic Example 2 from the paper: doc #4 aligned to T1 costs
// lg 2 + ⟨14⟩ + 14 + 3 lg 14 + 2 lg V + 2(1 + ⟨1⟩ + lg V).
// In our terms: t=2 templates, alignment length 14, 3 unmatched ops of
// which 2 added words, and 2 slots each holding one word. Our cost equals
// the example plus the 1-bit template yes/no flag and the 2-bit op-type
// term per unmatched word — both demanded by the paper's prose bullet
// list but dropped from its arithmetic example.
func TestDataCostMatchedArithmeticExample2(t *testing.T) {
	V := 1 << 10
	a := AlignStats{AlignLen: 14, Unmatched: 3, AddedWords: 2, SlotWords: []int{1, 1}}
	got := DataCostMatched(a, 2, V)
	paper := Lg(2) + Universal(14) + 14 + 3*Lg(14) + 2*WordCost(V) +
		2*(1+Universal(1)+WordCost(V))
	want := paper + 1 + 3*opTypeBits
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("DataCostMatched = %v, want %v (paper %v)", got, want, paper)
	}
}

func TestDataCostUnmatched(t *testing.T) {
	V := 64
	want := 1 + 7*WordCost(V)
	if got := DataCostUnmatched(7, V); math.Abs(got-want) > 1e-9 {
		t.Errorf("DataCostUnmatched = %v, want %v", got, want)
	}
}

// Property: a perfectly matching doc (no edits, no slot words) is cheaper
// than encoding it standalone whenever it is long enough.
func TestTemplateCompressesDuplicates(t *testing.T) {
	V := 1 << 14
	for l := 4; l <= 200; l++ {
		matched := DataCostMatched(AlignStats{AlignLen: l}, 1, V)
		alone := DocCost(l, V)
		if matched >= alone {
			t.Errorf("length %d: matched %v >= standalone %v", l, matched, alone)
		}
	}
}

// Property: data cost is monotone in the number of unmatched operations.
func TestDataCostMonotoneInEdits(t *testing.T) {
	f := func(l, e uint8) bool {
		al := int(l%100) + 10
		ed := int(e) % al
		c1 := DataCostMatched(AlignStats{AlignLen: al, Unmatched: ed, AddedWords: ed}, 1, 4096)
		c2 := DataCostMatched(AlignStats{AlignLen: al, Unmatched: ed + 1, AddedWords: ed + 1}, 1, 4096)
		return c2 > c1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVocabCost(t *testing.T) {
	// 100 words averaging 5 chars: ⟨100⟩ + 100·6·8
	want := Universal(100) + 100*6*8
	if got := VocabCost(100, 5); math.Abs(got-want) > 1e-9 {
		t.Errorf("VocabCost = %v, want %v", got, want)
	}
	if got := VocabCost(0, 5); got != 1 {
		t.Errorf("VocabCost(0) = %v", got)
	}
}

func TestRelativeLength(t *testing.T) {
	if got := RelativeLength(50, 100); got != 0.5 {
		t.Errorf("RelativeLength = %v", got)
	}
	if got := RelativeLength(5, 0); got != 1 {
		t.Errorf("RelativeLength before=0 should be 1, got %v", got)
	}
}

func TestLowerBound(t *testing.T) {
	// t/n + 1/lgV
	V := 1 << 10 // lgV = 10
	got := LowerBound(2, 8, V)
	want := 2.0/8.0 + 1.0/10.0
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("LowerBound = %v, want %v", got, want)
	}
	if got := LowerBound(1, 0, V); got != 1 {
		t.Errorf("LowerBound n=0 = %v", got)
	}
	if got := LowerBound(1, 5, 1); got != 1 {
		t.Errorf("LowerBound V=1 = %v", got)
	}
}

// Lemma 1 (empirical form): encoding n exact duplicates of a length-l doc
// with one template achieves relative length approaching 1/n + 1/lgV.
func TestLowerBoundAchievedByExactDuplicates(t *testing.T) {
	V := 1 << 12
	l := 40
	for _, n := range []int{4, 16, 64, 256} {
		before := float64(n) * DocCost(l, V)
		after := ModelCost([]TemplateStats{{Length: l}}, V)
		for i := 0; i < n; i++ {
			after += DataCostMatched(AlignStats{AlignLen: l}, 1, V)
		}
		rel := RelativeLength(after, before)
		lb := LowerBound(1, n, V)
		if rel < lb-1e-9 {
			t.Errorf("n=%d: relative length %v below lower bound %v", n, rel, lb)
		}
		// Should be within a small factor of the bound for duplicates.
		if rel > 3*lb {
			t.Errorf("n=%d: relative length %v far above lower bound %v", n, rel, lb)
		}
	}
}

func TestApproxEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{1, 1 + 1e-12, true},             // absolute tolerance
		{1e12, 1e12 * (1 + 1e-12), true}, // relative tolerance at large magnitude
		{0, CostEpsilon, true},           // boundary
		{1, 1 + 1e-6, false},             // clearly different
		{1e12, 1e12 * (1 + 1e-6), false}, // beyond relative tolerance
		{-1, 1, false},
		{-1, -1 - 1e-12, true}, // symmetric for negatives
	}
	for _, c := range cases {
		if got := ApproxEq(c.a, c.b); got != c.want {
			t.Errorf("ApproxEq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := ApproxEq(c.b, c.a); got != c.want {
			t.Errorf("ApproxEq(%v, %v) = %v, want %v (not symmetric)", c.b, c.a, got, c.want)
		}
	}
	// Sums of lg terms accumulated in different orders must compare equal.
	terms := []float64{Lg(3), Lg(7), Lg(11), Lg(500), Universal(42)}
	var fwd, rev float64
	for i := range terms {
		fwd += terms[i]
		rev += terms[len(terms)-1-i]
	}
	if !ApproxEq(fwd, rev) {
		t.Errorf("ApproxEq rejects reordered lg-term sums: %v vs %v", fwd, rev)
	}
}

// TestLookupTablesMatchDirect pins the small-n fast paths to the direct
// computations they cache, across the table boundary: the memoized MDL
// terms must be bit-identical to the formulas, or parallel and serial
// cost comparisons could diverge.
func TestLookupTablesMatchDirect(t *testing.T) {
	check := func(n int) {
		t.Helper()
		wantLg := Lg(float64(n))
		if got := LgInt(n); got != wantLg {
			t.Errorf("LgInt(%d) = %v, want %v", n, got, wantLg)
		}
		wantUni := 1.0
		if n > 1 {
			wantUni = 2*Lg(float64(n)) + 1
		}
		if got := Universal(n); got != wantUni {
			t.Errorf("Universal(%d) = %v, want %v", n, got, wantUni)
		}
	}
	for n := -2; n < 300; n++ {
		check(n)
	}
	for _, n := range []int{lgTabSize - 1, lgTabSize, lgTabSize + 1, 1 << 20} {
		check(n)
	}
}

// TestDataCostMatchedMonotone pins the monotonicity contract the
// streaming detector's admissible pruning bounds rely on: the matched
// data cost is nondecreasing in each of AlignLen, Unmatched, and
// AddedWords, including across the lookup-table boundary, and a
// componentwise-dominated stats vector never costs more — in floating
// point, not just in exact arithmetic.
func TestDataCostMatchedMonotone(t *testing.T) {
	const V = 1 << 14
	base := []AlignStats{
		{AlignLen: 1},
		{AlignLen: 7, Unmatched: 2, AddedWords: 1},
		{AlignLen: 30, Unmatched: 12, AddedWords: 9, SlotWords: []int{1, 1, 1}},
		{AlignLen: lgTabSize - 1, Unmatched: 5, AddedWords: 5},
		{AlignLen: lgTabSize + 3, Unmatched: 5, AddedWords: 5},
	}
	bump := []func(AlignStats) AlignStats{
		func(a AlignStats) AlignStats { a.AlignLen++; return a },
		func(a AlignStats) AlignStats { a.Unmatched++; return a },
		func(a AlignStats) AlignStats { a.AddedWords++; return a },
		func(a AlignStats) AlignStats { a.AlignLen += lgTabSize; return a },
	}
	for _, numT := range []int{1, 3, 200} {
		for _, a := range base {
			was := DataCostMatched(a, numT, V)
			for bi, f := range bump {
				if got := DataCostMatched(f(a), numT, V); got < was {
					t.Errorf("bump %d on %+v (t=%d): cost fell %v -> %v", bi, a, numT, was, got)
				}
			}
		}
	}
	// Randomized componentwise domination.
	f := func(l, e, u, dl, de, du uint8) bool {
		lo := AlignStats{AlignLen: int(l) + 1, Unmatched: int(e), AddedWords: int(u)}
		hi := AlignStats{
			AlignLen:   lo.AlignLen + int(dl),
			Unmatched:  lo.Unmatched + int(de),
			AddedWords: lo.AddedWords + int(du),
		}
		return DataCostMatched(lo, 5, V) <= DataCostMatched(hi, 5, V)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
