// Package mdl implements the Minimum Description Length cost model of
// InfoShield (Section III-B of the paper): universal integer codes, the
// model cost C(M) of a template set (Eq. 2), the data cost C(D|M) of
// documents encoded against templates (Eq. 3), the slot cost S(w) (Eq. 4),
// and the relative-length diagnostics of Lemma 1.
//
// Costs are measured in bits and returned as float64; they are compared,
// never transmitted, so fractional bits are fine.
package mdl

import "math"

// Lg returns log2(x), the paper's "lg". Lg(x) for x <= 1 is 0: encoding a
// choice among one (or zero) alternatives is free.
func Lg(x float64) float64 {
	if x <= 1 {
		return 0
	}
	return math.Log2(x)
}

// lgTabSize bounds the small-integer lookup tables below. Document and
// alignment lengths — the arguments Fine's hot loop feeds to Lg and
// Universal — are almost always below it; larger arguments fall back to
// the direct computation, which produces bit-identical values (the tables
// are filled with the very same expressions).
const lgTabSize = 1 << 11

var (
	lgTab  [lgTabSize]float64 // lgTab[n] = Lg(float64(n))
	uniTab [lgTabSize]float64 // uniTab[n] = Universal(n)
)

func init() {
	uniTab[0], uniTab[1] = 1, 1
	for n := 2; n < lgTabSize; n++ {
		lgTab[n] = math.Log2(float64(n))
		uniTab[n] = 2*lgTab[n] + 1
	}
}

// LgInt is Lg(float64(n)) with a small-n lookup table — the integer fast
// path for the length-indexed log terms of Eq. 2–4.
func LgInt(n int) float64 {
	if n >= 0 && n < lgTabSize {
		return lgTab[n]
	}
	return Lg(float64(n))
}

// Universal returns the universal code length ⟨n⟩ for a non-negative
// integer, using the paper's approximation ⟨n⟩ = log* n ≈ 2·lg n + 1
// (Rissanen 1983). ⟨0⟩ and ⟨1⟩ both cost 1 bit. Small n is table-driven.
func Universal(n int) float64 {
	if n < lgTabSize {
		if n <= 1 {
			return 1
		}
		return uniTab[n]
	}
	return 2*Lg(float64(n)) + 1
}

// UniversalExact returns the exact Elias-style log* code length
// lg(n) + lg lg(n) + ... + lg(c0) with c0 = 2.865064. It is provided for
// completeness and for tests that bound the approximation error; the
// pipeline uses Universal, as the paper does.
func UniversalExact(n int) float64 {
	const c0 = 2.865064
	if n < 1 {
		return Lg(c0)
	}
	total := Lg(c0)
	x := float64(n)
	for x > 1 {
		x = math.Log2(x)
		if x <= 0 {
			break
		}
		total += x
	}
	return total
}

// WordCost returns lg V, the cost of one vocabulary index.
func WordCost(vocabSize int) float64 { return Lg(float64(vocabSize)) }

// DocCost is the standalone cost of a length-l document with no template:
// ⟨l⟩ to encode the length plus lg V per word (Section III-B.1).
func DocCost(length, vocabSize int) float64 {
	return Universal(length) + float64(length)*WordCost(vocabSize)
}

// TemplateStats summarizes one template for model-cost purposes.
type TemplateStats struct {
	Length int // l_i: number of tokens in the template (constants + slots)
	Slots  int // s_i: number of slots
}

// ModelCost returns C(M) for a template set (Eq. 2):
//
//	C(M) = ⟨t⟩ + Σ_i [ ⟨l_i⟩ + (l_i - s_i)·lg V + (1+s_i)·lg l_i ]
//
// per template: its length, a vocabulary index per *constant* token, the
// slot count, and a location per slot. Eq. 2 as printed charges lg V for
// every position including slots; a slot stores no vocabulary word (its
// content is charged per document via S(w)), so we charge the word index
// only for the l_i - s_i constants. This strictly refines the paper's
// bound and never changes which of two slot-free models wins.
func ModelCost(templates []TemplateStats, vocabSize int) float64 {
	cost := Universal(len(templates))
	for _, ts := range templates {
		cost += Universal(ts.Length) +
			float64(ts.Length-ts.Slots)*WordCost(vocabSize) +
			float64(1+ts.Slots)*LgInt(ts.Length)
	}
	return cost
}

// SlotCost returns S(w), the cost of a slot holding w words (Eq. 4):
// one bit for empty/non-empty, then ⟨w⟩ + w·lg V when non-empty.
func SlotCost(words, vocabSize int) float64 {
	if words <= 0 {
		return 1
	}
	return 1 + Universal(words) + float64(words)*WordCost(vocabSize)
}

// AlignStats summarizes one document's alignment against its template,
// the inputs to the per-document data cost (Eq. 3 and its prose bullets).
type AlignStats struct {
	AlignLen   int   // l̂_d: length of the alignment
	Unmatched  int   // e_d: unmatched words (insert + delete + substitute)
	AddedWords int   // u_d: inserted/substituted words needing a vocab index
	SlotWords  []int // w_{d,j}: number of words the document puts in slot j
}

// opTypeBits is ⌈lg 3⌉: the per-unmatched-word cost of naming the edit
// operation (insertion / deletion / substitution). Eq. 3 as printed and
// Arithmetic Example 2 omit this term, but the prose bullet list includes
// it — and it is required both for decodability and for the slot-vs-edit
// trade-off to behave as the paper describes (a slot's fixed 2-bit
// overhead beats per-word "location + type" storage exactly when the
// position is genuinely variable).
const opTypeBits = 2

// DataCostMatched returns the cost of one document encoded by a template
// out of t templates:
//
//	1 (template flag) + lg t + ⟨l̂⟩ + l̂ + e·(lg l̂ + 2) + u·lg V + Σ_j S(w_j)
//
// Monotonicity contract (relied on by align.ConditionalLowerBound and
// align.WildConditionalLowerBound, pinned by TestDataCostMatchedMonotone):
// with the other fields held fixed, the cost is nondecreasing in each of
// AlignLen, Unmatched, and AddedWords — every term is a product of
// nonnegative factors that are themselves nondecreasing in those fields
// (Universal and LgInt are nondecreasing, including across the lookup-
// table boundary). Because the bounds evaluate this very function at
// componentwise-dominated stats with the identical summation order, the
// inequality survives floating-point rounding: fl(·) is monotone, so a
// termwise-dominated sum over the same expression tree cannot come out
// larger.
func DataCostMatched(a AlignStats, numTemplates, vocabSize int) float64 {
	cost := 1 + LgInt(numTemplates) +
		Universal(a.AlignLen) + float64(a.AlignLen) +
		float64(a.Unmatched)*(LgInt(a.AlignLen)+opTypeBits) +
		float64(a.AddedWords)*WordCost(vocabSize)
	for _, w := range a.SlotWords {
		cost += SlotCost(w, vocabSize)
	}
	return cost
}

// MatchCoster is DataCostMatched with the per-probe constants hoisted:
// the template-flag + lg t prefix, lg V, and the all-ones slot cost S(1)
// are computed once per probe instead of once per candidate (lg V is a
// live math.Log2 whenever the vocabulary outgrows the lookup table, and
// the serving path evaluates it ~4× per bound). The serving matcher's
// SlotWords vectors are always all-ones prefixes of one shared vector, so
// CostOnes covers every cost the hot path computes.
type MatchCoster struct {
	base    float64 // 1 + LgInt(numTemplates), the matched-document prefix
	lgV     float64 // WordCost(vocabSize)
	slotOne float64 // SlotCost(1, vocabSize)
}

// NewMatchCoster hoists the (numTemplates, vocabSize)-dependent terms.
func NewMatchCoster(numTemplates, vocabSize int) MatchCoster {
	return MatchCoster{
		base:    1 + LgInt(numTemplates),
		lgV:     WordCost(vocabSize),
		slotOne: SlotCost(1, vocabSize),
	}
}

// CostOnes returns DataCostMatched for AlignStats{alignLen, unmatched,
// added, SlotWords: all-ones of length slots} — bit-identical, not merely
// approximately equal: the summation tree is the same left-associated
// chain (base holds the identical fl(1 + lg t) prefix), and the slot loop
// adds the identical precomputed S(1) value the original loop recomputes,
// in the same order. TestMatchCosterBitIdentical pins this.
func (c MatchCoster) CostOnes(alignLen, unmatched, added, slots int) float64 {
	cost := c.base +
		Universal(alignLen) + float64(alignLen) +
		float64(unmatched)*(LgInt(alignLen)+opTypeBits) +
		float64(added)*c.lgV
	for k := 0; k < slots; k++ {
		cost += c.slotOne
	}
	return cost
}

// DataCostUnmatched returns the cost of a document no template encodes:
// 1 bit for the "no template" flag plus lg V per word.
func DataCostUnmatched(length, vocabSize int) float64 {
	return 1 + float64(length)*WordCost(vocabSize)
}

// RelativeLength is cost-after-compression over cost-before-compression
// (Eq. 7). Near 1 means poor compression; near the Lemma-1 lower bound
// means the cluster is near-duplicate. A zero before-cost yields 1.
func RelativeLength(after, before float64) float64 {
	if before <= 0 {
		return 1
	}
	return after / before
}

// VocabCost is the one-time cost of spelling out the vocabulary itself
// (Section III-B.3): ⟨V⟩ + V·(l̄+1)·8 bits, where l̄ is the average word
// length in characters, 8 bits per character, and 1 delimiter bit per
// word. The paper (and this implementation) exclude it from model
// comparisons — it is identical for every template set — but report it
// for completeness.
func VocabCost(vocabSize int, avgWordLen float64) float64 {
	return Universal(vocabSize) + float64(vocabSize)*(avgWordLen+1)*8
}

// LowerBound is Lemma 1: the least achievable relative length for a
// cluster of n documents compressed with t templates over a V-word
// vocabulary, t/n + 1/lg V.
func LowerBound(numTemplates, numDocs, vocabSize int) float64 {
	if numDocs <= 0 {
		return 1
	}
	lgV := WordCost(vocabSize)
	if lgV <= 0 {
		return 1
	}
	return float64(numTemplates)/float64(numDocs) + 1/lgV
}

// CostEpsilon is the tolerance ApproxEq uses when comparing description
// lengths. Costs are sums of lg terms, so two mathematically equal costs
// computed along different code paths — or on different architectures —
// can differ in the last few ulps; 1e-9 bits is far below any decision
// threshold the search cares about.
const CostEpsilon = 1e-9

// ApproxEq reports whether two cost values are equal up to CostEpsilon,
// absolutely for small magnitudes and relatively for large ones. All
// equality decisions between description lengths must go through this
// helper (enforced by the floateq analyzer) so that search tie-breaking
// is stable across platforms.
func ApproxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	if diff <= CostEpsilon {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= CostEpsilon*scale
}
