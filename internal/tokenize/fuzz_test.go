package tokenize

import (
	"strings"
	"testing"
	"unicode"
	"unicode/utf8"
)

// FuzzTokens drives the tokenizer with arbitrary byte strings: it must
// never panic, never emit empty or whitespace-bearing tokens, and be
// idempotent under re-joining.
func FuzzTokens(f *testing.F) {
	f.Add("This is a great soap, and the 5 dollar price is great")
	f.Add("call 123-456.7890 or visit scam.com")
	f.Add("今日は映画を見た 123 abc")
	f.Add("  \t\n mixed spaces　everywhere ")
	f.Add("\x00\xff\xfe broken utf8 \xc3\x28")
	f.Fuzz(func(t *testing.T, s string) {
		var tk Tokenizer
		toks := tk.Tokens(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatal("empty token")
			}
			if strings.ContainsFunc(tok, unicode.IsSpace) {
				t.Fatalf("token with whitespace: %q", tok)
			}
			if !utf8.ValidString(tok) && utf8.ValidString(s) {
				t.Fatalf("invalid UTF-8 token %q from valid input", tok)
			}
		}
		// Idempotence (only meaningful for valid inputs).
		if utf8.ValidString(s) {
			again := tk.Tokens(strings.Join(toks, " "))
			if len(again) != len(toks) {
				t.Fatalf("not idempotent: %d vs %d tokens", len(toks), len(again))
			}
			for i := range toks {
				if toks[i] != again[i] {
					t.Fatalf("token %d changed: %q -> %q", i, toks[i], again[i])
				}
			}
		}
	})
}
