package tokenize

// Vocab interns token strings as dense integer ids. Ids are assigned in
// first-seen order starting from 0, so they can index slices directly.
//
// Vocab is not safe for concurrent mutation; build it single-threaded (or
// behind a lock) and share it read-only afterwards.
type Vocab struct {
	ids   map[string]int
	words []string
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab {
	return &Vocab{ids: make(map[string]int)}
}

// Add interns w and returns its id, assigning a fresh id on first sight.
func (v *Vocab) Add(w string) int {
	if id, ok := v.ids[w]; ok {
		return id
	}
	id := len(v.words)
	v.ids[w] = id
	v.words = append(v.words, w)
	return id
}

// ID returns the id for w and whether w is known.
func (v *Vocab) ID(w string) (int, bool) {
	id, ok := v.ids[w]
	return id, ok
}

// Word returns the string for id. It panics on out-of-range ids, matching
// slice semantics.
func (v *Vocab) Word(id int) string { return v.words[id] }

// Size returns the number of distinct interned tokens (the paper's V).
func (v *Vocab) Size() int { return len(v.words) }

// Encode interns every token of toks and returns their ids.
func (v *Vocab) Encode(toks []string) []int {
	ids := make([]int, len(toks))
	for i, w := range toks {
		ids[i] = v.Add(w)
	}
	return ids
}

// Decode maps ids back to strings.
func (v *Vocab) Decode(ids []int) []string {
	words := make([]string, len(ids))
	for i, id := range ids {
		words[i] = v.words[id]
	}
	return words
}
