package tokenize

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"
)

func TestTokensBasic(t *testing.T) {
	var tk Tokenizer
	cases := []struct {
		in   string
		want []string
	}{
		{"This is a great soap, and the 5 dollar price is great",
			[]string{"this", "is", "a", "great", "soap", "and", "the", "5", "dollar", "price", "is", "great"}},
		{"call 123-456.7890 or visit scam.com",
			[]string{"call", "123-456.7890", "or", "visit", "scam.com"}},
		{"", nil},
		{"   \t\n ", nil},
		{"...!!!", nil},
		{"'quoted'  (parens)", []string{"quoted", "parens"}},
		{"don't stop", []string{"don't", "stop"}},
		{"httptcokbfwdfts", []string{"httptcokbfwdfts"}},
		{"UPPER Case MiXeD", []string{"upper", "case", "mixed"}},
		{"múltiple canción über", []string{"múltiple", "canción", "über"}},
	}
	for _, c := range cases {
		got := tk.Tokens(c.in)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokens(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokensKeepCase(t *testing.T) {
	tk := Tokenizer{KeepCase: true}
	got := tk.Tokens("Hello World")
	want := []string{"Hello", "World"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

func TestTokensCJK(t *testing.T) {
	var tk Tokenizer
	// Japanese text without spaces: each CJK rune becomes a token.
	got := tk.Tokens("地震です")
	want := []string{"地", "震", "で", "す"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
	// Mixed latin + CJK in one field.
	got = tk.Tokens("abc地震xyz")
	want = []string{"abc", "地", "震", "xyz"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens mixed = %v, want %v", got, want)
	}
}

func TestTokensInteriorPunctuationKept(t *testing.T) {
	var tk Tokenizer
	got := tk.Tokens("(123-456.7890),")
	want := []string{"123-456.7890"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokens = %v, want %v", got, want)
	}
}

// Property: no output token is empty, contains whitespace, or starts/ends
// with punctuation.
func TestTokensProperties(t *testing.T) {
	var tk Tokenizer
	f := func(s string) bool {
		for _, tok := range tk.Tokens(s) {
			if tok == "" {
				return false
			}
			if strings.ContainsFunc(tok, unicode.IsSpace) {
				return false
			}
			runes := []rune(tok)
			if !isWordRune(runes[0]) || !isWordRune(runes[len(runes)-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: tokenization is idempotent under re-joining with spaces.
func TestTokensIdempotent(t *testing.T) {
	var tk Tokenizer
	f := func(s string) bool {
		once := tk.Tokens(s)
		twice := tk.Tokens(strings.Join(once, " "))
		return reflect.DeepEqual(once, twice) || (len(once) == 0 && len(twice) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVocabRoundTrip(t *testing.T) {
	v := NewVocab()
	a := v.Add("alpha")
	b := v.Add("beta")
	if a == b {
		t.Fatalf("distinct words got same id %d", a)
	}
	if got := v.Add("alpha"); got != a {
		t.Errorf("re-Add(alpha) = %d, want %d", got, a)
	}
	if v.Size() != 2 {
		t.Errorf("Size = %d, want 2", v.Size())
	}
	if w := v.Word(a); w != "alpha" {
		t.Errorf("Word(%d) = %q", a, w)
	}
	if id, ok := v.ID("beta"); !ok || id != b {
		t.Errorf("ID(beta) = %d,%v", id, ok)
	}
	if _, ok := v.ID("gamma"); ok {
		t.Error("ID(gamma) should be unknown")
	}
}

func TestVocabEncodeDecode(t *testing.T) {
	v := NewVocab()
	toks := []string{"x", "y", "x", "z"}
	ids := v.Encode(toks)
	if len(ids) != len(toks) {
		t.Fatalf("Encode len = %d", len(ids))
	}
	if ids[0] != ids[2] {
		t.Errorf("same word different ids: %v", ids)
	}
	if got := v.Decode(ids); !reflect.DeepEqual(got, toks) {
		t.Errorf("Decode = %v, want %v", got, toks)
	}
}

// Property: Encode then Decode is the identity on arbitrary token lists.
func TestVocabEncodeDecodeProperty(t *testing.T) {
	f := func(words []string) bool {
		v := NewVocab()
		return reflect.DeepEqual(v.Decode(v.Encode(words)), words) || len(words) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: ids are dense 0..Size-1.
func TestVocabDenseIDs(t *testing.T) {
	f := func(words []string) bool {
		v := NewVocab()
		for _, w := range words {
			id := v.Add(w)
			if id < 0 || id >= v.Size() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAllMatchesSerialTokens(t *testing.T) {
	texts := []string{
		"Honestly we watched the Golden sunset near the misty harbor",
		"call 123-456.7890 or visit example.test 今日は映画",
		"", "   ", "one",
	}
	for i := 0; i < 40; i++ {
		texts = append(texts, strings.Repeat("word", i%7)+" filler text number "+strings.Repeat("x", i))
	}
	var tk Tokenizer
	want := make([][]string, len(texts))
	for i, s := range texts {
		want[i] = tk.Tokens(s)
	}
	for _, workers := range []int{1, 2, 8, 0} {
		got := tk.All(texts, workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("All(workers=%d) differs from serial Tokens", workers)
		}
	}
	if got := tk.All(nil, 4); len(got) != 0 {
		t.Errorf("All(nil) = %v", got)
	}
}
