package tokenize

import (
	"math/rand"
	"reflect"
	"testing"
)

// checkASCIIEquiv pins the ASCII fast path against the rune-by-rune
// reference for one input under both case modes.
func checkASCIIEquiv(t *testing.T, text string) {
	t.Helper()
	for _, keep := range []bool{false, true} {
		tk := Tokenizer{KeepCase: keep}
		got := tk.Tokens(text)
		want := tk.tokensUnicode(text)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Tokens(%q, KeepCase=%v) = %q, reference = %q", text, keep, got, want)
		}
	}
}

// TestTokensASCIIEquiv covers the fast path's edge shapes directly.
func TestTokensASCIIEquiv(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"...",
		"hello world",
		"Hello, World!",
		"call 123-456.7890 or visit scam.example NOW",
		"\tmixed\r\nwhitespace\v runs \f here ",
		"--edge--case-- !!bang!! 'quoted' (parens)",
		"UPPER lower MiXeD 0123 a1b2c3",
		"a", ".", "a.", ".a", "..a..b..",
		"trailing space ",
		" leading",
	}
	for _, c := range cases {
		checkASCIIEquiv(t, c)
	}
	// Non-ASCII input must take the Unicode path untouched (sanity: the
	// dispatcher, not the fast path, owns these).
	tk := Tokenizer{}
	got := tk.Tokens("héllo 今日は")
	want := tk.tokensUnicode("héllo 今日は")
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("unicode dispatch: %q vs %q", got, want)
	}
}

// TestTokensASCIIRandom drives random printable-ASCII documents through
// both paths — the deterministic slice of FuzzTokensASCII.
func TestTokensASCIIRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for it := 0; it < 5000; it++ {
		n := rng.Intn(80)
		b := make([]byte, n)
		for i := range b {
			// Bias toward word/space/punct mixes, with occasional control bytes.
			switch rng.Intn(10) {
			case 0:
				b[i] = byte(rng.Intn(128))
			case 1, 2:
				b[i] = ' '
			case 3:
				b[i] = ".,-!'"[rng.Intn(5)]
			default:
				b[i] = "abcXYZ019"[rng.Intn(9)]
			}
		}
		checkASCIIEquiv(t, string(b))
	}
}

// FuzzTokensASCII pins Tokens (which dispatches to the ASCII fast path)
// against the rune-by-rune reference for arbitrary byte strings.
func FuzzTokensASCII(f *testing.F) {
	f.Add("Hello, World! call 123-456.7890")
	f.Add("  ..mixed--  CASE  tokens.. ")
	f.Add("héllo 今日は ascii tail")
	f.Fuzz(func(t *testing.T, text string) {
		checkASCIIEquiv(t, text)
	})
}
