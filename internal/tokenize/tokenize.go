// Package tokenize provides the language-independent tokenizer and the
// vocabulary (string interning) used by every other InfoShield component.
//
// The paper's method is deliberately language-agnostic: no stop-word lists,
// no stemming, no syntax. Tokenization is therefore intentionally simple and
// Unicode-aware:
//
//   - input is lower-cased (Unicode case folding),
//   - whitespace separates tokens,
//   - surrounding punctuation is trimmed but *interior* punctuation is kept,
//     so "scam.com", "123-456.7890" and mangled URLs survive as one token,
//   - runs of CJK characters (which carry no spaces) are split into
//     single-character tokens, the standard language-independent fallback.
package tokenize

import (
	"strings"
	"unicode"
	"unicode/utf8"

	"infoshield/internal/par"
)

// Tokenizer converts raw document text into token slices. The zero value is
// ready to use. Tokenizer is stateless and safe for concurrent use.
type Tokenizer struct {
	// KeepCase disables lower-casing when true. The paper lower-cases
	// everything (see Table X, where "PR Daily" becomes "pr daily").
	KeepCase bool
}

// Tokens splits text into tokens according to the rules documented on the
// package. It never returns empty-string tokens.
func (t Tokenizer) Tokens(text string) []string {
	if isASCII(text) {
		return t.tokensASCII(text)
	}
	return t.tokensUnicode(text)
}

// isASCII reports whether s contains only single-byte runes.
func isASCII(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] >= utf8.RuneSelf {
			return false
		}
	}
	return true
}

// asciiSpace and asciiWord are unicode.IsSpace and isWordRune restricted
// to ASCII — byte-indexed so the fast path never decodes a rune.
var asciiSpace, asciiWord [utf8.RuneSelf]bool

func init() {
	for _, b := range []byte{'\t', '\n', '\v', '\f', '\r', ' '} {
		asciiSpace[b] = true
	}
	for b := byte(0); b < utf8.RuneSelf; b++ {
		asciiWord[b] = b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
	}
}

// tokensASCII is the allocation-light fast path for pure-ASCII input —
// the overwhelmingly common case on the serving hot path. No ASCII rune
// is CJK, ASCII lower-casing is a byte table, and trimming surrounding
// punctuation keeps tokens as substrings of one backing string, so the
// whole document tokenizes with at most one lower-casing copy plus the
// output slice. FuzzTokensASCII pins it against the Unicode path.
func (t Tokenizer) tokensASCII(text string) []string {
	if !t.KeepCase {
		text = lowerASCII(text)
	}
	// One sized allocation instead of append-doubling: tokens are
	// space-separated, so len/8 under-counts only pathologically short
	// words and the occasional growth is still amortized.
	out := make([]string, 0, len(text)/8+4)
	n := len(text)
	for i := 0; i < n; {
		if asciiSpace[text[i]] {
			i++
			continue
		}
		j := i + 1
		for j < n && !asciiSpace[text[j]] {
			j++
		}
		lo, hi := i, j
		for lo < hi && !asciiWord[text[lo]] {
			lo++
		}
		for hi > lo && !asciiWord[text[hi-1]] {
			hi--
		}
		if lo < hi {
			out = append(out, text[lo:hi])
		}
		i = j
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// lowerASCII lower-cases an ASCII string, returning the input unchanged
// (no copy) when it is already lower-case.
func lowerASCII(s string) string {
	i := 0
	for i < len(s) && !(s[i] >= 'A' && s[i] <= 'Z') {
		i++
	}
	if i == len(s) {
		return s
	}
	b := []byte(s)
	for ; i < len(b); i++ {
		if b[i] >= 'A' && b[i] <= 'Z' {
			b[i] += 'a' - 'A'
		}
	}
	return string(b)
}

// tokensUnicode is the general rune-by-rune path (and the reference the
// ASCII fast path is fuzzed against).
func (t Tokenizer) tokensUnicode(text string) []string {
	if !t.KeepCase {
		text = strings.ToLower(text)
	}
	var out []string
	field := make([]rune, 0, 32)
	flush := func() {
		if len(field) == 0 {
			return
		}
		for _, tok := range splitField(field) {
			if tok != "" {
				out = append(out, tok)
			}
		}
		field = field[:0]
	}
	for _, r := range text {
		if unicode.IsSpace(r) {
			flush()
			continue
		}
		field = append(field, r)
	}
	flush()
	return out
}

// All tokenizes every text concurrently across workers goroutines
// (<= 0: GOMAXPROCS) and returns the per-document token slices. The
// tokenizer is stateless, so the result is identical to calling Tokens
// serially on each text.
func (t Tokenizer) All(texts []string, workers int) [][]string {
	out := make([][]string, len(texts))
	par.Ranges(len(texts), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = t.Tokens(texts[i])
		}
	})
	return out
}

// splitField handles one whitespace-delimited field: trims surrounding
// punctuation and splits out CJK runes as single-character tokens.
func splitField(field []rune) []string {
	// Trim leading/trailing non-letter/digit runes, keeping interior ones.
	start, end := 0, len(field)
	for start < end && !isWordRune(field[start]) {
		start++
	}
	for end > start && !isWordRune(field[end-1]) {
		end--
	}
	field = field[start:end]
	if len(field) == 0 {
		return nil
	}
	// Fast path: no CJK runes.
	hasCJK := false
	for _, r := range field {
		if isCJK(r) {
			hasCJK = true
			break
		}
	}
	if !hasCJK {
		return []string{string(field)}
	}
	var toks []string
	cur := make([]rune, 0, len(field))
	emit := func() {
		if tok := trimNonWord(cur); tok != "" {
			toks = append(toks, tok)
		}
		cur = cur[:0]
	}
	for _, r := range field {
		if isCJK(r) {
			emit()
			// Radicals and symbols in CJK blocks are not letters; drop
			// them like any other punctuation.
			if isWordRune(r) {
				toks = append(toks, string(r))
			}
			continue
		}
		cur = append(cur, r)
	}
	emit()
	return toks
}

// trimNonWord strips leading/trailing runes that cannot begin or end a
// token and returns the remainder, possibly empty.
func trimNonWord(rs []rune) string {
	start, end := 0, len(rs)
	for start < end && !isWordRune(rs[start]) {
		start++
	}
	for end > start && !isWordRune(rs[end-1]) {
		end--
	}
	return string(rs[start:end])
}

// isWordRune reports whether r can begin or end a token.
func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// isCJK reports whether r belongs to a script written without spaces
// (Han, Hiragana, Katakana). Hangul is spaced and is left alone.
func isCJK(r rune) bool {
	return unicode.Is(unicode.Han, r) ||
		unicode.Is(unicode.Hiragana, r) ||
		unicode.Is(unicode.Katakana, r)
}
