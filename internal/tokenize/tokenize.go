// Package tokenize provides the language-independent tokenizer and the
// vocabulary (string interning) used by every other InfoShield component.
//
// The paper's method is deliberately language-agnostic: no stop-word lists,
// no stemming, no syntax. Tokenization is therefore intentionally simple and
// Unicode-aware:
//
//   - input is lower-cased (Unicode case folding),
//   - whitespace separates tokens,
//   - surrounding punctuation is trimmed but *interior* punctuation is kept,
//     so "scam.com", "123-456.7890" and mangled URLs survive as one token,
//   - runs of CJK characters (which carry no spaces) are split into
//     single-character tokens, the standard language-independent fallback.
package tokenize

import (
	"strings"
	"unicode"

	"infoshield/internal/par"
)

// Tokenizer converts raw document text into token slices. The zero value is
// ready to use. Tokenizer is stateless and safe for concurrent use.
type Tokenizer struct {
	// KeepCase disables lower-casing when true. The paper lower-cases
	// everything (see Table X, where "PR Daily" becomes "pr daily").
	KeepCase bool
}

// Tokens splits text into tokens according to the rules documented on the
// package. It never returns empty-string tokens.
func (t Tokenizer) Tokens(text string) []string {
	if !t.KeepCase {
		text = strings.ToLower(text)
	}
	var out []string
	field := make([]rune, 0, 32)
	flush := func() {
		if len(field) == 0 {
			return
		}
		for _, tok := range splitField(field) {
			if tok != "" {
				out = append(out, tok)
			}
		}
		field = field[:0]
	}
	for _, r := range text {
		if unicode.IsSpace(r) {
			flush()
			continue
		}
		field = append(field, r)
	}
	flush()
	return out
}

// All tokenizes every text concurrently across workers goroutines
// (<= 0: GOMAXPROCS) and returns the per-document token slices. The
// tokenizer is stateless, so the result is identical to calling Tokens
// serially on each text.
func (t Tokenizer) All(texts []string, workers int) [][]string {
	out := make([][]string, len(texts))
	par.Ranges(len(texts), workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = t.Tokens(texts[i])
		}
	})
	return out
}

// splitField handles one whitespace-delimited field: trims surrounding
// punctuation and splits out CJK runes as single-character tokens.
func splitField(field []rune) []string {
	// Trim leading/trailing non-letter/digit runes, keeping interior ones.
	start, end := 0, len(field)
	for start < end && !isWordRune(field[start]) {
		start++
	}
	for end > start && !isWordRune(field[end-1]) {
		end--
	}
	field = field[start:end]
	if len(field) == 0 {
		return nil
	}
	// Fast path: no CJK runes.
	hasCJK := false
	for _, r := range field {
		if isCJK(r) {
			hasCJK = true
			break
		}
	}
	if !hasCJK {
		return []string{string(field)}
	}
	var toks []string
	cur := make([]rune, 0, len(field))
	emit := func() {
		if tok := trimNonWord(cur); tok != "" {
			toks = append(toks, tok)
		}
		cur = cur[:0]
	}
	for _, r := range field {
		if isCJK(r) {
			emit()
			// Radicals and symbols in CJK blocks are not letters; drop
			// them like any other punctuation.
			if isWordRune(r) {
				toks = append(toks, string(r))
			}
			continue
		}
		cur = append(cur, r)
	}
	emit()
	return toks
}

// trimNonWord strips leading/trailing runes that cannot begin or end a
// token and returns the remainder, possibly empty.
func trimNonWord(rs []rune) string {
	start, end := 0, len(rs)
	for start < end && !isWordRune(rs[start]) {
		start++
	}
	for end > start && !isWordRune(rs[end-1]) {
		end--
	}
	return string(rs[start:end])
}

// isWordRune reports whether r can begin or end a token.
func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// isCJK reports whether r belongs to a script written without spaces
// (Han, Hiragana, Katakana). Hangul is spaced and is left alone.
func isCJK(r rune) bool {
	return unicode.Is(unicode.Han, r) ||
		unicode.Is(unicode.Hiragana, r) ||
		unicode.Is(unicode.Katakana, r)
}
