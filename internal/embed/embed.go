// Package embed implements the three text-embedding models the paper's
// baselines are built on — Word2Vec skip-gram with negative sampling
// (Mikolov et al. 2013), Doc2Vec PV-DBOW (Le & Mikolov 2014), and FastText
// subword skip-gram (Bojanowski et al. 2017) — from scratch on the
// standard library, deterministic per seed.
//
// These exist to reproduce the paper's Word2Vec-cl / Doc2Vec-cl /
// FastText-cl baselines (Table VIII): train on the ad corpus, embed each
// document, cluster with HDBSCAN (minimum cluster size 3).
package embed

import (
	"math"
	"math/rand"
)

// Config holds the shared training hyperparameters. Zero fields take the
// defaults documented on each field.
type Config struct {
	Dim       int     // embedding dimensionality (default 50)
	Window    int     // context window radius (default 5)
	Negatives int     // negative samples per positive pair (default 5)
	Epochs    int     // passes over the corpus (default 5)
	LR        float64 // initial learning rate, linearly decayed (default 0.025)
	MinCount  int     // discard words rarer than this (default 2)
	Seed      int64   // rng seed
	// Buckets is the FastText subword hash-bucket count (default 1<<16);
	// ignored by the other models.
	Buckets int
}

func (c Config) withDefaults() Config {
	if c.Dim == 0 {
		c.Dim = 50
	}
	if c.Window == 0 {
		c.Window = 5
	}
	if c.Negatives == 0 {
		c.Negatives = 5
	}
	if c.Epochs == 0 {
		c.Epochs = 5
	}
	if c.LR == 0 {
		c.LR = 0.025
	}
	if c.MinCount == 0 {
		c.MinCount = 2
	}
	if c.Buckets == 0 {
		c.Buckets = 1 << 16
	}
	return c
}

// trainer holds the machinery shared by all three models.
type trainer struct {
	cfg     Config
	words   []string
	wordID  map[string]int
	counts  []int
	docs    [][]int // corpus as word ids (rare words dropped)
	unigram []int32 // negative-sampling table (unigram^0.75)
	rng     *rand.Rand
}

const unigramTableSize = 1 << 18

func newTrainer(docs [][]string, cfg Config) *trainer {
	cfg = cfg.withDefaults()
	t := &trainer{
		cfg:    cfg,
		wordID: make(map[string]int),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	raw := make(map[string]int)
	for _, d := range docs {
		for _, w := range d {
			raw[w]++
		}
	}
	// Deterministic vocab order: first-seen in corpus order.
	for _, d := range docs {
		for _, w := range d {
			if raw[w] < cfg.MinCount {
				continue
			}
			if _, ok := t.wordID[w]; !ok {
				t.wordID[w] = len(t.words)
				t.words = append(t.words, w)
				t.counts = append(t.counts, raw[w])
			}
		}
	}
	t.docs = make([][]int, len(docs))
	for i, d := range docs {
		ids := make([]int, 0, len(d))
		for _, w := range d {
			if id, ok := t.wordID[w]; ok {
				ids = append(ids, id)
			}
		}
		t.docs[i] = ids
	}
	t.buildUnigramTable()
	return t
}

func (t *trainer) buildUnigramTable() {
	if len(t.words) == 0 {
		return
	}
	t.unigram = make([]int32, unigramTableSize)
	total := 0.0
	for _, c := range t.counts {
		total += math.Pow(float64(c), 0.75)
	}
	w, cum := 0, math.Pow(float64(t.counts[0]), 0.75)/total
	for i := range t.unigram {
		t.unigram[i] = int32(w)
		if float64(i)/unigramTableSize > cum && w < len(t.words)-1 {
			w++
			cum += math.Pow(float64(t.counts[w]), 0.75) / total
		}
	}
}

func (t *trainer) sampleNegative() int {
	return int(t.unigram[t.rng.Intn(len(t.unigram))])
}

// sigmoid with clamping; a lookup table is unnecessary at our scales.
func sigmoid(x float64) float64 {
	if x > 8 {
		return 1
	}
	if x < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// initVec fills a vector with small uniform noise.
func (t *trainer) initVec(v []float64) {
	for i := range v {
		v[i] = (t.rng.Float64() - 0.5) / float64(len(v))
	}
}

// pairUpdate applies one SGNS step: input vector in, output word out
// (label 1) and cfg.Negatives sampled words (label 0). grad accumulates
// the input-side gradient; the caller applies it (allowing FastText to
// spread it over subwords). Returns the gradient buffer.
func (t *trainer) pairUpdate(in []float64, out int, outVecs [][]float64, lr float64, grad []float64) []float64 {
	for i := range grad {
		grad[i] = 0
	}
	target := out
	for k := 0; k <= t.cfg.Negatives; k++ {
		label := 0.0
		if k == 0 {
			label = 1
		} else {
			target = t.sampleNegative()
			if target == out {
				continue
			}
		}
		ov := outVecs[target]
		dot := 0.0
		for i := range in {
			dot += in[i] * ov[i]
		}
		g := (label - sigmoid(dot)) * lr
		for i := range in {
			grad[i] += g * ov[i]
			ov[i] += g * in[i]
		}
	}
	return grad
}

// Model is a trained word-embedding model (Word2Vec or FastText).
type Model struct {
	dim     int
	wordID  map[string]int
	vecs    [][]float64 // input vectors per word
	subword *subwordIndex
}

// Dim returns the embedding dimensionality.
func (m *Model) Dim() int { return m.dim }

// Vector returns the embedding for word and whether it is known. FastText
// models can embed out-of-vocabulary words through their subwords.
func (m *Model) Vector(word string) ([]float64, bool) {
	if id, ok := m.wordID[word]; ok {
		return m.vecs[id], true
	}
	if m.subword != nil {
		if v := m.subword.oovVector(word, m.dim); v != nil {
			return v, true
		}
	}
	return nil, false
}

// DocVector embeds a document as the mean of its word vectors; nil for
// documents with no known words.
func (m *Model) DocVector(tokens []string) []float64 {
	sum := make([]float64, m.dim)
	n := 0
	for _, w := range tokens {
		if v, ok := m.Vector(w); ok {
			for i := range sum {
				sum[i] += v[i]
			}
			n++
		}
	}
	if n == 0 {
		return nil
	}
	for i := range sum {
		sum[i] /= float64(n)
	}
	return sum
}

// Cosine returns the cosine similarity between two vectors (0 for nil or
// zero-norm inputs).
func Cosine(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 || len(a) != len(b) {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// TrainWord2Vec trains a skip-gram negative-sampling model.
func TrainWord2Vec(docs [][]string, cfg Config) *Model {
	t := newTrainer(docs, cfg)
	return t.trainSkipGram(nil)
}

// trainSkipGram runs SGNS; when sub is non-nil, input vectors are the sum
// of the word vector and its subword bucket vectors (FastText).
func (t *trainer) trainSkipGram(sub *subwordIndex) *Model {
	nw := len(t.words)
	m := &Model{dim: t.cfg.Dim, wordID: t.wordID, subword: sub}
	m.vecs = make([][]float64, nw)
	outVecs := make([][]float64, nw)
	for i := 0; i < nw; i++ {
		m.vecs[i] = make([]float64, t.cfg.Dim)
		t.initVec(m.vecs[i])
		outVecs[i] = make([]float64, t.cfg.Dim)
	}
	grad := make([]float64, t.cfg.Dim)
	input := make([]float64, t.cfg.Dim)
	totalSteps := float64(t.cfg.Epochs * len(t.docs))
	step := 0.0
	for epoch := 0; epoch < t.cfg.Epochs; epoch++ {
		for _, doc := range t.docs {
			lr := t.cfg.LR * (1 - step/totalSteps)
			if lr < t.cfg.LR*0.0001 {
				lr = t.cfg.LR * 0.0001
			}
			step++
			for c, center := range doc {
				w := 1 + t.rng.Intn(t.cfg.Window)
				for o := c - w; o <= c+w; o++ {
					if o < 0 || o >= len(doc) || o == c {
						continue
					}
					in := m.vecs[center]
					var grams []int
					if sub != nil {
						grams = sub.grams[center]
						copy(input, m.vecs[center])
						for _, g := range grams {
							bv := sub.bucketVecs[g]
							for i := range input {
								input[i] += bv[i]
							}
						}
						in = input
					}
					g := t.pairUpdate(in, doc[o], outVecs, lr, grad)
					if sub == nil {
						v := m.vecs[center]
						for i := range v {
							v[i] += g[i]
						}
					} else {
						v := m.vecs[center]
						scale := 1.0 / float64(1+len(grams))
						for i := range v {
							v[i] += g[i] * scale
						}
						for _, gr := range grams {
							bv := sub.bucketVecs[gr]
							for i := range bv {
								bv[i] += g[i] * scale
							}
						}
					}
				}
			}
		}
	}
	if sub != nil {
		// Fold subword vectors into the stored word vectors so Vector()
		// is a plain lookup for in-vocabulary words.
		for w := 0; w < nw; w++ {
			v := m.vecs[w]
			for _, g := range sub.grams[w] {
				bv := sub.bucketVecs[g]
				for i := range v {
					v[i] += bv[i]
				}
			}
		}
	}
	return m
}
