package embed

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

// corpus with two clear topics: words inside a topic co-occur, so their
// vectors should end up closer than cross-topic pairs.
func topicCorpus(n int, seed int64) [][]string {
	rng := rand.New(rand.NewSource(seed))
	topicA := strings.Fields("cat dog puppy kitten fur paw tail whisker bark meow")
	topicB := strings.Fields("stock bond market trade price index fund share yield broker")
	docs := make([][]string, n)
	for i := range docs {
		bank := topicA
		if i%2 == 1 {
			bank = topicB
		}
		doc := make([]string, 12)
		for j := range doc {
			doc[j] = bank[rng.Intn(len(bank))]
		}
		docs[i] = doc
	}
	return docs
}

func TestWord2VecTopicSeparation(t *testing.T) {
	docs := topicCorpus(400, 1)
	m := TrainWord2Vec(docs, Config{Dim: 24, Epochs: 8, Seed: 1})
	vcat, ok1 := m.Vector("cat")
	vdog, ok2 := m.Vector("dog")
	vstock, ok3 := m.Vector("stock")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("vocabulary missing expected words")
	}
	within := Cosine(vcat, vdog)
	across := Cosine(vcat, vstock)
	if within <= across {
		t.Errorf("within-topic similarity %v <= across-topic %v", within, across)
	}
}

func TestWord2VecDeterministic(t *testing.T) {
	docs := topicCorpus(50, 2)
	a := TrainWord2Vec(docs, Config{Dim: 8, Epochs: 2, Seed: 5})
	b := TrainWord2Vec(docs, Config{Dim: 8, Epochs: 2, Seed: 5})
	va, _ := a.Vector("cat")
	vb, _ := b.Vector("cat")
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("same seed produced different vectors")
		}
	}
}

func TestWord2VecMinCount(t *testing.T) {
	docs := [][]string{
		{"common", "common", "rare"},
		{"common", "common"},
	}
	m := TrainWord2Vec(docs, Config{Dim: 4, MinCount: 2, Seed: 1})
	if _, ok := m.Vector("rare"); ok {
		t.Error("rare word should be pruned by MinCount")
	}
	if _, ok := m.Vector("common"); !ok {
		t.Error("common word missing")
	}
}

func TestDocVectorMean(t *testing.T) {
	docs := topicCorpus(100, 3)
	m := TrainWord2Vec(docs, Config{Dim: 12, Epochs: 3, Seed: 3})
	v := m.DocVector([]string{"cat", "dog"})
	if v == nil {
		t.Fatal("nil doc vector")
	}
	if got := m.DocVector([]string{"zzz-unknown"}); got != nil {
		t.Errorf("unknown-only doc should embed to nil, got %v", got)
	}
	// Same-topic docs more similar than cross-topic docs.
	a := m.DocVector(docs[0])
	b := m.DocVector(docs[2])
	c := m.DocVector(docs[1])
	if Cosine(a, b) <= Cosine(a, c) {
		t.Error("same-topic docs should be more similar")
	}
}

func TestFastTextSubwordOOV(t *testing.T) {
	docs := topicCorpus(200, 4)
	m := TrainFastText(docs, Config{Dim: 16, Epochs: 4, Seed: 4})
	// A misspelling embeds through shared subwords and should land near
	// the correct word.
	v1, ok := m.Vector("kitten")
	if !ok {
		t.Fatal("kitten missing")
	}
	v2, ok := m.Vector("kittenz") // OOV
	if !ok {
		t.Fatal("OOV word should embed through subwords")
	}
	vFar, _ := m.Vector("broker")
	if Cosine(v1, v2) <= Cosine(v1, vFar) {
		t.Errorf("misspelling similarity %v <= unrelated %v", Cosine(v1, v2), Cosine(v1, vFar))
	}
}

func TestDoc2VecTopicSeparation(t *testing.T) {
	docs := topicCorpus(300, 6)
	m := TrainDoc2Vec(docs, Config{Dim: 16, Epochs: 10, Seed: 6})
	if m.NumDocs() != 300 {
		t.Fatalf("NumDocs = %d", m.NumDocs())
	}
	// doc 0 and doc 2 share a topic; doc 1 does not.
	same := Cosine(m.DocVector(0), m.DocVector(2))
	diff := Cosine(m.DocVector(0), m.DocVector(1))
	if same <= diff {
		t.Errorf("same-topic %v <= diff-topic %v", same, diff)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine([]float64{1, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cosine identical = %v", got)
	}
	if got := Cosine([]float64{1, 0}, []float64{0, 1}); math.Abs(got) > 1e-12 {
		t.Errorf("Cosine orthogonal = %v", got)
	}
	if got := Cosine(nil, []float64{1}); got != 0 {
		t.Errorf("Cosine nil = %v", got)
	}
	if got := Cosine([]float64{0, 0}, []float64{1, 1}); got != 0 {
		t.Errorf("Cosine zero-norm = %v", got)
	}
}

func TestCharNgrams(t *testing.T) {
	grams := charNgrams("ab", 3, 5, 1024)
	// "<ab>" has runes < a b >: 3-grams: <ab, ab>; 4-gram: <ab>. Total 3.
	if len(grams) != 3 {
		t.Errorf("ngram count = %d, want 3", len(grams))
	}
	for _, g := range grams {
		if g < 0 || g >= 1024 {
			t.Errorf("bucket %d out of range", g)
		}
	}
}

func TestEmptyCorpus(t *testing.T) {
	m := TrainWord2Vec(nil, Config{Dim: 4, Seed: 1})
	if _, ok := m.Vector("anything"); ok {
		t.Error("empty corpus should know no words")
	}
	d := TrainDoc2Vec(nil, Config{Dim: 4, Seed: 1})
	if d.NumDocs() != 0 {
		t.Error("empty corpus should have no doc vectors")
	}
}

func TestFastTextDeterministic(t *testing.T) {
	docs := topicCorpus(60, 7)
	a := TrainFastText(docs, Config{Dim: 8, Epochs: 2, Seed: 9})
	b := TrainFastText(docs, Config{Dim: 8, Epochs: 2, Seed: 9})
	va, _ := a.Vector("cat")
	vb, _ := b.Vector("cat")
	for i := range va {
		if va[i] != vb[i] {
			t.Fatal("same seed produced different fasttext vectors")
		}
	}
}
