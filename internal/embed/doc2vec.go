package embed

// DocModel is a trained Doc2Vec (PV-DBOW) model: one vector per training
// document.
type DocModel struct {
	dim  int
	vecs [][]float64
}

// Dim returns the embedding dimensionality.
func (m *DocModel) Dim() int { return m.dim }

// DocVector returns the trained vector of training document i.
func (m *DocModel) DocVector(i int) []float64 { return m.vecs[i] }

// NumDocs returns the number of document vectors.
func (m *DocModel) NumDocs() int { return len(m.vecs) }

// TrainDoc2Vec trains PV-DBOW: each document's vector is optimized to
// predict the words the document contains, with negative sampling. This
// is the distributed-bag-of-words variant of Le & Mikolov (2014) — the
// cheaper and usually stronger of the two PV architectures on short text.
func TrainDoc2Vec(docs [][]string, cfg Config) *DocModel {
	t := newTrainer(docs, cfg)
	m := &DocModel{dim: t.cfg.Dim}
	m.vecs = make([][]float64, len(t.docs))
	for i := range m.vecs {
		m.vecs[i] = make([]float64, t.cfg.Dim)
		t.initVec(m.vecs[i])
	}
	outVecs := make([][]float64, len(t.words))
	for i := range outVecs {
		outVecs[i] = make([]float64, t.cfg.Dim)
	}
	grad := make([]float64, t.cfg.Dim)
	totalSteps := float64(t.cfg.Epochs * len(t.docs))
	step := 0.0
	for epoch := 0; epoch < t.cfg.Epochs; epoch++ {
		for d, doc := range t.docs {
			lr := t.cfg.LR * (1 - step/totalSteps)
			if lr < t.cfg.LR*0.0001 {
				lr = t.cfg.LR * 0.0001
			}
			step++
			dv := m.vecs[d]
			for _, w := range doc {
				g := t.pairUpdate(dv, w, outVecs, lr, grad)
				for i := range dv {
					dv[i] += g[i]
				}
			}
		}
	}
	return m
}
