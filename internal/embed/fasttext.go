package embed

import (
	"hash/fnv"
	"sort"
)

// subwordIndex maps words to character n-gram hash buckets, FastText's
// mechanism for sharing statistical strength across morphology and
// misspellings — the property that makes it the strongest of the three
// embedding baselines on noisy ad text.
type subwordIndex struct {
	minN, maxN int
	buckets    int
	grams      [][]int     // per word id: bucket ids
	bucketVecs [][]float64 // trained bucket vectors
}

// charNgrams returns the hashed bucket ids of word's character n-grams,
// with the FastText boundary markers < and >.
func charNgrams(word string, minN, maxN, buckets int) []int {
	runes := []rune("<" + word + ">")
	var out []int
	for n := minN; n <= maxN; n++ {
		for i := 0; i+n <= len(runes); i++ {
			h := fnv.New32a()
			h.Write([]byte(string(runes[i : i+n])))
			out = append(out, int(h.Sum32())%buckets)
		}
	}
	return out
}

// TrainFastText trains a subword-enriched skip-gram model. Word vectors
// are the sum of a word-level vector and the vectors of the word's
// character 3-5 gram buckets; out-of-vocabulary words embed through their
// subwords alone.
func TrainFastText(docs [][]string, cfg Config) *Model {
	t := newTrainer(docs, cfg)
	sub := &subwordIndex{minN: 3, maxN: 5, buckets: t.cfg.Buckets}
	sub.grams = make([][]int, len(t.words))
	used := make(map[int]bool)
	for w, word := range t.words {
		sub.grams[w] = charNgrams(word, sub.minN, sub.maxN, sub.buckets)
		for _, g := range sub.grams[w] {
			used[g] = true
		}
	}
	// Initialize used buckets in sorted order: map iteration order would
	// make training non-deterministic.
	ids := make([]int, 0, len(used))
	for g := range used {
		ids = append(ids, g)
	}
	sort.Ints(ids)
	sub.bucketVecs = make([][]float64, sub.buckets)
	for _, g := range ids {
		sub.bucketVecs[g] = make([]float64, t.cfg.Dim)
		t.initVec(sub.bucketVecs[g])
	}
	// Buckets never seen during training stay zero vectors.
	for g := range sub.bucketVecs {
		if sub.bucketVecs[g] == nil {
			sub.bucketVecs[g] = make([]float64, t.cfg.Dim)
		}
	}
	return t.trainSkipGram(sub)
}

// oovVector embeds an out-of-vocabulary word as the mean of its subword
// bucket vectors; nil when the word yields no n-grams.
func (s *subwordIndex) oovVector(word string, dim int) []float64 {
	grams := charNgrams(word, s.minN, s.maxN, s.buckets)
	if len(grams) == 0 {
		return nil
	}
	v := make([]float64, dim)
	for _, g := range grams {
		bv := s.bucketVecs[g]
		for i := range v {
			v[i] += bv[i]
		}
	}
	for i := range v {
		v[i] /= float64(len(grams))
	}
	return v
}
