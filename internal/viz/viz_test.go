package viz

import (
	"bytes"
	"strings"
	"testing"

	"infoshield/internal/core"
	"infoshield/internal/template"
	"infoshield/internal/tokenize"
)

// clusteredResult runs the pipeline on a tiny duplicate corpus and
// returns the first template.
func clusteredResult(t *testing.T) (*core.Result, core.TemplateResult) {
	t.Helper()
	docs := []string{
		"buy cheap pills online now visit example.test today friends",
		"buy cheap pills online now visit example.test today friends",
		"buy cheap pills online now visit other.test today friends",
		"completely unrelated text about gardening and tomato plants maybe",
		"another unrelated sentence mentioning mountains and rivers here too",
	}
	res := core.Run(docs, core.Options{})
	if len(res.Clusters) == 0 || len(res.Clusters[0].Templates) == 0 {
		t.Fatal("pipeline found no template on duplicate corpus")
	}
	return res, res.Clusters[0].Templates[0]
}

func TestTemplateLinePlain(t *testing.T) {
	res, tr := clusteredResult(t)
	line := TemplateLine(tr.Template, res.Vocab, PlainPalette)
	if !strings.Contains(line, "cheap pills online") {
		t.Errorf("template line missing constants: %q", line)
	}
}

func TestDocLineReconstructsText(t *testing.T) {
	res, tr := clusteredResult(t)
	// With an empty palette, the doc line is the tokenized document text
	// (modulo deleted template tokens, absent here).
	line := DocLine(tr.Fit, 0, res.Vocab, Palette{})
	var tk tokenize.Tokenizer
	want := strings.Join(tk.Tokens("buy cheap pills online now visit example.test today friends"), " ")
	if line != want {
		t.Errorf("doc line = %q, want %q", line, want)
	}
}

func TestWriteClusterANSI(t *testing.T) {
	res, tr := clusteredResult(t)
	var buf bytes.Buffer
	WriteCluster(&buf, "T1", tr.Template, tr.Fit, tr.Docs, res.Vocab, ANSIPalette)
	out := buf.String()
	if !strings.Contains(out, "T1") {
		t.Error("missing label")
	}
	if !strings.Contains(out, "#0") {
		t.Errorf("missing doc ids: %s", out)
	}
	lines := strings.Count(out, "\n")
	if lines != 1+len(tr.Docs) {
		t.Errorf("expected %d lines, got %d", 1+len(tr.Docs), lines)
	}
}

func TestWriteHTML(t *testing.T) {
	res, tr := clusteredResult(t)
	var buf bytes.Buffer
	err := WriteHTML(&buf, []HTMLCluster{{
		Label: "Cluster <1>", T: tr.Template, Fit: tr.Fit, DocIDs: tr.Docs,
	}}, res.Vocab)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<!DOCTYPE html>", "</html>", "Cluster &lt;1&gt;", "cheap"} {
		if !strings.Contains(out, want) {
			t.Errorf("HTML missing %q", want)
		}
	}
	if strings.Contains(out, "<1>") {
		t.Error("unescaped label in HTML")
	}
}

func TestPaletteWrap(t *testing.T) {
	got := PlainPalette.wrap(template.SlotFill, "x")
	if got != "[*x]" {
		t.Errorf("wrap slot = %q", got)
	}
	got = PlainPalette.wrap(template.Const, "x")
	if got != "x" {
		t.Errorf("wrap const = %q", got)
	}
	got = ANSIPalette.wrap(template.Ins, "y")
	if !strings.HasPrefix(got, "\x1b[32m") || !strings.HasSuffix(got, "\x1b[0m") {
		t.Errorf("ANSI ins = %q", got)
	}
}
