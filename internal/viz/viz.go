// Package viz renders discovered templates and their member documents in
// the paper's five-color scheme (Table IV): constants plain, slots red,
// insertions green, deletions struck through, substitutions yellow — as
// ANSI terminal text and as standalone HTML. Interpretability is the
// point of InfoShield: an investigator reads one template instead of a
// wall of near-duplicate documents.
package viz

import (
	"fmt"
	"html"
	"io"
	"strings"

	"infoshield/internal/template"
	"infoshield/internal/tokenize"
)

// Palette maps piece kinds to ANSI escape sequences.
type Palette struct {
	Const, Slot, Ins, Del, Sub, Reset string
}

// ANSIPalette is the default terminal palette.
var ANSIPalette = Palette{
	Const: "",
	Slot:  "\x1b[1;31m", // bold red, like the paper's figures
	Ins:   "\x1b[32m",   // green
	Del:   "\x1b[9;90m", // struck-through gray
	Sub:   "\x1b[33m",   // yellow
	Reset: "\x1b[0m",
}

// PlainPalette marks pieces with ASCII brackets instead of colors, for
// logs and tests.
var PlainPalette = Palette{
	Slot: "[*", Ins: "[+", Del: "[-", Sub: "[~", Reset: "]",
}

func (p Palette) wrap(kind template.PieceOp, text string) string {
	var open string
	switch kind {
	case template.SlotFill:
		open = p.Slot
	case template.Ins:
		open = p.Ins
	case template.Del:
		open = p.Del
	case template.Sub:
		open = p.Sub
	default:
		return text
	}
	if open == "" {
		return text
	}
	return open + text + p.Reset
}

// TemplateLine renders the template itself: constants verbatim, slots as
// a highlighted "*".
func TemplateLine(t template.Template, vocab *tokenize.Vocab, p Palette) string {
	parts := make([]string, 0, t.Len())
	for i, id := range t.TokenIDs {
		if t.IsSlot[i] {
			parts = append(parts, p.wrap(template.SlotFill, "*"))
			continue
		}
		parts = append(parts, vocab.Word(id))
	}
	return strings.Join(parts, " ")
}

// DocLine renders one member document's pieces with the palette.
func DocLine(fit *template.Fit, row int, vocab *tokenize.Vocab, p Palette) string {
	var parts []string
	for _, piece := range fit.DocPieces(row) {
		words := make([]string, len(piece.Tokens))
		for i, id := range piece.Tokens {
			words[i] = vocab.Word(id)
		}
		parts = append(parts, p.wrap(piece.Op, strings.Join(words, " ")))
	}
	return strings.Join(parts, " ")
}

// WriteCluster renders a whole template with its documents to w using the
// palette — the terminal equivalent of the paper's Table IV.
func WriteCluster(w io.Writer, label string, t template.Template, fit *template.Fit,
	docIDs []int, vocab *tokenize.Vocab, p Palette) {
	fmt.Fprintf(w, "%s  %s\n", label, TemplateLine(t, vocab, p))
	for row := range fit.M.Rows {
		id := row
		if row < len(docIDs) {
			id = docIDs[row]
		}
		fmt.Fprintf(w, "  #%-5d %s\n", id, DocLine(fit, row, vocab, p))
	}
}

// htmlClass maps piece kinds to CSS classes.
func htmlClass(op template.PieceOp) string {
	switch op {
	case template.SlotFill:
		return "slot"
	case template.Ins:
		return "ins"
	case template.Del:
		return "del"
	case template.Sub:
		return "sub"
	}
	return ""
}

const htmlHeader = `<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>InfoShield clusters</title>
<style>
body { font-family: sans-serif; margin: 2em; }
table { border-collapse: collapse; margin-bottom: 2em; }
td, th { border: 1px solid #ccc; padding: 4px 8px; text-align: left; }
th { background: #f0f0f0; }
.slot { color: #c00; font-weight: bold; }
.ins  { color: #080; }
.del  { color: #888; text-decoration: line-through; }
.sub  { color: #a60; }
caption { font-weight: bold; text-align: left; padding: 4px 0; }
.legend span { margin-right: 1em; }
</style></head><body>
<h1>InfoShield — discovered templates</h1>
<p class="legend">
<span>constant</span>
<span class="slot">slot</span>
<span class="ins">insertion</span>
<span class="del">deletion</span>
<span class="sub">substitution</span>
</p>
`

// HTMLReport writes a standalone HTML page showing every template and its
// documents. clusters pairs a label with a template result.
type HTMLCluster struct {
	Label  string
	T      template.Template
	Fit    *template.Fit
	DocIDs []int
}

// WriteHTML renders all clusters as one HTML document.
func WriteHTML(w io.Writer, clusters []HTMLCluster, vocab *tokenize.Vocab) error {
	if _, err := io.WriteString(w, htmlHeader); err != nil {
		return err
	}
	ew := &errWriter{w: w}
	for _, c := range clusters {
		ew.printf("<table><caption>%s</caption>\n", html.EscapeString(c.Label))
		ew.print("<tr><th>doc</th><th>text</th></tr>\n")
		// Template row.
		ew.print("<tr><th>T</th><td>")
		for i, id := range c.T.TokenIDs {
			if i > 0 {
				ew.print(" ")
			}
			if c.T.IsSlot[i] {
				ew.print(`<span class="slot">*</span>`)
			} else {
				ew.print(html.EscapeString(vocab.Word(id)))
			}
		}
		ew.print("</td></tr>\n")
		for row := range c.Fit.M.Rows {
			id := row
			if row < len(c.DocIDs) {
				id = c.DocIDs[row]
			}
			ew.printf("<tr><td>#%d</td><td>", id)
			for j, piece := range c.Fit.DocPieces(row) {
				if j > 0 {
					ew.print(" ")
				}
				words := make([]string, len(piece.Tokens))
				for i, tid := range piece.Tokens {
					words[i] = vocab.Word(tid)
				}
				text := html.EscapeString(strings.Join(words, " "))
				if cls := htmlClass(piece.Op); cls != "" {
					ew.printf(`<span class=%q>%s</span>`, cls, text)
				} else {
					ew.print(text)
				}
			}
			ew.print("</td></tr>\n")
		}
		ew.print("</table>\n")
	}
	ew.print("</body></html>\n")
	return ew.err
}
