package viz

import (
	"bytes"
	"strings"
	"testing"
)

func TestScatterSVGBasic(t *testing.T) {
	var buf bytes.Buffer
	err := ScatterSVG(&buf, "Title & Co", "x <axis>", "y",
		false, false,
		[]Series{{Name: "a", Color: "#f00", X: []float64{1, 2, 3}, Y: []float64{4, 5, 6}}},
		[]Curve{{Name: "bound", Color: "#000", X: []float64{1, 3}, Y: []float64{4, 6}}})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "Title &amp; Co", "x &lt;axis&gt;", "polyline"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	if got := strings.Count(out, "<circle"); got < 3 {
		t.Errorf("points rendered: %d", got)
	}
}

func TestScatterSVGLogAxesSkipNonPositive(t *testing.T) {
	var buf bytes.Buffer
	err := ScatterSVG(&buf, "log", "x", "y", true, true,
		[]Series{{Name: "s", Color: "#00f",
			X: []float64{0, -1, 0.1, 10}, Y: []float64{1, 1, 2, 200}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Only the two positive points render (plus one legend marker).
	if got := strings.Count(out, "<circle"); got != 3 {
		t.Errorf("circles = %d, want 3 (2 points + legend)", got)
	}
	if !strings.Contains(out, ">10<") {
		t.Errorf("log ticks missing power-of-ten label:\n%s", out)
	}
}

func TestScatterSVGEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := ScatterSVG(&buf, "empty", "x", "y", true, true, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "</svg>") {
		t.Error("empty plot not closed")
	}
}

func TestNiceStep(t *testing.T) {
	cases := []struct{ span, want float64 }{
		{10, 2}, {100, 20}, {1, 0.2}, {7, 1}, {0, 1}, {60, 10},
	}
	for _, c := range cases {
		if got := niceStep(c.span); got != c.want {
			t.Errorf("niceStep(%v) = %v, want %v", c.span, got, c.want)
		}
	}
}
