package viz

import (
	"fmt"
	"html"
	"io"
	"math"
)

// Series is one scatter series (points of one color).
type Series struct {
	Name  string
	Color string
	X, Y  []float64
}

// Curve is a polyline (e.g. a lower-bound curve).
type Curve struct {
	Name  string
	Color string
	X, Y  []float64
}

// ScatterSVG renders a standalone SVG scatter plot, optionally with
// log-scaled axes — enough to regenerate the paper's Figure 3 as an
// actual figure. It is intentionally minimal: no dependency, fixed
// canvas, powers-of-ten ticks on log axes.
func ScatterSVG(w io.Writer, title, xlabel, ylabel string, logX, logY bool,
	series []Series, curves []Curve) error {
	const (
		width, height            = 640, 480
		left, right, top, bottom = 70, 20, 40, 50
	)
	plotW := float64(width - left - right)
	plotH := float64(height - top - bottom)

	// Data range.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	consider := func(xs, ys []float64) {
		for i := range xs {
			x, y := xs[i], ys[i]
			if logX && x <= 0 || logY && y <= 0 {
				continue
			}
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	for _, s := range series {
		consider(s.X, s.Y)
	}
	for _, c := range curves {
		consider(c.X, c.Y)
	}
	if math.IsInf(minX, 1) {
		minX, maxX, minY, maxY = 0, 1, 0, 1
	}
	// Log axes need strictly positive ranges even when no data qualified.
	if logX && minX <= 0 {
		minX, maxX = 0.1, 1
	}
	if logY && minY <= 0 {
		minY, maxY = 0.1, 1
	}
	if minX == maxX {
		maxX = minX + 1
	}
	if minY == maxY {
		maxY = minY + 1
	}
	tx := func(x float64) float64 {
		if logX {
			return float64(left) + (math.Log10(x)-math.Log10(minX))/(math.Log10(maxX)-math.Log10(minX))*plotW
		}
		return float64(left) + (x-minX)/(maxX-minX)*plotW
	}
	ty := func(y float64) float64 {
		var f float64
		if logY {
			f = (math.Log10(y) - math.Log10(minY)) / (math.Log10(maxY) - math.Log10(minY))
		} else {
			f = (y - minY) / (maxY - minY)
		}
		return float64(top) + (1-f)*plotH
	}

	ew := &errWriter{w: w}
	ew.printf(`<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	ew.printf(`<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	ew.printf(`<text x="%d" y="20" font-size="15" font-weight="bold">%s</text>`+"\n", left, html.EscapeString(title))
	// Axes.
	ew.printf(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		left, height-bottom, width-right, height-bottom)
	ew.printf(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		left, top, left, height-bottom)
	ew.printf(`<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n",
		left+int(plotW/2), height-12, html.EscapeString(xlabel))
	ew.printf(`<text x="16" y="%d" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`+"\n",
		top+int(plotH/2), top+int(plotH/2), html.EscapeString(ylabel))
	// Ticks.
	writeTicks(ew, minX, maxX, logX, func(v float64) (float64, float64) { return tx(v), float64(height - bottom) }, true)
	writeTicks(ew, minY, maxY, logY, func(v float64) (float64, float64) { return float64(left), ty(v) }, false)
	// Curves.
	for _, c := range curves {
		ew.printf(`<polyline fill="none" stroke="%s" stroke-width="1.5" points="`, c.Color)
		for i := range c.X {
			if logX && c.X[i] <= 0 || logY && c.Y[i] <= 0 {
				continue
			}
			ew.printf("%.1f,%.1f ", tx(c.X[i]), ty(c.Y[i]))
		}
		ew.print(`"/>` + "\n")
	}
	// Points.
	for _, s := range series {
		for i := range s.X {
			if logX && s.X[i] <= 0 || logY && s.Y[i] <= 0 {
				continue
			}
			ew.printf(`<circle cx="%.1f" cy="%.1f" r="3.5" fill="%s" fill-opacity="0.75"/>`+"\n",
				tx(s.X[i]), ty(s.Y[i]), s.Color)
		}
	}
	// Legend.
	ly := top + 8
	for _, s := range series {
		ew.printf(`<circle cx="%d" cy="%d" r="4" fill="%s"/><text x="%d" y="%d">%s</text>`+"\n",
			width-right-120, ly, s.Color, width-right-110, ly+4, html.EscapeString(s.Name))
		ly += 18
	}
	for _, c := range curves {
		if c.Name == "" {
			continue
		}
		ew.printf(`<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="2"/><text x="%d" y="%d">%s</text>`+"\n",
			width-right-128, ly, width-right-112, ly, c.Color, width-right-110, ly+4, html.EscapeString(c.Name))
		ly += 18
	}
	ew.print(`</svg>` + "\n")
	return ew.err
}

// writeTicks emits tick marks and labels; for log axes, at powers of ten.
func writeTicks(w io.Writer, min, max float64, log bool,
	pos func(float64) (x, y float64), xAxis bool) {
	var ticks []float64
	if log {
		for p := math.Floor(math.Log10(min)); p <= math.Ceil(math.Log10(max)); p++ {
			v := math.Pow(10, p)
			if v >= min*0.999 && v <= max*1.001 {
				ticks = append(ticks, v)
			}
		}
	} else {
		step := niceStep(max - min)
		for v := math.Ceil(min/step) * step; v <= max+step*1e-9; v += step {
			ticks = append(ticks, v)
		}
	}
	for _, v := range ticks {
		x, y := pos(v)
		label := trimFloat(v)
		if xAxis {
			fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", x, y, x, y+5)
			fmt.Fprintf(w, `<text x="%.1f" y="%.1f" text-anchor="middle">%s</text>`+"\n", x, y+18, label)
		} else {
			fmt.Fprintf(w, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="black"/>`+"\n", x-5, y, x, y)
			fmt.Fprintf(w, `<text x="%.1f" y="%.1f" text-anchor="end">%s</text>`+"\n", x-8, y+4, label)
		}
	}
}

func niceStep(span float64) float64 {
	if span <= 0 {
		return 1
	}
	raw := span / 6
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	switch {
	case raw/mag < 1.5:
		return mag
	case raw/mag < 3.5:
		return 2 * mag
	case raw/mag < 7.5:
		return 5 * mag
	}
	return 10 * mag
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e7 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}
