package viz

import (
	"fmt"
	"io"
)

// errWriter wraps an io.Writer and remembers the first write error so a
// renderer that promises an error to its caller can stay a linear
// sequence of prints instead of checking every Fprintf. After the first
// failure every subsequent write is a no-op; the caller returns ew.err
// once at the end. Write always reports success upward so fmt never
// truncates mid-verb — the stashed error is the one that matters.
type errWriter struct {
	w   io.Writer
	err error
}

func (ew *errWriter) Write(p []byte) (int, error) {
	if ew.err == nil {
		_, ew.err = ew.w.Write(p)
	}
	return len(p), nil
}

func (ew *errWriter) printf(format string, args ...any) {
	fmt.Fprintf(ew, format, args...)
}

func (ew *errWriter) print(args ...any) {
	fmt.Fprint(ew, args...)
}
