package search

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDichotomousConvex(t *testing.T) {
	// Convex parabola with minimum at 13.
	cost := func(h int) float64 { return float64((h - 13) * (h - 13)) }
	if got := Dichotomous(0, 50, cost); got != 13 {
		t.Errorf("Dichotomous = %d, want 13", got)
	}
	if got := Exhaustive(0, 50, cost); got != 13 {
		t.Errorf("Exhaustive = %d, want 13", got)
	}
}

func TestDichotomousMonotone(t *testing.T) {
	dec := func(h int) float64 { return float64(100 - h) }
	if got := Dichotomous(0, 30, dec); got != 30 {
		t.Errorf("decreasing cost: got %d, want 30", got)
	}
	inc := func(h int) float64 { return float64(h) }
	if got := Dichotomous(0, 30, inc); got != 0 {
		t.Errorf("increasing cost: got %d, want 0", got)
	}
}

func TestDichotomousDegenerate(t *testing.T) {
	calls := 0
	cost := func(h int) float64 { calls++; return 1 }
	if got := Dichotomous(5, 5, cost); got != 5 {
		t.Errorf("single point: %d", got)
	}
	if got := Dichotomous(7, 3, cost); got != 7 {
		t.Errorf("empty range: %d", got)
	}
}

func TestDichotomousEvaluationBudget(t *testing.T) {
	calls := 0
	cost := func(h int) float64 { calls++; return float64((h - 500) * (h - 500)) }
	Dichotomous(0, 1000, cost)
	// Memoized binary search: ~3 evaluations per halving step.
	if calls > 50 {
		t.Errorf("too many cost evaluations: %d", calls)
	}
}

// Property: on convex functions the dichotomous search is exact.
func TestDichotomousExactOnConvex(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hi := rng.Intn(100) + 1
		min := rng.Intn(hi + 1)
		a := rng.Float64()*3 + 0.1
		cost := func(h int) float64 { return a * float64(h-min) * float64(h-min) }
		return Dichotomous(0, hi, cost) == min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: result is never worse than both endpoints, and always within
// range; on arbitrary (non-convex) functions the returned cost is at most
// the worst evaluated endpoint.
func TestDichotomousAlwaysReasonable(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hi := rng.Intn(60)
		vals := make([]float64, hi+1)
		for i := range vals {
			vals[i] = rng.Float64() * 100
		}
		cost := func(h int) float64 { return vals[h] }
		got := Dichotomous(0, hi, cost)
		if got < 0 || got > hi {
			return false
		}
		// Must be no worse than both endpoints (they are evaluated or
		// dominated by an evaluated better point).
		return vals[got] <= math.Max(vals[0], vals[hi])+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Exhaustive finds the global minimum.
func TestExhaustiveGlobal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		hi := rng.Intn(40)
		vals := make([]float64, hi+1)
		for i := range vals {
			vals[i] = rng.Float64()
		}
		got := Exhaustive(0, hi, func(h int) float64 { return vals[h] })
		for _, v := range vals {
			if v < vals[got] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
