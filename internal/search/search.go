// Package search implements the dichotomous (binary) search the paper uses
// for Consensus-Search (Algorithm 2): a 1-dimensional minimization of a
// cost function over an integer threshold range. The cost function is not
// convex, so the paper notes the search "returns the optimal solutions in
// most cases"; we additionally remember every evaluated point and return
// the best one seen, which can only improve on the textbook procedure and
// keeps the method parameter-free.
package search

import "infoshield/internal/mdl"

// Dichotomous minimizes cost over the integers [lo, hi] following
// Algorithm 2's halving scheme and returns the argmin among all evaluated
// points. Evaluations are memoized, so cost is called at most once per
// point (O(log(hi-lo)) evaluations). If lo > hi, lo is returned unevaluated.
func Dichotomous(lo, hi int, cost func(int) float64) int {
	if lo > hi {
		return lo
	}
	memo := make(map[int]float64)
	eval := func(h int) float64 {
		if h < lo {
			h = lo
		}
		if h > hi {
			h = hi
		}
		if c, ok := memo[h]; ok {
			return c
		}
		c := cost(h)
		memo[h] = c
		return c
	}
	l, r := lo, hi
	for l < r {
		m := (l + r) / 2
		eval(m) // the halving below can exclude m; make sure it was seen
		if eval(m-1) <= eval(m+1) {
			r = m - 1
		} else {
			l = m + 1
		}
	}
	eval(l)
	// Return the best evaluated point (deterministic tie-break: smallest).
	// Cost ties are decided with mdl.ApproxEq — exact float equality on
	// lg-term sums is architecture-dependent in the last ulps.
	bestH, bestC := lo, eval(lo)
	for h := lo; h <= hi; h++ {
		c, ok := memo[h]
		if !ok {
			continue
		}
		if mdl.ApproxEq(c, bestC) {
			if h < bestH {
				bestH, bestC = h, c
			}
		} else if c < bestC {
			bestH, bestC = h, c
		}
	}
	return bestH
}

// Exhaustive minimizes cost over [lo, hi] by evaluating every point. It is
// the oracle the ablation benchmarks compare Dichotomous against.
func Exhaustive(lo, hi int, cost func(int) float64) int {
	if lo > hi {
		return lo
	}
	bestH, bestC := lo, cost(lo)
	for h := lo + 1; h <= hi; h++ {
		if c := cost(h); c < bestC {
			bestH, bestC = h, c
		}
	}
	return bestH
}
