package tfidf

// Hashed phrase identity. The extractor used to key every n-gram
// occurrence by strings.Join of its tokens — one string allocation per
// occurrence, O(L·MaxN) per document. Phrases are now keyed by a rolling
// 64-bit hash over token ids, extended one token at a time so all MaxN
// n-grams starting at a position cost one multiply-add each and zero
// allocations. Hashing is NOT trusted for identity: every table in this
// package chains colliding phrases and disambiguates them by comparing
// the actual token sequences, so phrase identity is exact, never
// probabilistic.

// PhraseID identifies one distinct phrase of the corpus exactly. Hash is
// the mixed rolling hash of the phrase's token-id sequence; Alt is the
// index in the corpus-wide collision chain for that hash value, which is
// 0 unless two distinct phrases happen to share all 64 hash bits.
type PhraseID struct {
	Hash uint64
	Alt  uint16
}

// hashMul is the odd multiplier of the rolling polynomial hash.
const hashMul = 0x9e3779b97f4a7c15

// extendHash rolls one token id into a polynomial prefix hash. The +1
// keeps id 0 from being absorbed (so "a" and "a a" differ for id(a)=0).
func extendHash(h uint64, id int) uint64 {
	return h*hashMul + uint64(id) + 1
}

// mix64 is the SplitMix64 finalizer, applied to the rolling hash before
// it is used as a map key or shard selector.
func mix64(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// PhraseHashExtend rolls one token id into a polynomial prefix hash —
// the exported form of extendHash for callers that maintain phrase
// identity outside this package (the streaming incremental miner keeps
// cross-flush document-frequency state keyed by the same rolling hash).
func PhraseHashExtend(h uint64, id int) uint64 { return extendHash(h, id) }

// PhraseHashMix finalizes a rolling prefix hash into the mixed key form
// (the exported mix64).
func PhraseHashMix(h uint64) uint64 { return mix64(h) }

// hashIDs hashes a whole token-id sequence (the non-rolling reference,
// used by tests and one-off callers).
func hashIDs(ids []int) uint64 {
	var h uint64
	for _, id := range ids {
		h = extendHash(h, id)
	}
	return mix64(h)
}

// dfShards is the number of key-range shards the document-frequency
// table is split into. Workers pre-shard their local counts by the top
// hash bits, so the merge runs shard-parallel with no shared state and
// no lock on the counting hot path. The count is fixed (not a function
// of the worker knob) so the table layout is identical for any Workers.
const dfShards = 16

// dfShard selects the shard for a mixed hash by its top bits.
func dfShard(h uint64) int { return int(h >> 60) }

// phraseInfo records one phrase's statistics within one document.
type phraseInfo struct {
	tf  int32 // term frequency
	pos int32 // start of the first occurrence
	n   int32 // phrase length in tokens
}

// dfRef is one document-frequency cell: the running count plus a
// canonical occurrence (doc, pos, n) used to compare token sequences
// when hashes collide.
type dfRef struct {
	df       int32
	doc, pos int32
	n        int32
}

// dfCell is the table entry for one hash value: the first phrase inline
// plus the (virtually always empty) collision chain.
type dfCell struct {
	dfRef
	more []dfRef
}

// sameSeq reports whether two occurrences spell the same token sequence.
func sameSeq(docs [][]int, d1, p1, n1, d2, p2, n2 int32) bool {
	if n1 != n2 {
		return false
	}
	a := docs[d1][p1 : p1+n1]
	b := docs[d2][p2 : p2+n2]
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dfAdd counts one (phrase, document) pair into a shard map, chaining on
// hash collision. docs backs the token-sequence identity checks.
func dfAdd(m map[uint64]dfCell, key uint64, docs [][]int, doc, pos, n int32) {
	c, ok := m[key]
	if !ok {
		m[key] = dfCell{dfRef: dfRef{df: 1, doc: doc, pos: pos, n: n}}
		return
	}
	if sameSeq(docs, c.doc, c.pos, c.n, doc, pos, n) {
		c.df++
		m[key] = c
		return
	}
	for i := range c.more {
		r := &c.more[i]
		if sameSeq(docs, r.doc, r.pos, r.n, doc, pos, n) {
			r.df++
			m[key] = c
			return
		}
	}
	c.more = append(c.more, dfRef{df: 1, doc: doc, pos: pos, n: n})
	m[key] = c
}

// dfMergeCell folds one worker-local cell into the global shard map.
// Chains keep first-seen order across workers, which — with contiguous
// document ranges merged in worker order — is first-occurrence document
// order, independent of the worker count.
func dfMergeCell(m map[uint64]dfCell, key uint64, docs [][]int, src dfCell) {
	dst, ok := m[key]
	if !ok {
		// Copy the chain so later merges never alias the source slice.
		if len(src.more) > 0 {
			src.more = append([]dfRef(nil), src.more...)
		}
		m[key] = src
		return
	}
	dst = dfMergeRef(dst, docs, src.dfRef)
	for _, r := range src.more {
		dst = dfMergeRef(dst, docs, r)
	}
	m[key] = dst
}

// dfMergeRef adds one source cell's count into the matching chain entry
// of dst, appending a new entry for a previously unseen collision.
func dfMergeRef(dst dfCell, docs [][]int, src dfRef) dfCell {
	if sameSeq(docs, dst.doc, dst.pos, dst.n, src.doc, src.pos, src.n) {
		dst.df += src.df
		return dst
	}
	for i := range dst.more {
		r := &dst.more[i]
		if sameSeq(docs, r.doc, r.pos, r.n, src.doc, src.pos, src.n) {
			r.df += src.df
			return dst
		}
	}
	dst.more = append(dst.more, src)
	return dst
}

// lookup resolves the document frequency and collision-chain index of
// the phrase spelled at docs[doc][pos:pos+n].
func (c *dfCell) lookup(docs [][]int, doc, pos, n int32) (df int32, alt uint16) {
	if sameSeq(docs, c.doc, c.pos, c.n, doc, pos, n) {
		return c.df, 0
	}
	for i := range c.more {
		r := &c.more[i]
		if sameSeq(docs, r.doc, r.pos, r.n, doc, pos, n) {
			return r.df, uint16(i + 1)
		}
	}
	return 0, 0
}
