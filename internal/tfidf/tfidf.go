// Package tfidf implements the phrase-scoring half of InfoShield-Coarse:
// n-gram (1..MaxN) tf-idf over a tokenized corpus and extraction of each
// document's top-scoring phrases. The paper keeps phrases up to 5-grams
// and the top ~10% of each document's phrases, making the count a function
// of document size so results are not dominated by document length.
package tfidf

import (
	"math"
	"sort"
	"strings"
)

// Default parameter values. MaxN and TopFraction come from the paper;
// RelativeFloor is this implementation's selection-quality guard (see the
// Extractor field docs).
const (
	DefaultMaxN          = 5
	DefaultTopFraction   = 0.10
	DefaultRelativeFloor = 0.4
)

// sep joins n-gram tokens into a single map key. US (unit separator)
// cannot appear in tokens, which never contain control characters after
// tokenization of ordinary text; even if it did, a collision only merges
// two phrases, never corrupts state.
const sep = "\x1f"

// Key converts an n-gram token slice into its canonical phrase key.
func Key(tokens []string) string { return strings.Join(tokens, sep) }

// KeyTokens splits a phrase key back into tokens.
func KeyTokens(key string) []string { return strings.Split(key, sep) }

// Extractor computes per-document top phrases by tf-idf.
// The zero value uses the paper's defaults.
type Extractor struct {
	// MaxN is the longest n-gram considered (paper: 5).
	MaxN int
	// TopFraction is the fraction of a document's distinct phrases kept
	// (paper: top 10%). At least one phrase is always kept for non-empty
	// documents.
	TopFraction float64
	// RelativeFloor drops phrases whose idf falls below this fraction of
	// the document's best phrase idf (default 0.4 — equivalently, a
	// document-frequency cap near N^0.6 when the document has unique
	// phrases). "Top phrases" means phrases comparably rare to the
	// document's rarest, not a quota filled with whatever ranks next:
	// without the floor, high-entropy documents spend leftover budget on
	// ubiquitous fillers (single CJK particles, common unigrams) whose
	// hub-like document frequency wires unrelated documents into one
	// giant component. The floor is on idf, not tf·idf, so a repeated
	// common filler cannot buy its way back in — while a large legitimate
	// near-duplicate cluster (df = cluster size, still sublinear in N)
	// stays selectable.
	RelativeFloor float64
}

func (e *Extractor) maxN() int {
	if e.MaxN <= 0 {
		return DefaultMaxN
	}
	return e.MaxN
}

func (e *Extractor) topFraction() float64 {
	if e.TopFraction <= 0 {
		return DefaultTopFraction
	}
	return e.TopFraction
}

func (e *Extractor) relativeFloor() float64 {
	if e.RelativeFloor <= 0 {
		return DefaultRelativeFloor
	}
	return e.RelativeFloor
}

// phraseInfo records a phrase's term frequency and first occurrence.
type phraseInfo struct {
	tf  int
	pos int // start of the first occurrence
	n   int // phrase length in tokens
}

// phraseSet returns the distinct phrase keys of one tokenized document,
// with term frequencies and first-occurrence positions.
func (e *Extractor) phraseSet(tokens []string) map[string]phraseInfo {
	maxN := e.maxN()
	set := make(map[string]phraseInfo)
	for n := 1; n <= maxN; n++ {
		for i := 0; i+n <= len(tokens); i++ {
			k := Key(tokens[i : i+n])
			info, seen := set[k]
			if !seen {
				info = phraseInfo{pos: i, n: n}
			}
			info.tf++
			set[k] = info
		}
	}
	return set
}

// TopPhrases returns, for each tokenized document, its highest-tf-idf
// phrase keys. Ties break lexicographically so output is deterministic.
//
// Selection dynamics matter more than any single score here, and two
// details make the bipartite graph behave the way the paper describes:
//
//   - df = 1 phrases stay eligible even though they can never contribute
//     an edge. They are the budget sink that keeps diverse documents
//     isolated: a genuine tweet full of rare words spends its whole top-k
//     on its own unique n-grams, so medium-frequency phrases ("i love",
//     "the coffee") are never selected and never wire unrelated documents
//     together. Near-duplicates, by contrast, share long constant chunks
//     whose phrases have df = cluster size — rare corpus-wide, so they
//     win the budget on every member and become edges.
//   - zero-score phrases (df = N) are excluded: selecting ubiquitous
//     phrases as a last resort would connect the whole corpus.
func (e *Extractor) TopPhrases(docs [][]string) [][]string {
	n := len(docs)
	// Pass 1: document frequencies.
	df := make(map[string]int, n*4)
	sets := make([]map[string]phraseInfo, n)
	for i, toks := range docs {
		set := e.phraseSet(toks)
		sets[i] = set
		for p := range set {
			df[p]++
		}
	}
	// Pass 2: score and select.
	out := make([][]string, n)
	frac := e.topFraction()
	type scored struct {
		phrase string
		info   phraseInfo
		idf    float64
		score  float64
	}
	for i, set := range sets {
		if len(set) == 0 {
			continue
		}
		cand := make([]scored, 0, len(set))
		maxIdf := 0.0
		for p, info := range set {
			idf := math.Log(float64(n) / float64(df[p]))
			score := float64(info.tf) * idf
			if score <= 0 {
				continue
			}
			if idf > maxIdf {
				maxIdf = idf
			}
			cand = append(cand, scored{p, info, idf, score})
		}
		if len(cand) == 0 {
			continue
		}
		sort.Slice(cand, func(a, b int) bool {
			if cand[a].score != cand[b].score {
				return cand[a].score > cand[b].score
			}
			return cand[a].phrase < cand[b].phrase
		})
		// The budget is a fraction of the document's total phrase count
		// (a function of document size, per the paper).
		k := int(math.Ceil(frac * float64(len(set))))
		if k < 1 {
			k = 1
		}
		// Positional diversity: a phrase is only selected if every token
		// of its first occurrence is still uncovered. Without this, the
		// O(MaxN²) overlapping n-grams around a single rare token exhaust
		// the budget and the document never exposes the phrases it shares
		// with its near-duplicates.
		covered := make([]bool, len(docs[i]))
		floor := maxIdf * e.relativeFloor()
		var top []string
		for _, c := range cand {
			if len(top) >= k {
				break
			}
			if c.idf < floor {
				continue
			}
			fresh := true
			for p := c.info.pos; p < c.info.pos+c.info.n; p++ {
				if covered[p] {
					fresh = false
					break
				}
			}
			if !fresh {
				continue
			}
			for p := c.info.pos; p < c.info.pos+c.info.n; p++ {
				covered[p] = true
			}
			top = append(top, c.phrase)
		}
		out[i] = top
	}
	return out
}

// Score computes the tf-idf of one phrase given its term frequency,
// document frequency, and corpus size — exposed for tests and tooling.
func Score(tf, df, numDocs int) float64 {
	if df <= 0 || numDocs <= 0 {
		return 0
	}
	return float64(tf) * math.Log(float64(numDocs)/float64(df))
}
