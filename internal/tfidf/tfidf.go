// Package tfidf implements the phrase-scoring half of InfoShield-Coarse:
// n-gram (1..MaxN) tf-idf over a tokenized corpus and extraction of each
// document's top-scoring phrases. The paper keeps phrases up to 5-grams
// and the top ~10% of each document's phrases, making the count a function
// of document size so results are not dominated by document length.
//
// The extractor is parallel and allocation-lean: documents are fanned out
// over a worker pool in contiguous ranges, phrases are keyed by rolling
// 64-bit hashes over token ids instead of joined strings (see phrase.go),
// and document frequencies are counted into worker-local key-range shards
// merged without any global lock. Output is deterministic and identical
// for any worker count.
package tfidf

import (
	"math"
	"sort"
	"strings"
	"time"

	"infoshield/internal/par"
	"infoshield/internal/tokenize"
)

// Default parameter values. MaxN and TopFraction come from the paper;
// RelativeFloor is this implementation's selection-quality guard (see the
// Extractor field docs).
const (
	DefaultMaxN          = 5
	DefaultTopFraction   = 0.10
	DefaultRelativeFloor = 0.4
)

// sep joins n-gram tokens into a single phrase-key string. US (unit
// separator) cannot appear in tokens, which never contain control
// characters after tokenization of ordinary text; even if it did, a
// collision only merges two phrases, never corrupts state.
const sep = "\x1f"

// Key converts an n-gram token slice into its canonical phrase key.
func Key(tokens []string) string { return strings.Join(tokens, sep) }

// KeyTokens splits a phrase key back into tokens.
func KeyTokens(key string) []string { return strings.Split(key, sep) }

// Extractor computes per-document top phrases by tf-idf.
// The zero value uses the paper's defaults.
type Extractor struct {
	// MaxN is the longest n-gram considered (paper: 5).
	MaxN int
	// TopFraction is the fraction of a document's distinct phrases kept
	// (paper: top 10%). At least one phrase is always kept for non-empty
	// documents.
	TopFraction float64
	// RelativeFloor drops phrases whose idf falls below this fraction of
	// the document's best phrase idf (default 0.4 — equivalently, a
	// document-frequency cap near N^0.6 when the document has unique
	// phrases). "Top phrases" means phrases comparably rare to the
	// document's rarest, not a quota filled with whatever ranks next:
	// without the floor, high-entropy documents spend leftover budget on
	// ubiquitous fillers (single CJK particles, common unigrams) whose
	// hub-like document frequency wires unrelated documents into one
	// giant component. The floor is on idf, not tf·idf, so a repeated
	// common filler cannot buy its way back in — while a large legitimate
	// near-duplicate cluster (df = cluster size, still sublinear in N)
	// stays selectable.
	RelativeFloor float64
	// Workers bounds the extraction worker pool (<= 0: GOMAXPROCS). Any
	// value produces identical output.
	Workers int
}

func (e *Extractor) maxN() int {
	if e.MaxN <= 0 {
		return DefaultMaxN
	}
	return e.MaxN
}

func (e *Extractor) topFraction() float64 {
	if e.TopFraction <= 0 {
		return DefaultTopFraction
	}
	return e.TopFraction
}

func (e *Extractor) relativeFloor() float64 {
	if e.RelativeFloor <= 0 {
		return DefaultRelativeFloor
	}
	return e.RelativeFloor
}

// docSet is the distinct-phrase set of one document, keyed by mixed
// rolling hash. overflow chains within-document hash collisions and is
// nil in essentially every document ever processed.
type docSet struct {
	set      map[uint64]phraseInfo
	overflow map[uint64][]phraseInfo
	distinct int32
}

// sameLocal reports whether two n-grams of one document spell the same
// token sequence.
func sameLocal(ids []int, p1, n1, p2, n2 int32) bool {
	if n1 != n2 {
		return false
	}
	a := ids[p1 : p1+n1]
	b := ids[p2 : p2+n2]
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// phraseSet builds the distinct phrase set of one tokenized document with
// term frequencies and first-occurrence positions. The inner loop extends
// a rolling hash one token at a time, so the O(L·MaxN) n-gram occurrences
// cost no allocations beyond map growth.
func (e *Extractor) phraseSet(ids []int) docSet {
	maxN := e.maxN()
	ds := docSet{set: make(map[uint64]phraseInfo, len(ids)*maxN)}
	for i := 0; i < len(ids); i++ {
		var h uint64
		for n := 1; n <= maxN && i+n <= len(ids); n++ {
			h = extendHash(h, ids[i+n-1])
			k := mix64(h)
			info, ok := ds.set[k]
			if !ok {
				ds.set[k] = phraseInfo{tf: 1, pos: int32(i), n: int32(n)}
				ds.distinct++
				continue
			}
			if sameLocal(ids, info.pos, info.n, int32(i), int32(n)) {
				info.tf++
				ds.set[k] = info
				continue
			}
			// Within-document hash collision: chain in the overflow map.
			chain := ds.overflow[k]
			matched := false
			for ci := range chain {
				if sameLocal(ids, chain[ci].pos, chain[ci].n, int32(i), int32(n)) {
					chain[ci].tf++
					matched = true
					break
				}
			}
			if !matched {
				if ds.overflow == nil {
					ds.overflow = make(map[uint64][]phraseInfo)
				}
				ds.overflow[k] = append(chain, phraseInfo{tf: 1, pos: int32(i), n: int32(n)})
				ds.distinct++
			}
		}
	}
	return ds
}

// Selection is the output of TopPhraseIDs: each document's selected
// phrases plus the corpus-wide phrase table and per-stage wall times.
type Selection struct {
	// Top[i] holds document i's selected phrases, best first.
	Top [][]PhraseID
	// Extract and Score time the two passes (phrase sets + DF counting,
	// then scoring + selection).
	Extract, Score time.Duration

	docs   [][]int
	shards [dfShards]map[uint64]dfCell
}

// PhraseTokens returns the token-id sequence of a phrase selected by this
// extraction, or nil for an unknown id.
func (s *Selection) PhraseTokens(id PhraseID) []int {
	c, ok := s.shards[dfShard(id.Hash)][id.Hash]
	if !ok {
		return nil
	}
	r := c.dfRef
	if id.Alt > 0 {
		i := int(id.Alt) - 1
		if i >= len(c.more) {
			return nil
		}
		r = c.more[i]
	}
	return s.docs[r.doc][r.pos : r.pos+r.n]
}

// DF returns the document frequency of a phrase, or 0 for an unknown id.
func (s *Selection) DF(id PhraseID) int {
	c, ok := s.shards[dfShard(id.Hash)][id.Hash]
	if !ok {
		return 0
	}
	if id.Alt == 0 {
		return int(c.df)
	}
	i := int(id.Alt) - 1
	if i >= len(c.more) {
		return 0
	}
	return int(c.more[i].df)
}

// scored is one candidate phrase of one document during selection.
type scored struct {
	id    PhraseID
	info  phraseInfo
	idf   float64
	score float64
}

// lexLess orders two phrases of one document by the lexicographic order
// of their token strings (token-wise, shorter prefix first), using the
// precomputed per-id ranks. This reproduces the joined-string-key order
// of the old extractor for every token ordinary tokenization can emit
// (tokens containing raw control bytes below U+001F could in principle
// order differently; such bytes never survive tokenization of text).
func lexLess(ids []int, rank []int32, a, b phraseInfo) bool {
	la, lb := int(a.n), int(b.n)
	for i := 0; i < la && i < lb; i++ {
		ra := rank[ids[int(a.pos)+i]]
		rb := rank[ids[int(b.pos)+i]]
		if ra != rb {
			return ra < rb
		}
	}
	return la < lb
}

// lexRank returns each token id's rank in the lexicographic order of the
// vocabulary's words, for allocation-free phrase comparisons.
func lexRank(v *tokenize.Vocab) []int32 {
	ids := make([]int, v.Size())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool { return v.Word(ids[a]) < v.Word(ids[b]) })
	rank := make([]int32, len(ids))
	for r, id := range ids {
		rank[id] = int32(r)
	}
	return rank
}

// TopPhraseIDs returns, for each tokenized document, its highest-tf-idf
// phrases. Ties break lexicographically so output is deterministic, and
// the result is identical for any Workers setting.
//
// Selection dynamics matter more than any single score here, and two
// details make the bipartite graph behave the way the paper describes:
//
//   - df = 1 phrases stay eligible even though they can never contribute
//     an edge. They are the budget sink that keeps diverse documents
//     isolated: a genuine tweet full of rare words spends its whole top-k
//     on its own unique n-grams, so medium-frequency phrases ("i love",
//     "the coffee") are never selected and never wire unrelated documents
//     together. Near-duplicates, by contrast, share long constant chunks
//     whose phrases have df = cluster size — rare corpus-wide, so they
//     win the budget on every member and become edges.
//   - zero-score phrases (df = N) are excluded: selecting ubiquitous
//     phrases as a last resort would connect the whole corpus.
func (e *Extractor) TopPhraseIDs(docs [][]int, vocab *tokenize.Vocab) *Selection {
	n := len(docs)
	sel := &Selection{Top: make([][]PhraseID, n), docs: docs}
	if n == 0 {
		return sel
	}
	workers := par.Workers(e.Workers)

	// Pass 1: per-document phrase sets and sharded document frequencies.
	// Each worker owns a contiguous document range and counts into its own
	// shard maps; no shared state is touched.
	start := time.Now()
	sets := make([]docSet, n)
	locals := make([][]map[uint64]dfCell, workers)
	par.IndexedRanges(n, workers, func(w, lo, hi int) {
		shards := make([]map[uint64]dfCell, dfShards)
		for s := range shards {
			shards[s] = make(map[uint64]dfCell)
		}
		for i := lo; i < hi; i++ {
			ds := e.phraseSet(docs[i])
			sets[i] = ds
			for k, info := range ds.set {
				dfAdd(shards[dfShard(k)], k, docs, int32(i), info.pos, info.n)
			}
			for k, chain := range ds.overflow {
				for _, info := range chain {
					dfAdd(shards[dfShard(k)], k, docs, int32(i), info.pos, info.n)
				}
			}
		}
		locals[w] = shards
	})
	// Merge per key-range shard, workers in document order so collision
	// chains are ordered by first occurrence whatever the worker count.
	par.Each(dfShards, workers, func(s int) {
		size := 0
		for _, shards := range locals {
			if shards != nil {
				size += len(shards[s])
			}
		}
		g := make(map[uint64]dfCell, size)
		for _, shards := range locals {
			if shards == nil {
				continue
			}
			for k, c := range shards[s] {
				dfMergeCell(g, k, docs, c)
			}
		}
		sel.shards[s] = g
	})
	sel.Extract = time.Since(start)

	// Pass 2: score and select, embarrassingly parallel per document.
	start = time.Now()
	rank := lexRank(vocab)
	frac := e.topFraction()
	floorFrac := e.relativeFloor()
	par.Ranges(n, workers, func(lo, hi int) {
		var cand []scored
		var covered []bool
		for i := lo; i < hi; i++ {
			ds := &sets[i]
			if ds.distinct == 0 {
				continue
			}
			cand = cand[:0]
			maxIdf := 0.0
			add := func(k uint64, info phraseInfo) {
				cell := sel.shards[dfShard(k)][k]
				df, alt := cell.lookup(docs, int32(i), info.pos, info.n)
				idf := math.Log(float64(n) / float64(df))
				score := float64(info.tf) * idf
				if score <= 0 {
					return
				}
				if idf > maxIdf {
					maxIdf = idf
				}
				cand = append(cand, scored{PhraseID{k, alt}, info, idf, score})
			}
			for k, info := range ds.set {
				add(k, info)
			}
			for k, chain := range ds.overflow {
				for _, info := range chain {
					add(k, info)
				}
			}
			if len(cand) == 0 {
				continue
			}
			sort.Slice(cand, func(a, b int) bool {
				if cand[a].score != cand[b].score {
					return cand[a].score > cand[b].score
				}
				return lexLess(docs[i], rank, cand[a].info, cand[b].info)
			})
			// The budget is a fraction of the document's total phrase count
			// (a function of document size, per the paper).
			k := int(math.Ceil(frac * float64(ds.distinct)))
			if k < 1 {
				k = 1
			}
			// Positional diversity: a phrase is only selected if every token
			// of its first occurrence is still uncovered. Without this, the
			// O(MaxN²) overlapping n-grams around a single rare token exhaust
			// the budget and the document never exposes the phrases it shares
			// with its near-duplicates.
			if cap(covered) >= len(docs[i]) {
				covered = covered[:len(docs[i])]
				clear(covered)
			} else {
				covered = make([]bool, len(docs[i]))
			}
			floor := maxIdf * floorFrac
			var top []PhraseID
			for _, c := range cand {
				if len(top) >= k {
					break
				}
				if c.idf < floor {
					continue
				}
				fresh := true
				for p := c.info.pos; p < c.info.pos+c.info.n; p++ {
					if covered[p] {
						fresh = false
						break
					}
				}
				if !fresh {
					continue
				}
				for p := c.info.pos; p < c.info.pos+c.info.n; p++ {
					covered[p] = true
				}
				top = append(top, c.id)
			}
			sel.Top[i] = top
		}
	})
	sel.Score = time.Since(start)
	return sel
}

// TopPhrases is the string-keyed compatibility form of TopPhraseIDs: it
// interns the documents through a private vocabulary, runs the hashed
// extraction, and materializes each selected phrase's string key exactly
// once per distinct phrase (never per occurrence).
func (e *Extractor) TopPhrases(docs [][]string) [][]string {
	vocab := tokenize.NewVocab()
	ids := make([][]int, len(docs))
	for i, d := range docs {
		ids[i] = vocab.Encode(d)
	}
	sel := e.TopPhraseIDs(ids, vocab)
	interned := make(map[PhraseID]string)
	out := make([][]string, len(docs))
	for i, ps := range sel.Top {
		if len(ps) == 0 {
			continue
		}
		row := make([]string, len(ps))
		for j, p := range ps {
			s, ok := interned[p]
			if !ok {
				s = Key(vocab.Decode(sel.PhraseTokens(p)))
				interned[p] = s
			}
			row[j] = s
		}
		out[i] = row
	}
	return out
}

// Score computes the tf-idf of one phrase given its term frequency,
// document frequency, and corpus size — exposed for tests and tooling.
func Score(tf, df, numDocs int) float64 {
	if df <= 0 || numDocs <= 0 {
		return 0
	}
	return float64(tf) * math.Log(float64(numDocs)/float64(df))
}
