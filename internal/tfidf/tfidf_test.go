package tfidf

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"infoshield/internal/tokenize"
)

func tok(s string) []string { return strings.Fields(s) }

func TestKeyRoundTrip(t *testing.T) {
	toks := []string{"cheap", "viagra", "now"}
	if got := KeyTokens(Key(toks)); !reflect.DeepEqual(got, toks) {
		t.Errorf("round trip = %v", got)
	}
}

// hashOf returns the phrase hash of a word sequence under v's ids.
func hashOf(v *tokenize.Vocab, words ...string) uint64 {
	ids := make([]int, len(words))
	for i, w := range words {
		id, ok := v.ID(w)
		if !ok {
			panic("unknown word " + w)
		}
		ids[i] = id
	}
	return hashIDs(ids)
}

func TestPhraseSetCounts(t *testing.T) {
	e := &Extractor{MaxN: 2}
	v := tokenize.NewVocab()
	ids := v.Encode(tok("a b a b"))
	ds := e.phraseSet(ids)
	// unigrams: a(2) b(2); bigrams: "a b"(2) "b a"(1)
	if got := ds.set[hashOf(v, "a")]; got.tf != 2 || got.pos != 0 || got.n != 1 {
		t.Errorf("info(a) = %+v", got)
	}
	if got := ds.set[hashOf(v, "a", "b")]; got.tf != 2 || got.pos != 0 || got.n != 2 {
		t.Errorf("info(a b) = %+v", got)
	}
	if got := ds.set[hashOf(v, "b", "a")]; got.tf != 1 || got.pos != 1 {
		t.Errorf("info(b a) = %+v", got)
	}
	if ds.distinct != 4 {
		t.Errorf("distinct phrases = %d, want 4", ds.distinct)
	}
	if ds.overflow != nil {
		t.Errorf("unexpected collision overflow: %v", ds.overflow)
	}
}

func TestPhraseSetShortDoc(t *testing.T) {
	e := &Extractor{MaxN: 5}
	v := tokenize.NewVocab()
	ds := e.phraseSet(v.Encode(tok("only two")))
	// 2 unigrams + 1 bigram; no 3..5-grams possible.
	if ds.distinct != 3 {
		t.Errorf("distinct phrases = %d, want 3", ds.distinct)
	}
}

// TestRollingHashMatchesReference pins the rolling computation to the
// whole-sequence reference on random id windows.
func TestRollingHashMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ids := make([]int, 40)
	for i := range ids {
		ids[i] = rng.Intn(1000)
	}
	for i := 0; i < len(ids); i++ {
		var h uint64
		for n := 1; n <= 5 && i+n <= len(ids); n++ {
			h = extendHash(h, ids[i+n-1])
			if got, want := mix64(h), hashIDs(ids[i:i+n]); got != want {
				t.Fatalf("rolling hash at (%d,%d) = %x, want %x", i, n, got, want)
			}
		}
	}
}

// TestDFChainHandlesForcedCollisions drives the collision-chain paths of
// the DF table directly: genuine 64-bit collisions are too rare to
// construct, so two different phrases are counted under one fabricated
// key and must keep exact, separate counts.
func TestDFChainHandlesForcedCollisions(t *testing.T) {
	docs := [][]int{{1, 2, 3}, {4, 5, 6}, {1, 2, 9}}
	const key = uint64(0xdeadbeef)
	local1 := map[uint64]dfCell{}
	dfAdd(local1, key, docs, 0, 0, 2) // phrase [1 2] in doc 0
	dfAdd(local1, key, docs, 1, 0, 2) // phrase [4 5] in doc 1: collides
	local2 := map[uint64]dfCell{}
	dfAdd(local2, key, docs, 2, 0, 2) // phrase [1 2] again, other worker

	global := map[uint64]dfCell{}
	dfMergeCell(global, key, docs, local1[key])
	dfMergeCell(global, key, docs, local2[key])

	c := global[key]
	if df, alt := c.lookup(docs, 0, 0, 2); df != 2 || alt != 0 {
		t.Errorf("phrase [1 2]: df=%d alt=%d, want 2,0", df, alt)
	}
	if df, alt := c.lookup(docs, 1, 0, 2); df != 1 || alt != 1 {
		t.Errorf("phrase [4 5]: df=%d alt=%d, want 1,1", df, alt)
	}
}

func TestScore(t *testing.T) {
	if got := Score(2, 1, 10); math.Abs(got-2*math.Log(10)) > 1e-12 {
		t.Errorf("Score = %v", got)
	}
	// A phrase in every document scores zero.
	if got := Score(5, 10, 10); got != 0 {
		t.Errorf("ubiquitous phrase score = %v, want 0", got)
	}
	if got := Score(1, 0, 10); got != 0 {
		t.Errorf("df=0 score = %v", got)
	}
}

func TestTopPhrasesPrefersRarePhrases(t *testing.T) {
	// Every doc shares "the common prefix"; docs 0,1 share a rare phrase.
	docs := [][]string{
		tok("the common prefix cheap viagra call now"),
		tok("the common prefix cheap viagra call today"),
		tok("the common prefix totally unrelated words here"),
		tok("the common prefix more different content again"),
		tok("the common prefix nothing shared at all"),
	}
	e := &Extractor{MaxN: 3, TopFraction: 0.10}
	top := e.TopPhrases(docs)
	// Docs 0 and 1 share the rare "cheap viagra call" phrases: selected.
	for _, i := range []int{0, 1} {
		if len(top[i]) == 0 {
			t.Fatalf("doc %d got no top phrases", i)
		}
	}
	for i := range docs {
		for _, p := range top[i] {
			// "the common prefix" appears in all docs: idf=0, never top.
			if p == Key([]string{"the", "common", "prefix"}) {
				t.Errorf("doc %d selected a zero-idf phrase", i)
			}
		}
	}
	// Docs 2-4 spend their budget on their own df=1 phrases (harmless:
	// they can never become edges), never on the ubiquitous prefix.
	for _, i := range []int{2, 3, 4} {
		if len(top[i]) == 0 {
			t.Errorf("doc %d selected nothing", i)
		}
	}
}

func TestTopPhrasesEmptyDoc(t *testing.T) {
	e := &Extractor{}
	top := e.TopPhrases([][]string{nil, tok("one doc"), tok("one doc")})
	if top[0] != nil {
		t.Errorf("empty doc top = %v", top[0])
	}
	// The two duplicates share every phrase: both select something.
	if len(top[1]) == 0 || len(top[2]) == 0 {
		t.Errorf("duplicate docs should keep phrases: %v", top)
	}
}

func TestTopPhrasesSingletonDocsShareNothing(t *testing.T) {
	// Fully distinct documents select only their own df=1 phrases, so
	// their selections are disjoint — no edges can form.
	e := &Extractor{}
	top := e.TopPhrases([][]string{
		tok("completely unique text one"),
		tok("entirely distinct material two"),
	})
	seen := make(map[string]bool)
	for _, phrases := range top {
		for _, p := range phrases {
			if seen[p] {
				t.Errorf("distinct docs share selected phrase %q", p)
			}
			seen[p] = true
		}
	}
}

func TestTopPhrasesDeterministic(t *testing.T) {
	docs := [][]string{tok("x y z"), tok("x y w"), tok("p q r")}
	e := &Extractor{}
	a := e.TopPhrases(docs)
	b := e.TopPhrases(docs)
	if !reflect.DeepEqual(a, b) {
		t.Error("TopPhrases not deterministic")
	}
}

func TestTopFractionControlsCount(t *testing.T) {
	doc := strings.Fields("a b c d e f g h i j k l m n o p q r s t")
	// Exact duplicate pair (every phrase df=2, equal scores) plus an
	// unrelated third doc so idf > 0.
	docs := [][]string{doc, doc, tok("unrelated other text entirely")}
	small := (&Extractor{MaxN: 2, TopFraction: 0.05}).TopPhrases(docs)
	large := (&Extractor{MaxN: 2, TopFraction: 0.5}).TopPhrases(docs)
	if len(small[0]) == 0 || len(small[0]) >= len(large[0]) {
		t.Errorf("top-fraction not respected: %d vs %d", len(small[0]), len(large[0]))
	}
	// Budget ceil(0.5 · 39) = 20; all scores tie, lexicographic order
	// selects the 20 unigrams (each bigram overlaps a selected unigram).
	if len(large[0]) != 20 {
		t.Errorf("large fraction count = %d, want 20", len(large[0]))
	}
}

// Property: near-duplicate documents share at least one top phrase —
// the contract InfoShield-Coarse depends on.
func TestNearDuplicatesShareTopPhrase(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := []string{"this", "is", "a", "great", "soap", "and", "the", "price", "is", "great"}
		// Two near-duplicates: one word substituted.
		d1 := append([]string(nil), base...)
		d2 := append([]string(nil), base...)
		d2[4] = "chair"
		// Plus background noise docs of random words.
		vocabulary := []string{"red", "blue", "fast", "slow", "cat", "dog", "run", "eat", "sky", "sea"}
		docs := [][]string{d1, d2}
		for i := 0; i < 20; i++ {
			doc := make([]string, 8)
			for j := range doc {
				doc[j] = vocabulary[rng.Intn(len(vocabulary))]
			}
			docs = append(docs, doc)
		}
		e := &Extractor{}
		top := e.TopPhrases(docs)
		set := make(map[string]bool)
		for _, p := range top[0] {
			set[p] = true
		}
		for _, p := range top[1] {
			if set[p] {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: every selected phrase actually occurs in its document.
func TestTopPhrasesOccurInDoc(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vocabulary := []string{"a", "b", "c", "d", "e"}
		docs := make([][]string, 6)
		for i := range docs {
			doc := make([]string, rng.Intn(10)+1)
			for j := range doc {
				doc[j] = vocabulary[rng.Intn(len(vocabulary))]
			}
			docs[i] = doc
		}
		e := &Extractor{MaxN: 3}
		for i, phrases := range e.TopPhrases(docs) {
			joined := " " + strings.Join(docs[i], " ") + " "
			for _, p := range phrases {
				needle := " " + strings.Join(KeyTokens(p), " ") + " "
				if !strings.Contains(joined, needle) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// referenceTopPhrases is the extractor this package shipped before the
// hashed-key rewrite: string map keys built by strings.Join for every
// n-gram occurrence, a single global DF map, and serial selection. It is
// the behavioral reference the rewrite must match key-for-key.
func referenceTopPhrases(e *Extractor, docs [][]string) [][]string {
	type phraseInfoRef struct{ tf, pos, n int }
	maxN := e.maxN()
	phraseSet := func(tokens []string) map[string]phraseInfoRef {
		set := make(map[string]phraseInfoRef)
		for n := 1; n <= maxN; n++ {
			for i := 0; i+n <= len(tokens); i++ {
				k := Key(tokens[i : i+n])
				info, seen := set[k]
				if !seen {
					info = phraseInfoRef{pos: i, n: n}
				}
				info.tf++
				set[k] = info
			}
		}
		return set
	}
	n := len(docs)
	df := make(map[string]int, n*4)
	sets := make([]map[string]phraseInfoRef, n)
	for i, toks := range docs {
		set := phraseSet(toks)
		sets[i] = set
		for p := range set {
			df[p]++
		}
	}
	out := make([][]string, n)
	frac := e.topFraction()
	type scoredRef struct {
		phrase string
		info   phraseInfoRef
		idf    float64
		score  float64
	}
	for i, set := range sets {
		if len(set) == 0 {
			continue
		}
		cand := make([]scoredRef, 0, len(set))
		maxIdf := 0.0
		for p, info := range set {
			idf := math.Log(float64(n) / float64(df[p]))
			score := float64(info.tf) * idf
			if score <= 0 {
				continue
			}
			if idf > maxIdf {
				maxIdf = idf
			}
			cand = append(cand, scoredRef{p, info, idf, score})
		}
		if len(cand) == 0 {
			continue
		}
		sort.Slice(cand, func(a, b int) bool {
			if cand[a].score != cand[b].score {
				return cand[a].score > cand[b].score
			}
			return cand[a].phrase < cand[b].phrase
		})
		k := int(math.Ceil(frac * float64(len(set))))
		if k < 1 {
			k = 1
		}
		covered := make([]bool, len(docs[i]))
		floor := maxIdf * e.relativeFloor()
		var top []string
		for _, c := range cand {
			if len(top) >= k {
				break
			}
			if c.idf < floor {
				continue
			}
			fresh := true
			for p := c.info.pos; p < c.info.pos+c.info.n; p++ {
				if covered[p] {
					fresh = false
					break
				}
			}
			if !fresh {
				continue
			}
			for p := c.info.pos; p < c.info.pos+c.info.n; p++ {
				covered[p] = true
			}
			top = append(top, c.phrase)
		}
		out[i] = top
	}
	return out
}

// fixtureCorpus builds a deterministic mixed corpus: spam campaigns of
// near-duplicates (shared constant chunks, slot substitutions), repeated
// tokens, and a background of noise documents.
func fixtureCorpus(seed int64, campaigns, perCampaign, noise int) [][]string {
	rng := rand.New(rand.NewSource(seed))
	vocabulary := strings.Fields(
		"alpha bravo charlie delta echo foxtrot golf hotel india juliet " +
			"kilo lima mike november oscar papa quebec romeo sierra tango")
	var docs [][]string
	for c := 0; c < campaigns; c++ {
		base := make([]string, 12)
		for i := range base {
			base[i] = vocabulary[rng.Intn(len(vocabulary))]
		}
		for k := 0; k < perCampaign; k++ {
			dup := append([]string(nil), base...)
			for s := 0; s < rng.Intn(3); s++ {
				dup[rng.Intn(len(dup))] = vocabulary[rng.Intn(len(vocabulary))]
			}
			docs = append(docs, dup)
		}
	}
	for k := 0; k < noise; k++ {
		doc := make([]string, rng.Intn(12)+2)
		for i := range doc {
			doc[i] = vocabulary[rng.Intn(len(vocabulary))] + string(rune('0'+rng.Intn(10)))
		}
		docs = append(docs, doc)
	}
	return docs
}

// TestHashedSelectionMatchesStringReference is the rewrite's equivalence
// gate: on fixture corpora, the hashed-key parallel extractor must select
// exactly the phrases the old string-key serial extractor selected, in
// the same order, for several parameterizations and worker counts.
func TestHashedSelectionMatchesStringReference(t *testing.T) {
	corpora := map[string][][]string{
		"mixed":      fixtureCorpus(42, 3, 5, 30),
		"dupHeavy":   fixtureCorpus(7, 6, 8, 4),
		"noiseOnly":  fixtureCorpus(13, 0, 0, 25),
		"tinyAndDup": {tok("a b a b a"), tok("a b a b a"), nil, tok("z")},
	}
	extractors := []Extractor{
		{},
		{MaxN: 2, TopFraction: 0.3},
		{MaxN: 5, TopFraction: 0.05, RelativeFloor: 0.8},
	}
	for name, docs := range corpora {
		for _, base := range extractors {
			want := referenceTopPhrases(&base, docs)
			for _, workers := range []int{1, 3, 8} {
				e := base
				e.Workers = workers
				if got := e.TopPhrases(docs); !reflect.DeepEqual(got, want) {
					t.Errorf("%s (maxN=%d frac=%v workers=%d): selection diverged from string reference\n got %v\nwant %v",
						name, base.MaxN, base.TopFraction, workers, got, want)
				}
			}
		}
	}
}

// TestTopPhraseIDsWorkerInvariance: identical PhraseID output for any
// worker count, including df values resolved through the table.
func TestTopPhraseIDsWorkerInvariance(t *testing.T) {
	docs := fixtureCorpus(99, 4, 6, 40)
	vocab := tokenize.NewVocab()
	ids := make([][]int, len(docs))
	for i, d := range docs {
		ids[i] = vocab.Encode(d)
	}
	ref := (&Extractor{Workers: 1}).TopPhraseIDs(ids, vocab)
	for _, workers := range []int{2, 5, 16} {
		got := (&Extractor{Workers: workers}).TopPhraseIDs(ids, vocab)
		if !reflect.DeepEqual(got.Top, ref.Top) {
			t.Fatalf("workers=%d: selection differs from workers=1", workers)
		}
		for i := range ref.Top {
			for _, p := range ref.Top[i] {
				if got.DF(p) != ref.DF(p) {
					t.Fatalf("workers=%d: df(%v) = %d, want %d", workers, p, got.DF(p), ref.DF(p))
				}
				if !reflect.DeepEqual(got.PhraseTokens(p), ref.PhraseTokens(p)) {
					t.Fatalf("workers=%d: tokens(%v) differ", workers, p)
				}
			}
		}
	}
}
