package tfidf

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func tok(s string) []string { return strings.Fields(s) }

func TestKeyRoundTrip(t *testing.T) {
	toks := []string{"cheap", "viagra", "now"}
	if got := KeyTokens(Key(toks)); !reflect.DeepEqual(got, toks) {
		t.Errorf("round trip = %v", got)
	}
}

func TestPhraseSetCounts(t *testing.T) {
	e := &Extractor{MaxN: 2}
	set := e.phraseSet(tok("a b a b"))
	// unigrams: a(2) b(2); bigrams: "a b"(2) "b a"(1)
	if got := set[Key([]string{"a"})]; got.tf != 2 || got.pos != 0 || got.n != 1 {
		t.Errorf("info(a) = %+v", got)
	}
	if got := set[Key([]string{"a", "b"})]; got.tf != 2 || got.pos != 0 || got.n != 2 {
		t.Errorf("info(a b) = %+v", got)
	}
	if got := set[Key([]string{"b", "a"})]; got.tf != 1 || got.pos != 1 {
		t.Errorf("info(b a) = %+v", got)
	}
	if len(set) != 4 {
		t.Errorf("distinct phrases = %d, want 4", len(set))
	}
}

func TestPhraseSetShortDoc(t *testing.T) {
	e := &Extractor{MaxN: 5}
	set := e.phraseSet(tok("only two"))
	// 2 unigrams + 1 bigram; no 3..5-grams possible.
	if len(set) != 3 {
		t.Errorf("distinct phrases = %d, want 3", len(set))
	}
}

func TestScore(t *testing.T) {
	if got := Score(2, 1, 10); math.Abs(got-2*math.Log(10)) > 1e-12 {
		t.Errorf("Score = %v", got)
	}
	// A phrase in every document scores zero.
	if got := Score(5, 10, 10); got != 0 {
		t.Errorf("ubiquitous phrase score = %v, want 0", got)
	}
	if got := Score(1, 0, 10); got != 0 {
		t.Errorf("df=0 score = %v", got)
	}
}

func TestTopPhrasesPrefersRarePhrases(t *testing.T) {
	// Every doc shares "the common prefix"; docs 0,1 share a rare phrase.
	docs := [][]string{
		tok("the common prefix cheap viagra call now"),
		tok("the common prefix cheap viagra call today"),
		tok("the common prefix totally unrelated words here"),
		tok("the common prefix more different content again"),
		tok("the common prefix nothing shared at all"),
	}
	e := &Extractor{MaxN: 3, TopFraction: 0.10}
	top := e.TopPhrases(docs)
	// Docs 0 and 1 share the rare "cheap viagra call" phrases: selected.
	for _, i := range []int{0, 1} {
		if len(top[i]) == 0 {
			t.Fatalf("doc %d got no top phrases", i)
		}
	}
	for i := range docs {
		for _, p := range top[i] {
			// "the common prefix" appears in all docs: idf=0, never top.
			if p == Key([]string{"the", "common", "prefix"}) {
				t.Errorf("doc %d selected a zero-idf phrase", i)
			}
		}
	}
	// Docs 2-4 spend their budget on their own df=1 phrases (harmless:
	// they can never become edges), never on the ubiquitous prefix.
	for _, i := range []int{2, 3, 4} {
		if len(top[i]) == 0 {
			t.Errorf("doc %d selected nothing", i)
		}
	}
}

func TestTopPhrasesEmptyDoc(t *testing.T) {
	e := &Extractor{}
	top := e.TopPhrases([][]string{nil, tok("one doc"), tok("one doc")})
	if top[0] != nil {
		t.Errorf("empty doc top = %v", top[0])
	}
	// The two duplicates share every phrase: both select something.
	if len(top[1]) == 0 || len(top[2]) == 0 {
		t.Errorf("duplicate docs should keep phrases: %v", top)
	}
}

func TestTopPhrasesSingletonDocsShareNothing(t *testing.T) {
	// Fully distinct documents select only their own df=1 phrases, so
	// their selections are disjoint — no edges can form.
	e := &Extractor{}
	top := e.TopPhrases([][]string{
		tok("completely unique text one"),
		tok("entirely distinct material two"),
	})
	seen := make(map[string]bool)
	for _, phrases := range top {
		for _, p := range phrases {
			if seen[p] {
				t.Errorf("distinct docs share selected phrase %q", p)
			}
			seen[p] = true
		}
	}
}

func TestTopPhrasesDeterministic(t *testing.T) {
	docs := [][]string{tok("x y z"), tok("x y w"), tok("p q r")}
	e := &Extractor{}
	a := e.TopPhrases(docs)
	b := e.TopPhrases(docs)
	if !reflect.DeepEqual(a, b) {
		t.Error("TopPhrases not deterministic")
	}
}

func TestTopFractionControlsCount(t *testing.T) {
	doc := strings.Fields("a b c d e f g h i j k l m n o p q r s t")
	// Exact duplicate pair (every phrase df=2, equal scores) plus an
	// unrelated third doc so idf > 0.
	docs := [][]string{doc, doc, tok("unrelated other text entirely")}
	small := (&Extractor{MaxN: 2, TopFraction: 0.05}).TopPhrases(docs)
	large := (&Extractor{MaxN: 2, TopFraction: 0.5}).TopPhrases(docs)
	if len(small[0]) == 0 || len(small[0]) >= len(large[0]) {
		t.Errorf("top-fraction not respected: %d vs %d", len(small[0]), len(large[0]))
	}
	// Budget ceil(0.5 · 39) = 20; all scores tie, lexicographic order
	// selects the 20 unigrams (each bigram overlaps a selected unigram).
	if len(large[0]) != 20 {
		t.Errorf("large fraction count = %d, want 20", len(large[0]))
	}
}

// Property: near-duplicate documents share at least one top phrase —
// the contract InfoShield-Coarse depends on.
func TestNearDuplicatesShareTopPhrase(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := []string{"this", "is", "a", "great", "soap", "and", "the", "price", "is", "great"}
		// Two near-duplicates: one word substituted.
		d1 := append([]string(nil), base...)
		d2 := append([]string(nil), base...)
		d2[4] = "chair"
		// Plus background noise docs of random words.
		vocabulary := []string{"red", "blue", "fast", "slow", "cat", "dog", "run", "eat", "sky", "sea"}
		docs := [][]string{d1, d2}
		for i := 0; i < 20; i++ {
			doc := make([]string, 8)
			for j := range doc {
				doc[j] = vocabulary[rng.Intn(len(vocabulary))]
			}
			docs = append(docs, doc)
		}
		e := &Extractor{}
		top := e.TopPhrases(docs)
		set := make(map[string]bool)
		for _, p := range top[0] {
			set[p] = true
		}
		for _, p := range top[1] {
			if set[p] {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: every selected phrase actually occurs in its document.
func TestTopPhrasesOccurInDoc(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vocabulary := []string{"a", "b", "c", "d", "e"}
		docs := make([][]string, 6)
		for i := range docs {
			doc := make([]string, rng.Intn(10)+1)
			for j := range doc {
				doc[j] = vocabulary[rng.Intn(len(vocabulary))]
			}
			docs[i] = doc
		}
		e := &Extractor{MaxN: 3}
		for i, phrases := range e.TopPhrases(docs) {
			joined := " " + strings.Join(docs[i], " ") + " "
			for _, p := range phrases {
				needle := " " + strings.Join(KeyTokens(p), " ") + " "
				if !strings.Contains(joined, needle) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
