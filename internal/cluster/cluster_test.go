package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates k well-separated gaussian-ish blobs plus uniform noise.
func blobs(rng *rand.Rand, k, perBlob, noise int) (points [][]float64, truth []int) {
	for b := 0; b < k; b++ {
		cx, cy := float64(b*20), float64((b%2)*20)
		for i := 0; i < perBlob; i++ {
			points = append(points, []float64{
				cx + rng.NormFloat64(),
				cy + rng.NormFloat64(),
			})
			truth = append(truth, b)
		}
	}
	for i := 0; i < noise; i++ {
		points = append(points, []float64{
			rng.Float64()*200 - 100,
			rng.Float64()*200 - 100,
		})
		truth = append(truth, -1)
	}
	return points, truth
}

func TestHDBSCANFindsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points, truth := blobs(rng, 3, 30, 0)
	labels := HDBSCAN(points, 5)
	// Every blob should be (almost) pure: points of the same blob share
	// a label, and different blobs differ.
	blobLabel := map[int]int{}
	errors := 0
	for i, l := range labels {
		if l == -1 {
			errors++
			continue
		}
		if want, ok := blobLabel[truth[i]]; ok {
			if l != want {
				errors++
			}
		} else {
			blobLabel[truth[i]] = l
		}
	}
	if errors > 5 {
		t.Errorf("%d of %d points mislabeled; labels=%v", errors, len(points), labels)
	}
	if len(blobLabel) != 3 {
		t.Errorf("found %d clusters, want 3", len(blobLabel))
	}
}

func TestHDBSCANNoiseRejection(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points, truth := blobs(rng, 2, 40, 30)
	labels := HDBSCAN(points, 5)
	noiseCorrect, noiseTotal := 0, 0
	for i, l := range labels {
		if truth[i] == -1 {
			noiseTotal++
			if l == -1 {
				noiseCorrect++
			}
		}
	}
	if noiseTotal == 0 {
		t.Fatal("no noise generated")
	}
	// HDBSCAN legitimately picks up loose noise agglomerates of at least
	// minClusterSize points and labels stragglers that merged into a blob
	// before its birth split; require only that a solid plurality of the
	// uniform noise is rejected, and that the blobs stay pure.
	if float64(noiseCorrect)/float64(noiseTotal) < 0.4 {
		t.Errorf("only %d/%d noise points labeled noise", noiseCorrect, noiseTotal)
	}
	blobPurity := 0
	for i, l := range labels {
		if truth[i] >= 0 && l >= 0 {
			blobPurity++
		}
	}
	if blobPurity < 70 { // 80 blob points
		t.Errorf("blob coverage %d/80", blobPurity)
	}
}

func TestHDBSCANUniformIsAllNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	points := make([][]float64, 60)
	for i := range points {
		points[i] = []float64{rng.Float64() * 100, rng.Float64() * 100}
	}
	labels := HDBSCAN(points, 5)
	clustered := 0
	for _, l := range labels {
		if l >= 0 {
			clustered++
		}
	}
	// Uniform data has no stable clusters; allow a little spurious
	// structure but most points must be noise.
	if clustered > len(points)/2 {
		t.Errorf("%d of %d uniform points clustered", clustered, len(points))
	}
}

func TestHDBSCANMicroClusters(t *testing.T) {
	// The paper's setting: tiny dense clusters in a sea of noise,
	// minClusterSize=3 (the baselines' configuration).
	rng := rand.New(rand.NewSource(4))
	var points [][]float64
	for c := 0; c < 4; c++ {
		cx := float64(c * 50)
		for i := 0; i < 4; i++ {
			points = append(points, []float64{cx + rng.NormFloat64()*0.1, rng.NormFloat64() * 0.1})
		}
	}
	for i := 0; i < 40; i++ {
		points = append(points, []float64{rng.Float64()*1000 - 500, rng.Float64()*1000 + 100})
	}
	labels := HDBSCAN(points, 3)
	found := map[int]bool{}
	for i := 0; i < 16; i++ {
		if labels[i] >= 0 {
			found[labels[i]] = true
		}
	}
	if len(found) < 3 {
		t.Errorf("found %d micro-clusters of 4: labels[:16]=%v", len(found), labels[:16])
	}
}

func TestHDBSCANDegenerate(t *testing.T) {
	if got := HDBSCAN(nil, 3); len(got) != 0 {
		t.Errorf("empty input: %v", got)
	}
	labels := HDBSCAN([][]float64{{1, 2}, {3, 4}}, 5)
	for _, l := range labels {
		if l != -1 {
			t.Errorf("too-few points should all be noise: %v", labels)
		}
	}
	// Identical points: either one cluster or all noise, but no panic and
	// consistent labels.
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}}
	labels = HDBSCAN(pts, 3)
	for _, l := range labels[1:] {
		if l != labels[0] {
			t.Errorf("identical points got split: %v", labels)
		}
	}
}

// Property: labels are always -1 or a dense range starting at 0, and the
// function never panics on random input.
func TestHDBSCANLabelInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 5
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		}
		labels := HDBSCAN(points, 3)
		maxL := -1
		for _, l := range labels {
			if l < -1 {
				return false
			}
			if l > maxL {
				maxL = l
			}
		}
		seen := make([]bool, maxL+1)
		for _, l := range labels {
			if l >= 0 {
				seen[l] = true
			}
		}
		for _, s := range seen {
			if !s {
				return false // gap in label range
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDBSCANFindsBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	points, truth := blobs(rng, 3, 25, 10)
	labels := DBSCAN(points, 3.0, 4)
	blobLabel := map[int]int{}
	wrong := 0
	for i, l := range labels {
		if truth[i] == -1 {
			continue
		}
		if l == -1 {
			wrong++
			continue
		}
		if want, ok := blobLabel[truth[i]]; ok && l != want {
			wrong++
		} else {
			blobLabel[truth[i]] = l
		}
	}
	if wrong > 4 {
		t.Errorf("%d blob points mislabeled", wrong)
	}
}

func TestDBSCANAllNoise(t *testing.T) {
	points := [][]float64{{0, 0}, {100, 100}, {200, 0}}
	labels := DBSCAN(points, 1.0, 2)
	for _, l := range labels {
		if l != -1 {
			t.Errorf("isolated points should be noise: %v", labels)
		}
	}
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	points, truth := blobs(rng, 3, 30, 0)
	labels := KMeans(points, 3, 7)
	// Purity: majority label per blob should cover nearly all members.
	counts := map[[2]int]int{}
	for i, l := range labels {
		counts[[2]int{truth[i], l}]++
	}
	pure := 0
	for b := 0; b < 3; b++ {
		best := 0
		for l := 0; l < 3; l++ {
			if c := counts[[2]int{b, l}]; c > best {
				best = c
			}
		}
		pure += best
	}
	if pure < 85 {
		t.Errorf("purity %d/90", pure)
	}
}

func TestKMeansDegenerate(t *testing.T) {
	if got := KMeans(nil, 3, 1); len(got) != 0 {
		t.Errorf("empty: %v", got)
	}
	labels := KMeans([][]float64{{1}, {2}}, 5, 1)
	if len(labels) != 2 {
		t.Errorf("k>n labels: %v", labels)
	}
}
