// Package cluster implements the density-based clustering algorithms the
// paper's baselines and related work rely on: HDBSCAN (McInnes, Healy &
// Astels 2017 — the clusterer behind Word2Vec-cl/Doc2Vec-cl/FastText-cl,
// with minimum cluster size 3), plus DBSCAN and k-means for the
// related-work comparisons.
//
// All algorithms take dense float64 points and return integer labels with
// -1 meaning noise. Implementations are exact (no index structures):
// O(n²) distance work, which is the right trade-off at the corpus sizes
// the benchmarks run.
package cluster

import (
	"math"
	"sort"
)

// euclidean returns the L2 distance between two points.
func euclidean(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// HDBSCAN clusters points hierarchically by density and extracts the
// flat clustering with maximum total stability (excess-of-mass). Points
// in no stable cluster are labeled -1. minClusterSize doubles as minPts
// for core distances, following the reference implementation's default.
func HDBSCAN(points [][]float64, minClusterSize int) []int {
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	if n == 0 || minClusterSize < 2 || n < minClusterSize {
		return labels
	}
	core := coreDistances(points, minClusterSize)
	edges := mstEdges(points, core)
	tree := buildCondensedTree(edges, n, minClusterSize)
	selected := tree.selectEOM()
	// Label points by selected cluster, in deterministic cluster order.
	next := 0
	ids := make([]int, 0, len(selected))
	for c := range selected {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	for _, c := range ids {
		for _, p := range tree.members(c) {
			labels[p] = next
		}
		next++
	}
	return labels
}

// coreDistances returns each point's distance to its (k-1)-th nearest
// neighbor (itself included, as in the reference implementation).
func coreDistances(points [][]float64, k int) []float64 {
	n := len(points)
	core := make([]float64, n)
	dists := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dists[j] = euclidean(points[i], points[j])
		}
		sort.Float64s(dists)
		idx := k - 1
		if idx >= n {
			idx = n - 1
		}
		core[i] = dists[idx]
	}
	return core
}

// mstEdge is one mutual-reachability MST edge.
type mstEdge struct {
	a, b int
	w    float64
}

// mstEdges computes the minimum spanning tree of the mutual-reachability
// graph with Prim's algorithm (dense O(n²)).
func mstEdges(points [][]float64, core []float64) []mstEdge {
	n := len(points)
	inTree := make([]bool, n)
	best := make([]float64, n)
	from := make([]int, n)
	for i := range best {
		best[i] = math.Inf(1)
	}
	edges := make([]mstEdge, 0, n-1)
	cur := 0
	inTree[0] = true
	for len(edges) < n-1 {
		// Relax from cur.
		for j := 0; j < n; j++ {
			if inTree[j] {
				continue
			}
			d := euclidean(points[cur], points[j])
			if core[cur] > d {
				d = core[cur]
			}
			if core[j] > d {
				d = core[j]
			}
			if d < best[j] {
				best[j] = d
				from[j] = cur
			}
		}
		// Pick the nearest outside point.
		nextP, nextD := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if !inTree[j] && best[j] < nextD {
				nextP, nextD = j, best[j]
			}
		}
		if nextP < 0 {
			break
		}
		inTree[nextP] = true
		edges = append(edges, mstEdge{from[nextP], nextP, nextD})
		cur = nextP
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })
	return edges
}

// condensedTree is the minClusterSize-condensed cluster hierarchy.
type condensedTree struct {
	n int
	// For cluster id c (c >= n are internal clusters; the root is the
	// largest id): children clusters, member points with their fall-out
	// lambda, birth lambda, and stability.
	children  map[int][]int
	points    map[int][]int
	birth     map[int]float64
	stability map[int]float64
	root      int
}

// lambdaCap bounds 1/distance so duplicate points (distance 0) do not
// inject infinities into stability arithmetic.
const lambdaCap = 1e12

// buildCondensedTree runs single-linkage over the sorted MST edges and
// condenses: a split is real only when both sides have at least
// minClusterSize points; smaller sides "fall out" of the parent.
func buildCondensedTree(edges []mstEdge, n, minClusterSize int) *condensedTree {
	// Single-linkage dendrogram via union-find, assigning internal node
	// ids n, n+1, ... in merge order (ascending distance).
	parent := make([]int, n+len(edges))
	size := make([]int, n+len(edges))
	node := make([]int, n+len(edges)) // current dendrogram node of each set root
	for i := range parent {
		parent[i] = i
		size[i] = 1
		node[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	dendro := make([]dendroNode, 0, len(edges))
	for _, e := range edges {
		ra, rb := find(e.a), find(e.b)
		if ra == rb {
			continue
		}
		id := n + len(dendro)
		dendro = append(dendro, dendroNode{node[ra], node[rb], e.w, size[ra] + size[rb]})
		parent[ra] = rb
		size[rb] += size[ra]
		node[rb] = id
	}
	t := &condensedTree{
		n:         n,
		children:  make(map[int][]int),
		points:    make(map[int][]int),
		birth:     make(map[int]float64),
		stability: make(map[int]float64),
	}
	if len(dendro) == 0 {
		t.root = 0
		return t
	}
	rootDendro := n + len(dendro) - 1
	t.root = rootDendro
	t.birth[rootDendro] = 0

	dendroSize := func(id int) int {
		if id < n {
			return 1
		}
		return dendro[id-n].size
	}
	// Walk top-down. Each condensed cluster c tracks the dendrogram nodes
	// it currently spans; splits where both sides >= minClusterSize open
	// new condensed clusters, otherwise small sides fall out as points.
	type frame struct {
		dendroID  int
		clusterID int
	}
	stack := []frame{{rootDendro, rootDendro}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.dendroID < n {
			// Single-point remainder: it leaves its cluster "at the end";
			// no stability contribution beyond what was already credited.
			t.points[f.clusterID] = append(t.points[f.clusterID], f.dendroID)
			continue
		}
		d := dendro[f.dendroID-n]
		lambda := lambdaCap
		if d.dist > 0 && 1/d.dist < lambdaCap {
			lambda = 1 / d.dist
		}
		credit := lambda - t.birth[f.clusterID]
		ls, rs := dendroSize(d.left), dendroSize(d.right)
		switch {
		case ls >= minClusterSize && rs >= minClusterSize:
			// True split: every remaining point leaves the parent here
			// (the credit the excess-of-mass comparison hinges on), and
			// two child clusters are born at this lambda.
			t.stability[f.clusterID] += credit * float64(ls+rs)
			for _, side := range [2]int{d.left, d.right} {
				t.children[f.clusterID] = append(t.children[f.clusterID], side)
				t.birth[side] = lambda
				stack = append(stack, frame{side, side})
			}
		case ls >= minClusterSize:
			t.stability[f.clusterID] += credit * float64(rs)
			t.fallOut(f.clusterID, d.right, dendro, n)
			stack = append(stack, frame{d.left, f.clusterID})
		case rs >= minClusterSize:
			t.stability[f.clusterID] += credit * float64(ls)
			t.fallOut(f.clusterID, d.left, dendro, n)
			stack = append(stack, frame{d.right, f.clusterID})
		default:
			// Cluster dissolves entirely at this lambda.
			t.stability[f.clusterID] += credit * float64(ls+rs)
			t.fallOut(f.clusterID, d.left, dendro, n)
			t.fallOut(f.clusterID, d.right, dendro, n)
		}
	}
	return t
}

// dendroNode is one internal node of the single-linkage dendrogram.
type dendroNode struct {
	left, right int
	dist        float64
	size        int
}

// fallOut records every point under dendro node id as a member that left
// cluster c (the stability credit is applied by the caller).
func (t *condensedTree) fallOut(c, id int, dendro []dendroNode, n int) {
	stack := []int{id}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if x < n {
			t.points[c] = append(t.points[c], x)
			continue
		}
		d := dendro[x-n]
		stack = append(stack, d.left, d.right)
	}
}

// members returns all points in cluster c including its descendants.
func (t *condensedTree) members(c int) []int {
	var out []int
	stack := []int{c}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, t.points[x]...)
		stack = append(stack, t.children[x]...)
	}
	return out
}

// subtreeStability returns the max total stability achievable in c's
// subtree, memoized into chosen: true means c itself is selected.
func (t *condensedTree) selectEOM() map[int]bool {
	selected := make(map[int]bool)
	var visit func(c int) float64
	visit = func(c int) float64 {
		childSum := 0.0
		for _, ch := range t.children[c] {
			childSum += visit(ch)
		}
		if len(t.children[c]) > 0 && childSum > t.stability[c] {
			return childSum
		}
		// Select c; deselect any descendants.
		var clear func(int)
		clear = func(x int) {
			delete(selected, x)
			for _, ch := range t.children[x] {
				clear(ch)
			}
		}
		for _, ch := range t.children[c] {
			clear(ch)
		}
		selected[c] = true
		return t.stability[c]
	}
	if t.root >= t.n || len(t.points[t.root]) > 0 {
		visit(t.root)
	}
	// The root is conventionally never a cluster (it is "everything");
	// deselect it unless it has no children at all.
	if selected[t.root] && len(t.children[t.root]) > 0 {
		delete(selected, t.root)
	} else if selected[t.root] {
		// Root selected with no real splits: whole data is one cluster —
		// in HDBSCAN semantics that means no meaningful structure; treat
		// all points as noise, like the reference implementation with
		// allow_single_cluster=False.
		delete(selected, t.root)
	}
	return selected
}
