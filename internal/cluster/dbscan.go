package cluster

// DBSCAN labels points by density connectivity (Ester et al. 1996): a
// point with at least minPts neighbors within eps is a core point; core
// points within eps of each other share a cluster; border points join a
// neighboring core's cluster; the rest are noise (-1). Exact O(n²).
func DBSCAN(points [][]float64, eps float64, minPts int) []int {
	n := len(points)
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -2 // unvisited
	}
	neighbors := func(i int) []int {
		var out []int
		for j := 0; j < n; j++ {
			if euclidean(points[i], points[j]) <= eps {
				out = append(out, j)
			}
		}
		return out
	}
	cluster := 0
	for i := 0; i < n; i++ {
		if labels[i] != -2 {
			continue
		}
		nb := neighbors(i)
		if len(nb) < minPts {
			labels[i] = -1
			continue
		}
		labels[i] = cluster
		queue := append([]int(nil), nb...)
		for len(queue) > 0 {
			q := queue[0]
			queue = queue[1:]
			if labels[q] == -1 {
				labels[q] = cluster // border point
			}
			if labels[q] != -2 {
				continue
			}
			labels[q] = cluster
			qnb := neighbors(q)
			if len(qnb) >= minPts {
				queue = append(queue, qnb...)
			}
		}
		cluster++
	}
	return labels
}
