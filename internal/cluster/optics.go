package cluster

import (
	"math"
	"sort"
)

// OPTICSPoint is one entry of the OPTICS ordering: the point's position
// in the reachability plot.
type OPTICSPoint struct {
	Index        int
	Reachability float64 // +Inf for the first point of each component
	Core         float64 // core distance, +Inf if not a core point
}

// OPTICS computes the density-based cluster ordering of Ankerst et al.
// (1999) — cited in the paper's related work — with an unbounded eps
// (exact O(n²)). The ordering plus ExtractDBSCAN reproduce DBSCAN at any
// eps' without re-running.
func OPTICS(points [][]float64, minPts int) []OPTICSPoint {
	n := len(points)
	order := make([]OPTICSPoint, 0, n)
	if n == 0 {
		return order
	}
	core := coreDistances(points, minPts)
	reach := make([]float64, n)
	processed := make([]bool, n)
	for i := range reach {
		reach[i] = math.Inf(1)
	}
	for start := 0; start < n; start++ {
		if processed[start] {
			continue
		}
		// Seed a new component.
		seeds := []int{start}
		for len(seeds) > 0 {
			// Pop the unprocessed seed with smallest reachability
			// (ties: smallest index, for determinism).
			best := -1
			for _, s := range seeds {
				if processed[s] {
					continue
				}
				if best == -1 || reach[s] < reach[best] ||
					(reach[s] == reach[best] && s < best) {
					best = s
				}
			}
			if best == -1 {
				break
			}
			processed[best] = true
			order = append(order, OPTICSPoint{
				Index: best, Reachability: reach[best], Core: core[best],
			})
			// Update reachabilities through best.
			var next []int
			for j := 0; j < n; j++ {
				if processed[j] {
					continue
				}
				d := euclidean(points[best], points[j])
				r := math.Max(core[best], d)
				if r < reach[j] {
					reach[j] = r
				}
				next = append(next, j)
			}
			seeds = next
		}
	}
	return order
}

// ExtractDBSCAN cuts the OPTICS ordering at eps, yielding the DBSCAN
// clustering at that radius: labels with -1 noise.
func ExtractDBSCAN(order []OPTICSPoint, eps float64, n int) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	cluster := -1
	for _, p := range order {
		// Infinite reachability (a component's first point) always starts
		// fresh, even at eps = +Inf.
		if p.Reachability > eps || math.IsInf(p.Reachability, 1) {
			if p.Core <= eps {
				cluster++
				labels[p.Index] = cluster
			}
			continue
		}
		if cluster >= 0 {
			labels[p.Index] = cluster
		}
	}
	return labels
}

// GMeans is the parameter-free k-means variant the paper name-checks
// ("some methods are parameter-free (G-means)"): start with one cluster
// and recursively split any cluster whose points, projected onto the
// split direction, fail an Anderson-Darling normality test.
func GMeans(points [][]float64, seed int64, maxK int) []int {
	n := len(points)
	labels := make([]int, n)
	if n == 0 {
		return labels
	}
	if maxK <= 0 {
		maxK = 16
	}
	// Work queue of clusters (as index lists).
	type job struct{ idx []int }
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	queue := []job{{all}}
	next := 0
	k := 1
	for len(queue) > 0 {
		j := queue[0]
		queue = queue[1:]
		if len(j.idx) < 8 || k >= maxK {
			assign(labels, j.idx, next)
			next++
			continue
		}
		sub := make([][]float64, len(j.idx))
		for i, d := range j.idx {
			sub[i] = points[d]
		}
		twoLabels := KMeans(sub, 2, seed+int64(next))
		if !splitRejected(sub, twoLabels) {
			// Looks Gaussian: keep as one cluster.
			assign(labels, j.idx, next)
			next++
			continue
		}
		var left, right []int
		for i, l := range twoLabels {
			if l == 0 {
				left = append(left, j.idx[i])
			} else {
				right = append(right, j.idx[i])
			}
		}
		if len(left) == 0 || len(right) == 0 {
			assign(labels, j.idx, next)
			next++
			continue
		}
		k++
		queue = append(queue, job{left}, job{right})
	}
	return labels
}

func assign(labels, idx []int, c int) {
	for _, d := range idx {
		labels[d] = c
	}
}

// splitRejected projects the cluster onto the axis between the two
// sub-centers and Anderson-Darling-tests the projection for normality;
// true means "not Gaussian, accept the split".
func splitRejected(points [][]float64, twoLabels []int) bool {
	dim := len(points[0])
	c0 := make([]float64, dim)
	c1 := make([]float64, dim)
	n0, n1 := 0, 0
	for i, p := range points {
		if twoLabels[i] == 0 {
			n0++
			for d := 0; d < dim; d++ {
				c0[d] += p[d]
			}
		} else {
			n1++
			for d := 0; d < dim; d++ {
				c1[d] += p[d]
			}
		}
	}
	if n0 == 0 || n1 == 0 {
		return false
	}
	v := make([]float64, dim)
	norm := 0.0
	for d := 0; d < dim; d++ {
		v[d] = c0[d]/float64(n0) - c1[d]/float64(n1)
		norm += v[d] * v[d]
	}
	if norm == 0 {
		return false
	}
	proj := make([]float64, len(points))
	for i, p := range points {
		for d := 0; d < dim; d++ {
			proj[i] += p[d] * v[d]
		}
	}
	return andersonDarling(proj) > 1.8592 // alpha ~= 1e-4, per the G-means paper
}

// andersonDarling returns the A*² statistic of xs against a normal with
// estimated mean and variance (small-sample corrected).
func andersonDarling(xs []float64) float64 {
	n := len(xs)
	if n < 8 {
		return 0
	}
	mean, sd := meanStd(xs)
	if sd == 0 {
		return 0
	}
	z := make([]float64, n)
	for i, x := range xs {
		z[i] = (x - mean) / sd
	}
	sort.Float64s(z)
	a2 := 0.0
	for i := 0; i < n; i++ {
		cdf1 := stdNormCDF(z[i])
		cdf2 := stdNormCDF(z[n-1-i])
		cdf1 = clampProb(cdf1)
		cdf2 = clampProb(cdf2)
		a2 += float64(2*i+1) * (math.Log(cdf1) + math.Log(1-cdf2))
	}
	a2 = -float64(n) - a2/float64(n)
	// Correction for estimated parameters.
	return a2 * (1 + 4.0/float64(n) - 25.0/float64(n*n))
}

func clampProb(p float64) float64 {
	const eps = 1e-12
	if p < eps {
		return eps
	}
	if p > 1-eps {
		return 1 - eps
	}
	return p
}

func meanStd(xs []float64) (mean, sd float64) {
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(xs)-1))
	return mean, sd
}

// stdNormCDF is Φ(x) via erf.
func stdNormCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}
