package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOPTICSOrderingCoversAll(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points, _ := blobs(rng, 3, 20, 10)
	order := OPTICS(points, 5)
	if len(order) != len(points) {
		t.Fatalf("ordering covers %d of %d", len(order), len(points))
	}
	seen := make([]bool, len(points))
	for _, p := range order {
		if seen[p.Index] {
			t.Fatalf("point %d ordered twice", p.Index)
		}
		seen[p.Index] = true
	}
}

func TestOPTICSExtractMatchesDBSCANStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points, truth := blobs(rng, 3, 25, 0)
	order := OPTICS(points, 4)
	labels := ExtractDBSCAN(order, 3.0, len(points))
	// Same purity criterion as the direct DBSCAN test.
	blobLabel := map[int]int{}
	wrong := 0
	for i, l := range labels {
		if l == -1 {
			wrong++
			continue
		}
		if want, ok := blobLabel[truth[i]]; ok && l != want {
			wrong++
		} else {
			blobLabel[truth[i]] = l
		}
	}
	if wrong > 4 {
		t.Errorf("%d points mislabeled: %v", wrong, labels)
	}
	if len(blobLabel) != 3 {
		t.Errorf("found %d clusters, want 3", len(blobLabel))
	}
}

func TestOPTICSReachabilityValleys(t *testing.T) {
	// Two tight blobs far apart: the reachability plot must show a spike
	// (large reachability) when the ordering jumps between blobs.
	rng := rand.New(rand.NewSource(3))
	var points [][]float64
	for b := 0; b < 2; b++ {
		for i := 0; i < 15; i++ {
			points = append(points, []float64{float64(b)*100 + rng.NormFloat64(), rng.NormFloat64()})
		}
	}
	order := OPTICS(points, 4)
	spikes := 0
	for _, p := range order[1:] {
		if p.Reachability > 50 {
			spikes++
		}
	}
	if spikes != 1 {
		t.Errorf("expected exactly 1 inter-blob spike, got %d", spikes)
	}
}

func TestOPTICSEmpty(t *testing.T) {
	if got := OPTICS(nil, 3); len(got) != 0 {
		t.Errorf("empty: %v", got)
	}
}

// Property: extraction at a huge eps puts every point with a finite core
// distance in some cluster; at eps=0 everything is noise.
func TestExtractDBSCANExtremes(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 10
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
		}
		order := OPTICS(points, 3)
		all := ExtractDBSCAN(order, math.Inf(1), n)
		for _, l := range all {
			if l == -1 {
				return false
			}
		}
		none := ExtractDBSCAN(order, 0, n)
		for _, l := range none {
			if l != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGMeansSplitsTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var points [][]float64
	for b := 0; b < 2; b++ {
		for i := 0; i < 60; i++ {
			points = append(points, []float64{float64(b)*50 + rng.NormFloat64(), rng.NormFloat64()})
		}
	}
	labels := GMeans(points, 1, 16)
	// The two blobs must get different labels, each internally consistent.
	if labels[0] == labels[60] {
		// find any cross pair
		same := 0
		for i := 0; i < 60; i++ {
			if labels[i] == labels[60+i] {
				same++
			}
		}
		if same > 55 {
			t.Errorf("blobs not split: %v...", labels[:10])
		}
	}
	k := map[int]bool{}
	for _, l := range labels {
		k[l] = true
	}
	if len(k) < 2 || len(k) > 6 {
		t.Errorf("k = %d, want 2-6", len(k))
	}
}

func TestGMeansKeepsOneGaussian(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	points := make([][]float64, 200)
	for i := range points {
		points[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	labels := GMeans(points, 1, 16)
	k := map[int]bool{}
	for _, l := range labels {
		k[l] = true
	}
	// A single Gaussian should stay (nearly) unsplit.
	if len(k) > 2 {
		t.Errorf("single gaussian split into %d clusters", len(k))
	}
}

func TestAndersonDarling(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	normal := make([]float64, 500)
	for i := range normal {
		normal[i] = rng.NormFloat64()
	}
	if a2 := andersonDarling(normal); a2 > 1.8592 {
		t.Errorf("normal sample rejected: A2 = %v", a2)
	}
	bimodal := make([]float64, 500)
	for i := range bimodal {
		bimodal[i] = rng.NormFloat64() + float64(i%2)*12
	}
	if a2 := andersonDarling(bimodal); a2 <= 1.8592 {
		t.Errorf("bimodal sample accepted: A2 = %v", a2)
	}
	if got := andersonDarling([]float64{1, 2}); got != 0 {
		t.Errorf("tiny sample: %v", got)
	}
}
