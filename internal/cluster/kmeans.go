package cluster

import (
	"math"
	"math/rand"
)

// KMeans runs Lloyd's algorithm with k-means++ seeding. It always assigns
// every point (no noise label), the property that makes k-means a poor
// fit for the paper's micro-cluster setting — included for the
// related-work comparison. Deterministic per seed.
func KMeans(points [][]float64, k int, seed int64) []int {
	n := len(points)
	labels := make([]int, n)
	if n == 0 || k <= 0 {
		return labels
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	dim := len(points[0])
	centers := kmeansPlusPlus(points, k, rng)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centers {
				if d := euclidean(p, centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		if !changed {
			break
		}
		counts := make([]int, k)
		for c := range centers {
			for d := 0; d < dim; d++ {
				centers[c][d] = 0
			}
		}
		for i, p := range points {
			c := labels[i]
			counts[c]++
			for d := 0; d < dim; d++ {
				centers[c][d] += p[d]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				// Re-seed an empty center on a random point.
				copy(centers[c], points[rng.Intn(n)])
				continue
			}
			for d := 0; d < dim; d++ {
				centers[c][d] /= float64(counts[c])
			}
		}
	}
	return labels
}

// kmeansPlusPlus picks k initial centers proportional to squared distance
// from the chosen set.
func kmeansPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centers := make([][]float64, 0, k)
	first := points[rng.Intn(n)]
	centers = append(centers, append([]float64(nil), first...))
	d2 := make([]float64, n)
	for len(centers) < k {
		total := 0.0
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centers {
				if d := euclidean(p, c); d < best {
					best = d
				}
			}
			d2[i] = best * best
			total += d2[i]
		}
		if total == 0 {
			centers = append(centers, append([]float64(nil), points[rng.Intn(n)]...))
			continue
		}
		r := rng.Float64() * total
		for i := range d2 {
			r -= d2[i]
			if r <= 0 {
				centers = append(centers, append([]float64(nil), points[i]...))
				break
			}
		}
		if r > 0 {
			centers = append(centers, append([]float64(nil), points[n-1]...))
		}
	}
	return centers
}
