package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"infoshield/internal/corpus"
)

// TwitterConfig parameterizes the Cresci-2017-style synthetic corpus.
// Zero fields take the documented defaults.
type TwitterConfig struct {
	// Seed drives all randomness; runs are reproducible per seed.
	Seed int64
	// GenuineAccounts and BotAccounts set the account mix. The paper's
	// test sets sample 50% genuine / 50% spambot accounts.
	GenuineAccounts int // default 50
	BotAccounts     int // default 50
	// TweetsPerAccountMin/Max bound the per-account tweet count
	// (default 5..40).
	TweetsPerAccountMin int
	TweetsPerAccountMax int
	// Languages the genuine accounts tweet in (default: all four).
	Languages []Language
	// NoiseRate is the probability a bot tweet receives one random edit
	// beyond its slot fills (default 0.15).
	NoiseRate float64
	// CampaignsPerBot is the max campaigns (distinct templates) a bot
	// posts from (default 2 — the paper observes kmax <= 2).
	CampaignsPerBot int
}

func (c TwitterConfig) withDefaults() TwitterConfig {
	if c.GenuineAccounts == 0 {
		c.GenuineAccounts = 50
	}
	if c.BotAccounts == 0 {
		c.BotAccounts = 50
	}
	if c.TweetsPerAccountMin == 0 {
		c.TweetsPerAccountMin = 5
	}
	if c.TweetsPerAccountMax == 0 {
		c.TweetsPerAccountMax = 40
	}
	if len(c.Languages) == 0 {
		c.Languages = []Language{English, Spanish, Italian, Japanese}
	}
	if c.NoiseRate == 0 {
		c.NoiseRate = 0.15
	}
	if c.CampaignsPerBot == 0 {
		c.CampaignsPerBot = 2
	}
	return c
}

// campaign is one spam template: a fixed text with slot positions whose
// content changes per tweet (URL, handle, number), exactly the structure
// InfoShield's slot detection is designed to surface.
type campaign struct {
	lang  Language
	parts []string // constant fragments; slots go between consecutive parts
	slots []func(*rand.Rand) string
}

// newCampaign builds a campaign in the given language: 1-2 grammar
// sentences with 1-3 appended/embedded slots.
func newCampaign(rng *rand.Rand, lang Language) *campaign {
	c := &campaign{lang: lang}
	body := Sentence(rng, lang)
	if rng.Float64() < 0.5 {
		body += " " + Sentence(rng, lang)
	}
	fills := []func(*rand.Rand) string{URL, Handle, Phone, Price}
	nSlots := rng.Intn(3) + 1
	// Split the body at random word boundaries to host interior slots,
	// always ending with a trailing slot (the classic spam-link shape).
	words := strings.Fields(body)
	if len(words) < 4 || banks[lang].spaced == false {
		// Unspaced scripts keep the body intact with trailing slots only.
		c.parts = []string{body}
		for i := 0; i < nSlots; i++ {
			c.slots = append(c.slots, fills[rng.Intn(len(fills))])
		}
		for i := 1; i < nSlots; i++ {
			c.parts = append(c.parts, "")
		}
		return c
	}
	cut := rng.Intn(len(words)-2) + 1
	c.parts = []string{strings.Join(words[:cut], " "), strings.Join(words[cut:], " ")}
	c.slots = []func(*rand.Rand) string{fills[rng.Intn(len(fills))]}
	for i := 1; i < nSlots; i++ {
		c.parts = append(c.parts, "")
		c.slots = append(c.slots, fills[rng.Intn(len(fills))])
	}
	return c
}

// emit renders one tweet from the campaign: constants with fresh slot
// fills, then possibly one random edit.
func (c *campaign) emit(rng *rand.Rand, noiseRate float64) string {
	var sb strings.Builder
	for i, part := range c.parts {
		if part != "" {
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(part)
		}
		if i < len(c.slots) {
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			sb.WriteString(c.slots[i](rng))
		}
	}
	text := sb.String()
	if rng.Float64() < noiseRate {
		text = randomEdit(rng, text, c.lang)
	}
	return text
}

// randomEdit applies one word-level substitution, deletion, or insertion.
func randomEdit(rng *rand.Rand, text string, lang Language) string {
	b := banks[lang]
	words := strings.Fields(text)
	if len(words) == 0 {
		return text
	}
	switch rng.Intn(3) {
	case 0: // substitute
		words[rng.Intn(len(words))] = pick(rng, b.adjectives)
	case 1: // delete
		p := rng.Intn(len(words))
		words = append(words[:p], words[p+1:]...)
	default: // insert
		p := rng.Intn(len(words) + 1)
		words = append(words[:p], append([]string{pick(rng, b.adverbs)}, words[p:]...)...)
	}
	return strings.Join(words, " ")
}

// genuineMeta synthesizes believable human-account metadata.
func genuineMeta(rng *rand.Rand) *corpus.Meta {
	return &corpus.Meta{
		Retweets:     rng.Intn(6),
		Favorites:    rng.Intn(25),
		Mentions:     rng.Intn(3),
		URLs:         boolToInt(rng.Float64() < 0.2),
		Hashtags:     rng.Intn(3),
		FollowerRate: 0.4 + rng.Float64()*2.0,
		AccountAge:   300 + rng.Intn(2700),
		PostGapSecs:  3600 * (1 + rng.Float64()*47),
	}
}

// botMeta synthesizes spambot metadata: link-heavy, follower-poor, young,
// posting on a fast regular cadence.
func botMeta(rng *rand.Rand) *corpus.Meta {
	return &corpus.Meta{
		Retweets:     rng.Intn(2),
		Favorites:    rng.Intn(3),
		Mentions:     rng.Intn(6),
		URLs:         1 + boolToInt(rng.Float64() < 0.4),
		Hashtags:     rng.Intn(6),
		FollowerRate: 0.01 + rng.Float64()*0.3,
		AccountAge:   10 + rng.Intn(290),
		PostGapSecs:  60 + rng.Float64()*540,
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Twitter generates the synthetic bot-detection corpus. Every genuine
// tweet gets ClusterLabel -1 (the paper's convention); every bot tweet
// gets its bot's account index as ClusterLabel and Label = true.
func Twitter(cfg TwitterConfig) *corpus.Corpus {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &corpus.Corpus{}

	tweets := func() int {
		return cfg.TweetsPerAccountMin + rng.Intn(cfg.TweetsPerAccountMax-cfg.TweetsPerAccountMin+1)
	}
	for g := 0; g < cfg.GenuineAccounts; g++ {
		lang := cfg.Languages[rng.Intn(len(cfg.Languages))]
		account := fmt.Sprintf("genuine-%d", g)
		for k := tweets(); k > 0; k-- {
			c.Docs = append(c.Docs, corpus.Document{
				Text:         Sentence(rng, lang),
				Account:      account,
				Label:        false,
				ClusterLabel: -1,
				Ordinal:      -1,
				Lang:         lang.String(),
				Meta:         genuineMeta(rng),
			})
		}
	}
	for b := 0; b < cfg.BotAccounts; b++ {
		// Each bot owns its campaigns: the ground-truth clusters are
		// account ids (the paper's labeling), so cross-account content
		// sharing would make the labeling itself wrong.
		account := fmt.Sprintf("bot-%d", b)
		nCamp := rng.Intn(cfg.CampaignsPerBot) + 1
		own := make([]*campaign, nCamp)
		for i := range own {
			own[i] = newCampaign(rng, cfg.Languages[rng.Intn(len(cfg.Languages))])
		}
		for k := tweets(); k > 0; k-- {
			camp := own[rng.Intn(len(own))]
			c.Docs = append(c.Docs, corpus.Document{
				Text:         camp.emit(rng, cfg.NoiseRate),
				Account:      account,
				Label:        true,
				ClusterLabel: b,
				Ordinal:      -1,
				Lang:         camp.lang.String(),
				Meta:         botMeta(rng),
			})
		}
	}
	// Shuffle so account order carries no signal.
	rng.Shuffle(len(c.Docs), func(i, j int) { c.Docs[i], c.Docs[j] = c.Docs[j], c.Docs[i] })
	c.Renumber()
	return c
}

// SampleTweets returns a corpus of exactly n documents sampled without
// replacement (or the whole corpus if n >= len). Used by the scalability
// sweep (Fig. 2), which re-samples the same distribution at many sizes.
func SampleTweets(c *corpus.Corpus, n int, seed int64) *corpus.Corpus {
	if n >= c.Len() {
		n = c.Len()
	}
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(c.Len())[:n]
	out := &corpus.Corpus{Docs: make([]corpus.Document, n)}
	for i, j := range idx {
		out.Docs[i] = c.Docs[j]
	}
	out.Renumber()
	return out
}
