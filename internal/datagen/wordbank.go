// Package datagen synthesizes the corpora the paper evaluates on but that
// are gated behind NDAs or remote downloads: Cresci-2017-style Twitter bot
// datasets (genuine accounts + social spambots, multiple languages, with
// per-tweet metadata for the feature-based baselines), a
// Trafficking10k-style noisily labeled ad set, and a Cluster-Trafficking-
// style corpus with spam / HT / normal cluster structure.
//
// Everything is deterministic given a seed. The generators control the
// one property InfoShield actually reads — the distribution of
// near-duplication — so the paper's qualitative results are reproducible
// even though the text itself is synthetic. See DESIGN.md §3.
package datagen

import "math/rand"

// Language selects a word bank.
type Language int

// Supported languages: the paper demonstrates language independence on
// English, Spanish, Italian, and Japanese tweets.
const (
	English Language = iota
	Spanish
	Italian
	Japanese
)

// String names the language.
func (l Language) String() string {
	switch l {
	case English:
		return "english"
	case Spanish:
		return "spanish"
	case Italian:
		return "italian"
	case Japanese:
		return "japanese"
	}
	return "unknown"
}

// bank holds the word classes a simple generative grammar draws from.
type bank struct {
	openers    []string
	pronouns   []string
	verbs      []string
	dets       []string
	adjectives []string
	nouns      []string
	preps      []string
	adverbs    []string
	closers    []string
	// spaced is false for scripts written without word separators.
	spaced bool
}

var banks = map[Language]*bank{
	English: {
		openers:    []string{"wow", "ok", "honestly", "today", "finally", "just", "so", "yes", "listen", "update"},
		pronouns:   []string{"i", "we", "they", "you", "she", "he", "everyone", "nobody"},
		verbs:      []string{"love", "hate", "found", "watched", "tried", "finished", "started", "missed", "enjoyed", "cooked", "visited", "bought", "read", "played", "heard", "saw", "built", "broke", "fixed", "lost", "painted", "planted", "sold", "borrowed", "climbed", "crossed", "ignored", "noticed", "repaired", "sketched", "tasted", "wandered", "admired", "arranged", "carried", "counted"},
		dets:       []string{"the", "a", "this", "that", "my", "our", "their", "some"},
		adjectives: []string{"amazing", "terrible", "quiet", "loud", "tiny", "huge", "golden", "broken", "fresh", "ancient", "spicy", "gentle", "bright", "lazy", "rapid", "sour", "velvet", "crooked", "misty", "sturdy", "hollow", "crimson", "dusty", "eager", "faded", "glossy", "humble", "icy", "jagged", "mellow", "narrow", "oily", "pale", "quirky", "rusty", "silent", "tangled", "uneven", "vivid", "woolen"},
		nouns:      []string{"coffee", "movie", "garden", "bicycle", "concert", "recipe", "mountain", "library", "puppy", "sunset", "novel", "kitchen", "market", "river", "painting", "guitar", "sandwich", "museum", "airport", "meadow", "engine", "harbor", "lantern", "orchard", "violin", "anchor", "blanket", "candle", "drawer", "easel", "fountain", "glacier", "hammock", "island", "jacket", "kettle", "ladder", "mirror", "notebook", "oven", "pillow", "quarry", "rooftop", "saddle", "teapot", "umbrella", "valley", "window", "xylophone", "yard", "zeppelin", "bakery", "canyon", "dune", "ferry", "grove", "hedge", "inlet", "jetty", "kiln", "lagoon"},
		preps:      []string{"in", "near", "behind", "under", "around", "beyond", "without", "after"},
		adverbs:    []string{"quickly", "slowly", "barely", "truly", "quietly", "loudly", "rarely", "always", "somehow", "twice"},
		closers:    []string{"lol", "wow", "finally", "again", "tonight", "yesterday", "honestly", "somehow"},
		spaced:     true,
	},
	Spanish: {
		openers:    []string{"hoy", "bueno", "vale", "mira", "ahora", "por", "fin", "claro", "oye"},
		pronouns:   []string{"yo", "nosotros", "ellos", "ella", "usted", "todos", "nadie"},
		verbs:      []string{"encontré", "vimos", "probamos", "terminé", "empezamos", "perdí", "disfruté", "cociné", "visitamos", "compré", "leímos", "escuché", "arreglé", "rompí", "construyó", "pinté", "planté", "vendí", "crucé", "ignoré", "noté", "reparé", "dibujé", "probé", "caminé", "admiré", "conté", "llevé", "subí", "bajé"},
		dets:       []string{"el", "la", "un", "una", "este", "esa", "mi", "nuestro"},
		adjectives: []string{"increíble", "terrible", "tranquilo", "pequeño", "enorme", "dorado", "roto", "fresco", "antiguo", "picante", "brillante", "lento", "agrio", "torcido", "firme", "hueco", "carmesí", "polvoriento", "ansioso", "desteñido", "humilde", "helado", "dentado", "suave", "estrecho", "pálido", "oxidado", "silencioso", "enredado", "vívido"},
		nouns:      []string{"café", "película", "jardín", "bicicleta", "concierto", "receta", "montaña", "biblioteca", "cachorro", "atardecer", "novela", "cocina", "mercado", "río", "pintura", "guitarra", "museo", "aeropuerto", "pradera", "motor", "puerto", "farol", "huerto", "violín", "ancla", "manta", "vela", "cajón", "fuente", "glaciar", "hamaca", "isla", "chaqueta", "tetera", "escalera", "espejo", "cuaderno", "horno", "almohada", "cantera", "azotea", "silla", "paraguas", "valle", "ventana", "patio", "panadería", "cañón", "duna", "granja", "seto", "muelle", "laguna"},
		preps:      []string{"en", "cerca", "detrás", "bajo", "alrededor", "sin", "después"},
		adverbs:    []string{"rápidamente", "despacio", "apenas", "realmente", "silenciosamente", "raramente", "siempre", "dos", "veces"},
		closers:    []string{"jaja", "vaya", "por", "fin", "otra", "vez", "esta", "noche", "ayer"},
		spaced:     true,
	},
	Italian: {
		openers:    []string{"oggi", "allora", "guarda", "adesso", "finalmente", "certo", "senti"},
		pronouns:   []string{"io", "noi", "loro", "lei", "lui", "tutti", "nessuno"},
		verbs:      []string{"trovato", "visto", "provato", "finito", "iniziato", "perso", "goduto", "cucinato", "visitato", "comprato", "letto", "sentito", "riparato", "rotto", "costruito", "dipinto", "piantato", "venduto", "attraversato", "ignorato", "notato", "disegnato", "assaggiato", "camminato", "ammirato", "contato", "portato", "salito", "sceso"},
		dets:       []string{"il", "la", "un", "una", "questo", "quella", "mio", "nostro"},
		adjectives: []string{"incredibile", "terribile", "tranquillo", "piccolo", "enorme", "dorato", "rotto", "fresco", "antico", "piccante", "brillante", "lento", "aspro", "storto", "solido", "cavo", "cremisi", "polveroso", "ansioso", "sbiadito", "umile", "gelido", "frastagliato", "morbido", "stretto", "pallido", "arrugginito", "silenzioso", "intrecciato", "vivido"},
		nouns:      []string{"caffè", "film", "giardino", "bicicletta", "concerto", "ricetta", "montagna", "biblioteca", "cucciolo", "tramonto", "romanzo", "cucina", "mercato", "fiume", "dipinto", "chitarra", "museo", "aeroporto", "prato", "motore", "porto", "lanterna", "frutteto", "violino", "ancora", "coperta", "candela", "cassetto", "fontana", "ghiacciaio", "amaca", "isola", "giacca", "teiera", "scala", "specchio", "quaderno", "forno", "cuscino", "cava", "tetto", "sella", "ombrello", "valle", "finestra", "cortile", "panetteria", "canyon", "duna", "fattoria", "siepe", "molo", "laguna"},
		preps:      []string{"in", "vicino", "dietro", "sotto", "intorno", "senza", "dopo"},
		adverbs:    []string{"rapidamente", "lentamente", "appena", "davvero", "silenziosamente", "raramente", "sempre", "due", "volte"},
		closers:    []string{"ahah", "dai", "finalmente", "ancora", "stasera", "ieri"},
		spaced:     true,
	},
	Japanese: {
		openers:    []string{"今日", "ねえ", "ついに", "さて", "実は"},
		pronouns:   []string{"私", "僕", "彼", "彼女", "皆"},
		verbs:      []string{"見た", "食べた", "作った", "買った", "読んだ", "聞いた", "行った", "直した", "壊した", "始めた"},
		dets:       []string{"この", "その", "あの"},
		adjectives: []string{"素晴らしい", "静かな", "小さな", "大きな", "古い", "新しい", "辛い", "明るい", "遅い"},
		nouns:      []string{"映画", "庭", "自転車", "音楽会", "料理", "山", "図書館", "子犬", "夕日", "小説", "台所", "市場", "川", "絵", "楽器", "博物館", "空港", "港", "果樹園", "毛布", "蝋燭", "引き出し", "噴水", "氷河", "島", "上着", "急須", "梯子", "鏡", "帳面", "竈", "枕", "屋根", "鞍", "傘", "谷", "窓", "中庭", "砂丘", "農場", "生垣", "桟橋", "潟"},
		preps:      []string{"で", "の", "と", "から", "まで"},
		adverbs:    []string{"すぐに", "ゆっくり", "本当に", "静かに", "いつも"},
		closers:    []string{"笑", "また", "今夜", "昨日"},
		spaced:     false,
	},
}

// pick returns a uniformly random element of words.
func pick(rng *rand.Rand, words []string) string {
	return words[rng.Intn(len(words))]
}
