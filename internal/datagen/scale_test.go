package datagen

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestScaleTemplatesShape(t *testing.T) {
	cfg := ScaleConfig{Seed: 3, Templates: 500}
	set := ScaleTemplates(cfg)
	if len(set.Templates) != 500 {
		t.Fatalf("got %d templates", len(set.Templates))
	}
	want := cfg.withDefaults()
	for ti, tmpl := range set.Templates {
		if len(tmpl.Words) != len(tmpl.Wild) {
			t.Fatalf("template %d: words/wild length mismatch", ti)
		}
		if len(tmpl.Words) < want.MinLen || len(tmpl.Words) > want.MaxLen {
			t.Fatalf("template %d: length %d outside [%d,%d]", ti, len(tmpl.Words), want.MinLen, want.MaxLen)
		}
		slots, commons := 0, 0
		for p, w := range tmpl.Words {
			if tmpl.Wild[p] {
				slots++
				continue
			}
			if !strings.HasPrefix(w, "m") {
				commons++
			}
		}
		if slots != want.Slots {
			t.Fatalf("template %d: %d slots, want %d", ti, slots, want.Slots)
		}
		if commons != 2 {
			t.Fatalf("template %d: %d shared serving words, want 2", ti, commons)
		}
	}
}

func TestScaleTemplatesDeterministicAndMarketLocal(t *testing.T) {
	a := ScaleTemplates(ScaleConfig{Seed: 9, Templates: 300})
	b := ScaleTemplates(ScaleConfig{Seed: 9, Templates: 300})
	if !reflect.DeepEqual(a.Templates, b.Templates) {
		t.Fatal("same seed produced different template sets")
	}
	// Market-local banks: templates of different markets share only the
	// serving commons, so cross-market constant overlap stays tiny — the
	// property that makes candidate generation sublinear.
	cfg := ScaleConfig{Seed: 9, Templates: 300}.withDefaults()
	seen := make(map[string]int) // market word -> market
	for ti, tmpl := range a.Templates {
		market := ti % cfg.Markets
		for p, w := range tmpl.Words {
			if tmpl.Wild[p] || !strings.HasPrefix(w, "m") {
				continue
			}
			if prev, ok := seen[w]; ok && prev != market {
				t.Fatalf("market word %q appears in markets %d and %d", w, prev, market)
			}
			seen[w] = market
		}
	}
}

func TestScaleProbeSharesTemplateConstants(t *testing.T) {
	set := ScaleTemplates(ScaleConfig{Seed: 5, Templates: 100})
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		ti := rng.Intn(len(set.Templates))
		probe := strings.Fields(set.Probe(rng, ti))
		have := make(map[string]bool, len(probe))
		for _, w := range probe {
			have[w] = true
		}
		tmpl := set.Templates[ti]
		missing, consts := 0, 0
		for p, w := range tmpl.Words {
			if tmpl.Wild[p] {
				continue
			}
			consts++
			if !have[w] {
				missing++
			}
		}
		// At most one constant may be dropped or substituted per probe.
		if missing > 1 {
			t.Fatalf("probe %d of template %d missing %d of %d constants", i, ti, missing, consts)
		}
	}
	if noise := set.Noise(rng); len(strings.Fields(noise)) < 8 {
		t.Fatalf("noise too short: %q", noise)
	}
}
