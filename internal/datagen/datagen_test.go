package datagen

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"unicode"

	"infoshield/internal/tokenize"
)

func TestSentenceNonEmptyAllLanguages(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var tk tokenize.Tokenizer
	for _, lang := range []Language{English, Spanish, Italian, Japanese} {
		for i := 0; i < 50; i++ {
			s := Sentence(rng, lang)
			if len(tk.Tokens(s)) < 2 {
				t.Errorf("%v sentence too short: %q", lang, s)
			}
		}
	}
}

func TestSentenceDiversity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seen := make(map[string]bool)
	for i := 0; i < 200; i++ {
		seen[Sentence(rng, English)] = true
	}
	if len(seen) < 150 {
		t.Errorf("only %d distinct sentences in 200 draws", len(seen))
	}
}

func TestJapaneseSentenceUnspaced(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Sentence(rng, Japanese)
	if strings.ContainsFunc(s, unicode.IsSpace) {
		t.Errorf("japanese sentence has spaces: %q", s)
	}
}

func TestFabricatedTokens(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var tk tokenize.Tokenizer
	for i := 0; i < 20; i++ {
		for _, s := range []string{URL(rng), Handle(rng), Phone(rng), Price(rng)} {
			if toks := tk.Tokens(s); len(toks) != 1 {
				t.Errorf("%q tokenizes to %v, want single token", s, toks)
			}
		}
	}
}

func TestTwitterDefaults(t *testing.T) {
	c := Twitter(TwitterConfig{Seed: 7})
	if c.Len() == 0 {
		t.Fatal("empty corpus")
	}
	genuine, bots := 0, 0
	accounts := make(map[string]bool)
	for _, d := range c.Docs {
		accounts[d.Account] = true
		if d.Label {
			bots++
			if d.ClusterLabel < 0 {
				t.Fatalf("bot doc with ClusterLabel %d", d.ClusterLabel)
			}
		} else {
			genuine++
			if d.ClusterLabel != -1 {
				t.Fatalf("genuine doc with ClusterLabel %d", d.ClusterLabel)
			}
		}
		if d.Meta == nil {
			t.Fatal("doc missing metadata")
		}
		if d.ID != 0 && d.Text == "" {
			t.Fatal("empty tweet text")
		}
	}
	if genuine == 0 || bots == 0 {
		t.Errorf("genuine=%d bots=%d", genuine, bots)
	}
	if len(accounts) != 100 {
		t.Errorf("accounts = %d, want 100", len(accounts))
	}
}

func TestTwitterDeterministic(t *testing.T) {
	a := Twitter(TwitterConfig{Seed: 42})
	b := Twitter(TwitterConfig{Seed: 42})
	if !reflect.DeepEqual(a.Docs, b.Docs) {
		t.Error("same seed produced different corpora")
	}
	c := Twitter(TwitterConfig{Seed: 43})
	if reflect.DeepEqual(a.Docs, c.Docs) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestTwitterBotsNearDuplicates(t *testing.T) {
	// A bot's tweets come from at most 2 campaigns, so a bot with several
	// tweets must have same-campaign pairs sharing constant fragments.
	// The pipeline's coarse pass needs shared n-grams (n >= 1 with df
	// rare); require every >=4-tweet bot to have some pair sharing a
	// bigram.
	c := Twitter(TwitterConfig{Seed: 9, GenuineAccounts: 2, BotAccounts: 4})
	var tk tokenize.Tokenizer
	byBot := make(map[int][][]string)
	for _, d := range c.Docs {
		if d.Label {
			byBot[d.ClusterLabel] = append(byBot[d.ClusterLabel], tk.Tokens(d.Text))
		}
	}
	for bot, tweets := range byBot {
		if len(tweets) < 4 {
			continue
		}
		if !anySharedNgram(tweets, 2) {
			t.Errorf("bot %d tweets share no bigram", bot)
		}
	}
}

func anySharedNgram(docs [][]string, n int) bool {
	seen := make(map[string]int)
	for i, toks := range docs {
		local := make(map[string]bool)
		for j := 0; j+n <= len(toks); j++ {
			local[strings.Join(toks[j:j+n], " ")] = true
		}
		for g := range local {
			if prev, ok := seen[g]; ok && prev != i {
				return true
			}
			seen[g] = i
		}
	}
	return false
}

func TestTwitterMetadataSeparation(t *testing.T) {
	c := Twitter(TwitterConfig{Seed: 11})
	var botGap, genGap float64
	var botN, genN int
	for _, d := range c.Docs {
		if d.Label {
			botGap += d.Meta.PostGapSecs
			botN++
		} else {
			genGap += d.Meta.PostGapSecs
			genN++
		}
	}
	if botGap/float64(botN) >= genGap/float64(genN) {
		t.Error("bot posting gaps should be shorter than genuine gaps")
	}
}

func TestSampleTweets(t *testing.T) {
	c := Twitter(TwitterConfig{Seed: 5, GenuineAccounts: 5, BotAccounts: 5})
	s := SampleTweets(c, 20, 1)
	if s.Len() != 20 {
		t.Fatalf("sample len = %d", s.Len())
	}
	for i, d := range s.Docs {
		if d.ID != i {
			t.Errorf("doc %d has ID %d", i, d.ID)
		}
	}
	// Oversampling returns everything.
	s = SampleTweets(c, c.Len()*2, 1)
	if s.Len() != c.Len() {
		t.Errorf("oversample len = %d, want %d", s.Len(), c.Len())
	}
}

func TestTrafficking10kShape(t *testing.T) {
	c := Trafficking10k(Trafficking10kConfig{Seed: 3, Size: 2000})
	if c.Len() != 2000 {
		t.Fatalf("len = %d", c.Len())
	}
	ht, dupGroups := 0, make(map[string][]int)
	for _, d := range c.Docs {
		if d.Ordinal < 0 || d.Ordinal > 6 {
			t.Fatalf("ordinal %d out of range", d.Ordinal)
		}
		if d.Label {
			ht++
		}
		dupGroups[d.Text] = append(dupGroups[d.Text], d.Ordinal)
	}
	frac := float64(ht) / 2000
	if frac < 0.25 || frac > 0.42 {
		t.Errorf("HT fraction = %v, want ~0.33", frac)
	}
	// Count exact-duplicate ads and label disagreement among them.
	dupAds, disagree, groups := 0, 0, 0
	for _, ords := range dupGroups {
		if len(ords) < 2 {
			continue
		}
		groups++
		dupAds += len(ords)
		base := ords[0] >= 4
		for _, o := range ords[1:] {
			if (o >= 4) != base {
				disagree++
				break
			}
		}
	}
	if dupAds < 100 {
		t.Errorf("too few duplicate ads: %d", dupAds)
	}
	if groups > 0 && (float64(disagree)/float64(groups) < 0.15 || float64(disagree)/float64(groups) > 0.75) {
		t.Errorf("disagreement rate = %v, want ~0.4", float64(disagree)/float64(groups))
	}
}

func TestClusterTraffickingProportions(t *testing.T) {
	c := ClusterTrafficking(ClusterTraffickingConfig{Seed: 8, Scale: 0.01})
	var spam, ht, normal int
	clusters := make(map[int]string)
	for _, d := range c.Docs {
		switch d.Account {
		case "spam":
			spam++
			clusters[d.ClusterLabel] = "spam"
		case "ht":
			ht++
			clusters[d.ClusterLabel] = "ht"
		default:
			normal++
			if d.ClusterLabel != -1 {
				t.Fatalf("normal ad with cluster %d", d.ClusterLabel)
			}
		}
	}
	// Paper proportions: spam:ht:normal = 6283:50985:99990.
	total := spam + ht + normal
	if total != c.Len() {
		t.Fatalf("accounting mismatch")
	}
	if !(normal > ht && ht > spam) {
		t.Errorf("proportions off: spam=%d ht=%d normal=%d", spam, ht, normal)
	}
	nSpamClusters, nHTClusters := 0, 0
	for _, kind := range clusters {
		if kind == "spam" {
			nSpamClusters++
		} else {
			nHTClusters++
		}
	}
	if nSpamClusters == 0 || nHTClusters == 0 {
		t.Errorf("clusters: spam=%d ht=%d", nSpamClusters, nHTClusters)
	}
	if nHTClusters <= nSpamClusters {
		t.Errorf("expected more HT clusters than spam clusters: %d vs %d", nHTClusters, nSpamClusters)
	}
}

// Property: generators are deterministic per seed and always produce
// non-empty text.
func TestGeneratorsDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		a := Trafficking10k(Trafficking10kConfig{Seed: seed, Size: 60})
		b := Trafficking10k(Trafficking10kConfig{Seed: seed, Size: 60})
		if !reflect.DeepEqual(a.Docs, b.Docs) {
			return false
		}
		for _, d := range a.Docs {
			if strings.TrimSpace(d.Text) == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
