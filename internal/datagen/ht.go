package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"infoshield/internal/corpus"
)

// Ad-domain word banks. Content is deliberately neutral "spa/massage
// service" language, matching the paper's description of the Cluster
// Trafficking data (ads from massage parlors) without reproducing any
// actual escort-ad text.
var (
	adNames    = []string{"mia", "lily", "anna", "sofia", "jade", "ruby", "nina", "emma", "chloe", "bella", "dana", "iris", "luna", "vera", "zoe", "cora"}
	adCities   = []string{"downtown", "midtown", "eastside", "westgate", "riverside", "lakeview", "hillcrest", "oakwood", "maple", "harbor"}
	adServices = []string{"relaxing", "soothing", "deep", "gentle", "professional", "private", "quiet", "luxury", "premium", "classic"}
	adOpeners  = []string{"new in town", "grand opening", "best in the city", "just arrived", "limited time", "available now", "back again", "special today"}
	adBodies   = []string{
		"sweet and friendly come see %s for a %s massage in %s call %s",
		"%s is here today %s spa experience near %s book at %s",
		"visit our %s studio ask for %s we are in %s phone %s",
		"treat yourself to a %s session with %s located %s contact %s",
	}
)

// htAdvertiser is one organized-activity source: a fixed ad template with
// name/time/price/phone slots, covering the paper's observation that one
// trafficker writes ads for 4-6 victims.
type htAdvertiser struct {
	opener string
	body   string // with four %s slots: service/name ordering per body
	pitch  string // advertiser-fixed description sentences
	suffix string
	names  []string // the advertiser's 4-6 victims
	city   string
	phone  string
}

func newHTAdvertiser(rng *rand.Rand) *htAdvertiser {
	nVictims := 4 + rng.Intn(3)
	names := make([]string, nVictims)
	for i := range names {
		names[i] = pick(rng, adNames)
	}
	suffix := ""
	if rng.Float64() < 0.5 {
		suffix = pick(rng, []string{"no texts please", "cash only", "ask about specials", "serious callers only"})
	}
	// Real ads run ~100+ tokens with only a handful of variable fields,
	// so the constant fraction dominates; the advertiser's fixed pitch
	// sentences reproduce that proportion.
	pitch := Sentence(rng, English) + " " + Sentence(rng, English)
	return &htAdvertiser{
		opener: pick(rng, adOpeners),
		body:   adBodies[rng.Intn(len(adBodies))],
		pitch:  pitch,
		suffix: suffix,
		names:  names,
		city:   pick(rng, adCities),
		phone:  Phone(rng),
	}
}

// emit renders one ad: constant skeleton with per-ad slot content (victim
// name, time, price; phone varies occasionally, as traffickers rotate
// numbers).
func (a *htAdvertiser) emit(rng *rand.Rand) string {
	phone := a.phone
	if rng.Float64() < 0.15 {
		phone = Phone(rng)
	}
	parts := []string{
		a.opener,
		a.pitch,
		fmt.Sprintf(a.body, pick(rng, adServices), pick(rng, a.names), a.city, phone),
	}
	if rng.Float64() < 0.7 {
		parts = append(parts, Time(rng))
	}
	if rng.Float64() < 0.7 {
		parts = append(parts, pick(rng, []string{"only", "just", "from"}), Price(rng), "special")
	}
	if a.suffix != "" {
		parts = append(parts, a.suffix)
	}
	text := strings.Join(parts, " ")
	if rng.Float64() < 0.2 {
		text = randomEdit(rng, text, English)
	}
	return text
}

// normalAd renders a benign one-off ad: grammar sentence plus ad flavor,
// with enough unique content (fresh phone numbers, names, prices) that
// normal ads rarely pair up.
func normalAd(rng *rand.Rand) string {
	parts := []string{Sentence(rng, English)}
	if rng.Float64() < 0.5 {
		parts = append(parts, pick(rng, adServices), "service", "in", pick(rng, adCities))
	}
	if rng.Float64() < 0.6 {
		parts = append(parts, "call", Phone(rng))
	}
	if rng.Float64() < 0.3 {
		parts = append(parts, Sentence(rng, English))
	}
	return strings.Join(parts, " ")
}

// spamAd builds one spam campaign text (near-exact duplicates at scale).
func spamCampaignText(rng *rand.Rand) string {
	return strings.Join([]string{
		pick(rng, adOpeners),
		Sentence(rng, English),
		"visit", URL(rng),
		"or call", Phone(rng), "today",
	}, " ")
}

// HTAdCluster returns n ads from a single synthetic advertiser — one
// organized-activity micro-cluster in isolation, used by the qualitative
// template demonstrations (Table XI) and the examples.
func HTAdCluster(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	adv := newHTAdvertiser(rng)
	ads := make([]string, n)
	for i := range ads {
		ads[i] = adv.emit(rng)
	}
	return ads
}

// NormalAds returns n independent benign ads (background documents).
func NormalAds(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	ads := make([]string, n)
	for i := range ads {
		ads[i] = normalAd(rng)
	}
	return ads
}

// Trafficking10kConfig parameterizes the Trafficking10k-style generator.
type Trafficking10kConfig struct {
	Seed int64
	// Size is the total ad count (default 10265, the real dataset's size).
	Size int
	// DuplicateFraction is the fraction of ads that are exact duplicates
	// of another ad (default 0.12, the paper's measurement).
	DuplicateFraction float64
	// DisagreementRate is the probability an exact-duplicate group gets
	// inconsistent ordinal labels (default 0.40, the paper's measurement).
	DisagreementRate float64
	// HTFraction is the fraction of ads that are trafficking (default
	// 0.327: 3360 of 10265 in the real data).
	HTFraction float64
}

func (c Trafficking10kConfig) withDefaults() Trafficking10kConfig {
	if c.Size == 0 {
		c.Size = 10265
	}
	if c.DuplicateFraction == 0 {
		c.DuplicateFraction = 0.12
	}
	if c.DisagreementRate == 0 {
		c.DisagreementRate = 0.40
	}
	if c.HTFraction == 0 {
		c.HTFraction = 0.327
	}
	return c
}

// Trafficking10k generates a noisily labeled ordinal (0-6) ad dataset with
// the real dataset's size and noise structure: HT ads come from templated
// advertisers (organized activity), non-HT ads are one-offs, a fixed
// fraction of ads are exact duplicates, and duplicate groups disagree on
// labels at the measured rate. Ordinal 0-3 maps to binary non-HT, 4-6 to
// HT (the paper's binarization).
func Trafficking10k(cfg Trafficking10kConfig) *corpus.Corpus {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &corpus.Corpus{}

	htTarget := int(float64(cfg.Size) * cfg.HTFraction)
	dupTarget := int(float64(cfg.Size) * cfg.DuplicateFraction)

	label := func(isHT, disagree bool) int {
		// Draw an ordinal consistent with the binary truth; a
		// "disagreeing" annotator flips across the 3/4 boundary.
		if isHT != disagree {
			return 4 + rng.Intn(3)
		}
		return rng.Intn(4)
	}

	// HT ads from templated advertisers, in groups (micro-clusters).
	cluster := 0
	for len(c.Docs) < htTarget {
		adv := newHTAdvertiser(rng)
		groupSize := 3 + rng.Intn(10)
		for g := 0; g < groupSize && len(c.Docs) < htTarget; g++ {
			c.Docs = append(c.Docs, corpus.Document{
				Text:         adv.emit(rng),
				Account:      fmt.Sprintf("advertiser-%d", cluster),
				Label:        true,
				ClusterLabel: cluster,
				Ordinal:      label(true, false),
			})
		}
		cluster++
	}
	// Benign one-off ads.
	for len(c.Docs) < cfg.Size-dupTarget {
		c.Docs = append(c.Docs, corpus.Document{
			Text:         normalAd(rng),
			Label:        false,
			ClusterLabel: -1,
			Ordinal:      label(false, false),
		})
	}
	// Exact duplicates: copy existing ads; with probability
	// DisagreementRate the copy's ordinal is re-drawn on the wrong side
	// of the binary boundary (the annotation noise the paper measured).
	// Reposting concentrates in the suspicious population (organized
	// activity reposts; individuals rarely do), so duplicate sources are
	// drawn 3:1 from labeled-HT ads.
	htEnd := htTarget // HT ads occupy the prefix before the shuffle below
	for len(c.Docs) < cfg.Size {
		var src corpus.Document
		if rng.Float64() < 0.75 {
			src = c.Docs[rng.Intn(htEnd)]
		} else {
			src = c.Docs[htEnd+rng.Intn(len(c.Docs)-htEnd)]
		}
		disagree := rng.Float64() < cfg.DisagreementRate
		dup := src
		dup.Ordinal = label(src.Label, disagree)
		c.Docs = append(c.Docs, dup)
	}
	rng.Shuffle(len(c.Docs), func(i, j int) { c.Docs[i], c.Docs[j] = c.Docs[j], c.Docs[i] })
	c.Renumber()
	return c
}

// ClusterTraffickingConfig parameterizes the Cluster-Trafficking-style
// generator. The paper's dataset: 157,258 ads = 6,283 spam (6 clusters) +
// 50,985 HT (96 massage-parlor clusters) + 99,990 normal.
type ClusterTraffickingConfig struct {
	Seed int64
	// Scale multiplies every population (default 1.0 reproduces the
	// paper's sizes; tests and benches use much smaller scales).
	Scale float64
}

// ClusterTrafficking generates the labeled-cluster ad corpus. Spam ads get
// ClusterLabel in [0, nSpam) and Label=true; HT ads get ClusterLabel in
// [nSpam, nSpam+nHT) and Label=true; normal ads get -1/false. Document
// Account distinguishes "spam"/"ht"/"normal" populations for Fig. 3.
func ClusterTrafficking(cfg ClusterTraffickingConfig) *corpus.Corpus {
	if cfg.Scale == 0 {
		cfg.Scale = 1.0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &corpus.Corpus{}

	scale := func(n int) int {
		v := int(float64(n)*cfg.Scale + 0.5)
		if v < 1 {
			v = 1
		}
		return v
	}
	const (
		paperSpamClusters = 6
		paperSpamAds      = 6283
		paperHTClusters   = 96
		paperHTAds        = 50985
		paperNormalAds    = 99990
	)
	spamAds := scale(paperSpamAds)
	htAds := scale(paperHTAds)
	normalAds := scale(paperNormalAds)
	spamClusters := paperSpamClusters
	htClusters := paperHTClusters
	if cfg.Scale < 1 {
		// Keep at least 2 ads per cluster at tiny scales.
		for spamClusters > 1 && spamAds/spamClusters < 2 {
			spamClusters--
		}
		for htClusters > 1 && htAds/htClusters < 2 {
			htClusters--
		}
	}

	cluster := 0
	// Spam: few huge clusters of near-exact duplicates.
	for s := 0; s < spamClusters; s++ {
		text := spamCampaignText(rng)
		size := spamAds / spamClusters
		if s < spamAds%spamClusters {
			size++
		}
		for k := 0; k < size; k++ {
			t := text
			if rng.Float64() < 0.05 {
				t = randomEdit(rng, t, English)
			}
			c.Docs = append(c.Docs, corpus.Document{
				Text: t, Account: "spam", Label: true,
				ClusterLabel: cluster, Ordinal: -1,
			})
		}
		cluster++
	}
	// HT: many medium clusters with slotted variation.
	for h := 0; h < htClusters; h++ {
		adv := newHTAdvertiser(rng)
		size := htAds / htClusters
		if h < htAds%htClusters {
			size++
		}
		for k := 0; k < size; k++ {
			c.Docs = append(c.Docs, corpus.Document{
				Text: adv.emit(rng), Account: "ht", Label: true,
				ClusterLabel: cluster, Ordinal: -1,
			})
		}
		cluster++
	}
	// Normal: unique one-offs.
	for k := 0; k < normalAds; k++ {
		c.Docs = append(c.Docs, corpus.Document{
			Text: normalAd(rng), Account: "normal", Label: false,
			ClusterLabel: -1, Ordinal: -1,
		})
	}
	rng.Shuffle(len(c.Docs), func(i, j int) { c.Docs[i], c.Docs[j] = c.Docs[j], c.Docs[i] })
	c.Renumber()
	return c
}
