package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Sentence generates one natural-looking sentence in the given language
// from a small probabilistic grammar: optional opener, subject-verb
// clause, one or two object phrases, optional adverb/closer. Content words
// are drawn uniformly from the language's bank, so two independently
// generated sentences share long n-grams only by coincidence.
func Sentence(rng *rand.Rand, lang Language) string {
	b := banks[lang]
	w := clause(rng, b)
	if rng.Float64() < 0.35 {
		// Compound sentence: human tweets are rarely minimal clauses, and
		// short clauses would near-duplicate each other by accident —
		// the false-positive source the generator must keep rare.
		w = append(w, clause(rng, b)...)
	}
	if rng.Float64() < 0.35 {
		w = append(w, pick(rng, b.closers))
	}
	return join(b, w)
}

// tailRate is the probability a content word is drawn from the language's
// procedural long-tail vocabulary instead of its hand bank. Human text has
// a huge rare tail (entities, slang, typos); without it, the ~60-word
// banks make df=2 content n-grams ubiquitous and the coarse document
// graph percolates into one giant component — which real tweet corpora do
// not do.
const tailRate = 0.5

// clause emits one subject-verb-object(s) clause.
func clause(rng *rand.Rand, b *bank) []string {
	var w []string
	if rng.Float64() < 0.5 {
		w = append(w, pick(rng, b.openers))
	}
	w = append(w, pick(rng, b.pronouns), content(rng, b, b.verbs))
	w = append(w, objectPhrase(rng, b)...)
	if rng.Float64() < 0.75 {
		w = append(w, pick(rng, b.preps))
		w = append(w, objectPhrase(rng, b)...)
	}
	if rng.Float64() < 0.5 {
		w = append(w, pick(rng, b.adverbs))
	}
	return w
}

// content draws a content word: usually from the bank, sometimes from the
// procedural tail.
func content(rng *rand.Rand, b *bank, class []string) string {
	if rng.Float64() < tailRate {
		return tailWord(rng, b)
	}
	return pick(rng, class)
}

// latinSyllables and kanaSyllables are the building blocks of the
// procedural tail vocabularies (~400k distinct forms).
var latinSyllables = []string{
	"ba", "be", "bi", "bo", "bu", "da", "de", "di", "do", "du",
	"ka", "ke", "ki", "ko", "ku", "la", "le", "li", "lo", "lu",
	"ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
	"ra", "re", "ri", "ro", "ru", "sa", "se", "si", "so", "su",
	"ta", "te", "ti", "to", "tu", "va", "ve", "vi", "vo", "vu",
}

var kanaSyllables = []string{
	"か", "き", "く", "け", "こ", "さ", "し", "す", "せ", "そ",
	"た", "ち", "つ", "て", "と", "な", "に", "ぬ", "ね", "の",
	"ま", "み", "む", "め", "も", "ら", "り", "る", "れ", "ろ",
}

// tailWord composes a plausible rare word from the language's syllable
// inventory.
func tailWord(rng *rand.Rand, b *bank) string {
	syll := latinSyllables
	if !b.spaced {
		syll = kanaSyllables
	}
	n := 3 + rng.Intn(2)
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(syll[rng.Intn(len(syll))])
	}
	return sb.String()
}

// objectPhrase returns "det [adj] noun".
func objectPhrase(rng *rand.Rand, b *bank) []string {
	w := []string{pick(rng, b.dets)}
	if rng.Float64() < 0.85 {
		w = append(w, content(rng, b, b.adjectives))
	}
	return append(w, content(rng, b, b.nouns))
}

// join renders words according to the language's spacing convention.
func join(b *bank, words []string) string {
	if b.spaced {
		return strings.Join(words, " ")
	}
	return strings.Join(words, "")
}

// URL fabricates a short link in the style of tweet-shortened URLs.
func URL(rng *rand.Rand) string {
	const letters = "abcdefghijklmnopqrstuvwxyz0123456789"
	var sb strings.Builder
	sb.WriteString("httptco")
	for i := 0; i < 8; i++ {
		sb.WriteByte(letters[rng.Intn(len(letters))])
	}
	return sb.String()
}

// Handle fabricates an @-mention-style account handle (the tokenizer
// strips the @, so we emit the bare handle).
func Handle(rng *rand.Rand) string {
	first := []string{"sun", "moon", "star", "blue", "red", "max", "ace", "sky", "neo", "zen"}
	return fmt.Sprintf("%s%s%d", pick(rng, first), pick(rng, first), rng.Intn(1000))
}

// Phone fabricates a phone number in the 123-456.7890 style the paper's
// toy scam ads use (one token after tokenization).
func Phone(rng *rand.Rand) string {
	return fmt.Sprintf("%03d-%03d.%04d", rng.Intn(900)+100, rng.Intn(900)+100, rng.Intn(10000))
}

// Price fabricates a small dollar amount token.
func Price(rng *rand.Rand) string {
	return fmt.Sprintf("%d", []int{3, 5, 10, 20, 25, 40, 50, 60, 80, 100, 120, 150, 200}[rng.Intn(13)])
}

// Time fabricates a time-of-day token pair ("until 9pm", "from 10am").
func Time(rng *rand.Rand) string {
	h := rng.Intn(12) + 1
	ampm := [2]string{"am", "pm"}[rng.Intn(2)]
	form := rng.Intn(3)
	switch form {
	case 0:
		return fmt.Sprintf("until %d%s", h, ampm)
	case 1:
		return fmt.Sprintf("from %d%s", h, ampm)
	default:
		return fmt.Sprintf("%d %s", h, strings.ToUpper(ampm))
	}
}
