package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Drifting-campaign document streams. The lifecycle benchmarks need an
// unbounded stream whose active campaign population keeps turning over:
// new spam campaigns appear, run for a while, and go quiet — the shape
// that makes an unbounded template set grow without bound and makes
// age-out/eviction meaningful. DriftStream synthesizes that stream as a
// pure function: Doc(k) depends only on (Seed, k), so two processes — or
// one process and its replayed write-ahead log — generate byte-identical
// streams without sharing generator state.

// DriftConfig parameterizes DriftStream. Zero values select defaults.
type DriftConfig struct {
	Seed       int64
	Active     int // campaigns active at any moment (default 12)
	ChurnEvery int // documents between campaign births (default 384)
	MinLen     int // min campaign template length (default 10)
	MaxLen     int // max campaign template length (default 14)
	Slots      int // wildcard slots per campaign (default 3)
	NoisePer   int // one in NoisePer documents is noise (default 4)
}

func (c DriftConfig) withDefaults() DriftConfig {
	if c.Active <= 0 {
		c.Active = 12
	}
	if c.ChurnEvery <= 0 {
		c.ChurnEvery = 384
	}
	if c.MinLen <= 0 {
		c.MinLen = 10
	}
	if c.MaxLen < c.MinLen {
		c.MaxLen = c.MinLen + 4
	}
	if c.Slots <= 0 {
		c.Slots = 3
	}
	if c.Slots >= c.MinLen-2 {
		c.Slots = c.MinLen - 3
	}
	if c.NoisePer <= 0 {
		c.NoisePer = 4
	}
	return c
}

// DriftStream is a deterministic drifting-campaign document stream.
type DriftStream struct {
	cfg DriftConfig
}

// NewDriftStream builds a stream generator; it holds no mutable state,
// so one value can serve any number of goroutines.
func NewDriftStream(cfg DriftConfig) *DriftStream {
	return &DriftStream{cfg: cfg.withDefaults()}
}

// Campaign returns campaign c's template words and wild mask, purely
// from (Seed, c) — the same layout ScaleTemplates emits.
func (s *DriftStream) Campaign(c int) ScaleTemplate {
	cfg := s.cfg
	rng := rand.New(rand.NewSource(cfg.Seed*1000003 + int64(c)*7919))
	n := cfg.MinLen + rng.Intn(cfg.MaxLen-cfg.MinLen+1)
	words := make([]string, n)
	wild := make([]bool, n)
	for k := 0; k < cfg.Slots; k++ {
		for {
			p := rng.Intn(n)
			if !wild[p] {
				wild[p] = true
				words[p] = "_"
				break
			}
		}
	}
	commons := 2
	for p := 0; p < n; p++ {
		if wild[p] {
			continue
		}
		if commons > 0 {
			words[p] = pick(rng, scaleCommons)
			commons--
			continue
		}
		words[p] = fmt.Sprintf("c%dw%d", c, rng.Intn(40))
	}
	return ScaleTemplate{Words: words, Wild: wild}
}

// Doc renders document k of the stream. The active campaign window at
// document k is [k/ChurnEvery, k/ChurnEvery+Active): every ChurnEvery
// documents one campaign is born and the oldest goes quiet, so over a
// long run the set of campaigns ever seen grows linearly while the live
// set stays constant-sized. One in NoisePer documents matches nothing.
func (s *DriftStream) Doc(k int) string {
	cfg := s.cfg
	rng := rand.New(rand.NewSource(cfg.Seed*499979 + int64(k)))
	if rng.Intn(cfg.NoisePer) == 0 {
		n := 8 + rng.Intn(7)
		words := make([]string, n)
		for i := range words {
			if i%5 == 4 {
				words[i] = pick(rng, scaleCommons)
				continue
			}
			words[i] = fmt.Sprintf("z%d_%d", k, i)
		}
		return strings.Join(words, " ")
	}
	c := k/cfg.ChurnEvery + rng.Intn(cfg.Active)
	t := s.Campaign(c)
	words := make([]string, 0, len(t.Words))
	for p, w := range t.Words {
		if t.Wild[p] {
			words = append(words, fmt.Sprintf("x%d_%d", k, p))
			continue
		}
		words = append(words, w)
	}
	return strings.Join(words, " ")
}

// Docs renders documents [lo, hi) of the stream.
func (s *DriftStream) Docs(lo, hi int) []string {
	out := make([]string, 0, hi-lo)
	for k := lo; k < hi; k++ {
		out = append(out, s.Doc(k))
	}
	return out
}
