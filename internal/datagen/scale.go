package datagen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Scale-benchmark template sets. InfoShield's deployment story is a live
// template set of 10⁴–10⁵ active campaigns spread over many markets
// (cities, platforms, languages), not the few hundred templates a single
// mined corpus produces. ScaleTemplates synthesizes that shape directly —
// templates, not documents — so scaling benchmarks can bulk-load a
// detector at 1k/10k/100k templates without mining millions of documents
// first. The vocabulary structure mirrors real multi-market corpora:
// each template mixes a market-local word bank (campaign-discriminating
// rare tokens, short postings chains) with a tiny shared serving
// vocabulary ("call now", "visit today" — tokens carried by thousands of
// templates, exercising the matcher's saturated-token tier).

// scaleCommons is the shared serving vocabulary every market reuses.
var scaleCommons = []string{
	"call", "now", "visit", "today", "online", "open", "new",
	"best", "special", "offer", "book", "here",
}

// scaleBankSize is the per-market word-bank size: ~100 templates per
// market drawing ~10 words each keeps any one market word's postings
// chain short, which is the multi-market discrimination the tiered index
// exploits.
const scaleBankSize = 240

// ScaleConfig parameterizes ScaleTemplates. Zero values select defaults.
type ScaleConfig struct {
	Seed      int64
	Templates int // total templates (default 1000)
	Markets   int // market count (default Templates/100, min 1)
	MinLen    int // min template length, constants + slots (default 12)
	MaxLen    int // max template length (default 18)
	Slots     int // wildcard slots per template (default 3)
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if c.Templates <= 0 {
		c.Templates = 1000
	}
	if c.Markets <= 0 {
		c.Markets = c.Templates / 100
		if c.Markets < 1 {
			c.Markets = 1
		}
	}
	if c.MinLen <= 0 {
		c.MinLen = 12
	}
	if c.MaxLen < c.MinLen {
		c.MaxLen = c.MinLen + 6
	}
	if c.Slots <= 0 {
		c.Slots = 3
	}
	if c.Slots >= c.MinLen-2 {
		c.Slots = c.MinLen - 3 // keep room for commons + discriminating words
	}
	return c
}

// ScaleTemplate is one synthesized campaign template: Words and Wild run
// in lockstep, with Words at wild positions holding a placeholder the
// loader ignores — the exact shape stream.Detector.Register consumes.
type ScaleTemplate struct {
	Words []string
	Wild  []bool
}

// ScaleSet is a generated multi-market template set plus the probe
// generators that exercise it.
type ScaleSet struct {
	Templates []ScaleTemplate
	cfg       ScaleConfig
}

// marketWord renders word k of a market's local bank.
func marketWord(market, k int) string {
	return fmt.Sprintf("m%dw%d", market, k)
}

// ScaleTemplates deterministically synthesizes cfg.Templates templates
// round-robined over cfg.Markets markets: per template, two shared
// serving words, cfg.Slots wildcard slots at random positions, and
// market-bank words (drawn with replacement, so repeated tokens exercise
// multiset overlap counts) everywhere else.
func ScaleTemplates(cfg ScaleConfig) *ScaleSet {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	set := &ScaleSet{Templates: make([]ScaleTemplate, cfg.Templates), cfg: cfg}
	for ti := range set.Templates {
		market := ti % cfg.Markets
		n := cfg.MinLen + rng.Intn(cfg.MaxLen-cfg.MinLen+1)
		words := make([]string, n)
		wild := make([]bool, n)
		for k := 0; k < cfg.Slots; k++ {
			// Random distinct slot positions via retry — n >> Slots.
			for {
				p := rng.Intn(n)
				if !wild[p] {
					wild[p] = true
					words[p] = "_" // placeholder; loaders ignore wild words
					break
				}
			}
		}
		commons := 2
		for p := 0; p < n; p++ {
			if wild[p] {
				continue
			}
			if commons > 0 {
				words[p] = pick(rng, scaleCommons)
				commons--
				continue
			}
			words[p] = marketWord(market, rng.Intn(scaleBankSize))
		}
		set.Templates[ti] = ScaleTemplate{Words: words, Wild: wild}
	}
	return set
}

// Probe renders a document that should match template ti: constants
// mostly verbatim, slots filled with fresh variable content, and a 20%
// chance of one dropped or substituted constant (near-duplicates, not
// carbon copies — the steady-state serve distribution).
func (s *ScaleSet) Probe(rng *rand.Rand, ti int) string {
	t := s.Templates[ti]
	words := make([]string, 0, len(t.Words))
	for p, w := range t.Words {
		if t.Wild[p] {
			words = append(words, fmt.Sprintf("x%06d", rng.Intn(1000000)))
			continue
		}
		words = append(words, w)
	}
	if rng.Intn(5) == 0 && len(words) > 3 {
		p := rng.Intn(len(words))
		if rng.Intn(2) == 0 {
			words = append(words[:p], words[p+1:]...)
		} else {
			words[p] = fmt.Sprintf("y%06d", rng.Intn(1000000))
		}
	}
	return strings.Join(words, " ")
}

// Noise renders a document matching nothing: unique-ish tokens with a
// couple of shared serving words mixed in, so noise probes exercise the
// saturated-token credit path rather than bypassing the index entirely.
func (s *ScaleSet) Noise(rng *rand.Rand) string {
	n := 8 + rng.Intn(7)
	words := make([]string, n)
	for i := range words {
		if i%5 == 4 {
			words[i] = pick(rng, scaleCommons)
			continue
		}
		words[i] = fmt.Sprintf("z%08d", rng.Intn(100000000))
	}
	return strings.Join(words, " ")
}
