package template

import "infoshield/internal/align"

// PieceOp classifies a fragment of a document relative to its template,
// matching the five colors of the paper's Table IV rendering.
type PieceOp int8

const (
	// Const is a token matching the template constant at its position.
	Const PieceOp = iota
	// SlotFill is a token stored as slot content.
	SlotFill
	// Ins is an inserted token (unmatched, not absorbed by a slot).
	Ins
	// Del marks a template position the document omits (no token).
	Del
	// Sub is a token substituted for the template constant.
	Sub
)

// String names the op for debugging and plain-text rendering.
func (op PieceOp) String() string {
	switch op {
	case Const:
		return "const"
	case SlotFill:
		return "slot"
	case Ins:
		return "ins"
	case Del:
		return "del"
	case Sub:
		return "sub"
	}
	return "?"
}

// Piece is one maximal run of same-op tokens in a document, in reading
// order. Del pieces carry the omitted template tokens instead.
type Piece struct {
	Op     PieceOp
	Tokens []int
}

// DocPieces decomposes row into display pieces: constants, slot fills,
// insertions, deletions, and substitutions, in document order, with
// adjacent same-op tokens merged into one piece.
func (f *Fit) DocPieces(row int) []Piece {
	var pieces []Piece
	emit := func(op PieceOp, tok int) {
		if n := len(pieces); n > 0 && pieces[n-1].Op == op {
			pieces[n-1].Tokens = append(pieces[n-1].Tokens, tok)
			return
		}
		pieces = append(pieces, Piece{Op: op, Tokens: []int{tok}})
	}
	r := f.M.Rows[row]
	nc := len(f.Cols)
	for c, tok := range r {
		p := f.pos[c]
		if f.isCons[c] {
			switch {
			case f.Slots[p]:
				if tok != align.Gap {
					emit(SlotFill, tok)
				}
			case tok == align.Gap:
				emit(Del, f.Tokens[p])
			case tok == f.Tokens[p]:
				emit(Const, tok)
			default:
				emit(Sub, tok)
			}
			continue
		}
		if tok == align.Gap {
			continue
		}
		if f.InsSlots[p] || (p < nc && f.Slots[p]) {
			emit(SlotFill, tok)
			continue
		}
		emit(Ins, tok)
	}
	return pieces
}

// SlotFills returns row's content per slot, in template reading order
// (the same slot order as DocStats' SlotWords): SlotFills(row)[s] is the
// token-id sequence document row stores in slot s, possibly empty.
func (f *Fit) SlotFills(row int) [][]int {
	insIdx, convIdx, total := f.slotIndex()
	fills := make([][]int, total)
	r := f.M.Rows[row]
	nc := len(f.Cols)
	for c, tok := range r {
		if tok == align.Gap {
			continue
		}
		p := f.pos[c]
		if f.isCons[c] {
			if f.Slots[p] {
				fills[convIdx[p]] = append(fills[convIdx[p]], tok)
			}
			continue
		}
		switch {
		case insIdx[p] >= 0:
			fills[insIdx[p]] = append(fills[insIdx[p]], tok)
		case p < nc && f.Slots[p]:
			fills[convIdx[p]] = append(fills[convIdx[p]], tok)
		}
	}
	return fills
}

// Template is the finished, immutable template: token ids with slot marks,
// in reading order. Insert-slots carry token id -1 (they have no reference
// word); convert-slots keep the majority token for reference, but a
// renderer shows every slot as "*".
type Template struct {
	TokenIDs []int
	IsSlot   []bool
}

// Template freezes the fit into its final template value: insert-slots and
// consensus positions interleaved in reading order.
func (f *Fit) Template() Template {
	var t Template
	nc := len(f.Cols)
	for x := 0; x <= nc; x++ {
		if f.InsSlots[x] {
			t.TokenIDs = append(t.TokenIDs, -1)
			t.IsSlot = append(t.IsSlot, true)
		}
		if x < nc {
			t.TokenIDs = append(t.TokenIDs, f.Tokens[x])
			t.IsSlot = append(t.IsSlot, f.Slots[x])
		}
	}
	return t
}

// Len returns the template length.
func (t Template) Len() int { return len(t.TokenIDs) }

// NumSlots counts slot positions.
func (t Template) NumSlots() int {
	n := 0
	for _, s := range t.IsSlot {
		if s {
			n++
		}
	}
	return n
}
