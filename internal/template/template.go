// Package template turns a multiple-sequence alignment into an InfoShield
// template: the consensus selection Sel(A,h) (Section IV-B.2), per-document
// encoding statistics against the template, slot detection (Algorithm 3),
// and the piece decomposition the visualizer renders (Table IV's
// constant / slot / insertion / deletion / substitution coloring).
//
// Slots come in two forms, both MDL-tested by Algorithm 3's acceptance
// rule (enable iff the data cost drops):
//
//   - insert-slots sit *between* consensus tokens (or at either end) and
//     absorb the insertion words that pool there — this is what produces
//     the paper's "This is a great *, and the * dollar price is great":
//     the variant words were excluded from the consensus by the threshold
//     search and would otherwise be per-document insertions;
//   - convert-slots turn an existing consensus position into a slot,
//     absorbing the substitutions at that position (every document then
//     stores its token there as slot content).
package template

import (
	"infoshield/internal/align"
	"infoshield/internal/mdl"
	"infoshield/internal/search"
)

// Fit binds an alignment matrix to a consensus selection and slots. It is
// the working representation of a template-in-progress.
type Fit struct {
	M *align.Matrix
	// Cols[p] is the matrix column of consensus position p (ascending).
	Cols []int
	// Tokens[p] is the majority token at consensus position p.
	Tokens []int
	// Slots[p] marks consensus position p as a convert-slot.
	Slots []bool
	// InsSlots[x], x in [0, len(Cols)], marks an insert-slot in the gap
	// before consensus position x (x = len(Cols) is the trailing gap).
	InsSlots []bool

	isCons []bool // per matrix column: part of the consensus?
	pos    []int  // per matrix column: consensus position (pooling target)

	// DataCost scratch: slot index maps and the per-row slot-word counts,
	// reused across rows and Reset calls (DataCost is the inner loop of
	// both the consensus search and slot detection).
	insIdx, convIdx, slotWords []int
}

// New builds the consensus Sel(m, h): consensus positions are the matrix
// columns whose majority token occurs more than h times. No slots yet.
func New(m *align.Matrix, h int) *Fit {
	f := &Fit{}
	f.Reset(m, h)
	return f
}

func growInts(p *[]int, n int) []int {
	if cap(*p) < n {
		*p = make([]int, n)
	}
	*p = (*p)[:n]
	return *p
}

func growBools(p *[]bool, n int) []bool {
	if cap(*p) < n {
		*p = make([]bool, n)
	}
	*p = (*p)[:n]
	return *p
}

// Reset rebuilds f as the consensus Sel(m, h) with no slots, reusing f's
// buffers. Equivalent to *f = *New(m, h) without the allocations; the
// dichotomous search calls this once per probed threshold.
func (f *Fit) Reset(m *align.Matrix, h int) {
	f.M = m
	cols := m.NumCols()
	f.isCons = growBools(&f.isCons, cols)
	f.pos = growInts(&f.pos, cols)
	f.Cols = f.Cols[:0]
	f.Tokens = f.Tokens[:0]
	for c := 0; c < cols; c++ {
		tok, cnt, ok := m.Majority(c)
		f.pos[c] = len(f.Cols) // pooling target: next consensus position
		f.isCons[c] = ok && cnt > h
		if f.isCons[c] {
			f.Cols = append(f.Cols, c)
			f.Tokens = append(f.Tokens, tok)
		}
	}
	f.Slots = growBools(&f.Slots, len(f.Cols))
	for i := range f.Slots {
		f.Slots[i] = false
	}
	f.InsSlots = growBools(&f.InsSlots, len(f.Cols)+1)
	for i := range f.InsSlots {
		f.InsSlots[i] = false
	}
}

// Len returns the template length l_i: consensus positions plus
// insert-slot positions.
func (f *Fit) Len() int {
	n := len(f.Cols)
	for _, s := range f.InsSlots {
		if s {
			n++
		}
	}
	return n
}

// NumSlots returns the total number of slot positions (both kinds).
func (f *Fit) NumSlots() int {
	n := 0
	for _, s := range f.Slots {
		if s {
			n++
		}
	}
	for _, s := range f.InsSlots {
		if s {
			n++
		}
	}
	return n
}

// TemplateStats summarizes the fit for the model cost C(M).
func (f *Fit) TemplateStats() mdl.TemplateStats {
	return mdl.TemplateStats{Length: f.Len(), Slots: f.NumSlots()}
}

// slotIndex returns, for each gap x, the slot index of an enabled
// insert-slot (else -1), and for each consensus position p, the slot index
// of an enabled convert-slot (else -1), plus the slot count. Slot order is
// template reading order.
func (f *Fit) slotIndex() (insIdx, convIdx []int, total int) {
	nc := len(f.Cols)
	insIdx = growInts(&f.insIdx, nc+1)
	convIdx = growInts(&f.convIdx, nc)
	for x := 0; x <= nc; x++ {
		insIdx[x] = -1
		if f.InsSlots[x] {
			insIdx[x] = total
			total++
		}
		if x < nc {
			convIdx[x] = -1
			if f.Slots[x] {
				convIdx[x] = total
				total++
			}
		}
	}
	return insIdx, convIdx, total
}

// DocStats computes row's encoding statistics against the template:
// alignment length, unmatched operation count, added (vocab-indexed)
// words, and per-slot word counts.
//
// Pooling convention: an insertion in a non-consensus column pools to the
// gap before the next consensus position; if that gap has an insert-slot
// (or the following position is a convert-slot) the inserted word joins
// the slot content instead of being an unmatched operation. A mismatching
// token at a convert-slot position is likewise slot content.
func (f *Fit) DocStats(row int) mdl.AlignStats {
	insIdx, convIdx, total := f.slotIndex()
	return f.docStats(row, insIdx, convIdx, make([]int, total))
}

// docStats is DocStats against a caller-provided (cleared here) slotWords
// buffer and the precomputed slot index maps — the allocation-free inner
// loop of DataCost. The returned stats alias slotWords.
func (f *Fit) docStats(row int, insIdx, convIdx, slotWords []int) mdl.AlignStats {
	for i := range slotWords {
		slotWords[i] = 0
	}
	stats := mdl.AlignStats{}
	r := f.M.Rows[row]
	nc := len(f.Cols)
	plainInserts := 0
	for c, tok := range r {
		p := f.pos[c]
		if f.isCons[c] {
			switch {
			case f.Slots[p]:
				if tok != align.Gap {
					slotWords[convIdx[p]]++
				}
			case tok == align.Gap: // deletion
				stats.Unmatched++
			case tok == f.Tokens[p]: // match
			default: // substitution
				stats.Unmatched++
				stats.AddedWords++
			}
			continue
		}
		// Non-consensus column: only insertions matter.
		if tok == align.Gap {
			continue
		}
		switch {
		case insIdx[p] >= 0:
			slotWords[insIdx[p]]++
		case p < nc && f.Slots[p]:
			slotWords[convIdx[p]]++
		default:
			stats.Unmatched++
			stats.AddedWords++
			plainInserts++
		}
	}
	stats.AlignLen = f.Len() + plainInserts
	stats.SlotWords = slotWords
	return stats
}

// DataCost returns C(Di | this template): the summed per-document cost of
// every row, assuming numTemplates templates exist in the model.
func (f *Fit) DataCost(numTemplates, vocabSize int) float64 {
	insIdx, convIdx, slots := f.slotIndex()
	slotWords := growInts(&f.slotWords, slots)
	total := 0.0
	for row := range f.M.Rows {
		total += mdl.DataCostMatched(f.docStats(row, insIdx, convIdx, slotWords), numTemplates, vocabSize)
	}
	return total
}

// TotalCost returns DataCost plus this template's own share of the model
// cost (its Eq. 2 terms, without the global ⟨t⟩).
func (f *Fit) TotalCost(numTemplates, vocabSize int) float64 {
	ts := f.TemplateStats()
	model := mdl.Universal(ts.Length) +
		float64(ts.Length-ts.Slots)*mdl.WordCost(vocabSize) +
		float64(1+ts.Slots)*mdl.Lg(float64(ts.Length))
	return model + f.DataCost(numTemplates, vocabSize)
}

// ConsensusSearch runs Algorithm 2: dichotomous search for the support
// threshold h* in [0, n-1] minimizing C(Di|Sel(A,h)), returning the fit at
// h*. numTemplates is the current model's template count (for lg t terms).
func ConsensusSearch(m *align.Matrix, numTemplates, vocabSize int) *Fit {
	f := New(m, 0)
	n := m.NumRows()
	if n == 0 {
		return f
	}
	h := search.Dichotomous(0, n-1, func(h int) float64 {
		f.Reset(m, h)
		return f.TotalCost(numTemplates, vocabSize)
	})
	f.Reset(m, h)
	return f
}

// pools returns, per gap x in [0, len(Cols)], the number of insertion
// words pooling there, and per consensus position p, the number of
// substitution words — Algorithm 3's slot candidates.
func (f *Fit) pools() (ins []int, subs []int) {
	nc := len(f.Cols)
	ins = make([]int, nc+1)
	subs = make([]int, nc)
	for _, r := range f.M.Rows {
		for c, tok := range r {
			if tok == align.Gap {
				continue
			}
			p := f.pos[c]
			if f.isCons[c] {
				if tok != f.Tokens[p] {
					subs[p]++
				}
				continue
			}
			ins[p]++
		}
	}
	return ins, subs
}

// DetectSlots runs Algorithm 3: for every gap with pooled insertions, try
// an insert-slot; for every consensus position with substitutions, try a
// convert-slot. Each is kept iff it lowers the data cost C(Di|Ti).
// Greedy, in template reading order, per the paper's pseudocode (which
// compares data costs; the template-level acceptance in Algorithm 4 still
// charges the slots' model-side cost).
func (f *Fit) DetectSlots(numTemplates, vocabSize int) {
	nc := len(f.Cols)
	if nc == 0 {
		return
	}
	ins, subs := f.pools()
	cur := f.DataCost(numTemplates, vocabSize)
	try := func(flag *bool) {
		*flag = true
		if with := f.DataCost(numTemplates, vocabSize); with < cur {
			cur = with
		} else {
			*flag = false
		}
	}
	for x := 0; x <= nc; x++ {
		if ins[x] > 0 {
			try(&f.InsSlots[x])
		}
		if x < nc && subs[x] > 0 && !f.InsSlots[x] {
			try(&f.Slots[x])
		}
	}
}
