package template

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"infoshield/internal/align"
	"infoshield/internal/mdl"
	"infoshield/internal/poa"
)

const (
	testV = 1 << 12 // generic vocabulary size
	toyV  = 30      // the toy example's own tiny vocabulary (slots pay off)
)

// toyMatrix aligns the paper's Table II toy docs (ids per poa tests).
func toyMatrix() *align.Matrix {
	return poa.Build([][]int{
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 3},
		{0, 1, 2, 3, 10, 5, 6, 11, 8, 9, 1, 3},
		{0, 1, 2, 3, 12, 5, 6, 13, 8, 9, 1, 3},
	})
}

func TestNewFullConsensus(t *testing.T) {
	m := toyMatrix()
	f := New(m, 0) // h=0 keeps every column
	if f.Len() != 12 {
		t.Fatalf("Len = %d, want 12", f.Len())
	}
	if f.NumSlots() != 0 {
		t.Errorf("fresh fit has %d slots", f.NumSlots())
	}
}

func TestNewStrictConsensus(t *testing.T) {
	m := toyMatrix()
	f := New(m, 2) // only unanimous columns (count 3 > 2)
	// 10 of 12 columns are unanimous (product and price differ).
	if f.Len() != 10 {
		t.Fatalf("Len = %d, want 10", f.Len())
	}
}

func TestDocStatsExactMatch(t *testing.T) {
	seq := []int{1, 2, 3, 4, 5}
	m := poa.Build([][]int{seq, seq})
	f := New(m, 0)
	for row := 0; row < 2; row++ {
		s := f.DocStats(row)
		if s.Unmatched != 0 || s.AddedWords != 0 || s.AlignLen != 5 {
			t.Errorf("row %d stats = %+v", row, s)
		}
	}
}

func TestDocStatsSubstitution(t *testing.T) {
	m := poa.Build([][]int{{1, 2, 3}, {1, 9, 3}})
	f := New(m, 1) // majority: all three columns have count>=1... middle has 1,1
	// middle column majority count is 1, not > 1, so it's excluded: both
	// rows' middle tokens become insertions pooling at position 1.
	if f.Len() != 2 {
		t.Fatalf("Len = %d, want 2", f.Len())
	}
	s := f.DocStats(0)
	if s.Unmatched != 1 || s.AddedWords != 1 || s.AlignLen != 3 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDocStatsDeletion(t *testing.T) {
	m := poa.Build([][]int{{1, 2, 3}, {1, 3}, {1, 2, 3}})
	f := New(m, 0)
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	s := f.DocStats(1)
	if s.Unmatched != 1 || s.AddedWords != 0 {
		t.Errorf("deletion stats = %+v", s)
	}
	if s.AlignLen != 3 {
		t.Errorf("AlignLen = %d, want 3 (deletion occupies a column)", s.AlignLen)
	}
}

func TestSlotAbsorbsVariation(t *testing.T) {
	m := toyMatrix()
	f := New(m, 0)
	before := f.DataCost(1, toyV)
	f.DetectSlots(1, toyV)
	after := f.DataCost(1, toyV)
	if after > before {
		t.Errorf("DetectSlots increased data cost: %v -> %v", before, after)
	}
	if f.NumSlots() != 2 {
		t.Errorf("slots = %d, want 2 (product and price)", f.NumSlots())
	}
	// With slots on, the toy docs have no unmatched operations left.
	for row := 0; row < 3; row++ {
		s := f.DocStats(row)
		if s.Unmatched != 0 {
			t.Errorf("row %d still has %d unmatched ops: %+v", row, s.Unmatched, s)
		}
		if len(s.SlotWords) != 2 || s.SlotWords[0] != 1 || s.SlotWords[1] != 1 {
			t.Errorf("row %d slot words = %v", row, s.SlotWords)
		}
	}
}

func TestDetectSlotsLeavesUniformAlone(t *testing.T) {
	seq := []int{1, 2, 3, 4, 5, 6}
	m := poa.Build([][]int{seq, seq, seq})
	f := New(m, 0)
	f.DetectSlots(1, testV)
	if f.NumSlots() != 0 {
		t.Errorf("uniform cluster got %d slots", f.NumSlots())
	}
}

func TestConsensusSearchPicksGoodThreshold(t *testing.T) {
	m := toyMatrix()
	f := ConsensusSearch(m, 1, testV)
	got := f.TotalCost(1, testV)
	// Compare against the exhaustive best.
	best := got
	for h := 0; h < 3; h++ {
		if c := New(m, h).TotalCost(1, testV); c < best {
			best = c
		}
	}
	if got > best {
		t.Errorf("ConsensusSearch cost %v, exhaustive best %v", got, best)
	}
}

func TestConsensusSearchEmpty(t *testing.T) {
	f := ConsensusSearch(&align.Matrix{}, 1, testV)
	if f.Len() != 0 {
		t.Errorf("empty matrix Len = %d", f.Len())
	}
}

func TestDocPiecesToyExample(t *testing.T) {
	m := toyMatrix()
	f := New(m, 0)
	f.DetectSlots(1, toyV)
	pieces := f.DocPieces(0)
	// Expected: const run, slot(soap), const run, slot(5), const run.
	var ops []PieceOp
	for _, p := range pieces {
		ops = append(ops, p.Op)
	}
	want := []PieceOp{Const, SlotFill, Const, SlotFill, Const}
	if !reflect.DeepEqual(ops, want) {
		t.Fatalf("ops = %v, want %v", ops, want)
	}
	if !reflect.DeepEqual(pieces[1].Tokens, []int{4}) {
		t.Errorf("slot 1 fill = %v", pieces[1].Tokens)
	}
}

func TestDocPiecesReconstruction(t *testing.T) {
	// Every non-Del piece token, concatenated, is the original document.
	m := toyMatrix()
	f := New(m, 0)
	f.DetectSlots(1, toyV)
	for row := 0; row < 3; row++ {
		var got []int
		for _, p := range f.DocPieces(row) {
			if p.Op != Del {
				got = append(got, p.Tokens...)
			}
		}
		if want := m.Sequence(row); !reflect.DeepEqual(got, want) {
			t.Errorf("row %d reconstruction = %v, want %v", row, got, want)
		}
	}
}

func TestTemplateFreeze(t *testing.T) {
	m := toyMatrix()
	f := New(m, 0)
	f.DetectSlots(1, toyV)
	tpl := f.Template()
	if tpl.Len() != f.Len() || tpl.NumSlots() != f.NumSlots() {
		t.Errorf("frozen template %d/%d, fit %d/%d",
			tpl.Len(), tpl.NumSlots(), f.Len(), f.NumSlots())
	}
	// Mutating the fit afterwards must not affect the frozen value.
	f.Slots[0] = true
	if tpl.IsSlot[0] {
		t.Error("frozen template aliases fit storage")
	}
}

// Property: DocStats agrees with the piece decomposition on the counts of
// unmatched operations and slot words, for random near-duplicate clusters.
func TestStatsAgreeWithPieces(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := make([]int, 12)
		for i := range base {
			base[i] = i + 50
		}
		seqs := [][]int{base}
		for k := 0; k < 4; k++ {
			dup := append([]int(nil), base...)
			for e := 0; e < rng.Intn(3); e++ {
				switch rng.Intn(3) {
				case 0:
					dup[rng.Intn(len(dup))] = 200 + rng.Intn(5)
				case 1:
					p := rng.Intn(len(dup))
					dup = append(dup[:p], dup[p+1:]...)
				case 2:
					p := rng.Intn(len(dup) + 1)
					dup = append(dup[:p], append([]int{300 + rng.Intn(5)}, dup[p:]...)...)
				}
			}
			seqs = append(seqs, dup)
		}
		m := poa.Build(seqs)
		fit := New(m, len(seqs)/2)
		fit.DetectSlots(1, testV)
		for row := range seqs {
			s := fit.DocStats(row)
			unmatched, slotWords := 0, 0
			for _, p := range fit.DocPieces(row) {
				switch p.Op {
				case Ins, Del, Sub:
					unmatched += len(p.Tokens)
				case SlotFill:
					slotWords += len(p.Tokens)
				}
			}
			total := 0
			for _, w := range s.SlotWords {
				total += w
			}
			if unmatched != s.Unmatched || slotWords != total {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestSlotFillsAgreeWithStats(t *testing.T) {
	m := toyMatrix()
	f := New(m, 0)
	f.DetectSlots(1, toyV)
	if f.NumSlots() == 0 {
		t.Fatal("toy should have slots")
	}
	for row := 0; row < 3; row++ {
		fills := f.SlotFills(row)
		stats := f.DocStats(row)
		if len(fills) != len(stats.SlotWords) {
			t.Fatalf("row %d: %d fills vs %d slot-word entries", row, len(fills), len(stats.SlotWords))
		}
		for s, fill := range fills {
			if len(fill) != stats.SlotWords[s] {
				t.Errorf("row %d slot %d: %d tokens vs SlotWords %d",
					row, s, len(fill), stats.SlotWords[s])
			}
		}
	}
	// The toy's first slot holds the product token for each doc.
	if got := f.SlotFills(0); len(got) > 0 && (len(got[0]) != 1 || got[0][0] != 4) {
		t.Errorf("doc 0 slot 0 = %v, want [4] (soap)", got[0])
	}
}

// Property: total cost with the chosen consensus never exceeds encoding
// the documents standalone by more than the model overhead, and for pure
// duplicate clusters it is strictly cheaper.
func TestDuplicateClustersCompress(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := rng.Intn(20) + 5
		base := make([]int, l)
		for i := range base {
			base[i] = rng.Intn(testV)
		}
		n := rng.Intn(6) + 2
		seqs := make([][]int, n)
		for i := range seqs {
			seqs[i] = base
		}
		m := poa.Build(seqs)
		fit := ConsensusSearch(m, 1, testV)
		fit.DetectSlots(1, testV)
		standalone := 0.0
		for range seqs {
			standalone += mdl.DocCost(l, testV)
		}
		return fit.TotalCost(1, testV) < standalone
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
