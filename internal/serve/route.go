package serve

import "unicode"

// Routing modes for the sharder. The route key is a pure function of the
// document's token stream, so a document always lands on the same shard
// — across requests, restarts, and replay — which is the invariant every
// equivalence and durability argument rests on.
const (
	// RouteHash routes by an FNV-1a hash of the token stream: balanced by
	// construction, but near-duplicate documents of one campaign scatter
	// across shards (their slot fills differ), so each shard mines its
	// own copy of a hot template from its share of the members.
	RouteHash = "hash"
	// RouteLang routes by the dominant script of the token stream (a
	// language proxy detectable without any model): templates never match
	// across languages (InfoShield Advantage 1), so the template space
	// partitions cleanly and every campaign's members stay together on
	// one shard. Documents with no letters fall back to the content hash.
	// The price is balance — a monolingual corpus lands on one shard.
	RouteLang = "lang"
)

// validRoute reports whether mode names a routing mode.
func validRoute(mode string) bool {
	return mode == RouteHash || mode == RouteLang
}

// FNV-1a 64-bit, hand-rolled so hashing a token stream allocates
// nothing (hash/fnv needs a []byte per write).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnvWords hashes a token stream. Tokens are separated by 0xFF — a byte
// that never occurs in valid UTF-8 — so {"ab","c"} and {"a","bc"} hash
// differently.
func fnvWords(words []string) uint64 {
	h := uint64(fnvOffset64)
	for _, w := range words {
		for i := 0; i < len(w); i++ {
			h ^= uint64(w[i])
			h *= fnvPrime64
		}
		h ^= 0xFF
		h *= fnvPrime64
	}
	return h
}

func fnvString(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// scriptClasses are the script buckets dominantScript counts, widest
// first only in the sense of iteration determinism — ties break toward
// the earlier entry. Script is a proxy for language: it is what the
// token stream exposes without a language-ID model, and it already
// satisfies the partition invariant (a template's constants are written
// in one script).
var scriptClasses = []struct {
	name string
	rt   *unicode.RangeTable
}{
	{"latin", unicode.Latin},
	{"cyrillic", unicode.Cyrillic},
	{"greek", unicode.Greek},
	{"arabic", unicode.Arabic},
	{"hebrew", unicode.Hebrew},
	{"devanagari", unicode.Devanagari},
	{"thai", unicode.Thai},
	{"hangul", unicode.Hangul},
	{"han", unicode.Han},
	{"hiragana", unicode.Hiragana},
	{"katakana", unicode.Katakana},
}

// dominantScript classifies a token stream by majority letter script.
// Any kana at all reports "japanese" (Japanese text is a Han/kana mix
// that would otherwise split from pure-Han Chinese inconsistently);
// otherwise the script with the most runes wins, ties broken by table
// order. ok is false when no rune matched any class (digits-only,
// punctuation-only, or an unlisted script) — the caller falls back to
// the content hash.
func dominantScript(words []string) (script string, ok bool) {
	counts := make([]int, len(scriptClasses))
	kana := 0
	for _, w := range words {
		for _, r := range w {
			for ci := range scriptClasses {
				if unicode.Is(scriptClasses[ci].rt, r) {
					counts[ci]++
					if name := scriptClasses[ci].name; name == "hiragana" || name == "katakana" {
						kana++
					}
					break
				}
			}
		}
	}
	if kana > 0 {
		return "japanese", true
	}
	best, bestCount := -1, 0
	for ci, n := range counts {
		if n > bestCount {
			best, bestCount = ci, n
		}
	}
	if best < 0 {
		return "", false
	}
	return scriptClasses[best].name, true
}

// routeKey maps one tokenized document to its routing key under mode.
// The sharder computes shard = routeKey % shards.
func routeKey(mode string, words []string) uint64 {
	if mode == RouteLang {
		if script, ok := dominantScript(words); ok {
			return fnvString(script)
		}
	}
	return fnvWords(words)
}
