package serve

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"infoshield/internal/core"
	"infoshield/internal/stream"
)

// corpusFor emits a deterministic mix of campaign near-duplicates,
// mutated members, and unique-word noise — the shapes that exercise the
// match, buffer, and mining paths.
func corpusFor(seed int64, n int) []string {
	families := []string{
		"limited offer buy the premium golden package today visit",
		"hot deal super cheap flights to sunny islands call agent",
		"brand new luxury watches heavy discount original box ship",
		"work from home earn serious money weekly no experience",
	}
	rng := rand.New(rand.NewSource(seed))
	docs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0, 1, 2:
			f := families[rng.Intn(len(families))]
			docs = append(docs, fmt.Sprintf("%s site%04d.example now", f, rng.Intn(3000)))
		default:
			k := rng.Intn(1 << 20)
			docs = append(docs, fmt.Sprintf("nq%da nq%db nq%dc nq%dd nq%de nq%df", k, k, k, k, k, k))
		}
	}
	return docs
}

// compareToReplay replays texts (indexed by document id) through a fresh
// serial detector and fails unless det — a detector that ingested the
// same documents in id order through any path — agrees on every
// assignment, the pending set, and the full template list.
func compareToReplay(t *testing.T, det *stream.Detector, texts []string, mineBatch int) *stream.Detector {
	t.Helper()
	ref := stream.New(core.Options{Workers: 1})
	ref.BatchSize = mineBatch
	for id, text := range texts {
		if got := ref.Add(text); got != id {
			t.Fatalf("replay id %d != %d", got, id)
		}
	}
	for id := range texts {
		if got, want := det.Assignment(id), ref.Assignment(id); got != want {
			t.Fatalf("doc %d: coalesced %+v != serial replay %+v", id, got, want)
		}
	}
	if got, want := det.NumTemplates(), ref.NumTemplates(); got != want {
		t.Fatalf("templates: coalesced %d != serial replay %d", got, want)
	}
	if !reflect.DeepEqual(det.Templates(), ref.Templates()) {
		t.Fatal("template contents differ from serial replay")
	}
	if got, want := det.Pending(), ref.Pending(); got != want {
		t.Fatalf("pending: coalesced %d != serial replay %d", got, want)
	}
	if got, want := det.Stats().Counters(), ref.Stats().Counters(); got != want {
		t.Fatalf("matcher stats: coalesced %+v != serial replay %+v", got, want)
	}
	return ref
}

// TestCoalesceConcurrentEquivalence is the headline determinism gate:
// many clients submit concurrently (singles and small arrays, in every
// MaxBatch/MaxWait mode), mining flushes fire mid-coalesce, and the
// final detector state must be byte-identical to feeding the same
// documents to a serial Add loop in enqueue order — with ids as the
// arrival-order witness.
func TestCoalesceConcurrentEquivalence(t *testing.T) {
	clients, perClient := 8, 60
	if testing.Short() {
		clients, perClient = 4, 25
	}
	for _, opt := range []Options{
		{},                                // natural batching
		{MaxBatch: 8},                     // tiny commit ceiling
		{MaxWait: 200 * time.Microsecond}, // deadline mode
		{MaxBatch: 16, MaxWait: 2 * time.Millisecond},
	} {
		opt := opt
		t.Run(fmt.Sprintf("maxBatch=%d/maxWait=%s", opt.MaxBatch, opt.MaxWait), func(t *testing.T) {
			det := stream.New(core.Options{})
			const mineBatch = 32 // small, so mining fires mid-coalesce
			det.BatchSize = mineBatch
			c := NewCoalescer(det, opt)

			total := clients * perClient
			texts := make([]string, total)
			verdicts := make([]Verdict, total)
			var wg sync.WaitGroup
			for cl := 0; cl < clients; cl++ {
				wg.Add(1)
				go func(cl int) {
					defer wg.Done()
					docs := corpusFor(int64(1000+cl), perClient)
					for i := 0; i < len(docs); {
						// Mix single and array submissions.
						k := 1 + (cl+i)%3
						if i+k > len(docs) {
							k = len(docs) - i
						}
						vs, err := c.Submit(docs[i : i+k])
						if err != nil {
							t.Errorf("client %d: %v", cl, err)
							return
						}
						for j, v := range vs {
							// A request's documents are contiguous in arrival
							// order: the coalescer never splits a request.
							if v.ID != vs[0].ID+j {
								t.Errorf("client %d: non-contiguous ids %v", cl, vs)
								return
							}
							texts[v.ID] = docs[i+j]
							verdicts[v.ID] = v
						}
						i += k
					}
				}(cl)
			}
			wg.Wait()
			if err := c.Close(); err != nil {
				t.Fatal(err)
			}

			ref := compareToReplay(t, det, texts, mineBatch)
			// Response-time verdicts may only differ from the final state by
			// pending→assigned upgrades resolved later; a committed template
			// is forever.
			for id, v := range verdicts {
				if v.Template >= 0 {
					if a := ref.Assignment(id); a.Template != v.Template {
						t.Fatalf("doc %d: returned template %d but final is %+v", id, v.Template, a)
					}
				}
			}
		})
	}
}

// holdSequencer parks the sequencer inside a control request so the test
// can stage a deterministic queue, then returns a release function. It
// waits for the sequencer to actually enter the control before
// returning, so subsequent enqueues line up in send order.
func holdSequencer(t *testing.T, c *Coalescer) (release func()) {
	t.Helper()
	entered := make(chan struct{})
	blocked := make(chan struct{})
	go func() {
		if err := c.do(func(*stream.Detector) {
			close(entered)
			<-blocked
		}); err != nil {
			t.Errorf("holdSequencer: %v", err)
		}
	}()
	<-entered
	return func() { close(blocked) }
}

// enqueueOrdered submits texts from its own goroutine and spins until
// the request is observably queued, pinning the enqueue order exactly.
func enqueueOrdered(t *testing.T, c *Coalescer, texts []string, out chan<- []Verdict) {
	t.Helper()
	before := len(c.ch)
	go func() {
		vs, err := c.Submit(texts)
		if err != nil {
			t.Errorf("enqueueOrdered: %v", err)
		}
		out <- vs
	}()
	for len(c.ch) <= before {
		time.Sleep(50 * time.Microsecond)
	}
}

// TestCoalescePinnedBatch drives one exactly-known multi-request batch:
// the sequencer is held, requests are enqueued in a pinned order summing
// to MaxBatch, and the detector's mining threshold sits mid-batch — the
// group-commit equivalent of a flush firing while the batch coalesces.
// Verdicts must equal a serial replay sampled at batch end, and the
// whole batch must commit by size.
func TestCoalescePinnedBatch(t *testing.T) {
	det := stream.New(core.Options{})
	det.BatchSize = 7 // mining fires inside the coalesced batch
	c := NewCoalescer(det, Options{MaxBatch: 12, MaxWait: time.Hour})
	defer c.Close()

	campaign := func(i int) string {
		return fmt.Sprintf("limited offer buy the premium golden package today visit site%04d.example now", i)
	}
	noise := func(i int) string {
		return fmt.Sprintf("nq%da nq%db nq%dc nq%dd nq%de nq%df", i, i, i, i, i, i)
	}
	// The 7th document (noise(3)) trips the mining threshold mid-batch:
	// the buffer at that point holds 3 campaign + 4 noise docs, enough
	// contrast for the miner to accept one template. Docs 8-11 then match
	// (campaign) or buffer (noise) against the just-mined template.
	reqs := [][]string{
		{campaign(0), noise(0), noise(1)},
		{campaign(1), noise(2)},
		{campaign(2)},
		{noise(3), campaign(3), campaign(4)},
		{campaign(5), noise(4), campaign(6)},
	}
	release := holdSequencer(t, c)
	outs := make([]chan []Verdict, len(reqs))
	for i, texts := range reqs {
		outs[i] = make(chan []Verdict, 1)
		enqueueOrdered(t, c, texts, outs[i])
	}
	release()

	var got []Verdict
	for _, out := range outs {
		got = append(got, <-out...)
	}

	// Serial replay over the same enqueue order, sampling every verdict at
	// batch end — exactly what the coalescer reports.
	var texts []string
	for _, r := range reqs {
		texts = append(texts, r...)
	}
	ref := stream.New(core.Options{Workers: 1})
	ref.BatchSize = 7
	for _, text := range texts {
		ref.Add(text)
	}
	want := make([]Verdict, len(texts))
	for id := range texts {
		a := ref.Assignment(id)
		want[id] = Verdict{ID: id, Template: a.Template, Pending: a.Pending}
	}
	// got is in request order; requests were enqueued in order, so ids are
	// 0..n-1 in sequence.
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("verdicts differ:\n got %+v\nwant %+v", got, want)
	}
	// The mining pass must actually have fired mid-batch for this corpus.
	if det.NumTemplates() == 0 {
		t.Fatal("no template mined — the mid-coalesce flush never fired")
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Serve.Batches != 1 || st.Serve.BatchesBySize != 1 {
		t.Fatalf("expected one size-triggered batch, got %+v", st.Serve)
	}
	if st.Serve.MaxBatchDocs != len(texts) || st.Serve.Docs != int64(len(texts)) {
		t.Fatalf("batch accounting off: %+v", st.Serve)
	}
	if st.Serve.BatchSizeHist[4] != 1 { // 12 docs → bucket (8,16]
		t.Fatalf("histogram off: %v", st.Serve.BatchSizeHist)
	}
	if st.Serve.QueueHighWater < len(reqs) {
		t.Fatalf("queue high-water %d < %d staged requests", st.Serve.QueueHighWater, len(reqs))
	}
}

// TestCoalesceControlMidBatch pins the flush-by-control path: a control
// request between staged ingests must split the batch at exactly its
// queue position, and run against the detector state the earlier
// requests produced.
func TestCoalesceControlMidBatch(t *testing.T) {
	det := stream.New(core.Options{})
	det.BatchSize = 1 << 30
	c := NewCoalescer(det, Options{MaxBatch: 1 << 20}) // drain mode
	defer c.Close()

	release := holdSequencer(t, c)
	out1 := make(chan []Verdict, 1)
	enqueueOrdered(t, c, []string{"aa bb cc dd ee", "aa bb cc dd ff"}, out1)

	// A control request staged mid-queue: it must observe exactly the two
	// earlier documents buffered, none of the later ones. The ingest is
	// already queued (depth 1), so wait for depth 2 before staging more.
	pendingAt := make(chan int, 1)
	go func() {
		if err := c.do(func(d *stream.Detector) { pendingAt <- d.Pending() }); err != nil {
			t.Errorf("control: %v", err)
		}
	}()
	for len(c.ch) != 2 {
		time.Sleep(50 * time.Microsecond)
	}
	out2 := make(chan []Verdict, 1)
	enqueueOrdered(t, c, []string{"gg hh ii jj kk"}, out2)
	release()

	<-out1
	if got := <-pendingAt; got != 2 {
		t.Fatalf("control saw %d pending docs, want 2", got)
	}
	<-out2
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Serve.BatchesByControl != 1 {
		t.Fatalf("expected one control-split batch, got %+v", st.Serve)
	}
	if st.Serve.Batches != 2 || st.Serve.BatchesByDrain != 1 {
		t.Fatalf("expected a control-split batch plus a drain batch, got %+v", st.Serve)
	}
}

// TestCoalesceDeadline covers the MaxWait path: a lone submission in
// deadline mode commits once the budget expires, not by size.
func TestCoalesceDeadline(t *testing.T) {
	det := stream.New(core.Options{})
	det.BatchSize = 1 << 30
	c := NewCoalescer(det, Options{MaxBatch: 1 << 20, MaxWait: time.Millisecond})
	defer c.Close()

	vs, err := c.Submit([]string{"aa bb cc dd ee"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || !vs[0].Pending {
		t.Fatalf("verdicts %+v", vs)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Serve.BatchesByDeadline != 1 || st.Serve.Batches != 1 {
		t.Fatalf("expected one deadline batch, got %+v", st.Serve)
	}
	if st.Serve.CoalesceWaitNs < int64(time.Millisecond) {
		t.Fatalf("coalesce wait %dns < the 1ms budget", st.Serve.CoalesceWaitNs)
	}
}

// TestCoalesceShutdownDrain proves the graceful-shutdown contract: every
// accepted request gets a response — even ones still queued when Close
// begins — nothing is lost, and late submitters get ErrClosed.
func TestCoalesceShutdownDrain(t *testing.T) {
	det := stream.New(core.Options{})
	det.BatchSize = 16
	c := NewCoalescer(det, Options{MaxBatch: 8})

	// Stage a queue the sequencer has not touched yet, then close around
	// it: the staged requests were accepted, so they must all commit.
	release := holdSequencer(t, c)
	staged := make([]chan []Verdict, 10)
	for i := range staged {
		staged[i] = make(chan []Verdict, 1)
		enqueueOrdered(t, c, corpusFor(int64(50+i), 3), staged[i])
	}
	closed := make(chan error, 1)
	go func() { closed <- c.Close() }()
	// Close marks the queue closed before the sequencer drains it; wait
	// for that flag (white-box — probing with Submit would itself be
	// accepted and block if it won the race), then release the sequencer.
	for {
		c.mu.RLock()
		isClosed := c.closed
		c.mu.RUnlock()
		if isClosed {
			break
		}
		time.Sleep(100 * time.Microsecond)
	}
	release()
	if err := <-closed; err != nil {
		t.Fatal(err)
	}

	ids := map[int]bool{}
	for i, ch := range staged {
		vs := <-ch
		if len(vs) != 3 {
			t.Fatalf("staged request %d: %d verdicts, want 3", i, len(vs))
		}
		for _, v := range vs {
			if ids[v.ID] {
				t.Fatalf("duplicate id %d", v.ID)
			}
			ids[v.ID] = true
		}
	}
	if len(ids) != 30 {
		t.Fatalf("%d docs committed, want 30", len(ids))
	}
	for id := range ids {
		if id < 0 || id >= 30 {
			t.Fatalf("id %d outside the dense range", id)
		}
	}

	// The queue stays rejecting after drain, for every entry point.
	if _, err := c.Submit([]string{"x"}); err != ErrClosed {
		t.Fatalf("Submit after Close: %v", err)
	}
	if err := c.Flush(); err != ErrClosed {
		t.Fatalf("Flush after Close: %v", err)
	}
	if _, err := c.Stats(); err != ErrClosed {
		t.Fatalf("Stats after Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestCoalesceChaoticShutdown closes mid-traffic with no staging: every
// Submit either errors ErrClosed or returns full verdicts, and the
// committed ids are dense — no request is half-processed or dropped.
func TestCoalesceChaoticShutdown(t *testing.T) {
	clients := 8
	if testing.Short() {
		clients = 4
	}
	det := stream.New(core.Options{})
	det.BatchSize = 64
	c := NewCoalescer(det, Options{})

	var mu sync.Mutex
	ids := map[int]bool{}
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			docs := corpusFor(int64(300+cl), 200)
			for i := 0; i < len(docs); i++ {
				vs, err := c.Submit(docs[i : i+1])
				if err != nil {
					if err != ErrClosed {
						t.Errorf("client %d: %v", cl, err)
					}
					return
				}
				mu.Lock()
				for _, v := range vs {
					if ids[v.ID] {
						t.Errorf("duplicate id %d", v.ID)
					}
					ids[v.ID] = true
				}
				mu.Unlock()
			}
		}(cl)
	}
	time.Sleep(2 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	for id := range ids {
		if id < 0 || id >= len(ids) {
			t.Fatalf("committed ids not dense: %d outside [0,%d)", id, len(ids))
		}
	}
	st := det.Stats()
	if st.Probes < 0 {
		t.Fatal("unreachable")
	}
}

// TestCoalesceCounters sanity-checks the bookkeeping identities that
// hold for any schedule: reasons partition batches, the histogram sums
// to the batch count, and docs add up.
func TestCoalesceCounters(t *testing.T) {
	det := stream.New(core.Options{})
	det.BatchSize = 32
	c := NewCoalescer(det, Options{MaxBatch: 8})

	var wg sync.WaitGroup
	for cl := 0; cl < 4; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			docs := corpusFor(int64(700+cl), 40)
			for i := 0; i < len(docs); i += 2 {
				if _, err := c.Submit(docs[i : i+2]); err != nil {
					t.Errorf("client %d: %v", cl, err)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	s := st.Serve
	if s.Docs != 160 {
		t.Fatalf("docs %d, want 160", s.Docs)
	}
	if sum := s.BatchesBySize + s.BatchesByDeadline + s.BatchesByDrain +
		s.BatchesByControl + s.BatchesByClose; sum != s.Batches {
		t.Fatalf("flush reasons sum %d != batches %d", sum, s.Batches)
	}
	var hist int64
	for _, n := range s.BatchSizeHist {
		hist += n
	}
	if hist != s.Batches {
		t.Fatalf("histogram sum %d != batches %d", hist, s.Batches)
	}
	if s.MaxBatchDocs > 8+1 { // requests are never split, but arrive ≤2 docs
		t.Fatalf("max batch %d exceeds MaxBatch growth bound", s.MaxBatchDocs)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCoalescePersistRoundTrip snapshots a serving coalescer and
// restores into a fresh one: template reports and subsequent verdicts
// must carry over.
func TestCoalescePersistRoundTrip(t *testing.T) {
	det := stream.New(core.Options{})
	det.BatchSize = 1 << 30
	c := NewCoalescer(det, Options{})
	docs := corpusFor(7, 120)
	if _, err := c.Submit(docs); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	tmpls, err := c.Templates()
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpls) == 0 {
		t.Fatal("no templates mined")
	}
	var buf bytes.Buffer
	if err := c.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	det2 := stream.New(core.Options{})
	c2 := NewCoalescer(det2, Options{})
	defer c2.Close()
	if err := c2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	tmpls2, err := c2.Templates()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tmpls, tmpls2) {
		t.Fatalf("templates differ after round trip:\n%+v\n%+v", tmpls, tmpls2)
	}
	// A campaign member must match the restored templates immediately.
	vs, err := c2.Submit([]string{"limited offer buy the premium golden package today visit site0042.example now"})
	if err != nil {
		t.Fatal(err)
	}
	if vs[0].Template < 0 {
		t.Fatalf("campaign doc did not match restored templates: %+v", vs[0])
	}
}
