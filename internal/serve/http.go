package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// maxBodyBytes bounds one request body (64 MiB — batched ingest of a few
// hundred thousand short documents fits comfortably).
const maxBodyBytes = 64 << 20

// Server is the HTTP/JSON front end over the sharded detector set (a
// single-shard Sharded is the unsharded daemon — byte-identical ids and
// verdicts).
type Server struct {
	sh *Sharded
	// statePath is the default snapshot target for POST /v1/snapshot
	// requests that name no path ("" means stream the state in the
	// response body instead).
	statePath string
}

// NewServer wraps sh. statePath may be empty.
func NewServer(sh *Sharded, statePath string) *Server {
	return &Server{sh: sh, statePath: statePath}
}

// Handler returns the API routes:
//
//	POST /v1/docs          ingest {"text": ...} or {"texts": [...]}
//	GET  /v1/assignments/{id}
//	GET  /v1/templates
//	GET  /v1/stats         per-shard blocks plus the rolled-up total
//	POST /v1/flush         force a mining pass over buffered documents
//	POST /v1/snapshot      persist templates ({"path": ...} optional)
//	GET  /healthz
//	GET  /debug/pprof/...
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/docs", s.handleDocs)
	mux.HandleFunc("GET /v1/assignments/{id}", s.handleAssignment)
	mux.HandleFunc("GET /v1/templates", s.handleTemplates)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/flush", s.handleFlush)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// docsRequest is the POST /v1/docs body: exactly one of the two forms.
type docsRequest struct {
	Text  *string  `json:"text,omitempty"`
	Texts []string `json:"texts,omitempty"`
}

// docsResponse is the array-form ingest answer.
type docsResponse struct {
	Docs []Verdict `json:"docs"`
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	var req docsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	single := req.Text != nil
	if single == (req.Texts != nil) {
		httpError(w, http.StatusBadRequest, `need exactly one of "text" or "texts"`)
		return
	}
	texts := req.Texts
	if single {
		texts = []string{*req.Text}
	}
	verdicts, err := s.sh.Submit(texts)
	if err != nil {
		serveError(w, err)
		return
	}
	if single {
		writeJSON(w, http.StatusOK, verdicts[0])
		return
	}
	writeJSON(w, http.StatusOK, docsResponse{Docs: verdicts})
}

// assignmentResponse is the GET /v1/assignments/{id} answer; the id is
// global (it encodes its shard: id = local*S + shard).
type assignmentResponse struct {
	ID       int  `json:"id"`
	Shard    int  `json:"shard"`
	Template int  `json:"template"`
	Pending  bool `json:"pending"`
}

func (s *Server) handleAssignment(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		httpError(w, http.StatusBadRequest, "id must be a non-negative integer")
		return
	}
	v, err := s.sh.Assignment(id)
	if err != nil {
		serveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, assignmentResponse{
		ID: v.ID, Shard: id % s.sh.Shards(), Template: v.Template, Pending: v.Pending,
	})
}

func (s *Server) handleTemplates(w http.ResponseWriter, r *http.Request) {
	infos, err := s.sh.Templates()
	if err != nil {
		serveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Templates []ShardTemplate `json:"templates"`
	}{infos})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.sh.Stats()
	if err != nil {
		serveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if err := s.sh.Flush(); err != nil {
		serveError(w, err)
		return
	}
	st, err := s.sh.Stats()
	if err != nil {
		serveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Templates   int `json:"templates"`
		PendingDocs int `json:"pending_docs"`
	}{st.Total.Templates, st.Total.PendingDocs})
}

// snapshotRequest is the optional POST /v1/snapshot body.
type snapshotRequest struct {
	// Path overrides the server's default snapshot file. When both are
	// empty the state streams back in the response body (the combined
	// manifest form, shard states inline).
	Path string `json:"path,omitempty"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req snapshotRequest
	if r.ContentLength != 0 && !decodeJSON(w, r, &req) {
		return
	}
	path := req.Path
	if path == "" {
		path = s.statePath
	}
	if path == "" {
		// No file target: return the state as the response body. Buffered
		// so a failed snapshot still gets a proper error status.
		var buf bytes.Buffer
		if err := s.sh.SnapshotTo(&buf); err != nil {
			serveError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(buf.Bytes())
		return
	}
	n, err := s.sh.Snapshot(path)
	if err != nil {
		serveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Path  string `json:"path"`
		Bytes int64  `json:"bytes"`
	}{path, n})
}

// decodeJSON parses the request body into v, writing a 400 and returning
// false on malformed input.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// serveError maps coalescer errors to HTTP statuses: a closed queue is
// 503 (the daemon is shutting down), anything else 500.
func serveError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrClosed) {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	httpError(w, http.StatusInternalServerError, err.Error())
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{msg})
}

// writeJSON writes v with the given status. Encoding failures after the
// header is committed have no channel back to the client.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
