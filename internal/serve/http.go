package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
)

// maxBodyBytes bounds one request body (64 MiB — batched ingest of a few
// hundred thousand short documents fits comfortably).
const maxBodyBytes = 64 << 20

// Server is the HTTP/JSON front end over one Coalescer.
type Server struct {
	c *Coalescer
	// statePath is the default snapshot target for POST /v1/snapshot
	// requests that name no path ("" means stream the state in the
	// response body instead).
	statePath string
}

// NewServer wraps c. statePath may be empty.
func NewServer(c *Coalescer, statePath string) *Server {
	return &Server{c: c, statePath: statePath}
}

// Handler returns the API routes:
//
//	POST /v1/docs          ingest {"text": ...} or {"texts": [...]}
//	GET  /v1/assignments/{id}
//	GET  /v1/templates
//	GET  /v1/stats
//	POST /v1/flush         force a mining pass over buffered documents
//	POST /v1/snapshot      persist templates ({"path": ...} optional)
//	GET  /healthz
//	GET  /debug/pprof/...
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/docs", s.handleDocs)
	mux.HandleFunc("GET /v1/assignments/{id}", s.handleAssignment)
	mux.HandleFunc("GET /v1/templates", s.handleTemplates)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/flush", s.handleFlush)
	mux.HandleFunc("POST /v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// docsRequest is the POST /v1/docs body: exactly one of the two forms.
type docsRequest struct {
	Text  *string  `json:"text,omitempty"`
	Texts []string `json:"texts,omitempty"`
}

// docsResponse is the array-form ingest answer.
type docsResponse struct {
	Docs []Verdict `json:"docs"`
}

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	var req docsRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	single := req.Text != nil
	if single == (req.Texts != nil) {
		httpError(w, http.StatusBadRequest, `need exactly one of "text" or "texts"`)
		return
	}
	texts := req.Texts
	if single {
		texts = []string{*req.Text}
	}
	verdicts, err := s.c.Submit(texts)
	if err != nil {
		serveError(w, err)
		return
	}
	if single {
		writeJSON(w, http.StatusOK, verdicts[0])
		return
	}
	writeJSON(w, http.StatusOK, docsResponse{Docs: verdicts})
}

// assignmentResponse is the GET /v1/assignments/{id} answer.
type assignmentResponse struct {
	ID       int  `json:"id"`
	Template int  `json:"template"`
	Pending  bool `json:"pending"`
}

func (s *Server) handleAssignment(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		httpError(w, http.StatusBadRequest, "id must be a non-negative integer")
		return
	}
	a, err := s.c.Assignment(id)
	if err != nil {
		serveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, assignmentResponse{ID: id, Template: a.Template, Pending: a.Pending})
}

// templateResponse is one GET /v1/templates entry.
type templateResponse struct {
	Index    int    `json:"index"`
	Pattern  string `json:"pattern"`
	Slots    int    `json:"slots"`
	DocCount int    `json:"doc_count"`
}

func (s *Server) handleTemplates(w http.ResponseWriter, r *http.Request) {
	infos, err := s.c.Templates()
	if err != nil {
		serveError(w, err)
		return
	}
	out := make([]templateResponse, len(infos))
	for i, ti := range infos {
		out[i] = templateResponse{Index: i, Pattern: ti.Pattern, Slots: ti.Slots, DocCount: ti.DocCount}
	}
	writeJSON(w, http.StatusOK, struct {
		Templates []templateResponse `json:"templates"`
	}{out})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st, err := s.c.Stats()
	if err != nil {
		serveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleFlush(w http.ResponseWriter, r *http.Request) {
	if err := s.c.Flush(); err != nil {
		serveError(w, err)
		return
	}
	st, err := s.c.Stats()
	if err != nil {
		serveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Templates   int `json:"templates"`
		PendingDocs int `json:"pending_docs"`
	}{st.Templates, st.PendingDocs})
}

// snapshotRequest is the optional POST /v1/snapshot body.
type snapshotRequest struct {
	// Path overrides the server's default snapshot file. When both are
	// empty the state streams back in the response body.
	Path string `json:"path,omitempty"`
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var req snapshotRequest
	if r.ContentLength != 0 && !decodeJSON(w, r, &req) {
		return
	}
	path := req.Path
	if path == "" {
		path = s.statePath
	}
	if path == "" {
		// No file target: return the state as the response body. Buffered
		// so a failed snapshot still gets a proper error status.
		var buf bytes.Buffer
		if err := s.c.Snapshot(&buf); err != nil {
			serveError(w, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(buf.Bytes())
		return
	}
	n, err := SnapshotToFile(s.c, path)
	if err != nil {
		serveError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Path  string `json:"path"`
		Bytes int64  `json:"bytes"`
	}{path, n})
}

// SnapshotToFile persists the detector state to path atomically (write
// to a sibling temp file, then rename) and returns the byte count.
func SnapshotToFile(c *Coalescer, path string) (int64, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	err = c.Snapshot(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = os.Remove(tmp)
		return 0, err
	}
	info, err := os.Stat(tmp)
	if err != nil {
		_ = os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return 0, err
	}
	return info.Size(), nil
}

// decodeJSON parses the request body into v, writing a 400 and returning
// false on malformed input.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return false
	}
	return true
}

// serveError maps coalescer errors to HTTP statuses: a closed queue is
// 503 (the daemon is shutting down), anything else 500.
func serveError(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrClosed) {
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	httpError(w, http.StatusInternalServerError, err.Error())
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, struct {
		Error string `json:"error"`
	}{msg})
}

// writeJSON writes v with the given status. Encoding failures after the
// header is committed have no channel back to the client.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}
