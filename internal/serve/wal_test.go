package serve

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// stubDetector records the replay calls the WAL makes, standing in for a
// stream.Detector rebased to some high-water mark.
type stubDetector struct {
	next    int
	added   []string
	flushes int
}

func (s *stubDetector) Add(text string) int {
	s.added = append(s.added, text)
	s.next++
	return s.next - 1
}

func (s *stubDetector) Flush() { s.flushes++ }

func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")

	w, err := openWAL(path, &stubDetector{}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.append([]int{0, 1, 2}, []string{"aa", "bb", "cc"}); err != nil {
		t.Fatal(err)
	}
	if err := w.appendFlush(); err != nil {
		t.Fatal(err)
	}
	if err := w.append([]int{3, 4}, []string{"dd", "ee"}); err != nil {
		t.Fatal(err)
	}
	st := w.stats()
	if st.Records != 5 || st.Batches != 2 || st.Flushes != 1 || st.Replayed != 0 {
		t.Fatalf("writer stats %+v", st)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	// Full replay from scratch: every record, in order, flush included.
	det := &stubDetector{}
	w2, err := openWAL(path, det, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	wantDocs := []string{"aa", "bb", "cc", "dd", "ee"}
	if len(det.added) != len(wantDocs) || det.flushes != 1 {
		t.Fatalf("replayed %d docs %d flushes, want %d docs 1 flush", len(det.added), det.flushes, len(wantDocs))
	}
	for i, d := range det.added {
		if d != wantDocs[i] {
			t.Fatalf("replayed doc %d = %q, want %q", i, d, wantDocs[i])
		}
	}
	if got := w2.stats().Replayed; got != 5 {
		t.Fatalf("replayed counter %d, want 5", got)
	}

	// Partial replay above a snapshot high-water mark: records below hwm
	// skip (the flush marker below hwm too — it is folded into the
	// snapshot), the detector resumes at hwm.
	det3 := &stubDetector{next: 4}
	w3, err := openWAL(path, det3, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.close()
	if len(det3.added) != 1 || det3.added[0] != "ee" || det3.flushes != 0 {
		t.Fatalf("hwm=4 replay: added %v flushes %d", det3.added, det3.flushes)
	}
}

// TestWALFlushMarkerAtBoundary verifies a flush marker logged after the
// snapshot point is re-executed (pos >= hwm) while one before it is not.
func TestWALFlushMarkerAtBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(path, &stubDetector{}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	_ = w.append([]int{0, 1}, []string{"aa", "bb"})
	_ = w.appendFlush() // pre-snapshot: folded into state at hwm 2
	_ = w.append([]int{2}, []string{"cc"})
	_ = w.appendFlush() // post-snapshot: must be replayed
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	det := &stubDetector{next: 2}
	w2, err := openWAL(path, det, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if len(det.added) != 1 || det.added[0] != "cc" || det.flushes != 1 {
		t.Fatalf("boundary replay: added %v flushes %d, want [cc] 1", det.added, det.flushes)
	}
}

func TestWALTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	intact := `{"id":0,"text":"aa"}` + "\n" + `{"id":1,"text":"bb"}` + "\n"
	if err := os.WriteFile(path, []byte(intact+`{"id":2,"te`), 0o644); err != nil {
		t.Fatal(err)
	}

	det := &stubDetector{}
	w, err := openWAL(path, det, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(det.added) != 2 {
		t.Fatalf("replayed %d records past a torn tail, want 2", len(det.added))
	}
	// The torn tail is truncated away so the next append starts at a
	// record boundary.
	if info, err := os.Stat(path); err != nil || info.Size() != int64(len(intact)) {
		t.Fatalf("size after torn-tail truncation: %v %d, want %d", err, info.Size(), len(intact))
	}
	if err := w.append([]int{2}, []string{"cc"}); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	det2 := &stubDetector{}
	w2, err := openWAL(path, det2, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if len(det2.added) != 3 || det2.added[2] != "cc" {
		t.Fatalf("post-repair replay %v, want 3 docs ending cc", det2.added)
	}
}

// TestWALStateLogMismatch: replay ids must match what the detector
// assigns — a drifted state file (wrong snapshot next to this log) is a
// hard boot error, not silent corruption.
func TestWALStateLogMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	if err := os.WriteFile(path, []byte(`{"id":7,"text":"aa"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openWAL(path, &stubDetector{}, 0, false); err == nil {
		t.Fatal("id mismatch replay did not error")
	}
}

func TestWALTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(path, &stubDetector{}, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.append([]int{i}, []string{fmt.Sprintf("doc%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.truncate(); err != nil {
		t.Fatal(err)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	if info, err := os.Stat(path); err != nil || info.Size() != 0 {
		t.Fatalf("truncated log size %d, want 0", info.Size())
	}
	det := &stubDetector{}
	w2, err := openWAL(path, det, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.close()
	if len(det.added) != 0 {
		t.Fatalf("replayed %d from a truncated log", len(det.added))
	}
}
