package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"infoshield/internal/core"
	"infoshield/internal/stream"
)

// newTestSharded builds a sharded detector set for tests.
func newTestSharded(t *testing.T, cfg ShardedConfig, mineBatch int) *Sharded {
	t.Helper()
	if cfg.NewDetector == nil {
		cfg.NewDetector = func() *stream.Detector {
			det := stream.New(core.Options{})
			if mineBatch > 0 {
				det.BatchSize = mineBatch
			}
			return det
		}
	}
	sh, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sh
}

// newTestServer wires a single-shard detector behind the HTTP front end
// — the PR 5 daemon shape, which S=1 must reproduce byte-identically.
func newTestServer(t *testing.T, mineBatch int, statePath string) (*httptest.Server, *Sharded) {
	t.Helper()
	sh := newTestSharded(t, ShardedConfig{StatePath: statePath}, mineBatch)
	ts := httptest.NewServer(NewServer(sh, statePath).Handler())
	t.Cleanup(func() {
		ts.Close()
		if err := sh.Close(); err != nil {
			t.Error(err)
		}
	})
	return ts, sh
}

// postJSON posts body to url and decodes the JSON response into out.
func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

// getJSON fetches url and decodes the JSON response into out.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestServerIngestForms(t *testing.T) {
	ts, _ := newTestServer(t, 1<<30, "")

	var single Verdict
	if code := postJSON(t, ts.URL+"/v1/docs", `{"text":"aa bb cc dd ee"}`, &single); code != http.StatusOK {
		t.Fatalf("single ingest: status %d", code)
	}
	if single.ID != 0 || !single.Pending || single.Template != -1 {
		t.Fatalf("single verdict %+v", single)
	}

	var batch docsResponse
	if code := postJSON(t, ts.URL+"/v1/docs", `{"texts":["ff gg hh ii jj","kk ll mm nn oo"]}`, &batch); code != http.StatusOK {
		t.Fatalf("batch ingest: status %d", code)
	}
	if len(batch.Docs) != 2 || batch.Docs[0].ID != 1 || batch.Docs[1].ID != 2 {
		t.Fatalf("batch verdicts %+v", batch.Docs)
	}

	var a assignmentResponse
	if code := getJSON(t, ts.URL+"/v1/assignments/1", &a); code != http.StatusOK {
		t.Fatalf("assignment: status %d", code)
	}
	if a.ID != 1 || a.Shard != 0 || !a.Pending {
		t.Fatalf("assignment %+v", a)
	}
}

func TestServerValidation(t *testing.T) {
	ts, _ := newTestServer(t, 0, "")

	for _, body := range []string{
		`{}`,                         // neither form
		`{"text":"a","texts":["b"]}`, // both forms
		`{"unknown":1,"text":"a"}`,   // unknown field
		`{"text":`,                   // malformed JSON
	} {
		if code := postJSON(t, ts.URL+"/v1/docs", body, nil); code != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, code)
		}
	}
	if code := getJSON(t, ts.URL+"/v1/assignments/notanumber", nil); code != http.StatusBadRequest {
		t.Errorf("bad id: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/docs", nil); code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/docs: status %d, want 405", code)
	}
}

// ingestCampaign pushes a minable corpus (the same campaign/noise mix
// the coalescer tests use) and returns how many docs.
func ingestCampaign(t *testing.T, url string) int {
	t.Helper()
	docs := corpusFor(7, 120)
	body, err := json.Marshal(docsRequest{Texts: docs})
	if err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, url+"/v1/docs", string(body), nil); code != http.StatusOK {
		t.Fatalf("ingest: status %d", code)
	}
	return len(docs)
}

func TestServerFlushTemplatesStats(t *testing.T) {
	ts, _ := newTestServer(t, 1<<30, "")
	n := ingestCampaign(t, ts.URL)

	var flushed struct {
		Templates   int `json:"templates"`
		PendingDocs int `json:"pending_docs"`
	}
	if code := postJSON(t, ts.URL+"/v1/flush", "", &flushed); code != http.StatusOK {
		t.Fatalf("flush: status %d", code)
	}
	if flushed.Templates == 0 || flushed.PendingDocs != 0 {
		t.Fatalf("flush response %+v", flushed)
	}

	var tmpls struct {
		Templates []ShardTemplate `json:"templates"`
	}
	if code := getJSON(t, ts.URL+"/v1/templates", &tmpls); code != http.StatusOK {
		t.Fatalf("templates: status %d", code)
	}
	if len(tmpls.Templates) != flushed.Templates {
		t.Fatalf("%d templates reported vs %d flushed", len(tmpls.Templates), flushed.Templates)
	}
	tr := tmpls.Templates[0]
	if tr.Pattern == "" || tr.DocCount < 2 || tr.Shard != 0 || tr.ID != tr.Index {
		t.Fatalf("template %+v", tr)
	}

	var st ShardedStats
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if st.Shards != 1 || st.Route != RouteHash || len(st.PerShard) != 1 {
		t.Fatalf("sharded stats header %+v", st)
	}
	if st.Total.Templates != flushed.Templates || st.Total.PendingDocs != 0 {
		t.Fatalf("stats %+v inconsistent with flush %+v", st.Total, flushed)
	}
	if st.Total.Serve.Docs != int64(n) || st.Total.Serve.Batches == 0 {
		t.Fatalf("serve counters %+v, want %d docs", st.Total.Serve, n)
	}

	// A second ingest probes the now-mined template set, so the matcher
	// health block must populate: consistent counters, a derived skip
	// rate, and a histogram whose mass equals the probe count.
	ingestCampaign(t, ts.URL)
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	m := st.Total.Matcher
	if m.Probes == 0 || m.DPRuns+m.DPPruned != m.Candidates {
		t.Fatalf("matcher counters out of balance: %+v", m)
	}
	wantRate := float64(m.DPPruned) / float64(m.Candidates)
	if m.DPSkipRate < wantRate || m.DPSkipRate > wantRate {
		t.Fatalf("dp_skip_rate %v, want %v", m.DPSkipRate, wantRate)
	}
	histMass := 0
	for _, c := range m.CandPerProbeHist {
		histMass += c
	}
	if len(m.CandPerProbeHist) == 0 || histMass != m.Probes {
		t.Fatalf("cand_per_probe_hist_log2 mass %d != probes %d (%v)", histMass, m.Probes, m.CandPerProbeHist)
	}
}

func TestServerSnapshotBody(t *testing.T) {
	ts, _ := newTestServer(t, 1<<30, "")
	ingestCampaign(t, ts.URL)
	if code := postJSON(t, ts.URL+"/v1/flush", "", nil); code != http.StatusOK {
		t.Fatalf("flush: status %d", code)
	}

	resp, err := http.Post(ts.URL+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot: status %d", resp.StatusCode)
	}
	state, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	// The body is the combined manifest form: inline per-shard states,
	// each a loadable detector snapshot.
	var man manifestV2
	if err := json.Unmarshal(state, &man); err != nil {
		t.Fatalf("snapshot body is not a manifest: %v", err)
	}
	if man.Version != 2 || man.Shards != 1 || len(man.States) != 1 || len(man.HWM) != 1 {
		t.Fatalf("manifest %+v", man)
	}
	restored := stream.New(core.Options{})
	if err := restored.Load(bytes.NewReader(man.States[0])); err != nil {
		t.Fatalf("inline state is not a loadable snapshot: %v", err)
	}
	if restored.NumTemplates() == 0 {
		t.Fatal("no templates restored from snapshot body")
	}
}

func TestServerSnapshotFile(t *testing.T) {
	defaultPath := filepath.Join(t.TempDir(), "state.json")
	ts, _ := newTestServer(t, 1<<30, defaultPath)
	ingestCampaign(t, ts.URL)
	if code := postJSON(t, ts.URL+"/v1/flush", "", nil); code != http.StatusOK {
		t.Fatalf("flush: status %d", code)
	}

	// Default path (from the server config).
	var snap struct {
		Path  string `json:"path"`
		Bytes int64  `json:"bytes"`
	}
	if code := postJSON(t, ts.URL+"/v1/snapshot", "", &snap); code != http.StatusOK {
		t.Fatalf("snapshot: status %d", code)
	}
	if snap.Path != defaultPath || snap.Bytes == 0 {
		t.Fatalf("snapshot response %+v", snap)
	}

	// Explicit path in the request body wins over the default.
	override := filepath.Join(t.TempDir(), "override.json")
	if code := postJSON(t, ts.URL+"/v1/snapshot", fmt.Sprintf(`{"path":%q}`, override), &snap); code != http.StatusOK {
		t.Fatalf("snapshot override: status %d", code)
	}
	if snap.Path != override {
		t.Fatalf("snapshot response %+v, want path %s", snap, override)
	}

	// Both snapshots must boot a fresh sharded daemon with the templates
	// intact (manifest + shard files resolved relative to the manifest).
	for _, path := range []string{defaultPath, override} {
		sh2 := newTestSharded(t, ShardedConfig{StatePath: path}, 0)
		tmpls, err := sh2.Templates()
		if err != nil {
			t.Fatal(err)
		}
		if len(tmpls) == 0 {
			t.Fatalf("%s: no templates restored", path)
		}
		if err := sh2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestServerHealthAndPprof(t *testing.T) {
	ts, _ := newTestServer(t, 0, "")
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
}

func TestServerClosedReturns503(t *testing.T) {
	sh := newTestSharded(t, ShardedConfig{}, 0)
	ts := httptest.NewServer(NewServer(sh, "").Handler())
	defer ts.Close()
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, ts.URL+"/v1/docs", `{"text":"aa bb"}`, nil); code != http.StatusServiceUnavailable {
		t.Fatalf("docs after close: status %d, want 503", code)
	}
	if code := getJSON(t, ts.URL+"/v1/stats", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("stats after close: status %d, want 503", code)
	}
}
