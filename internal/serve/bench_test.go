package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"infoshield/internal/core"
	"infoshield/internal/stream"
)

// benchCampaigns mirrors the steady-state regime of BenchmarkStreamAdd:
// hundreds of mined templates, every probe matching one of them.
const benchCampaigns = 220

// benchSlowCommit is the injected per-batch commit delay for the *-slow
// modes: large against per-document match cost, small against a
// benchmark iteration budget.
const benchSlowCommit = 200 * time.Microsecond

var (
	benchSeedOnce  sync.Once
	benchSeedState []byte
	benchSeedErr   error
	benchProbes    []string
)

// benchDetector returns a detector pre-loaded with benchCampaigns mined
// templates. The expensive mining pass runs once per process; every
// sub-benchmark restores the state from a serialized snapshot.
func benchDetector(b *testing.B) *stream.Detector {
	b.Helper()
	benchSeedOnce.Do(func() {
		det := stream.New(core.Options{})
		det.BatchSize = 1 << 30
		var docs []string
		for c := 0; c < benchCampaigns; c++ {
			for i := 0; i < 8; i++ {
				docs = append(docs, fmt.Sprintf(
					"promo%03da alpha%03db beta%03dc gamma%03dd delta%03de epsilon%03df visit site%03d-%02d.example now",
					c, c, c, c, c, c, c, i))
			}
		}
		det.AddBatch(docs)
		det.Flush()
		if got := det.NumTemplates(); got < benchCampaigns*9/10 {
			benchSeedErr = fmt.Errorf("seeded only %d/%d templates", got, benchCampaigns)
			return
		}
		var buf bytes.Buffer
		if benchSeedErr = det.Save(&buf); benchSeedErr != nil {
			return
		}
		benchSeedState = buf.Bytes()
		for c := 0; c < benchCampaigns; c++ {
			benchProbes = append(benchProbes, fmt.Sprintf(
				"promo%03da alpha%03db beta%03dc gamma%03dd delta%03de epsilon%03df visit site%03d-99.example now",
				c, c, c, c, c, c, c))
		}
	})
	if benchSeedErr != nil {
		b.Fatal(benchSeedErr)
	}
	det := stream.New(core.Options{})
	det.BatchSize = 1 << 30
	if err := det.Load(bytes.NewReader(benchSeedState)); err != nil {
		b.Fatal(err)
	}
	return det
}

// benchSharded builds an S-shard serving front end, every shard
// pre-loaded with the seeded template state.
func benchSharded(b *testing.B, shards int, walDir string, opt Options) *Sharded {
	b.Helper()
	benchDetector(b) // force the one-time seed (and fail early if it breaks)
	sh, err := NewSharded(ShardedConfig{
		Shards: shards, WALDir: walDir, WALNoSync: true, Coalescer: opt,
		NewDetector: func() *stream.Detector {
			det := stream.New(core.Options{})
			det.BatchSize = 1 << 30
			if err := det.Load(bytes.NewReader(benchSeedState)); err != nil {
				b.Fatal(err)
			}
			return det
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	return sh
}

// noteSingleCPU flags the blind spot of closed-loop coalescing
// benchmarks on single-core machines: clients cannot overlap the
// sequencer, so natural batches rarely form and mode=coalesce looks like
// mode=mutex. The *-slow modes inject a per-batch commit delay
// (Options.SlowCommit) so the amortization is measurable anyway —
// clients queue while the sequencer "commits", and docs/batch grows.
func noteSingleCPU(b *testing.B) {
	b.Helper()
	if runtime.GOMAXPROCS(0) == 1 {
		b.Logf("GOMAXPROCS=1: natural batching needs client/sequencer overlap; trust the mode=*-slow variants (injected %v commit delay) on this machine", benchSlowCommit)
	}
}

// BenchmarkServeCoalesce is the headline contention benchmark: N
// closed-loop clients each submit one matching document at a time.
// mode=mutex serializes clients with a lock around Detector.Add (the
// obvious thread-safe wrapper); mode=coalesce funnels them through the
// group-commit sequencer, which batches whatever queued while the
// previous batch was in flight and pays the parallel AddBatch fan-out
// once per batch instead of once per document. The *-slow pair replays
// the comparison with a synthetic slow commit (giant template sets, WAL
// fsync on spinning disks): the mutex pays the delay per document, the
// coalescer per batch.
func BenchmarkServeCoalesce(b *testing.B) {
	noteSingleCPU(b)
	for _, clients := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("mode=mutex/clients=%d", clients), func(b *testing.B) {
			det := benchDetector(b)
			var mu sync.Mutex
			runClients(b, clients, func(text string) {
				mu.Lock()
				det.Add(text)
				mu.Unlock()
			})
		})
		b.Run(fmt.Sprintf("mode=coalesce/clients=%d", clients), func(b *testing.B) {
			det := benchDetector(b)
			c := NewCoalescer(det, Options{})
			runClients(b, clients, func(text string) {
				if _, err := c.Submit([]string{text}); err != nil {
					b.Error(err)
				}
			})
			b.StopTimer()
			reportDocsPerBatch(b, c)
			if err := c.Close(); err != nil {
				b.Fatal(err)
			}
		})
		b.Run(fmt.Sprintf("mode=mutex-slow/clients=%d", clients), func(b *testing.B) {
			det := benchDetector(b)
			var mu sync.Mutex
			runClients(b, clients, func(text string) {
				mu.Lock()
				det.Add(text)
				time.Sleep(benchSlowCommit) // per-document commit cost
				mu.Unlock()
			})
		})
		b.Run(fmt.Sprintf("mode=coalesce-slow/clients=%d", clients), func(b *testing.B) {
			det := benchDetector(b)
			c := NewCoalescer(det, Options{SlowCommit: benchSlowCommit})
			runClients(b, clients, func(text string) {
				if _, err := c.Submit([]string{text}); err != nil {
					b.Error(err)
				}
			})
			b.StopTimer()
			reportDocsPerBatch(b, c)
			if err := c.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

func reportDocsPerBatch(b *testing.B, c *Coalescer) {
	b.Helper()
	if st, err := c.Stats(); err == nil && st.Serve.Batches > 0 {
		b.ReportMetric(float64(st.Serve.Docs)/float64(st.Serve.Batches), "docs/batch")
	}
}

// BenchmarkServeSharded sweeps the shard count under closed-loop load:
// S independent sequencers (hash routing) against 16 and 64 clients,
// plus a WAL-enabled pair (fsync off, so the measured cost is the
// serialization and write path, not the device). docs/batch aggregates
// across shards.
func BenchmarkServeSharded(b *testing.B) {
	noteSingleCPU(b)
	run := func(b *testing.B, sh *Sharded, clients int) {
		runClients(b, clients, func(text string) {
			if _, err := sh.Submit([]string{text}); err != nil {
				b.Error(err)
			}
		})
		b.StopTimer()
		if st, err := sh.Stats(); err == nil && st.Total.Serve.Batches > 0 {
			b.ReportMetric(st.DocsPerBatch, "docs/batch")
		}
		if err := sh.Close(); err != nil {
			b.Fatal(err)
		}
	}
	for _, shards := range []int{1, 2, 4, 8} {
		for _, clients := range []int{16, 64} {
			b.Run(fmt.Sprintf("shards=%d/clients=%d", shards, clients), func(b *testing.B) {
				run(b, benchSharded(b, shards, "", Options{}), clients)
			})
		}
	}
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d/clients=64/wal=1", shards), func(b *testing.B) {
			run(b, benchSharded(b, shards, b.TempDir(), Options{}), 64)
		})
	}
}

// runClients drives b.N single-document submissions through `submit`
// from `clients` closed-loop goroutines sharing one atomic work counter.
func runClients(b *testing.B, clients int, submit func(text string)) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				submit(benchProbes[int(i)%len(benchProbes)])
			}
		}()
	}
	wg.Wait()
}

// BenchmarkServeHTTP measures end-to-end request cost through the full
// HTTP/JSON stack (routing, body decode, coalesce, encode) with 16
// concurrent keep-alive clients.
func BenchmarkServeHTTP(b *testing.B) {
	sh := benchSharded(b, 1, "", Options{})
	ts := httptest.NewServer(NewServer(sh, "").Handler())
	defer func() {
		ts.Close()
		if err := sh.Close(); err != nil {
			b.Error(err)
		}
	}()

	const clients = 16
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        clients * 2,
		MaxIdleConnsPerHost: clients * 2,
	}}
	bodies := make([]string, len(benchProbes))
	for i, p := range benchProbes {
		bodies[i] = fmt.Sprintf(`{"text":%q}`, p)
	}

	b.ReportAllocs()
	b.ResetTimer()
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(b.N) {
					return
				}
				resp, err := client.Post(ts.URL+"/v1/docs", "application/json",
					strings.NewReader(bodies[int(i)%len(bodies)]))
				if err != nil {
					b.Error(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Errorf("status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
}
