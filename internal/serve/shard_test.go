package serve

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"infoshield/internal/core"
	"infoshield/internal/stream"
	"infoshield/internal/tokenize"
)

func shardMineDetector(mineBatch int) func() *stream.Detector {
	return func() *stream.Detector {
		det := stream.New(core.Options{})
		det.BatchSize = mineBatch
		return det
	}
}

// shardOfText mirrors the sharder's routing decision for a raw text.
func shardOfText(mode, text string, S int) int {
	var tk tokenize.Tokenizer
	return int(routeKey(mode, tk.Tokens(text)) % uint64(S))
}

func TestRouteKey(t *testing.T) {
	var tk tokenize.Tokenizer
	eng := tk.Tokens("limited offer buy now")
	eng2 := tk.Tokens("limited offer buy later")
	rus := tk.Tokens("срочно купить сейчас дешево")

	// Pure function: stable across calls.
	if routeKey(RouteHash, eng) != routeKey(RouteHash, eng) {
		t.Fatal("hash route key not deterministic")
	}
	// Token boundaries matter for the hash.
	if fnvWords([]string{"ab", "c"}) == fnvWords([]string{"a", "bc"}) {
		t.Fatal("token boundary collision")
	}
	// Language routing groups same-script documents and separates scripts.
	if routeKey(RouteLang, eng) != routeKey(RouteLang, eng2) {
		t.Fatal("two latin docs got different lang keys")
	}
	if routeKey(RouteLang, eng) == routeKey(RouteLang, rus) {
		t.Fatal("latin and cyrillic docs share a lang key")
	}
	// Japanese: any kana classifies the kana/han mix as one language.
	jp := tk.Tokens("激安 ブランド 時計 販売")
	cn := tk.Tokens("出售 廉价 手表 正品")
	if routeKey(RouteLang, jp) == routeKey(RouteLang, cn) {
		t.Fatal("japanese and chinese docs share a lang key")
	}
	// No letters at all: falls back to the content hash, so distinct
	// numeric docs can still spread across shards.
	d1, d2 := tk.Tokens("123 456"), tk.Tokens("789 012")
	if routeKey(RouteLang, d1) == routeKey(RouteLang, d2) {
		t.Fatal("letterless docs should fall back to content hash")
	}
	if !validRoute(RouteHash) || !validRoute(RouteLang) || validRoute("nope") {
		t.Fatal("validRoute")
	}
}

// TestShardedEquivalence is the tentpole determinism gate.
//
// S=1 with hash routing must be *byte-identical* to the unsharded
// coalescer: same verdicts for the same request sequence and the same
// serialized detector state. S>1 must decompose exactly: each shard's
// verdict stream equals a serial reference detector fed that shard's
// subsequence of the input, with ids encoding shard and arrival order.
func TestShardedEquivalence(t *testing.T) {
	const mineBatch = 16
	docs := corpusFor(11, 240)

	t.Run("S1-byte-identical", func(t *testing.T) {
		sh := newTestSharded(t, ShardedConfig{Shards: 1, NewDetector: shardMineDetector(mineBatch)}, 0)
		det := stream.New(core.Options{})
		det.BatchSize = mineBatch
		c := NewCoalescer(det, Options{})

		for i := 0; i < len(docs); {
			k := 1 + i%3
			if i+k > len(docs) {
				k = len(docs) - i
			}
			batch := docs[i : i+k]
			vs, err := sh.Submit(batch)
			if err != nil {
				t.Fatal(err)
			}
			ws, err := c.Submit(batch)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(vs, ws) {
				t.Fatalf("at doc %d: sharded %+v != unsharded %+v", i, vs, ws)
			}
			i += k
		}
		if err := sh.Close(); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		if err := sh.shards[0].det.Save(&a); err != nil {
			t.Fatal(err)
		}
		if err := det.Save(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatal("S=1 serialized state differs from the unsharded detector")
		}
	})

	for _, S := range []int{2, 3, 4} {
		S := S
		t.Run(fmt.Sprintf("S%d-serial", S), func(t *testing.T) {
			sh := newTestSharded(t, ShardedConfig{Shards: S, NewDetector: shardMineDetector(mineBatch)}, 0)
			subseq := make([][]string, S)
			for i := 0; i < len(docs); {
				k := 1 + i%4
				if i+k > len(docs) {
					k = len(docs) - i
				}
				batch := docs[i : i+k]
				vs, err := sh.Submit(batch)
				if err != nil {
					t.Fatal(err)
				}
				for j, text := range batch {
					home := shardOfText(RouteHash, text, S)
					local := len(subseq[home])
					subseq[home] = append(subseq[home], text)
					if vs[j].ID != local*S+home {
						t.Fatalf("doc %q: id %d, want local %d on shard %d", text, vs[j].ID, local, home)
					}
					if vs[j].Template >= 0 && vs[j].Template%S != home {
						t.Fatalf("doc %q: template %d not on home shard %d", text, vs[j].Template, home)
					}
				}
				i += k
			}
			if err := sh.Close(); err != nil {
				t.Fatal(err)
			}
			for k := 0; k < S; k++ {
				compareToReplay(t, sh.shards[k].det, subseq[k], mineBatch)
			}
		})
	}

	t.Run("S4-concurrent", func(t *testing.T) {
		const S = 4
		sh := newTestSharded(t, ShardedConfig{Shards: S, NewDetector: shardMineDetector(mineBatch)}, 0)
		clients, perClient := 8, 50
		if testing.Short() {
			clients, perClient = 4, 25
		}
		var mu sync.Mutex
		byID := map[int]string{}
		var wg sync.WaitGroup
		for cl := 0; cl < clients; cl++ {
			wg.Add(1)
			go func(cl int) {
				defer wg.Done()
				docs := corpusFor(int64(5000+cl), perClient)
				for i := 0; i < len(docs); {
					k := 1 + (cl+i)%3
					if i+k > len(docs) {
						k = len(docs) - i
					}
					vs, err := sh.Submit(docs[i : i+k])
					if err != nil {
						t.Errorf("client %d: %v", cl, err)
						return
					}
					mu.Lock()
					for j, v := range vs {
						if _, dup := byID[v.ID]; dup {
							t.Errorf("duplicate id %d", v.ID)
						}
						byID[v.ID] = docs[i+j]
					}
					mu.Unlock()
					i += k
				}
			}(cl)
		}
		wg.Wait()
		if err := sh.Close(); err != nil {
			t.Fatal(err)
		}

		// Reconstruct each shard's arrival sequence from the ids (global =
		// local*S + shard), check density, and replay it serially.
		subseq := make([][]string, S)
		for k := range subseq {
			subseq[k] = make([]string, 0, len(byID)/S+1)
		}
		counts := make([]int, S)
		for id := range byID {
			counts[id%S]++
		}
		for k := 0; k < S; k++ {
			subseq[k] = make([]string, counts[k])
		}
		for id, text := range byID {
			k, local := id%S, id/S
			if local >= counts[k] {
				t.Fatalf("shard %d ids not dense: local %d with only %d docs", k, local, counts[k])
			}
			subseq[k][local] = text
		}
		for k := 0; k < S; k++ {
			// Routing invariant: every document on shard k routed there.
			for _, text := range subseq[k] {
				if home := shardOfText(RouteHash, text, S); home != k {
					t.Fatalf("doc %q on shard %d, routes to %d", text, k, home)
				}
			}
			compareToReplay(t, sh.shards[k].det, subseq[k], mineBatch)
		}
	})
}

// TestShardedWALReplay simulates a crash (Close without Drain leaves the
// WAL intact) and verifies reboot replays to the exact pre-crash
// assignment map — fully when nothing was snapshotted, and above the
// snapshot high-water mark when a live snapshot happened mid-stream.
func TestShardedWALReplay(t *testing.T) {
	for _, tc := range []struct {
		name     string
		S        int
		snapshot bool
	}{
		{"S1-no-snapshot", 1, false},
		{"S3-no-snapshot", 3, false},
		{"S3-mid-stream-snapshot", 3, true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := ShardedConfig{
				Shards: tc.S, WALDir: dir, WALNoSync: true,
				StatePath:   filepath.Join(dir, "state.json"),
				NewDetector: shardMineDetector(16),
			}
			sh, err := NewSharded(cfg)
			if err != nil {
				t.Fatal(err)
			}

			docs := corpusFor(21, 180)
			var ids []int
			hwm := make([]int, tc.S)
			for i, text := range docs {
				if i == 60 {
					if err := sh.Flush(); err != nil { // logged flush marker
						t.Fatal(err)
					}
				}
				if tc.snapshot && i == 120 {
					if _, err := sh.Snapshot(cfg.StatePath); err != nil {
						t.Fatal(err)
					}
					// Each shard's snapshot hwm = documents routed to it so far.
					for _, id := range ids {
						if id/tc.S+1 > hwm[id%tc.S] {
							hwm[id%tc.S] = id/tc.S + 1
						}
					}
				}
				vs, err := sh.Submit([]string{text})
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, vs[0].ID)
			}

			want := map[int]Verdict{}
			for _, id := range ids {
				v, err := sh.Assignment(id)
				if err != nil {
					t.Fatal(err)
				}
				want[id] = v
			}
			wantTmpls, err := sh.Templates()
			if err != nil {
				t.Fatal(err)
			}
			// Crash: no drain, no final snapshot — the WAL is the only record
			// of everything after the last (or no) snapshot.
			if err := sh.Close(); err != nil {
				t.Fatal(err)
			}

			sh2, err := NewSharded(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := sh2.Close(); err != nil {
					t.Error(err)
				}
			}()
			st2, err := sh2.Stats()
			if err != nil {
				t.Fatal(err)
			}
			replayed := int64(0)
			for _, ps := range st2.PerShard {
				if ps.WAL == nil {
					t.Fatal("wal stats missing")
				}
				replayed += ps.WAL.Replayed
			}
			wantReplayed := int64(len(ids))
			if tc.snapshot {
				wantReplayed = 0
				for k, h := range hwm {
					var total int
					for _, id := range ids {
						if id%tc.S == k {
							total++
						}
					}
					wantReplayed += int64(total - h)
				}
			}
			if replayed != wantReplayed {
				t.Fatalf("replayed %d records, want %d", replayed, wantReplayed)
			}
			for _, id := range ids {
				if tc.snapshot && id/tc.S < hwm[id%tc.S] {
					continue // below the snapshot mark: state-only, map not kept
				}
				v, err := sh2.Assignment(id)
				if err != nil {
					t.Fatal(err)
				}
				if v != want[id] {
					t.Fatalf("doc %d after replay: %+v, pre-crash %+v", id, v, want[id])
				}
			}
			gotTmpls, err := sh2.Templates()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotTmpls, wantTmpls) {
				t.Fatalf("templates after replay differ:\n%+v\n%+v", gotTmpls, wantTmpls)
			}
		})
	}
}

// TestShardedDrain verifies the graceful path: every buffered document
// mined, manifest written, WALs truncated — and a reboot needs no replay.
func TestShardedDrain(t *testing.T) {
	dir := t.TempDir()
	cfg := ShardedConfig{
		Shards: 2, WALDir: dir, WALNoSync: true,
		StatePath:   filepath.Join(dir, "state.json"),
		NewDetector: shardMineDetector(1 << 30),
	}
	sh, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Submit(corpusFor(7, 120)); err != nil {
		t.Fatal(err)
	}
	if st, err := sh.Stats(); err != nil {
		t.Fatal(err)
	} else if st.Total.PendingDocs == 0 {
		t.Fatal("test needs pending docs at drain time")
	}
	if err := sh.Drain(cfg.StatePath); err != nil {
		t.Fatal(err)
	}
	// Idempotent: a second drain (or close) is a no-op.
	if err := sh.Drain(cfg.StatePath); err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	for k := 0; k < cfg.Shards; k++ {
		info, err := os.Stat(filepath.Join(dir, fmt.Sprintf("wal-%d.log", k)))
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() != 0 {
			t.Fatalf("wal-%d not truncated after drain: %d bytes", k, info.Size())
		}
	}

	sh2, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sh2.Close()
	st, err := sh2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Total.Templates == 0 || st.Total.PendingDocs != 0 {
		t.Fatalf("post-drain boot: %+v, want mined templates and no pending", st.Total)
	}
	for _, ps := range st.PerShard {
		if ps.WAL.Replayed != 0 {
			t.Fatalf("shard %d replayed %d records after a clean drain", ps.Shard, ps.WAL.Replayed)
		}
	}
}

// TestShardedChaoticShutdown generalizes the Coalescer accept-gate audit
// to S shards: Close races live multi-document submissions, and every
// request must be all-or-nothing — ErrClosed with no documents
// committed anywhere, or full verdicts with per-shard-dense ids. The
// sharded gate (RLock across the whole fan-out) is what rules out a
// request landing on shard A while shard B is already closed.
func TestShardedChaoticShutdown(t *testing.T) {
	const S = 3
	clients := 8
	if testing.Short() {
		clients = 4
	}
	sh := newTestSharded(t, ShardedConfig{Shards: S, NewDetector: shardMineDetector(64)}, 0)

	var mu sync.Mutex
	ids := map[int]bool{}
	var wg sync.WaitGroup
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			docs := corpusFor(int64(300+cl), 150)
			for i := 0; i+3 <= len(docs); i += 3 {
				// 3-document batches: with S=3 these regularly fan out to
				// multiple shards, exercising the all-or-nothing path.
				vs, err := sh.Submit(docs[i : i+3])
				if err != nil {
					if err != ErrClosed {
						t.Errorf("client %d: %v", cl, err)
					}
					return
				}
				if len(vs) != 3 {
					t.Errorf("client %d: partial verdicts %d/3", cl, len(vs))
					return
				}
				mu.Lock()
				for _, v := range vs {
					if ids[v.ID] {
						t.Errorf("duplicate id %d", v.ID)
					}
					ids[v.ID] = true
				}
				mu.Unlock()
			}
		}(cl)
	}
	time.Sleep(2 * time.Millisecond)
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	// Per-shard density: every accepted document was committed and acked
	// on its shard, with no gaps — the witness that no sub-request was
	// dropped by the race.
	counts := make([]int, S)
	for id := range ids {
		counts[id%S]++
	}
	for id := range ids {
		if id/S >= counts[id%S] {
			t.Fatalf("shard %d ids not dense: local %d with %d docs", id%S, id/S, counts[id%S])
		}
	}
}

// TestShardedLegacyState: a PR 5 single-detector state file loads into a
// 1-shard daemon and is rejected, with a clear error, for S>1.
func TestShardedLegacyState(t *testing.T) {
	det := stream.New(core.Options{})
	det.BatchSize = 1 << 30
	det.AddBatch(corpusFor(7, 120))
	det.Flush()
	if det.NumTemplates() == 0 {
		t.Fatal("seed mined nothing")
	}
	path := filepath.Join(t.TempDir(), "legacy.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := det.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	sh, err := NewSharded(ShardedConfig{Shards: 1, StatePath: path})
	if err != nil {
		t.Fatalf("legacy state with 1 shard: %v", err)
	}
	tmpls, err := sh.Templates()
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpls) != det.NumTemplates() {
		t.Fatalf("restored %d templates, want %d", len(tmpls), det.NumTemplates())
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := NewSharded(ShardedConfig{Shards: 2, StatePath: path}); err == nil ||
		!strings.Contains(err.Error(), "single-detector") {
		t.Fatalf("legacy state with 2 shards: err = %v, want single-detector rejection", err)
	}
}

// TestShardedSnapshotGenerations: repeated snapshots to one path leave
// exactly one generation of shard files (plus the manifest) behind, and
// the newest always loads.
func TestShardedSnapshotGenerations(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	cfg := ShardedConfig{Shards: 2, StatePath: path, NewDetector: shardMineDetector(16)}
	sh, err := NewSharded(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	docs := corpusFor(9, 90)
	for i := 0; i < 3; i++ {
		if _, err := sh.Submit(docs[i*30 : (i+1)*30]); err != nil {
			t.Fatal(err)
		}
		if _, err := sh.Snapshot(path); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var shardFiles int
	for _, e := range entries {
		if strings.Contains(e.Name(), ".shard") {
			shardFiles++
		}
	}
	if shardFiles != cfg.Shards {
		t.Fatalf("%d shard files on disk after 3 snapshots, want %d (old generations removed)", shardFiles, cfg.Shards)
	}
	sh2, err := NewSharded(cfg)
	if err != nil {
		t.Fatalf("latest generation does not load: %v", err)
	}
	if err := sh2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedConfigValidation covers construction-time rejections.
func TestShardedConfigValidation(t *testing.T) {
	if _, err := NewSharded(ShardedConfig{Shards: -1}); err == nil {
		t.Error("negative shard count accepted")
	}
	if _, err := NewSharded(ShardedConfig{Route: "nope"}); err == nil {
		t.Error("unknown route accepted")
	}

	// Shard-count and route mismatches against a saved manifest are boot
	// errors, not silent re-partitions.
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	sh, err := NewSharded(ShardedConfig{Shards: 2, StatePath: path, NewDetector: shardMineDetector(16)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Submit(corpusFor(5, 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewSharded(ShardedConfig{Shards: 3, StatePath: path}); err == nil {
		t.Error("shard-count mismatch accepted")
	}
	if _, err := NewSharded(ShardedConfig{Shards: 2, Route: RouteLang, StatePath: path}); err == nil {
		t.Error("route mismatch accepted")
	}
}

// TestShardedLangRouting: language routing sends every member of a
// monoscript campaign to one shard, so its template is mined exactly
// once across the fleet.
func TestShardedLangRouting(t *testing.T) {
	const S = 4
	sh := newTestSharded(t, ShardedConfig{Shards: S, Route: RouteLang, NewDetector: shardMineDetector(8)}, 0)
	defer func() {
		if err := sh.Close(); err != nil {
			t.Error(err)
		}
	}()

	latin := []string{
		"limited offer buy the premium package today visit site one",
		"limited offer buy the premium package today visit site two",
		"limited offer buy the premium package today visit site three",
	}
	cyr := []string{
		"срочно продаю новые часы дешево звоните сегодня один",
		"срочно продаю новые часы дешево звоните сегодня два",
		"срочно продаю новые часы дешево звоните сегодня три",
	}
	vs, err := sh.Submit(append(append([]string{}, latin...), cyr...))
	if err != nil {
		t.Fatal(err)
	}
	latinShard, cyrShard := vs[0].ID%S, vs[len(latin)].ID%S
	for i, v := range vs {
		want := latinShard
		if i >= len(latin) {
			want = cyrShard
		}
		if v.ID%S != want {
			t.Fatalf("doc %d on shard %d, want %d (language split within one script)", i, v.ID%S, want)
		}
	}
}
