package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync/atomic"
)

// wal is one shard's write-ahead log: an append-only file of JSON-lines
// records, one per document, written by the shard's sequencer through
// the Coalescer's Commit hook — all of a batch's records, one buffered
// flush, one fsync, then the batch is acked. Because the hook fires once
// per group commit, WAL batching rides the coalescer's natural batching:
// under load, many documents share one fsync.
//
// Durability contract: a record is on disk before its submitter sees a
// verdict, so a crash between snapshots loses nothing that was acked
// (documents in a batch cut down by the crash were never acked). Replay
// on boot re-ingests records at or above the snapshot's high-water mark
// in id order; a torn tail — the partial line a mid-append crash leaves
// — is detected, dropped, and truncated away so appends resume cleanly.
//
// The log is only truncated by graceful drain, after the final snapshot
// commits; live snapshots leave it intact and replay simply skips the
// records the snapshot already absorbed.
type wal struct {
	path string
	f    *os.File
	w    *bufio.Writer
	sync bool

	// Counters are atomics: appended on the shard's sequencer goroutine,
	// read by Stats from HTTP goroutines.
	records  atomic.Int64
	batches  atomic.Int64
	flushes  atomic.Int64
	bytes    atomic.Int64
	syncs    atomic.Int64
	replayed atomic.Int64
	errs     atomic.Int64
}

// WALStats is the per-shard write-ahead-log block of /v1/stats.
type WALStats struct {
	// Records and Bytes count what this process appended (replayed
	// records are not re-appended; Replayed counts those separately).
	Records int64 `json:"records"`
	// Batches counts Commit-hook invocations — group commits — and Syncs
	// the fsyncs issued (equal unless fsync is disabled). Records/Batches
	// is the WAL's amortization factor.
	Batches int64 `json:"batches"`
	// Flushes counts explicit flush markers logged (operator-triggered
	// mining passes are part of the event sequence replay reproduces).
	Flushes int64 `json:"flushes"`
	Bytes   int64 `json:"bytes"`
	Syncs   int64 `json:"syncs"`
	// Replayed counts records re-ingested at boot.
	Replayed int64 `json:"replayed"`
	// Errors counts append/fsync failures (durability degraded).
	Errors int64 `json:"errors"`
}

// walRecord is one logged event: a document (shard-local id + raw text)
// or an explicit flush marker. Everything else (tokenization, verdict,
// template state) is a deterministic function of the event sequence —
// detector auto-flushes at BatchSize are reproduced by the replayed
// Adds themselves, but operator-triggered flushes change the assignment
// map (pending documents get mined early), so they are logged and
// re-executed to reproduce the exact pre-crash state.
type walRecord struct {
	ID    int    `json:"id"`
	Text  string `json:"text,omitempty"`
	Flush bool   `json:"flush,omitempty"`
}

// openWAL opens (creating if absent) the shard WAL at path, replays
// records with id >= hwm into det — verifying the detector reassigns
// exactly the logged ids — truncates any torn tail, and leaves the file
// positioned for appends. det must be rebased (SetNextID) to hwm before
// the call.
func openWAL(path string, det detectorReplay, hwm int, fsync bool) (*wal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	w := &wal{path: path, f: f, sync: fsync}
	good, replayed, err := w.replay(det, hwm)
	if err != nil {
		_ = f.Close()
		return nil, err
	}
	// Drop the torn tail (and anything after a corrupt line) so the next
	// append starts at a record boundary.
	if err := f.Truncate(good); err != nil {
		_ = f.Close()
		return nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, err
	}
	w.replayed.Store(int64(replayed))
	w.w = bufio.NewWriter(f)
	return w, nil
}

// detectorReplay is the slice of stream.Detector replay needs; a narrow
// interface keeps openWAL testable against a recording stub.
type detectorReplay interface {
	Add(text string) int
	Flush()
}

// replay scans the log from the start, feeding records at or above hwm
// to det in file order (which is id order: a single sequencer appends).
// It returns the byte offset just past the last intact record. A record
// that fails to parse ends the scan — the torn-tail model: the only
// expected corruption is a partial final line from a crash mid-append.
//
// Flush markers carry no id; one is re-executed only when the scan has
// replayed a document past hwm (pos > hwm). Markers at or before the
// boundary are skipped: their effect is folded into the snapshot, and a
// marker exactly at the boundary acted on a state the snapshot wrote
// already flushed — a no-op either way.
func (w *wal) replay(det detectorReplay, hwm int) (good int64, replayed int, err error) {
	r := bufio.NewReader(w.f)
	pos := 0 // next expected document id
	for {
		line, rerr := r.ReadBytes('\n')
		if rerr == io.EOF {
			// A byte run with no newline is a torn tail: not replayed, and
			// truncated by the caller.
			return good, replayed, nil
		}
		if rerr != nil {
			return 0, 0, rerr
		}
		var rec walRecord
		if json.Unmarshal(line, &rec) != nil {
			return good, replayed, nil
		}
		good += int64(len(line))
		if rec.Flush {
			if pos > hwm {
				det.Flush()
			}
			continue
		}
		pos = rec.ID + 1
		if rec.ID < hwm {
			continue // already absorbed by the snapshot
		}
		if got := det.Add(rec.Text); got != rec.ID {
			return 0, 0, fmt.Errorf(
				"serve: wal %s: replayed document got id %d, log says %d (state/log mismatch)",
				w.path, got, rec.ID)
		}
		replayed++
	}
}

// append logs one committed batch: every record, one writer flush, one
// fsync (policy permitting). Called from the sequencer via the Commit
// hook, before the batch's waiters are acked.
func (w *wal) append(ids []int, texts []string) error {
	n := int64(0)
	for i := range ids {
		b, err := json.Marshal(walRecord{ID: ids[i], Text: texts[i]})
		if err != nil {
			w.errs.Add(1)
			return err
		}
		if _, err := w.w.Write(b); err != nil {
			w.errs.Add(1)
			return err
		}
		if err := w.w.WriteByte('\n'); err != nil {
			w.errs.Add(1)
			return err
		}
		n += int64(len(b)) + 1
	}
	if err := w.w.Flush(); err != nil {
		w.errs.Add(1)
		return err
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			w.errs.Add(1)
			return err
		}
		w.syncs.Add(1)
	}
	w.records.Add(int64(len(ids)))
	w.batches.Add(1)
	w.bytes.Add(n)
	return nil
}

// appendFlush logs an explicit flush marker. Called on the shard's
// sequencer goroutine (inside the control op that runs the flush), so
// it is ordered exactly where the flush sits in the event sequence.
func (w *wal) appendFlush() error {
	b, err := json.Marshal(walRecord{Flush: true})
	if err != nil {
		w.errs.Add(1)
		return err
	}
	if _, err := w.w.Write(b); err != nil {
		w.errs.Add(1)
		return err
	}
	if err := w.w.WriteByte('\n'); err != nil {
		w.errs.Add(1)
		return err
	}
	if err := w.w.Flush(); err != nil {
		w.errs.Add(1)
		return err
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			w.errs.Add(1)
			return err
		}
		w.syncs.Add(1)
	}
	w.flushes.Add(1)
	w.bytes.Add(int64(len(b)) + 1)
	return nil
}

// truncate empties the log. Only called after a drain snapshot has
// committed (so every logged record is absorbed by the on-disk state)
// and after the shard's sequencer has exited (so no append races it).
func (w *wal) truncate() error {
	if err := w.w.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	return w.f.Sync()
}

// close flushes buffered appends and closes the file.
func (w *wal) close() error {
	err := w.w.Flush()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// stats snapshots the counters.
func (w *wal) stats() WALStats {
	return WALStats{
		Records:  w.records.Load(),
		Batches:  w.batches.Load(),
		Flushes:  w.flushes.Load(),
		Bytes:    w.bytes.Load(),
		Syncs:    w.syncs.Load(),
		Replayed: w.replayed.Load(),
		Errors:   w.errs.Load(),
	}
}
