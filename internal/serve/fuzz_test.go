package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"infoshield/internal/core"
	"infoshield/internal/stream"
	"infoshield/internal/tokenize"
)

// FuzzServe drives an interleaved program of HTTP single-doc, batch,
// flush, and snapshot requests against the daemon's handler and mirrors
// every operation on a serial reference detector. Each verdict in every
// HTTP response must match the reference assignment sampled at the same
// point, and each snapshot must restore to the reference's exact
// template state. The program bytes choose the operations; the payload
// contributes fuzzer-controlled document texts on top of a minable
// campaign mix.
func FuzzServe(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 0, 3}, "hello world this is text")
	f.Add([]byte{1, 1, 1, 2, 3, 2}, "a\nbb cc\n\nddd ee ff gg")
	f.Add([]byte{0, 4, 8, 2, 12, 3, 0, 1}, "limited offer buy now\nlimited offer buy now")
	f.Add([]byte{2, 2, 3, 3}, "")

	f.Fuzz(func(t *testing.T, program []byte, payload string) {
		if len(program) > 24 {
			program = program[:24]
		}
		docs := fuzzDocs(payload)

		const mineBatch = 8
		sh := newTestSharded(t, ShardedConfig{Coalescer: Options{MaxBatch: 4}}, mineBatch)
		ts := httptest.NewServer(NewServer(sh, "").Handler())
		defer func() {
			ts.Close()
			if err := sh.Close(); err != nil {
				t.Error(err)
			}
		}()

		ref := stream.New(core.Options{Workers: 1})
		ref.BatchSize = mineBatch

		next := 0 // cursor into docs
		takeDoc := func() string {
			d := docs[next%len(docs)]
			next++
			return d
		}

		for pc, op := range program {
			switch op % 4 {
			case 0: // single-document ingest
				text := takeDoc()
				var v Verdict
				fuzzPost(t, ts.URL+"/v1/docs", mustJSON(t, docsRequest{Text: &text}), &v)
				wantID := ref.Add(text)
				checkVerdict(t, pc, v, wantID, ref)
			case 1: // batch ingest of 1–3 documents
				k := 1 + int(op>>2)%3
				texts := make([]string, k)
				for i := range texts {
					texts[i] = takeDoc()
				}
				var resp docsResponse
				fuzzPost(t, ts.URL+"/v1/docs", mustJSON(t, docsRequest{Texts: texts}), &resp)
				if len(resp.Docs) != k {
					t.Fatalf("op %d: %d verdicts for %d docs", pc, len(resp.Docs), k)
				}
				wantIDs := make([]int, k)
				for i, text := range texts {
					wantIDs[i] = ref.Add(text)
				}
				for i, v := range resp.Docs {
					checkVerdict(t, pc, v, wantIDs[i], ref)
				}
			case 2: // force a mining pass
				fuzzPost(t, ts.URL+"/v1/flush", "", nil)
				ref.Flush()
			case 3: // snapshot must restore to the reference's state
				resp, err := http.Post(ts.URL+"/v1/snapshot", "application/json", nil)
				if err != nil {
					t.Fatal(err)
				}
				state, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					t.Fatalf("op %d: snapshot status %d err %v", pc, resp.StatusCode, rerr)
				}
				// A snapshot mines the pending buffer first (so the state is
				// self-contained at its high-water mark); mirror that.
				ref.Flush()
				var man manifestV2
				if err := json.Unmarshal(state, &man); err != nil {
					t.Fatalf("op %d: snapshot body is not a manifest: %v", pc, err)
				}
				if man.Version != 2 || man.Shards != 1 || len(man.States) != 1 {
					t.Fatalf("op %d: manifest %+v", pc, man)
				}
				if man.HWM[0] != next {
					t.Fatalf("op %d: snapshot hwm %d, ingested %d", pc, man.HWM[0], next)
				}
				// The shard state must be byte-identical to the reference's own
				// Save — the persisted form stores words, not vocabulary ids,
				// so it is the vocabulary-independent witness of the template
				// state (a Load into a fresh detector re-encodes ids and would
				// compare vocabulary-local numbering instead).
				var want bytes.Buffer
				if err := ref.Save(&want); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(bytes.TrimSpace(man.States[0]), bytes.TrimSpace(want.Bytes())) {
					t.Fatalf("op %d: snapshot state diverges from reference:\n%s\nvs\n%s",
						pc, man.States[0], want.Bytes())
				}
				restored := stream.New(core.Options{Workers: 1})
				if err := restored.Load(bytes.NewReader(man.States[0])); err != nil {
					t.Fatalf("op %d: snapshot does not load: %v", pc, err)
				}
			}
		}

		// Final state must agree with the reference on every axis the API
		// exposes.
		var st ShardedStats
		fuzzGet(t, ts.URL+"/v1/stats", &st)
		if st.Total.Templates != ref.NumTemplates() || st.Total.PendingDocs != ref.Pending() {
			t.Fatalf("final stats %+v, reference %d templates %d pending",
				st.Total, ref.NumTemplates(), ref.Pending())
		}
		if int64(next) != st.Total.Serve.Docs {
			t.Fatalf("served %d docs, counter says %d", next, st.Total.Serve.Docs)
		}
	})
}

// FuzzServeSharded is the sharded-daemon equivalence fuzzer: a random
// shard count, an op program interleaving ingest, flush, snapshot, and
// crash+reboot (close without drain, then replay from the write-ahead
// log), mirrored on S serial reference detectors fed each shard's
// subsequence via the same routing function. Every verdict, every
// post-reboot assignment, and the final template/pending state must
// match the references exactly.
func FuzzServeSharded(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 0, 3}, "hello world this is text", uint8(2))
	f.Add([]byte{0, 4, 8, 4, 12, 3, 0, 1}, "limited offer buy now\nlimited offer buy now", uint8(3))
	f.Add([]byte{1, 1, 4, 2, 3, 4}, "a\nbb cc\n\nddd ee ff gg", uint8(4))
	f.Add([]byte{4, 0, 4, 0, 4}, "", uint8(1))

	f.Fuzz(func(t *testing.T, program []byte, payload string, sseed uint8) {
		if len(program) > 20 {
			program = program[:20]
		}
		S := 1 + int(sseed)%4
		docs := fuzzDocs(payload)

		dir := t.TempDir()
		statePath := filepath.Join(dir, "state.json")
		walDir := filepath.Join(dir, "wal")
		if err := os.MkdirAll(walDir, 0o755); err != nil {
			t.Fatal(err)
		}
		const mineBatch = 8
		cfg := ShardedConfig{
			Shards: S, WALDir: walDir, WALNoSync: true, StatePath: statePath,
			Coalescer: Options{MaxBatch: 4},
			NewDetector: func() *stream.Detector {
				det := stream.New(core.Options{})
				det.BatchSize = mineBatch
				return det
			},
		}
		sh, err := NewSharded(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := sh.Close(); err != nil {
				t.Error(err)
			}
		}()

		// One serial reference detector per shard, fed exactly the
		// subsequence the router sends that shard.
		refs := make([]*stream.Detector, S)
		for k := range refs {
			refs[k] = stream.New(core.Options{Workers: 1})
			refs[k].BatchSize = mineBatch
		}
		var tk tokenize.Tokenizer
		type docRef struct{ shard, local int }
		var ingested []docRef
		// snapHWM tracks each shard's document count at the latest live
		// snapshot; bootHWM is the mark the most recent reboot loaded from.
		// Assignments below bootHWM are not reproducible after a crash (the
		// id→template map is not persisted — only template state and the
		// WAL tail are), so the final sweep skips them.
		snapHWM := make([]int, S)
		bootHWM := make([]int, S)
		refAdd := func(text string) docRef {
			k := int(routeKey(RouteHash, tk.Tokens(text)) % uint64(S))
			d := docRef{shard: k, local: refs[k].Add(text)}
			ingested = append(ingested, d)
			return d
		}
		check := func(pc int, v Verdict, d docRef) {
			t.Helper()
			if v.ID != d.local*S+d.shard {
				t.Fatalf("op %d: verdict id %d, want local %d on shard %d of %d", pc, v.ID, d.local, d.shard, S)
			}
			want := refs[d.shard].Assignment(d.local)
			wantTmpl := want.Template
			if wantTmpl >= 0 {
				wantTmpl = wantTmpl*S + d.shard
			}
			if v.Template != wantTmpl || v.Pending != want.Pending {
				t.Fatalf("op %d doc %d/%d: verdict %+v, reference %+v", pc, d.shard, d.local, v, want)
			}
		}

		next := 0
		takeDoc := func() string {
			d := docs[next%len(docs)]
			next++
			return d
		}

		for pc, op := range program {
			switch op % 5 {
			case 0: // single-document ingest
				text := takeDoc()
				vs, err := sh.Submit([]string{text})
				if err != nil {
					t.Fatalf("op %d: %v", pc, err)
				}
				check(pc, vs[0], refAdd(text))
			case 1: // batch ingest of 1–3 documents
				k := 1 + int(op>>2)%3
				texts := make([]string, k)
				for i := range texts {
					texts[i] = takeDoc()
				}
				vs, err := sh.Submit(texts)
				if err != nil {
					t.Fatalf("op %d: %v", pc, err)
				}
				drs := make([]docRef, k)
				for i, text := range texts {
					drs[i] = refAdd(text)
				}
				for i, v := range vs {
					check(pc, v, drs[i])
				}
			case 2: // force a mining pass everywhere
				if err := sh.Flush(); err != nil {
					t.Fatalf("op %d: %v", pc, err)
				}
				for _, r := range refs {
					r.Flush()
				}
			case 3: // live snapshot (flushes; WAL left intact)
				if _, err := sh.Snapshot(statePath); err != nil {
					t.Fatalf("op %d: snapshot: %v", pc, err)
				}
				for k, r := range refs {
					r.Flush()
					snapHWM[k] = r.NextID()
				}
			case 4: // crash: close without drain, reboot, replay from WAL
				if err := sh.Close(); err != nil {
					t.Fatalf("op %d: close: %v", pc, err)
				}
				sh, err = NewSharded(cfg)
				if err != nil {
					t.Fatalf("op %d: reboot: %v", pc, err)
				}
				copy(bootHWM, snapHWM)
			}
		}

		// Every acked document at or above its shard's boot mark must be
		// reproducible — including across any crash/reboot in the program:
		// WAL replay reconstructs the exact pre-crash assignment map above
		// the snapshot high-water mark (the full map when nothing was
		// snapshotted before the crash).
		for i, d := range ingested {
			if d.local < bootHWM[d.shard] {
				continue
			}
			v, err := sh.Assignment(d.local*S + d.shard)
			if err != nil {
				t.Fatal(err)
			}
			check(-1-i, v, d)
		}
		st, err := sh.Stats()
		if err != nil {
			t.Fatal(err)
		}
		wantTemplates, wantPending := 0, 0
		for _, r := range refs {
			wantTemplates += r.NumTemplates()
			wantPending += r.Pending()
		}
		if st.Total.Templates != wantTemplates || st.Total.PendingDocs != wantPending {
			t.Fatalf("final stats %+v, reference %d templates %d pending",
				st.Total, wantTemplates, wantPending)
		}
	})
}

// fuzzDocs turns the fuzzer payload into a document pool, padded with a
// deterministic campaign/noise mix so mining actually fires.
func fuzzDocs(payload string) []string {
	docs := corpusFor(3, 16)
	for _, line := range strings.Split(payload, "\n") {
		if len(line) > 80 {
			line = line[:80]
		}
		docs = append(docs, line)
	}
	return docs
}

// checkVerdict compares one HTTP verdict with the reference assignment
// sampled after the mirrored Add.
func checkVerdict(t *testing.T, pc int, v Verdict, wantID int, ref *stream.Detector) {
	t.Helper()
	if v.ID != wantID {
		t.Fatalf("op %d: verdict id %d, reference id %d", pc, v.ID, wantID)
	}
	want := ref.Assignment(wantID)
	if v.Template != want.Template || v.Pending != want.Pending {
		t.Fatalf("op %d doc %d: verdict %+v, reference %+v", pc, wantID, v, want)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// fuzzPost is postJSON with a hard failure on non-200, since every
// request the fuzz driver builds is well-formed.
func fuzzPost(t *testing.T, url, body string, out any) {
	t.Helper()
	if code := postJSON(t, url, body, out); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
}

func fuzzGet(t *testing.T, url string, out any) {
	t.Helper()
	if code := getJSON(t, url, out); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
}
