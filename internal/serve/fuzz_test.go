package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"infoshield/internal/core"
	"infoshield/internal/stream"
)

// FuzzServe drives an interleaved program of HTTP single-doc, batch,
// flush, and snapshot requests against the daemon's handler and mirrors
// every operation on a serial reference detector. Each verdict in every
// HTTP response must match the reference assignment sampled at the same
// point, and each snapshot must restore to the reference's exact
// template state. The program bytes choose the operations; the payload
// contributes fuzzer-controlled document texts on top of a minable
// campaign mix.
func FuzzServe(f *testing.F) {
	f.Add([]byte{0, 0, 1, 2, 0, 3}, "hello world this is text")
	f.Add([]byte{1, 1, 1, 2, 3, 2}, "a\nbb cc\n\nddd ee ff gg")
	f.Add([]byte{0, 4, 8, 2, 12, 3, 0, 1}, "limited offer buy now\nlimited offer buy now")
	f.Add([]byte{2, 2, 3, 3}, "")

	f.Fuzz(func(t *testing.T, program []byte, payload string) {
		if len(program) > 24 {
			program = program[:24]
		}
		docs := fuzzDocs(payload)

		const mineBatch = 8
		det := stream.New(core.Options{})
		det.BatchSize = mineBatch
		c := NewCoalescer(det, Options{MaxBatch: 4})
		ts := httptest.NewServer(NewServer(c, "").Handler())
		defer func() {
			ts.Close()
			if err := c.Close(); err != nil {
				t.Error(err)
			}
		}()

		ref := stream.New(core.Options{Workers: 1})
		ref.BatchSize = mineBatch

		next := 0 // cursor into docs
		takeDoc := func() string {
			d := docs[next%len(docs)]
			next++
			return d
		}

		for pc, op := range program {
			switch op % 4 {
			case 0: // single-document ingest
				text := takeDoc()
				var v Verdict
				fuzzPost(t, ts.URL+"/v1/docs", mustJSON(t, docsRequest{Text: &text}), &v)
				wantID := ref.Add(text)
				checkVerdict(t, pc, v, wantID, ref)
			case 1: // batch ingest of 1–3 documents
				k := 1 + int(op>>2)%3
				texts := make([]string, k)
				for i := range texts {
					texts[i] = takeDoc()
				}
				var resp docsResponse
				fuzzPost(t, ts.URL+"/v1/docs", mustJSON(t, docsRequest{Texts: texts}), &resp)
				if len(resp.Docs) != k {
					t.Fatalf("op %d: %d verdicts for %d docs", pc, len(resp.Docs), k)
				}
				wantIDs := make([]int, k)
				for i, text := range texts {
					wantIDs[i] = ref.Add(text)
				}
				for i, v := range resp.Docs {
					checkVerdict(t, pc, v, wantIDs[i], ref)
				}
			case 2: // force a mining pass
				fuzzPost(t, ts.URL+"/v1/flush", "", nil)
				ref.Flush()
			case 3: // snapshot must restore to the reference's state
				resp, err := http.Post(ts.URL+"/v1/snapshot", "application/json", nil)
				if err != nil {
					t.Fatal(err)
				}
				state, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil || resp.StatusCode != http.StatusOK {
					t.Fatalf("op %d: snapshot status %d err %v", pc, resp.StatusCode, rerr)
				}
				restored := stream.New(core.Options{Workers: 1})
				if err := restored.Load(bytes.NewReader(state)); err != nil {
					t.Fatalf("op %d: snapshot does not load: %v", pc, err)
				}
				if got, want := restored.Templates(), ref.Templates(); !reflect.DeepEqual(got, want) {
					t.Fatalf("op %d: snapshot templates diverge from reference", pc)
				}
			}
		}

		// Final state must agree with the reference on every axis the API
		// exposes.
		var st Stats
		fuzzGet(t, ts.URL+"/v1/stats", &st)
		if st.Templates != ref.NumTemplates() || st.PendingDocs != ref.Pending() {
			t.Fatalf("final stats %+v, reference %d templates %d pending",
				st, ref.NumTemplates(), ref.Pending())
		}
		if int64(next) != st.Serve.Docs {
			t.Fatalf("served %d docs, counter says %d", next, st.Serve.Docs)
		}
	})
}

// fuzzDocs turns the fuzzer payload into a document pool, padded with a
// deterministic campaign/noise mix so mining actually fires.
func fuzzDocs(payload string) []string {
	docs := corpusFor(3, 16)
	for _, line := range strings.Split(payload, "\n") {
		if len(line) > 80 {
			line = line[:80]
		}
		docs = append(docs, line)
	}
	return docs
}

// checkVerdict compares one HTTP verdict with the reference assignment
// sampled after the mirrored Add.
func checkVerdict(t *testing.T, pc int, v Verdict, wantID int, ref *stream.Detector) {
	t.Helper()
	if v.ID != wantID {
		t.Fatalf("op %d: verdict id %d, reference id %d", pc, v.ID, wantID)
	}
	want := ref.Assignment(wantID)
	if v.Template != want.Template || v.Pending != want.Pending {
		t.Fatalf("op %d doc %d: verdict %+v, reference %+v", pc, wantID, v, want)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// fuzzPost is postJSON with a hard failure on non-200, since every
// request the fuzz driver builds is well-formed.
func fuzzPost(t *testing.T, url, body string, out any) {
	t.Helper()
	if code := postJSON(t, url, body, out); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
}

func fuzzGet(t *testing.T, url string, out any) {
	t.Helper()
	if code := getJSON(t, url, out); code != http.StatusOK {
		t.Fatalf("%s: status %d", url, code)
	}
}
