// Package serve runs the streaming detector behind a concurrency-safe,
// network-ready front end. Its core is a dynamic micro-batching
// coalescer — the group-commit pattern: concurrent single-document
// requests enqueue onto one bounded channel, a single sequencer
// goroutine drains up to MaxBatch documents or a MaxWait latency budget
// (whichever comes first), runs one Detector.AddBatch over the combined
// slice (which fans matching across Options.Workers), and distributes
// the per-document verdicts back to the blocked callers.
//
// The detector stays single-writer: only the sequencer goroutine ever
// touches it, so the ingest hot path takes no locks and N concurrent
// clients transparently amortize the batched fan-out that a
// mutex-per-Add arrangement leaves idle. Verdicts are byte-identical to
// feeding the same documents to sequential Add in coalesced order —
// arrival order is the enqueue order on the channel, and AddBatch is
// already gated equivalent to an Add loop — so determinism is testable
// by replaying ids in order (see serve_test.go).
package serve

import (
	"errors"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"infoshield/internal/stream"
)

// ErrClosed is returned by every Coalescer method after Close has begun:
// the queue no longer accepts work.
var ErrClosed = errors.New("serve: coalescer closed")

// Verdict is the serving-path answer for one ingested document.
type Verdict struct {
	// ID is the detector-assigned document id (dense, arrival-ordered).
	ID int `json:"id"`
	// Template is the matched template index, or -1.
	Template int `json:"template"`
	// Pending reports that the document buffers for the next mining pass;
	// its assignment may still change (look it up later by ID).
	Pending bool `json:"pending"`
}

// Options tunes the coalescer. The zero value selects the defaults; no
// setting changes verdicts, only batching behavior and latency.
type Options struct {
	// MaxBatch is the document count that flushes a growing batch
	// immediately (default 256). A single Submit larger than MaxBatch is
	// still ingested as one batch — requests are never split, so one
	// request's documents stay contiguous in arrival order.
	MaxBatch int
	// MaxWait is how long the sequencer waits to grow a non-full batch
	// after dequeuing its first request. The default (0) never waits: the
	// sequencer drains whatever is already queued and commits — natural
	// batching, where the batch size adapts to the arrival rate because
	// requests queue up while the previous batch is in flight. A positive
	// budget trades that latency for larger batches, which only pays off
	// for open-loop producers that do not block on each verdict.
	MaxWait time.Duration
	// QueueDepth bounds the ingest queue in requests (default 1024);
	// submitters block once it fills, providing backpressure.
	QueueDepth int
	// Commit, when set, is invoked by the sequencer after each batch's
	// AddBatch and before any waiter is acked — the write-ahead-log hook:
	// one call per group commit, so WAL batching (and its single fsync)
	// rides the coalescer's natural batching for free. ids and texts run
	// in lockstep and must not be retained after the call returns. A
	// returned error is counted (Counters.CommitErrs) but the batch is
	// still acked: by then the detector has committed it.
	Commit func(ids []int, texts []string) error
	// SlowCommit injects a per-batch delay after each commit — a
	// measurement hook that simulates slow commits (giant template sets,
	// WAL fsync on spinning disks) so batching amortization is visible
	// even on single-core machines, where natural batches otherwise never
	// form. Zero (the default) for production; verdicts are unaffected.
	SlowCommit time.Duration
}

func (o Options) maxBatch() int {
	if o.MaxBatch > 0 {
		return o.MaxBatch
	}
	return 256
}

func (o Options) maxWait() time.Duration {
	if o.MaxWait < 0 {
		return 0
	}
	return o.MaxWait
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 1024
}

// request is one queue entry: an ingest request (texts + verdicts) or a
// control request (ctl + ctlDone). Control requests are executed by the
// sequencer between batches, so they see — and may mutate — a quiesced
// detector without any locking.
type request struct {
	texts    []string
	words    [][]string // pre-tokenized streams (SubmitTokens), or nil
	verdicts chan []Verdict
	ctl      func(d *stream.Detector)
	ctlDone  chan struct{}
}

// flushReason records why a batch stopped growing.
type flushReason int

const (
	flushSize     flushReason = iota // reached MaxBatch documents
	flushDeadline                    // MaxWait expired
	flushDrain                       // queue went empty with MaxWait disabled
	flushControl                     // a control request arrived mid-coalesce
	flushClose                       // the queue closed during shutdown drain
)

// histBuckets sizes the batch-size histogram: bucket 0 counts 1-document
// batches, bucket i counts sizes in (2^(i-1), 2^i], and the last bucket
// absorbs everything larger.
const histBuckets = 16

// Counters are the serve-side statistics the sequencer accumulates —
// the coalescer analogue of the detector's matcher counters.
type Counters struct {
	// Docs counts documents ingested through the coalescer.
	Docs int64 `json:"docs"`
	// Batches counts AddBatch flushes; the per-reason counters below
	// partition it.
	Batches           int64 `json:"batches"`
	BatchesBySize     int64 `json:"batches_by_size"`
	BatchesByDeadline int64 `json:"batches_by_deadline"`
	BatchesByDrain    int64 `json:"batches_by_drain"`
	BatchesByControl  int64 `json:"batches_by_control"`
	BatchesByClose    int64 `json:"batches_by_close"`
	// MaxBatchDocs is the largest single flush observed.
	MaxBatchDocs int `json:"max_batch_docs"`
	// BatchSizeHist is a log2 histogram of flush sizes: index 0 counts
	// single-document batches, index i sizes in (2^(i-1), 2^i].
	BatchSizeHist [histBuckets]int64 `json:"batch_size_hist"`
	// QueueHighWater is the deepest the request queue has been.
	QueueHighWater int `json:"queue_high_water"`
	// CoalesceWaitNs is the total time batches spent growing (first
	// dequeue to AddBatch start); divided by Batches it is the mean
	// latency the group-commit adds.
	CoalesceWaitNs int64 `json:"coalesce_wait_ns"`
	// CommitErrs counts Options.Commit (write-ahead log) failures; any
	// nonzero value means durability is degraded and the log needs
	// operator attention.
	CommitErrs int64 `json:"commit_errs"`
}

// MatcherStats mirrors stream.Stats with JSON tags for the HTTP API,
// plus two derived health signals: DPSkipRate (DPPruned / Candidates, the
// fraction of template comparisons resolved without the wildcard DP) and
// the log2 candidates-per-probe histogram. Operators watch these because
// index pruning degrades — skip rate falls, histogram mass drifts toward
// high buckets — before mean latency shows it.
type MatcherStats struct {
	Probes      int `json:"probes"`
	Candidates  int `json:"candidates"`
	Examined    int `json:"examined"`
	DPRuns      int `json:"dp_runs"`
	DPPruned    int `json:"dp_pruned"`
	BitDPRuns   int `json:"bitdp_runs"`
	BitDPPruned int `json:"bitdp_pruned"`
	// BandRuns counts exact alignments routed through the banded DP;
	// BandRetries counts band widenings (zero in healthy operation — the
	// band is seeded with the exact bit-parallel distance).
	BandRuns    int `json:"band_runs"`
	BandRetries int `json:"band_retries"`
	// BitmapSkips counts probes the token → bucket-set bitmap resolved
	// without touching a postings chunk; PostingsWalks counts the rest.
	// They partition probes on the pruned path.
	BitmapSkips   int `json:"bitmap_skips"`
	PostingsWalks int `json:"postings_walks"`
	// WalkNs / BoundNs / BitDPNs / ExactDPNs break the matcher's
	// wall-clock down by stage (postings walk + candidate assembly,
	// batched bound loop, bit-parallel refinement, exact alignment), so
	// the per-probe constant cost is observable in production.
	WalkNs    int64 `json:"walk_ns"`
	BoundNs   int64 `json:"bound_ns"`
	BitDPNs   int64 `json:"bitdp_ns"`
	ExactDPNs int64 `json:"exactdp_ns"`
	// DPSkipRate is DPPruned / Candidates, 0 before any probe.
	DPSkipRate float64 `json:"dp_skip_rate"`
	// CandPerProbeHist[k] counts probes whose surviving candidate set had
	// ⌈lg(n+1)⌉ = k members (bucket 0 is exactly zero candidates).
	CandPerProbeHist []int `json:"cand_per_probe_hist_log2"`
}

// LifecycleStats reports template mining and lifecycle activity: how
// many templates each mechanism retired, how many are live, and how much
// re-clustering the incremental miner avoided. With the lifecycle
// disabled everything except Live / Mined / Flushes / FlushDocs is zero.
type LifecycleStats struct {
	// Live is the live template count (Stats.Templates minus lifecycle
	// tombstones).
	Live int `json:"live"`
	// Mined counts templates accepted by mining passes; Merged / Evicted
	// / AgedOut count retirements by cause.
	Mined   int `json:"mined"`
	Merged  int `json:"merged"`
	Evicted int `json:"evicted"`
	AgedOut int `json:"aged_out"`
	// Flushes counts mining passes, FlushDocs the documents they
	// consumed.
	Flushes   int `json:"flushes"`
	FlushDocs int `json:"flush_docs"`
	// MineReused / MineClustered count documents the incremental miner
	// re-clustered from its retained window vs all documents it handed
	// to clustering; ReuseRate is their ratio (0 before any incremental
	// flush).
	MineReused    int     `json:"mine_reused"`
	MineClustered int     `json:"mine_clustered"`
	ReuseRate     float64 `json:"reuse_rate"`
}

// Stats is the full serving snapshot: detector state plus coalescer
// counters, taken atomically between batches. Templates counts live
// templates (lifecycle tombstones excluded).
type Stats struct {
	Templates   int            `json:"templates"`
	PendingDocs int            `json:"pending_docs"`
	Matcher     MatcherStats   `json:"matcher"`
	Lifecycle   LifecycleStats `json:"lifecycle"`
	Serve       Counters       `json:"serve"`
}

// Coalescer is the group-commit ingest front end over one detector.
type Coalescer struct {
	det *stream.Detector
	opt Options
	ch  chan request

	// mu is the accept gate, not a hot-path detector lock: Submit and do
	// hold it shared around the channel send so Close (exclusive) can
	// mark the queue closed and close the channel without racing a send.
	mu     sync.RWMutex
	closed bool
	done   chan struct{} // closed when the sequencer exits

	queueHW atomic.Int64 // submit-side; folded into ctr on Stats reads
	ctr     Counters     // sequencer-owned

	// batch-assembly scratch, sequencer-owned and reused across flushes.
	reqbuf  []request
	textbuf []string
	wordbuf [][]string
}

// NewCoalescer wraps det and starts the sequencer goroutine. The caller
// hands over ownership: after this, det must only be touched through the
// coalescer until Close returns.
func NewCoalescer(det *stream.Detector, opt Options) *Coalescer {
	c := &Coalescer{
		det:  det,
		opt:  opt,
		ch:   make(chan request, opt.queueDepth()),
		done: make(chan struct{}),
	}
	go c.run()
	return c
}

// Submit ingests texts and blocks until their batch commits, returning
// one verdict per text in order. All of a call's documents are assigned
// contiguous ids: requests coalesce whole, they are never split across
// batches. Returns ErrClosed once Close has begun.
func (c *Coalescer) Submit(texts []string) ([]Verdict, error) {
	return c.submit(texts, nil)
}

// SubmitTokens is Submit over pre-tokenized documents: words[i] must be
// the package tokenizer's stream for texts[i]. The sharder tokenizes
// once to compute each document's routing key and hands the streams
// down here, so the detector's encode step never re-tokenizes.
func (c *Coalescer) SubmitTokens(texts []string, words [][]string) ([]Verdict, error) {
	return c.submit(texts, words)
}

func (c *Coalescer) submit(texts []string, words [][]string) ([]Verdict, error) {
	if len(texts) == 0 {
		return []Verdict{}, nil
	}
	done := make(chan []Verdict, 1)
	if err := c.enqueue(request{texts: texts, words: words, verdicts: done}); err != nil {
		return nil, err
	}
	return <-done, nil
}

// do runs fn on the sequencer goroutine between batches and blocks until
// it returns. fn sees a quiesced detector: no batch is in flight and
// every earlier-enqueued request has committed.
func (c *Coalescer) do(fn func(d *stream.Detector)) error {
	done := make(chan struct{})
	if err := c.enqueue(request{ctl: fn, ctlDone: done}); err != nil {
		return err
	}
	<-done
	return nil
}

// enqueue sends one request under the accept gate. While any reader
// holds the gate the sequencer is guaranteed alive and draining, so a
// send blocked on a full queue always completes.
func (c *Coalescer) enqueue(req request) error {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if c.closed {
		return ErrClosed
	}
	c.ch <- req
	if depth := int64(len(c.ch)); depth > c.queueHW.Load() {
		// Racy max is fine: the high-water mark is a diagnostic, and any
		// lost update is bounded by a concurrent larger observation.
		c.queueHW.Store(depth)
	}
	return nil
}

// Flush forces a mining pass over the detector's buffered documents.
func (c *Coalescer) Flush() error {
	return c.do(func(d *stream.Detector) { d.Flush() })
}

// Assignment returns the current verdict for a document id.
func (c *Coalescer) Assignment(id int) (stream.Assignment, error) {
	var a stream.Assignment
	err := c.do(func(d *stream.Detector) { a = d.Assignment(id) })
	return a, err
}

// Templates returns the mined templates rendered for reporting. The
// slice is indexed by template id and includes retired slots (Dead set)
// so positions stay stable across evictions and merges; listings that
// only want live templates filter on Dead.
func (c *Coalescer) Templates() ([]stream.TemplateInfo, error) {
	var out []stream.TemplateInfo
	err := c.do(func(d *stream.Detector) {
		out = make([]stream.TemplateInfo, d.NumTemplates())
		for i := range out {
			out[i] = d.TemplateInfo(i)
		}
	})
	return out, err
}

// Stats snapshots detector and coalescer counters between batches.
func (c *Coalescer) Stats() (Stats, error) {
	var st Stats
	err := c.do(func(d *stream.Detector) {
		ds := d.Stats()
		m := MatcherStats{
			Probes:           ds.Probes,
			Candidates:       ds.Candidates,
			Examined:         ds.Examined,
			DPRuns:           ds.DPRuns,
			DPPruned:         ds.DPPruned,
			BitDPRuns:        ds.BitDPRuns,
			BitDPPruned:      ds.BitDPPruned,
			BandRuns:         ds.BandRuns,
			BandRetries:      ds.BandRetries,
			BitmapSkips:      ds.BitmapSkips,
			PostingsWalks:    ds.PostingsWalks,
			WalkNs:           ds.WalkNs,
			BoundNs:          ds.BoundNs,
			BitDPNs:          ds.BitDPNs,
			ExactDPNs:        ds.ExactDPNs,
			CandPerProbeHist: append([]int(nil), ds.CandHist[:]...),
		}
		if ds.Candidates > 0 {
			m.DPSkipRate = float64(ds.DPPruned) / float64(ds.Candidates)
		}
		lc := LifecycleStats{
			Live:          d.NumLive(),
			Mined:         ds.TemplatesMined,
			Merged:        ds.TemplatesMerged,
			Evicted:       ds.TemplatesEvicted,
			AgedOut:       ds.TemplatesAged,
			Flushes:       ds.Flushes,
			FlushDocs:     ds.FlushDocs,
			MineReused:    ds.MineReusedDocs,
			MineClustered: ds.MineClusteredDocs,
		}
		if ds.MineClusteredDocs > 0 {
			lc.ReuseRate = float64(ds.MineReusedDocs) / float64(ds.MineClusteredDocs)
		}
		st = Stats{
			Templates:   d.NumLive(),
			PendingDocs: d.Pending(),
			Matcher:     m,
			Lifecycle:   lc,
			Serve:       c.ctr,
		}
		st.Serve.QueueHighWater = int(c.queueHW.Load())
	})
	return st, err
}

// Snapshot serializes the detector state to w — mined templates,
// lifecycle markers, and the pending buffer (texts and ids), so a plain
// snapshot no longer loses buffered documents.
func (c *Coalescer) Snapshot(w io.Writer) error {
	var saveErr error
	if err := c.do(func(d *stream.Detector) { saveErr = d.Save(w) }); err != nil {
		return err
	}
	return saveErr
}

// SnapshotFlush mines the pending buffer, serializes the template state
// to w, and returns the document-id high-water mark — all in one control
// step, so the written state is self-contained at exactly hwm documents:
// write-ahead-log replay can skip every record below hwm and reproduce
// the pre-snapshot detector from the state file alone. This is the
// per-shard primitive behind the sharded snapshot manifest.
func (c *Coalescer) SnapshotFlush(w io.Writer) (hwm int, err error) {
	var saveErr error
	if derr := c.do(func(d *stream.Detector) {
		d.Flush()
		saveErr = d.Save(w)
		hwm = d.NextID()
	}); derr != nil {
		return 0, derr
	}
	return hwm, saveErr
}

// Load restores templates saved by Snapshot (or stream.Detector.Save)
// into the detector, merging after any templates it already holds.
func (c *Coalescer) Load(r io.Reader) error {
	var loadErr error
	if err := c.do(func(d *stream.Detector) { loadErr = d.Load(r) }); err != nil {
		return err
	}
	return loadErr
}

// Close stops accepting work, drains every already-accepted request —
// all of them receive verdicts — and waits for the sequencer to exit.
// Safe to call more than once.
func (c *Coalescer) Close() error {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		close(c.ch)
	}
	c.mu.Unlock()
	<-c.done
	return nil
}

// run is the sequencer: the only goroutine that touches the detector.
// It blocks for a first request, coalesces ingests into a batch, commits
// the batch, and executes control requests between batches, preserving
// queue order exactly.
func (c *Coalescer) run() {
	defer close(c.done)
	for {
		req, ok := <-c.ch
		if !ok {
			return
		}
		for {
			if req.ctl != nil {
				req.ctl(c.det)
				close(req.ctlDone)
				break
			}
			pending, hasPending, chClosed := c.coalesce(req)
			if chClosed {
				return
			}
			if !hasPending {
				break
			}
			req = pending
		}
	}
}

// coalesce grows a batch from first until MaxBatch documents, the
// MaxWait deadline, an empty queue (MaxWait disabled), a control
// request, or queue close — then commits it. A control request dequeued
// mid-coalesce is returned to run so it executes after the batch it
// interrupted, keeping queue order.
func (c *Coalescer) coalesce(first request) (pending request, hasPending, chClosed bool) {
	reqs := append(c.reqbuf[:0], first)
	docs := len(first.texts)
	start := time.Now()
	reason := flushSize
	var timer *time.Timer

collect:
	for docs < c.opt.maxBatch() {
		var req request
		var ok bool
		if c.opt.maxWait() == 0 {
			select {
			case req, ok = <-c.ch:
			default:
				reason = flushDrain
				break collect
			}
		} else {
			if timer == nil {
				timer = time.NewTimer(c.opt.maxWait())
				defer timer.Stop()
			}
			select {
			case req, ok = <-c.ch:
			case <-timer.C:
				reason = flushDeadline
				break collect
			}
		}
		if !ok {
			reason = flushClose
			chClosed = true
			break
		}
		if req.ctl != nil {
			reason = flushControl
			pending, hasPending = req, true
			break
		}
		reqs = append(reqs, req)
		docs += len(req.texts)
	}

	c.commit(reqs, docs, start, reason)
	c.reqbuf = reqs[:0]
	return pending, hasPending, chClosed
}

// commit runs one AddBatch over the coalesced texts and distributes the
// per-document verdicts back to the waiting submitters, whose verdict
// channels are buffered so the sequencer never blocks on a slow reader.
// When every request arrived pre-tokenized (SubmitTokens), the batch
// goes through AddBatchTokens so no document is tokenized twice; a
// single untokenized request falls the whole batch back to AddBatch.
func (c *Coalescer) commit(reqs []request, docs int, start time.Time, reason flushReason) {
	texts := c.textbuf[:0]
	words := c.wordbuf[:0]
	tokenized := true
	for _, r := range reqs {
		texts = append(texts, r.texts...)
		if r.words == nil {
			tokenized = false
			continue
		}
		if tokenized {
			words = append(words, r.words...)
		}
	}
	c.ctr.CoalesceWaitNs += time.Since(start).Nanoseconds()
	c.ctr.Docs += int64(docs)
	c.ctr.Batches++
	switch reason {
	case flushSize:
		c.ctr.BatchesBySize++
	case flushDeadline:
		c.ctr.BatchesByDeadline++
	case flushDrain:
		c.ctr.BatchesByDrain++
	case flushControl:
		c.ctr.BatchesByControl++
	case flushClose:
		c.ctr.BatchesByClose++
	}
	if docs > c.ctr.MaxBatchDocs {
		c.ctr.MaxBatchDocs = docs
	}
	bucket := bits.Len(uint(docs - 1))
	if bucket >= histBuckets {
		bucket = histBuckets - 1
	}
	c.ctr.BatchSizeHist[bucket]++

	var ids []int
	if tokenized {
		ids = c.det.AddBatchTokens(texts, words)
	} else {
		ids = c.det.AddBatch(texts)
	}
	if c.opt.Commit != nil {
		// Write-ahead of the ack: the log record lands (and syncs) before
		// any waiter learns its verdict, so an acked document survives a
		// crash. One call per group commit — WAL batching for free.
		if err := c.opt.Commit(ids, texts); err != nil {
			c.ctr.CommitErrs++
		}
	}
	if c.opt.SlowCommit > 0 {
		time.Sleep(c.opt.SlowCommit)
	}
	k := 0
	for _, r := range reqs {
		vs := make([]Verdict, len(r.texts))
		for j := range r.texts {
			a := c.det.Assignment(ids[k])
			vs[j] = Verdict{ID: ids[k], Template: a.Template, Pending: a.Pending}
			k++
		}
		r.verdicts <- vs
	}
	c.textbuf = texts[:0]
	c.wordbuf = words[:0]
}
