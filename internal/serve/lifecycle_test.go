package serve

import (
	"path/filepath"
	"reflect"
	"testing"

	"infoshield/internal/core"
	"infoshield/internal/datagen"
	"infoshield/internal/stream"
)

// lifecycleDetector builds shard detectors with the full lifecycle
// enabled: a small cap and TTL so a drifting corpus actually retires
// templates, merge, and incremental mining with its cross-flush window.
func lifecycleDetector(mineBatch int) func() *stream.Detector {
	return func() *stream.Detector {
		det := stream.New(core.Options{})
		det.BatchSize = mineBatch
		det.Lifecycle = stream.Lifecycle{
			MaxTemplates: 6,
			TTL:          400,
			Merge:        true,
			Incremental:  true,
		}
		return det
	}
}

// TestShardedLifecycleWALReplay: every lifecycle decision is a pure
// function of each shard's ingest sequence, so crash replay — state file
// plus write-ahead log, with evictions, age-outs, merges, and the
// incremental miner's retained window in play — must reproduce the
// pre-crash assignments and the post-lifecycle template listing exactly.
func TestShardedLifecycleWALReplay(t *testing.T) {
	for _, tc := range []struct {
		name     string
		S        int
		snapshot bool
	}{
		{"S1-no-snapshot", 1, false},
		{"S2-mid-stream-snapshot", 2, true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			cfg := ShardedConfig{
				Shards: tc.S, WALDir: dir, WALNoSync: true,
				StatePath:   filepath.Join(dir, "state.json"),
				NewDetector: lifecycleDetector(16),
			}
			sh, err := NewSharded(cfg)
			if err != nil {
				t.Fatal(err)
			}

			drift := datagen.NewDriftStream(datagen.DriftConfig{Seed: 31, Active: 5, ChurnEvery: 48})
			docs := drift.Docs(0, 420)
			var ids []int
			hwm := make([]int, tc.S)
			for i, text := range docs {
				if i == 140 {
					if err := sh.Flush(); err != nil {
						t.Fatal(err)
					}
				}
				if tc.snapshot && i == 280 {
					if _, err := sh.Snapshot(cfg.StatePath); err != nil {
						t.Fatal(err)
					}
					for _, id := range ids {
						if id/tc.S+1 > hwm[id%tc.S] {
							hwm[id%tc.S] = id/tc.S + 1
						}
					}
				}
				vs, err := sh.Submit([]string{text})
				if err != nil {
					t.Fatal(err)
				}
				ids = append(ids, vs[0].ID)
			}

			st, err := sh.Stats()
			if err != nil {
				t.Fatal(err)
			}
			lcTotal := st.Total.Lifecycle
			if lcTotal.Evicted+lcTotal.AgedOut+lcTotal.Merged == 0 {
				t.Fatal("no lifecycle retirements — the replay would prove nothing")
			}
			if lcTotal.Live > 6*tc.S {
				t.Fatalf("live %d exceeds cap %d", lcTotal.Live, 6*tc.S)
			}
			if st.Total.Templates != lcTotal.Live {
				t.Fatalf("rolled-up Templates %d != rolled-up live %d", st.Total.Templates, lcTotal.Live)
			}

			want := map[int]Verdict{}
			for _, id := range ids {
				v, err := sh.Assignment(id)
				if err != nil {
					t.Fatal(err)
				}
				want[id] = v
			}
			wantTmpls, err := sh.Templates()
			if err != nil {
				t.Fatal(err)
			}
			for _, tm := range wantTmpls {
				if tm.Pattern == "" {
					t.Fatalf("retired template leaked into the listing: %+v", tm)
				}
			}
			// Crash: no drain, no final snapshot.
			if err := sh.Close(); err != nil {
				t.Fatal(err)
			}

			sh2, err := NewSharded(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := sh2.Close(); err != nil {
					t.Error(err)
				}
			}()
			for _, id := range ids {
				if tc.snapshot && id/tc.S < hwm[id%tc.S] {
					continue // below the snapshot mark: state-only, map not kept
				}
				v, err := sh2.Assignment(id)
				if err != nil {
					t.Fatal(err)
				}
				if v != want[id] {
					t.Fatalf("doc %d after replay: %+v, pre-crash %+v", id, v, want[id])
				}
			}
			gotTmpls, err := sh2.Templates()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotTmpls, wantTmpls) {
				t.Fatalf("templates after replay differ:\n%+v\n%+v", gotTmpls, wantTmpls)
			}
			st2, err := sh2.Stats()
			if err != nil {
				t.Fatal(err)
			}
			lc2 := st2.Total.Lifecycle
			if lc2.Live != lcTotal.Live {
				t.Fatalf("live after replay %d, pre-crash %d", lc2.Live, lcTotal.Live)
			}
		})
	}
}
