package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"

	"infoshield/internal/core"
	"infoshield/internal/stream"
	"infoshield/internal/tokenize"
)

// Sharded scales the serving daemon past one sequencer: S independent
// detector shards, each owning its own stream.Detector, sequencer,
// coalescer, inverted index, write-ahead log, and snapshot file. A
// document routes to exactly one shard by a pure function of its token
// stream (RouteHash or RouteLang), so shards never coordinate on the
// ingest path and aggregate throughput scales with S while each shard
// keeps the single-writer, group-commit properties of the Coalescer.
//
// Ids are the shard boundary made visible: a global document id encodes
// its shard as id = local*S + shard, and template ids likewise, so
// lookups decode the shard with one modulo and S=1 degenerates to the
// identity mapping — the unsharded daemon's exact ids.
//
// The accept gate (mu) is held shared across a Submit's entire
// fan-out and exclusively by Close/Drain, so acceptance is
// all-or-nothing across shards: a request either reaches every shard it
// routes to and gets full verdicts, or it gets ErrClosed — never a
// partial commit. (Per-shard Coalescer.Close alone cannot provide this:
// a multi-shard request could otherwise land on shard A while shard B
// was already closing.)
type Sharded struct {
	n      int
	route  string
	tk     tokenize.Tokenizer
	shards []*shardState

	// mu is the sharded accept gate (see type doc). Like the Coalescer's
	// gate it is not a hot-path data lock: readers only pin "not closed"
	// across the fan-out.
	mu     sync.RWMutex
	closed bool

	// snapMu serializes manifest writes (concurrent POST /v1/snapshot);
	// gen numbers snapshot generations so shard files are never
	// overwritten in place — the old manifest stays valid until the new
	// one renames over it.
	snapMu    sync.Mutex
	gen       int
	prevFiles []string
}

type shardState struct {
	det *stream.Detector
	co  *Coalescer
	wal *wal // nil when the WAL is disabled
}

// ShardedConfig configures NewSharded. The zero value of every field
// selects a default; Shards, Route, and any loaded state must agree
// across restarts (they are part of the state identity).
type ShardedConfig struct {
	// Shards is the detector shard count S (default 1).
	Shards int
	// Route is RouteHash (default) or RouteLang.
	Route string
	// WALDir, when set, enables a per-shard write-ahead log
	// (wal-<shard>.log inside the directory): every acked document is on
	// disk before its submitter sees a verdict, and boot replays the log
	// above the last snapshot's high-water mark.
	WALDir string
	// WALNoSync skips the per-commit fsync (tests and benchmarks; a
	// production log should sync).
	WALNoSync bool
	// StatePath, when set, is loaded at construction if present: either
	// a version-2 sharded manifest or a legacy single-detector state
	// (accepted only when Shards is 1).
	StatePath string
	// Coalescer tunes every shard's coalescer identically.
	Coalescer Options
	// NewDetector builds each shard's detector (default: stream.New with
	// zero options). It must return a fresh, empty detector.
	NewDetector func() *stream.Detector
}

// NewSharded builds the shard set: loads the manifest when present,
// rebases each shard to its snapshot high-water mark, replays its WAL
// tail, and starts its sequencer.
func NewSharded(cfg ShardedConfig) (*Sharded, error) {
	n := cfg.Shards
	if n == 0 {
		n = 1
	}
	if n < 1 {
		return nil, fmt.Errorf("serve: shard count %d", cfg.Shards)
	}
	route := cfg.Route
	if route == "" {
		route = RouteHash
	}
	if !validRoute(route) {
		return nil, fmt.Errorf("serve: unknown route mode %q", cfg.Route)
	}
	newDet := cfg.NewDetector
	if newDet == nil {
		newDet = func() *stream.Detector { return stream.New(core.Options{}) }
	}
	man, err := readManifest(cfg.StatePath, n, route)
	if err != nil {
		return nil, err
	}

	s := &Sharded{n: n, route: route}
	ok := false
	defer func() {
		if !ok {
			for _, sh := range s.shards {
				_ = sh.co.Close()
				if sh.wal != nil {
					_ = sh.wal.close()
				}
			}
		}
	}()
	for k := 0; k < n; k++ {
		det := newDet()
		hwm := 0
		if man != nil {
			if err := det.Load(bytes.NewReader(man.States[k])); err != nil {
				return nil, fmt.Errorf("serve: shard %d state: %w", k, err)
			}
			hwm = man.HWM[k]
			if err := det.SetNextID(hwm); err != nil {
				return nil, fmt.Errorf("serve: shard %d: %w", k, err)
			}
		}
		opt := cfg.Coalescer
		var w *wal
		if cfg.WALDir != "" {
			w, err = openWAL(filepath.Join(cfg.WALDir, fmt.Sprintf("wal-%d.log", k)),
				det, hwm, !cfg.WALNoSync)
			if err != nil {
				return nil, fmt.Errorf("serve: shard %d: %w", k, err)
			}
			prev := opt.Commit
			walAppend := w.append
			opt.Commit = func(ids []int, texts []string) error {
				err := walAppend(ids, texts)
				if prev != nil {
					if perr := prev(ids, texts); err == nil {
						err = perr
					}
				}
				return err
			}
		}
		s.shards = append(s.shards, &shardState{det: det, co: NewCoalescer(det, opt), wal: w})
	}
	if man != nil {
		s.gen = man.Gen
		s.prevFiles = man.Files
	}
	ok = true
	return s, nil
}

// Shards returns the shard count S.
func (s *Sharded) Shards() int { return s.n }

// Route returns the routing mode.
func (s *Sharded) Route() string { return s.route }

// shardOf routes one tokenized document.
func (s *Sharded) shardOf(words []string) int {
	return int(routeKey(s.route, words) % uint64(s.n))
}

// globalize rewrites a shard-local verdict into the global id space.
func (s *Sharded) globalize(shard int, v Verdict) Verdict {
	v.ID = v.ID*s.n + shard
	if v.Template >= 0 {
		v.Template = v.Template*s.n + shard
	}
	return v
}

// Submit ingests texts and blocks until every routed sub-batch commits,
// returning one verdict per text in request order with global ids. Each
// document is tokenized exactly once: the token stream feeds the
// routing key and then rides down to the detector's encode step.
func (s *Sharded) Submit(texts []string) ([]Verdict, error) {
	if len(texts) == 0 {
		return []Verdict{}, nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}

	words := make([][]string, len(texts))
	homes := make([]int, len(texts))
	oneShard := true
	for i, text := range texts {
		words[i] = s.tk.Tokens(text)
		homes[i] = s.shardOf(words[i])
		if homes[i] != homes[0] {
			oneShard = false
		}
	}
	// Fast path — every single-document request, and any batch that
	// routes whole: no goroutines, one sub-request.
	if oneShard {
		vs, err := s.shards[homes[0]].co.SubmitTokens(texts, words)
		if err != nil {
			return nil, err
		}
		for i := range vs {
			vs[i] = s.globalize(homes[0], vs[i])
		}
		return vs, nil
	}
	// Partition positions by shard — request order is preserved within
	// each shard, so a request's documents stay contiguous in their
	// shard's arrival order — and fan out one blocking sub-request per
	// shard in parallel.
	sub := make([][]int, s.n)
	for i, h := range homes {
		sub[h] = append(sub[h], i)
	}
	out := make([]Verdict, len(texts))
	errs := make([]error, s.n)
	var wg sync.WaitGroup
	for k := 0; k < s.n; k++ {
		if len(sub[k]) == 0 {
			continue
		}
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			pos := sub[k]
			st := make([]string, len(pos))
			sw := make([][]string, len(pos))
			for j, p := range pos {
				st[j] = texts[p]
				sw[j] = words[p]
			}
			vs, err := s.shards[k].co.SubmitTokens(st, sw)
			if err != nil {
				errs[k] = err
				return
			}
			for j, v := range vs {
				out[pos[j]] = s.globalize(k, v)
			}
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Assignment returns the live verdict for a global document id (which
// encodes its shard: id = local*S + shard).
func (s *Sharded) Assignment(id int) (Verdict, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return Verdict{}, ErrClosed
	}
	shard, local := id%s.n, id/s.n
	a, err := s.shards[shard].co.Assignment(local)
	if err != nil {
		return Verdict{}, err
	}
	return s.globalize(shard, Verdict{ID: local, Template: a.Template, Pending: a.Pending}), nil
}

// ShardTemplate is one mined template in the aggregated listing,
// shard-tagged: ID is the global template id (Index*S + Shard).
type ShardTemplate struct {
	ID       int    `json:"id"`
	Shard    int    `json:"shard"`
	Index    int    `json:"index"`
	Pattern  string `json:"pattern"`
	Slots    int    `json:"slots"`
	DocCount int    `json:"doc_count"`
}

// Templates returns every shard's mined templates, shard-major.
func (s *Sharded) Templates() ([]ShardTemplate, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	out := []ShardTemplate{}
	for k, sh := range s.shards {
		infos, err := sh.co.Templates()
		if err != nil {
			return nil, err
		}
		for i, ti := range infos {
			if ti.Dead {
				// Retired slot (evicted, aged out, or merged away): keep the
				// position — global ids are positional — but drop the listing.
				continue
			}
			out = append(out, ShardTemplate{
				ID: i*s.n + k, Shard: k, Index: i,
				Pattern: ti.Pattern, Slots: ti.Slots, DocCount: ti.DocCount,
			})
		}
	}
	return out, nil
}

// Flush forces a mining pass on every shard. An explicit flush changes
// the assignment map (pending documents get mined early), so each shard
// logs a flush marker to its WAL — ordered by the sequencer exactly
// where the flush sits — and crash replay re-executes it.
func (s *Sharded) Flush() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	for _, sh := range s.shards {
		w := sh.wal
		if err := sh.co.do(func(d *stream.Detector) {
			d.Flush()
			if w != nil {
				_ = w.appendFlush()
			}
		}); err != nil {
			return err
		}
	}
	return nil
}

// ShardStats is one shard's /v1/stats block: the per-shard detector and
// coalescer snapshot plus its WAL counters.
type ShardStats struct {
	Shard int `json:"shard"`
	Stats
	WAL *WALStats `json:"wal,omitempty"`
}

// ShardedStats is the aggregated /v1/stats payload: every shard's block
// plus a rolled-up total (counters summed; queue high-water and max
// batch are maxima; skip rate and docs/batch re-derived from the sums).
type ShardedStats struct {
	Shards       int          `json:"shards"`
	Route        string       `json:"route"`
	Total        Stats        `json:"total"`
	DocsPerBatch float64      `json:"docs_per_batch"`
	PerShard     []ShardStats `json:"per_shard"`
}

// Stats snapshots every shard (each between its own batches) and rolls
// the counters up. The cut is per-shard consistent, not global: shards
// never block each other, so shard k+1 may commit while shard k is read.
func (s *Sharded) Stats() (ShardedStats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ShardedStats{}, ErrClosed
	}
	out := ShardedStats{Shards: s.n, Route: s.route}
	for k, sh := range s.shards {
		st, err := sh.co.Stats()
		if err != nil {
			return ShardedStats{}, err
		}
		ps := ShardStats{Shard: k, Stats: st}
		if sh.wal != nil {
			ws := sh.wal.stats()
			ps.WAL = &ws
		}
		out.PerShard = append(out.PerShard, ps)
		rollup(&out.Total, st)
	}
	m := &out.Total.Matcher
	if m.Candidates > 0 {
		m.DPSkipRate = float64(m.DPPruned) / float64(m.Candidates)
	}
	if out.Total.Serve.Batches > 0 {
		out.DocsPerBatch = float64(out.Total.Serve.Docs) / float64(out.Total.Serve.Batches)
	}
	if lc := &out.Total.Lifecycle; lc.MineClustered > 0 {
		lc.ReuseRate = float64(lc.MineReused) / float64(lc.MineClustered)
	}
	return out, nil
}

// rollup folds one shard's snapshot into the total.
func rollup(t *Stats, st Stats) {
	t.Templates += st.Templates
	t.PendingDocs += st.PendingDocs
	m, sm := &t.Matcher, st.Matcher
	m.Probes += sm.Probes
	m.Candidates += sm.Candidates
	m.Examined += sm.Examined
	m.DPRuns += sm.DPRuns
	m.DPPruned += sm.DPPruned
	m.BitDPRuns += sm.BitDPRuns
	m.BitDPPruned += sm.BitDPPruned
	m.BandRuns += sm.BandRuns
	m.BandRetries += sm.BandRetries
	m.BitmapSkips += sm.BitmapSkips
	m.PostingsWalks += sm.PostingsWalks
	m.WalkNs += sm.WalkNs
	m.BoundNs += sm.BoundNs
	m.BitDPNs += sm.BitDPNs
	m.ExactDPNs += sm.ExactDPNs
	if len(m.CandPerProbeHist) < len(sm.CandPerProbeHist) {
		m.CandPerProbeHist = append(m.CandPerProbeHist,
			make([]int, len(sm.CandPerProbeHist)-len(m.CandPerProbeHist))...)
	}
	for i, c := range sm.CandPerProbeHist {
		m.CandPerProbeHist[i] += c
	}
	l, sl := &t.Lifecycle, st.Lifecycle
	l.Live += sl.Live
	l.Mined += sl.Mined
	l.Merged += sl.Merged
	l.Evicted += sl.Evicted
	l.AgedOut += sl.AgedOut
	l.Flushes += sl.Flushes
	l.FlushDocs += sl.FlushDocs
	l.MineReused += sl.MineReused
	l.MineClustered += sl.MineClustered
	v, sv := &t.Serve, st.Serve
	v.Docs += sv.Docs
	v.Batches += sv.Batches
	v.BatchesBySize += sv.BatchesBySize
	v.BatchesByDeadline += sv.BatchesByDeadline
	v.BatchesByDrain += sv.BatchesByDrain
	v.BatchesByControl += sv.BatchesByControl
	v.BatchesByClose += sv.BatchesByClose
	v.CoalesceWaitNs += sv.CoalesceWaitNs
	v.CommitErrs += sv.CommitErrs
	for i, c := range sv.BatchSizeHist {
		v.BatchSizeHist[i] += c
	}
	if sv.MaxBatchDocs > v.MaxBatchDocs {
		v.MaxBatchDocs = sv.MaxBatchDocs
	}
	if sv.QueueHighWater > v.QueueHighWater {
		v.QueueHighWater = sv.QueueHighWater
	}
}

// manifestV2 is the sharded snapshot: per-shard state (on-disk as
// sibling files named by the manifest, or inline for the streamed body
// form) plus each shard's document-id high-water mark. Shard files are
// generation-numbered — a new snapshot writes fresh names and renames
// the manifest last, so a crash at any point leaves either the old
// manifest with its old files or the new manifest with its new files,
// never a mix.
type manifestV2 struct {
	Version int               `json:"version"`
	Shards  int               `json:"shards"`
	Route   string            `json:"route"`
	Gen     int               `json:"gen,omitempty"`
	HWM     []int             `json:"hwm"`
	Files   []string          `json:"files,omitempty"`
	States  []json.RawMessage `json:"states,omitempty"`
}

// readManifest loads and validates the state at path: a version-2
// manifest (shard files resolved relative to the manifest's directory)
// or a legacy single-detector state, accepted only when wantShards is 1.
// A missing file is a fresh start, not an error.
func readManifest(path string, wantShards int, wantRoute string) (*manifestV2, error) {
	if path == "" {
		return nil, nil
	}
	b, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var man manifestV2
	var probe struct {
		Version   int             `json:"version"`
		Templates json.RawMessage `json:"templates"`
		NextID    int             `json:"next_id"`
	}
	if err := json.Unmarshal(b, &probe); err != nil {
		return nil, fmt.Errorf("serve: decode state %s: %w", path, err)
	}
	if probe.Templates != nil {
		// Single-detector state (stream stateV1 or stateV2): the whole
		// file is shard 0's state. The v2 format carries its own
		// high-water mark (v1 recorded none, so next_id decodes as 0);
		// echoing it keeps SetNextID a no-op rebase after Load.
		if wantShards != 1 {
			return nil, fmt.Errorf(
				"serve: %s is a single-detector state; it loads only with 1 shard, not %d",
				path, wantShards)
		}
		return &manifestV2{Version: 2, Shards: 1, Route: wantRoute,
			HWM: []int{probe.NextID}, States: []json.RawMessage{b}}, nil
	}
	if err := json.Unmarshal(b, &man); err != nil {
		return nil, fmt.Errorf("serve: decode manifest %s: %w", path, err)
	}
	if man.Version != 2 {
		return nil, fmt.Errorf("serve: %s: unsupported manifest version %d", path, man.Version)
	}
	if man.Shards != wantShards {
		return nil, fmt.Errorf("serve: %s was snapshotted with %d shards, running with %d (shard count is part of the state identity)",
			path, man.Shards, wantShards)
	}
	if man.Route != wantRoute {
		return nil, fmt.Errorf("serve: %s was snapshotted with route %q, running with %q",
			path, man.Route, wantRoute)
	}
	if len(man.HWM) != man.Shards {
		return nil, fmt.Errorf("serve: %s: %d high-water marks for %d shards", path, len(man.HWM), man.Shards)
	}
	if man.States == nil {
		if len(man.Files) != man.Shards {
			return nil, fmt.Errorf("serve: %s: %d shard files for %d shards", path, len(man.Files), man.Shards)
		}
		dir := filepath.Dir(path)
		man.States = make([]json.RawMessage, man.Shards)
		for k, name := range man.Files {
			st, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, fmt.Errorf("serve: shard %d state: %w", k, err)
			}
			man.States[k] = st
		}
	} else if len(man.States) != man.Shards {
		return nil, fmt.Errorf("serve: %s: %d inline states for %d shards", path, len(man.States), man.Shards)
	}
	return &man, nil
}

// Snapshot persists the manifest plus one state file per shard to path,
// atomically (fresh generation-numbered shard files, each tmp+rename,
// manifest renamed last as the commit point), and returns the total
// byte count. Each shard flushes its pending buffer inside its own
// snapshot step, so every shard file is self-contained at its recorded
// high-water mark — the contract WAL replay needs. The WAL is NOT
// truncated here (see Drain): replay just skips records below the mark.
func (s *Sharded) Snapshot(path string) (int64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return 0, ErrClosed
	}
	states, hwms, err := s.collect()
	if err != nil {
		return 0, err
	}
	return s.writeManifest(path, states, hwms)
}

// SnapshotTo streams the combined form — the manifest with shard states
// inline — to w (the no-path POST /v1/snapshot response body). The
// output loads anywhere a manifest does.
func (s *Sharded) SnapshotTo(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	states, hwms, err := s.collect()
	if err != nil {
		return err
	}
	inline := make([]json.RawMessage, len(states))
	for k, st := range states {
		inline[k] = st
	}
	return json.NewEncoder(w).Encode(&manifestV2{
		Version: 2, Shards: s.n, Route: s.route, HWM: hwms, States: inline,
	})
}

// collect runs each shard's flush+save+mark snapshot step (the
// Coalescer.SnapshotFlush contract), with a WAL flush marker so the
// mining pass survives a crash even when the manifest being written
// here is not the one the next boot reads (snapshot-to-override-path).
func (s *Sharded) collect() (states [][]byte, hwms []int, err error) {
	states = make([][]byte, s.n)
	hwms = make([]int, s.n)
	for k, sh := range s.shards {
		var buf bytes.Buffer
		var saveErr error
		w := sh.wal
		if derr := sh.co.do(func(d *stream.Detector) {
			d.Flush()
			if w != nil {
				_ = w.appendFlush()
			}
			saveErr = d.Save(&buf)
			hwms[k] = d.NextID()
		}); derr != nil {
			return nil, nil, derr
		}
		if saveErr != nil {
			return nil, nil, saveErr
		}
		states[k] = buf.Bytes()
	}
	return states, hwms, nil
}

// writeManifest writes a new snapshot generation. Shard files get fresh
// names (<base>.g<gen>.shard<k>), so the previous generation stays
// intact until the manifest rename commits; the superseded files are
// removed afterwards, best-effort.
func (s *Sharded) writeManifest(path string, states [][]byte, hwms []int) (int64, error) {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	dir, base := filepath.Split(path)
	gen := s.gen + 1
	files := make([]string, len(states))
	var total int64
	for k, st := range states {
		name := fmt.Sprintf("%s.g%d.shard%d", base, gen, k)
		if err := atomicWrite(filepath.Join(dir, name), st); err != nil {
			return 0, err
		}
		files[k] = name
		total += int64(len(st))
	}
	mb, err := json.Marshal(&manifestV2{
		Version: 2, Shards: len(states), Route: s.route, Gen: gen, HWM: hwms, Files: files,
	})
	if err != nil {
		return 0, err
	}
	mb = append(mb, '\n')
	if err := atomicWrite(path, mb); err != nil {
		return 0, err
	}
	total += int64(len(mb))
	for _, old := range s.prevFiles {
		_ = os.Remove(filepath.Join(dir, old))
	}
	s.gen, s.prevFiles = gen, files
	return total, nil
}

// atomicWrite writes b to path via a synced sibling temp file + rename.
func atomicWrite(path string, b []byte) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, werr := f.Write(b)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		_ = os.Remove(tmp)
		return werr
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	return nil
}

// Drain is the graceful-shutdown protocol, in order: (1) the accept
// gate closes, so no new request can reach any shard; (2) every shard's
// coalescer closes, draining its queue — every accepted request gets
// verdicts, and their WAL records land before the ack; (3) with the
// sequencers exited and the detectors quiescent, each shard
// final-flushes its pending buffer; (4) when path is set, the snapshot
// manifest is written (tmp+rename, manifest last); (5) only after the
// manifest commits are the WALs truncated — a crash anywhere earlier
// leaves a log that replays. Safe to call after Close (no-op).
func (s *Sharded) Drain(path string) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	var err error
	for _, sh := range s.shards {
		if cerr := sh.co.Close(); err == nil {
			err = cerr
		}
	}
	if path != "" {
		states := make([][]byte, s.n)
		hwms := make([]int, s.n)
		snapErr := error(nil)
		for k, sh := range s.shards {
			sh.det.Flush()
			var buf bytes.Buffer
			if serr := sh.det.Save(&buf); serr != nil && snapErr == nil {
				snapErr = serr
			}
			states[k] = buf.Bytes()
			hwms[k] = sh.det.NextID()
		}
		if snapErr == nil {
			_, snapErr = s.writeManifest(path, states, hwms)
		}
		if snapErr != nil {
			if err == nil {
				err = snapErr
			}
		} else {
			for _, sh := range s.shards {
				if sh.wal != nil {
					if terr := sh.wal.truncate(); err == nil {
						err = terr
					}
				}
			}
		}
	}
	for _, sh := range s.shards {
		if sh.wal != nil {
			if cerr := sh.wal.close(); err == nil {
				err = cerr
			}
		}
	}
	return err
}

// Close stops accepting work and drains every shard's queue, leaving
// the WALs intact (they replay on the next boot). Safe to call more
// than once.
func (s *Sharded) Close() error {
	return s.Drain("")
}
