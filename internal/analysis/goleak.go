package analysis

import (
	"go/ast"
	"go/types"
)

// GoLeak enforces the join discipline every goroutine in this codebase
// follows: a spawned goroutine must announce completion — close a
// channel (serve's sequencer closes c.done), send a result (the daemon's
// ListenAndServe error channel), or call WaitGroup.Done (the par pool
// workers) — and some path must join that announcement with a receive or
// Wait. A goroutine with no signal can never be waited for; a signal
// nobody receives leaks the goroutine on shutdown paths.
//
// Signals are resolved through the fact layer: `go c.run()` inherits
// run's summary (defer close(c.done)), so the join may live in another
// function or package — Close's `<-c.done` is found through the
// module-wide operation index. Signals on local channels must be joined
// in the spawning function; signals on struct fields or package
// variables may be joined anywhere in the module. WaitGroup.Add inside
// the spawned goroutine is flagged separately: Add must happen before
// the spawn or Wait can return early.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "flags goroutines with no completion signal (close/send/Done), " +
		"signals that are never joined (receive/Wait), and wg.Add inside " +
		"the spawned goroutine",
	Run: runGoLeak,
}

func runGoLeak(pass *Pass) {
	facts := pass.Facts()
	idx := facts.Index()
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, facts, idx, fd, g)
				return true
			})
		}
	}
}

func checkGoStmt(pass *Pass, facts *Facts, idx *opIndex, fd *ast.FuncDecl, g *ast.GoStmt) {
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		checkAddInside(pass, lit)
	}
	sigs := facts.GoSignals(pass.Pkg, g)
	if len(sigs) == 0 {
		pass.Reportf(g.Go,
			"goroutine has no completion signal; without a close, send, or wg.Done nothing can ever join it — add a signal and a matching receive/Wait")
		return
	}
	for _, sf := range sigs {
		if sf.obj != nil && hasJoin(idx, sf, fd) {
			return
		}
	}
	// Name one signal in the message so the fix is concrete.
	name := "its completion signal"
	for _, sf := range sigs {
		if sf.obj != nil {
			name = sf.kind.String() + "(" + sf.obj.Name() + ")"
			break
		}
	}
	pass.Reportf(g.Go,
		"goroutine signals completion via %s but nothing joins it: add a receive (for close/send) or Wait (for Done) on some path",
		name)
}

// hasJoin reports whether the module joins one signal: a Wait for a Done
// signal, a receive (plain, comma-ok, or range) for a close or send
// signal. Local keys must join in the spawning declaration; fields and
// package variables may join anywhere.
func hasJoin(idx *opIndex, sf signalFact, spawnFn *ast.FuncDecl) bool {
	v, ok := sf.obj.(*types.Var)
	if !ok {
		return false
	}
	global := v.IsField() || isPkgLevel(v)
	for _, site := range idx.byKey[sf.obj] {
		if !global && site.fn != spawnFn {
			continue
		}
		switch sf.kind {
		case sigDone:
			if site.kind == opWait {
				return true
			}
		default: // sigClose, sigSend
			if site.kind == opRecv || site.kind == opRecvOk || site.kind == opRecvRange {
				return true
			}
		}
	}
	return false
}

// checkAddInside flags wg.Add on an outer WaitGroup from inside the
// spawned closure: by the time the goroutine runs, Wait may already have
// seen a zero counter and returned.
func checkAddInside(pass *Pass, lit *ast.FuncLit) {
	litSpan := []span{nodeSpan(lit)}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Add" {
			return true
		}
		if !isSyncType(typeOf(pass, sel.X), "sync", "WaitGroup") {
			return true
		}
		key := chanKey(pass.Pkg, sel.X)
		if key == nil || declaredWithin(key, litSpan) {
			return true
		}
		pass.Reportf(call.Pos(),
			"wg.Add inside the spawned goroutine races wg.Wait: the counter may still be zero when Wait runs — Add before the go statement")
		return true
	})
}
