package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxErr flags silently dropped results in non-test files: a call whose
// error result is discarded by using it as a statement, and multi-value
// assignments that blank an error or a trailing ok bool while keeping
// the other results. Both hide failures that the pipeline's callers are
// expected to surface.
//
// Deliberate escape valves, in order of preference:
//
//   - `_ = f()` as a lone blank assignment is an explicit, visible
//     acknowledgment and is not flagged;
//   - `//vet:allow ctxerr <reason>` suppresses a site that must stay
//     best-effort (e.g. ANSI rendering to a caller-supplied writer).
//
// Never-fail writers are excluded outright: methods of strings.Builder
// and bytes.Buffer, hash writers, and fmt.Print/Printf/Println to
// stdout. fmt.Fprint* drops are excluded in functions that cannot
// return an error (void report renderers are best-effort by contract)
// but flagged in functions that do return one — there the error must be
// threaded, not dropped. Deferred calls (defer f.Close()) are also
// excluded — flagging the read-path Close convention would be noise.
var CtxErr = &Analyzer{
	Name: "ctxerr",
	Doc: "flags discarded error results and blanked (value, ok) returns " +
		"in non-test files",
	Run: runCtxErr,
}

func runCtxErr(pass *Pass) {
	for i, file := range pass.Pkg.Files {
		if strings.HasSuffix(pass.Pkg.Filenames[i], "_test.go") {
			continue
		}
		var walk func(n ast.Node, canReturnErr bool)
		walk = func(n ast.Node, canReturnErr bool) {
			switch x := n.(type) {
			case nil:
				return
			case *ast.FuncDecl:
				walkChildren(x, func(c ast.Node) { walk(c, funcReturnsError(pass, x.Type)) })
				return
			case *ast.FuncLit:
				walkChildren(x, func(c ast.Node) { walk(c, funcReturnsError(pass, x.Type)) })
				return
			case *ast.ExprStmt:
				if call, ok := unparen(x.X).(*ast.CallExpr); ok {
					if errorResult(pass, call) >= 0 && !neverFails(pass, call) &&
						!(isFprint(pass, call) && !canReturnErr) {
						pass.Reportf(call.Pos(), "error result of %s discarded; handle it, assign to _ explicitly, or annotate //vet:allow ctxerr <reason>",
							calleeName(pass, call))
					}
				}
			case *ast.AssignStmt:
				checkBlankedResults(pass, x)
			}
			walkChildren(n, func(c ast.Node) { walk(c, canReturnErr) })
		}
		walk(file, false)
	}
}

// funcReturnsError reports whether a signature includes an error result.
func funcReturnsError(pass *Pass, ft *ast.FuncType) bool {
	if ft.Results == nil {
		return false
	}
	for _, field := range ft.Results.List {
		if isErrorType(typeOf(pass, field.Type)) {
			return true
		}
	}
	return false
}

// isFprint reports whether the call is fmt.Fprint/Fprintf/Fprintln — a
// best-effort write to a caller-supplied writer.
func isFprint(pass *Pass, call *ast.CallExpr) bool {
	fun, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := unparen(fun.X).(*ast.Ident)
	if !ok || pkgNamePath(pass, id) != "fmt" {
		return false
	}
	switch fun.Sel.Name {
	case "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

// checkBlankedResults flags `v, _ := f()` where the blank swallows an
// error or a trailing ok bool while other results are kept.
func checkBlankedResults(pass *Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 || len(as.Lhs) < 2 {
		return
	}
	call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || neverFails(pass, call) {
		return
	}
	tuple, ok := typeOf(pass, call).(*types.Tuple)
	if !ok || tuple.Len() != len(as.Lhs) {
		return
	}
	anyKept := false
	for _, lhs := range as.Lhs {
		if id, ok := unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
			anyKept = true
		}
	}
	if !anyKept {
		return // x, _ := ... with all blanks cannot happen; _, _ is explicit
	}
	for i, lhs := range as.Lhs {
		id, ok := unparen(lhs).(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		t := tuple.At(i).Type()
		switch {
		case isErrorType(t):
			pass.Reportf(lhs.Pos(), "error result of %s blanked while other results are kept; handle the error",
				calleeName(pass, call))
		case i == tuple.Len()-1 && isBoolType(t):
			pass.Reportf(lhs.Pos(), "ok result of %s blanked; a false ok usually means the value is not usable",
				calleeName(pass, call))
		}
	}
}

// errorResult returns the index of the first error in the call's result
// tuple, or -1.
func errorResult(pass *Pass, call *ast.CallExpr) int {
	t := typeOf(pass, call)
	if t == nil {
		return -1
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return i
			}
		}
		return -1
	}
	if isErrorType(t) {
		return 0
	}
	return -1
}

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

func isBoolType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsBoolean != 0
}

// neverFails excludes callees documented never to return a non-nil
// error, plus best-effort stdout printing.
func neverFails(pass *Pass, call *ast.CallExpr) bool {
	fun, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// fmt.Print / fmt.Printf / fmt.Println: stdout, best effort.
	if id, ok := unparen(fun.X).(*ast.Ident); ok {
		if pkgNamePath(pass, id) == "fmt" {
			switch fun.Sel.Name {
			case "Print", "Printf", "Println":
				return true
			}
		}
	}
	// Methods on never-fail receivers.
	recv := typeOf(pass, fun.X)
	if recv == nil {
		return false
	}
	for _, name := range []string{"strings.Builder", "bytes.Buffer",
		"hash.Hash", "hash.Hash32", "hash.Hash64", "hash/maphash.Hash"} {
		if typeNamed(recv, name) {
			return true
		}
	}
	return false
}

// typeNamed reports whether t (or its pointee) is the named type
// pkg.Name.
func typeNamed(t types.Type, full string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path()+"."+obj.Name() == full
}

// calleeName renders the call target for messages.
func calleeName(pass *Pass, call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := unparen(fun.X).(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
