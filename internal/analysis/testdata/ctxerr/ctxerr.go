// Package ctxerr is golden-file input for the ctxerr analyzer. See
// testdata/maporder for the want-comment convention.
package ctxerr

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// DroppedError discards an error-returning call used as a statement.
func DroppedError(name string) {
	os.Remove(name) // want "error result of os.Remove discarded"
}

// ExplicitBlank acknowledges the drop visibly: clean.
func ExplicitBlank(name string) {
	_ = os.Remove(name)
}

// BlankedErr keeps the value but blanks the error.
func BlankedErr(s string) int {
	n, _ := strconv.Atoi(s) // want "error result of strconv.Atoi blanked"
	return n
}

func lookup(m map[string]int, k string) (int, bool) {
	v, ok := m[k]
	return v, ok
}

// BlankedOk blanks a trailing ok bool while keeping the value.
func BlankedOk(m map[string]int, k string) int {
	v, _ := lookup(m, k) // want "ok result of lookup blanked"
	return v
}

// FprintInVoid renders best-effort from a function that cannot return an
// error: excluded by policy.
func FprintInVoid(w io.Writer, x int) {
	fmt.Fprintf(w, "%d\n", x)
}

// FprintInErrFunc drops a write error inside a function that promises an
// error to its caller: the error must be threaded, not dropped.
func FprintInErrFunc(w io.Writer, x int) error {
	fmt.Fprintf(w, "%d\n", x) // want "error result of fmt.Fprintf discarded"
	return nil
}

// DeferClose uses the read-path defer convention: excluded.
func DeferClose(f *os.File) error {
	defer f.Close()
	_, err := f.Stat()
	return err
}

// Builder writes to a strings.Builder, which never fails: clean.
func Builder(items []string) string {
	var b strings.Builder
	for _, it := range items {
		b.WriteString(it)
	}
	return b.String()
}

// Printed goes to stdout, best effort by convention: clean.
func Printed(x int) {
	fmt.Println(x)
}

// Suppressed justifies a deliberate best-effort call.
func Suppressed(name string) {
	//vet:allow ctxerr golden-file input: best-effort cleanup of a scratch file
	os.Remove(name) // want-suppressed "error result of os.Remove discarded"
}
