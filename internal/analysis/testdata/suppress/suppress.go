// Package suppress exercises the vet:allow directive parsing edge
// cases: a directive citing the wrong analyzer, a directive above a
// statement spanning several lines, and a bare directive with no
// justification. Driven through atomicmix because its trigger is a
// single expression, easy to place precisely.
package suppress

import "sync/atomic"

// counter is claimed for the atomic protocol by bump.
type counter struct{ n int64 }

func bump(c *counter) { atomic.AddInt64(&c.n, 1) }

// WrongName cites a different analyzer: the directive does not apply
// and the finding is kept.
func WrongName(c *counter) int64 {
	//vet:allow maporder wrong analyzer named here
	return c.n // want "plain access"
}

// AboveMultiLine places the directive on the line above a statement
// spanning several lines; the finding anchors to the statement's first
// line, which the directive covers.
func AboveMultiLine(c *counter, extra int64) int64 {
	//vet:allow atomicmix snapshot read after all writers joined
	return c.n + // want-suppressed "plain access"
		extra
}

// SecondLine shows the directive's reach is one line: a finding on the
// second line of a multi-line statement is not covered by a directive
// above the statement.
func SecondLine(c *counter, extra int64) int64 {
	//vet:allow atomicmix only reaches the first line
	return extra +
		c.n // want "plain access"
}

// Bare carries no justification, so it does not suppress.
func Bare(c *counter) int64 {
	//vet:allow atomicmix
	return c.n // want "plain access"
}
