// Package atomicmix is golden-test input for the atomicmix analyzer.
// Lines that must produce a finding carry a want marker with a substring
// of the message; lines whose finding must be swallowed by a justified
// vet:allow directive carry a want-suppressed marker. Unmarked
// functions must stay clean.
package atomicmix

import (
	"sync"
	"sync/atomic"
)

// counters is updated through sync/atomic in bump; that claims the hits
// field for the atomic protocol everywhere in the module.
type counters struct {
	hits int64
	miss int64
}

func bump(c *counters) { atomic.AddInt64(&c.hits, 1) }

// PlainRead races bump's atomic increment.
func PlainRead(c *counters) int64 {
	return c.hits // want "plain access"
}

// PlainWrite races it too — stores are no safer than loads.
func PlainWrite(c *counters) {
	c.hits = 0 // want "plain access"
}

// AtomicRead uses the protocol — clean.
func AtomicRead(c *counters) int64 {
	return atomic.LoadInt64(&c.hits)
}

// PlainUntracked reads miss, which no atomic site touches — clean.
func PlainUntracked(c *counters) int64 {
	return c.miss
}

// gauge uses a typed atomic: method-only access is immune by
// construction, which is the fix the analyzer suggests.
type gauge struct{ hw atomic.Int64 }

// Observe is clean: typed atomics cannot be accessed plainly.
func (g *gauge) Observe(v int64) {
	if v > g.hw.Load() {
		g.hw.Store(v)
	}
}

// guarded transitively holds a sync.Mutex, so copying it by value forks
// the lock state.
type guarded struct {
	mu sync.Mutex
	n  int
}

// Snapshot has a value receiver: every call copies the mutex.
func (g guarded) Snapshot() int { // want "value receiver"
	return g.n
}

// Read takes the lock through a pointer receiver — clean.
func (g *guarded) Read() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// CopyAssign dereferences into a plain value, copying the mutex.
func CopyAssign(g *guarded) int {
	snapshot := *g // want "assignment copies"
	return snapshot.n
}

// takesValue has a by-value lock-bearing parameter; the analyzer flags
// the call sites that feed it, not the declaration.
func takesValue(g guarded) int { return g.n }

// CopyArg passes the lock-bearing struct by value.
func CopyArg(g *guarded) int {
	return takesValue(*g) // want "call argument"
}

// takesPtr and PointerArg show the clean shape.
func takesPtr(g *guarded) int { return g.n }

func PointerArg(g *guarded) int {
	return takesPtr(g)
}

// RangeCopy copies each element — and its mutex — into the loop
// variable.
func RangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want "range value"
		total += g.n
	}
	return total
}

// RangeIndex iterates by index — clean.
func RangeIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

// SuppressedSnapshot reads the counter plainly after all writers have
// been joined; the justified directive documents the happens-before.
func SuppressedSnapshot(c *counters) int64 {
	return c.hits //vet:allow atomicmix read-after-join at shutdown, no concurrent writers // want-suppressed "plain access"
}

// BareSnapshot shows that a bare directive does not suppress.
func BareSnapshot(c *counters) int64 {
	//vet:allow atomicmix
	return c.hits // want "plain access"
}
