// Package statsrace seeds a mixed-access race against the daemon's
// stats-counter shape: the hot path bumps counters through sync/atomic,
// and a snapshot method reads them plainly — atomicmix must flag both
// plain reads.
package statsrace

import "sync/atomic"

// stats mirrors the serving daemon's counter block.
type stats struct {
	matched  int64
	rejected int64
}

// record is the hot path: atomic updates, called from many goroutines.
func (s *stats) record(hit bool) {
	if hit {
		atomic.AddInt64(&s.matched, 1)
	} else {
		atomic.AddInt64(&s.rejected, 1)
	}
}

// Snapshot is the seeded bug: plain reads racing the atomic adds.
func (s *stats) Snapshot() (int64, int64) {
	return s.matched, s.rejected // want "plain access" "plain access"
}

// SnapshotAtomic is the fix.
func (s *stats) SnapshotAtomic() (int64, int64) {
	return atomic.LoadInt64(&s.matched), atomic.LoadInt64(&s.rejected)
}
