// Package drainleak seeds a shutdown leak against the serve coalescer
// shape: the sequencer goroutine closes done when the request queue
// drains, but Close forgot the receive on done — goleak must notice
// that the close signal is never joined anywhere in the module.
package drainleak

// coalescer mirrors the serve daemon's sequencer loop.
type coalescer struct {
	reqs chan int
	done chan struct{}
}

// newCoalescer spawns the sequencer. The close(done) signal reaches
// this go statement through run's fact summary.
func newCoalescer() *coalescer {
	c := &coalescer{reqs: make(chan int, 64), done: make(chan struct{})}
	go c.run() // want "nothing joins"
	return c
}

func (c *coalescer) run() {
	defer close(c.done)
	for range c.reqs {
	}
}

// Close stops intake but forgot `<-c.done`: the sequencer may still be
// mid-batch when the caller tears down shared state.
func (c *coalescer) Close() {
	close(c.reqs)
}
