// Package shutdownrace seeds a send/close race against serve's accept
// gate: Close closes the channel under the write lock, but enqueue
// forgot to take the read lock — the closed check is unsynchronized and
// the send can land on a closed channel. chanproto must flag the send.
package shutdownrace

import "sync"

// queue mirrors the serve daemon's request queue.
type queue struct {
	mu     sync.RWMutex
	closed bool
	ch     chan int
}

// enqueue is the seeded bug: no q.mu.RLock around the check-then-send.
func (q *queue) enqueue(v int) bool {
	if q.closed {
		return false
	}
	q.ch <- v // want "can race its close"
	return true
}

// Close is correct: flips closed and closes under the write lock.
func (q *queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	if !q.closed {
		q.closed = true
		close(q.ch)
	}
}

func (q *queue) drain() (int, bool) {
	v, ok := <-q.ch
	return v, ok
}
