// Package arenaleak seeds the ISSUE's example bug against the shapes
// in internal/stream: a token arena hands out views into its slab, and
// an index method returns one of those views to a caller that outlives
// the arena's next reset. scratchalias must charge the escape to the
// index method, two call levels from the raw slice op.
package arenaleak

// tokenArena mirrors the stream detector's arena: one backing slab,
// copyIn appends and returns a view into it.
type tokenArena struct{ slab []uint32 }

func (a *tokenArena) copyIn(toks []uint32) []uint32 {
	n := len(a.slab)
	a.slab = append(a.slab, toks...)
	return a.slab[n:]
}

// index mirrors internal/stream/index.go: it owns the arena and
// registers token views backed by it.
type index struct {
	arena tokenArena
}

// TokensOf is the seeded bug: the arena view escapes to the caller.
func (ix *index) TokensOf(toks []uint32) []uint32 {
	view := ix.arena.copyIn(toks)
	return view // want "returns memory backed by pooled scratch"
}

// TokensCopy is the fix the real code uses — copy before returning.
func (ix *index) TokensCopy(toks []uint32) []uint32 {
	view := ix.arena.copyIn(toks)
	return append([]uint32(nil), view...)
}
