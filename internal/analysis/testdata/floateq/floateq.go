// Package floateq is golden-file input for the floateq analyzer. See
// testdata/maporder for the want-comment convention.
package floateq

import "infoshield/internal/mdl"

// ExactCostEq compares two description lengths with exact ==.
func ExactCostEq(a, b, v int) bool {
	ca := mdl.DocCost(a, v)
	cb := mdl.DocCost(b, v)
	return ca == cb // want "exact float"
}

// ApproxCostEq routes the comparison through the epsilon helper: clean.
func ApproxCostEq(a, b, v int) bool {
	return mdl.ApproxEq(mdl.DocCost(a, v), mdl.DocCost(b, v))
}

// PlainFloatEq compares floats with no cost provenance: not flagged.
func PlainFloatEq(x, y float64) bool {
	return x == y
}

// NamedCost is tainted by its own name: anything called *cost* is
// presumed to hold a description length.
func NamedCost(costBefore, after float64) bool {
	return costBefore != after // want "exact float"
}

// ClosureFlow memoizes costs behind a closure; taint flows through the
// function literal into every value the closure produces.
func ClosureFlow(lo, hi, v int) int {
	eval := func(h int) float64 { return mdl.DocCost(h, v) }
	best := eval(lo)
	for h := lo; h <= hi; h++ {
		if eval(h) == best { // want "exact float"
			return h
		}
	}
	return lo
}

// DirectCall compares a call result inline.
func DirectCall(v int) bool {
	return mdl.Universal(v) == 3 // want "exact float"
}

// Suppressed justifies an exact sentinel comparison.
func Suppressed(v int) bool {
	c := mdl.DocCost(1, v)
	//vet:allow floateq golden-file input: comparison against an exact sentinel value
	return c == 0 // want-suppressed "exact float"
}

// IntEq compares integers: not a float comparison, clean even with cost
// provenance in scope.
func IntEq(a, b int) bool {
	return a == b
}
