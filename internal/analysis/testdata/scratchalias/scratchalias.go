// Package scratchalias is golden-test input for the scratchalias
// analyzer. Lines that must produce a finding carry a want marker with a
// substring of the message; lines whose finding must be swallowed by a
// justified vet:allow directive carry a want-suppressed marker.
// Unmarked functions must stay clean.
package scratchalias

import "sync"

// scratch is a pool-like type by name: its buffers are recycled by
// Reset, so memory derived from them must not outlive the borrow.
type scratch struct {
	buf []int
	out []int
}

// Reset recycles the buffers.
func (s *scratch) Reset() {
	s.buf = s.buf[:0]
	s.out = s.out[:0]
}

// grow is the pooled-buffer helper idiom: the returned slice aliases
// *p, and the fact layer records that so callers inherit the taint.
func grow(p *[]int, n int) []int {
	if cap(*p) < n {
		*p = make([]int, n)
	}
	return (*p)[:n]
}

// owner embeds a scratch it owns; findings fire against this root.
type owner struct {
	sc   scratch
	keep []int
}

var global []int

// ReturnLeak returns a view of the owned scratch buffer directly.
func (o *owner) ReturnLeak() []int {
	v := o.sc.buf[:2]
	return v // want "returns memory backed by pooled scratch"
}

// ReturnCopy copies the borrowed view out first — the documented fix.
func (o *owner) ReturnCopy() []int {
	v := o.sc.buf[:2]
	return append([]int(nil), v...)
}

// ReturnViaHelper leaks through grow: the callee's return-alias fact
// maps the result back to &o.sc.buf.
func (o *owner) ReturnViaHelper(n int) []int {
	v := grow(&o.sc.buf, n)
	return v // want "returns memory backed by pooled scratch"
}

// extern receives the pool as a parameter: it is pool plumbing, so no
// finding fires here — the fact layer propagates the aliasing up.
func extern(sc *scratch, n int) []int {
	return grow(&sc.buf, n)
}

// ReturnViaExtern owns the pool it hands to extern, so the escape is
// charged to this function, two call levels from the raw slice op.
func (o *owner) ReturnViaExtern(n int) []int {
	return extern(&o.sc, n) // want "returns memory backed by pooled scratch"
}

// ReturnScalar copies a single element out of the borrowed view; a
// scalar copy ends the borrow and is clean.
func (o *owner) ReturnScalar() int {
	v := o.sc.buf[:2]
	return v[0]
}

// StoreGlobal parks pooled memory in a package variable that outlives
// the borrow window.
func (o *owner) StoreGlobal() {
	global = o.sc.buf[:1] // want "package variable"
}

// StoreField stores the borrowed view into the (pointer) receiver — the
// caller keeps the struct after the pool recycles the buffer.
func (o *owner) StoreField() {
	o.keep = o.sc.buf[:1] // want "caller-visible"
}

// rec is a plain struct used to show the by-value-parameter exemption.
type rec struct{ view []int }

// StoreValueParam mutates a by-value parameter: the caller sees a copy,
// so nothing escapes.
func (o *owner) StoreValueParam(t rec) {
	t.view = o.sc.buf[:1]
}

// StoreLocal pins the view in a local — tracked by the taint flow, not
// an escape by itself.
func (o *owner) StoreLocal() int {
	var l rec
	l.view = o.sc.buf[:1]
	return l.view[0]
}

// PoolSelfStore writes a grown buffer back into the pool's own field —
// the recycle idiom (index.go's sc.sorted = sorted).
func (o *owner) PoolSelfStore(n int) {
	b := grow(&o.sc.buf, n)
	o.sc.out = b
}

// SendLeak hands the borrowed view to a receiver that outlives it.
func (o *owner) SendLeak(ch chan []int) {
	ch <- o.sc.buf[:1] // want "sends memory backed by pooled scratch"
}

// SendCopy sends a fresh copy — clean.
func (o *owner) SendCopy(ch chan []int) {
	ch <- append([]int(nil), o.sc.buf[:1]...)
}

// UseAfterReset touches the borrowed view after the pool reclaimed it.
func (o *owner) UseAfterReset() int {
	v := o.sc.buf[:1]
	o.sc.Reset()
	return v[0] // want "after"
}

// UseBeforeReset copies the scalar out before the Reset — clean.
func (o *owner) UseBeforeReset() int {
	v := o.sc.buf[:1]
	x := v[0]
	o.sc.Reset()
	return x
}

// bufPool shows the sync.Pool flavor of the same contract.
var bufPool sync.Pool

// PoolGetLeak returns memory handed out by sync.Pool.Get without
// putting it back or copying.
func PoolGetLeak() []byte {
	b := bufPool.Get().([]byte)
	return b // want "returns memory backed by pooled scratch"
}

// PoolGetPut reads a scalar and returns the buffer to the pool — clean.
func PoolGetPut() int {
	b := bufPool.Get().([]byte)
	n := len(b)
	bufPool.Put(b)
	return n
}

// PoolUseAfterPut touches the buffer after Put returned it to the pool.
func PoolUseAfterPut() byte {
	b := bufPool.Get().([]byte)
	bufPool.Put(b)
	return b[0] // want "after"
}

// SuppressedReturn documents an arena-style pool that never resets, so
// handing out views is its contract; the justified directive holds.
func (o *owner) SuppressedReturn() []int {
	return o.sc.buf[:1] //vet:allow scratchalias append-only arena, never reset // want-suppressed "returns memory backed by pooled scratch"
}

// BareDirective shows that an unjustified directive does not suppress.
func (o *owner) BareDirective() []int {
	//vet:allow scratchalias
	return o.sc.buf[:1] // want "returns memory backed by pooled scratch"
}
