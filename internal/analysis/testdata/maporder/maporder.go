// Package maporder is golden-file input for the maporder analyzer. A
// `want "substr"` comment marks a line that must produce a finding whose
// message contains substr; a `want-suppressed "substr"` comment marks a
// finding that must be filtered by a //vet: directive; everything else
// must stay clean.
package maporder

import (
	"fmt"
	"io"
	"sort"
)

// AppendLeak appends map keys in iteration order with no later sort.
func AppendLeak(m map[string]int) []string {
	var out []string
	for k := range m { // want "iteration order of map"
		out = append(out, k)
	}
	return out
}

// SortedAfter is exempt: a later statement of the same block sorts the
// appended slice, re-establishing a canonical order.
func SortedAfter(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PerKey appends into a map cell keyed by the iteration key: per-key
// writes are order-insensitive and exempt.
func PerKey(m map[string]int, out map[string][]int) {
	for k, v := range m {
		out[k] = append(out[k], v)
	}
}

// WriterLeak writes during iteration: flagged even with no append.
func WriterLeak(w io.Writer, m map[string]int) {
	for k, v := range m { // want "iteration order of map"
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

// ChannelLeak sends keys on a channel that outlives the loop.
func ChannelLeak(m map[string]int, ch chan string) {
	for k := range m { // want "iteration order of map"
		ch <- k
	}
}

// ClosureLeak appends through a locally-bound helper closure — the
// analyzer follows the binding one level deep.
func ClosureLeak(m map[string]int) []string {
	var out []string
	add := func(k string) { out = append(out, k) }
	for k := range m { // want "iteration order of map"
		add(k)
	}
	return out
}

// Suppressed carries a justification directive on the preceding line.
func Suppressed(m map[string]int) []string {
	var out []string
	//vet:ordered golden-file input: accumulation order is irrelevant here
	for k := range m { // want-suppressed "iteration order of map"
		out = append(out, k)
	}
	return out
}

// BareDirective carries a directive without a justification: inert, so
// the finding stays.
func BareDirective(m map[string]int) []string {
	var out []string
	//vet:ordered
	for k := range m { // want "iteration order of map"
		out = append(out, k)
	}
	return out
}

// Reduction sums values: commutative, clean.
func Reduction(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// CountInto counts into another map: per-key write, clean.
func CountInto(m map[string]int, counts map[int]int) {
	for _, v := range m {
		counts[v]++
	}
}
