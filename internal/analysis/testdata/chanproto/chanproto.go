// Package chanproto is golden-test input for the chanproto analyzer.
// Lines that must produce a finding carry a want marker with a substring
// of the message; lines whose finding must be swallowed by a justified
// vet:allow directive carry a want-suppressed marker. Unmarked
// functions must stay clean.
package chanproto

import "sync"

// dc is closed from two owners: the second close panics.
type dc struct{ ch chan int }

func (d *dc) closeA() {
	close(d.ch) // want "closed at 2 sites"
}

func (d *dc) closeB() {
	close(d.ch) // want "closed at 2 sites"
}

// single has exactly one close and no senders — clean.
type single struct{ ch chan int }

func (s *single) shutdown() { close(s.ch) }

func (s *single) recv() (int, bool) {
	v, ok := <-s.ch
	return v, ok
}

// racer sends in one function and closes in another with no shared
// mutex: the interleaving send-on-closed panics.
type racer struct{ ch chan int }

func (r *racer) produce(v int) {
	r.ch <- v // want "can race its close"
}

func (r *racer) shutdown() { close(r.ch) }

func (r *racer) drain() (int, bool) {
	v, ok := <-r.ch
	return v, ok
}

// gated is the serve accept-gate shape: sends run under mu.RLock after
// checking closed; Close flips closed and closes under mu.Lock. The
// shared mutex orders the two critical sections — clean.
type gated struct {
	mu     sync.RWMutex
	closed bool
	ch     chan int
}

func (g *gated) produce(v int) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if !g.closed {
		g.ch <- v
	}
}

func (g *gated) shutdown() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.closed {
		g.closed = true
		close(g.ch)
	}
}

func (g *gated) drain() (int, bool) {
	v, ok := <-g.ch
	return v, ok
}

// Sequential is the local producer pattern: send then close in one
// function is ordered, and the consumer receives through the caller's
// own variable — clean.
func Sequential() chan int {
	ch := make(chan int, 1)
	ch <- 1
	close(ch)
	return ch
}

// nodrain closes a sent-on channel whose only receive is the plain
// form: after close the consumer reads zero values instead of stopping.
type nodrain struct{ ch chan int }

func (n *nodrain) run(vs []int) {
	for _, v := range vs {
		n.ch <- v
	}
	close(n.ch) // want "no receive uses the comma-ok or range form"
}

func (n *nodrain) recv() int { return <-n.ch }

// drained shows the fix: the consumer ranges until close.
type drained struct{ ch chan int }

func (d *drained) run(vs []int) {
	for _, v := range vs {
		d.ch <- v
	}
	close(d.ch)
}

func (d *drained) consume() int {
	total := 0
	for v := range d.ch {
		total += v
	}
	return total
}

// sup documents two close paths that a constructor flag makes mutually
// exclusive; the justified directives suppress both findings.
type sup struct{ ch chan int }

func (s *sup) closeA() {
	close(s.ch) //vet:allow chanproto paired closes are mutually exclusive via ctor flag // want-suppressed "closed at 2 sites"
}

func (s *sup) closeB() {
	close(s.ch) //vet:allow chanproto paired closes are mutually exclusive via ctor flag // want-suppressed "closed at 2 sites"
}

// bare shows that a bare directive does not suppress.
type bare struct{ ch chan int }

func (b *bare) closeA() {
	//vet:allow chanproto
	close(b.ch) // want "closed at 2 sites"
}

func (b *bare) closeB() {
	close(b.ch) // want "closed at 2 sites"
}
