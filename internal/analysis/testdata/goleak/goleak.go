// Package goleak is golden-test input for the goleak analyzer. Lines
// that must produce a finding carry a want marker with a substring of
// the message; lines whose finding must be swallowed by a justified
// vet:allow directive carry a want-suppressed marker. Unmarked
// functions must stay clean.
package goleak

import "sync"

func work() int { return 1 }

// FireAndForget spawns a goroutine with no way to ever join it.
func FireAndForget() {
	go func() { _ = work() }() // want "no completion signal"
}

// WgJoined is the par-pool discipline: Add before spawn, Done in the
// worker, Wait in the spawner.
func WgJoined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = work()
		}()
	}
	wg.Wait()
}

// WgNeverWaited signals Done on a local WaitGroup nobody Waits on.
func WgNeverWaited() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }() // want "nothing joins"
}

// AddInside performs the Add from inside the spawned goroutine: Wait
// can observe a zero counter before the goroutine has started.
func AddInside(wg *sync.WaitGroup) {
	go func() {
		wg.Add(1) // want "wg.Add inside the spawned goroutine"
		defer wg.Done()
	}()
	wg.Wait()
}

// seq mirrors the serve sequencer: run closes the done field, Close
// receives it. The close signal reaches the go statement through run's
// fact summary, and the join is found module-wide on the field key.
type seq struct{ done chan struct{} }

func (s *seq) run() { defer close(s.done) }

// StartSeq is clean: the join lives in Close, another function.
func StartSeq(s *seq) { go s.run() }

// Close joins the sequencer's completion signal.
func (s *seq) Close() { <-s.done }

// leaky closes a field that no function anywhere receives.
type leaky struct{ done chan struct{} }

func (l *leaky) run() { defer close(l.done) }

// StartLeaky spawns the leaky sequencer; the close is never joined.
func StartLeaky(l *leaky) {
	go l.run() // want "nothing joins"
}

// ErrChan is the daemon idiom: the goroutine sends its result and the
// spawner receives it in a select.
func ErrChan() error {
	errc := make(chan error, 1)
	go func() { errc <- nil }()
	select {
	case err := <-errc:
		return err
	}
}

// Daemon runs for the process lifetime by design; the justified
// directive documents that and suppresses the finding.
func Daemon() {
	go func() { _ = work() }() //vet:allow goleak process-lifetime worker, reaped at exit // want-suppressed "no completion signal"
}

// BareDaemon shows that a bare directive does not suppress.
func BareDaemon() {
	//vet:allow goleak
	go func() { _ = work() }() // want "no completion signal"
}
