// Package looprace is golden-file input for the looprace analyzer. See
// testdata/maporder for the want-comment convention.
package looprace

import (
	"sync"

	"infoshield/internal/par"
)

// CaptureLoopVar launches a goroutine that captures the loop variable
// instead of taking it as a parameter.
func CaptureLoopVar(xs, out []int) {
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = xs[i] * 2 // want "loop variable" "non-partitioned index"
		}()
	}
	wg.Wait()
}

// ParamPassed follows the repo discipline: the loop variable crosses the
// goroutine boundary as a parameter and each worker writes only its own
// cell.
func ParamPassed(xs, out []int) {
	var wg sync.WaitGroup
	for i := range xs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = xs[i] * 2
		}(i)
	}
	wg.Wait()
}

// SharedCounter increments a variable shared across workers with no lock.
func SharedCounter(xs []int) int {
	n := 0
	var wg sync.WaitGroup
	for range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n++ // want "write to shared variable"
		}()
	}
	wg.Wait()
	return n
}

// LockedCounter takes a lock, so its shared writes are assumed guarded.
func LockedCounter(xs []int) int {
	n := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for range xs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			n++
			mu.Unlock()
		}()
	}
	wg.Wait()
	return n
}

// MapWrite writes a shared map from concurrent goroutines.
func MapWrite(keys []string, m map[string]int) {
	var wg sync.WaitGroup
	for _, k := range keys {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			m[k] = 1 // want "concurrent write to shared map"
		}(k)
	}
	wg.Wait()
}

// NonPartitioned indexes a shared slice with shared state: the index is
// not derived from closure-local variables, so writes can collide.
func NonPartitioned(xs, out []int) {
	j := 0
	var wg sync.WaitGroup
	for _, x := range xs {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			out[j] = x // want "non-partitioned index"
			j = j + 1  // want "write to shared variable"
		}(x)
	}
	wg.Wait()
}

// PoolPartitioned is the canonical internal/par pattern: each worker owns
// a contiguous index range and writes only inside it.
func PoolPartitioned(in, out []float64) {
	par.Ranges(len(in), 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = in[i] * 2
		}
	})
}

// PoolConstIndex has every pool worker write the same cell: a constant
// index is only safe for a single-instance closure.
func PoolConstIndex(in, out []float64) {
	par.Ranges(len(in), 4, func(lo, hi int) {
		out[0] = in[0] // want "non-partitioned index"
	})
}

// Suppressed justifies a deliberate shared write.
func Suppressed(xs []int, done chan struct{}) int {
	n := 0
	for range xs {
		go func() {
			//vet:allow looprace golden-file input: the single goroutine owns n until done is closed
			n++ // want-suppressed "write to shared variable"
			done <- struct{}{}
		}()
	}
	return n
}
