package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module.
type Package struct {
	// ImportPath is the package's import path within the module.
	ImportPath string
	// Dir is the absolute directory holding the package's sources.
	Dir string
	// Filenames are the absolute paths of the parsed files, parallel to
	// Files.
	Filenames []string
	// Files are the parsed sources (with comments, for suppression
	// directives).
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's expression and identifier facts.
	Info *types.Info
}

// Module is a fully loaded module: every non-test package, parsed and
// type-checked in dependency order, with no dependency beyond the
// standard library's go/* packages.
type Module struct {
	// Root is the absolute directory holding go.mod.
	Root string
	// Path is the module path declared in go.mod.
	Path string
	// Fset positions every parsed file.
	Fset *token.FileSet
	// Pkgs are the module's packages, sorted by import path.
	Pkgs []*Package

	byPath map[string]*types.Package
	std    types.Importer
	facts  *Facts
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// parsedPkg is a package between parsing and type-checking.
type parsedPkg struct {
	importPath string
	dir        string
	filenames  []string
	files      []*ast.File
	deps       []string // module-internal import paths
}

// LoadModule parses and type-checks every non-test package of the module
// containing dir. Directories named testdata or vendor, and directories
// whose name starts with "." or "_", are skipped, matching the go tool.
func LoadModule(dir string) (*Module, error) {
	root, err := FindModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	mod := &Module{
		Root:   root,
		Path:   modPath,
		Fset:   fset,
		byPath: make(map[string]*types.Package),
		std:    importer.ForCompiler(fset, "gc", nil),
	}

	var parsed []*parsedPkg
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		p, err := mod.parseDir(path)
		if err != nil {
			return err
		}
		if p != nil {
			parsed = append(parsed, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	ordered, err := topoSort(parsed)
	if err != nil {
		return nil, err
	}
	for _, p := range ordered {
		pkg, err := mod.check(p)
		if err != nil {
			return nil, err
		}
		mod.Pkgs = append(mod.Pkgs, pkg)
		mod.byPath[pkg.ImportPath] = pkg.Types
	}
	sort.Slice(mod.Pkgs, func(i, j int) bool {
		return mod.Pkgs[i].ImportPath < mod.Pkgs[j].ImportPath
	})
	return mod, nil
}

// parseDir parses one directory's non-test Go files, returning nil when
// the directory holds no buildable Go sources.
func (m *Module) parseDir(dir string) (*parsedPkg, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return nil, err
	}
	importPath := m.Path
	if rel != "." {
		importPath = m.Path + "/" + filepath.ToSlash(rel)
	}
	p := &parsedPkg{importPath: importPath, dir: dir}
	seen := make(map[string]bool)
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		full := filepath.Join(dir, name)
		file, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		p.filenames = append(p.filenames, full)
		p.files = append(p.files, file)
		for _, imp := range file.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if (path == m.Path || strings.HasPrefix(path, m.Path+"/")) && !seen[path] {
				seen[path] = true
				p.deps = append(p.deps, path)
			}
		}
	}
	if len(p.files) == 0 {
		return nil, nil
	}
	return p, nil
}

// topoSort orders packages so every module-internal dependency precedes
// its importers.
func topoSort(pkgs []*parsedPkg) ([]*parsedPkg, error) {
	byPath := make(map[string]*parsedPkg, len(pkgs))
	for _, p := range pkgs {
		byPath[p.importPath] = p
	}
	// Deterministic starting order.
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].importPath < pkgs[j].importPath })
	const (
		unvisited = iota
		visiting
		done
	)
	state := make(map[string]int, len(pkgs))
	var out []*parsedPkg
	var visit func(p *parsedPkg) error
	visit = func(p *parsedPkg) error {
		switch state[p.importPath] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("import cycle through %s", p.importPath)
		}
		state[p.importPath] = visiting
		for _, dep := range p.deps {
			d, ok := byPath[dep]
			if !ok {
				return fmt.Errorf("%s imports %s, which is not in the module", p.importPath, dep)
			}
			if err := visit(d); err != nil {
				return err
			}
		}
		state[p.importPath] = done
		out = append(out, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// newInfo returns a types.Info recording every fact the analyzers query.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
}

// check type-checks one parsed package against the already-checked module
// packages and the compiled standard library.
func (m *Module) check(p *parsedPkg) (*Package, error) {
	info := newInfo()
	var errs []error
	conf := types.Config{
		Importer: m,
		Error:    func(err error) { errs = append(errs, err) },
	}
	tpkg, err := conf.Check(p.importPath, m.Fset, p.files, info)
	if len(errs) == 0 && err != nil {
		errs = append(errs, err)
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", p.importPath, errs[0])
	}
	return &Package{
		ImportPath: p.importPath,
		Dir:        p.dir,
		Filenames:  p.filenames,
		Files:      p.files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// Import implements types.Importer: module-internal packages resolve to
// the already-checked set, everything else to the standard library.
func (m *Module) Import(path string) (*types.Package, error) {
	if pkg, ok := m.byPath[path]; ok {
		return pkg, nil
	}
	return m.std.Import(path)
}

// LoadExtra parses and type-checks one extra directory (e.g. an
// analyzer's testdata package) against the loaded module. The package is
// returned without being registered in the module.
func (m *Module) LoadExtra(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	p := &parsedPkg{importPath: "vettest/" + filepath.Base(abs), dir: abs}
	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		full := filepath.Join(abs, name)
		file, err := parser.ParseFile(m.Fset, full, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		p.filenames = append(p.filenames, full)
		p.files = append(p.files, file)
	}
	if len(p.files) == 0 {
		return nil, fmt.Errorf("%s: no Go files", dir)
	}
	return m.check(p)
}
