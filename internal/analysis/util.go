package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// typeOf returns the type of e in the pass's package, or nil.
func typeOf(p *Pass, e ast.Expr) types.Type {
	return pkgTypeOf(p.Pkg, e)
}

// pkgTypeOf is typeOf for code that holds a Package, not a Pass (the
// fact layer resolves expressions in packages other than the one under
// analysis).
func pkgTypeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// objectOf resolves an identifier to its object (use or definition).
func objectOf(p *Pass, id *ast.Ident) types.Object {
	return pkgObjectOf(p.Pkg, id)
}

// pkgObjectOf is objectOf against an explicit package.
func pkgObjectOf(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Uses[id]; obj != nil {
		return obj
	}
	return pkg.Info.Defs[id]
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isFloatType reports whether t's underlying type is a floating-point
// basic type (typed or untyped).
func isFloatType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootExpr strips index, selector, star, and paren layers off an
// assignable expression, returning the base identifier or nil. For
// `sel.shards[s]` it returns `sel`; for `*p` it returns `p`.
func rootExpr(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// span is a source region; spans answer "was this object declared inside
// the code being scanned?".
type span struct{ pos, end token.Pos }

func nodeSpan(n ast.Node) span { return span{n.Pos(), n.End()} }

func (s span) contains(p token.Pos) bool { return p >= s.pos && p <= s.end }

// declaredWithin reports whether obj's declaration lies inside any of the
// spans. Objects without a position (package names, builtins) are never
// "within".
func declaredWithin(obj types.Object, spans []span) bool {
	if obj == nil || !obj.Pos().IsValid() {
		return false
	}
	for _, s := range spans {
		if s.contains(obj.Pos()) {
			return true
		}
	}
	return false
}

// pkgNamePath returns the imported package path when id names an imported
// package (e.g. the `fmt` in fmt.Printf), or "".
func pkgNamePath(p *Pass, id *ast.Ident) string {
	return pkgNamePathOf(p.Pkg, id)
}

// pkgNamePathOf is pkgNamePath against an explicit package.
func pkgNamePathOf(pkg *Package, id *ast.Ident) string {
	if pn, ok := pkgObjectOf(pkg, id).(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// unparen strips parentheses (local stand-in for go1.22's ast.Unparen,
// kept toolchain-portable).
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleeObject resolves a call's target: the function or method object,
// or nil for builtins, conversions, and dynamic calls through values.
func calleeObject(p *Pass, call *ast.CallExpr) types.Object {
	return pkgCalleeObject(p.Pkg, call)
}

// pkgCalleeObject is calleeObject against an explicit package.
func pkgCalleeObject(pkg *Package, call *ast.CallExpr) types.Object {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj := pkgObjectOf(pkg, fun); obj != nil {
			if _, ok := obj.(*types.Func); ok {
				return obj
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call: fmt.Printf, mdl.DocCost.
		if obj := pkgObjectOf(pkg, fun.Sel); obj != nil {
			return obj
		}
	}
	return nil
}

// isBuiltin reports whether a call invokes the named builtin.
func isBuiltin(p *Pass, call *ast.CallExpr, name string) bool {
	return pkgIsBuiltin(p.Pkg, call, name)
}

// pkgIsBuiltin is isBuiltin against an explicit package.
func pkgIsBuiltin(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pkgObjectOf(pkg, id).(*types.Builtin)
	return ok
}

// localClosures maps each variable that is directly bound to a function
// literal in this file (x := func(...){...}) to that literal, letting
// analyzers see one call level through helper closures.
func localClosures(p *Pass, file *ast.File) map[types.Object]*ast.FuncLit {
	out := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(file, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if obj := objectOf(p, id); obj != nil {
					out[obj] = lit
				}
			}
		}
		return true
	})
	return out
}

// stmtLists visits every statement list under root (block bodies, case
// and select clauses) exactly once.
func stmtLists(root ast.Node, visit func(list []ast.Stmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch b := n.(type) {
		case *ast.BlockStmt:
			visit(b.List)
		case *ast.CaseClause:
			visit(b.Body)
		case *ast.CommClause:
			visit(b.Body)
		}
		return true
	})
}

// unlabel unwraps labeled statements (`retry: for ... {}`).
func unlabel(s ast.Stmt) ast.Stmt {
	for {
		l, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}

// isTestFile reports whether the position's file is a _test.go file.
func isTestFile(p *Pass, pos token.Pos) bool {
	name := p.Fset.Position(pos).Filename
	return len(name) >= len("_test.go") && name[len(name)-len("_test.go"):] == "_test.go"
}
