package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FloatEq guards the reproducibility of the MDL arithmetic: template and
// data costs (Eq. 2–4) are sums of lg terms, so two mathematically equal
// costs computed along different code paths — or on different
// architectures, where fused multiply-add and 80-bit spills change the
// last ulps — need not be bit-identical. Exact == / != between such
// values silently diverges; comparisons must go through mdl.ApproxEq.
//
// A float comparison is flagged when either operand "traces to" the cost
// model: it contains a call into internal/mdl or internal/slotinfo, a
// call to a function whose name mentions Cost, an identifier or field
// whose name mentions cost, or a local variable assigned from any such
// expression (propagated to a fixpoint within the enclosing function).
// Ordinary float comparisons — scores, coordinates, ratios with no cost
// provenance — are not flagged.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc: "flags exact ==/!= between float64 values that trace to " +
		"mdl/slotinfo cost functions; use mdl.ApproxEq instead",
	Run: runFloatEq,
}

func runFloatEq(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		// Visit every function body with its own taint set.
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFloatEqIn(pass, fn.Body)
				}
				return false
			case *ast.FuncLit:
				// Reached only for package-level literals (var f = func...);
				// nested literals are scanned with their enclosing body so
				// taint flows across the closure boundary.
				checkFloatEqIn(pass, fn.Body)
				return false
			}
			return true
		})
	}
}

func checkFloatEqIn(pass *Pass, body *ast.BlockStmt) {
	tainted := taintedVars(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if !isFloatType(typeOf(pass, be.X)) && !isFloatType(typeOf(pass, be.Y)) {
			return true
		}
		if exprTaint(pass, be.X, tainted) || exprTaint(pass, be.Y, tainted) {
			pass.Reportf(be.OpPos, "exact float %s on MDL cost values; lg-term sums differ in the last ulps across code paths and architectures — use mdl.ApproxEq",
				be.Op)
		}
		return true
	})
}

// taintedVars computes, to a fixpoint, the local variables of one
// function body whose value derives from a cost expression.
func taintedVars(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	tainted := make(map[types.Object]bool)
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			mark := func(lhs ast.Expr) {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					return
				}
				obj := objectOf(pass, id)
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			if len(as.Lhs) == len(as.Rhs) {
				for i, rhs := range as.Rhs {
					if exprTaint(pass, rhs, tainted) {
						mark(as.Lhs[i])
					}
				}
			} else if len(as.Rhs) == 1 && exprTaint(pass, as.Rhs[0], tainted) {
				for _, lhs := range as.Lhs {
					mark(lhs)
				}
			}
			return true
		})
		if !changed {
			return tainted
		}
	}
}

// exprTaint reports whether an expression derives from the MDL cost
// model.
func exprTaint(pass *Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if callTaint(pass, x) {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if nameMentionsCost(x.Sel.Name) {
				found = true
				return false
			}
		case *ast.Ident:
			if nameMentionsCost(x.Name) {
				found = true
				return false
			}
			if obj := objectOf(pass, x); obj != nil && tainted[obj] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// callTaint reports whether a call targets the cost model: any function
// of internal/mdl or internal/slotinfo, or any function whose name
// mentions Cost (template.Fit.TotalCost, align.StandaloneCost, ...).
func callTaint(pass *Pass, call *ast.CallExpr) bool {
	obj := calleeObject(pass, call)
	if obj == nil {
		return false
	}
	if nameMentionsCost(obj.Name()) {
		return true
	}
	pkg := obj.Pkg()
	if pkg == nil {
		return false
	}
	path := pkg.Path()
	return path == "internal/mdl" || strings.HasSuffix(path, "/internal/mdl") ||
		path == "internal/slotinfo" || strings.HasSuffix(path, "/internal/slotinfo")
}

func nameMentionsCost(name string) bool {
	return strings.Contains(strings.ToLower(name), "cost")
}
