package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural substrate of the suite: per-function
// fact summaries, computed on demand and memoized, plus module-wide
// operation indexes. Memoization with a recursion guard makes the
// evaluation effectively bottom-up over the module's call DAG — a leaf
// helper's summary is computed once, on first use, and every caller
// reuses it — without materializing a call graph or depending on
// x/tools.
//
// Facts are deliberately optimistic: an unknown callee (dynamic call,
// conversion, stdlib function without source) contributes nothing. The
// analyzers built on top are linters enforcing repo invariants, not a
// soundness proof, and optimism keeps the false-positive rate near zero
// on real code.

// declInfo pairs a function declaration with the package whose
// types.Info resolves its identifiers.
type declInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// Facts computes and caches interprocedural summaries for one loaded
// module (plus any extra packages registered by the golden-file tests).
type Facts struct {
	mod     *Module
	extra   []*Package
	version int

	declVer int
	decls   map[*types.Func]*declInfo

	ret     map[*types.Func]uint64
	retBusy map[*types.Func]bool

	sig     map[*types.Func][]signalFact
	sigBusy map[*types.Func]bool

	lockMemo map[types.Type]int // 0 unknown, 1 holds, 2 clean

	idxVer int
	idx    *opIndex
}

func newFacts(m *Module) *Facts {
	return &Facts{
		mod:      m,
		version:  1,
		ret:      make(map[*types.Func]uint64),
		retBusy:  make(map[*types.Func]bool),
		sig:      make(map[*types.Func][]signalFact),
		sigBusy:  make(map[*types.Func]bool),
		lockMemo: make(map[types.Type]int),
	}
}

// Facts returns the module's lazily-built fact layer.
func (m *Module) Facts() *Facts {
	if m.facts == nil {
		m.facts = newFacts(m)
	}
	return m.facts
}

// AddPackage registers an extra package (a testdata package loaded by
// LoadExtra) so its functions get summaries and its operations join the
// module-wide indexes. Idempotent.
func (f *Facts) AddPackage(pkg *Package) {
	for _, p := range f.extra {
		if p == pkg {
			return
		}
	}
	for _, p := range f.mod.Pkgs {
		if p == pkg {
			return
		}
	}
	f.extra = append(f.extra, pkg)
	f.version++
}

func (f *Facts) packages() []*Package {
	all := make([]*Package, 0, len(f.mod.Pkgs)+len(f.extra))
	all = append(all, f.mod.Pkgs...)
	return append(all, f.extra...)
}

// ensureDecls (re)builds the function-declaration registry when packages
// have been added since the last build.
func (f *Facts) ensureDecls() {
	if f.decls != nil && f.declVer == f.version {
		return
	}
	f.decls = make(map[*types.Func]*declInfo)
	for _, pkg := range f.packages() {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					f.decls[fn] = &declInfo{pkg: pkg, decl: fd}
				}
			}
		}
	}
	f.declVer = f.version
}

// Decl returns the registered declaration of fn, or nil for functions
// without module source (stdlib, interface methods).
func (f *Facts) Decl(fn *types.Func) (*Package, *ast.FuncDecl) {
	f.ensureDecls()
	if fn != nil {
		fn = fn.Origin()
	}
	if d := f.decls[fn]; d != nil {
		return d.pkg, d.decl
	}
	return nil, nil
}

// objKey is the stable cross-package identity of an object: package
// path, receiver type for methods, then name. Used to order map
// iterations over object-keyed facts deterministically (the maporder
// discipline applies to the analyzers themselves).
func objKey(obj types.Object) string {
	if obj == nil {
		return ""
	}
	key := obj.Name()
	if fn, ok := obj.(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			key = sig.Recv().Type().String() + "." + key
		}
	}
	if obj.Pkg() != nil {
		key = obj.Pkg().Path() + "." + key
	}
	return key
}

// inputObjs lists a declaration's input objects in slot order: receiver
// first (when present), then parameters. Unnamed inputs occupy a slot as
// nil so slot indexes line up with call-site arguments.
func inputObjs(pkg *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				out = append(out, nil)
				continue
			}
			for _, name := range field.Names {
				out = append(out, pkg.Info.Defs[name])
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return out
}

// callInputExprs aligns a call's receiver and argument expressions with
// the callee's input slots (receiver first). Variadic arguments beyond
// the declared parameters are dropped — facts stay coarse there.
func callInputExprs(call *ast.CallExpr, fn *types.Func) []ast.Expr {
	sig, _ := fn.Type().(*types.Signature)
	var out []ast.Expr
	if sig != nil && sig.Recv() != nil {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			out = append(out, sel.X)
		} else {
			out = append(out, nil)
		}
	}
	nparams := 0
	if sig != nil {
		nparams = sig.Params().Len()
	}
	for i := 0; i < nparams; i++ {
		if i < len(call.Args) {
			out = append(out, call.Args[i])
		} else {
			out = append(out, nil)
		}
	}
	return out
}

// ---------------------------------------------------------------------
// Return-alias facts

// RetAliases returns a bitmask over fn's input slots (receiver first,
// then parameters) of which inputs the return values may alias through
// slices, pointers, or maps. grow(p *[]int, n) []int returning (*p)[:n]
// has bit 0 set; arena.copyIn returning a view of the receiver's block
// has the receiver bit set. Functions without module source report 0.
func (f *Facts) RetAliases(fn *types.Func) uint64 {
	if fn == nil {
		return 0
	}
	// A method on an instantiated generic (arena[int32].copyIn) resolves
	// to the instance object at call sites; the declaration registry is
	// keyed by the generic origin.
	fn = fn.Origin()
	if bits, ok := f.ret[fn]; ok {
		return bits
	}
	f.ensureDecls()
	d := f.decls[fn]
	if d == nil {
		f.ret[fn] = 0
		return 0
	}
	if f.retBusy[fn] {
		// Recursive call cycle: the optimistic fixed point is "no alias";
		// the outermost evaluation memoizes the final answer.
		return 0
	}
	f.retBusy[fn] = true
	bits := f.computeRetAliases(d)
	delete(f.retBusy, fn)
	f.ret[fn] = bits
	return bits
}

func (f *Facts) computeRetAliases(d *declInfo) uint64 {
	inputs := make(map[types.Object]uint64)
	for i, obj := range inputObjs(d.pkg, d.decl) {
		if obj != nil && i < 64 {
			inputs[obj] = 1 << uint(i)
		}
	}
	if len(inputs) == 0 {
		return 0
	}
	local := f.aliasFlow(d.pkg, d.decl.Body, inputs)
	results := make(map[types.Object]bool)
	if d.decl.Type.Results != nil {
		for _, field := range d.decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := d.pkg.Info.Defs[name]; obj != nil {
					results[obj] = true
				}
			}
		}
	}
	var bits uint64
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// A nested literal's returns are its own, not this function's.
			return false
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				bits |= f.aliasBits(d.pkg, res, inputs, local)
			}
		case *ast.AssignStmt:
			// Named results are return sinks: `out = sc.buf[:n]; return`.
			for i, lhs := range x.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if obj := pkgObjectOf(d.pkg, id); obj != nil && results[obj] {
					if len(x.Lhs) == len(x.Rhs) {
						bits |= f.aliasBits(d.pkg, x.Rhs[i], inputs, local)
					} else if len(x.Rhs) == 1 {
						bits |= f.aliasBits(d.pkg, x.Rhs[0], inputs, local)
					}
				}
			}
		}
		return true
	})
	return bits
}

// aliasFlow propagates input aliasing through local variables to a
// fixpoint: after `x := sc.buf[lo:hi]`, x carries sc's bit.
func (f *Facts) aliasFlow(pkg *Package, body *ast.BlockStmt, inputs map[types.Object]uint64) map[types.Object]uint64 {
	local := make(map[types.Object]uint64)
	for {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			mark := func(lhs ast.Expr, bits uint64) {
				if bits == 0 {
					return
				}
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					return
				}
				obj := pkgObjectOf(pkg, id)
				if obj == nil || !aliasable(obj.Type()) || inputs[obj] != 0 {
					return
				}
				if local[obj]&bits != bits {
					local[obj] |= bits
					changed = true
				}
			}
			if len(as.Lhs) == len(as.Rhs) {
				for i := range as.Rhs {
					mark(as.Lhs[i], f.aliasBits(pkg, as.Rhs[i], inputs, local))
				}
			} else if len(as.Rhs) == 1 {
				bits := f.aliasBits(pkg, as.Rhs[0], inputs, local)
				for _, lhs := range as.Lhs {
					mark(lhs, bits)
				}
			}
			return true
		})
		if !changed {
			return local
		}
	}
}

// aliasBits reports which input slots e may alias. Aliasing flows
// through selectors, indexing, slicing, dereference, address-of,
// append's first argument, composite-literal elements, and calls whose
// callee facts declare input aliasing.
func (f *Facts) aliasBits(pkg *Package, e ast.Expr, inputs, local map[types.Object]uint64) uint64 {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := pkgObjectOf(pkg, x)
		if obj == nil || !aliasable(obj.Type()) {
			return 0
		}
		if b, ok := inputs[obj]; ok {
			return b
		}
		return local[obj]
	case *ast.SelectorExpr:
		return f.aliasBits(pkg, x.X, inputs, local)
	case *ast.IndexExpr:
		return f.aliasBits(pkg, x.X, inputs, local)
	case *ast.SliceExpr:
		return f.aliasBits(pkg, x.X, inputs, local)
	case *ast.StarExpr:
		return f.aliasBits(pkg, x.X, inputs, local)
	case *ast.TypeAssertExpr:
		return f.aliasBits(pkg, x.X, inputs, local)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return f.aliasBits(pkg, x.X, inputs, local)
		}
	case *ast.CompositeLit:
		var bits uint64
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			bits |= f.aliasBits(pkg, elt, inputs, local)
		}
		return bits
	case *ast.CallExpr:
		if pkgIsBuiltin(pkg, x, "append") && len(x.Args) > 0 {
			return f.aliasBits(pkg, x.Args[0], inputs, local)
		}
		fn, _ := pkgCalleeObject(pkg, x).(*types.Func)
		if fn == nil {
			return 0
		}
		callee := f.RetAliases(fn)
		if callee == 0 {
			return 0
		}
		var bits uint64
		for i, arg := range callInputExprs(x, fn) {
			if i >= 64 {
				break
			}
			if callee&(1<<uint(i)) != 0 && arg != nil {
				bits |= f.aliasBits(pkg, arg, inputs, local)
			}
		}
		return bits
	}
	return 0
}

// ---------------------------------------------------------------------
// Completion-signal facts (goleak)

type sigKind int

const (
	sigClose sigKind = iota // close(ch)
	sigSend                 // ch <- v
	sigDone                 // wg.Done()
)

func (k sigKind) String() string {
	switch k {
	case sigClose:
		return "close"
	case sigSend:
		return "send"
	default:
		return "Done"
	}
}

// signalFact is one completion signal a function emits: closing a
// channel, sending on one, or calling WaitGroup.Done. The target is
// either absolute (a struct field or package-level variable, identified
// by its object) or relative to an input slot, resolved at call sites.
type signalFact struct {
	kind  sigKind
	obj   types.Object // field or package/local var; nil when param-relative
	param int          // input slot when param-relative; -1 otherwise
}

// Signals returns fn's completion-signal facts: every close/send/Done it
// (or a callee, transitively) performs on a field, package variable, or
// input. Locals are excluded — a channel both created and closed inside
// fn signals nothing to callers.
func (f *Facts) Signals(fn *types.Func) []signalFact {
	if fn == nil {
		return nil
	}
	fn = fn.Origin() // instantiated generic method → its declaration

	if sigs, ok := f.sig[fn]; ok {
		return sigs
	}
	f.ensureDecls()
	d := f.decls[fn]
	if d == nil {
		f.sig[fn] = nil
		return nil
	}
	if f.sigBusy[fn] {
		return nil
	}
	f.sigBusy[fn] = true
	inputs := make(map[types.Object]int)
	for i, obj := range inputObjs(d.pkg, d.decl) {
		if obj != nil {
			inputs[obj] = i
		}
	}
	c := &sigCollector{f: f, pkg: d.pkg, inputs: inputs}
	c.walk(d.decl.Body)
	delete(f.sigBusy, fn)
	f.sig[fn] = c.out
	return c.out
}

// GoSignals resolves the completion signals of one `go` statement: a
// closure's body is scanned directly (locals of the spawning function
// are kept — they are the join keys), a named callee contributes its
// facts with param-relative targets substituted by the call arguments.
func (f *Facts) GoSignals(pkg *Package, g *ast.GoStmt) []signalFact {
	c := &sigCollector{f: f, pkg: pkg, keepLocals: true}
	if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok {
		c.walk(lit.Body)
	} else {
		c.resolveCall(g.Call)
	}
	return c.out
}

type sigCollector struct {
	f          *Facts
	pkg        *Package
	inputs     map[types.Object]int
	keepLocals bool
	out        []signalFact
}

func (c *sigCollector) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			c.add(sigSend, x.Chan)
		case *ast.CallExpr:
			c.resolveCall(x)
		}
		return true
	})
}

// resolveCall records the signals one call contributes: close() and
// WaitGroup.Done() directly, any other named callee via its facts.
func (c *sigCollector) resolveCall(call *ast.CallExpr) {
	if pkgIsBuiltin(c.pkg, call, "close") && len(call.Args) == 1 {
		c.add(sigClose, call.Args[0])
		return
	}
	if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
		if isSyncType(pkgTypeOf(c.pkg, sel.X), "sync", "WaitGroup") {
			c.add(sigDone, sel.X)
			return
		}
	}
	fn, _ := pkgCalleeObject(c.pkg, call).(*types.Func)
	if fn == nil {
		return
	}
	args := callInputExprs(call, fn)
	for _, sf := range c.f.Signals(fn) {
		if sf.param < 0 {
			c.out = append(c.out, sf)
			continue
		}
		if sf.param < len(args) && args[sf.param] != nil {
			c.add(sf.kind, args[sf.param])
		}
	}
}

// add resolves a signal target expression to a fact, or drops it when
// the target is invisible outside the scanned scope.
func (c *sigCollector) add(kind sigKind, e ast.Expr) {
	obj := chanKey(c.pkg, e)
	if obj == nil {
		return
	}
	if slot, ok := c.inputs[obj]; ok {
		c.out = append(c.out, signalFact{kind: kind, param: slot})
		return
	}
	v, isVar := obj.(*types.Var)
	if !isVar {
		return
	}
	if v.IsField() || isPkgLevel(obj) || c.keepLocals {
		c.out = append(c.out, signalFact{kind: kind, obj: obj, param: -1})
	}
}

// ---------------------------------------------------------------------
// Module-wide operation index (goleak, chanproto, atomicmix)

type opKind int

const (
	opSend opKind = iota
	opClose
	opRecv      // plain <-ch
	opRecvOk    // v, ok := <-ch (incl. select comm clauses)
	opRecvRange // for range ch
	opWait      // wg.Wait()
	opDone      // wg.Done()
	opAdd       // wg.Add(n)
)

// opSite is one channel/WaitGroup operation, located by the object it
// operates on and the function it occurs in.
type opSite struct {
	key  types.Object
	kind opKind
	pos  token.Pos
	pkg  *Package
	fn   *ast.FuncDecl // enclosing top-level declaration
}

// opIndex is the module-wide view the concurrency analyzers share.
type opIndex struct {
	byKey map[types.Object][]opSite
	// locks maps each declaration to the mutex objects it Lock()s or
	// RLock()s anywhere in its body. Two functions locking a common
	// mutex are treated as mutually ordered.
	locks map[*ast.FuncDecl]map[types.Object]bool
	// atomics maps each variable or field passed by address to a
	// sync/atomic function to those call sites.
	atomics map[types.Object][]opSite
}

// sortedKeys orders the index's object keys deterministically.
func (ix *opIndex) sortedKeys(m map[types.Object][]opSite) []types.Object {
	keys := make([]types.Object, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := objKey(keys[i]), objKey(keys[j])
		if a != b {
			return a < b
		}
		return keys[i].Pos() < keys[j].Pos()
	})
	return keys
}

// Index builds (or returns the cached) operation index over every loaded
// package.
func (f *Facts) Index() *opIndex {
	if f.idx != nil && f.idxVer == f.version {
		return f.idx
	}
	ix := &opIndex{
		byKey:   make(map[types.Object][]opSite),
		locks:   make(map[*ast.FuncDecl]map[types.Object]bool),
		atomics: make(map[types.Object][]opSite),
	}
	for _, pkg := range f.packages() {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				indexOps(ix, pkg, fd)
			}
		}
	}
	f.idx = ix
	f.idxVer = f.version
	return ix
}

func indexOps(ix *opIndex, pkg *Package, fd *ast.FuncDecl) {
	add := func(e ast.Expr, kind opKind, pos token.Pos) {
		if key := chanKey(pkg, e); key != nil {
			ix.byKey[key] = append(ix.byKey[key], opSite{key: key, kind: kind, pos: pos, pkg: pkg, fn: fd})
		}
	}
	consumed := make(map[ast.Expr]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SendStmt:
			add(x.Chan, opSend, x.Arrow)
		case *ast.AssignStmt:
			if len(x.Lhs) == 2 && len(x.Rhs) == 1 {
				if recv, ok := unparen(x.Rhs[0]).(*ast.UnaryExpr); ok && recv.Op == token.ARROW {
					consumed[recv] = true
					add(recv.X, opRecvOk, recv.OpPos)
				}
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !consumed[x] {
				add(x.X, opRecv, x.OpPos)
			}
		case *ast.RangeStmt:
			if t := pkgTypeOf(pkg, x.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					add(x.X, opRecvRange, x.For)
				}
			}
		case *ast.CallExpr:
			if pkgIsBuiltin(pkg, x, "close") && len(x.Args) == 1 {
				add(x.Args[0], opClose, x.Pos())
				return true
			}
			sel, ok := unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				// Package-qualified sync/atomic calls go through the
				// selector case below; plain calls carry nothing else.
				return true
			}
			recvT := pkgTypeOf(pkg, sel.X)
			switch sel.Sel.Name {
			case "Wait":
				if isSyncType(recvT, "sync", "WaitGroup") {
					add(sel.X, opWait, x.Pos())
				}
			case "Done":
				if isSyncType(recvT, "sync", "WaitGroup") {
					add(sel.X, opDone, x.Pos())
				}
			case "Add":
				if isSyncType(recvT, "sync", "WaitGroup") {
					add(sel.X, opAdd, x.Pos())
				}
			case "Lock", "RLock":
				if isSyncType(recvT, "sync", "Mutex") || isSyncType(recvT, "sync", "RWMutex") {
					if key := chanKey(pkg, sel.X); key != nil {
						if ix.locks[fd] == nil {
							ix.locks[fd] = make(map[types.Object]bool)
						}
						ix.locks[fd][key] = true
					}
				}
			}
			if id, ok := sel.X.(*ast.Ident); ok && pkgNamePathOf(pkg, id) == "sync/atomic" {
				for _, arg := range x.Args {
					if u, ok := unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
						if key := chanKey(pkg, u.X); key != nil {
							ix.atomics[key] = append(ix.atomics[key], opSite{key: key, pos: x.Pos(), pkg: pkg, fn: fd})
						}
					}
				}
			}
		}
		return true
	})
}

// commonLock reports whether two declarations lock a common mutex — the
// accept-gate shape: sends under RLock, close under Lock of the same
// mutex are mutually ordered.
func (ix *opIndex) commonLock(a, b *ast.FuncDecl) bool {
	la, lb := ix.locks[a], ix.locks[b]
	if len(la) == 0 || len(lb) == 0 {
		return false
	}
	for k := range la {
		if lb[k] {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Lock-bearing types (atomicmix)

// holdsLock reports whether t transitively contains a sync or
// sync/atomic value (Mutex, RWMutex, WaitGroup, Once, Cond, Pool, Map,
// atomic.Int64, ...) by value — through struct fields, embedded fields,
// and arrays, but not through pointers or slices. Such values must not
// be copied.
func (f *Facts) holdsLock(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := f.lockMemo[t]; ok {
		return v == 1
	}
	f.lockMemo[t] = 2 // breaks recursive types; overwritten below
	held := f.computeHoldsLock(t)
	if held {
		f.lockMemo[t] = 1
	} else {
		f.lockMemo[t] = 2
	}
	return held
}

func (f *Facts) computeHoldsLock(t types.Type) bool {
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			path := obj.Pkg().Path()
			if path == "sync" || path == "sync/atomic" {
				if _, isIface := named.Underlying().(*types.Interface); !isIface {
					return true
				}
				return false
			}
		}
		return f.holdsLock(named.Underlying())
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if f.holdsLock(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return f.holdsLock(u.Elem())
	}
	return false
}

// ---------------------------------------------------------------------
// Shared resolution helpers

// chanKey resolves a channel/WaitGroup/mutex operand expression to the
// object that identifies it module-wide: a struct field (shared across
// instances — deliberately coarse), a package-level variable, or a
// local. Returns nil for expressions with no stable base.
func chanKey(pkg *Package, e ast.Expr) types.Object {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj := pkgObjectOf(pkg, x)
		if _, ok := obj.(*types.Var); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok {
			return sel.Obj()
		}
		if obj := pkgObjectOf(pkg, x.Sel); obj != nil {
			if _, ok := obj.(*types.Var); ok {
				return obj
			}
		}
	case *ast.IndexExpr:
		return chanKey(pkg, x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return chanKey(pkg, x.X)
		}
	case *ast.StarExpr:
		return chanKey(pkg, x.X)
	}
	return nil
}

// isPkgLevel reports whether obj is a package-level variable.
func isPkgLevel(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

// isSyncType reports whether t (or the type it points to) is the named
// type pkgPath.name.
func isSyncType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// aliasable reports whether values of t can alias other storage: slices,
// pointers, and maps. Strings and struct/array values copy; channels and
// funcs are tracked by the op index instead.
func aliasable(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map:
		return true
	}
	return false
}

// isPoolType reports whether t (or its pointee) is a pooled-scratch
// type: a named type whose name mentions scratch or arena, or
// sync.Pool. This is the naming contract DESIGN §8 documents — pooled
// buffers are recognizable by name, module-wide.
func isPoolType(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	if isSyncType(t, "sync", "Pool") {
		return true
	}
	name := strings.ToLower(named.Obj().Name())
	return strings.Contains(name, "scratch") || strings.Contains(name, "arena")
}
