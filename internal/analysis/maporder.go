package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder guards the pipeline's byte-identical-output invariant: Go map
// iteration order is random per run, so a `range` over a map must not
// let that order leak into anything observable. The analyzer flags a map
// range whose body (including calls through locally-defined helper
// closures, one level deep) appends to a slice declared outside the
// loop, writes to a writer/printer/hash that outlives the loop, or sends
// on a channel — unless the appended slice is sorted by a later
// statement of the same block (the sort re-establishes a canonical
// order) or the site carries a `//vet:ordered <reason>` justification.
//
// Commutative uses — counting into another map, reductions like max or
// sum — are not flagged: they are order-insensitive by construction.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map whose iteration order can leak into output " +
		"(appends, writes, hashing, channel sends) without a sort or a " +
		"//vet:ordered justification",
	Run: runMapOrder,
}

// writeMethods are method or function names that emit bytes somewhere
// order-sensitive: an io.Writer, a string builder, a printer, a hash, or
// an encoder.
var writeMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true, "Encode": true,
}

func runMapOrder(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		closures := localClosures(pass, file)
		stmtLists(file, func(list []ast.Stmt) {
			for i, stmt := range list {
				rs, ok := unlabel(stmt).(*ast.RangeStmt)
				if !ok || !isMapType(typeOf(pass, rs.X)) {
					continue
				}
				checkMapRange(pass, rs, list[i+1:], closures)
			}
		})
	}
}

// mapRangeScan accumulates the order-sensitive effects found in one map
// range body.
type mapRangeScan struct {
	pass     *Pass
	closures map[types.Object]*ast.FuncLit
	spans    []span // the range body plus any scanned closure bodies
	visited  map[*ast.FuncLit]bool

	appendTargets []types.Object // outside slices appended to
	other         []string       // non-append effects (writes, sends)
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt, closures map[types.Object]*ast.FuncLit) {
	scan := &mapRangeScan{
		pass:     pass,
		closures: closures,
		spans:    []span{nodeSpan(rs)},
		visited:  map[*ast.FuncLit]bool{},
	}
	scan.walk(rs.Body, 0)
	if len(scan.appendTargets) == 0 && len(scan.other) == 0 {
		return
	}
	// A later sort of every appended slice restores a canonical order —
	// but only if appends were the sole order-sensitive effect.
	if len(scan.other) == 0 && allSortedLater(pass, rest, scan.appendTargets) {
		return
	}
	pass.Reportf(rs.For, "iteration order of map %s leaks into %s; sort the result or annotate //vet:ordered <reason>",
		types.ExprString(rs.X), scan.describe())
}

func (s *mapRangeScan) describe() string {
	var parts []string
	for _, t := range s.appendTargets {
		parts = append(parts, fmt.Sprintf("append to %q", t.Name()))
	}
	parts = append(parts, s.other...)
	return strings.Join(parts, ", ")
}

// walk scans a body for order-sensitive effects, following calls to
// locally-bound closures one level deep.
func (s *mapRangeScan) walk(body ast.Node, depth int) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			s.scanAssign(x)
		case *ast.SendStmt:
			if ch := rootExpr(x.Chan); ch != nil {
				if obj := objectOf(s.pass, ch); obj != nil && !declaredWithin(obj, s.spans) {
					s.other = append(s.other, fmt.Sprintf("send on channel %q", ch.Name))
				}
			}
		case *ast.CallExpr:
			s.scanCall(x, depth)
		}
		return true
	})
}

// scanAssign records appends whose target slice is declared outside the
// scanned code. Appends into a map cell (m[k] = append(m[k], v)) are
// per-key and therefore order-insensitive; they are ignored.
func (s *mapRangeScan) scanAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltin(s.pass, call, "append") {
			continue
		}
		lhs := unparen(as.Lhs[i])
		if _, ok := lhs.(*ast.IndexExpr); ok {
			continue // per-key/per-index append, order-insensitive
		}
		root := rootExpr(lhs)
		if root == nil {
			continue
		}
		obj := objectOf(s.pass, root)
		if obj == nil || declaredWithin(obj, s.spans) {
			continue
		}
		for _, t := range s.appendTargets {
			if t == obj {
				obj = nil
				break
			}
		}
		if obj != nil {
			s.appendTargets = append(s.appendTargets, obj)
		}
	}
}

// scanCall flags write-like calls on receivers that outlive the loop and
// follows locally-bound helper closures.
func (s *mapRangeScan) scanCall(call *ast.CallExpr, depth int) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if !writeMethods[fun.Sel.Name] {
			return
		}
		root := rootExpr(fun.X)
		if root == nil {
			return
		}
		if path := pkgNamePath(s.pass, root); path != "" {
			// Package-level printer (fmt.Printf, log.Println): always
			// order-sensitive — the destination is process-global.
			s.other = append(s.other, fmt.Sprintf("call to %s.%s", root.Name, fun.Sel.Name))
			return
		}
		obj := objectOf(s.pass, root)
		if obj != nil && !declaredWithin(obj, s.spans) {
			s.other = append(s.other, fmt.Sprintf("%s.%s", root.Name, fun.Sel.Name))
		}
	case *ast.Ident:
		if depth >= 2 {
			return
		}
		obj := objectOf(s.pass, fun)
		lit, ok := s.closures[obj]
		if !ok || s.visited[lit] {
			return
		}
		s.visited[lit] = true
		s.spans = append(s.spans, nodeSpan(lit))
		s.walk(lit.Body, depth+1)
	}
}

// allSortedLater reports whether every appended target is the argument of
// a sort/slices call in the statements following the range loop.
func allSortedLater(pass *Pass, rest []ast.Stmt, targets []types.Object) bool {
	if len(targets) == 0 {
		return false
	}
	sorted := make(map[types.Object]bool)
	for _, stmt := range rest {
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fun, ok := unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := unparen(fun.X).(*ast.Ident)
			if !ok {
				return true
			}
			path := pkgNamePath(pass, pkgID)
			if path != "sort" && path != "slices" {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok {
						if obj := objectOf(pass, id); obj != nil {
							sorted[obj] = true
						}
					}
					return true
				})
			}
			return true
		})
	}
	for _, t := range targets {
		if !sorted[t] {
			return false
		}
	}
	return true
}
