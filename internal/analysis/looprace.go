package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LoopRace encodes the concurrency discipline internal/par established:
// work is partitioned into contiguous index ranges, every worker writes
// only result[i] for i in its own range, and loop variables cross a
// goroutine boundary as parameters, never as captures. The analyzer
// inspects every asynchronously-invoked closure — the function literal
// of a `go` statement and every function literal passed to an
// internal/par pool call — and flags:
//
//   - writes to variables declared outside the closure that are not
//     element writes (x = v, x += v, x++ on a shared x);
//   - shared slice/map element writes whose index is not derived from
//     closure-local state (s[j] = v where j is not a parameter or local
//     of the closure — the index-partition pattern is what makes
//     concurrent element writes disjoint);
//   - loop variables captured by a `go` closure launched from inside
//     the loop instead of being passed as parameters (safe under Go
//     1.22 per-iteration semantics, but the repo's discipline keeps
//     worker inputs explicit).
//
// Closures that take a lock (any method call named Lock) are assumed to
// guard their shared writes and are skipped.
var LoopRace = &Analyzer{
	Name: "looprace",
	Doc: "flags goroutine/par-pool closures that write shared state " +
		"without the contiguous index-partition discipline, or capture " +
		"loop variables instead of taking them as parameters",
	Run: runLoopRace,
}

func runLoopRace(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		var walk func(n ast.Node, loopVars []types.Object)
		walk = func(n ast.Node, loopVars []types.Object) {
			switch x := n.(type) {
			case nil:
				return
			case *ast.ForStmt:
				inner := append(loopVars, defsOf(pass, x.Init)...)
				walkChildren(x, func(c ast.Node) { walk(c, inner) })
				return
			case *ast.RangeStmt:
				var inner []types.Object
				inner = append(inner, loopVars...)
				for _, e := range []ast.Expr{x.Key, x.Value} {
					if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.Pkg.Info.Defs[id]; obj != nil {
							inner = append(inner, obj)
						}
					}
				}
				walkChildren(x, func(c ast.Node) { walk(c, inner) })
				return
			case *ast.GoStmt:
				if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
					checkAsyncClosure(pass, lit, loopVars, "go")
				}
			case *ast.CallExpr:
				if isParPoolCall(pass, x) {
					for _, arg := range x.Args {
						if lit, ok := arg.(*ast.FuncLit); ok {
							checkAsyncClosure(pass, lit, nil, "par worker")
						}
					}
				}
			case *ast.FuncLit:
				// A nested function body starts a fresh loop-variable
				// scope: its loops are handled on their own.
				walkChildren(x, func(c ast.Node) { walk(c, nil) })
				return
			}
			walkChildren(n, func(c ast.Node) { walk(c, loopVars) })
		}
		walk(file, nil)
	}
}

// walkChildren visits n's immediate children.
func walkChildren(n ast.Node, visit func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			visit(c)
		}
		return false
	})
}

// defsOf collects the objects defined by a loop init statement
// (for i := 0; ...).
func defsOf(pass *Pass, s ast.Stmt) []types.Object {
	as, ok := s.(*ast.AssignStmt)
	if !ok {
		return nil
	}
	var out []types.Object
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.Pkg.Info.Defs[id]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

// isParPoolCall reports whether a call targets the internal/par package
// (Ranges, IndexedRanges, Each, Do) — its function arguments run on
// worker goroutines.
func isParPoolCall(pass *Pass, call *ast.CallExpr) bool {
	fun, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := unparen(fun.X).(*ast.Ident)
	if !ok {
		return false
	}
	path := pkgNamePath(pass, id)
	return path == "internal/par" || strings.HasSuffix(path, "/internal/par")
}

// checkAsyncClosure inspects one asynchronously-invoked function literal.
// loopVars are the iteration variables of the loops enclosing the launch
// site (nil when the launch is not inside a loop or the closure runs on
// a pool, where every instance shares the same literal).
func checkAsyncClosure(pass *Pass, lit *ast.FuncLit, loopVars []types.Object, kind string) {
	litSpan := []span{nodeSpan(lit)}
	if takesLock(lit) {
		return
	}
	multiInstance := kind != "go" || len(loopVars) > 0
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.Ident:
			for _, lv := range loopVars {
				if objectOf(pass, x) == lv {
					pass.Reportf(x.Pos(), "loop variable %q captured by %s closure; pass it as a parameter (index-partition discipline)",
						x.Name, kind)
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkSharedWrite(pass, unparen(lhs), litSpan, multiInstance, kind)
			}
		case *ast.IncDecStmt:
			checkSharedWrite(pass, unparen(x.X), litSpan, multiInstance, kind)
		}
		return true
	})
}

// checkSharedWrite flags writes through the closure boundary that do not
// follow the index-partition pattern.
func checkSharedWrite(pass *Pass, lhs ast.Expr, litSpan []span, multiInstance bool, kind string) {
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	root := rootExpr(lhs)
	if root == nil {
		return
	}
	obj := objectOf(pass, root)
	if obj == nil || declaredWithin(obj, litSpan) {
		return
	}
	// Element write: shared container, disjoint cells. Safe exactly when
	// the index is closure-local (each worker owns its index range) —
	// map element writes are never safe concurrently.
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		if isMapType(typeOf(pass, idx.X)) {
			pass.Reportf(lhs.Pos(), "concurrent write to shared map %q in %s closure; maps are not safe for concurrent writes",
				root.Name, kind)
			return
		}
		if indexIsLocal(pass, idx.Index, litSpan, multiInstance) {
			return
		}
		pass.Reportf(lhs.Pos(), "shared slice %q written at a non-partitioned index in %s closure; index by a closure parameter or local (contiguous-range discipline)",
			root.Name, kind)
		return
	}
	pass.Reportf(lhs.Pos(), "write to shared variable %q in %s closure; partition by index, pass a result slot, or synchronize",
		root.Name, kind)
}

// indexIsLocal reports whether an index expression is derived from
// closure-local state. A constant index counts as local only for a
// single-instance closure: many instances writing s[0] race.
func indexIsLocal(pass *Pass, index ast.Expr, litSpan []span, multiInstance bool) bool {
	hasIdent := false
	local := true
	ast.Inspect(index, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := objectOf(pass, id)
		if obj == nil {
			return true
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return true // constants, functions: position-independent
		}
		hasIdent = true
		if !declaredWithin(obj, litSpan) {
			local = false
		}
		return true
	})
	if !hasIdent {
		return !multiInstance
	}
	return local
}

// takesLock reports whether the closure body calls a Lock method — the
// shared-state writes are then assumed to be guarded.
func takesLock(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Lock" || sel.Sel.Name == "RLock" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
