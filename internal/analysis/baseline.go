package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineEntry is one accepted pre-existing finding. Entries are keyed
// by analyzer, file, and message — not line numbers — so unrelated edits
// do not invalidate a baseline.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	// Occurrence disambiguates identical findings in one file: the first
	// gets 1, the second 2, and so on. Each occurrence is its own entry,
	// so burning down finding #2 of 3 is a one-line deletion.
	Occurrence int `json:"occurrence,omitempty"`
	// Count is the legacy aggregated form: one entry absorbing Count
	// identical findings. Still honored on read; WriteBaseline now emits
	// per-occurrence entries instead.
	Count int `json:"count,omitempty"`
}

// Baseline is a burn-down list: findings recorded here are reported as
// baselined, not as failures, so a new analyzer can land green and its
// pre-existing findings can be fixed incrementally.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &b, nil
}

// WriteBaseline saves the diagnostics as a baseline file, one entry per
// finding with identical same-file findings disambiguated by an
// occurrence index, deterministically ordered.
func WriteBaseline(path string, diags []Diagnostic) error {
	occ := make(map[string]int)
	b := Baseline{}
	for _, d := range diags {
		k := d.key()
		occ[k]++
		b.Findings = append(b.Findings, BaselineEntry{
			Analyzer: d.Analyzer, File: d.File, Message: d.Message, Occurrence: occ[k],
		})
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Message != c.Message {
			return a.Message < c.Message
		}
		return a.Occurrence < c.Occurrence
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits diagnostics into new findings and baselined ones. Each
// per-occurrence entry absorbs one finding of its key; a legacy
// aggregated entry absorbs Count.
func (b *Baseline) Filter(diags []Diagnostic) (fresh, baselined []Diagnostic) {
	budget := make(map[string]int)
	for _, e := range b.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[e.Analyzer+"|"+e.File+"|"+e.Message] += n
	}
	for _, d := range diags {
		k := d.key()
		if budget[k] > 0 {
			budget[k]--
			baselined = append(baselined, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return fresh, baselined
}
