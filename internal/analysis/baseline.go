package analysis

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// BaselineEntry is one accepted pre-existing finding. Entries are keyed
// by analyzer, file, and message — not line numbers — so unrelated edits
// do not invalidate a baseline.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	// Count is how many identical findings the entry absorbs (several
	// identical messages can occur in one file).
	Count int `json:"count"`
}

// Baseline is a burn-down list: findings recorded here are reported as
// baselined, not as failures, so a new analyzer can land green and its
// pre-existing findings can be fixed incrementally.
type Baseline struct {
	Findings []BaselineEntry `json:"findings"`
}

// ReadBaseline loads a baseline file.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &b, nil
}

// WriteBaseline saves the diagnostics as a baseline file, aggregated and
// deterministically ordered.
func WriteBaseline(path string, diags []Diagnostic) error {
	counts := make(map[string]*BaselineEntry)
	var order []string
	for _, d := range diags {
		k := d.key()
		if e, ok := counts[k]; ok {
			e.Count++
			continue
		}
		counts[k] = &BaselineEntry{Analyzer: d.Analyzer, File: d.File, Message: d.Message, Count: 1}
		order = append(order, k)
	}
	sort.Strings(order)
	b := Baseline{}
	for _, k := range order {
		b.Findings = append(b.Findings, *counts[k])
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Filter splits diagnostics into new findings and baselined ones.
func (b *Baseline) Filter(diags []Diagnostic) (fresh, baselined []Diagnostic) {
	budget := make(map[string]int)
	for _, e := range b.Findings {
		n := e.Count
		if n <= 0 {
			n = 1
		}
		budget[e.Analyzer+"|"+e.File+"|"+e.Message] += n
	}
	for _, d := range diags {
		k := d.key()
		if budget[k] > 0 {
			budget[k]--
			baselined = append(baselined, d)
		} else {
			fresh = append(fresh, d)
		}
	}
	return fresh, baselined
}
