package analysis_test

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"testing"

	"infoshield/internal/analysis"
)

var (
	modOnce sync.Once
	mod     *analysis.Module
	modErr  error
)

// loadRepo type-checks the whole module once and shares it across tests.
func loadRepo(t *testing.T) *analysis.Module {
	t.Helper()
	modOnce.Do(func() { mod, modErr = analysis.LoadModule("../..") })
	if modErr != nil {
		t.Fatalf("LoadModule: %v", modErr)
	}
	return mod
}

// expectation is the set of acceptable message substrings for one line.
// Every finding on the line must match one substring, and every substring
// must be hit by at least one finding.
type expectation struct {
	substrs []string
	hit     []bool
}

var wantRe = regexp.MustCompile(`//\s*(want|want-suppressed)((?:\s+"[^"]*")+)`)
var quotedRe = regexp.MustCompile(`"([^"]*)"`)

// readWants parses the `// want "..."` and `// want-suppressed "..."`
// markers of one golden file into line-keyed expectations.
func readWants(t *testing.T, path string) (want, wantSup map[int]*expectation) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want = make(map[int]*expectation)
	wantSup = make(map[int]*expectation)
	sc := bufio.NewScanner(f)
	for line := 1; sc.Scan(); line++ {
		m := wantRe.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		e := &expectation{}
		for _, q := range quotedRe.FindAllStringSubmatch(m[2], -1) {
			e.substrs = append(e.substrs, q[1])
			e.hit = append(e.hit, false)
		}
		if m[1] == "want" {
			want[line] = e
		} else {
			wantSup[line] = e
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return want, wantSup
}

// matchDiags checks one diagnostic list against one expectation set.
func matchDiags(t *testing.T, kind string, diags []analysis.Diagnostic, wants map[int]*expectation) {
	t.Helper()
	for _, d := range diags {
		e := wants[d.Line]
		if e == nil {
			t.Errorf("unexpected %s finding: %s", kind, d)
			continue
		}
		matched := false
		for i, sub := range e.substrs {
			if regexp.MustCompile(regexp.QuoteMeta(sub)).MatchString(d.Message) {
				e.hit[i] = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("%s finding on line %d matches no want %q: %s", kind, d.Line, e.substrs, d)
		}
	}
	for line, e := range wants {
		for i, sub := range e.substrs {
			if !e.hit[i] {
				t.Errorf("line %d: no %s finding containing %q", line, kind, sub)
			}
		}
	}
}

// TestAnalyzerGolden runs each analyzer alone over its testdata package
// and compares the kept and suppressed findings against the want
// markers: seeded violations must be detected, annotated sites must be
// suppressed, and clean code must stay clean.
func TestAnalyzerGolden(t *testing.T) {
	repo := loadRepo(t)
	for _, az := range analysis.Analyzers() {
		t.Run(az.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", az.Name)
			pkg, err := repo.LoadExtra(dir)
			if err != nil {
				t.Fatalf("LoadExtra(%s): %v", dir, err)
			}
			kept, suppressed := analysis.RunPackage(repo, pkg, []*analysis.Analyzer{az})
			want, wantSup := readWants(t, filepath.Join(dir, az.Name+".go"))
			matchDiags(t, "kept", kept, want)
			matchDiags(t, "suppressed", suppressed, wantSup)
		})
	}
}

// TestSeededRegressions runs each fact-layer analyzer over a package
// seeded with a realistic bug copied from the shapes in internal/stream
// and internal/serve — the escapes and races the suite exists to catch.
// Each package carries exactly the bug its analyzer must find.
func TestSeededRegressions(t *testing.T) {
	repo := loadRepo(t)
	cases := []struct{ dir, analyzer string }{
		{"arenaleak", "scratchalias"},
		{"drainleak", "goleak"},
		{"statsrace", "atomicmix"},
		{"shutdownrace", "chanproto"},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			azs, err := analysis.ByName(tc.analyzer)
			if err != nil {
				t.Fatal(err)
			}
			dir := filepath.Join("testdata", "regress", tc.dir)
			pkg, err := repo.LoadExtra(dir)
			if err != nil {
				t.Fatalf("LoadExtra(%s): %v", dir, err)
			}
			kept, suppressed := analysis.RunPackage(repo, pkg, azs)
			want, wantSup := readWants(t, filepath.Join(dir, tc.dir+".go"))
			if len(want) == 0 {
				t.Fatal("regression package has no want markers")
			}
			matchDiags(t, "kept", kept, want)
			matchDiags(t, "suppressed", suppressed, wantSup)
		})
	}
}

// TestSuppressionEdgeCases pins the vet:allow parsing rules: a
// directive naming the wrong analyzer keeps the finding, a directive
// above a multi-line statement covers only the statement's first line,
// and a bare directive (no justification) never suppresses.
func TestSuppressionEdgeCases(t *testing.T) {
	repo := loadRepo(t)
	azs, err := analysis.ByName("atomicmix")
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("testdata", "suppress")
	pkg, err := repo.LoadExtra(dir)
	if err != nil {
		t.Fatalf("LoadExtra(%s): %v", dir, err)
	}
	kept, suppressed := analysis.RunPackage(repo, pkg, azs)
	want, wantSup := readWants(t, filepath.Join(dir, "suppress.go"))
	matchDiags(t, "kept", kept, want)
	matchDiags(t, "suppressed", suppressed, wantSup)
}

// TestRepoSelfCheck asserts the suite runs clean over this repository —
// the same invariant `make vet` enforces, kept close to the analyzers so
// a regression fails in the package that caused it.
func TestRepoSelfCheck(t *testing.T) {
	repo := loadRepo(t)
	kept, _ := analysis.Run(repo, analysis.Analyzers())
	for _, d := range kept {
		t.Errorf("unsuppressed finding on clean repo: %s", d)
	}
}

func TestByName(t *testing.T) {
	all, err := analysis.ByName("all")
	if err != nil || len(all) != 8 {
		t.Fatalf("ByName(all) = %d analyzers, err %v; want 8, nil", len(all), err)
	}
	two, err := analysis.ByName("maporder, floateq")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName(maporder, floateq) = %d analyzers, err %v; want 2, nil", len(two), err)
	}
	if two[0].Name != "maporder" || two[1].Name != "floateq" {
		t.Errorf("ByName preserved order wrong: %s, %s", two[0].Name, two[1].Name)
	}
	if _, err := analysis.ByName("bogus"); err == nil {
		t.Error("ByName(bogus) succeeded; want error")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	diags := []analysis.Diagnostic{
		{Analyzer: "maporder", File: "a.go", Line: 3, Col: 2, Message: "m1"},
		{Analyzer: "maporder", File: "a.go", Line: 9, Col: 2, Message: "m1"}, // same key, occurrence 2
		{Analyzer: "ctxerr", File: "b.go", Line: 1, Col: 1, Message: "m2"},
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := analysis.WriteBaseline(path, diags); err != nil {
		t.Fatalf("WriteBaseline: %v", err)
	}
	b, err := analysis.ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	// Identical same-file findings are written as distinct entries with
	// an occurrence index, so one of them can be burned down alone.
	if len(b.Findings) != 3 {
		t.Fatalf("got %d entries, want 3 (one per finding)", len(b.Findings))
	}
	occ := []int{}
	for _, e := range b.Findings {
		if e.Analyzer == "maporder" {
			occ = append(occ, e.Occurrence)
		}
	}
	if len(occ) != 2 || occ[0] != 1 || occ[1] != 2 {
		t.Errorf("maporder occurrences = %v, want [1 2]", occ)
	}
	extra := analysis.Diagnostic{Analyzer: "floateq", File: "c.go", Line: 7, Col: 4, Message: "m3"}
	fresh, baselined := b.Filter(append(diags, extra))
	if len(baselined) != 3 {
		t.Errorf("baselined %d findings, want 3", len(baselined))
	}
	if len(fresh) != 1 || fresh[0] != extra {
		t.Errorf("fresh = %v, want only the new finding", fresh)
	}
	// Line drift must not invalidate the baseline.
	moved := diags[2]
	moved.Line = 99
	fresh, _ = b.Filter([]analysis.Diagnostic{moved})
	if len(fresh) != 0 {
		t.Errorf("line drift invalidated baseline: %v", fresh)
	}
	// Burning down one occurrence shrinks the budget by exactly one.
	trimmed := &analysis.Baseline{}
	for _, e := range b.Findings {
		if e.Analyzer == "maporder" && e.Occurrence == 2 {
			continue
		}
		trimmed.Findings = append(trimmed.Findings, e)
	}
	fresh, baselined = trimmed.Filter(diags)
	if len(fresh) != 1 || len(baselined) != 2 {
		t.Errorf("after removing occurrence 2: fresh=%d baselined=%d, want 1/2", len(fresh), len(baselined))
	}
}

// TestBaselineLegacyCount keeps read compatibility with the aggregated
// format older baselines use: one entry with a count absorbs that many
// identical findings.
func TestBaselineLegacyCount(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	legacy := `{"findings":[{"analyzer":"maporder","file":"a.go","message":"m1","count":2}]}`
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := analysis.ReadBaseline(path)
	if err != nil {
		t.Fatalf("ReadBaseline: %v", err)
	}
	diags := []analysis.Diagnostic{
		{Analyzer: "maporder", File: "a.go", Line: 3, Message: "m1"},
		{Analyzer: "maporder", File: "a.go", Line: 9, Message: "m1"},
		{Analyzer: "maporder", File: "a.go", Line: 12, Message: "m1"},
	}
	fresh, baselined := b.Filter(diags)
	if len(baselined) != 2 || len(fresh) != 1 {
		t.Errorf("legacy count=2 absorbed %d, left %d fresh; want 2/1", len(baselined), len(fresh))
	}
}
