// Package analysis is infoshield-vet: a stdlib-only static-analysis
// suite (go/parser + go/ast + go/types, no golang.org/x/tools) that
// enforces the invariants the pipeline's correctness argument rests on:
//
//   - maporder — byte-identical output must not depend on map iteration
//     order: a range over a map may not append to a slice, write output,
//     feed a hash, or send on a channel unless the result is sorted
//     afterwards or the site is annotated.
//   - looprace — goroutine and par-pool closures must follow the
//     contiguous index-partition discipline of internal/par: no
//     unsynchronized writes to shared variables, no shared-slice writes
//     at non-partitioned indices, loop variables passed as parameters.
//   - floateq — MDL costs accumulate floating-point lg terms (Eq. 2–4),
//     so exact == / != on cost values silently diverges across
//     architectures; sites must use mdl.ApproxEq.
//   - ctxerr — dropped errors and discarded (value, ok) results in
//     non-test files.
//
// The interprocedural analyzers sit on the fact layer (facts.go):
// per-function summaries, memoized bottom-up over the call DAG, plus
// module-wide channel/WaitGroup/mutex and atomic-access indexes:
//
//   - scratchalias — a sub-slice or pointer derived from a pooled
//     scratch or arena chunk must not escape its owner: no return, no
//     store into a global or caller-visible struct, no channel send, no
//     use after Reset/Put.
//   - goleak — every spawned goroutine must signal completion (close,
//     send, or WaitGroup.Done) and that signal must be joined (receive
//     or Wait); WaitGroup.Add inside the spawned goroutine is flagged.
//   - atomicmix — a field accessed via sync/atomic anywhere must never
//     be plainly read or written elsewhere, and values transitively
//     holding sync primitives must not be copied.
//   - chanproto — double close, sends that can race a close on another
//     path without a shared mutex, and close+send channels lacking a
//     comma-ok/range drain (the serve shutdown protocol, DESIGN §7).
//
// Findings are suppressed by a justification comment on the offending
// line or the line above it:
//
//	//vet:ordered <reason>          (maporder only)
//	//vet:allow <analyzer> <reason> (any analyzer)
//
// A reason is required: a bare directive does not suppress.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string `json:"analyzer"`
	// File is the path of the offending file, relative to the module
	// root when possible.
	File string `json:"file"`
	// Line and Col locate the finding (1-based).
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message states the violated invariant and the expected fix.
	Message string `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// key is the baseline identity of a diagnostic: stable across line-number
// drift.
func (d Diagnostic) key() string {
	return d.Analyzer + "|" + d.File + "|" + d.Message
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	// Fset positions every node.
	Fset *token.FileSet
	// Pkg is the package under analysis.
	Pkg *Package

	analyzer *Analyzer
	mod      *Module
	root     string
	diags    *[]Diagnostic
}

// Facts exposes the module's interprocedural fact layer to analyzers.
func (p *Pass) Facts() *Facts {
	return p.mod.Facts()
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := position.Filename
	if p.root != "" {
		if rel, err := filepath.Rel(p.root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = rel
		}
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzer is one named check.
type Analyzer struct {
	// Name is the analyzer's flag and report name.
	Name string
	// Doc is the one-paragraph description shown by -list.
	Doc string
	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// Analyzers returns the full suite in reporting order: the intra-package
// checks first, then the fact-layer analyzers.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, LoopRace, FloatEq, CtxErr, ScratchAlias, GoLeak, AtomicMix, ChanProto}
}

// ByName resolves a comma-separated analyzer list ("" or "all" selects
// the full suite).
func ByName(list string) ([]*Analyzer, error) {
	if list == "" || list == "all" {
		return Analyzers(), nil
	}
	all := Analyzers()
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Run applies the analyzers to every package of the module, filters
// comment-suppressed findings, and returns the kept and suppressed
// diagnostics, each sorted by file, line, and column.
func Run(mod *Module, azs []*Analyzer) (kept, suppressed []Diagnostic) {
	return RunFiltered(mod, azs, nil)
}

// RunFiltered is Run restricted to the packages keep reports true for;
// a nil keep analyzes every package. The whole module is still loaded
// and the fact layer still summarizes every function, so interprocedural
// facts stay exact — only the per-package analyzer passes are skipped.
// This is the engine behind `make vet-fast`: re-analyze only packages
// with files newer than the last clean run.
func RunFiltered(mod *Module, azs []*Analyzer, keep func(*Package) bool) (kept, suppressed []Diagnostic) {
	var all []Diagnostic
	for _, pkg := range mod.Pkgs {
		if keep != nil && !keep(pkg) {
			continue
		}
		all = append(all, runPackage(mod, pkg, azs)...)
	}
	index := suppressionIndex(mod)
	for _, d := range all {
		if index.suppresses(d) {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	sortDiags(kept)
	sortDiags(suppressed)
	return kept, suppressed
}

// RunPackage applies the analyzers to a single package (used by the
// golden-file tests on testdata packages) with the same suppression
// filtering as Run.
func RunPackage(mod *Module, pkg *Package, azs []*Analyzer) (kept, suppressed []Diagnostic) {
	// Register the extra package so fact summaries and the op index see
	// its functions before any analyzer queries them.
	mod.Facts().AddPackage(pkg)
	all := runPackage(mod, pkg, azs)
	index := newSuppressions()
	for _, f := range pkg.Files {
		index.addFile(mod.Fset, f, mod.Root)
	}
	for _, d := range all {
		if index.suppresses(d) {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	sortDiags(kept)
	sortDiags(suppressed)
	return kept, suppressed
}

func runPackage(mod *Module, pkg *Package, azs []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, az := range azs {
		pass := &Pass{
			Fset:     mod.Fset,
			Pkg:      pkg,
			analyzer: az,
			mod:      mod,
			root:     mod.Root,
			diags:    &diags,
		}
		az.Run(pass)
	}
	return diags
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// suppressions indexes //vet: directives by file and line.
type suppressions struct {
	// byFile maps a (possibly root-relative) filename to line → set of
	// suppressed analyzer names.
	byFile map[string]map[int]map[string]bool
}

func newSuppressions() *suppressions {
	return &suppressions{byFile: make(map[string]map[int]map[string]bool)}
}

func suppressionIndex(mod *Module) *suppressions {
	s := newSuppressions()
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			s.addFile(mod.Fset, f, mod.Root)
		}
	}
	return s
}

// addFile records every directive of one file. Directive comments are
// deliberately not exposed by ast.CommentGroup.Text (they look like
// pragmas), so the raw comment list is scanned.
func (s *suppressions) addFile(fset *token.FileSet, f *ast.File, root string) {
	for _, group := range f.Comments {
		for _, c := range group.List {
			text, ok := strings.CutPrefix(c.Text, "//")
			if !ok {
				continue
			}
			var analyzer, rest string
			if r, ok := strings.CutPrefix(text, "vet:ordered"); ok {
				analyzer, rest = MapOrder.Name, r
			} else if r, ok := strings.CutPrefix(text, "vet:allow"); ok {
				fields := strings.Fields(r)
				if len(fields) < 1 {
					continue
				}
				analyzer, rest = fields[0], strings.Join(fields[1:], " ")
			} else {
				continue
			}
			if strings.TrimSpace(rest) == "" {
				// A justification is mandatory; a bare directive is inert.
				continue
			}
			pos := fset.Position(c.Pos())
			file := pos.Filename
			if root != "" {
				if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
					file = rel
				}
			}
			lines := s.byFile[file]
			if lines == nil {
				lines = make(map[int]map[string]bool)
				s.byFile[file] = lines
			}
			if lines[pos.Line] == nil {
				lines[pos.Line] = make(map[string]bool)
			}
			lines[pos.Line][analyzer] = true
		}
	}
}

// suppresses reports whether a directive on the diagnostic's line or the
// line immediately above covers it.
func (s *suppressions) suppresses(d Diagnostic) bool {
	lines, ok := s.byFile[d.File]
	if !ok {
		return false
	}
	for _, line := range []int{d.Line, d.Line - 1} {
		if lines[line][d.Analyzer] {
			return true
		}
	}
	return false
}
