package analysis

import (
	"encoding/json"
	"os"
)

// SARIF 2.1.0 output, the static-analysis interchange format CI code
// scanners ingest. The writer emits the minimal valid subset: one run,
// the driver's rule table (one rule per analyzer), and one result per
// kept finding with a physical location. Baselined and suppressed
// findings are emitted with suppressions attached so scanners show them
// as reviewed rather than open.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifMessage       `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func sarifResultOf(d Diagnostic, level string) sarifResult {
	return sarifResult{
		RuleID:  d.Analyzer,
		Level:   level,
		Message: sarifMessage{Text: d.Message},
		Locations: []sarifLocation{{
			PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: d.File},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			},
		}},
	}
}

// WriteSARIF writes the run to path. Kept findings become warnings;
// baselined ones become accepted external suppressions; suppressed ones
// become in-source suppressions.
func WriteSARIF(path string, azs []*Analyzer, kept, baselined, suppressed []Diagnostic) error {
	rules := make([]sarifRule, 0, len(azs))
	for _, a := range azs {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(kept)+len(baselined)+len(suppressed))
	for _, d := range kept {
		results = append(results, sarifResultOf(d, "warning"))
	}
	for _, d := range baselined {
		r := sarifResultOf(d, "note")
		r.Suppressions = []sarifSuppression{{Kind: "external", Justification: "baselined"}}
		results = append(results, r)
	}
	for _, d := range suppressed {
		r := sarifResultOf(d, "note")
		r.Suppressions = []sarifSuppression{{Kind: "inSource", Justification: "vet:allow directive"}}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "infoshield-vet", Rules: rules}},
			Results: results,
		}},
	}
	data, err := json.MarshalIndent(&log, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
