package analysis

import (
	"go/ast"
	"go/types"
)

// AtomicMix enforces two memory-model invariants around the stats
// counters and the sync-bearing structs the daemon carries:
//
// Mixed access: a variable or field that any code updates through
// sync/atomic (atomic.AddInt64(&c.hits, 1)) is owned by the atomic
// protocol everywhere — a plain read or write elsewhere is a data race
// the race detector only catches when the interleaving fires in CI. The
// module-wide atomic index makes this check interprocedural: the atomic
// site and the plain site can live in different packages. Typed atomics
// (atomic.Int64, as serve's queueHW uses) are method-only and immune by
// construction — preferring them is the suggested fix.
//
// Lock copies: a value whose type transitively holds a sync primitive
// (Mutex, RWMutex, WaitGroup, Once, Cond, or a sync/atomic value type)
// must not be copied — value-receiver methods, plain-value assignments,
// by-value call arguments, by-value returns, and range-value copies are
// flagged. Copying a locked mutex produces a mutex that can never be
// unlocked; copying a WaitGroup forks its counter.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc: "flags plain reads/writes of fields that are accessed via " +
		"sync/atomic elsewhere, and copies of values holding sync " +
		"primitives (mutexes, wait groups, typed atomics)",
	Run: runAtomicMix,
}

func runAtomicMix(pass *Pass) {
	facts := pass.Facts()
	idx := facts.Index()
	for _, file := range pass.Pkg.Files {
		checkMixedAccess(pass, idx, file)
		checkLockCopies(pass, facts, file)
	}
}

// checkMixedAccess reports plain uses of atomically-accessed objects.
// Arguments of sync/atomic calls themselves are skipped wholesale —
// &x.f inside atomic.AddInt64 is the protocol, not a violation.
func checkMixedAccess(pass *Pass, idx *opIndex, file *ast.File) {
	if len(idx.atomics) == 0 {
		return
	}
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := unparen(x.Fun).(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && pkgNamePath(pass, id) == "sync/atomic" {
					return false
				}
			}
		case *ast.SelectorExpr:
			if obj := fieldObj(pass.Pkg, x); obj != nil {
				if sites := idx.atomics[obj]; len(sites) > 0 {
					pass.Reportf(x.Sel.Pos(),
						"plain access to %q, which %s updates via sync/atomic; this races with the atomic sites — use atomic.Load/Store here or switch the field to a typed atomic",
						obj.Name(), siteFunc(sites[0]))
				}
				return false
			}
		case *ast.Ident:
			obj := objectOf(pass, x)
			if obj == nil {
				return true
			}
			if _, ok := obj.(*types.Var); !ok {
				return true
			}
			if v := obj.(*types.Var); v.IsField() {
				return true // covered by the selector case
			}
			if sites := idx.atomics[obj]; len(sites) > 0 {
				pass.Reportf(x.Pos(),
					"plain access to %q, which %s updates via sync/atomic; this races with the atomic sites — use atomic.Load/Store here or switch to a typed atomic",
					obj.Name(), siteFunc(sites[0]))
			}
		}
		return true
	}
	ast.Inspect(file, visit)
}

// fieldObj resolves a selector to the struct field it reads, or nil.
func fieldObj(pkg *Package, sel *ast.SelectorExpr) types.Object {
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		return s.Obj()
	}
	return nil
}

// siteFunc names the function holding an op site, for the message.
func siteFunc(site opSite) string {
	if site.fn != nil {
		return site.fn.Name.Name
	}
	return "another function"
}

// checkLockCopies flags copies of lock-bearing values.
func checkLockCopies(pass *Pass, facts *Facts, file *ast.File) {
	holds := func(e ast.Expr) bool {
		return facts.holdsLock(typeOf(pass, e))
	}
	// isCopyRead: an existing storage location read by value — copying
	// it duplicates the primitive. Literals, calls, and conversions
	// construct fresh values and are fine.
	isCopyRead := func(e ast.Expr) bool {
		switch unparen(e).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
			return true
		}
		return false
	}
	report := func(pos ast.Node, what string, t types.Type) {
		pass.Reportf(pos.Pos(),
			"%s copies a value of type %s, which holds a sync primitive; the copy forks the lock/counter state — use a pointer",
			what, t.String())
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncDecl:
			if x.Recv != nil && len(x.Recv.List) == 1 {
				rt := pass.Pkg.Info.TypeOf(x.Recv.List[0].Type)
				if rt != nil {
					if _, isPtr := rt.Underlying().(*types.Pointer); !isPtr && facts.holdsLock(rt) {
						report(x.Recv.List[0].Type, "value receiver", rt)
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				// `_ = x` is a no-op, not a copy worth flagging.
				if len(x.Lhs) == len(x.Rhs) {
					if id, ok := unparen(x.Lhs[i]).(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				if isCopyRead(rhs) && holds(rhs) {
					report(rhs, "assignment", typeOf(pass, rhs))
				}
			}
		case *ast.CallExpr:
			if pkgIsBuiltin(pass.Pkg, x, "len") || pkgIsBuiltin(pass.Pkg, x, "cap") {
				return true
			}
			for _, arg := range x.Args {
				if isCopyRead(arg) && holds(arg) {
					report(arg, "call argument", typeOf(pass, arg))
				}
			}
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if isCopyRead(res) && holds(res) {
					report(res, "return", typeOf(pass, res))
				}
			}
		case *ast.RangeStmt:
			if x.Value != nil {
				t := typeOf(pass, x.Value)
				if t == nil {
					// The range value ident is a definition, absent from
					// Info.Types — resolve through its object.
					if id, ok := x.Value.(*ast.Ident); ok {
						if obj := objectOf(pass, id); obj != nil {
							t = obj.Type()
						}
					}
				}
				if facts.holdsLock(t) {
					report(x.Value, "range value", t)
				}
			}
		}
		return true
	})
}
