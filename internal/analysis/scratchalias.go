package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ScratchAlias guards the pooled-scratch lifetime invariant the hot
// paths rely on (align.Scratch, poa.Scratch, the stream arenas,
// matchScratch, fineScratch): memory carved out of a pooled scratch or
// arena is owned by the pool and recycled behind the caller's back, so a
// sub-slice or pointer derived from it must not outlive the function
// that borrowed it. The analyzer taints every expression that reads
// buffer memory off a pool-typed value — directly (sc.overlap,
// sc.sorted[:0]) or through helpers whose return-alias facts say they
// hand back input memory (grow(&sc.order, n), arena.copyIn, table) —
// and flags four escapes: returning tainted memory, storing it into a
// global or a caller-visible struct (a pointer receiver or pointer
// parameter that is not itself the pool), sending it on a channel, and
// using it after the pool's Reset or Put.
//
// Functions whose pool arrives as a pool-typed parameter or receiver are
// pool plumbing: no finding fires inside them, and the fact layer
// propagates their aliasing to callers, where ownership is visible.
// Stores through local variables and by-value parameters stay legal —
// the caller sees a copy, and pinning pool-backed views inside
// caller-owned structures (stream.register's arena-backed templates) is
// the documented arena contract.
var ScratchAlias = &Analyzer{
	Name: "scratchalias",
	Doc: "flags pooled scratch/arena memory escaping its owner: returned, " +
		"stored into a global or caller-visible struct, sent on a channel, " +
		"or used after Reset/Put",
	Run: runScratchAlias,
}

func runScratchAlias(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sc := &scratchScan{pass: pass, facts: pass.Facts(), fd: fd}
			sc.run()
		}
	}
}

// scratchScan analyzes one function declaration.
type scratchScan struct {
	pass  *Pass
	facts *Facts
	fd    *ast.FuncDecl

	// inputs maps parameter/receiver objects to true.
	inputs map[types.Object]bool
	// taint maps each tainted local variable to the pool root object its
	// memory came from.
	taint map[types.Object]types.Object
}

func (s *scratchScan) run() {
	s.inputs = make(map[types.Object]bool)
	for _, obj := range inputObjs(s.pass.Pkg, s.fd) {
		if obj != nil {
			s.inputs[obj] = true
		}
	}
	s.flow()
	s.check()
}

// ownedRoot reports whether root is a pool base this function owns.
// Pool-typed parameters and receivers are extern — their owner is the
// caller, and the fact layer carries the aliasing up.
func (s *scratchScan) ownedRoot(root types.Object) bool {
	if root == nil {
		return false
	}
	if s.inputs[root] && isPoolType(root.Type()) {
		return false
	}
	return true
}

// poolRootOf walks down an expression hunting for a pool-typed
// sub-expression and returns its owned base object: &sc.colRank → sc,
// d.tokA → d. Returns nil when no owned pool is reached.
func (s *scratchScan) poolRootOf(e ast.Expr) types.Object {
	for {
		e = unparen(e)
		if isPoolType(pkgTypeOf(s.pass.Pkg, e)) {
			base := e
			if u, ok := base.(*ast.UnaryExpr); ok && u.Op == token.AND {
				base = u.X // rootExpr does not walk through &x
			}
			id := rootExpr(base)
			if id == nil {
				return nil
			}
			root := pkgObjectOf(s.pass.Pkg, id)
			if s.ownedRoot(root) {
				return root
			}
			return nil
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// taintOf returns the pool root object whose memory e may carry, or nil.
func (s *scratchScan) taintOf(e ast.Expr) types.Object {
	switch x := unparen(e).(type) {
	case *ast.Ident:
		if obj := pkgObjectOf(s.pass.Pkg, x); obj != nil {
			return s.taint[obj]
		}
	case *ast.SelectorExpr:
		// Reading buffer memory off a pool value: sc.overlap. The pool
		// object itself (a *Scratch field or pointer) is not tainted —
		// handing the pool around is how pooling works.
		t := pkgTypeOf(s.pass.Pkg, x)
		if aliasable(t) && !isPoolType(t) {
			if root := s.poolRootOf(x.X); root != nil {
				return root
			}
		}
		return s.taintOf(x.X)
	case *ast.IndexExpr:
		return s.taintOf(x.X)
	case *ast.SliceExpr:
		return s.taintOf(x.X)
	case *ast.StarExpr:
		return s.taintOf(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return s.taintOf(x.X)
		}
	case *ast.TypeAssertExpr:
		// pool.Get().([]byte) — the assertion does not copy.
		return s.taintOf(x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			if root := s.taintOf(elt); root != nil {
				return root
			}
		}
	case *ast.CallExpr:
		return s.callTaint(x)
	}
	return nil
}

// callTaint propagates taint through calls: append keeps its first
// argument's memory; sync.Pool.Get hands out pool memory; any callee
// whose return-alias facts include an input slot taints the result when
// the corresponding argument is tainted or pool-rooted.
func (s *scratchScan) callTaint(call *ast.CallExpr) types.Object {
	if pkgIsBuiltin(s.pass.Pkg, call, "append") && len(call.Args) > 0 {
		return s.taintOf(call.Args[0])
	}
	fn, _ := pkgCalleeObject(s.pass.Pkg, call).(*types.Func)
	if fn == nil {
		return nil
	}
	if fn.Name() == "Get" && isSyncType(recvTypeOf(fn), "sync", "Pool") {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
			if id := rootExpr(sel.X); id != nil {
				if root := pkgObjectOf(s.pass.Pkg, id); s.ownedRoot(root) {
					return root
				}
			}
		}
		return nil
	}
	bits := s.facts.RetAliases(fn)
	if bits == 0 {
		return nil
	}
	for i, arg := range callInputExprs(call, fn) {
		if i >= 64 || arg == nil || bits&(1<<uint(i)) == 0 {
			continue
		}
		if root := s.taintOf(arg); root != nil {
			return root
		}
		if root := s.poolRootOf(arg); root != nil {
			return root
		}
	}
	return nil
}

// flow taints local variables to a fixpoint.
func (s *scratchScan) flow() {
	s.taint = make(map[types.Object]types.Object)
	for {
		changed := false
		ast.Inspect(s.fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			mark := func(lhs ast.Expr, root types.Object) {
				if root == nil {
					return
				}
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || id.Name == "_" {
					return
				}
				obj := pkgObjectOf(s.pass.Pkg, id)
				if obj == nil || s.inputs[obj] || isPkgLevel(obj) {
					return
				}
				// Copying a scalar out of a pooled buffer (x := v[0]) is
				// how borrows end; only aliasing types carry taint.
				if !aliasable(obj.Type()) {
					return
				}
				if s.taint[obj] == nil {
					s.taint[obj] = root
					changed = true
				}
			}
			if len(as.Lhs) == len(as.Rhs) {
				for i := range as.Rhs {
					mark(as.Lhs[i], s.taintOf(as.Rhs[i]))
				}
			} else if len(as.Rhs) == 1 {
				root := s.taintOf(as.Rhs[0])
				for _, lhs := range as.Lhs {
					mark(lhs, root)
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

func (s *scratchScan) check() {
	pkg := s.pass.Pkg
	ast.Inspect(s.fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range x.Results {
				if !aliasable(pkgTypeOf(pkg, res)) {
					continue // v[0] is a value copy, not an alias
				}
				if root := s.taintOf(res); root != nil {
					s.pass.Reportf(res.Pos(),
						"returns memory backed by pooled scratch %q; the pool recycles it behind the caller — copy it out (append([]T(nil), v...)) or take the pool as a parameter so the fact layer tracks it",
						root.Name())
				}
			}
		case *ast.SendStmt:
			if !aliasable(pkgTypeOf(pkg, x.Value)) {
				return true
			}
			if root := s.taintOf(x.Value); root != nil {
				s.pass.Reportf(x.Arrow,
					"sends memory backed by pooled scratch %q on a channel; the receiver outlives the borrow window — send a copy",
					root.Name())
			}
		case *ast.AssignStmt:
			rhsRoot := func(i int) types.Object {
				if len(x.Lhs) == len(x.Rhs) {
					return s.taintOf(x.Rhs[i])
				}
				if len(x.Rhs) == 1 {
					return s.taintOf(x.Rhs[0])
				}
				return nil
			}
			for i, lhs := range x.Lhs {
				if !aliasable(pkgTypeOf(pkg, lhs)) {
					continue
				}
				root := rhsRoot(i)
				if root == nil {
					continue
				}
				s.checkStore(lhs, root)
			}
		}
		return true
	})
	s.checkUseAfterReset()
	_ = pkg
}

// checkStore flags a tainted store whose destination outlives the borrow
// window: a package-level variable, or a field of a pointer receiver or
// pointer parameter that is not itself the pool. Locals, by-value
// parameters, and the pool's own fields (sc.sorted = sorted) are legal.
func (s *scratchScan) checkStore(lhs ast.Expr, root types.Object) {
	lhs = unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok {
		// A local write is tracked by the taint flow; a package-level
		// write escapes the borrow window.
		if base := pkgObjectOf(s.pass.Pkg, id); isPkgLevel(base) {
			s.pass.Reportf(lhs.Pos(),
				"stores memory backed by pooled scratch %q into package variable %q; the pool recycles it while the global still points at it — copy first",
				root.Name(), base.Name())
		}
		return
	}
	// Walk the access path: a pool-typed prefix means the store targets
	// the pool's own storage.
	for e := lhs; ; {
		e = unparen(e)
		switch x := e.(type) {
		case *ast.SelectorExpr:
			if isPoolType(pkgTypeOf(s.pass.Pkg, x.X)) {
				return
			}
			e = x.X
			continue
		case *ast.IndexExpr:
			if isPoolType(pkgTypeOf(s.pass.Pkg, x.X)) {
				return
			}
			e = x.X
			continue
		case *ast.StarExpr:
			e = x.X
			continue
		}
		break
	}
	id := rootExpr(lhs)
	if id == nil {
		return
	}
	base := pkgObjectOf(s.pass.Pkg, id)
	if base == nil {
		return
	}
	if isPkgLevel(base) {
		s.pass.Reportf(lhs.Pos(),
			"stores memory backed by pooled scratch %q into package variable %q; the pool recycles it while the global still points at it — copy first",
			root.Name(), base.Name())
		return
	}
	if s.inputs[base] {
		if _, isPtr := base.Type().Underlying().(*types.Pointer); isPtr && !isPoolType(base.Type()) {
			s.pass.Reportf(lhs.Pos(),
				"stores memory backed by pooled scratch %q into caller-visible %q; the caller keeps the struct after the pool recycles the buffer — copy first",
				root.Name(), base.Name())
		}
	}
}

// checkUseAfterReset flags positional use-after-free within one
// statement list: once sc.Reset() or pool.Put(x) runs, memory tainted
// from that pool is dead.
func (s *scratchScan) checkUseAfterReset() {
	stmtLists(s.fd.Body, func(list []ast.Stmt) {
		dead := make(map[types.Object]bool)
		for _, stmt := range list {
			if len(dead) > 0 {
				s.reportDeadUses(stmt, dead)
			}
			if root := s.resetRoot(stmt); root != nil {
				dead[root] = true
			}
		}
	})
}

// resetRoot returns the owned pool root a statement resets, if any:
// `sc.Reset()` or `pool.Put(x)` with sc/pool pool-typed.
func (s *scratchScan) resetRoot(stmt ast.Stmt) types.Object {
	es, ok := unlabel(stmt).(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Reset" && sel.Sel.Name != "Put") {
		return nil
	}
	if !isPoolType(pkgTypeOf(s.pass.Pkg, sel.X)) {
		return nil
	}
	id := rootExpr(sel.X)
	if id == nil {
		return nil
	}
	root := pkgObjectOf(s.pass.Pkg, id)
	if !s.ownedRoot(root) {
		return nil
	}
	return root
}

func (s *scratchScan) reportDeadUses(stmt ast.Stmt, dead map[types.Object]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pkgObjectOf(s.pass.Pkg, id)
		if obj == nil {
			return true
		}
		if root := s.taint[obj]; root != nil && dead[root] {
			s.pass.Reportf(id.Pos(),
				"uses %q after %q was Reset/Put; the pool has reclaimed the backing memory — move the use before the release or copy",
				id.Name, root.Name())
		}
		return true
	})
}

// recvTypeOf returns a method's receiver type, or nil for functions.
func recvTypeOf(fn *types.Func) types.Type {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return sig.Recv().Type()
	}
	return nil
}
