package analysis

import (
	"go/ast"
	"go/types"
)

// ChanProto pins the shutdown protocol DESIGN §7 documents for the serve
// coalescer onto every channel in the module, using the module-wide
// operation index (channels are keyed by field, package variable, or
// local — a field key covers every instance, deliberately coarse):
//
//   - Double close: a channel closed at more than one site panics on the
//     second close. Close exactly once, from the single owner.
//   - Send racing close: a send in one function and a close in another
//     can interleave as send-on-closed (panic) unless both critical
//     sections hold a common mutex — the accept-gate shape: enqueue
//     sends under mu.RLock after checking closed, Close flips closed and
//     closes under mu.Lock. Same-function send+close is sequential and
//     legal.
//   - Missing drain: a channel that is both sent on and closed must be
//     received somewhere with the comma-ok or range form, so the
//     consumer drains buffered requests after close instead of reading
//     zero values or blocking forever.
var ChanProto = &Analyzer{
	Name: "chanproto",
	Doc: "flags double close, sends that can race a close in another " +
		"function without a shared mutex, and closed+sent channels with " +
		"no comma-ok/range drain receive",
	Run: runChanProto,
}

func runChanProto(pass *Pass) {
	idx := pass.Facts().Index()
	for _, key := range idx.sortedKeys(idx.byKey) {
		sites := idx.byKey[key]
		var closes, sends []opSite
		drains := 0
		for _, site := range sites {
			switch site.kind {
			case opClose:
				closes = append(closes, site)
			case opSend:
				sends = append(sends, site)
			case opRecvOk, opRecvRange:
				drains++
			}
		}
		if len(closes) == 0 {
			continue
		}
		name := key.Name()
		if len(closes) > 1 {
			for _, c := range closes {
				if c.pkg != pass.Pkg {
					continue
				}
				pass.Reportf(c.pos,
					"channel %q is closed at %d sites (e.g. also in %s); the second close panics — close exactly once from one owner",
					name, len(closes), otherCloseFunc(closes, c))
			}
		}
		for _, send := range sends {
			if send.pkg != pass.Pkg {
				continue
			}
			for _, c := range closes {
				if c.fn == send.fn {
					continue // sequential in one function
				}
				if idx.commonLock(send.fn, c.fn) {
					continue // mutually ordered by a shared mutex
				}
				pass.Reportf(send.pos,
					"send on %q can race its close in %s (send on closed channel panics); guard both with a shared mutex and a closed flag, or close after all sends",
					name, declName(c.fn))
				break
			}
		}
		// The drain rule applies to fields and package variables — the
		// shutdown-protocol shape. A local producer channel (make, send,
		// close, return) is consumed through the caller's own variable,
		// which this index keys separately.
		if len(sends) > 0 && drains == 0 && isChanField(key) {
			for _, c := range closes {
				if c.pkg != pass.Pkg {
					continue
				}
				pass.Reportf(c.pos,
					"channel %q is closed while senders exist but no receive uses the comma-ok or range form; the consumer cannot drain after close — receive with v, ok := <-ch (DESIGN §7)",
					name)
			}
		}
	}
}

// isChanField reports whether key is a struct field or package-level
// variable.
func isChanField(key types.Object) bool {
	v, ok := key.(*types.Var)
	return ok && (v.IsField() || isPkgLevel(v))
}

// otherCloseFunc names a close site other than cur, for the message.
func otherCloseFunc(closes []opSite, cur opSite) string {
	for _, c := range closes {
		if c.pos != cur.pos {
			return declName(c.fn)
		}
	}
	return declName(cur.fn)
}

func declName(fd *ast.FuncDecl) string {
	if fd == nil {
		return "package scope"
	}
	return fd.Name.Name
}
