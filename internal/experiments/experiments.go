// Package experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the synthetic data substitutes: one exported
// runner per artifact, each printing the same rows/series the paper
// reports. Absolute numbers differ (the substrate is synthetic); the
// shapes — who wins, by roughly what factor, where curves flatten — are
// the reproduction targets. See DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for recorded paper-vs-measured values.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"infoshield/internal/core"
	"infoshield/internal/corpus"
	"infoshield/internal/metrics"
)

// Scale trades fidelity for runtime across every experiment. Full
// approximates the paper's data sizes on a laptop budget; Small keeps CI
// and benchmarks fast.
type Scale int

// Available scales.
const (
	Small Scale = iota
	Medium
	Full
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "full":
		return Full, nil
	}
	return Small, fmt.Errorf("unknown scale %q (want small|medium|full)", s)
}

// pick returns the value for the current scale.
func (s Scale) pick(small, medium, full int) int {
	switch s {
	case Full:
		return full
	case Medium:
		return medium
	default:
		return small
	}
}

func (s Scale) pickF(small, medium, full float64) float64 {
	switch s {
	case Full:
		return full
	case Medium:
		return medium
	default:
		return small
	}
}

// truth extracts the binary ground-truth labels.
func truth(c *corpus.Corpus) []bool {
	out := make([]bool, c.Len())
	for i := range c.Docs {
		out[i] = c.Docs[i].Label
	}
	return out
}

// clusterTruth extracts the ground-truth cluster labels (-1 = none).
func clusterTruth(c *corpus.Corpus) []int {
	out := make([]int, c.Len())
	for i := range c.Docs {
		out[i] = c.Docs[i].ClusterLabel
	}
	return out
}

// row formats one Table-VIII-style metrics row.
func row(w io.Writer, name string, ari float64, hasARI bool, conf metrics.Confusion) {
	ariStr := "  n/a"
	if hasARI {
		ariStr = fmt.Sprintf("%5.1f", ari*100)
	}
	fmt.Fprintf(w, "%-14s %s %6.1f %6.1f %6.1f\n",
		name, ariStr, conf.Precision()*100, conf.Recall()*100, conf.F1()*100)
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
	fmt.Fprintf(w, "%-14s %5s %6s %6s %6s\n", "method", "ARI", "Prec", "Rec", "F1")
}

// runInfoShield evaluates the pipeline on a corpus and returns its result
// plus metrics.
func runInfoShield(c *corpus.Corpus, opt core.Options) (*core.Result, metrics.Confusion, float64) {
	res := core.Run(c.Texts(), opt)
	conf := metrics.NewConfusion(res.Suspicious(), truth(c))
	ari := metrics.ARI(res.DocTemplate, clusterTruth(c))
	return res, conf, ari
}

// sortedClusterSizes returns cluster sizes descending (diagnostics).
func sortedClusterSizes(res *core.Result) []int {
	sizes := make([]int, 0, len(res.Clusters))
	for i := range res.Clusters {
		sizes = append(sizes, res.Clusters[i].NumDocs())
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	return sizes
}
