package experiments

import (
	"fmt"
	"io"

	"infoshield/internal/core"
	"infoshield/internal/datagen"
	"infoshield/internal/viz"
)

// background pads a qualitative corpus with unique-word singleton docs so
// the vocabulary is realistic (see the core tests for why tiny V starves
// MDL of compression headroom).
func background(docs []string, n int) []string {
	out := append([]string(nil), docs...)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf(
			"qbg%da qbg%db qbg%dc qbg%dd qbg%de qbg%df qbg%dg qbg%dh", i, i, i, i, i, i, i, i))
	}
	return out
}

// renderAll prints every discovered template with its member documents in
// the five-color scheme, using the plain (bracket) palette so output is
// readable in logs.
func renderAll(w io.Writer, res *core.Result, palette viz.Palette) {
	tid := 0
	for ci := range res.Clusters {
		for _, tr := range res.Clusters[ci].Templates {
			viz.WriteCluster(w, fmt.Sprintf("T%d", tid), tr.Template, tr.Fit, tr.Docs, res.Vocab, palette)
			tid++
		}
	}
}

// Table9Multilingual reproduces Table IX: a Spanish near-duplicate
// cluster — 22 exact copies of a seismological alert plus one member
// differing in three words — demonstrating language independence and
// that a few divergent words encode as unmatched operations rather than
// slots (cheaper, exactly as the paper observes).
func Table9Multilingual(w io.Writer) {
	fmt.Fprintf(w, "\n== Table IX: Spanish template (language independence) ==\n")
	base := "sismo de magnitud 4.1 richter a 77 km al sureste de puerto escondido oax lat 15.28 lon 96.53 pf 16 km"
	variant := "sismo magnitud 4.1 loc a 77 km al sureste de puerto escondido oax lat 15.28 lon 96.53 pf 16 km"
	docs := make([]string, 0, 23)
	for i := 0; i < 22; i++ {
		docs = append(docs, base)
	}
	docs = append(docs, variant)
	// Micro-clusters must be micro relative to the corpus (the paper's
	// problem statement); a realistic background keeps the cluster's
	// shared phrases above the coarse pass's rarity floor.
	res := core.Run(background(docs, 300), core.Options{})
	renderAll(w, res, viz.PlainPalette)
	fmt.Fprintf(w, "templates: %d (expect 1, covering all 23 tweets)\n", res.NumTemplates())
}

// Table10Slots reproduces Table X: tweets sharing the constant prefix
// "the most popular stories on pr daily this week from" with wholly
// different story descriptions after it — the description region should
// be detected as a slot.
func Table10Slots(w io.Writer) {
	fmt.Fprintf(w, "\n== Table X: slot detection on weekly-stories tweets ==\n")
	suffixes := []string{
		"instagram to mr t and perhaps even your grocers produce httptcokbfwdfts",
		"vine celebrities to snapchat filters and morning routines httptcoqqzz1",
		"new cover photo rules on facebook and a battle of the soci httptcoeuetyugbku",
		"whimsical words to hillarys texts here are this weeks mos httptcoymwflapn",
		"office gossip to thanksgiving recipes and viral maps httptcoabc77",
		"understanding sopa to dating a pr professional here are the httptcoploce",
		"press release myths to podcast tips and email blunders httptcoxyzzy9",
		"branding fails to holiday campaigns and crisis checklists httptcofff31",
	}
	docs := make([]string, 0, len(suffixes))
	for _, s := range suffixes {
		docs = append(docs, "the most popular stories on pr daily this week from "+s)
	}
	res := core.Run(background(docs, 300), core.Options{})
	renderAll(w, res, viz.PlainPalette)
	slots := 0
	for _, c := range res.Clusters {
		for _, tr := range c.Templates {
			slots += tr.Template.NumSlots()
		}
	}
	fmt.Fprintf(w, "templates: %d, slots: %d (expect >= 1 slot over the story text)\n",
		res.NumTemplates(), slots)
}

// Table11HT reproduces Table XI: one synthetic trafficking advertiser's
// ad cluster, its template, and the user-specific content (names, times,
// prices) captured by the slots. The real table is censored for victim
// safety; the synthetic equivalent can be shown in full.
func Table11HT(w io.Writer) {
	fmt.Fprintf(w, "\n== Table XI: HT advertiser template with typed slots ==\n")
	docs := datagen.HTAdCluster(7, 22)
	docs = append(docs, datagen.NormalAds(8, 800)...)
	res := core.Run(docs, core.Options{})
	renderAll(w, res, viz.PlainPalette)
	fmt.Fprintf(w, "templates: %d over %d advertiser ads + %d background ads\n",
		res.NumTemplates(), 22, 800)
}
