package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"infoshield/internal/baselines"
	"infoshield/internal/core"
	"infoshield/internal/embed"
	"infoshield/internal/mdl"
	"infoshield/internal/metrics"
	"infoshield/internal/viz"
)

// Table8HT reproduces the human-trafficking half of Table VIII:
// InfoShield against the three embedding-clustering baselines on the
// Trafficking10k-style and Cluster-Trafficking-style corpora. HTDN is not
// runnable (it needs the real multimodal labeled data); its published
// numbers are quoted in EXPERIMENTS.md for context.
func Table8HT(w io.Writer, scale Scale) {
	embCfg := func(epochs int) embed.Config {
		return embed.Config{Dim: scale.pick(16, 32, 50), Epochs: epochs, Seed: 1}
	}

	// --- Trafficking10k ---
	t10k := datagenT10k(scale)
	tr := truth(t10k)
	header(w, fmt.Sprintf("Table VIII — Trafficking10k (%d ads)", t10k.Len()))
	_, conf, _ := runInfoShield(t10k, core.Options{})
	row(w, "InfoShield", 0, false, conf)
	texts := t10k.Texts()
	row(w, "Word2Vec-cl", 0, false,
		metrics.NewConfusion(baselines.Word2VecCl(texts, embCfg(4)).Pred, tr))
	row(w, "Doc2Vec-cl", 0, false,
		metrics.NewConfusion(baselines.Doc2VecCl(texts, embCfg(40)).Pred, tr))
	row(w, "FastText-cl", 0, false,
		metrics.NewConfusion(baselines.FastTextCl(texts, embCfg(3)).Pred, tr))
	fmt.Fprintf(w, "%-14s %5s  (paper-reported, not rerunnable: needs the real multimodal data)\n", "HTDN", "—")

	// --- Cluster Trafficking ---
	ct := datagenCT(scale)
	tr, ct2 := truth(ct), clusterTruth(ct)
	header(w, fmt.Sprintf("Table VIII — Cluster Trafficking (%d ads)", ct.Len()))
	_, conf, ari := runInfoShield(ct, core.Options{})
	row(w, "InfoShield", ari, true, conf)
	texts = ct.Texts()
	res := baselines.Word2VecCl(texts, embCfg(4))
	row(w, "Word2Vec-cl", metrics.ARI(res.Clusters, ct2), true, metrics.NewConfusion(res.Pred, tr))
	res = baselines.Doc2VecCl(texts, embCfg(40))
	row(w, "Doc2Vec-cl", metrics.ARI(res.Clusters, ct2), true, metrics.NewConfusion(res.Pred, tr))
	res = baselines.FastTextCl(texts, embCfg(3))
	row(w, "FastText-cl", metrics.ARI(res.Clusters, ct2), true, metrics.NewConfusion(res.Pred, tr))
	res = baselines.TemplateMatching{}.Run(texts)
	row(w, "TemplateMatch", metrics.ARI(res.Clusters, ct2), true, metrics.NewConfusion(res.Pred, tr))
}

// fig3Point is one template's position in Figure 3's space.
type fig3Point struct {
	docs   int
	rl, lb float64
	kind   string
}

// fig3Points runs the pipeline on the Cluster-Trafficking corpus and
// returns one point per template: the template is the micro-cluster unit
// that carries the spam/HT/benign distinction (a coarse component can
// legitimately span several campaigns that share ad boilerplate; Fine
// separates them into templates).
func fig3Points(scale Scale) (pts []fig3Point, vocabSize int) {
	ct := datagenCT(scale)
	res := core.Run(ct.Texts(), core.Options{})
	V := res.Vocab.Size()
	for i := range res.Clusters {
		for _, tr := range res.Clusters[i].Templates {
			counts := map[string]int{}
			for _, d := range tr.Docs {
				counts[ct.Docs[d].Account]++
			}
			kind, best := "normal", 0
			for k, c := range counts {
				if c > best {
					kind, best = k, c
				}
			}
			pts = append(pts, fig3Point{
				docs: len(tr.Docs),
				rl:   mdl.RelativeLength(tr.CostAfter, tr.CostBefore),
				lb:   mdl.LowerBound(1, len(tr.Docs), V),
				kind: kind,
			})
		}
	}
	return pts, V
}

// Fig3RelativeLength reproduces Figure 3: every discovered micro-cluster
// plotted as (relative length, #documents), against the Lemma-1 lower
// bound, with spam and HT clusters marked. The target shapes: all points
// at or above the bound; spam clusters hugging the bound at large n; HT
// clusters between; benign clusters small and nearer 1.
func Fig3RelativeLength(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "\n== Figure 3: relative length vs cluster size ==\n")
	pts, _ := fig3Points(scale)
	violations := 0
	for _, p := range pts {
		if p.rl < p.lb-1e-9 {
			violations++
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].docs > pts[j].docs })
	fmt.Fprintf(w, "%8s %5s %10s %10s %8s\n", "docs", "tmpl", "rel.len", "lower.bd", "kind")
	limit := 25
	for i, p := range pts {
		if i >= limit {
			fmt.Fprintf(w, "... (%d more clusters)\n", len(pts)-limit)
			break
		}
		fmt.Fprintf(w, "%8d %5d %10.4f %10.4f %8s\n", p.docs, 1, p.rl, p.lb, p.kind)
	}
	fmt.Fprintf(w, "lower-bound violations: %d of %d clusters\n", violations, len(pts))
	// Separation summary: geometric-mean relative length per kind.
	stats := map[string][]float64{}
	sizes := map[string][]float64{}
	for _, p := range pts {
		stats[p.kind] = append(stats[p.kind], p.rl)
		sizes[p.kind] = append(sizes[p.kind], float64(p.docs))
	}
	fmt.Fprintf(w, "%8s %8s %12s %12s\n", "kind", "clusters", "gm rel.len", "gm size")
	for _, kind := range []string{"spam", "ht", "normal"} {
		if len(stats[kind]) == 0 {
			continue
		}
		fmt.Fprintf(w, "%8s %8d %12.4f %12.1f\n",
			kind, len(stats[kind]), geoMean(stats[kind]), geoMean(sizes[kind]))
	}
}

// Fig3SVG renders Figure 3 as an actual scatter figure: relative length
// (x, log) vs cluster size (y, log), spam red, HT blue, benign gray, with
// the t=1 Lemma-1 lower-bound curve.
func Fig3SVG(w io.Writer, scale Scale) error {
	pts, V := fig3Points(scale)
	colors := map[string]string{"spam": "#d62728", "ht": "#1f77b4", "normal": "#999999"}
	names := map[string]string{"spam": "spam", "ht": "HT", "normal": "benign"}
	var series []viz.Series
	for _, kind := range []string{"normal", "spam", "ht"} {
		s := viz.Series{Name: names[kind], Color: colors[kind]}
		for _, p := range pts {
			if p.kind == kind {
				s.X = append(s.X, p.rl)
				s.Y = append(s.Y, float64(p.docs))
			}
		}
		if len(s.X) > 0 {
			series = append(series, s)
		}
	}
	// Lower bound for t=1: rl = 1/n + 1/lgV  =>  parametrize by n.
	bound := viz.Curve{Name: "lower bound (t=1)", Color: "#000000"}
	maxN := 2
	for _, p := range pts {
		if p.docs > maxN {
			maxN = p.docs
		}
	}
	for n := 2; n <= maxN*2; n = n*3/2 + 1 {
		bound.X = append(bound.X, mdl.LowerBound(1, n, V))
		bound.Y = append(bound.Y, float64(n))
	}
	return viz.ScatterSVG(w, "Figure 3: clusters in (relative length, size) space",
		"relative length", "documents in cluster", true, true,
		series, []viz.Curve{bound})
}

func geoMean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1e-12
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}
