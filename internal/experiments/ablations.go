package experiments

import (
	"fmt"
	"io"
	"time"

	"infoshield/internal/core"
	"infoshield/internal/metrics"
	"infoshield/internal/poa"
	"infoshield/internal/search"
	"infoshield/internal/template"
)

// AblationSlots measures what slot detection buys: total coding cost and
// detection metrics with and without slots (DESIGN.md §5).
func AblationSlots(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "\n== Ablation: slot detection on/off ==\n")
	c := datagenCT(scale)
	tr := truth(c)
	fmt.Fprintf(w, "%-10s %12s %12s %8s %8s %8s\n",
		"slots", "cost.after", "rel.len(gm)", "tmpls", "Prec", "Rec")
	for _, disable := range []bool{false, true} {
		res := core.Run(c.Texts(), core.Options{DisableSlots: disable})
		total := 0.0
		var rls []float64
		for i := range res.Clusters {
			total += res.Clusters[i].CostAfter
			rls = append(rls, res.Clusters[i].RelativeLength())
		}
		conf := metrics.NewConfusion(res.Suspicious(), tr)
		name := "on"
		if disable {
			name = "off"
		}
		gm := 1.0
		if len(rls) > 0 {
			gm = geoMean(rls)
		}
		fmt.Fprintf(w, "%-10s %12.0f %12.4f %8d %8.3f %8.3f\n",
			name, total, gm, res.NumTemplates(), conf.Precision(), conf.Recall())
	}
}

// AblationMSA compares Partial Order Alignment against the cheap star
// MSA — the paper claims Fine is MSA-agnostic; this quantifies the cost
// and quality gap.
func AblationMSA(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "\n== Ablation: POA vs star MSA ==\n")
	c := datagenCT(scale)
	tr := truth(c)
	fmt.Fprintf(w, "%-6s %10s %12s %8s %8s %8s\n", "msa", "seconds", "cost.after", "tmpls", "Prec", "Rec")
	for _, star := range []bool{false, true} {
		start := time.Now()
		res := core.Run(c.Texts(), core.Options{UseStarMSA: star})
		secs := time.Since(start).Seconds()
		total := 0.0
		for i := range res.Clusters {
			total += res.Clusters[i].CostAfter
		}
		conf := metrics.NewConfusion(res.Suspicious(), tr)
		name := "poa"
		if star {
			name = "star"
		}
		fmt.Fprintf(w, "%-6s %10.2f %12.0f %8d %8.3f %8.3f\n",
			name, secs, total, res.NumTemplates(), conf.Precision(), conf.Recall())
	}
}

// AblationConsensusSearch compares the dichotomous threshold search
// (Algorithm 2) against exhaustive search — the oracle — on real cluster
// alignments: how often it finds the optimum and the cost gap when not.
func AblationConsensusSearch(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "\n== Ablation: dichotomous vs exhaustive consensus search ==\n")
	c := datagenCT(scale)
	res := core.Run(c.Texts(), core.Options{})
	V := res.Vocab.Size()
	total, optimal := 0, 0
	gap := 0.0
	evalsDich, evalsExh := 0, 0
	for i := range res.Clusters {
		for _, trr := range res.Clusters[i].Templates {
			if len(trr.Docs) < 2 {
				continue
			}
			seqs := make([][]int, 0, len(trr.Docs))
			for _, d := range trr.Docs {
				seqs = append(seqs, res.Tokens[d])
			}
			m := poa.Build(seqs)
			n := m.NumRows()
			cost := func(counter *int) func(int) float64 {
				return func(h int) float64 {
					*counter++
					return template.New(m, h).TotalCost(1, V)
				}
			}
			hd := search.Dichotomous(0, n-1, cost(&evalsDich))
			he := search.Exhaustive(0, n-1, cost(&evalsExh))
			cd := template.New(m, hd).TotalCost(1, V)
			ce := template.New(m, he).TotalCost(1, V)
			total++
			if cd <= ce+1e-9 {
				optimal++
			} else {
				gap += (cd - ce) / ce
			}
		}
	}
	fmt.Fprintf(w, "alignments: %d; dichotomous optimal: %d (%.1f%%)\n",
		total, optimal, 100*float64(optimal)/float64(max(total, 1)))
	if total > optimal {
		fmt.Fprintf(w, "mean relative cost gap when suboptimal: %.4f%%\n",
			100*gap/float64(total-optimal))
	}
	fmt.Fprintf(w, "cost evaluations: dichotomous %d vs exhaustive %d (%.1fx fewer)\n",
		evalsDich, evalsExh, float64(evalsExh)/float64(max(evalsDich, 1)))
}

// AblationCoarseMethod compares the default tf-idf phrase-graph coarse
// pass against the MinHash-LSH alternative — Advantage 2 in the paper:
// the pre-clustering algorithm is replaceable.
func AblationCoarseMethod(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "\n== Ablation: coarse method (tf-idf graph vs MinHash-LSH) ==\n")
	c := twitterTestSet(707, scale.pick(50, 120, 300))
	tr := truth(c)
	fmt.Fprintf(w, "%-8s %10s %8s %8s %8s %8s\n", "coarse", "seconds", "Prec", "Rec", "F1", "tmpls")
	for _, useLSH := range []bool{false, true} {
		start := time.Now()
		res := core.Run(c.Texts(), core.Options{UseLSHCoarse: useLSH})
		secs := time.Since(start).Seconds()
		conf := metrics.NewConfusion(res.Suspicious(), tr)
		name := "tfidf"
		if useLSH {
			name = "lsh"
		}
		fmt.Fprintf(w, "%-8s %10.2f %8.3f %8.3f %8.3f %8d\n",
			name, secs, conf.Precision(), conf.Recall(), conf.F1(), res.NumTemplates())
	}
}

// AblationCoarseStrictness measures the recall cost of requiring more
// shared phrases per coarse edge (the permissiveness the paper argues
// for).
func AblationCoarseStrictness(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "\n== Ablation: coarse edge strictness ==\n")
	c := twitterTestSet(404, scale.pick(50, 120, 300))
	tr := truth(c)
	fmt.Fprintf(w, "%12s %8s %8s %8s\n", "min.shared", "Prec", "Rec", "F1")
	for _, minShared := range []int{1, 2, 3, 5} {
		res := core.Run(c.Texts(), core.Options{MinSharedPhrases: minShared})
		conf := metrics.NewConfusion(res.Suspicious(), tr)
		fmt.Fprintf(w, "%12d %8.3f %8.3f %8.3f\n",
			minShared, conf.Precision(), conf.Recall(), conf.F1())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
