package experiments

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestLanguageBreakdown(t *testing.T) {
	var buf bytes.Buffer
	LanguageBreakdown(&buf, Small)
	out := buf.String()
	// Every language present, and the hardest case (unspaced Japanese)
	// still performs well: F1 >= 0.85.
	for _, lang := range []string{"english", "spanish", "italian", "japanese"} {
		if !strings.Contains(out, lang) {
			t.Errorf("missing %s row:\n%s", lang, out)
		}
	}
	re := regexp.MustCompile(`japanese\s+\d+\s+[0-9.]+\s+[0-9.]+\s+([0-9.]+)`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no japanese F1:\n%s", out)
	}
	if f1, _ := strconv.ParseFloat(m[1], 64); f1 < 0.85 {
		t.Errorf("japanese F1 = %v, want >= 0.85:\n%s", f1, out)
	}
}

func TestAblationTopFraction(t *testing.T) {
	var buf bytes.Buffer
	AblationTopFraction(&buf, Small)
	out := buf.String()
	if !strings.Contains(out, "top-phrase fraction") {
		t.Fatalf("missing header:\n%s", out)
	}
	// Recall at the tiny fraction must not exceed recall at the default.
	re := regexp.MustCompile(`(?m)^\s+([0-9.]+)\s+[0-9.]+\s+([0-9.]+)`)
	rows := re.FindAllStringSubmatch(out, -1)
	if len(rows) < 4 {
		t.Fatalf("too few rows:\n%s", out)
	}
	recall := map[string]float64{}
	for _, r := range rows {
		v, _ := strconv.ParseFloat(r[2], 64)
		recall[r[1]] = v
	}
	if recall["0.02"] > recall["0.10"]+0.02 {
		t.Errorf("tiny fraction should not beat the default: %v", recall)
	}
}

func TestFig3SVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3SVG(&buf, Small); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"<svg", "</svg>", "circle", "polyline", "lower bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<circle") < 50 {
		t.Errorf("too few points: %d", strings.Count(out, "<circle"))
	}
}

func TestClusteringComparison(t *testing.T) {
	var buf bytes.Buffer
	ClusteringComparison(&buf, Small)
	out := buf.String()
	for _, m := range []string{"InfoShield", "HDBSCAN", "DBSCAN", "OPTICS", "k-means", "G-means"} {
		if !strings.Contains(out, m) {
			t.Errorf("missing method %q:\n%s", m, out)
		}
	}
	// InfoShield must lead every classical clusterer on ARI.
	ari := func(method string) float64 {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, method) {
				f := strings.Fields(line)
				if len(f) >= 2 {
					v, err := strconv.ParseFloat(f[1], 64)
					if err == nil {
						return v
					}
				}
			}
		}
		return -1
	}
	is := ari("InfoShield")
	for _, m := range []string{"HDBSCAN", "DBSCAN", "OPTICS", "k-means", "G-means"} {
		if b := ari(m); b >= is {
			t.Errorf("%s ARI %v >= InfoShield %v:\n%s", m, b, is, out)
		}
	}
}
