package experiments

import (
	"infoshield/internal/corpus"
	"infoshield/internal/datagen"
)

// datagenT10k builds the Trafficking10k-style corpus at the experiment
// scale (the full scale matches the real dataset's 10,265 ads).
func datagenT10k(scale Scale) *corpus.Corpus {
	return datagen.Trafficking10k(datagen.Trafficking10kConfig{
		Seed: 42,
		Size: scale.pick(1200, 4000, 10265),
	})
}

// datagenCT builds the Cluster-Trafficking-style corpus. Full scale 0.25
// keeps the paper's proportions at a quarter of its 157k ads — the
// largest size the O(n²) embedding baselines handle comfortably.
func datagenCT(scale Scale) *corpus.Corpus {
	return datagen.ClusterTrafficking(datagen.ClusterTraffickingConfig{
		Seed:  42,
		Scale: scale.pickF(0.008, 0.05, 0.25),
	})
}
