package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"infoshield/internal/baselines"
	"infoshield/internal/core"
	"infoshield/internal/corpus"
	"infoshield/internal/datagen"
	"infoshield/internal/metrics"
)

// twitterTestSet builds one Cresci-style 50/50 test set.
func twitterTestSet(seed int64, accountsPerSide int) *corpus.Corpus {
	return datagen.Twitter(datagen.TwitterConfig{
		Seed:            seed,
		GenuineAccounts: accountsPerSide,
		BotAccounts:     accountsPerSide,
	})
}

// Fig1Precision reproduces Figure 1 (left): precision as a function of
// the percentage of non-singleton clusters reported, clusters ordered by
// compression quality (best relative length first). The ideal curve stays
// at 1.0; InfoShield should stay near it until the weakest clusters are
// included.
func Fig1Precision(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "\n== Figure 1 (left): precision vs %% of non-singleton clusters ==\n")
	accounts := scale.pick(60, 150, 400)
	for set, seed := range []int64{101, 202} {
		c := twitterTestSet(seed, accounts)
		res := core.Run(c.Texts(), core.Options{})
		tr := truth(c)
		// The paper's set #1 has a "corrected" curve: its ground truth
		// contained mislabeled accounts the authors fixed by inspection.
		// We reproduce the phenomenon by flipping 2% of labels ("noisy")
		// and scoring against both; "corrected" is the clean truth.
		noisy := append([]bool(nil), tr...)
		if set == 0 {
			flip := rand.New(rand.NewSource(seed))
			for i := range noisy {
				if flip.Float64() < 0.02 {
					noisy[i] = !noisy[i]
				}
			}
		}
		// Order template clusters by relative length ascending.
		type scored struct {
			docs []int
			rl   float64
		}
		var clusters []scored
		for i := range res.Clusters {
			cl := &res.Clusters[i]
			clusters = append(clusters, scored{cl.Docs, cl.RelativeLength()})
		}
		sort.Slice(clusters, func(i, j int) bool { return clusters[i].rl < clusters[j].rl })
		fmt.Fprintf(w, "Twitter test set #%d (%d tweets, %d clusters)\n", set+1, c.Len(), len(clusters))
		precisionAt := func(k int, labels []bool) float64 {
			tp, fp := 0, 0
			for _, cl := range clusters[:k] {
				for _, d := range cl.docs {
					if labels[d] {
						tp++
					} else {
						fp++
					}
				}
			}
			if tp+fp == 0 {
				return 1
			}
			return float64(tp) / float64(tp+fp)
		}
		if set == 0 {
			fmt.Fprintf(w, "%8s %10s %12s %10s\n", "pct", "precision", "corrected", "ideal")
		} else {
			fmt.Fprintf(w, "%8s %10s %10s\n", "pct", "precision", "ideal")
		}
		for _, pct := range []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100} {
			k := pct * len(clusters) / 100
			if set == 0 {
				fmt.Fprintf(w, "%7d%% %10.3f %12.3f %10.3f\n",
					pct, precisionAt(k, noisy), precisionAt(k, tr), 1.0)
			} else {
				fmt.Fprintf(w, "%7d%% %10.3f %10.3f\n", pct, precisionAt(k, tr), 1.0)
			}
		}
	}
}

// Fig2Scalability reproduces Figure 2: wall-clock runtime versus number
// of tweets, with a linear reference line fitted through the origin. The
// paper reports ~3x/400 seconds on its laptop; the reproduction target is
// the *linearity*, not the constant.
func Fig2Scalability(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "\n== Figure 2: runtime vs number of tweets ==\n")
	maxSize := scale.pick(4000, 16000, 64000)
	trials := scale.pick(1, 2, 3)
	// One big pool, sampled down per size — the paper's protocol.
	accounts := maxSize / 45 // ~22 tweets/account average, 2 sides
	pool := datagen.Twitter(datagen.TwitterConfig{
		Seed:            77,
		GenuineAccounts: accounts,
		BotAccounts:     accounts,
	})
	fmt.Fprintf(w, "%10s %12s %14s %10s %10s\n",
		"tweets", "seconds", "sec/1k tweets", "coarse.s", "fine.s")
	var lastPerK float64
	for size := maxSize / 8; size <= maxSize; size *= 2 {
		var total, coarse, fine time.Duration
		for trial := 0; trial < trials; trial++ {
			sample := datagen.SampleTweets(pool, size, int64(trial+1))
			start := time.Now()
			res := core.Run(sample.Texts(), core.Options{})
			total += time.Since(start)
			coarse += res.CoarseDuration
			fine += res.FineDuration
		}
		secs := total.Seconds() / float64(trials)
		lastPerK = secs / float64(size) * 1000
		fmt.Fprintf(w, "%10d %12.2f %14.3f %10.2f %10.2f\n",
			size, secs, lastPerK,
			coarse.Seconds()/float64(trials), fine.Seconds()/float64(trials))
	}
	fmt.Fprintf(w, "linear reference: f(n) = %.3f * n/1000 seconds\n", lastPerK)
}

// Table8Twitter reproduces the Twitter half of Table VIII: InfoShield
// (unsupervised, text only) against the Cresci-style DNA detector
// (unsupervised, behavioral) and BotOrNot-/Yang-/Ahmed-style supervised
// metadata classifiers, on two 50/50 test sets.
func Table8Twitter(w io.Writer, scale Scale) {
	accounts := scale.pick(60, 150, 400)
	train := twitterTestSet(11, accounts) // supervised methods get their own labeled corpus
	detectors := []*baselines.SupervisedDetector{
		baselines.TrainSupervised(train, baselines.BotOrNotFeatures, 1),
		baselines.TrainSupervised(train, baselines.YangFeatures, 1),
		baselines.TrainSupervised(train, baselines.AhmedFeatures, 1),
	}
	for set, seed := range []int64{101, 202} {
		c := twitterTestSet(seed, accounts)
		tr, ct := truth(c), clusterTruth(c)
		header(w, fmt.Sprintf("Table VIII — Twitter test set #%d (%d tweets)", set+1, c.Len()))
		_, conf, ari := runInfoShield(c, core.Options{})
		row(w, "InfoShield", ari, true, conf)
		dna := baselines.CresciDNA{}.Run(c)
		row(w, "Cresci-DNA", metrics.ARI(dna.Clusters, ct), true, metrics.NewConfusion(dna.Pred, tr))
		for _, det := range detectors {
			res := det.Run(c)
			row(w, det.Features.Name, 0, false, metrics.NewConfusion(res.Pred, tr))
		}
	}
}

// Fig4Ngram reproduces Figure 4: InfoShield precision as the coarse
// pass's maximum n-gram length sweeps 1..8. The paper's finding —
// precision stabilizes by n ≈ 4-5 — is the target shape.
func Fig4Ngram(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "\n== Figure 4: precision vs max n-gram length ==\n")
	accounts := scale.pick(50, 120, 350)
	c := twitterTestSet(303, accounts)
	tr := truth(c)
	fmt.Fprintf(w, "corpus: %d tweets\n", c.Len())
	fmt.Fprintf(w, "%6s %10s %8s\n", "maxN", "precision", "recall")
	for n := 1; n <= 8; n++ {
		res := core.Run(c.Texts(), core.Options{MaxNgram: n})
		conf := metrics.NewConfusion(res.Suspicious(), tr)
		fmt.Fprintf(w, "%6d %10.3f %8.3f\n", n, conf.Precision(), conf.Recall())
	}
}
