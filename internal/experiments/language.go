package experiments

import (
	"fmt"
	"io"

	"infoshield/internal/core"
	"infoshield/internal/datagen"
	"infoshield/internal/metrics"
	"infoshield/internal/tfidf"
	"infoshield/internal/tokenize"
)

// LanguageBreakdown quantifies the paper's Advantage 1 (generality): the
// identical pipeline, with no language-specific configuration, is scored
// separately on each language's tweets in a single mixed corpus —
// including unspaced Japanese, the hardest case for token methods.
func LanguageBreakdown(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "\n== Language independence: per-language metrics, one mixed run ==\n")
	accounts := scale.pick(60, 150, 400)
	langs := []datagen.Language{datagen.English, datagen.Spanish, datagen.Italian, datagen.Japanese}
	c := datagen.Twitter(datagen.TwitterConfig{
		Seed:            505,
		GenuineAccounts: accounts,
		BotAccounts:     accounts,
		Languages:       langs,
	})
	res := core.Run(c.Texts(), core.Options{})
	pred := res.Suspicious()

	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s\n", "language", "tweets", "Prec", "Rec", "F1")
	for _, lang := range []string{"english", "spanish", "italian", "japanese"} {
		var p, t []bool
		for i := range c.Docs {
			if c.Docs[i].Lang != lang {
				continue
			}
			p = append(p, pred[i])
			t = append(t, c.Docs[i].Label)
		}
		if len(p) == 0 {
			continue
		}
		conf := metrics.NewConfusion(p, t)
		fmt.Fprintf(w, "%-10s %8d %8.3f %8.3f %8.3f\n",
			lang, len(p), conf.Precision(), conf.Recall(), conf.F1())
	}
}

// AblationTopFraction sweeps the coarse pass's top-phrase fraction (the
// paper fixes 10%): too small starves the graph of edges (recall drops);
// too large admits weaker phrases (precision pressure, more runtime).
func AblationTopFraction(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "\n== Ablation: coarse top-phrase fraction ==\n")
	c := twitterTestSet(606, scale.pick(50, 120, 300))
	tr := truth(c)
	fmt.Fprintf(w, "%10s %8s %8s %8s %10s\n", "fraction", "Prec", "Rec", "F1", "edges/doc")
	var tk tokenize.Tokenizer
	words := make([][]string, c.Len())
	for i := range c.Docs {
		words[i] = tk.Tokens(c.Docs[i].Text)
	}
	for _, frac := range []float64{0.02, 0.05, 0.10, 0.20, 0.40} {
		res := core.Run(c.Texts(), core.Options{TopFraction: frac})
		conf := metrics.NewConfusion(res.Suspicious(), tr)
		ex := &tfidf.Extractor{TopFraction: frac}
		edges := 0
		for _, ps := range ex.TopPhrases(words) {
			edges += len(ps)
		}
		fmt.Fprintf(w, "%10.2f %8.3f %8.3f %8.3f %10.2f\n",
			frac, conf.Precision(), conf.Recall(), conf.F1(),
			float64(edges)/float64(c.Len()))
	}
}
