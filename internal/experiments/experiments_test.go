package experiments

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestFig1PrecisionOutput(t *testing.T) {
	var buf bytes.Buffer
	Fig1Precision(&buf, Small)
	out := buf.String()
	if !strings.Contains(out, "Twitter test set #1") || !strings.Contains(out, "Twitter test set #2") {
		t.Fatalf("missing test sets:\n%s", out)
	}
	// Early-percentile precision must be high (the Fig 1 shape): parse
	// the 10% row of set #1.
	re := regexp.MustCompile(`(?m)^\s+10%\s+([0-9.]+)`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no 10%% row:\n%s", out)
	}
	p, _ := strconv.ParseFloat(m[1], 64)
	if p < 0.9 {
		t.Errorf("precision at 10%% of clusters = %v, want >= 0.9", p)
	}
}

func TestFig2ScalabilityLinear(t *testing.T) {
	var buf bytes.Buffer
	Fig2Scalability(&buf, Small)
	out := buf.String()
	// Parse per-1k-seconds column; quasi-linearity means it should not
	// blow up across the size sweep (allow 4x drift — small sizes are
	// noisy).
	re := regexp.MustCompile(`(?m)^\s+(\d+)\s+([0-9.]+)\s+([0-9.]+)`)
	rows := re.FindAllStringSubmatch(out, -1)
	if len(rows) < 3 {
		t.Fatalf("too few size rows:\n%s", out)
	}
	first, _ := strconv.ParseFloat(rows[0][3], 64)
	last, _ := strconv.ParseFloat(rows[len(rows)-1][3], 64)
	if last > first*4+0.05 {
		t.Errorf("per-tweet time grew %vx (%v -> %v); not quasi-linear:\n%s",
			last/first, first, last, out)
	}
}

func TestTable8TwitterShape(t *testing.T) {
	var buf bytes.Buffer
	Table8Twitter(&buf, Small)
	out := buf.String()
	for _, want := range []string{"InfoShield", "Cresci-DNA", "botornot", "yang", "ahmed"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing row %q:\n%s", want, out)
		}
	}
	// InfoShield F1 must be strong (paper: >= 90 on both sets).
	f1s := parseRows(t, out, "InfoShield")
	for _, f1 := range f1s {
		if f1 < 85 {
			t.Errorf("InfoShield F1 = %v, want >= 85:\n%s", f1, out)
		}
	}
}

// parseRows extracts the F1 column (last) of every row for a method.
func parseRows(t *testing.T, out, method string) []float64 {
	t.Helper()
	var f1s []float64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, method) {
			continue
		}
		fields := strings.Fields(line)
		f1, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		f1s = append(f1s, f1)
	}
	if len(f1s) == 0 {
		t.Fatalf("no %s rows in:\n%s", method, out)
	}
	return f1s
}

func TestTable8HTShape(t *testing.T) {
	var buf bytes.Buffer
	Table8HT(&buf, Small)
	out := buf.String()
	for _, want := range []string{"InfoShield", "Word2Vec-cl", "Doc2Vec-cl", "FastText-cl", "HTDN"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing row %q:\n%s", want, out)
		}
	}
	// Headline claim: InfoShield has the highest precision on HT data.
	prec := func(method, section string) float64 {
		idx := strings.Index(out, section)
		lines := strings.Split(out[idx:], "\n")
		for _, l := range lines {
			if strings.HasPrefix(l, method) {
				f := strings.Fields(l)
				// name ARI Prec Rec F1 -> Prec is index 2
				v, _ := strconv.ParseFloat(f[2], 64)
				return v
			}
		}
		return -1
	}
	for _, section := range []string{"Trafficking10k", "Cluster Trafficking"} {
		is := prec("InfoShield", section)
		for _, m := range []string{"Word2Vec-cl", "Doc2Vec-cl", "FastText-cl"} {
			if b := prec(m, section); b > is {
				t.Errorf("%s: %s precision %v beats InfoShield %v\n%s", section, m, b, is, out)
			}
		}
	}
}

func TestFig4NgramStabilizes(t *testing.T) {
	var buf bytes.Buffer
	Fig4Ngram(&buf, Small)
	out := buf.String()
	re := regexp.MustCompile(`(?m)^\s+(\d)\s+([0-9.]+)`)
	rows := re.FindAllStringSubmatch(out, -1)
	if len(rows) < 8 {
		t.Fatalf("expected 8 n rows:\n%s", out)
	}
	get := func(i int) float64 {
		v, _ := strconv.ParseFloat(rows[i-1][2], 64)
		return v
	}
	// Paper's Fig 4 shape: precision stabilizes after n=4; n=5 vs n=8
	// should be close.
	if diff := get(8) - get(5); diff > 0.1 || diff < -0.1 {
		t.Errorf("precision not stable after n=5: n5=%v n8=%v", get(5), get(8))
	}
}

func TestTable9Multilingual(t *testing.T) {
	var buf bytes.Buffer
	Table9Multilingual(&buf)
	out := buf.String()
	if !strings.Contains(out, "sismo") {
		t.Errorf("missing Spanish template:\n%s", out)
	}
	if !strings.Contains(out, "templates: 1") {
		t.Errorf("expected exactly one template:\n%s", out)
	}
	// All 23 tweets — including the 3-word variant — share the template;
	// the variant's divergence shows as unmatched ops, not slots.
	if !strings.Contains(out, "#22") {
		t.Errorf("variant tweet not encoded by the template:\n%s", out)
	}
}

func TestTable10Slots(t *testing.T) {
	var buf bytes.Buffer
	Table10Slots(&buf)
	out := buf.String()
	if !strings.Contains(out, "most popular stories") {
		t.Errorf("missing constant prefix:\n%s", out)
	}
	// At least one slot detected over the varying story text.
	re := regexp.MustCompile(`slots: (\d+)`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no slot count:\n%s", out)
	}
	if n, _ := strconv.Atoi(m[1]); n < 1 {
		t.Errorf("slots = %d, want >= 1:\n%s", n, out)
	}
}

func TestTable11HT(t *testing.T) {
	var buf bytes.Buffer
	Table11HT(&buf)
	out := buf.String()
	if !strings.Contains(out, "templates: 1") && !strings.Contains(out, "templates: 2") {
		t.Errorf("advertiser cluster not summarized:\n%s", out)
	}
}

func TestFig3RelativeLength(t *testing.T) {
	var buf bytes.Buffer
	Fig3RelativeLength(&buf, Small)
	out := buf.String()
	if !strings.Contains(out, "lower-bound violations: 0") {
		t.Errorf("Lemma 1 violated:\n%s", out)
	}
	for _, kind := range []string{"spam", "ht"} {
		if !strings.Contains(out, kind) {
			t.Errorf("missing %s clusters:\n%s", kind, out)
		}
	}
}

func TestAblations(t *testing.T) {
	var buf bytes.Buffer
	AblationSlots(&buf, Small)
	AblationMSA(&buf, Small)
	AblationConsensusSearch(&buf, Small)
	AblationCoarseStrictness(&buf, Small)
	out := buf.String()
	for _, want := range []string{"slot detection", "POA vs star", "dichotomous", "strictness"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing ablation %q", want)
		}
	}
	// Dichotomous search should be optimal on the large majority of real
	// alignments (the paper: "returns the optimal solutions in most
	// cases").
	re := regexp.MustCompile(`dichotomous optimal: \d+ \(([0-9.]+)%\)`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no optimality line:\n%s", out)
	}
	if pct, _ := strconv.ParseFloat(m[1], 64); pct < 80 {
		t.Errorf("dichotomous optimal only %v%%:\n%s", pct, out)
	}
}
