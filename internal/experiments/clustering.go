package experiments

import (
	"fmt"
	"io"
	"math"
	"sort"

	"infoshield/internal/baselines"
	"infoshield/internal/cluster"
	"infoshield/internal/core"
	"infoshield/internal/embed"
	"infoshield/internal/metrics"
	"infoshield/internal/tokenize"
)

// ClusteringComparison contextualizes the paper's Table I: the classical
// clustering algorithms from the related-work section (DBSCAN, OPTICS,
// k-means, G-means, HDBSCAN) applied to the same document embeddings, on
// the Cluster-Trafficking corpus, against InfoShield. The parameterized
// methods get favorable settings (k-means receives the oracle cluster
// count; DBSCAN's eps comes from the k-NN distance distribution), and
// still none approach InfoShield — and none produce templates or slots.
func ClusteringComparison(w io.Writer, scale Scale) {
	fmt.Fprintf(w, "\n== Related-work clustering comparison (Table I context) ==\n")
	ct := datagenCT(scale)
	tr, gt := truth(ct), clusterTruth(ct)
	trueClusters := map[int]bool{}
	for _, c := range gt {
		if c >= 0 {
			trueClusters[c] = true
		}
	}

	printRow := func(name string, labels []int) {
		pred := make([]bool, len(labels))
		for i, l := range labels {
			pred[i] = l >= 0
		}
		conf := metrics.NewConfusion(pred, tr)
		fmt.Fprintf(w, "%-12s %6.1f %6.1f %6.1f %6.1f\n",
			name, metrics.ARI(labels, gt)*100,
			conf.Precision()*100, conf.Recall()*100, conf.F1()*100)
	}

	fmt.Fprintf(w, "%-12s %6s %6s %6s %6s\n", "method", "ARI", "Prec", "Rec", "F1")
	res := core.Run(ct.Texts(), core.Options{})
	printRow("InfoShield", res.DocTemplate)

	// Shared embedding space for all classical clusterers.
	var tk tokenize.Tokenizer
	docs := make([][]string, ct.Len())
	for i := range ct.Docs {
		docs[i] = tk.Tokens(ct.Docs[i].Text)
	}
	m := embed.TrainWord2Vec(docs, embed.Config{Dim: scale.pick(16, 32, 50), Epochs: 4, Seed: 1})
	points := make([][]float64, ct.Len())
	for i, d := range docs {
		if v := m.DocVector(d); v != nil {
			points[i] = v
		} else {
			points[i] = make([]float64, m.Dim())
		}
	}

	printRow("HDBSCAN", cluster.HDBSCAN(points, baselines.MinClusterSize))
	eps := medianKNN(points, 3)
	printRow("DBSCAN", cluster.DBSCAN(points, eps, 3))
	order := cluster.OPTICS(points, 3)
	printRow("OPTICS", cluster.ExtractDBSCAN(order, eps, len(points)))
	printRow("k-means*", cluster.KMeans(points, len(trueClusters), 1)) // oracle k
	printRow("G-means", cluster.GMeans(points, 1, 128))
	fmt.Fprintf(w, "(*oracle k = %d true clusters; k-means and G-means assign every\n"+
		" point, so their \"precision\" is just the base rate — they cannot\n"+
		" separate micro-clusters from background, and none produce templates)\n",
		len(trueClusters))
}

// medianKNN returns the median k-th-nearest-neighbor distance — the usual
// eps heuristic for DBSCAN.
func medianKNN(points [][]float64, k int) float64 {
	n := len(points)
	if n == 0 {
		return 1
	}
	kd := make([]float64, 0, n)
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d[j] = dist(points[i], points[j])
		}
		sort.Float64s(d)
		idx := k
		if idx >= n {
			idx = n - 1
		}
		kd = append(kd, d[idx])
	}
	sort.Float64s(kd)
	return kd[len(kd)/2]
}

func dist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		x := a[i] - b[i]
		s += x * x
	}
	return math.Sqrt(s)
}
