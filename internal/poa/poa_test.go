package poa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewSingleSequence(t *testing.T) {
	g := New([]int{1, 2, 3})
	if g.NumSequences() != 1 || g.NumNodes() != 3 {
		t.Fatalf("seqs=%d nodes=%d", g.NumSequences(), g.NumNodes())
	}
	m := g.Matrix()
	if m.NumRows() != 1 || m.NumCols() != 3 {
		t.Fatalf("matrix %dx%d", m.NumRows(), m.NumCols())
	}
	if got := m.Sequence(0); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("Sequence = %v", got)
	}
}

func TestAddExactDuplicate(t *testing.T) {
	seq := []int{5, 6, 7, 8}
	g := New(seq)
	g.Add(seq)
	g.Add(seq)
	// Duplicates fuse entirely: no new nodes, no new columns.
	if g.NumNodes() != 4 {
		t.Errorf("nodes = %d, want 4 (full fusion)", g.NumNodes())
	}
	m := g.Matrix()
	if m.NumCols() != 4 {
		t.Errorf("cols = %d, want 4", m.NumCols())
	}
	for d := 0; d < 3; d++ {
		if got := m.Sequence(d); !reflect.DeepEqual(got, seq) {
			t.Errorf("row %d = %v", d, got)
		}
	}
}

func TestAddSubstitution(t *testing.T) {
	g := New([]int{1, 2, 3})
	g.Add([]int{1, 9, 3})
	m := g.Matrix()
	// Substituted tokens share a column: still 3 columns, 4 nodes.
	if m.NumCols() != 3 {
		t.Errorf("cols = %d, want 3", m.NumCols())
	}
	if g.NumNodes() != 4 {
		t.Errorf("nodes = %d, want 4", g.NumNodes())
	}
	if m.Rows[0][1] != 2 || m.Rows[1][1] != 9 {
		t.Errorf("middle column = %d,%d", m.Rows[0][1], m.Rows[1][1])
	}
}

// The POA property profile methods lack: a third sequence can match the
// *second* sequence's variant, not just the first's.
func TestThirdSequenceMatchesEarlierVariant(t *testing.T) {
	g := New([]int{1, 2, 3})
	g.Add([]int{1, 9, 3})
	before := g.NumNodes()
	g.Add([]int{1, 9, 3}) // matches seq #2's variant exactly
	if g.NumNodes() != before {
		t.Errorf("nodes grew from %d to %d; variant should fuse", before, g.NumNodes())
	}
	m := g.Matrix()
	counts := m.ColumnCounts(1)
	if counts[9] != 2 || counts[2] != 1 {
		t.Errorf("column counts = %v", counts)
	}
}

func TestAddInsertionAndDeletion(t *testing.T) {
	g := New([]int{1, 2, 3})
	g.Add([]int{1, 2, 7, 3}) // insertion of 7
	g.Add([]int{1, 3})       // deletion of 2
	m := g.Matrix()
	if ok, reason := m.Validate(); !ok {
		t.Fatalf("Validate: %s", reason)
	}
	if m.NumCols() != 4 {
		t.Errorf("cols = %d, want 4", m.NumCols())
	}
	for d, want := range [][]int{{1, 2, 3}, {1, 2, 7, 3}, {1, 3}} {
		if got := m.Sequence(d); !reflect.DeepEqual(got, want) {
			t.Errorf("row %d = %v, want %v", d, got, want)
		}
	}
}

func TestEmptyGraphThenAdd(t *testing.T) {
	g := New(nil)
	g.Add([]int{4, 5})
	m := g.Matrix()
	if m.NumRows() != 2 {
		t.Fatalf("rows = %d", m.NumRows())
	}
	if got := m.Sequence(1); !reflect.DeepEqual(got, []int{4, 5}) {
		t.Errorf("row 1 = %v", got)
	}
}

// The toy example of Table II: three near-duplicate product ads.
func TestToyExampleColumns(t *testing.T) {
	// this=0 is=1 a=2 great=3 soap=4 and=5 the=6 5=7 dollar=8 price=9
	// chair=10 10=11 hat=12 3=13
	docs := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 3},
		{0, 1, 2, 3, 10, 5, 6, 11, 8, 9, 1, 3},
		{0, 1, 2, 3, 12, 5, 6, 13, 8, 9, 1, 3},
	}
	m := Build(docs)
	if ok, reason := m.Validate(); !ok {
		t.Fatalf("Validate: %s", reason)
	}
	if m.NumCols() != 12 {
		t.Fatalf("cols = %d, want 12 (perfect columnar alignment)", m.NumCols())
	}
	// Column 4 (product) and column 7 (price) hold three distinct tokens.
	for _, c := range []int{4, 7} {
		if counts := m.ColumnCounts(c); len(counts) != 3 {
			t.Errorf("column %d counts = %v, want 3 variants", c, counts)
		}
	}
	// All other columns are unanimous.
	for c := 0; c < 12; c++ {
		if c == 4 || c == 7 {
			continue
		}
		_, cnt, ok := m.Majority(c)
		if !ok || cnt != 3 {
			t.Errorf("column %d not unanimous", c)
		}
	}
}

func randSeq(rng *rand.Rand, maxLen, alphabet int) []int {
	n := rng.Intn(maxLen) + 1
	s := make([]int, n)
	for i := range s {
		s[i] = rng.Intn(alphabet)
	}
	return s
}

// Property: every sequence added to the graph is reconstructible from the
// matrix, and the matrix is structurally valid.
func TestMatrixPreservesSequences(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(6) + 1
		seqs := make([][]int, n)
		for i := range seqs {
			seqs[i] = randSeq(rng, 10, 5)
		}
		m := Build(seqs)
		if ok, _ := m.Validate(); !ok {
			return false
		}
		for i := range seqs {
			if !reflect.DeepEqual(m.Sequence(i), seqs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: near-duplicates (one random edit from a base) align into a
// matrix whose column count stays close to the base length — POA should
// not explode columns on near-duplicate inputs.
func TestNearDuplicatesAlignCompactly(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := make([]int, 20)
		for i := range base {
			base[i] = i + 100 // all distinct
		}
		seqs := [][]int{base}
		for k := 0; k < 6; k++ {
			dup := append([]int(nil), base...)
			switch rng.Intn(3) {
			case 0: // substitution
				dup[rng.Intn(len(dup))] = 999 + k
			case 1: // deletion
				p := rng.Intn(len(dup))
				dup = append(dup[:p], dup[p+1:]...)
			case 2: // insertion
				p := rng.Intn(len(dup) + 1)
				dup = append(dup[:p], append([]int{999 + k}, dup[p:]...)...)
			}
			seqs = append(seqs, dup)
		}
		m := Build(seqs)
		if ok, _ := m.Validate(); !ok {
			return false
		}
		// At most one extra column per inserted token.
		return m.NumCols() <= len(base)+6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: duplicate-only inputs never grow the node count beyond the
// base sequence (total fusion), for any base.
func TestDuplicateFusionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := randSeq(rng, 15, 8)
		g := New(base)
		for k := 0; k < 5; k++ {
			g.Add(base)
		}
		return g.NumNodes() == len(base)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuildEmpty(t *testing.T) {
	m := Build(nil)
	if m.NumRows() != 0 || m.NumCols() != 0 {
		t.Errorf("empty build: %dx%d", m.NumRows(), m.NumCols())
	}
}

// TestBuildWithScratchMatchesBuild asserts scratch reuse changes
// allocations only: graphs built back-to-back on one Scratch must be
// identical to independently built ones, including after a larger
// cluster has grown the buffers (stale contents must never leak).
func TestBuildWithScratchMatchesBuild(t *testing.T) {
	mk := func(n, l, vary int) [][]int {
		seqs := make([][]int, n)
		for s := range seqs {
			seq := make([]int, l)
			for i := range seq {
				seq[i] = i
			}
			seq[s%l] = vary + s
			seqs[s] = seq
		}
		return seqs
	}
	clusters := [][][]int{
		mk(20, 25, 1000), // big first: grows the scratch
		mk(3, 7, 500),    // then small: must not see stale cells
		mk(12, 13, 900),
		{{1, 2, 3}},
		{},
	}
	sc := &Scratch{}
	for ci, seqs := range clusters {
		want := Build(seqs)
		got := BuildWith(sc, seqs)
		if len(got.Rows) != len(want.Rows) {
			t.Fatalf("cluster %d: row count %d != %d", ci, len(got.Rows), len(want.Rows))
		}
		for r := range want.Rows {
			if len(got.Rows[r]) != len(want.Rows[r]) {
				t.Fatalf("cluster %d row %d: width %d != %d", ci, r, len(got.Rows[r]), len(want.Rows[r]))
			}
			for c := range want.Rows[r] {
				if got.Rows[r][c] != want.Rows[r][c] {
					t.Fatalf("cluster %d row %d col %d: %d != %d", ci, r, c, got.Rows[r][c], want.Rows[r][c])
				}
			}
		}
	}
}
