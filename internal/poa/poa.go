// Package poa implements Partial Order Alignment (Lee, Grasso & Sharlow,
// Bioinformatics 2002), the multiple-sequence-alignment method
// InfoShield-Fine uses. Sequences are incorporated one at a time into a
// directed acyclic graph whose nodes hold tokens; aligned alternatives
// (substitutions) are linked into "columns", so later sequences can match
// *any* earlier variant — the property that removes the ambiguity of
// profile-based MSA the paper cites.
//
// The graph can be flattened into an align.Matrix for consensus search and
// slot detection.
package poa

import (
	"fmt"
	"slices"

	"infoshield/internal/align"
)

// node is one token occurrence in the partial order graph.
type node struct {
	token   int
	support int   // sequences passing through this node
	column  int   // column (aligned group) id
	out     []int // successor node ids
	in      []int // predecessor node ids
}

// Graph is a partial order alignment under construction.
type Graph struct {
	nodes   []node
	columns int     // number of distinct columns allocated
	paths   [][]int // paths[s] = node ids visited by sequence s, in order
	sc      *Scratch
}

// Scratch holds the DP, topology, and column-ordering buffers Add and
// Matrix would otherwise reallocate per call. One Scratch serves one
// goroutine; InfoShield-Fine threads a per-worker Scratch through every
// graph it builds so a cluster's alignments share buffers. The zero
// value is ready to use.
type Scratch struct {
	nodeDeg []int // in-degrees during topoOrder
	order   []int // topo order (doubles as the Kahn queue)
	rank    []int // node id -> topo rank
	cells   []dpCell
	fuse    []int
	// Matrix (column DAG) buffers, indexed by column id.
	colRank  []int
	colIndex []int
	colDeg   []int
	colStart []int
	edges    []uint64
	ready    []int
}

// grow returns (*p)[:n], reallocating only when capacity is short.
// Contents are garbage; callers initialize what they read.
func grow(p *[]int, n int) []int {
	if cap(*p) < n {
		*p = make([]int, n)
	}
	*p = (*p)[:n]
	return *p
}

// New creates a graph holding the single sequence seq (a token-id slice).
// An empty seq yields an empty graph that later sequences still align to.
func New(seq []int) *Graph {
	g := &Graph{}
	g.addPath(seq, nil)
	return g
}

// scratch returns the graph's buffer set, allocating one on first use.
func (g *Graph) scratch() *Scratch {
	if g.sc == nil {
		g.sc = &Scratch{}
	}
	return g.sc
}

// NumSequences returns how many sequences the graph holds.
func (g *Graph) NumSequences() int { return len(g.paths) }

// NumNodes returns the number of nodes (grows with diversity, not count).
func (g *Graph) NumNodes() int { return len(g.nodes) }

// newNode allocates a node in a fresh column and returns its id.
func (g *Graph) newNode(token int) int {
	id := len(g.nodes)
	g.nodes = append(g.nodes, node{token: token, column: g.columns})
	g.columns++
	return id
}

// newAlignedNode allocates a node sharing the column of node other.
func (g *Graph) newAlignedNode(token, other int) int {
	id := len(g.nodes)
	g.nodes = append(g.nodes, node{token: token, column: g.nodes[other].column})
	return id
}

func (g *Graph) addEdge(from, to int) {
	for _, v := range g.nodes[from].out {
		if v == to {
			return
		}
	}
	g.nodes[from].out = append(g.nodes[from].out, to)
	g.nodes[to].in = append(g.nodes[to].in, from)
}

// addPath records a brand-new chain for seq, fusing onto existing node ids
// where fuse[i] >= 0 (fuse may be nil meaning all-new nodes).
func (g *Graph) addPath(seq []int, fuse []int) {
	path := make([]int, len(seq))
	prev := -1
	for i, tok := range seq {
		var id int
		if fuse != nil && fuse[i] >= 0 {
			id = fuse[i]
		} else {
			id = g.newNode(tok)
		}
		g.nodes[id].support++
		if prev >= 0 {
			g.addEdge(prev, id)
		}
		path[i] = id
		prev = id
	}
	g.paths = append(g.paths, path)
}

// topoOrder returns node ids in a topological order, valid until the next
// call sharing sc. The graph is a DAG by construction (every edge goes
// from an earlier alignment position to a later one); a cycle would
// indicate a bug, so it panics loudly.
func (g *Graph) topoOrder(sc *Scratch) []int {
	indeg := grow(&sc.nodeDeg, len(g.nodes))
	for i := range g.nodes {
		indeg[i] = len(g.nodes[i].in)
	}
	// FIFO Kahn's algorithm with the output array doubling as the queue:
	// order[k] is processed in append order, which reproduces the classic
	// head-of-queue sequence. Deterministic because node and edge slices
	// are iterated in insertion order (no map iteration anywhere).
	order := grow(&sc.order, len(g.nodes))[:0]
	for i, d := range indeg {
		if d == 0 {
			order = append(order, i)
		}
	}
	for k := 0; k < len(order); k++ {
		for _, v := range g.nodes[order[k]].out {
			indeg[v]--
			if indeg[v] == 0 {
				order = append(order, v)
			}
		}
	}
	sc.order = order
	if len(order) != len(g.nodes) {
		panic(fmt.Sprintf("poa: graph has a cycle: ordered %d of %d nodes", len(order), len(g.nodes)))
	}
	return order
}

// dpCell holds backtracking info for one (node, seqPos) state.
type dpCell struct {
	score int32
	move  uint8 // 0=none, 1=diag(match/sub), 2=del(consume node), 3=ins(consume seq)
	prevN int32 // predecessor node id for diag/del moves; -1 = virtual start
}

const (
	moveNone = iota
	moveDiag
	moveDel
	moveIns
)

// Add aligns seq against the graph with unit edit costs and fuses it in.
func (g *Graph) Add(seq []int) {
	if len(g.nodes) == 0 {
		g.addPath(seq, nil)
		return
	}
	sc := g.scratch()
	order := g.topoOrder(sc)
	rank := grow(&sc.rank, len(g.nodes)) // node id -> position in order
	for r, id := range order {
		rank[id] = r
	}
	m := len(seq)
	width := m + 1
	// cells[(r+1)*width + j]: best alignment of graph-prefix ending at
	// order[r] with seq[:j]. Row 0 is the virtual start. The buffer is
	// reused across Adds, so row 0 (the only row read before written) is
	// initialized explicitly, including the virtual-start cell.
	cells := growCells(&sc.cells, (len(order)+1)*width)
	cells[0] = dpCell{score: 0, move: moveNone, prevN: -1}
	for j := 1; j <= m; j++ {
		cells[j] = dpCell{score: int32(j), move: moveIns, prevN: -1}
	}
	// bestEndRow(r) for a node = min over its predecessors (or start).
	for r, id := range order {
		n := &g.nodes[id]
		row := (r + 1) * width
		// j = 0: must delete the whole path to this node; take the
		// cheapest predecessor chain.
		best := dpCell{score: 1<<30 - 1}
		consider := func(prevRow int, prevN int32) {
			if s := cells[prevRow].score + 1; s < best.score {
				best = dpCell{score: s, move: moveDel, prevN: prevN}
			}
		}
		if len(n.in) == 0 {
			consider(0, -1)
		}
		for _, p := range n.in {
			consider((rank[p]+1)*width, int32(p))
		}
		cells[row] = best
		for j := 1; j <= m; j++ {
			best := dpCell{score: 1<<30 - 1}
			subCost := int32(1)
			if n.token == seq[j-1] {
				subCost = 0
			}
			// Diagonal and delete moves from each predecessor (or start).
			tryPred := func(prevRow int, prevN int32) {
				if s := cells[prevRow+j-1].score + subCost; s < best.score {
					best = dpCell{score: s, move: moveDiag, prevN: prevN}
				}
				if s := cells[prevRow+j].score + 1; s < best.score {
					best = dpCell{score: s, move: moveDel, prevN: prevN}
				}
			}
			if len(n.in) == 0 {
				tryPred(0, -1)
			}
			for _, p := range n.in {
				tryPred((rank[p]+1)*width, int32(p))
			}
			// Insertion: consume seq token, stay at this node.
			if s := cells[row+j-1].score + 1; s < best.score {
				best = dpCell{score: s, move: moveIns, prevN: int32(id)}
			}
			cells[row+j] = best
		}
	}
	// The alignment may end at any node that is an end of some path (no
	// outgoing edges) — or, more simply, at the best over all "sink"
	// nodes, since global alignment must consume some maximal path. We
	// take the best over sink nodes; if the graph somehow has no sink
	// (impossible in a DAG), topoOrder would have panicked already.
	endRank, endScore := -1, int32(1<<30-1)
	for r, id := range order {
		if len(g.nodes[id].out) == 0 {
			if s := cells[(r+1)*width+m].score; s < endScore {
				endScore, endRank = s, r
			}
		}
	}
	if endRank < 0 { // empty-sequence graph edge case
		g.addPath(seq, nil)
		return
	}
	// Backtrack: produce fuse targets for each seq position. Mismatches
	// (diag moves with unequal tokens) become fresh nodes aligned into the
	// reference node's column. We deliberately do not hunt for same-token
	// siblings to reuse: the DP already matches any positionally
	// consistent variant at cost 0, so a mismatch here means no
	// consistent sibling exists, and creating a new aligned node is the
	// correct (and cycle-safe) move.
	fuse := grow(&sc.fuse, m)
	for i := range fuse {
		fuse[i] = -1
	}
	r, j := endRank, m
	for r >= 0 || j > 0 {
		var cell dpCell
		var id int
		if r >= 0 {
			id = order[r]
			cell = cells[(r+1)*width+j]
		} else {
			cell = cells[j]
		}
		switch cell.move {
		case moveDiag:
			if g.nodes[id].token == seq[j-1] {
				fuse[j-1] = id
			} else {
				fuse[j-1] = g.newAlignedNode(seq[j-1], id)
			}
			j--
			r = rankOf(cell.prevN, rank)
		case moveDel:
			r = rankOf(cell.prevN, rank)
		case moveIns:
			j--
			// stay at same node (or virtual start)
		default:
			// move==none only at (start, 0)
			if r < 0 && j == 0 {
				r = -2 // terminate
			} else {
				panic("poa: backtrack hit an unreachable cell")
			}
		}
		if r == -2 {
			break
		}
	}
	g.addPath(seq, fuse)
}

func rankOf(n int32, rank []int) int {
	if n < 0 {
		return -1
	}
	return rank[n]
}

// growCells is grow for the dpCell buffer.
func growCells(p *[]dpCell, n int) []dpCell {
	if cap(*p) < n {
		*p = make([]dpCell, n)
	}
	*p = (*p)[:n]
	return *p
}

// Matrix flattens the graph into an alignment matrix: columns are the
// aligned groups ordered topologically; each sequence row carries its
// token in the columns its path visits and gaps elsewhere.
func (g *Graph) Matrix() *align.Matrix {
	if len(g.nodes) == 0 {
		return &align.Matrix{Rows: make([][]int, len(g.paths))}
	}
	sc := g.scratch()
	order := g.topoOrder(sc)
	// Column order: contract each column (alignment ring) to a super-node
	// and topologically sort the resulting column DAG. Ordering columns by
	// node first-appearance alone is NOT sound: a substitution node with
	// no predecessors (a variant at the start of its sequence) pops early
	// in the node topo sort and would drag its whole column ahead of the
	// columns its ring-mates depend on.
	//
	// Column ids are dense (every id below g.columns was minted by newNode
	// and owns at least that node), so the bookkeeping runs on flat slices
	// indexed by column id rather than maps.
	numCols := g.columns
	colRank := grow(&sc.colRank, numCols) // column -> min node rank (tie-break)
	for i := range colRank {
		colRank[i] = -1
	}
	for r, id := range order {
		c := g.nodes[id].column
		if colRank[c] < 0 {
			colRank[c] = r
		}
	}
	// Column edges packed as from<<32|to, sort-deduped: a CSR adjacency
	// whose per-column runs are contiguous in the sorted slice.
	edges := sc.edges[:0]
	for u := range g.nodes {
		cu := g.nodes[u].column
		for _, v := range g.nodes[u].out {
			if cv := g.nodes[v].column; cu != cv {
				edges = append(edges, uint64(cu)<<32|uint64(uint32(cv)))
			}
		}
	}
	slices.Sort(edges)
	edges = slices.Compact(edges)
	sc.edges = edges
	indeg := grow(&sc.colDeg, numCols)
	for i := range indeg {
		indeg[i] = 0
	}
	colStart := grow(&sc.colStart, numCols+1)
	for i := range colStart {
		colStart[i] = len(edges)
	}
	for i := len(edges) - 1; i >= 0; i-- {
		colStart[edges[i]>>32] = i
		indeg[uint32(edges[i])]++
	}
	for c := numCols - 1; c >= 0; c-- {
		if colStart[c] > colStart[c+1] {
			colStart[c] = colStart[c+1]
		}
	}
	colIndex := grow(&sc.colIndex, numCols)
	for i := range colIndex {
		colIndex[i] = -1
	}
	assigned := 0
	ready := sc.ready[:0]
	for c := 0; c < numCols; c++ {
		if indeg[c] == 0 {
			ready = append(ready, c)
		}
	}
	pickMin := func(cands []int) (int, []int) {
		best := 0
		for i := 1; i < len(cands); i++ {
			if colRank[cands[i]] < colRank[cands[best]] {
				best = i
			}
		}
		c := cands[best]
		cands[best] = cands[len(cands)-1]
		return c, cands[:len(cands)-1]
	}
	for len(ready) > 0 {
		var c int
		c, ready = pickMin(ready)
		colIndex[c] = assigned
		assigned++
		for e := colStart[c]; e < colStart[c+1]; e++ {
			v := int(uint32(edges[e]))
			indeg[v]--
			if indeg[v] == 0 {
				ready = append(ready, v)
			}
		}
	}
	sc.ready = ready
	if assigned < numCols {
		// A cycle in the column DAG can only arise from a pathological
		// alignment-ring inconsistency; fall back to min-node-rank order
		// for the leftover columns so output stays deterministic.
		var leftover []int
		for c := 0; c < numCols; c++ {
			if colIndex[c] < 0 {
				leftover = append(leftover, c)
			}
		}
		for len(leftover) > 0 {
			var c int
			c, leftover = pickMin(leftover)
			colIndex[c] = assigned
			assigned++
		}
	}
	mat := &align.Matrix{Rows: make([][]int, len(g.paths))}
	for s, path := range g.paths {
		row := make([]int, numCols)
		for i := range row {
			row[i] = align.Gap
		}
		for _, id := range path {
			row[colIndex[g.nodes[id].column]] = g.nodes[id].token
		}
		mat.Rows[s] = row
	}
	return mat
}

// Build is a convenience: aligns all seqs (first one seeds the graph) and
// returns the flattened matrix.
func Build(seqs [][]int) *align.Matrix {
	return BuildWith(nil, seqs)
}

// BuildWith is Build with a caller-owned Scratch, so consecutive graphs
// (InfoShield-Fine builds one per accepted candidate set) share DP and
// topology buffers. A nil sc allocates per graph, like Build.
func BuildWith(sc *Scratch, seqs [][]int) *align.Matrix {
	if len(seqs) == 0 {
		return &align.Matrix{}
	}
	g := New(seqs[0])
	g.sc = sc
	for _, s := range seqs[1:] {
		g.Add(s)
	}
	return g.Matrix()
}
