// Package slotinfo analyzes the content of detected slots — the paper's
// stated future work ("Work could be done to automatically extract and
// process the information within each slot", Section V-D2). Slots tend to
// carry consistent user-specific fields (Table XI: one slot always holds
// times, another prices), but in messy formats ("until 9pm" vs "9 P.M").
//
// The package classifies slot tokens into field kinds (phone, price, time,
// URL, handle, number, name/word), normalizes the common formats, and
// aggregates a per-slot profile so an investigator's lead sheet can say
// "slot 2 is a time field, slot 3 is a price field" — and list the
// extracted values.
package slotinfo

import (
	"sort"
	"strconv"
	"strings"
	"unicode"
)

// Kind classifies one slot token.
type Kind int

// Field kinds, ordered roughly by specificity (classification tries the
// most specific patterns first).
const (
	Word Kind = iota // default: plain text
	Number
	Price
	Phone
	Time
	URL
	Handle
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Word:
		return "word"
	case Number:
		return "number"
	case Price:
		return "price"
	case Phone:
		return "phone"
	case Time:
		return "time"
	case URL:
		return "url"
	case Handle:
		return "handle"
	}
	return "unknown"
}

// Value is one extracted slot token with its classification and a
// normalized form (digits for prices/numbers, 24h "hh:mm" for times,
// bare digits for phones).
type Value struct {
	Raw        string
	Kind       Kind
	Normalized string
}

// Classify identifies a single token.
func Classify(tok string) Value {
	v := Value{Raw: tok, Kind: Word, Normalized: strings.ToLower(tok)}
	switch {
	case isURL(tok):
		v.Kind = URL
		v.Normalized = strings.ToLower(tok)
	case isPhone(tok):
		v.Kind = Phone
		v.Normalized = digitsOf(tok)
	case isTime(tok):
		v.Kind = Time
		v.Normalized = normalizeTime(tok)
	case isPrice(tok):
		v.Kind = Price
		v.Normalized = digitsOf(tok)
	case isNumber(tok):
		v.Kind = Number
		v.Normalized = digitsOf(tok)
	}
	return v
}

// ClassifySeq classifies a token sequence, merging context: a number
// followed by "am"/"pm" is a time; a number preceded by a currency cue
// is a price.
func ClassifySeq(toks []string) []Value {
	out := make([]Value, len(toks))
	for i, t := range toks {
		out[i] = Classify(t)
	}
	for i := range out {
		if out[i].Kind != Number {
			continue
		}
		if i+1 < len(out) && isMeridiem(out[i+1].Raw) {
			out[i].Kind = Time
			out[i].Normalized = normalizeTime(out[i].Raw + out[i+1].Raw)
			out[i+1].Kind = Time
			out[i+1].Normalized = out[i].Normalized
			continue
		}
		if i > 0 && isCurrencyCue(out[i-1].Raw) {
			out[i].Kind = Price
		}
	}
	return out
}

// isURL accepts http(s) prefixes, tweet-mangled short links (httptco...),
// and bare domains with a recognizable dot suffix.
func isURL(s string) bool {
	l := strings.ToLower(s)
	if strings.HasPrefix(l, "http://") || strings.HasPrefix(l, "https://") ||
		strings.HasPrefix(l, "httptco") || strings.HasPrefix(l, "www.") {
		return true
	}
	if i := strings.LastIndexByte(l, '.'); i > 0 && i < len(l)-1 {
		tld := l[i+1:]
		switch tld {
		case "com", "net", "org", "info", "biz", "io", "co", "test", "example", "me", "us":
			// Domains are letter/digit/dot/hyphen only.
			for _, r := range l {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '.' && r != '-' {
					return false
				}
			}
			return true
		}
	}
	return false
}

func isMeridiem(s string) bool {
	l := strings.ToLower(strings.TrimRight(s, "."))
	return l == "am" || l == "pm" || l == "a.m" || l == "p.m"
}

func isCurrencyCue(s string) bool {
	switch strings.ToLower(s) {
	case "$", "usd", "dollar", "dollars", "only", "just", "from":
		return true
	}
	return false
}

func digitsOf(s string) string {
	var sb strings.Builder
	for _, r := range s {
		if unicode.IsDigit(r) {
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

func isNumber(s string) bool {
	if s == "" {
		return false
	}
	dots := 0
	for i, r := range s {
		if r == '.' {
			// One interior decimal point is allowed ("4.1").
			dots++
			if dots > 1 || i == 0 || i == len(s)-1 {
				return false
			}
			continue
		}
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// isPrice accepts $N, N$ and bare dollar-ish amounts with an explicit
// currency mark; bare numbers are Kind Number (context may upgrade them).
func isPrice(s string) bool {
	if strings.HasPrefix(s, "$") && isNumber(s[1:]) {
		return true
	}
	if strings.HasSuffix(s, "$") && isNumber(s[:len(s)-1]) {
		return true
	}
	return false
}

// isPhone accepts 7+ digit tokens with optional separators (the
// "123-456.7890" shapes the tokenizer keeps whole).
func isPhone(s string) bool {
	digits, seps := 0, 0
	for _, r := range s {
		switch {
		case unicode.IsDigit(r):
			digits++
		case r == '-' || r == '.' || r == '(' || r == ')' || r == '+':
			seps++
		default:
			return false
		}
	}
	return digits >= 7 && digits <= 15
}

// isTime accepts "9pm", "10am", "9:30pm", "21:00".
func isTime(s string) bool {
	l := strings.ToLower(s)
	for _, suffix := range []string{"am", "pm"} {
		if h, ok := strings.CutSuffix(l, suffix); ok {
			return validHour(h)
		}
	}
	if h, m, ok := strings.Cut(l, ":"); ok {
		return isNumber(h) && isNumber(m) && atoiOr(h, -1) < 24 && atoiOr(m, -1) < 60
	}
	return false
}

func validHour(h string) bool {
	if hh, mm, ok := strings.Cut(h, ":"); ok {
		return isNumber(hh) && isNumber(mm) && atoiOr(hh, -1) <= 12 && atoiOr(mm, -1) < 60
	}
	return isNumber(h) && atoiOr(h, -1) >= 1 && atoiOr(h, -1) <= 12
}

func atoiOr(s string, def int) int {
	v, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return v
}

// normalizeTime renders times as 24h "hh:mm".
func normalizeTime(s string) string {
	l := strings.ToLower(strings.ReplaceAll(s, " ", ""))
	pm := strings.HasSuffix(l, "pm")
	l = strings.TrimSuffix(strings.TrimSuffix(l, "pm"), "am")
	hh, mm, ok := strings.Cut(l, ":")
	if !ok {
		mm = "00"
	}
	h := atoiOr(hh, 0)
	if pm && h < 12 {
		h += 12
	}
	if !pm && h == 12 {
		h = 0
	}
	if len(mm) == 1 {
		mm = "0" + mm
	}
	return pad2(h) + ":" + mm
}

func pad2(n int) string {
	if n < 10 {
		return "0" + strconv.Itoa(n)
	}
	return strconv.Itoa(n)
}

// Profile summarizes one slot across a template's documents: the dominant
// field kind and the extracted values.
type Profile struct {
	// Dominant is the most frequent kind among non-empty fills.
	Dominant Kind
	// Purity is the fraction of fills matching the dominant kind.
	Purity float64
	// Values are the distinct normalized values, most frequent first.
	Values []string
	// Fills is the number of documents that put content in the slot.
	Fills int
}

// Profiles aggregates per-slot content: fills[d][s] is document d's token
// list for slot s (empty slices are legal — S(0) slots).
func Profiles(fills [][][]string) []Profile {
	if len(fills) == 0 {
		return nil
	}
	numSlots := 0
	for _, doc := range fills {
		if len(doc) > numSlots {
			numSlots = len(doc)
		}
	}
	out := make([]Profile, numSlots)
	for s := 0; s < numSlots; s++ {
		kindCount := map[Kind]int{}
		valCount := map[string]int{}
		for _, doc := range fills {
			if s >= len(doc) || len(doc[s]) == 0 {
				continue
			}
			out[s].Fills++
			vals := ClassifySeq(doc[s])
			// The slot's kind for this doc: most specific token kind.
			k := Word
			for _, v := range vals {
				if v.Kind > k {
					k = v.Kind
				}
			}
			kindCount[k]++
			for _, v := range vals {
				valCount[v.Normalized]++
			}
		}
		best, bestN := Word, 0
		for k, n := range kindCount {
			if n > bestN || (n == bestN && k > best) {
				best, bestN = k, n
			}
		}
		out[s].Dominant = best
		if out[s].Fills > 0 {
			out[s].Purity = float64(bestN) / float64(out[s].Fills)
		}
		type vc struct {
			v string
			n int
		}
		var vcs []vc
		for v, n := range valCount {
			vcs = append(vcs, vc{v, n})
		}
		sort.Slice(vcs, func(i, j int) bool {
			if vcs[i].n != vcs[j].n {
				return vcs[i].n > vcs[j].n
			}
			return vcs[i].v < vcs[j].v
		})
		for _, x := range vcs {
			out[s].Values = append(out[s].Values, x.v)
		}
	}
	return out
}
