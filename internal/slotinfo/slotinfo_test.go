package slotinfo

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestClassifyKinds(t *testing.T) {
	cases := []struct {
		tok  string
		want Kind
	}{
		{"123-456.7890", Phone},
		{"4125551234", Phone},
		{"+1412555", Phone},
		{"9pm", Time},
		{"10am", Time},
		{"9:30pm", Time},
		{"21:00", Time},
		{"$50", Price},
		{"50$", Price},
		{"50", Number},
		{"httptcokbfwdfts", URL},
		{"http://x.test/a", URL},
		{"scam.com", URL},
		{"hello", Word},
		{"mia", Word},
		{"", Word},
		{"25am", Word},   // invalid hour
		{"130", Number},  // too short for phone
		{"9.30", Number}, // dotted number, not enough digits for phone
	}
	for _, c := range cases {
		if got := Classify(c.tok); got.Kind != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.tok, got.Kind, c.want)
		}
	}
}

func TestNormalization(t *testing.T) {
	cases := []struct {
		tok, want string
	}{
		{"9pm", "21:00"},
		{"9am", "09:00"},
		{"12am", "00:00"},
		{"12pm", "12:00"},
		{"9:30pm", "21:30"},
		{"123-456.7890", "1234567890"},
		{"$50", "50"},
	}
	for _, c := range cases {
		if got := Classify(c.tok).Normalized; got != c.want {
			t.Errorf("Classify(%q).Normalized = %q, want %q", c.tok, got, c.want)
		}
	}
}

func TestClassifySeqContext(t *testing.T) {
	// "until 9 pm": 9 upgraded to Time by the following meridiem.
	vals := ClassifySeq([]string{"until", "9", "pm"})
	if vals[1].Kind != Time || vals[1].Normalized != "21:00" {
		t.Errorf("contextual time: %+v", vals[1])
	}
	// "only 50 special": 50 upgraded to Price by the currency cue.
	vals = ClassifySeq([]string{"only", "50", "special"})
	if vals[1].Kind != Price {
		t.Errorf("contextual price: %+v", vals[1])
	}
	// bare number without context stays Number.
	vals = ClassifySeq([]string{"the", "50", "things"})
	if vals[1].Kind != Number {
		t.Errorf("bare number: %+v", vals[1])
	}
}

func TestProfilesTypedSlots(t *testing.T) {
	// Three documents, two slots: slot 0 holds names, slot 1 holds times.
	fills := [][][]string{
		{{"mia"}, {"until", "9", "pm"}},
		{{"vera"}, {"10am"}},
		{{"zoe"}, {"from", "11pm"}},
		{{"mia"}, {}}, // empty fill: S(0)
	}
	profiles := Profiles(fills)
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	if profiles[0].Dominant != Word || profiles[0].Fills != 4 {
		t.Errorf("slot 0 profile: %+v", profiles[0])
	}
	if profiles[0].Values[0] != "mia" { // most frequent first
		t.Errorf("slot 0 values: %v", profiles[0].Values)
	}
	if profiles[1].Dominant != Time || profiles[1].Fills != 3 {
		t.Errorf("slot 1 profile: %+v", profiles[1])
	}
	if profiles[1].Purity != 1.0 {
		t.Errorf("slot 1 purity: %v", profiles[1].Purity)
	}
}

func TestProfilesEmpty(t *testing.T) {
	if got := Profiles(nil); got != nil {
		t.Errorf("Profiles(nil) = %v", got)
	}
	profiles := Profiles([][][]string{{}, {}})
	if len(profiles) != 0 {
		t.Errorf("no slots: %v", profiles)
	}
}

// Property: Classify never panics and Normalized is non-empty whenever
// Raw is non-empty and contains a digit or letter.
func TestClassifyTotal(t *testing.T) {
	f := func(s string) bool {
		v := Classify(s)
		_ = v.Kind.String()
		return v.Raw == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: ClassifySeq preserves length and raw tokens.
func TestClassifySeqTotal(t *testing.T) {
	f := func(toks []string) bool {
		vals := ClassifySeq(toks)
		if len(vals) != len(toks) {
			return false
		}
		raws := make([]string, len(vals))
		for i, v := range vals {
			raws[i] = v.Raw
		}
		return reflect.DeepEqual(raws, toks) || len(toks) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
