package graph

// Bipartite accumulates document→phrase edges and extracts the connected
// components over documents. Phrases are identified by opaque comparable
// keys (historically joined n-gram strings, now hashed phrase ids);
// documents by dense indices.
//
// Implementation note: we never materialize phrase nodes. The first
// document seen with a phrase becomes the phrase's anchor, and every later
// document carrying the same phrase unions with the anchor — exactly the
// same components as the explicit bipartite graph, in O(E α(N)).
type Bipartite[K comparable] struct {
	uf     *UnionFind
	anchor map[K]int
	edges  int
}

// NewBipartite prepares a graph over numDocs documents.
func NewBipartite[K comparable](numDocs int) *Bipartite[K] {
	return &Bipartite[K]{
		uf:     NewUnionFind(numDocs),
		anchor: make(map[K]int),
	}
}

// AddEdge records that phrase is a top phrase of document doc.
func (b *Bipartite[K]) AddEdge(doc int, phrase K) {
	b.edges++
	if a, ok := b.anchor[phrase]; ok {
		b.uf.Union(a, doc)
		return
	}
	b.anchor[phrase] = doc
}

// Edges returns the number of AddEdge calls.
func (b *Bipartite[K]) Edges() int { return b.edges }

// Phrases returns the number of distinct phrases seen.
func (b *Bipartite[K]) Phrases() int { return len(b.anchor) }

// Clusters returns the document components with at least minSize members.
// InfoShield-Coarse calls it with minSize=2, discarding single-copy
// documents (the paper's key scalability step).
func (b *Bipartite[K]) Clusters(minSize int) [][]int {
	var out [][]int
	for _, comp := range b.uf.Components() {
		if len(comp) >= minSize {
			out = append(out, comp)
		}
	}
	return out
}
