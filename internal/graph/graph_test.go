package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestUnionFindBasic(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Sets() != 5 {
		t.Fatalf("Sets = %d", uf.Sets())
	}
	if !uf.Union(0, 1) {
		t.Error("first union should merge")
	}
	if uf.Union(1, 0) {
		t.Error("repeat union should not merge")
	}
	uf.Union(2, 3)
	uf.Union(0, 3)
	if uf.Sets() != 2 {
		t.Errorf("Sets = %d, want 2", uf.Sets())
	}
	if !uf.Connected(1, 2) {
		t.Error("1 and 2 should be connected")
	}
	if uf.Connected(0, 4) {
		t.Error("0 and 4 should not be connected")
	}
	if uf.SetSize(3) != 4 {
		t.Errorf("SetSize = %d, want 4", uf.SetSize(3))
	}
}

func TestUnionFindComponents(t *testing.T) {
	uf := NewUnionFind(6)
	uf.Union(0, 2)
	uf.Union(4, 5)
	comps := uf.Components()
	if len(comps) != 4 {
		t.Fatalf("got %d components: %v", len(comps), comps)
	}
	// First component contains 0 (smallest member order preserved).
	if comps[0][0] != 0 {
		t.Errorf("components not in first-member order: %v", comps)
	}
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != 6 {
		t.Errorf("components cover %d elements", total)
	}
}

// Property: after any union sequence, Connected agrees with a naive
// label-propagation reference.
func TestUnionFindMatchesReference(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%20) + 2
		rng := rand.New(rand.NewSource(seed))
		uf := NewUnionFind(n)
		labels := make([]int, n)
		for i := range labels {
			labels[i] = i
		}
		relabel := func(from, to int) {
			for i := range labels {
				if labels[i] == from {
					labels[i] = to
				}
			}
		}
		for k := 0; k < n*2; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			uf.Union(a, b)
			relabel(labels[a], labels[b])
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if uf.Connected(i, j) != (labels[i] == labels[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: number of sets equals n minus successful unions.
func TestUnionFindSetCount(t *testing.T) {
	f := func(seed int64) bool {
		n := 30
		rng := rand.New(rand.NewSource(seed))
		uf := NewUnionFind(n)
		merges := 0
		for k := 0; k < 50; k++ {
			if uf.Union(rng.Intn(n), rng.Intn(n)) {
				merges++
			}
		}
		return uf.Sets() == n-merges
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBipartiteClusters(t *testing.T) {
	b := NewBipartite[string](6)
	// docs 0,1 share "cheap viagra"; docs 1,2 share "call now";
	// docs 4,5 share "hot deal"; doc 3 isolated.
	b.AddEdge(0, "cheap viagra")
	b.AddEdge(1, "cheap viagra")
	b.AddEdge(1, "call now")
	b.AddEdge(2, "call now")
	b.AddEdge(3, "lonely phrase")
	b.AddEdge(4, "hot deal")
	b.AddEdge(5, "hot deal")

	if b.Edges() != 7 {
		t.Errorf("Edges = %d", b.Edges())
	}
	if b.Phrases() != 4 {
		t.Errorf("Phrases = %d", b.Phrases())
	}
	clusters := b.Clusters(2)
	if len(clusters) != 2 {
		t.Fatalf("clusters = %v", clusters)
	}
	want := map[int]bool{0: true, 1: true, 2: true}
	for _, d := range clusters[0] {
		if !want[d] {
			t.Errorf("cluster 0 = %v", clusters[0])
		}
	}
	if len(clusters[1]) != 2 {
		t.Errorf("cluster 1 = %v", clusters[1])
	}
	// minSize=1 keeps singletons too.
	if got := len(b.Clusters(1)); got != 3 {
		t.Errorf("Clusters(1) = %d components, want 3", got)
	}
}

// Property: bipartite components match a brute-force two-mode BFS.
func TestBipartiteMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nDocs := rng.Intn(15) + 2
		phrases := []string{"p0", "p1", "p2", "p3", "p4"}
		b := NewBipartite[string](nDocs)
		adj := make(map[string][]int)
		for d := 0; d < nDocs; d++ {
			for _, p := range phrases {
				if rng.Float64() < 0.25 {
					b.AddEdge(d, p)
					adj[p] = append(adj[p], d)
				}
			}
		}
		// Brute-force: union docs sharing any phrase.
		ref := NewUnionFind(nDocs)
		for _, docs := range adj {
			for i := 1; i < len(docs); i++ {
				ref.Union(docs[0], docs[i])
			}
		}
		got := b.Clusters(1)
		// Compare partition structure via pairwise connectivity.
		comp := make([]int, nDocs)
		for ci, c := range got {
			for _, d := range c {
				comp[d] = ci
			}
		}
		for i := 0; i < nDocs; i++ {
			for j := 0; j < nDocs; j++ {
				if (comp[i] == comp[j]) != ref.Connected(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
