// Package graph provides the union-find structure and the bipartite
// document–phrase graph used by InfoShield-Coarse (Algorithm 1): documents
// that share a top tf-idf phrase end up in the same connected component,
// and the components are the coarse candidate clusters.
package graph

// UnionFind is a disjoint-set forest with path halving and union by size.
type UnionFind struct {
	parent []int
	size   []int
	sets   int
}

// NewUnionFind returns n singleton sets labeled 0..n-1.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		size:   make([]int, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets holding x and y and reports whether a merge
// happened (false when they were already together).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.size[rx] < uf.size[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	uf.size[rx] += uf.size[ry]
	uf.sets--
	return true
}

// Connected reports whether x and y share a set.
func (uf *UnionFind) Connected(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// SetSize returns the size of x's set.
func (uf *UnionFind) SetSize(x int) int { return uf.size[uf.Find(x)] }

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// Components groups element indices by set, in ascending order of each
// component's smallest member. Singleton components are included.
func (uf *UnionFind) Components() [][]int {
	groups := make(map[int][]int)
	order := make([]int, 0)
	for i := range uf.parent {
		r := uf.Find(i)
		if _, seen := groups[r]; !seen {
			order = append(order, r)
		}
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(order))
	for _, r := range order {
		out = append(out, groups[r])
	}
	return out
}
