package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfusionBasics(t *testing.T) {
	pred := []bool{true, true, false, false, true}
	truth := []bool{true, false, false, true, true}
	c := NewConfusion(pred, truth)
	if c.TP != 2 || c.FP != 1 || c.FN != 1 || c.TN != 1 {
		t.Fatalf("confusion = %+v", c)
	}
	if got := c.Precision(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Precision = %v", got)
	}
	if got := c.Recall(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Recall = %v", got)
	}
	if got := c.F1(); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("F1 = %v", got)
	}
}

func TestConfusionDegenerate(t *testing.T) {
	c := NewConfusion([]bool{false, false}, []bool{false, false})
	if c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Errorf("all-negative case: %+v", c)
	}
	c = NewConfusion([]bool{true, true}, []bool{true, true})
	if c.Precision() != 1 || c.Recall() != 1 || c.F1() != 1 {
		t.Errorf("perfect case: %+v", c)
	}
}

// Property: F1 is between min and max of precision and recall.
func TestF1Bounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 1
		pred := make([]bool, n)
		truth := make([]bool, n)
		for i := range pred {
			pred[i] = rng.Intn(2) == 0
			truth[i] = rng.Intn(2) == 0
		}
		c := NewConfusion(pred, truth)
		p, r, f1 := c.Precision(), c.Recall(), c.F1()
		lo, hi := math.Min(p, r), math.Max(p, r)
		return f1 >= lo-1e-12 && f1 <= hi+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestARIIdentical(t *testing.T) {
	a := []int{0, 0, 1, 1, 2}
	if got := ARI(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI identical = %v", got)
	}
}

func TestARIPermutedLabels(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	b := []int{5, 5, 9, 9, 7, 7}
	if got := ARI(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI permuted = %v", got)
	}
}

func TestARIDisagreement(t *testing.T) {
	a := []int{0, 0, 0, 1, 1, 1}
	b := []int{0, 0, 1, 1, 2, 2}
	got := ARI(a, b)
	if got >= 1 || got <= 0 {
		t.Errorf("partial agreement ARI = %v, want in (0,1)", got)
	}
}

// Reference value check against sklearn's adjusted_rand_score for a known
// case: a=[0,0,1,1], b=[0,0,1,2] gives ARI = 0.57142857...
func TestARIReferenceValue(t *testing.T) {
	got := ARI([]int{0, 0, 1, 1}, []int{0, 0, 1, 2})
	want := 4.0 / 7.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ARI = %v, want %v", got, want)
	}
}

func TestARISingletonConvention(t *testing.T) {
	// Two items both labeled -1 are NOT the same cluster.
	a := []int{-1, -1, 3, 3}
	b := []int{7, 8, 9, 9}
	if got := ARI(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("ARI with -1 singletons = %v, want 1", got)
	}
	// Whereas grouping the two -1 items is a real disagreement.
	c := []int{7, 7, 9, 9}
	if got := ARI(a, c); got >= 1 {
		t.Errorf("ARI = %v, want < 1", got)
	}
}

func TestARIEmpty(t *testing.T) {
	if got := ARI(nil, nil); got != 1 {
		t.Errorf("ARI(empty) = %v", got)
	}
}

func TestARIMismatchedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ARI([]int{1}, []int{1, 2})
}

// Property: ARI is symmetric and invariant to label permutation.
func TestARISymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		a := make([]int, n)
		b := make([]int, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		if math.Abs(ARI(a, b)-ARI(b, a)) > 1e-9 {
			return false
		}
		// Relabel a's clusters by +100: ARI unchanged.
		a2 := make([]int, n)
		for i := range a {
			a2[i] = a[i] + 100
		}
		return math.Abs(ARI(a, b)-ARI(a2, b)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: ARI <= 1 always, with equality iff partitions are equivalent.
func TestARIUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(25) + 2
		a := make([]int, n)
		b := make([]int, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Intn(3)
			b[i] = rng.Intn(3)
		}
		return ARI(a, b) <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNMIBasics(t *testing.T) {
	a := []int{0, 0, 1, 1, 2, 2}
	if got := NMI(a, a); math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI identical = %v", got)
	}
	b := []int{5, 5, 9, 9, 7, 7}
	if got := NMI(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("NMI permuted = %v", got)
	}
	// Independence: one big cluster vs alternating labels.
	c := []int{0, 0, 0, 0, 0, 0}
	d := []int{0, 1, 0, 1, 0, 1}
	if got := NMI(c, d); got > 0.01 {
		t.Errorf("NMI independent = %v, want ~0", got)
	}
	if got := NMI(nil, nil); got != 1 {
		t.Errorf("NMI empty = %v", got)
	}
}

func TestNMISymmetricBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(30) + 2
		a := make([]int, n)
		b := make([]int, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Intn(4)
			b[i] = rng.Intn(4)
		}
		x, y := NMI(a, b), NMI(b, a)
		return math.Abs(x-y) < 1e-9 && x >= -1e-9 && x <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNMIMismatchedLengthPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NMI([]int{1}, []int{1, 2})
}
