// Package metrics implements the evaluation measures the paper reports —
// precision, recall, F1 over binary suspicious/benign labels, and the
// Adjusted Rand Index (Hubert & Arabie 1985) over cluster labelings —
// plus normalized mutual information for additional cluster comparisons.
package metrics

import "math"

// Confusion is a binary confusion matrix.
type Confusion struct {
	TP, FP, TN, FN int
}

// NewConfusion tallies predictions against ground truth.
func NewConfusion(pred, truth []bool) Confusion {
	var c Confusion
	for i := range pred {
		switch {
		case pred[i] && truth[i]:
			c.TP++
		case pred[i] && !truth[i]:
			c.FP++
		case !pred[i] && truth[i]:
			c.FN++
		default:
			c.TN++
		}
	}
	return c
}

// Precision returns TP/(TP+FP), or 0 when nothing was predicted positive.
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no positives.
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// ARI computes the Adjusted Rand Index between two labelings of the same
// items. Labels are opaque integers, except that the paper's convention
// for "belongs to no cluster" is honored: every item labeled -1 is treated
// as its own singleton cluster (genuine users' tweets "are different
// enough that they shouldn't be clustered together").
//
// ARI is 1 for identical partitions, ~0 for random agreement, and can be
// negative for worse-than-random. Degenerate cases (all items in one
// cluster in both partitions, or both all-singletons) return 1.
func ARI(a, b []int) float64 {
	if len(a) != len(b) {
		panic("metrics: ARI label slices differ in length")
	}
	n := len(a)
	if n == 0 {
		return 1
	}
	a = expandSingletons(a)
	b = expandSingletons(b)
	// Contingency table.
	type cell struct{ x, y int }
	cont := make(map[cell]int)
	rows := make(map[int]int)
	cols := make(map[int]int)
	for i := 0; i < n; i++ {
		cont[cell{a[i], b[i]}]++
		rows[a[i]]++
		cols[b[i]]++
	}
	var sumComb, rowComb, colComb float64
	for _, v := range cont {
		sumComb += comb2(v)
	}
	for _, v := range rows {
		rowComb += comb2(v)
	}
	for _, v := range cols {
		colComb += comb2(v)
	}
	total := comb2(n)
	if total == 0 {
		return 1
	}
	expected := rowComb * colComb / total
	maxIndex := (rowComb + colComb) / 2
	if maxIndex == expected {
		return 1 // both partitions degenerate in the same way
	}
	return (sumComb - expected) / (maxIndex - expected)
}

// NMI computes the normalized mutual information between two labelings
// (arithmetic-mean normalization), with the same -1 singleton convention
// as ARI. 1 means identical partitions; 0 means independence.
func NMI(a, b []int) float64 {
	if len(a) != len(b) {
		panic("metrics: NMI label slices differ in length")
	}
	n := len(a)
	if n == 0 {
		return 1
	}
	a = expandSingletons(a)
	b = expandSingletons(b)
	type cell struct{ x, y int }
	joint := make(map[cell]int)
	ca := make(map[int]int)
	cb := make(map[int]int)
	for i := 0; i < n; i++ {
		joint[cell{a[i], b[i]}]++
		ca[a[i]]++
		cb[b[i]]++
	}
	fn := float64(n)
	var mi float64
	for c, nij := range joint {
		pij := float64(nij) / fn
		pi := float64(ca[c.x]) / fn
		pj := float64(cb[c.y]) / fn
		mi += pij * logOf(pij/(pi*pj))
	}
	ha, hb := entropy(ca, fn), entropy(cb, fn)
	if ha == 0 && hb == 0 {
		return 1
	}
	return 2 * mi / (ha + hb)
}

func entropy(counts map[int]int, n float64) float64 {
	h := 0.0
	for _, c := range counts {
		p := float64(c) / n
		h -= p * logOf(p)
	}
	return h
}

func logOf(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log(x)
}

// expandSingletons replaces every -1 label with a fresh negative label so
// each unclustered item forms its own class.
func expandSingletons(labels []int) []int {
	out := make([]int, len(labels))
	next := -2
	for i, l := range labels {
		if l == -1 {
			out[i] = next
			next--
		} else {
			out[i] = l
		}
	}
	return out
}

// comb2 returns C(n,2) as a float64.
func comb2(n int) float64 {
	if n < 2 {
		return 0
	}
	return float64(n) * float64(n-1) / 2
}
