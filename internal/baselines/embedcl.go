// Package baselines implements the comparison methods of the paper's
// Table VIII that can be rebuilt from their descriptions:
//
//   - Word2Vec-cl / Doc2Vec-cl / FastText-cl — the embedding baselines the
//     authors constructed: train the embedding on the ad corpus, embed
//     each document, cluster with HDBSCAN (min cluster size 3), and call
//     every clustered document suspicious;
//   - a Cresci-style DNA-inspired behavioral detector (unsupervised,
//     account-level, longest-common-substring over tweet-type strings);
//   - supervised feature-based bot detectors in the style of BotOrNot,
//     Yang et al., and Ahmed & Abulaish, built on platform metadata and a
//     from-scratch logistic regression.
//
// HTDN is not re-implemented: it requires the real multimodal labeled ads
// (text + images); its published numbers are quoted in EXPERIMENTS.md.
package baselines

import (
	"infoshield/internal/cluster"
	"infoshield/internal/embed"
	"infoshield/internal/tokenize"
)

// Result is a baseline's output on a corpus: per-document binary
// prediction and (for clustering methods) per-document cluster labels
// with -1 meaning unclustered.
type Result struct {
	Pred     []bool
	Clusters []int // nil for methods that do not cluster
}

// MinClusterSize is the HDBSCAN minimum cluster size the paper uses for
// the embedding baselines.
const MinClusterSize = 3

// tokenizeAll tokenizes every text with the shared tokenizer.
func tokenizeAll(texts []string) [][]string {
	var tk tokenize.Tokenizer
	docs := make([][]string, len(texts))
	for i, t := range texts {
		docs[i] = tk.Tokens(t)
	}
	return docs
}

// clusterVectors runs HDBSCAN over document vectors. Documents that
// failed to embed (nil vector) stay unclustered.
func clusterVectors(vecs [][]float64, dim int) Result {
	// HDBSCAN needs a dense matrix; substitute zero vectors for nil and
	// remember which those were.
	pts := make([][]float64, len(vecs))
	missing := make([]bool, len(vecs))
	for i, v := range vecs {
		if v == nil {
			pts[i] = make([]float64, dim)
			missing[i] = true
		} else {
			pts[i] = v
		}
	}
	labels := cluster.HDBSCAN(pts, MinClusterSize)
	pred := make([]bool, len(vecs))
	for i := range labels {
		if missing[i] {
			labels[i] = -1
		}
		pred[i] = labels[i] >= 0
	}
	return Result{Pred: pred, Clusters: labels}
}

// Word2VecCl is the paper's Word2Vec-cl baseline.
func Word2VecCl(texts []string, cfg embed.Config) Result {
	docs := tokenizeAll(texts)
	m := embed.TrainWord2Vec(docs, cfg)
	vecs := make([][]float64, len(docs))
	for i, d := range docs {
		vecs[i] = m.DocVector(d)
	}
	return clusterVectors(vecs, m.Dim())
}

// FastTextCl is the paper's FastText-cl baseline.
func FastTextCl(texts []string, cfg embed.Config) Result {
	docs := tokenizeAll(texts)
	m := embed.TrainFastText(docs, cfg)
	vecs := make([][]float64, len(docs))
	for i, d := range docs {
		vecs[i] = m.DocVector(d)
	}
	return clusterVectors(vecs, m.Dim())
}

// Doc2VecCl is the paper's Doc2Vec-cl baseline.
func Doc2VecCl(texts []string, cfg embed.Config) Result {
	docs := tokenizeAll(texts)
	m := embed.TrainDoc2Vec(docs, cfg)
	vecs := make([][]float64, len(docs))
	for i := range docs {
		vecs[i] = m.DocVector(i)
	}
	return clusterVectors(vecs, m.Dim())
}
