package baselines

import (
	"math"
	"math/rand"

	"infoshield/internal/corpus"
)

// FeatureSet extracts a feature vector from a document's platform
// metadata. The three sets mirror the flavor of the paper's supervised
// baselines: BotOrNot uses everything, Yang et al. lean on account-level
// and graph-ish features, Ahmed & Abulaish on content-count statistics.
type FeatureSet struct {
	Name    string
	Extract func(d *corpus.Document) []float64
}

// BotOrNotFeatures uses the full metadata vector.
var BotOrNotFeatures = FeatureSet{
	Name: "botornot",
	Extract: func(d *corpus.Document) []float64 {
		m := meta(d)
		return []float64{
			float64(m.Retweets), float64(m.Favorites), float64(m.Mentions),
			float64(m.URLs), float64(m.Hashtags), m.FollowerRate,
			float64(m.AccountAge) / 365, math.Log1p(m.PostGapSecs),
		}
	},
}

// YangFeatures uses account-profile features.
var YangFeatures = FeatureSet{
	Name: "yang",
	Extract: func(d *corpus.Document) []float64 {
		m := meta(d)
		return []float64{
			m.FollowerRate, float64(m.AccountAge) / 365, math.Log1p(m.PostGapSecs),
		}
	},
}

// AhmedFeatures uses content-count statistics.
var AhmedFeatures = FeatureSet{
	Name: "ahmed",
	Extract: func(d *corpus.Document) []float64 {
		m := meta(d)
		return []float64{
			float64(m.URLs), float64(m.Hashtags), float64(m.Mentions),
			float64(m.Retweets),
		}
	},
}

func meta(d *corpus.Document) *corpus.Meta {
	if d.Meta != nil {
		return d.Meta
	}
	return &corpus.Meta{}
}

// LogReg is L2-regularized logistic regression trained by SGD — the
// from-scratch classifier under every supervised baseline.
type LogReg struct {
	W    []float64
	B    float64
	mean []float64
	std  []float64
}

// TrainLogReg fits a logistic regression on standardized features.
func TrainLogReg(features [][]float64, labels []bool, seed int64) *LogReg {
	if len(features) == 0 {
		return &LogReg{}
	}
	dim := len(features[0])
	lr := &LogReg{
		W:    make([]float64, dim),
		mean: make([]float64, dim),
		std:  make([]float64, dim),
	}
	// Standardize.
	for _, f := range features {
		for j, v := range f {
			lr.mean[j] += v
		}
	}
	for j := range lr.mean {
		lr.mean[j] /= float64(len(features))
	}
	for _, f := range features {
		for j, v := range f {
			d := v - lr.mean[j]
			lr.std[j] += d * d
		}
	}
	for j := range lr.std {
		lr.std[j] = math.Sqrt(lr.std[j] / float64(len(features)))
		if lr.std[j] == 0 {
			lr.std[j] = 1
		}
	}
	rng := rand.New(rand.NewSource(seed))
	const (
		epochs = 30
		eta    = 0.1
		lambda = 1e-4
	)
	idx := make([]int, len(features))
	for i := range idx {
		idx[i] = i
	}
	x := make([]float64, dim)
	for e := 0; e < epochs; e++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for _, i := range idx {
			lr.standardize(features[i], x)
			y := 0.0
			if labels[i] {
				y = 1
			}
			p := lr.prob(x)
			g := p - y
			for j := range lr.W {
				lr.W[j] -= eta * (g*x[j] + lambda*lr.W[j])
			}
			lr.B -= eta * g
		}
	}
	return lr
}

func (lr *LogReg) standardize(f, out []float64) {
	for j, v := range f {
		out[j] = (v - lr.mean[j]) / lr.std[j]
	}
}

func (lr *LogReg) prob(x []float64) float64 {
	z := lr.B
	for j, w := range lr.W {
		z += w * x[j]
	}
	if z > 30 {
		return 1
	}
	if z < -30 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

// Prob returns P(suspicious) for a raw feature vector.
func (lr *LogReg) Prob(f []float64) float64 {
	if len(lr.W) == 0 {
		return 0
	}
	x := make([]float64, len(f))
	lr.standardize(f, x)
	return lr.prob(x)
}

// SupervisedDetector pairs a feature set with a trained classifier.
type SupervisedDetector struct {
	Features FeatureSet
	Model    *LogReg
}

// TrainSupervised fits a detector on a labeled training corpus.
func TrainSupervised(train *corpus.Corpus, fs FeatureSet, seed int64) *SupervisedDetector {
	feats := make([][]float64, train.Len())
	labels := make([]bool, train.Len())
	for i := range train.Docs {
		feats[i] = fs.Extract(&train.Docs[i])
		labels[i] = train.Docs[i].Label
	}
	return &SupervisedDetector{Features: fs, Model: TrainLogReg(feats, labels, seed)}
}

// Run predicts on a test corpus (threshold 0.5). Supervised detectors do
// not produce clusters.
func (d *SupervisedDetector) Run(test *corpus.Corpus) Result {
	pred := make([]bool, test.Len())
	for i := range test.Docs {
		pred[i] = d.Model.Prob(d.Features.Extract(&test.Docs[i])) >= 0.5
	}
	return Result{Pred: pred}
}
