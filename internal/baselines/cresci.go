package baselines

import (
	"sort"

	"infoshield/internal/corpus"
)

// CresciDNA is an unsupervised account-level detector in the spirit of
// Cresci et al.'s DNA-inspired behavioral modeling: each account's tweet
// stream is encoded as a string over a small behavioral alphabet (what
// *kind* of tweet it was), and accounts whose behavioral strings share a
// long common substring with some other account are flagged as a spambot
// group. The original derives its length threshold from the knee of the
// LCS-vs-group-size curve; this implementation uses the simpler pairwise
// criterion LCS >= SimilarityFraction · min(len) (documented substitution,
// DESIGN.md §3).
type CresciDNA struct {
	// SimilarityFraction is the flagging threshold (default 0.8).
	SimilarityFraction float64
}

// dnaSymbol encodes one tweet's behavioral type.
func dnaSymbol(d *corpus.Document) byte {
	m := d.Meta
	if m == nil {
		return 'P'
	}
	switch {
	case m.URLs > 0:
		return 'U'
	case m.Mentions > 1:
		return 'M'
	case m.Hashtags > 1:
		return 'H'
	case m.Retweets > 2:
		return 'R'
	default:
		return 'P'
	}
}

// Run labels every document: a document is suspicious iff its account's
// behavioral DNA is near-duplicated by another account's. Cluster labels
// group accounts by their best-matching partner chain (union-find over
// flagged pairs).
func (c CresciDNA) Run(cp *corpus.Corpus) Result {
	frac := c.SimilarityFraction
	if frac == 0 {
		frac = 0.8
	}
	// Build per-account DNA strings, in deterministic account order.
	order := make([]string, 0)
	dna := make(map[string][]byte)
	for i := range cp.Docs {
		d := &cp.Docs[i]
		if _, ok := dna[d.Account]; !ok {
			order = append(order, d.Account)
		}
		dna[d.Account] = append(dna[d.Account], dnaSymbol(d))
	}
	sort.Strings(order)
	// Pairwise longest common substring; flag pairs above threshold.
	flagged := make(map[string]bool)
	group := make(map[string]int)
	next := 0
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			a, b := dna[order[i]], dna[order[j]]
			minLen := len(a)
			if len(b) < minLen {
				minLen = len(b)
			}
			if minLen == 0 {
				continue
			}
			if longestCommonSubstring(a, b) >= int(frac*float64(minLen)+0.5) {
				flagged[order[i]] = true
				flagged[order[j]] = true
				gi, iok := group[order[i]]
				gj, jok := group[order[j]]
				switch {
				case iok && jok:
					// Merge: relabel j's group to i's.
					for k, g := range group {
						if g == gj {
							group[k] = gi
						}
					}
				case iok:
					group[order[j]] = gi
				case jok:
					group[order[i]] = gj
				default:
					group[order[i]] = next
					group[order[j]] = next
					next++
				}
			}
		}
	}
	res := Result{
		Pred:     make([]bool, cp.Len()),
		Clusters: make([]int, cp.Len()),
	}
	for i := range cp.Docs {
		acct := cp.Docs[i].Account
		res.Pred[i] = flagged[acct]
		if g, ok := group[acct]; ok {
			res.Clusters[i] = g
		} else {
			res.Clusters[i] = -1
		}
	}
	return res
}

// longestCommonSubstring returns the length of the longest contiguous
// substring common to a and b (classic O(|a|·|b|) DP, rolling rows).
func longestCommonSubstring(a, b []byte) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	best := 0
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return best
}
