package baselines

import (
	"testing"

	"infoshield/internal/corpus"
	"infoshield/internal/datagen"
	"infoshield/internal/embed"
	"infoshield/internal/metrics"
)

// smallHT builds a small ad corpus with clear cluster structure.
func smallHT() *corpus.Corpus {
	return datagen.ClusterTrafficking(datagen.ClusterTraffickingConfig{Seed: 1, Scale: 0.002})
}

func truthOf(c *corpus.Corpus) []bool {
	truth := make([]bool, c.Len())
	for i := range c.Docs {
		truth[i] = c.Docs[i].Label
	}
	return truth
}

func TestWord2VecClBeatsChance(t *testing.T) {
	c := smallHT()
	res := Word2VecCl(c.Texts(), embed.Config{Dim: 24, Epochs: 4, Seed: 1})
	if len(res.Pred) != c.Len() || len(res.Clusters) != c.Len() {
		t.Fatalf("result sizes: %d/%d", len(res.Pred), len(res.Clusters))
	}
	conf := metrics.NewConfusion(res.Pred, truthOf(c))
	// The embedding baselines are weak (that is the paper's point) but
	// must beat chance on recall of the huge near-duplicate clusters.
	if conf.Recall() < 0.3 {
		t.Errorf("recall = %v, want >= 0.3 (conf %+v)", conf.Recall(), conf)
	}
}

func TestFastTextClRuns(t *testing.T) {
	c := smallHT()
	res := FastTextCl(c.Texts(), embed.Config{Dim: 16, Epochs: 3, Seed: 2})
	conf := metrics.NewConfusion(res.Pred, truthOf(c))
	if conf.Recall() < 0.3 {
		t.Errorf("recall = %v (conf %+v)", conf.Recall(), conf)
	}
}

func TestDoc2VecClRuns(t *testing.T) {
	c := smallHT()
	// PV-DBOW doc vectors couple only through shared output words, so on
	// tiny corpora HDBSCAN may legitimately find no stable clusters —
	// Doc2Vec-cl is the paper's weakest baseline too. Assert structure,
	// not strength.
	res := Doc2VecCl(c.Texts(), embed.Config{Dim: 16, Epochs: 40, Seed: 3})
	if len(res.Pred) != c.Len() || len(res.Clusters) != c.Len() {
		t.Fatalf("result sizes: %d/%d", len(res.Pred), len(res.Clusters))
	}
	for i, p := range res.Pred {
		if p != (res.Clusters[i] >= 0) {
			t.Fatalf("pred/cluster mismatch at %d", i)
		}
	}
}

func TestCresciDNASeparatesBots(t *testing.T) {
	c := datagen.Twitter(datagen.TwitterConfig{Seed: 4, GenuineAccounts: 30, BotAccounts: 30})
	res := CresciDNA{}.Run(c)
	conf := metrics.NewConfusion(res.Pred, truthOf(c))
	// Bots post URL-heavy streams with near-constant behavioral DNA;
	// the detector should catch most of them with decent precision.
	if conf.Recall() < 0.6 {
		t.Errorf("recall = %v (conf %+v)", conf.Recall(), conf)
	}
	if conf.Precision() < 0.6 {
		t.Errorf("precision = %v (conf %+v)", conf.Precision(), conf)
	}
}

func TestCresciDNADeterministic(t *testing.T) {
	c := datagen.Twitter(datagen.TwitterConfig{Seed: 5, GenuineAccounts: 10, BotAccounts: 10})
	a := CresciDNA{}.Run(c)
	b := CresciDNA{}.Run(c)
	for i := range a.Pred {
		if a.Pred[i] != b.Pred[i] || a.Clusters[i] != b.Clusters[i] {
			t.Fatal("non-deterministic")
		}
	}
}

func TestLongestCommonSubstring(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 0},
		{"abc", "abc", 3},
		{"xabcy", "zabcw", 3},
		{"aaaa", "aa", 2},
		{"abcdef", "defabc", 3},
	}
	for _, c := range cases {
		if got := longestCommonSubstring([]byte(c.a), []byte(c.b)); got != c.want {
			t.Errorf("LCS(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSupervisedDetectors(t *testing.T) {
	train := datagen.Twitter(datagen.TwitterConfig{Seed: 6, GenuineAccounts: 40, BotAccounts: 40})
	test := datagen.Twitter(datagen.TwitterConfig{Seed: 7, GenuineAccounts: 40, BotAccounts: 40})
	truth := truthOf(test)
	for _, fs := range []FeatureSet{BotOrNotFeatures, YangFeatures, AhmedFeatures} {
		det := TrainSupervised(train, fs, 1)
		res := det.Run(test)
		conf := metrics.NewConfusion(res.Pred, truth)
		if conf.F1() < 0.7 {
			t.Errorf("%s F1 = %v, want >= 0.7 (conf %+v)", fs.Name, conf.F1(), conf)
		}
	}
}

func TestLogRegLearnsLinearBoundary(t *testing.T) {
	// y = x0 > 5
	var feats [][]float64
	var labels []bool
	for i := 0; i < 200; i++ {
		x := float64(i % 11)
		feats = append(feats, []float64{x, 1})
		labels = append(labels, x > 5)
	}
	m := TrainLogReg(feats, labels, 1)
	correct := 0
	for i := range feats {
		if (m.Prob(feats[i]) >= 0.5) == labels[i] {
			correct++
		}
	}
	if correct < 190 {
		t.Errorf("accuracy %d/200", correct)
	}
}

func TestLogRegDegenerate(t *testing.T) {
	m := TrainLogReg(nil, nil, 1)
	if got := m.Prob([]float64{1, 2}); got != 0 {
		t.Errorf("empty model Prob = %v", got)
	}
	// Constant feature must not divide by zero.
	m = TrainLogReg([][]float64{{1}, {1}}, []bool{true, false}, 1)
	_ = m.Prob([]float64{1})
}

func TestTemplateMatchingBaseline(t *testing.T) {
	c := smallHT()
	res := TemplateMatching{}.Run(c.Texts())
	if len(res.Pred) != c.Len() || len(res.Clusters) != c.Len() {
		t.Fatalf("sizes %d/%d", len(res.Pred), len(res.Clusters))
	}
	conf := metrics.NewConfusion(res.Pred, truthOf(c))
	// Near-exact spam duplicates must be caught; HT slotted variation is
	// where shingle-Jaccard methods lose ground to alignment.
	if conf.Recall() < 0.5 {
		t.Errorf("recall = %v (conf %+v)", conf.Recall(), conf)
	}
	if conf.Precision() < 0.6 {
		t.Errorf("precision = %v (conf %+v)", conf.Precision(), conf)
	}
}

func TestTemplateMatchingDeterministic(t *testing.T) {
	c := smallHT()
	a := TemplateMatching{}.Run(c.Texts())
	b := TemplateMatching{}.Run(c.Texts())
	for i := range a.Pred {
		if a.Pred[i] != b.Pred[i] {
			t.Fatal("non-deterministic")
		}
	}
}
