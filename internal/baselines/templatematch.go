package baselines

import (
	"infoshield/internal/lsh"
	"infoshield/internal/tokenize"
)

// TemplateMatching is an unsupervised baseline in the spirit of Li et
// al.'s "unsupervised scalable text template matching" (IEEE Big Data
// 2018) — the first anti-HT clustering method, which the paper contrasts
// with in Table I ("interpretability of clusters is limited, and the
// algorithm isn't scalable"). This reconstruction: MinHash-LSH candidate
// groups over token shingles, kept when the group's average pairwise
// Jaccard estimate clears a threshold. No MDL, no slot detection — the
// two things InfoShield adds.
type TemplateMatching struct {
	// NumHashes is the MinHash signature length (default 128).
	NumHashes int
	// Bands is the LSH band count (default 32).
	Bands int
	// Shingle is the token-shingle width (default 3).
	Shingle int
	// MinJaccard keeps a group only if its members' mean estimated
	// similarity to the group's first member clears it (default 0.35 —
	// the kind of hand-tuned knob the paper's "parameter-free" row
	// criticizes).
	MinJaccard float64
	// Seed drives the hash family.
	Seed uint64
}

func (tm TemplateMatching) withDefaults() TemplateMatching {
	if tm.NumHashes == 0 {
		tm.NumHashes = 128
	}
	if tm.Bands == 0 {
		tm.Bands = 32
	}
	if tm.Shingle == 0 {
		tm.Shingle = 3
	}
	if tm.MinJaccard == 0 {
		tm.MinJaccard = 0.35
	}
	return tm
}

// Run clusters texts and returns per-document predictions and cluster
// labels (-1 = unclustered).
func (tm TemplateMatching) Run(texts []string) Result {
	tm = tm.withDefaults()
	var tk tokenize.Tokenizer
	m := lsh.NewMinHasher(tm.NumHashes, tm.Shingle, tm.Seed)
	sigs := m.Signatures(tk.All(texts, 0), 0)
	res := Result{
		Pred:     make([]bool, len(texts)),
		Clusters: make([]int, len(texts)),
	}
	for i := range res.Clusters {
		res.Clusters[i] = -1
	}
	next := 0
	for _, group := range lsh.Bands(sigs, tm.Bands) {
		// Verify the LSH candidates: keep members similar enough to the
		// group's first document.
		var kept []int
		for _, d := range group {
			if d == group[0] ||
				lsh.EstimateJaccard(sigs[group[0]], sigs[d]) >= tm.MinJaccard {
				kept = append(kept, d)
			}
		}
		if len(kept) < 2 {
			continue
		}
		for _, d := range kept {
			res.Pred[d] = true
			res.Clusters[d] = next
		}
		next++
	}
	return res
}
