package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"infoshield/internal/par"
	"infoshield/internal/tfidf"
)

// toyDocs is the paper's full toy example (Tables II and III).
var toyDocs = []string{
	"This is a great soap, and the 5 dollar price is great",
	"This is a great chair, and the 10 dollar price is great",
	"This is a great hat, and the 3 dollar price is great",
	"This is great blue pen, and the 3 dollar price is so good",
	"I made 30K working on this job - call 123-456.7890 or visit scam.com",
	"I made 30K working from home - call 123-456.7890 or visit fraud.com",
	"Happy birthday to my dear friend Mike",
}

// toyCorpus embeds the 7 toy docs in a background of singleton documents
// with all-unique words. The paper's expected outcome (T1 over docs 0-3,
// T2 over 4-5) assumes a realistically sized vocabulary: with only the 7
// docs, V ≈ 33 and MDL honestly refuses the marginal templates. The
// background docs cannot cluster (every phrase of theirs has df = 1) but
// they grow V to realistic size.
func toyCorpus() []string {
	docs := append([]string(nil), toyDocs...)
	for i := 0; i < 30; i++ {
		docs = append(docs, fmt.Sprintf(
			"bg%da bg%db bg%dc bg%dd bg%de bg%df bg%dg bg%dh", i, i, i, i, i, i, i, i))
	}
	return docs
}

func TestRunToyExample(t *testing.T) {
	res := Run(toyCorpus(), Options{})
	// Expect: docs 0-3 under one template, docs 4-5 under another,
	// doc 6 unclustered — the paper's expected outcome.
	sus := res.Suspicious()
	for i := 0; i <= 5; i++ {
		if !sus[i] {
			t.Errorf("doc %d should be in a template", i)
		}
	}
	if sus[6] {
		t.Error("doc 6 (birthday) should NOT be in a template")
	}
	for i := 7; i < len(sus); i++ {
		if sus[i] {
			t.Errorf("background doc %d should NOT be in a template", i)
		}
	}
	if res.DocTemplate[0] != res.DocTemplate[1] ||
		res.DocTemplate[1] != res.DocTemplate[2] {
		t.Errorf("docs 0-2 split across templates: %v", res.DocTemplate)
	}
	if res.DocTemplate[4] != res.DocTemplate[5] {
		t.Errorf("docs 4-5 split: %v", res.DocTemplate)
	}
	if res.DocTemplate[0] == res.DocTemplate[4] {
		t.Errorf("product and scam templates merged: %v", res.DocTemplate)
	}
	if got := res.NumTemplates(); got < 2 {
		t.Errorf("NumTemplates = %d, want >= 2", got)
	}
}

func TestRunToyDoc4Joins(t *testing.T) {
	// Doc #4 differs by a deletion, an insertion, and a substitution but
	// should still be encoded by T1 (paper, Example 2).
	res := Run(toyCorpus(), Options{})
	if res.DocTemplate[3] != res.DocTemplate[0] {
		t.Errorf("doc 4 not in T1: %v", res.DocTemplate)
	}
}

func TestRunEmptyAndTinyInputs(t *testing.T) {
	res := Run(nil, Options{})
	if res.NumTemplates() != 0 || len(res.Clusters) != 0 {
		t.Errorf("empty corpus: %+v", res)
	}
	res = Run([]string{"single document"}, Options{})
	if res.NumTemplates() != 0 {
		t.Error("one document cannot form a template")
	}
	res = Run([]string{"", "", ""}, Options{})
	if res.NumTemplates() != 0 {
		t.Error("empty texts cannot form templates")
	}
}

func TestRunExactDuplicates(t *testing.T) {
	docs := []string{
		"buy cheap pills online now visit pharma.example today",
		"buy cheap pills online now visit pharma.example today",
		"buy cheap pills online now visit pharma.example today",
		"the weather is nice in pittsburgh this afternoon really",
		"completely different text about gardening and tomato plants",
	}
	res := Run(docs, Options{})
	sus := res.Suspicious()
	if !sus[0] || !sus[1] || !sus[2] {
		t.Errorf("duplicates not clustered: %v", sus)
	}
	if sus[3] || sus[4] {
		t.Errorf("singletons wrongly clustered: %v", sus)
	}
	if len(res.Clusters) != 1 {
		t.Fatalf("clusters = %d, want 1", len(res.Clusters))
	}
	cl := res.Clusters[0]
	if cl.RelativeLength() >= 1 {
		t.Errorf("duplicate cluster relative length %v, want < 1", cl.RelativeLength())
	}
	if cl.RelativeLength() < cl.LowerBound(res.Vocab.Size()) {
		t.Errorf("relative length %v below lower bound %v",
			cl.RelativeLength(), cl.LowerBound(res.Vocab.Size()))
	}
}

func TestRunDeterministic(t *testing.T) {
	docs := toyCorpus()
	a := Run(docs, Options{})
	b := Run(docs, Options{})
	if !reflect.DeepEqual(a.DocTemplate, b.DocTemplate) {
		t.Errorf("non-deterministic: %v vs %v", a.DocTemplate, b.DocTemplate)
	}
}

func TestRunStarMSAAblation(t *testing.T) {
	res := Run(toyCorpus(), Options{UseStarMSA: true})
	sus := res.Suspicious()
	if !sus[0] || !sus[1] || !sus[2] {
		t.Errorf("star MSA misses the product cluster: %v", sus)
	}
}

func TestRunDisableSlotsAblation(t *testing.T) {
	res := Run(toyCorpus(), Options{DisableSlots: true})
	for i := range res.Clusters {
		for _, tr := range res.Clusters[i].Templates {
			if tr.Template.NumSlots() != 0 {
				t.Errorf("slots present despite DisableSlots")
			}
		}
	}
}

func TestCoarseGroupsBySharedPhrase(t *testing.T) {
	// Near-duplicates share a constant chunk long enough that the
	// documents' own unique-word phrases (df=1, which rank highest)
	// cannot tile over it — the realistic spam shape.
	shared := "alpha beta gamma delta epsilon zeta eta theta iota kappa lambda mu"
	docs := [][]string{
		strings.Fields("unique1a " + shared + " unique1b"),
		strings.Fields("unique2a " + shared + " unique2b"),
	}
	// Background singletons: with only a handful of documents, idf(df=2)
	// would fall under the relative selection floor and nothing could
	// ever connect — tiny corpora are out of the coarse pass's domain.
	for i := 0; i < 10; i++ {
		docs = append(docs, strings.Fields(fmt.Sprintf(
			"bgx%da bgx%db bgx%dc bgx%dd bgx%de bgx%df", i, i, i, i, i, i)))
	}
	clusters, _ := Coarse(docs, Options{})
	if len(clusters) != 1 {
		t.Fatalf("clusters = %v", clusters)
	}
	if !reflect.DeepEqual(clusters[0], []int{0, 1}) {
		t.Errorf("cluster = %v", clusters[0])
	}
}

func TestCoarseStrictRequiresMoreOverlap(t *testing.T) {
	shared := "red fox jumps over the lazy dog near the misty river bank"
	docs := [][]string{
		strings.Fields("aardvark1 " + shared + " zebra1"),
		strings.Fields("aardvark2 " + shared + " zebra2"),
	}
	for i := 0; i < 10; i++ {
		docs = append(docs, strings.Fields(fmt.Sprintf(
			"bgy%da bgy%db bgy%dc bgy%dd bgy%de bgy%df", i, i, i, i, i, i)))
	}
	permissive, _ := Coarse(docs, Options{})
	strict, _ := Coarse(docs, Options{MinSharedPhrases: 50})
	if len(permissive) == 0 {
		t.Error("permissive coarse should join docs 0,1")
	}
	if len(strict) != 0 {
		t.Errorf("strict coarse joined docs sharing few phrases: %v", strict)
	}
}

func TestClusterAccounting(t *testing.T) {
	res := Run(toyCorpus(), Options{})
	for ci := range res.Clusters {
		cl := &res.Clusters[ci]
		if cl.CostAfter >= cl.CostBefore {
			t.Errorf("cluster %d: accepted template did not compress (%v >= %v)",
				ci, cl.CostAfter, cl.CostBefore)
		}
		n := 0
		for _, tr := range cl.Templates {
			n += len(tr.Docs)
			if len(tr.Docs) < 2 {
				t.Errorf("template encodes %d < 2 docs", len(tr.Docs))
			}
		}
		if n != cl.NumDocs() {
			t.Errorf("cluster doc count %d != sum of template docs %d", cl.NumDocs(), n)
		}
	}
}

// Property: every accepted cluster compresses (relative length < 1) and
// respects its Lemma-1 lower bound, on randomized spam-like corpora.
func TestRunInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vocabulary := strings.Fields(
			"alpha bravo charlie delta echo foxtrot golf hotel india juliet kilo lima mike november oscar papa")
		var docs []string
		// Two spam campaigns of near-duplicates.
		for c := 0; c < 2; c++ {
			base := make([]string, 10)
			for i := range base {
				base[i] = vocabulary[rng.Intn(len(vocabulary))]
			}
			for k := 0; k < 4; k++ {
				dup := append([]string(nil), base...)
				if rng.Intn(2) == 0 {
					dup[rng.Intn(len(dup))] = fmt.Sprintf("fill%d", rng.Intn(9))
				}
				docs = append(docs, strings.Join(dup, " "))
			}
		}
		// Background singletons.
		for k := 0; k < 10; k++ {
			doc := make([]string, 8)
			for i := range doc {
				doc[i] = fmt.Sprintf("%s%d", vocabulary[rng.Intn(len(vocabulary))], rng.Intn(50))
			}
			docs = append(docs, strings.Join(doc, " "))
		}
		res := Run(docs, Options{})
		for i := range res.Clusters {
			cl := &res.Clusters[i]
			rl := cl.RelativeLength()
			if rl >= 1 {
				return false
			}
			if rl < cl.LowerBound(res.Vocab.Size())-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: DocTemplate is consistent with Clusters' doc lists.
func TestDocTemplateConsistency(t *testing.T) {
	res := Run(toyCorpus(), Options{})
	seen := make(map[int]int)
	tid := 0
	for i := range res.Clusters {
		for _, tr := range res.Clusters[i].Templates {
			for _, d := range tr.Docs {
				seen[d] = tid
			}
			tid++
		}
	}
	for d, want := range seen {
		if res.DocTemplate[d] != want {
			t.Errorf("doc %d template = %d, want %d", d, res.DocTemplate[d], want)
		}
	}
	for d, tmpl := range res.DocTemplate {
		if tmpl >= 0 {
			if _, ok := seen[d]; !ok {
				t.Errorf("doc %d labeled %d but in no cluster", d, tmpl)
			}
		}
	}
}

func TestRunLSHCoarseAblation(t *testing.T) {
	res := Run(toyCorpus(), Options{UseLSHCoarse: true})
	sus := res.Suspicious()
	// The exact-duplicate-heavy part of the toy must still be found; the
	// LSH coarse pass is shingle-based, so near-exact docs 0-2 group.
	if !sus[0] || !sus[1] || !sus[2] {
		t.Errorf("LSH coarse missed the product cluster: %v", sus[:7])
	}
	if sus[6] {
		t.Error("doc 6 wrongly clustered under LSH coarse")
	}
	for i := 7; i < len(sus); i++ {
		if sus[i] {
			t.Errorf("background doc %d clustered under LSH coarse", i)
		}
	}
}

func TestCoarseStrictJoinsExactDuplicates(t *testing.T) {
	// Exact duplicates select identical top phrases, so they clear any
	// small MinSharedPhrases threshold — exercising the canonicalized
	// pair counting of coarseStrict.
	doc := strings.Fields(
		"alpha beta gamma delta epsilon zeta eta theta iota kappa lambda mu nu xi omicron pi")
	docs := [][]string{doc, doc}
	for i := 0; i < 10; i++ {
		docs = append(docs, strings.Fields(fmt.Sprintf(
			"bgz%da bgz%db bgz%dc bgz%dd bgz%de bgz%df", i, i, i, i, i, i)))
	}
	clusters, _ := Coarse(docs, Options{MinSharedPhrases: 2})
	if len(clusters) != 1 || !reflect.DeepEqual(clusters[0], []int{0, 1}) {
		t.Errorf("strict(2) clusters = %v, want [[0 1]]", clusters)
	}
}

func TestRunWorkerInvariance(t *testing.T) {
	// The whole pipeline — tokenize, coarse, fine — must produce the
	// same Result for any worker count, including LSH and strict modes.
	docs := toyCorpus()
	for _, opt := range []Options{{}, {UseLSHCoarse: true}, {MinSharedPhrases: 2}} {
		o1 := opt
		o1.Workers = 1
		ref := Run(docs, o1)
		for _, w := range []int{2, 8} {
			ow := opt
			ow.Workers = w
			got := Run(docs, ow)
			if !reflect.DeepEqual(got.DocTemplate, ref.DocTemplate) {
				t.Errorf("opt %+v workers=%d: DocTemplate differs", opt, w)
			}
			if !reflect.DeepEqual(got.Clusters, ref.Clusters) {
				t.Errorf("opt %+v workers=%d: Clusters differ", opt, w)
			}
		}
	}
}

// TestFineNestedScreenDeterminism drives fineCluster's intra-cluster
// screening fan-out directly — the path Detect only reaches when a
// mega-cluster finds idle budget — and asserts the candidate verdicts
// joined from parallel index ranges reproduce the serial result exactly.
// The synthetic cluster shares one phrase across every document, so the
// first round screens n-1 neighbors, well past the fan-out threshold; the
// fresh budget guarantees TryAcquire grants extra workers.
func TestFineNestedScreenDeterminism(t *testing.T) {
	const n = 150
	base := []int{10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21}
	tokens := make([][]int, n)
	top := make([][]tfidf.PhraseID, n)
	docIDs := make([]int, n)
	hub := tfidf.PhraseID{Hash: 7}
	for d := 0; d < n; d++ {
		seq := append([]int(nil), base...)
		seq[4+d%3] = 1000 + d%5 // slot-like variation, still near-duplicates
		tokens[d] = seq
		top[d] = []tfidf.PhraseID{hub}
		docIDs[d] = d
	}
	const vocabSize = 5000

	serial, _ := fineCluster(docIDs, tokens, top, vocabSize, Options{}, &fineScratch{}, nil)
	budget := par.NewBudget(8) // all tokens idle: the fan-out must fire
	parallel, _ := fineCluster(docIDs, tokens, top, vocabSize, Options{}, &fineScratch{}, budget)

	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("fineCluster results differ between serial and fanned-out screening:\nserial:   %+v\nparallel: %+v",
			summarize(serial), summarize(parallel))
	}
	if len(serial) == 0 {
		t.Fatal("synthetic near-duplicate cluster produced no template; the gate is vacuous")
	}
}

func summarize(trs []TemplateResult) []string {
	var out []string
	for _, tr := range trs {
		out = append(out, fmt.Sprintf("docs=%v before=%v after=%v", tr.Docs, tr.CostBefore, tr.CostAfter))
	}
	return out
}
