package core

import (
	"fmt"
	"sort"

	"infoshield/internal/graph"
	"infoshield/internal/lsh"
	"infoshield/internal/tfidf"
)

// Coarse runs InfoShield-Coarse (Algorithm 1): tf-idf top-phrase
// extraction, the document–phrase bipartite graph, and connected
// components. It returns the candidate clusters (components with at least
// two documents) as slices of document indices, each sorted ascending,
// ordered by smallest member — plus each document's selected top phrases,
// which Fine reuses as its candidate-neighbor index.
func Coarse(words [][]string, opt Options) (clusters [][]int, top [][]string) {
	if opt.UseLSHCoarse {
		return coarseLSH(words)
	}
	ex := &tfidf.Extractor{MaxN: opt.MaxNgram, TopFraction: opt.TopFraction}
	top = ex.TopPhrases(words)
	if opt.MinSharedPhrases > 1 {
		return coarseStrict(top, len(words), opt.MinSharedPhrases), top
	}
	b := graph.NewBipartite(len(words))
	for d, phrases := range top {
		for _, p := range phrases {
			b.AddEdge(d, p)
		}
	}
	clusters = b.Clusters(2)
	for _, c := range clusters {
		sort.Ints(c)
	}
	return clusters, top
}

// coarseLSH is the alternative coarse pass: MinHash signatures over token
// 3-shingles with LSH banding, instead of the tf-idf phrase graph. Fine's
// neighbor index needs per-document "phrases", so every member of an LSH
// group carries the group's id as its single synthetic phrase — the whole
// group is mutually adjacent, which matches LSH's semantics (members are
// candidates because their shingle sets collide, not because of any one
// shared phrase).
func coarseLSH(words [][]string) (clusters [][]int, top [][]string) {
	// 2-shingles with 2-row bands: a near-duplicate pair at Jaccard ~0.4
	// (a couple of slot tokens changed in a tweet-length doc) still
	// collides with probability ~1-(1-J²)^64 ≈ 1. The tf-idf default is
	// more selective; LSH here is the recall-leaning alternative.
	m := lsh.NewMinHasher(128, 2, 0x1f05)
	sigs := make([][]uint64, len(words))
	for i, w := range words {
		sigs[i] = m.Signature(w)
	}
	clusters = lsh.Bands(sigs, 64)
	top = make([][]string, len(words))
	for gi, group := range clusters {
		sort.Ints(group)
		key := fmt.Sprintf("lsh-group-%d", gi)
		for _, d := range group {
			top[d] = []string{key}
		}
	}
	return clusters, top
}

// coarseStrict is the ablation variant: documents join only when they
// share at least minShared top phrases. It counts shared phrases per
// document pair, so it is quadratic in the size of each phrase's posting
// list; posting lists longer than postingCap are truncated to keep the
// ablation tractable (the paper's default path never does this).
func coarseStrict(top [][]string, numDocs, minShared int) [][]int {
	const postingCap = 256
	posting := make(map[string][]int)
	for d, phrases := range top {
		for _, p := range phrases {
			if len(posting[p]) < postingCap {
				posting[p] = append(posting[p], d)
			}
		}
	}
	type pair struct{ a, b int }
	shared := make(map[pair]int)
	uf := graph.NewUnionFind(numDocs)
	for _, docs := range posting {
		for i := 0; i < len(docs); i++ {
			for j := i + 1; j < len(docs); j++ {
				pr := pair{docs[i], docs[j]}
				shared[pr]++
				if shared[pr] == minShared {
					uf.Union(pr.a, pr.b)
				}
			}
		}
	}
	var clusters [][]int
	for _, comp := range uf.Components() {
		if len(comp) >= 2 {
			sort.Ints(comp)
			clusters = append(clusters, comp)
		}
	}
	return clusters
}
