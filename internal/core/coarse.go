package core

import (
	"sort"
	"time"

	"infoshield/internal/graph"
	"infoshield/internal/lsh"
	"infoshield/internal/tfidf"
	"infoshield/internal/tokenize"
)

// CoarseTimings breaks the coarse pass into its pipeline stages so the
// effect of the worker pool is measurable per stage. Tokenize covers
// word-splitting plus vocabulary encoding (filled in by Run; the Coarse
// convenience wrapper leaves it zero). Under UseLSHCoarse, Components
// covers signatures plus banding and the tf-idf stages stay zero.
type CoarseTimings struct {
	Tokenize   time.Duration // word split + vocab encode
	Extract    time.Duration // phrase sets + sharded DF counting
	Score      time.Duration // tf-idf scoring and top-phrase selection
	Components time.Duration // phrase graph + connected components (or LSH)
}

// Coarse runs InfoShield-Coarse (Algorithm 1): tf-idf top-phrase
// extraction, the document–phrase bipartite graph, and connected
// components. It returns the candidate clusters (components with at least
// two documents) as slices of document indices, each sorted ascending,
// ordered by smallest member — plus each document's selected top phrases,
// which Fine reuses as its candidate-neighbor index.
//
// Coarse is the self-contained form (it interns the words itself); Run
// calls coarseEncoded with the corpus vocabulary it already built.
func Coarse(words [][]string, opt Options) (clusters [][]int, top [][]tfidf.PhraseID) {
	vocab := tokenize.NewVocab()
	tokens := make([][]int, len(words))
	for i, w := range words {
		tokens[i] = vocab.Encode(w)
	}
	clusters, top, _ = coarseEncoded(words, tokens, vocab, opt)
	return clusters, top
}

// coarseEncoded is Coarse over a pre-encoded corpus. words back the LSH
// variant; tokens and vocab back the tf-idf variant.
func coarseEncoded(words [][]string, tokens [][]int, vocab *tokenize.Vocab, opt Options) (clusters [][]int, top [][]tfidf.PhraseID, t CoarseTimings) {
	if opt.UseLSHCoarse {
		return coarseLSH(words, opt)
	}
	ex := &tfidf.Extractor{MaxN: opt.MaxNgram, TopFraction: opt.TopFraction, Workers: opt.Workers}
	sel := ex.TopPhraseIDs(tokens, vocab)
	top = sel.Top
	t.Extract, t.Score = sel.Extract, sel.Score
	start := time.Now()
	if opt.MinSharedPhrases > 1 {
		clusters = coarseStrict(top, len(words), opt.MinSharedPhrases)
		t.Components = time.Since(start)
		return clusters, top, t
	}
	b := graph.NewBipartite[tfidf.PhraseID](len(words))
	for d, phrases := range top {
		for _, p := range phrases {
			b.AddEdge(d, p)
		}
	}
	clusters = b.Clusters(2)
	for _, c := range clusters {
		sort.Ints(c)
	}
	t.Components = time.Since(start)
	return clusters, top, t
}

// coarseLSH is the alternative coarse pass: MinHash signatures over token
// 3-shingles with LSH banding, instead of the tf-idf phrase graph. Fine's
// neighbor index needs per-document "phrases", so every member of an LSH
// group carries the group's id as its single synthetic phrase — the whole
// group is mutually adjacent, which matches LSH's semantics (members are
// candidates because their shingle sets collide, not because of any one
// shared phrase).
func coarseLSH(words [][]string, opt Options) (clusters [][]int, top [][]tfidf.PhraseID, t CoarseTimings) {
	start := time.Now()
	// 2-shingles with 2-row bands: a near-duplicate pair at Jaccard ~0.4
	// (a couple of slot tokens changed in a tweet-length doc) still
	// collides with probability ~1-(1-J²)^64 ≈ 1. The tf-idf default is
	// more selective; LSH here is the recall-leaning alternative.
	m := lsh.NewMinHasher(128, 2, 0x1f05)
	sigs := m.Signatures(words, opt.workers())
	clusters = lsh.Bands(sigs, 64)
	top = make([][]tfidf.PhraseID, len(words))
	for gi, group := range clusters {
		sort.Ints(group)
		key := tfidf.PhraseID{Hash: uint64(gi)}
		for _, d := range group {
			top[d] = []tfidf.PhraseID{key}
		}
	}
	t.Components = time.Since(start)
	return clusters, top, t
}

// coarseStrict is the ablation variant: documents join only when they
// share at least minShared top phrases. It counts shared phrases per
// document pair, so it is quadratic in the size of each phrase's posting
// list; posting lists longer than postingCap are truncated to keep the
// ablation tractable (the paper's default path never does this).
func coarseStrict(top [][]tfidf.PhraseID, numDocs, minShared int) [][]int {
	const postingCap = 256
	posting := make(map[tfidf.PhraseID][]int)
	for d, phrases := range top {
		for _, p := range phrases {
			if len(posting[p]) < postingCap {
				posting[p] = append(posting[p], d)
			}
		}
	}
	type pair struct{ a, b int }
	shared := make(map[pair]int)
	uf := graph.NewUnionFind(numDocs)
	for _, docs := range posting {
		for i := 0; i < len(docs); i++ {
			for j := i + 1; j < len(docs); j++ {
				pr := pair{docs[i], docs[j]}
				// Posting lists are appended in document order today, but
				// canonicalize anyway: an unordered pair must never split
				// into two map entries if construction ever reorders.
				if pr.a > pr.b {
					pr.a, pr.b = pr.b, pr.a
				}
				shared[pr]++
				if shared[pr] == minShared {
					uf.Union(pr.a, pr.b)
				}
			}
		}
	}
	var clusters [][]int
	for _, comp := range uf.Components() {
		if len(comp) >= 2 {
			sort.Ints(comp)
			clusters = append(clusters, comp)
		}
	}
	return clusters
}
