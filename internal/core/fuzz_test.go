package core

import (
	"strings"
	"testing"
)

// FuzzRun drives the whole pipeline with arbitrary document sets built
// from a fuzzer-controlled byte string: it must never panic, and its
// invariants (template size >= 2, costs compress, relative length above
// the Lemma-1 bound) must hold on whatever falls out.
func FuzzRun(f *testing.F) {
	f.Add("doc one|doc one|doc two different|and another unrelated thing")
	f.Add("a a a a|a a a a|b b b|")
	f.Add("x")
	f.Add("同じ文|同じ文|違う文です")
	f.Fuzz(func(t *testing.T, blob string) {
		docs := strings.Split(blob, "|")
		if len(docs) > 64 {
			docs = docs[:64]
		}
		for i, d := range docs {
			if len(d) > 400 {
				docs[i] = d[:400]
			}
		}
		res := Run(docs, Options{Workers: 1})
		V := res.Vocab.Size()
		for i := range res.Clusters {
			cl := &res.Clusters[i]
			if cl.CostAfter >= cl.CostBefore {
				t.Fatalf("accepted cluster does not compress: %v >= %v",
					cl.CostAfter, cl.CostBefore)
			}
			if rl := cl.RelativeLength(); rl < cl.LowerBound(V)-1e-9 {
				t.Fatalf("relative length %v below bound %v", rl, cl.LowerBound(V))
			}
			for _, tr := range cl.Templates {
				if len(tr.Docs) < 2 {
					t.Fatalf("template with %d docs", len(tr.Docs))
				}
				for _, d := range tr.Docs {
					if d < 0 || d >= len(docs) {
						t.Fatalf("doc index %d out of range", d)
					}
				}
			}
		}
		if len(res.DocTemplate) != len(docs) {
			t.Fatalf("DocTemplate length %d != %d", len(res.DocTemplate), len(docs))
		}
	})
}
