package core

import (
	"sort"
	"time"

	"infoshield/internal/align"
	"infoshield/internal/par"
	"infoshield/internal/poa"
	"infoshield/internal/template"
	"infoshield/internal/tfidf"
)

// FineTimings breaks the fine pass into its stages, symmetric to
// CoarseTimings: candidate screening (overlap bound + conditional
// alignment), MSA construction, consensus search, and slot detection.
// Durations are summed across concurrent cluster workers, so with
// Workers > 1 they measure aggregate CPU time and may exceed the fine
// pass's wall clock.
type FineTimings struct {
	Screen    time.Duration // neighbor collection, overlap bound, C(d|d1) test
	Align     time.Duration // POA / star MSA construction
	Consensus time.Duration // consensus search (Algorithm 2)
	Slots     time.Duration // slot detection (Algorithm 3)
}

func (t *FineTimings) add(o FineTimings) {
	t.Screen += o.Screen
	t.Align += o.Align
	t.Consensus += o.Consensus
	t.Slots += o.Slots
}

// screenChunk is the minimum number of neighbors a screening worker must
// have to be worth borrowing: below it the fan-out bookkeeping costs more
// than the O(l²) alignments it parallelizes.
const screenChunk = 32

// fineScratch bundles every buffer the fine pass reuses across rounds and
// clusters: the pairwise-DP scratch, the POA graph's DP/topology buffers,
// the sorted-token arena behind the overlap screen, and the small
// per-round slices. One fineScratch is owned by one pool worker; the
// screening fan-out hands each borrowed worker its own align.Scratch from
// the screen slice. The zero value is ready to use.
type fineScratch struct {
	align      align.Scratch   // serial screen path
	poa        poa.Scratch     // POA DP + column ordering
	screen     []align.Scratch // per-worker scratches for the parallel screen
	arena      []int           // backing store for sorted
	sorted     [][]int         // sorted[i]: ascending copy of doc i's tokens
	alive      []bool
	stamp      []int
	saCost     []float64 // memoized standalone costs C(d), per local index
	neigh      []int
	candidates []int
	members    []int
	seqs       [][]int
	verdict    []bool
}

func growInts(p *[]int, n int) []int {
	if cap(*p) < n {
		*p = make([]int, n)
	}
	*p = (*p)[:n]
	return *p
}

func growBools(p *[]bool, n int) []bool {
	if cap(*p) < n {
		*p = make([]bool, n)
	}
	*p = (*p)[:n]
	return *p
}

func growFloats(p *[]float64, n int) []float64 {
	if cap(*p) < n {
		*p = make([]float64, n)
	}
	*p = (*p)[:n]
	return *p
}

func growSeqs(p *[][]int, n int) [][]int {
	if cap(*p) < n {
		*p = make([][]int, n)
	}
	*p = (*p)[:n]
	return *p
}

func growScratches(p *[]align.Scratch, n int) []align.Scratch {
	for len(*p) < n {
		*p = append(*p, align.Scratch{})
	}
	return (*p)[:n]
}

// Fine runs InfoShield-Fine (Algorithm 4) on one coarse cluster: repeat
// {candidate alignment → consensus search → slot detection → MDL
// acceptance} until the cluster is exhausted. docIDs are corpus document
// indices (ascending); tokens the whole corpus's token-id sequences; top
// the per-document selected phrases from the coarse pass; vocabSize the
// paper's V.
//
// Fine is the standalone convenience; Refine runs it across clusters on a
// worker pool with shared scratch and a nested-parallelism budget.
func Fine(docIDs []int, tokens [][]int, top [][]tfidf.PhraseID, vocabSize int, opt Options) []TemplateResult {
	out, _ := fineCluster(docIDs, tokens, top, vocabSize, opt, &fineScratch{}, nil)
	return out
}

// fineCluster is Fine with caller-owned scratch and an optional borrowed
// parallelism budget for the candidate screen.
//
// Candidate scans are restricted to d1's phrase-graph neighbors: only
// documents sharing a selected top phrase with d1 are tested against
// C(d|d1) < C(d). Documents the coarse graph deems unrelated essentially
// never pass the MDL test (they share no important phrase), and the
// restriction is what keeps Fine sub-quadratic on large heterogeneous
// coarse components — the Σ k·S·log(S)·l² complexity of Lemma 2 assumes
// exactly this kind of homogeneous candidate pool.
func fineCluster(docIDs []int, tokens [][]int, top [][]tfidf.PhraseID, vocabSize int, opt Options, sc *fineScratch, nested *par.Budget) ([]TemplateResult, FineTimings) {
	var out []TemplateResult
	var t FineTimings
	n := len(docIDs)
	// Posting lists over cluster-local indices, plus sorted token copies
	// (packed into one arena) for the allocation-free overlap screen, plus
	// each document's standalone cost C(d) — the screen re-tests the same
	// neighbor against it every round, so it is computed exactly once.
	postings := make(map[tfidf.PhraseID][]int, n)
	arenaLen := 0
	for _, d := range docIDs {
		arenaLen += len(tokens[d])
	}
	arena := growInts(&sc.arena, arenaLen)
	sorted := growSeqs(&sc.sorted, n)
	saCost := growFloats(&sc.saCost, n)
	off := 0
	for i, d := range docIDs {
		s := arena[off : off+len(tokens[d]) : off+len(tokens[d])]
		off += len(tokens[d])
		copy(s, tokens[d])
		align.SortInts(s)
		sorted[i] = s
		saCost[i] = align.StandaloneCost(tokens[d], vocabSize)
		for _, p := range top[d] {
			postings[p] = append(postings[p], i)
		}
	}
	alive := growBools(&sc.alive, n)
	for i := range alive {
		alive[i] = true
	}
	stamp := growInts(&sc.stamp, n)
	for i := range stamp {
		stamp[i] = 0
	}
	round := 0
	head := 0
	for {
		for head < n && !alive[head] {
			head++
		}
		if head >= n {
			break
		}
		i1 := head
		d1 := docIDs[i1]
		alive[i1] = false
		seed := tokens[d1]
		if len(seed) == 0 {
			continue
		}
		round++
		screenStart := time.Now()
		// Collect d1's live phrase-graph neighbors, ascending.
		neigh := sc.neigh[:0]
		for _, p := range top[d1] {
			for _, j := range postings[p] {
				if j != i1 && alive[j] && stamp[j] != round {
					stamp[j] = round
					neigh = append(neigh, j)
				}
			}
		}
		sort.Ints(neigh)
		sc.neigh = neigh
		// Candidate alignment (Algorithm 4): every neighbor that
		// compresses against d1 joins, in document order. An O(l)
		// token-overlap bound screens before the O(l²) alignment. With
		// enough neighbors and idle budget, the per-neighbor verdicts fan
		// out over contiguous index ranges — each verdict is a pure
		// function of (seed, neighbor), and the join below reads them in
		// ascending index order, so the candidate set is identical for
		// any worker count.
		candidates := append(sc.candidates[:0], d1)
		members := sc.members[:0]
		screened := false
		if nested != nil && len(neigh) >= 2*screenChunk {
			if extra := nested.TryAcquire(len(neigh)/screenChunk - 1); extra > 0 {
				workers := extra + 1
				verdict := growBools(&sc.verdict, len(neigh))
				screen := growScratches(&sc.screen, workers)
				par.IndexedRanges(len(neigh), workers, func(w, lo, hi int) {
					wsc := &screen[w]
					for k := lo; k < hi; k++ {
						j := neigh[k]
						verdict[k] = screenVerdict(seed, sorted[i1], tokens[docIDs[j]], sorted[j], saCost[j], vocabSize, wsc)
					}
				})
				nested.Release(extra)
				for k, j := range neigh {
					if verdict[k] {
						candidates = append(candidates, docIDs[j])
						members = append(members, j)
					}
				}
				screened = true
			}
		}
		if !screened {
			for _, j := range neigh {
				if screenVerdict(seed, sorted[i1], tokens[docIDs[j]], sorted[j], saCost[j], vocabSize, &sc.align) {
					candidates = append(candidates, docIDs[j])
					members = append(members, j)
				}
			}
		}
		sc.candidates, sc.members = candidates, members
		t.Screen += time.Since(screenStart)
		if len(candidates) < 2 {
			// A template must encode at least two documents; d1 is noise.
			continue
		}
		// Candidates leave the pool either way ("treat Di as noise").
		for _, j := range members {
			alive[j] = false
		}
		alignStart := time.Now()
		matrix := buildMSA(candidates, tokens, opt, sc)
		t.Align += time.Since(alignStart)
		numTemplates := len(out) + 1
		consensusStart := time.Now()
		fit := template.ConsensusSearch(matrix, numTemplates, vocabSize)
		t.Consensus += time.Since(consensusStart)
		if !opt.DisableSlots {
			slotStart := time.Now()
			fit.DetectSlots(numTemplates, vocabSize)
			t.Slots += time.Since(slotStart)
		}
		// Acceptance (Algorithm 4): keep the template iff the total cost
		// drops, i.e. encoding the candidates with the template is cheaper
		// than leaving them standalone.
		before := saCost[i1]
		for _, j := range members {
			before += saCost[j]
		}
		after := fit.TotalCost(numTemplates, vocabSize)
		if after < before && fit.Len() > 0 {
			out = append(out, TemplateResult{
				Template:   fit.Template(),
				Docs:       append([]int(nil), candidates...),
				Fit:        fit,
				CostBefore: before,
				CostAfter:  after,
			})
		}
	}
	return out, t
}

// screenVerdict is the per-neighbor candidate test: the O(l) overlap
// bound, then the O(l²) conditional alignment only when the bound cannot
// rule the neighbor out. sa is the neighbor's memoized standalone cost.
func screenVerdict(seed, sortedSeed, toks, sortedDoc []int, sa float64, vocabSize int, sc *align.Scratch) bool {
	if len(toks) == 0 {
		return false
	}
	bound := align.ConditionalLowerBound(
		len(seed), len(toks), align.OverlapSorted(sortedSeed, sortedDoc), vocabSize)
	return bound < sa && align.ConditionalCostScratch(seed, toks, vocabSize, sc) < sa
}

// buildMSA aligns the candidate documents with the configured MSA method,
// reusing the scratch's sequence-header buffer and POA buffers.
func buildMSA(candidates []int, tokens [][]int, opt Options, sc *fineScratch) *align.Matrix {
	seqs := growSeqs(&sc.seqs, len(candidates))
	for i, d := range candidates {
		seqs[i] = tokens[d]
	}
	if opt.UseStarMSA {
		return align.Star(seqs)
	}
	return poa.BuildWith(&sc.poa, seqs)
}
