package core

import (
	"sort"

	"infoshield/internal/align"
	"infoshield/internal/mdl"
	"infoshield/internal/poa"
	"infoshield/internal/template"
	"infoshield/internal/tfidf"
)

// Fine runs InfoShield-Fine (Algorithm 4) on one coarse cluster: repeat
// {candidate alignment → consensus search → slot detection → MDL
// acceptance} until the cluster is exhausted. docIDs are corpus document
// indices (ascending); tokens the whole corpus's token-id sequences; top
// the per-document selected phrases from the coarse pass; vocabSize the
// paper's V.
//
// Candidate scans are restricted to d1's phrase-graph neighbors: only
// documents sharing a selected top phrase with d1 are tested against
// C(d|d1) < C(d). Documents the coarse graph deems unrelated essentially
// never pass the MDL test (they share no important phrase), and the
// restriction is what keeps Fine sub-quadratic on large heterogeneous
// coarse components — the Σ k·S·log(S)·l² complexity of Lemma 2 assumes
// exactly this kind of homogeneous candidate pool.
func Fine(docIDs []int, tokens [][]int, top [][]tfidf.PhraseID, vocabSize int, opt Options) []TemplateResult {
	var out []TemplateResult
	n := len(docIDs)
	// Posting lists over cluster-local indices, plus sorted token copies
	// for the allocation-free overlap screen.
	postings := make(map[tfidf.PhraseID][]int)
	sorted := make([][]int, n)
	for i, d := range docIDs {
		sorted[i] = align.SortedCopy(tokens[d])
		for _, p := range top[d] {
			postings[p] = append(postings[p], i)
		}
	}
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	stamp := make([]int, n)
	round := 0
	head := 0
	for {
		for head < n && !alive[head] {
			head++
		}
		if head >= n {
			break
		}
		i1 := head
		d1 := docIDs[i1]
		alive[i1] = false
		seed := tokens[d1]
		if len(seed) == 0 {
			continue
		}
		round++
		// Collect d1's live phrase-graph neighbors, ascending.
		var neigh []int
		for _, p := range top[d1] {
			for _, j := range postings[p] {
				if j != i1 && alive[j] && stamp[j] != round {
					stamp[j] = round
					neigh = append(neigh, j)
				}
			}
		}
		sort.Ints(neigh)
		// Candidate alignment (Algorithm 4): every neighbor that
		// compresses against d1 joins, in document order. An O(l)
		// token-overlap bound screens before the O(l²) alignment.
		candidates := []int{d1}
		var members []int // local indices of joined docs
		for _, j := range neigh {
			toks := tokens[docIDs[j]]
			if len(toks) == 0 {
				continue
			}
			standalone := align.StandaloneCost(toks, vocabSize)
			bound := align.ConditionalLowerBound(
				len(seed), len(toks), align.OverlapSorted(sorted[i1], sorted[j]), vocabSize)
			if bound < standalone &&
				align.ConditionalCost(seed, toks, vocabSize) < standalone {
				candidates = append(candidates, docIDs[j])
				members = append(members, j)
			}
		}
		if len(candidates) < 2 {
			// A template must encode at least two documents; d1 is noise.
			continue
		}
		// Candidates leave the pool either way ("treat Di as noise").
		for _, j := range members {
			alive[j] = false
		}
		matrix := buildMSA(candidates, tokens, opt)
		numTemplates := len(out) + 1
		fit := template.ConsensusSearch(matrix, numTemplates, vocabSize)
		if !opt.DisableSlots {
			fit.DetectSlots(numTemplates, vocabSize)
		}
		// Acceptance (Algorithm 4): keep the template iff the total cost
		// drops, i.e. encoding the candidates with the template is cheaper
		// than leaving them standalone.
		before := 0.0
		for _, d := range candidates {
			before += mdl.DocCost(len(tokens[d]), vocabSize)
		}
		after := fit.TotalCost(numTemplates, vocabSize)
		if after < before && fit.Len() > 0 {
			out = append(out, TemplateResult{
				Template:   fit.Template(),
				Docs:       candidates,
				Fit:        fit,
				CostBefore: before,
				CostAfter:  after,
			})
		}
	}
	return out
}

// buildMSA aligns the candidate documents with the configured MSA method.
func buildMSA(candidates []int, tokens [][]int, opt Options) *align.Matrix {
	seqs := make([][]int, len(candidates))
	for i, d := range candidates {
		seqs[i] = tokens[d]
	}
	if opt.UseStarMSA {
		return align.Star(seqs)
	}
	return poa.Build(seqs)
}
