// Package core is InfoShield itself: the scalable coarse clustering pass
// (Algorithm 1) followed by the MDL template-mining fine pass (Algorithm
// 4) over each coarse cluster, producing micro-clusters, templates with
// slots, and compression diagnostics.
package core

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"infoshield/internal/mdl"
	"infoshield/internal/par"
	"infoshield/internal/template"
	"infoshield/internal/tfidf"
	"infoshield/internal/tokenize"
)

// Options configures a run. The zero value reproduces the paper's
// parameter-free defaults; the remaining knobs exist for ablations and
// benchmarks, not for tuning.
type Options struct {
	// MaxNgram caps the coarse pass's tf-idf n-grams (default 5).
	MaxNgram int
	// TopFraction is the fraction of each document's phrases kept in the
	// coarse pass (default 0.10).
	TopFraction float64
	// MinSharedPhrases is the number of top phrases two documents must
	// share to be joined in the coarse graph (default 1 — the paper's
	// permissive setting; >1 is the strictness ablation).
	MinSharedPhrases int
	// UseLSHCoarse swaps the tf-idf phrase graph for MinHash-LSH banding
	// in the coarse pass (ablation; the paper notes Coarse is replaceable
	// by "similar algorithms achieving the same end goal", Advantage 2).
	UseLSHCoarse bool
	// UseStarMSA swaps Partial Order Alignment for the cheaper star MSA
	// (ablation; the paper notes Fine works with any MSA).
	UseStarMSA bool
	// DisableSlots turns slot detection off (ablation).
	DisableSlots bool
	// Workers bounds the worker pool for every parallel stage of the
	// pipeline — tokenization, phrase extraction and scoring, LSH
	// signatures, and concurrent cluster refinement (default:
	// GOMAXPROCS). Any value produces identical output.
	Workers int
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// TemplateResult is one discovered template with the documents it encodes.
type TemplateResult struct {
	// Template is the frozen constant/slot sequence.
	Template template.Template
	// Docs are corpus document indices encoded by the template, in the
	// order they were aligned (Docs[i] corresponds to Fit row i).
	Docs []int
	// Fit retains the alignment and slot assignment for visualization
	// and cost queries.
	Fit *template.Fit
	// CostBefore is the standalone cost of Docs; CostAfter the cost with
	// this template (its model share plus data cost).
	CostBefore, CostAfter float64
}

// Cluster is one refined coarse cluster holding at least one template.
type Cluster struct {
	// Templates discovered inside this coarse cluster.
	Templates []TemplateResult
	// Docs is the union of the template document sets.
	Docs []int
	// CostBefore/CostAfter aggregate the member templates.
	CostBefore, CostAfter float64
}

// NumDocs returns the number of documents the cluster's templates encode.
func (c *Cluster) NumDocs() int { return len(c.Docs) }

// RelativeLength is the cluster's Eq. 7 compression quality.
func (c *Cluster) RelativeLength() float64 {
	return mdl.RelativeLength(c.CostAfter, c.CostBefore)
}

// LowerBound is the cluster's Lemma 1 bound given the vocabulary size.
func (c *Cluster) LowerBound(vocabSize int) float64 {
	return mdl.LowerBound(len(c.Templates), len(c.Docs), vocabSize)
}

// Result is the full output of a run.
type Result struct {
	// Vocab is the corpus vocabulary (V = Vocab.Size()).
	Vocab *tokenize.Vocab
	// Tokens[i] is document i's token-id sequence.
	Tokens [][]int
	// Clusters are the refined micro-clusters, in deterministic order.
	Clusters []Cluster
	// DocTemplate[i] is the global template index encoding document i, or
	// -1. Template indices follow Clusters order.
	DocTemplate []int
	// CoarseClusters counts the candidate clusters the coarse pass made.
	CoarseClusters int
	// CoarseDuration and FineDuration time the two pipeline stages
	// (tokenization is counted in CoarseDuration).
	CoarseDuration, FineDuration time.Duration
	// CoarseStages breaks CoarseDuration into its parallel sub-stages
	// (tokenize / extract / score / components).
	CoarseStages CoarseTimings
	// FineStages breaks FineDuration into its sub-stages (screen / align
	// / consensus / slots), summed across concurrent cluster workers.
	FineStages FineTimings
}

// NumTemplates returns the total template count across clusters.
func (r *Result) NumTemplates() int {
	n := 0
	for i := range r.Clusters {
		n += len(r.Clusters[i].Templates)
	}
	return n
}

// Suspicious returns the per-document binary prediction: true when the
// document is encoded by some template. This is the labeling the paper
// uses for precision/recall.
func (r *Result) Suspicious() []bool {
	out := make([]bool, len(r.DocTemplate))
	for i, t := range r.DocTemplate {
		out[i] = t >= 0
	}
	return out
}

// Run executes the full InfoShield pipeline over raw document texts.
//
// The front half is parallel in two phases that keep the output
// byte-identical to a serial run: word-splitting fans out over
// opt.workers() goroutines (the tokenizer is stateless), then vocabulary
// encoding replays the documents in order so token ids keep their
// first-seen assignment. Phrase extraction and scoring parallelize inside
// coarseEncoded; cluster refinement parallelizes per coarse cluster.
func Run(texts []string, opt Options) *Result {
	var tk tokenize.Tokenizer
	return RunTokens(texts, tk.All(texts, opt.workers()), opt)
}

// RunTokens is Run over pre-tokenized documents: words[i] must be the
// package tokenizer's stream for texts[i]. Callers that already hold the
// token streams — the streaming detector buffers the tokens it encoded
// at ingest time — skip the tokenization stage entirely; because the
// tokenizer is a pure function of the text, the results are
// byte-identical to Run.
func RunTokens(texts []string, words [][]string, opt Options) *Result {
	start := time.Now()
	vocab := tokenize.NewVocab()
	tokens := make([][]int, len(texts))
	for i, w := range words {
		tokens[i] = vocab.Encode(w)
	}
	res := &Result{
		Vocab:       vocab,
		Tokens:      tokens,
		DocTemplate: make([]int, len(texts)),
	}
	for i := range res.DocTemplate {
		res.DocTemplate[i] = -1
	}
	tokenizeDone := time.Now()

	coarse, top, stages := coarseEncoded(words, tokens, vocab, opt)
	stages.Tokenize = tokenizeDone.Sub(start)
	res.CoarseStages = stages
	res.CoarseClusters = len(coarse)
	res.CoarseDuration = time.Since(start)
	fineStart := time.Now()

	refined, fineStages := Refine(coarse, tokens, top, vocab.Size(), opt)
	res.FineStages = fineStages
	res.FineDuration = time.Since(fineStart)

	res.mergeRefined(refined)
	return res
}

// Refine runs Fine over every coarse cluster on a bounded worker pool and
// returns the per-cluster template lists (indexed like coarse) plus the
// aggregated stage timings.
//
// Scheduling is straggler-aware without affecting output: exactly
// min(Workers, clusters) goroutines pull clusters largest-first from a
// size-sorted queue — no goroutine-per-cluster fan-out, so the goroutine
// count stays O(Workers) however many clusters the coarse pass produced —
// and results land in refined[ci], keyed by cluster index, so the merge
// order is deterministic regardless of which worker ran what. A shared
// par.Budget caps total parallelism at Workers: each pool worker holds
// one token while it works and returns it when the queue drains, letting
// a straggling mega-cluster borrow the idle capacity for its candidate-
// screening fan-out (fineCluster's verdicts are worker-count-invariant,
// so borrowed workers change wall clock, never results).
func Refine(coarse [][]int, tokens [][]int, top [][]tfidf.PhraseID, vocabSize int, opt Options) ([][]TemplateResult, FineTimings) {
	refined := make([][]TemplateResult, len(coarse))
	var total FineTimings
	if len(coarse) == 0 {
		return refined, total
	}
	// Largest-first queue: the biggest cluster dominates fine wall clock
	// (Lemma 2's Σ k·S·log S·l² is cluster-size-skewed on real corpora),
	// so it must start first, not land on whichever worker frees up last.
	order := make([]int, len(coarse))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := order[a], order[b]
		if len(coarse[ca]) != len(coarse[cb]) {
			return len(coarse[ca]) > len(coarse[cb])
		}
		return ca < cb
	})
	workers := opt.workers()
	if workers > len(coarse) {
		workers = len(coarse)
	}
	if workers == 1 {
		sc := &fineScratch{}
		for _, ci := range order {
			var t FineTimings
			refined[ci], t = fineCluster(coarse[ci], tokens, top, vocabSize, opt, sc, nil)
			total.add(t)
		}
		return refined, total
	}
	nested := par.NewBudget(opt.workers())
	perWorker := make([]FineTimings, workers)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			nested.Acquire()
			sc := &fineScratch{}
			var acc FineTimings
			for {
				k := next.Add(1) - 1
				if k >= int64(len(order)) {
					break
				}
				ci := order[k]
				out, t := fineCluster(coarse[ci], tokens, top, vocabSize, opt, sc, nested)
				refined[ci] = out
				acc.add(t)
			}
			// Queue drained for this worker: return its token so a
			// straggler's screening fan-out can borrow the idle capacity.
			nested.Release(1)
			perWorker[w] = acc
		}(w)
	}
	wg.Wait()
	for _, t := range perWorker {
		total.add(t)
	}
	return refined, total
}

// mergeRefined folds the per-cluster template lists into Clusters and
// DocTemplate, in cluster order.
func (res *Result) mergeRefined(refined [][]TemplateResult) {
	for _, templates := range refined {
		if len(templates) == 0 {
			continue
		}
		cl := Cluster{Templates: templates}
		for _, tr := range templates {
			cl.Docs = append(cl.Docs, tr.Docs...)
			cl.CostBefore += tr.CostBefore
			cl.CostAfter += tr.CostAfter
		}
		sort.Ints(cl.Docs)
		res.Clusters = append(res.Clusters, cl)
	}
	// Assign global template ids.
	tid := 0
	for i := range res.Clusters {
		for j := range res.Clusters[i].Templates {
			for _, d := range res.Clusters[i].Templates[j].Docs {
				res.DocTemplate[d] = tid
			}
			tid++
		}
	}
}
