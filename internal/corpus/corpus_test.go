package corpus

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewAssignsIDs(t *testing.T) {
	c := New([]string{"a", "b", "c"})
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	for i, d := range c.Docs {
		if d.ID != i {
			t.Errorf("doc %d has ID %d", i, d.ID)
		}
		if d.ClusterLabel != -1 {
			t.Errorf("doc %d ClusterLabel = %d, want -1", i, d.ClusterLabel)
		}
	}
	if got := c.Texts(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Texts = %v", got)
	}
}

func sample() *Corpus {
	c := New([]string{"hello world", "spam, \"quoted\" text\nwith newline", "третий"})
	c.Docs[0].Account = "u1"
	c.Docs[0].Label = true
	c.Docs[0].ClusterLabel = 7
	c.Docs[0].Ordinal = 5
	c.Docs[1].Meta = &Meta{Retweets: 3, Mentions: 1, FollowerRate: 0.5, PostGapSecs: 12.5}
	return c
}

func TestJSONLRoundTrip(t *testing.T) {
	c := sample()
	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Docs, c.Docs) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got.Docs, c.Docs)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	c := sample()
	var buf bytes.Buffer
	if err := c.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != c.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), c.Len())
	}
	for i := range c.Docs {
		want := c.Docs[i]
		want.Meta = nil // CSV drops metadata by design
		if !reflect.DeepEqual(got.Docs[i], want) {
			t.Errorf("doc %d: got %+v want %+v", i, got.Docs[i], want)
		}
	}
}

func TestReadCSVBareFormats(t *testing.T) {
	c, err := ReadCSV(strings.NewReader("just one column\nsecond doc\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Docs[1].Text != "second doc" {
		t.Errorf("bare one-column parse: %+v", c.Docs)
	}
	c, err = ReadCSV(strings.NewReader("0,first\n1,second\n"))
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || c.Docs[0].Text != "first" {
		t.Errorf("two-column parse: %+v", c.Docs)
	}
}

func TestReadJSONLBadInput(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json")); err == nil {
		t.Error("expected error for malformed JSONL")
	}
}

// Property: JSONL round trip preserves arbitrary texts and labels.
func TestJSONLRoundTripProperty(t *testing.T) {
	f := func(texts []string, labels []bool) bool {
		c := New(texts)
		for i := range c.Docs {
			if i < len(labels) {
				c.Docs[i].Label = labels[i]
			}
		}
		var buf bytes.Buffer
		if err := c.WriteJSONL(&buf); err != nil {
			return false
		}
		got, err := ReadJSONL(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Docs, c.Docs) || len(texts) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: CSV round trip preserves text exactly, including quotes,
// commas and newlines.
func TestCSVTextFidelityProperty(t *testing.T) {
	f := func(texts []string) bool {
		// csv cannot represent \r cleanly (readers normalize \r\n); skip.
		for i, s := range texts {
			texts[i] = strings.ReplaceAll(s, "\r", "")
		}
		c := New(texts)
		var buf bytes.Buffer
		if err := c.WriteCSV(&buf); err != nil {
			return false
		}
		got, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got.Texts(), c.Texts()) || len(texts) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
