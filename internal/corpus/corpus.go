// Package corpus defines the document model shared by the whole pipeline
// and streaming readers/writers for the two interchange formats the tools
// speak: JSON Lines and CSV.
package corpus

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Document is one input text plus whatever labels/metadata the dataset
// carries. Only ID and Text are required; the rest exists for evaluation
// and for the metadata-based baseline detectors.
type Document struct {
	// ID is the document's position in its corpus (dense, 0-based).
	ID int `json:"id"`
	// Text is the raw document text.
	Text string `json:"text"`
	// Account identifies the author (Twitter user id / advertiser id).
	// Empty when unknown.
	Account string `json:"account,omitempty"`
	// Label is the binary ground truth: true = suspicious (bot / HT / spam).
	Label bool `json:"label,omitempty"`
	// ClusterLabel is the ground-truth cluster id; -1 means the document
	// belongs to no cluster (the paper labels every genuine user's tweets -1).
	ClusterLabel int `json:"cluster_label"`
	// Ordinal is the Trafficking10k-style 0..6 annotation, -1 if absent.
	Ordinal int `json:"ordinal,omitempty"`
	// Lang is the generator-recorded language name, empty when unknown.
	Lang string `json:"lang,omitempty"`
	// Meta carries platform metadata for the feature-based baselines
	// (retweets, mentions, urls, posting gaps...). Nil when absent.
	Meta *Meta `json:"meta,omitempty"`
}

// Meta is per-document platform metadata, synthesized by the data
// generators and consumed by the supervised baseline detectors.
type Meta struct {
	Retweets     int     `json:"retweets"`
	Favorites    int     `json:"favorites"`
	Mentions     int     `json:"mentions"`
	URLs         int     `json:"urls"`
	Hashtags     int     `json:"hashtags"`
	FollowerRate float64 `json:"follower_rate"` // followers / following
	AccountAge   int     `json:"account_age"`   // days
	PostGapSecs  float64 `json:"post_gap_secs"` // mean gap between posts
}

// Corpus is an in-memory document collection.
type Corpus struct {
	Docs []Document
}

// New builds a corpus from raw texts, assigning sequential ids and
// no-cluster labels.
func New(texts []string) *Corpus {
	docs := make([]Document, len(texts))
	for i, t := range texts {
		docs[i] = Document{ID: i, Text: t, ClusterLabel: -1, Ordinal: -1}
	}
	return &Corpus{Docs: docs}
}

// Len returns the number of documents.
func (c *Corpus) Len() int { return len(c.Docs) }

// Texts returns the raw texts in id order.
func (c *Corpus) Texts() []string {
	out := make([]string, len(c.Docs))
	for i, d := range c.Docs {
		out[i] = d.Text
	}
	return out
}

// Renumber rewrites every document's ID to its slice position. Readers and
// generators call it so downstream code can rely on Docs[i].ID == i.
func (c *Corpus) Renumber() {
	for i := range c.Docs {
		c.Docs[i].ID = i
	}
}

// WriteJSONL streams the corpus as one JSON object per line.
func (c *Corpus) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for i := range c.Docs {
		if err := enc.Encode(&c.Docs[i]); err != nil {
			return fmt.Errorf("corpus: encode doc %d: %w", i, err)
		}
	}
	return nil
}

// ReadJSONL parses a JSONL stream produced by WriteJSONL (or compatible).
func ReadJSONL(r io.Reader) (*Corpus, error) {
	dec := json.NewDecoder(r)
	c := &Corpus{}
	for i := 0; ; i++ {
		var d Document
		if err := dec.Decode(&d); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("corpus: line %d: %w", i+1, err)
		}
		c.Docs = append(c.Docs, d)
	}
	c.Renumber()
	return c, nil
}

// csvHeader is the fixed column set for CSV interchange.
var csvHeader = []string{"id", "text", "account", "label", "cluster_label", "ordinal"}

// WriteCSV streams the corpus as CSV with a header row. Metadata is not
// representable in CSV and is dropped; use JSONL to keep it.
func (c *Corpus) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("corpus: write header: %w", err)
	}
	for i := range c.Docs {
		d := &c.Docs[i]
		rec := []string{
			strconv.Itoa(d.ID),
			d.Text,
			d.Account,
			strconv.FormatBool(d.Label),
			strconv.Itoa(d.ClusterLabel),
			strconv.Itoa(d.Ordinal),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("corpus: write doc %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses CSV produced by WriteCSV. A bare two-column (id,text) or
// one-column (text) file is also accepted so users can feed raw data.
func ReadCSV(r io.Reader) (*Corpus, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("corpus: read csv: %w", err)
	}
	c := &Corpus{}
	for i, rec := range rows {
		if i == 0 && len(rec) > 0 && rec[0] == "id" {
			continue // header
		}
		d := Document{ClusterLabel: -1, Ordinal: -1}
		switch {
		case len(rec) >= 6:
			d.Text = rec[1]
			d.Account = rec[2]
			//vet:allow ctxerr unparsable label column defaults to false, matching the lenient Atoi handling below
			d.Label, _ = strconv.ParseBool(rec[3])
			if v, err := strconv.Atoi(rec[4]); err == nil {
				d.ClusterLabel = v
			}
			if v, err := strconv.Atoi(rec[5]); err == nil {
				d.Ordinal = v
			}
		case len(rec) == 2:
			d.Text = rec[1]
		case len(rec) == 1:
			d.Text = rec[0]
		default:
			return nil, fmt.Errorf("corpus: row %d has %d fields", i+1, len(rec))
		}
		c.Docs = append(c.Docs, d)
	}
	c.Renumber()
	return c, nil
}
