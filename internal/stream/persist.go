package stream

import (
	"encoding/json"
	"fmt"
	"io"

	"infoshield/internal/tfidf"
)

// stateV1 is the original on-disk representation: mined templates only.
// Save no longer writes it, but Load still accepts it (template-set
// archives and pre-v2 snapshots).
//
// stateV2 is the full-detector representation: templates (live and
// lifecycle tombstones, with recency clocks and merge forward pointers),
// the document-id high-water mark, the pending buffer (texts + ids — so
// snapshotting no longer requires a flush), and the incremental miner's
// retained window. Tokens are stored as words (not vocabulary ids) so
// state survives across processes with different vocabularies; derived
// state (the tiered index, slot vectors, DF table, phrase selections) is
// rebuilt deterministically at load. Restored state is a pure function
// of the file, so snapshot + write-ahead-log replay is deterministic —
// it does not reproduce the pre-crash process byte-for-byte (vocabulary
// ids, and with them phrase hashes, are re-assigned at load), which is
// the same contract the v1 format had.
type stateV1 struct {
	Version   int               `json:"version"`
	Templates []templateStateV1 `json:"templates"`
}

type templateStateV1 struct {
	Words    []string `json:"words"` // "" at wildcard positions
	Wild     []bool   `json:"wild"`
	DocCount int      `json:"doc_count"`
}

type stateV2 struct {
	Version   int               `json:"version"`
	NextID    int               `json:"next_id,omitempty"`
	Templates []templateStateV2 `json:"templates"`
	Pending   []pendingStateV2  `json:"pending,omitempty"`
	Retained  []retainedStateV2 `json:"retained,omitempty"`
}

// templateStateV2 also decodes v1 template entries: the extra fields are
// absent there and default to a live template with a zero recency clock.
type templateStateV2 struct {
	Words    []string `json:"words,omitempty"` // "" at wildcard positions
	Wild     []bool   `json:"wild,omitempty"`
	DocCount int      `json:"doc_count"`
	// LastMatch is the recency clock (highest matching document id, or
	// the registration high-water mark).
	LastMatch int `json:"last_match,omitempty"`
	// Dead marks a lifecycle tombstone; its payload is not serialized
	// (the slot exists only to keep template ids stable). Forward is the
	// merge successor (-1 for none) — not omitempty, template 0 is a
	// valid successor.
	Dead    bool `json:"dead,omitempty"`
	Forward int  `json:"forward"`
}

type pendingStateV2 struct {
	ID   int    `json:"id"`
	Text string `json:"text"`
}

type retainedStateV2 struct {
	ID  int `json:"id"`
	Age int `json:"age"` // flush epochs since arrival
	// Words is the tokenized document (tokens never contain whitespace,
	// so the stream re-encodes without re-tokenizing).
	Words []string `json:"words"`
}

// Save serializes the detector: templates (including lifecycle
// tombstones), the id high-water mark, the pending buffer, and the
// incremental miner's retained window — nothing is lost without a
// flush. Assignments of already-ingested documents are not serialized
// (ids are resolved through the write-ahead log at the serving layer).
func (d *Detector) Save(w io.Writer) error {
	st := stateV2{Version: 2, NextID: d.nextID}
	for ti := range d.templates {
		t := &d.templates[ti]
		if d.isDead(ti) {
			st.Templates = append(st.Templates, templateStateV2{
				DocCount:  t.DocCount,
				LastMatch: d.lastMatch[ti],
				Dead:      true,
				Forward:   int(d.forward[ti]),
			})
			continue
		}
		ts := templateStateV2{
			Wild:      append([]bool(nil), t.Wild...),
			DocCount:  t.DocCount,
			LastMatch: d.lastMatch[ti],
			Forward:   -1,
		}
		for i, tok := range t.Tokens {
			if t.Wild[i] {
				ts.Words = append(ts.Words, "")
				continue
			}
			ts.Words = append(ts.Words, d.vocab.Word(tok))
		}
		st.Templates = append(st.Templates, ts)
	}
	for i, text := range d.pendingTexts {
		st.Pending = append(st.Pending, pendingStateV2{ID: d.pendingIDs[i], Text: text})
	}
	if d.mine != nil {
		for i := range d.mine.docs {
			doc := &d.mine.docs[i]
			words := make([]string, len(doc.toks))
			for j, tok := range doc.toks {
				words[j] = d.vocab.Word(tok)
			}
			st.Retained = append(st.Retained, retainedStateV2{
				ID:    doc.id,
				Age:   d.mine.epoch - doc.epoch,
				Words: words,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&st)
}

// Load restores state saved by Save (either format version) into a
// (typically fresh) detector, merging after any templates it already
// holds. Document counts and recency clocks resume from the saved
// values. The tiered index, slot vectors, DF table, and phrase
// selections are derived state, not persisted: templates re-enter
// through register, pending texts re-tokenize, and the retained window
// re-extracts — all deterministic functions of the file, so a restored
// detector replays a write-ahead log to the same verdicts every time.
//
// A state carrying documents (a high-water mark, pending buffer, or
// retained window) describes a whole detector and only loads into one
// that has not ingested anything; template-only states merge anywhere.
func (d *Detector) Load(r io.Reader) error {
	var st stateV2
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("stream: decode state: %w", err)
	}
	if st.Version != 1 && st.Version != 2 {
		return fmt.Errorf("stream: unsupported state version %d", st.Version)
	}
	if (st.NextID > 0 || len(st.Pending) > 0 || len(st.Retained) > 0) && d.ingested {
		return fmt.Errorf("stream: loading detector state after documents were ingested")
	}
	if st.NextID > d.nextID {
		d.nextID = st.NextID
	}
	for ti, ts := range st.Templates {
		if ts.Dead {
			if st.Version != 2 {
				return fmt.Errorf("stream: template %d: tombstone in v%d state", ti, st.Version)
			}
			d.templates = append(d.templates, Template{DocCount: ts.DocCount})
			d.dead = append(d.dead, true)
			d.forward = append(d.forward, int32(ts.Forward))
			d.lastMatch = append(d.lastMatch, ts.LastMatch)
			d.anyDead = true
			d.index.addDead()
			continue
		}
		if len(ts.Words) != len(ts.Wild) {
			return fmt.Errorf("stream: template %d: %d words vs %d wild flags",
				ti, len(ts.Words), len(ts.Wild))
		}
		t := Template{
			Wild:     append([]bool(nil), ts.Wild...),
			Tokens:   make([]int, len(ts.Words)),
			DocCount: ts.DocCount,
		}
		for i, w := range ts.Words {
			if ts.Wild[i] {
				continue
			}
			t.Tokens[i] = d.vocab.Add(w)
		}
		i := len(d.templates)
		d.register(t)
		if st.Version == 2 {
			d.lastMatch[i] = ts.LastMatch
		}
	}
	for _, p := range st.Pending {
		if p.ID < 0 {
			return fmt.Errorf("stream: pending document with negative id %d", p.ID)
		}
		toks := d.vocab.Encode(d.tk.Tokens(p.Text))
		d.pendingSet[p.ID] = len(d.pendingIDs)
		d.pendingTexts = append(d.pendingTexts, p.Text)
		d.pendingToks = append(d.pendingToks, toks)
		d.pendingIDs = append(d.pendingIDs, p.ID)
		if p.ID >= d.nextID {
			d.nextID = p.ID + 1
		}
	}
	if len(st.Retained) > 0 {
		ms := &mineState{df: make(map[uint64]int)}
		maxN := d.mineMaxN()
		phrases := make([][]minePhrase, len(st.Retained))
		for i, rd := range st.Retained {
			if rd.ID < 0 {
				return fmt.Errorf("stream: retained document with negative id %d", rd.ID)
			}
			toks := d.vocab.Encode(rd.Words)
			ps := minePhrases(toks, maxN)
			phrases[i] = ps
			for _, p := range ps {
				ms.df[p.hash]++
			}
			ms.docs = append(ms.docs, mineDoc{
				id:    rd.ID,
				toks:  toks,
				dist:  distinctHashes(ps),
				epoch: -rd.Age,
			})
			if rd.ID >= d.nextID {
				d.nextID = rd.ID + 1
			}
		}
		// Selections are recomputed against the restored window — a
		// deterministic function of the file, like everything above.
		frac, floorFrac := d.mineTopFraction(), tfidf.DefaultRelativeFloor
		for i := range ms.docs {
			ms.docs[i].sel = mineSelect(phrases[i], ms.df, len(ms.docs), len(ms.docs[i].toks), frac, floorFrac)
		}
		d.mine = ms
	}
	return nil
}
