package stream

import (
	"encoding/json"
	"fmt"
	"io"
)

// stateV1 is the on-disk representation of a detector's mined templates.
// Tokens are stored as words (not vocabulary ids) so state survives
// across processes with different vocabularies.
type stateV1 struct {
	Version   int               `json:"version"`
	Templates []templateStateV1 `json:"templates"`
}

type templateStateV1 struct {
	Words    []string `json:"words"` // "" at wildcard positions
	Wild     []bool   `json:"wild"`
	DocCount int      `json:"doc_count"`
}

// Save serializes the mined templates (not the pending buffer — flush
// before saving if buffered documents matter).
func (d *Detector) Save(w io.Writer) error {
	st := stateV1{Version: 1}
	for _, t := range d.templates {
		ts := templateStateV1{
			Wild:     append([]bool(nil), t.Wild...),
			DocCount: t.DocCount,
		}
		for i, tok := range t.Tokens {
			if t.Wild[i] {
				ts.Words = append(ts.Words, "")
				continue
			}
			ts.Words = append(ts.Words, d.vocab.Word(tok))
		}
		st.Templates = append(st.Templates, ts)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&st)
}

// Load restores templates saved by Save into a (typically fresh)
// detector, merging after any templates it already holds. Document
// counts resume from the saved values; assignments of the previous
// process's documents are not restored (ids are process-local). The
// inverted candidate-pruning index and the canned slot vectors are
// derived state, not persisted: each restored template re-enters through
// register, which rebuilds both over the loading detector's vocabulary.
func (d *Detector) Load(r io.Reader) error {
	var st stateV1
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		return fmt.Errorf("stream: decode state: %w", err)
	}
	if st.Version != 1 {
		return fmt.Errorf("stream: unsupported state version %d", st.Version)
	}
	for ti, ts := range st.Templates {
		if len(ts.Words) != len(ts.Wild) {
			return fmt.Errorf("stream: template %d: %d words vs %d wild flags",
				ti, len(ts.Words), len(ts.Wild))
		}
		t := Template{
			Wild:     append([]bool(nil), ts.Wild...),
			Tokens:   make([]int, len(ts.Words)),
			DocCount: ts.DocCount,
		}
		for i, w := range ts.Words {
			if ts.Wild[i] {
				continue
			}
			t.Tokens[i] = d.vocab.Add(w)
		}
		d.register(t)
	}
	return nil
}
