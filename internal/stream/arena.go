package stream

// arena is a chunked append-only allocator: copyIn packs a slice into a
// large shared block and returns a capacity-capped view of it. Template
// payloads (tokens, wild flags, bit-parallel mask tables) live in a few
// big blocks instead of one heap object per template per field, so the
// probe hot loop walks contiguous memory and 100k registrations cost a
// handful of allocations per arena, not hundreds of thousands. Blocks are
// never reallocated — growth starts a fresh block — so views handed out
// earlier stay valid forever, and the capacity cap makes any append on a
// view copy out instead of clobbering a neighbour.
type arena[T any] struct {
	cur []T
}

// arenaBlock is the element count of one arena block. At 1<<14 a
// 100k-template load needs ~100 blocks per arena for typical template
// lengths — far below the one-object-per-template baseline.
const arenaBlock = 1 << 14

func (a *arena[T]) copyIn(src []T) []T {
	n := len(src)
	if n == 0 {
		return nil
	}
	if len(a.cur)+n > cap(a.cur) {
		size := arenaBlock
		if n > size {
			size = n
		}
		a.cur = make([]T, 0, size)
	}
	lo := len(a.cur)
	a.cur = append(a.cur, src...)
	return a.cur[lo : lo+n : lo+n]
}
