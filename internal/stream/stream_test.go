package stream

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"infoshield/internal/core"
)

// campaign emits near-duplicate docs with a varying last token.
func campaign(n int) []string {
	docs := make([]string, n)
	for i := range docs {
		docs[i] = fmt.Sprintf(
			"limited offer buy the premium golden package today visit site%04d.example now", i)
	}
	return docs
}

// noise emits unique-word singleton docs.
func noise(n, salt int) []string {
	docs := make([]string, n)
	for i := range docs {
		k := salt*1000 + i
		docs[i] = fmt.Sprintf("nx%daa nx%dbb nx%dcc nx%ddd nx%dee nx%dff nx%dgg nx%dhh",
			k, k, k, k, k, k, k, k)
	}
	return docs
}

func TestDetectorBatchMining(t *testing.T) {
	d := New(core.Options{})
	d.BatchSize = 1 << 30 // manual flush
	ids := d.AddBatch(append(campaign(20), noise(300, 1)...))
	if d.Pending() != 320 {
		t.Fatalf("pending = %d", d.Pending())
	}
	d.Flush()
	if d.NumTemplates() == 0 {
		t.Fatal("no template mined")
	}
	inTemplate := 0
	for _, id := range ids[:20] {
		if d.Assignment(id).Template >= 0 {
			inTemplate++
		}
	}
	if inTemplate < 18 {
		t.Errorf("only %d/20 campaign docs assigned", inTemplate)
	}
	for _, id := range ids[20:] {
		if a := d.Assignment(id); a.Template != -1 || a.Pending {
			t.Errorf("noise doc %d assigned %+v", id, a)
		}
	}
}

func TestDetectorIncrementalMatch(t *testing.T) {
	d := New(core.Options{})
	d.BatchSize = 1 << 30
	d.AddBatch(append(campaign(20), noise(300, 2)...))
	d.Flush()
	if d.NumTemplates() == 0 {
		t.Fatal("no template mined")
	}
	before := d.Pending()
	// A new campaign member should attach immediately, without buffering.
	id := d.Add("limited offer buy the premium golden package today visit site9999.example now")
	a := d.Assignment(id)
	if a.Template < 0 || a.Pending {
		t.Errorf("new campaign doc not matched: %+v (pending %d -> %d)", a, before, d.Pending())
	}
	// A fresh unrelated doc buffers instead.
	id = d.Add("totally unrelated chatter about gardens and violins tonight")
	if a := d.Assignment(id); !a.Pending {
		t.Errorf("unrelated doc should be pending: %+v", a)
	}
}

func TestDetectorAutoFlush(t *testing.T) {
	d := New(core.Options{})
	// The batch must be large enough that the campaign stays "micro"
	// relative to it (the coarse pass's rarity floor, see internal/tfidf).
	d.BatchSize = 200
	docs := append(campaign(20), noise(180, 3)...)
	d.AddBatch(docs)
	// 200 docs reached BatchSize: auto-flush ran.
	if d.Pending() != 0 {
		t.Errorf("pending = %d after auto-flush", d.Pending())
	}
	if d.NumTemplates() == 0 {
		t.Error("auto-flush mined nothing")
	}
}

func TestDetectorDocCounts(t *testing.T) {
	d := New(core.Options{})
	d.BatchSize = 1 << 30
	d.AddBatch(append(campaign(10), noise(300, 4)...))
	d.Flush()
	if d.NumTemplates() == 0 {
		t.Fatal("no template")
	}
	base := d.Templates()[0].DocCount
	d.Add("limited offer buy the premium golden package today visit site7777.example now")
	if got := d.Templates()[0].DocCount; got != base+1 {
		t.Errorf("DocCount = %d, want %d", got, base+1)
	}
}

func TestDetectorEmptyInputs(t *testing.T) {
	d := New(core.Options{})
	d.Flush() // no-op
	id := d.Add("")
	if a := d.Assignment(id); a.Template != -1 {
		t.Errorf("empty doc assigned: %+v", a)
	}
	if a := d.Assignment(99999); a.Template != -1 || a.Pending {
		t.Errorf("unknown id: %+v", a)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := New(core.Options{})
	d.BatchSize = 1 << 30
	d.AddBatch(append(campaign(20), noise(300, 9)...))
	d.Flush()
	if d.NumTemplates() == 0 {
		t.Fatal("no template to save")
	}
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// A fresh detector in a new "process" loads the state and matches a
	// new campaign member immediately.
	d2 := New(core.Options{})
	if err := d2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if d2.NumTemplates() != d.NumTemplates() {
		t.Fatalf("templates %d != %d", d2.NumTemplates(), d.NumTemplates())
	}
	id := d2.Add("limited offer buy the premium golden package today visit site5555.example now")
	if a := d2.Assignment(id); a.Template < 0 || a.Pending {
		t.Errorf("loaded detector failed to match: %+v", a)
	}
	if got, want := d2.Templates()[0].DocCount, d.Templates()[0].DocCount+1; got != want {
		t.Errorf("DocCount after load+match = %d, want %d", got, want)
	}
}

func TestLoadRejectsBadState(t *testing.T) {
	d := New(core.Options{})
	if err := d.Load(strings.NewReader("{not json")); err == nil {
		t.Error("expected decode error")
	}
	if err := d.Load(strings.NewReader(`{"version":99}`)); err == nil {
		t.Error("expected version error")
	}
	if err := d.Load(strings.NewReader(
		`{"version":1,"templates":[{"words":["a"],"wild":[true,false]}]}`)); err == nil {
		t.Error("expected shape error")
	}
}
