package stream

import (
	"math/rand"
	"testing"

	"infoshield/internal/core"
	"infoshield/internal/datagen"
)

// TestStreamScaleSmoke bulk-loads a 1k-template multi-market set through
// Register and checks, probe by probe, that the tiered index — bucket
// skips, saturated-token credits (the shared serving words are carried by
// hundreds of templates), best-first ordering, and the bit-parallel
// refinement — returns exactly the reference scan's verdict while
// examining a small fraction of the template set. This keeps the scale
// configuration of the matcher exercised in tier-1 `go test`, not only
// under `make bench-scale`.
func TestStreamScaleSmoke(t *testing.T) {
	set := datagen.ScaleTemplates(datagen.ScaleConfig{Seed: 7, Templates: 1000})
	d := New(core.Options{})
	d.BatchSize = 1 << 30
	for i, tmpl := range set.Templates {
		ti, err := d.Register(tmpl.Words, tmpl.Wild)
		if err != nil {
			t.Fatal(err)
		}
		if ti != i {
			t.Fatalf("Register returned index %d, want %d", ti, i)
		}
	}
	checkIndex(t, "after bulk load", d)

	rng := rand.New(rand.NewSource(11))
	matched := 0
	for k := 0; k < 120; k++ {
		var text string
		if k%4 == 3 {
			text = set.Noise(rng)
		} else {
			text = set.Probe(rng, rng.Intn(len(set.Templates)))
		}
		toks := d.vocab.Encode(d.tk.Tokens(text))
		verdict := d.match(toks, d.vocab.Size(), &d.sc, &d.stats)
		if ref := referenceMatch(d, toks); verdict != ref {
			t.Fatalf("probe %d: tiered verdict %d != reference %d", k, verdict, ref)
		}
		if verdict >= 0 {
			matched++
		}
		d.apply(text, toks, verdict)
	}
	if matched < 60 {
		t.Fatalf("only %d/120 probes matched — generator and matcher out of tune", matched)
	}

	st := d.Stats()
	if st.DPPruned+st.DPRuns != st.Candidates {
		t.Fatalf("pruned %d + runs %d != candidates %d", st.DPPruned, st.DPRuns, st.Candidates)
	}
	// Sublinearity in miniature: at 1000 templates a probe must reach the
	// per-candidate scan with far fewer than numT survivors on average.
	if st.Examined*10 > st.Candidates {
		t.Fatalf("examined %d of %d candidates — tiered pruning not engaging", st.Examined, st.Candidates)
	}
	hist := 0
	for _, c := range st.CandHist {
		hist += c
	}
	if hist != st.Probes {
		t.Fatalf("histogram mass %d != probes %d", hist, st.Probes)
	}
	if st.BitDPRuns == 0 {
		t.Fatal("bit-parallel refinement never ran")
	}
	// Banded-DP and bitmap-skip accounting: every banded alignment is one
	// of the DP runs, exact-distance-seeded bands never widen, and the
	// bitmap skips plus postings walks partition the probes exactly.
	if st.BandRuns > st.DPRuns {
		t.Fatalf("band runs %d > DP runs %d", st.BandRuns, st.DPRuns)
	}
	if st.BandRetries != 0 {
		t.Fatalf("%d band retries on exact-seeded bands", st.BandRetries)
	}
	if st.BitmapSkips+st.PostingsWalks != st.Probes {
		t.Fatalf("bitmap skips %d + walks %d != probes %d",
			st.BitmapSkips, st.PostingsWalks, st.Probes)
	}
	if st.WalkNs < 0 || st.BoundNs < 0 || st.BitDPNs < 0 || st.ExactDPNs < 0 {
		t.Fatalf("negative stage timing: walk %d bound %d bitdp %d exactdp %d",
			st.WalkNs, st.BoundNs, st.BitDPNs, st.ExactDPNs)
	}
}

// TestScaleRaceShort is the trimmed scale exercise `make race-short`
// leans on: a 1k-template bulk load followed by batched parallel
// matching (Workers: 4) over mid-batch flush boundaries, so the race
// detector sweeps the arena and tiered-index paths — the pooled
// matchScratch, the arena-backed eq-token views, and the shared bucket
// postings — under real goroutine concurrency. It is sized to run under
// -short; the full-scale sweeps stay behind `make bench-scale`.
func TestScaleRaceShort(t *testing.T) {
	set := datagen.ScaleTemplates(datagen.ScaleConfig{Seed: 13, Templates: 1000})
	d := New(core.Options{Workers: 4})
	d.BatchSize = 48
	for _, tmpl := range set.Templates {
		if _, err := d.Register(tmpl.Words, tmpl.Wild); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(17))
	docs := make([]string, 0, 192)
	for k := 0; k < cap(docs); k++ {
		if k%4 == 3 {
			docs = append(docs, set.Noise(rng))
		} else {
			docs = append(docs, set.Probe(rng, rng.Intn(len(set.Templates))))
		}
	}
	matched := 0
	for lo := 0; lo < len(docs); lo += 64 {
		for _, v := range d.AddBatch(docs[lo : lo+64]) {
			if v >= 0 {
				matched++
			}
		}
	}
	d.Flush()
	if matched == 0 {
		t.Fatal("no probe matched — the parallel matcher was never exercised")
	}
	checkIndex(t, "after race sweep", d)
}
