// Package stream provides an incremental InfoShield detector for
// continuously arriving documents — the deployment shape of the paper's
// application (law enforcement receives new ads every day; spam filters
// see tweets continuously).
//
// New documents are first tested against the already-mined templates with
// the same MDL criterion the batch pipeline uses (C(d|T) < C(d), with
// slots as wildcards); matches attach immediately. The rest buffer, and
// when the buffer reaches BatchSize the full coarse+fine pipeline runs
// over it to mine new templates. Everything stays deterministic for a
// given input order.
//
// The serving hot path scales sublinearly with the template set: a tiered
// postings index over constant tokens (bucket-level bound skips, flat
// chunk slabs, saturated-token credits — see index.go) generates a small
// best-first candidate set, admissible MDL lower bounds — including a
// bit-parallel exact-distance refinement — skip the wildcard-alignment DP
// for candidates that cannot win, a per-goroutine scratch makes the
// surviving DPs allocation-free, template payloads live in contiguous
// arenas, and AddBatch fans the match phase across Options.Workers with
// verdicts applied in arrival order — byte-identical to serial Adds for
// any worker count.
package stream

import (
	"fmt"
	"strings"

	"infoshield/internal/core"
	"infoshield/internal/par"
	"infoshield/internal/template"
	"infoshield/internal/tokenize"
)

// Assignment is the detector's verdict for one added document.
type Assignment struct {
	// Template is the index of the matched template, or -1.
	Template int
	// Pending reports that the document waits in the buffer for the next
	// mining pass (its Template is -1 but may change on Flush).
	Pending bool
}

// Template is one mined template with its running document count.
type Template struct {
	Pattern  template.Template
	Wild     []bool // per position: is a slot (wildcard for matching)
	Tokens   []int  // constants (slot positions keep the consensus token)
	DocCount int
	// SlotWords is the canned per-slot word-count vector the matcher
	// charges (one word per slot, the serving path's S(w) ≈ S(1)
	// approximation), precomputed at registration so probes never rebuild
	// it. len(SlotWords) is the slot count. Shared; do not mutate.
	SlotWords []int
}

// Lifecycle bounds the template set of a long-running detector so an
// unbounded stream runs at bounded memory. The zero value disables every
// mechanism, and a disabled lifecycle is gated byte-identical to the
// pre-lifecycle detector (see TestLifecycleOffByteIdentical). All
// decisions are clocked by document ids — pure functions of the ingest
// sequence — so write-ahead-log replay reproduces them exactly.
type Lifecycle struct {
	// MaxTemplates caps the live template count; each mining pass evicts
	// least-recently-matched templates (ties: lowest DocCount, then
	// lowest index) down to the cap. 0 means unbounded.
	MaxTemplates int
	// TTL ages out a template once no document has matched it within the
	// last TTL ingested documents, checked at each mining pass. 0 means
	// templates never age out.
	TTL int
	// Merge enables MDL-gated merging: after each mining pass, every new
	// template probes the tiered index with its own consensus sequence,
	// and when an existing template encodes that sequence more cheaply
	// than standalone, the pair merges — keeping whichever side encodes
	// the other's consensus with the larger saving, exactly the
	// description-length criterion the batch pipeline accepts templates
	// with.
	Merge bool
	// Incremental switches Flush from the batch pipeline to the
	// streaming-native miner: document frequencies and unmatched
	// documents persist across flushes (see minestate.go), so a flush
	// extracts phrases for the new batch only and re-clusters only the
	// components those phrases touch. Costs are amortized per batch, and
	// campaigns that trickle in across flush boundaries still assemble.
	Incremental bool
	// RetainFlushes bounds how many mining passes an unmatched document
	// stays in the incremental miner's window (0 = default 8).
	RetainFlushes int
	// RetainDocs caps the incremental miner's retained-document window
	// (0 = default 8×BatchSize).
	RetainDocs int
}

// bounded reports whether any template-retiring mechanism is on.
func (lc Lifecycle) bounded() bool {
	return lc.MaxTemplates > 0 || lc.TTL > 0 || lc.Merge
}

// Detector accumulates documents and templates incrementally.
type Detector struct {
	// BatchSize is the buffer size that triggers a mining pass
	// (default 512).
	BatchSize int
	// Options configures the mining passes and bounds AddBatch's matching
	// worker pool (Options.Workers; any value produces identical output).
	Options core.Options
	// Lifecycle bounds the template set (age-out, MDL merge, hard cap)
	// and enables incremental mining. Must be set before the first
	// document and must match across Save/Load for deterministic replay.
	Lifecycle Lifecycle

	tk        tokenize.Tokenizer
	vocab     *tokenize.Vocab
	templates []Template
	index     tmplIndex

	// Lifecycle state, parallel to templates. Retired templates become
	// tombstones — their index slot survives so template ids stay stable
	// across merges and evictions — and forward redirects a merged
	// template's assignments to its keeper (-1 for evicted/aged-out).
	// lastMatch is the recency clock: the highest document id that
	// matched the template (or its registration high-water mark).
	// liveCount is len(templates) minus tombstones; anyDead short-
	// circuits every tombstone test while no template has retired.
	dead      []bool
	forward   []int32
	lastMatch []int
	liveCount int
	anyDead   bool
	// tombSinceRebuild counts tombstones accumulated since the tiered
	// index was last rebuilt; rebuildIndex compacts their postings away
	// once they are a meaningful fraction of the live set.
	tombSinceRebuild int

	// mine is the incremental miner's cross-flush state (nil until the
	// first incremental flush).
	mine *mineState

	// Template payloads are packed into arenas (contiguous blocks shared
	// across templates) so the probe hot loop reads sequential memory;
	// ones is the shared all-ones vector every template's SlotWords (and
	// the index's bucket bounds) slice a prefix of.
	tokA  arena[int]
	wildA arena[bool]
	ones  []int

	pendingTexts []string
	pendingToks  [][]int     // detector-vocab token ids, parallel to pendingTexts
	pendingIDs   []int       // caller-visible doc ids of buffered docs
	pendingSet   map[int]int // doc id -> position in pendingIDs (O(1) lookups)

	nextID      int
	ingested    bool // a document has been ingested through apply
	assignments map[int]int // doc id -> template index

	sc      matchScratch    // serial probe scratch (Add)
	batchSc []*matchScratch // per-worker probe scratches (AddBatch)
	stats   Stats

	// noPrune disables the lower-bound skip so tests can drive the exact
	// same scan with the DP forced on every template (the reference path
	// of the pruning-equivalence gate).
	noPrune bool
	// legacyFlush forces the pre-RunTokens flush path (re-tokenize the
	// pending texts inside core.Run) so the equivalence gate can prove
	// the token-reuse path byte-identical.
	legacyFlush bool
	// mineAll makes the incremental miner re-cluster its entire retained
	// window every flush instead of only the touched components — the
	// from-scratch baseline the lifecycle benchmark compares against.
	mineAll bool
}

// New creates an empty detector.
func New(opt core.Options) *Detector {
	return &Detector{
		BatchSize:   512,
		Options:     opt,
		vocab:       tokenize.NewVocab(),
		pendingSet:  make(map[int]int),
		assignments: make(map[int]int),
	}
}

// NumTemplates returns the number of template slots ever mined,
// including lifecycle tombstones (template indices are stable; retired
// templates keep their slot). Use NumLive for the live count.
func (d *Detector) NumTemplates() int { return len(d.templates) }

// NumLive returns the number of live (non-retired) templates. With the
// lifecycle disabled it equals NumTemplates.
func (d *Detector) NumLive() int { return d.liveCount }

// Templates returns the mined templates (shared slice; do not mutate).
func (d *Detector) Templates() []Template { return d.templates }

// Pending returns how many documents wait for the next mining pass.
func (d *Detector) Pending() int { return len(d.pendingTexts) }

// TemplateInfo is a reporting view of one mined template: the pattern
// renders constants verbatim and slots as "*", matching the batch
// pipeline's Result rendering.
type TemplateInfo struct {
	Pattern  string
	Slots    int
	DocCount int
	// Dead marks a lifecycle tombstone (merged away, aged out, or
	// evicted); its slot survives so template ids stay stable, but it no
	// longer matches documents and its pattern may be empty after an
	// index rebuild reclaims the payload.
	Dead bool
}

// TemplateInfo renders template ti (0 <= ti < NumTemplates) for
// reporting. It decodes through the detector's vocabulary, so it is only
// safe while no mining pass or Load runs concurrently — serving front
// ends must call it from whatever goroutine owns the detector.
func (d *Detector) TemplateInfo(ti int) TemplateInfo {
	t := &d.templates[ti]
	var sb strings.Builder
	slots := 0
	for i, tok := range t.Tokens {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if t.Wild[i] {
			sb.WriteByte('*')
			slots++
			continue
		}
		sb.WriteString(d.vocab.Word(tok))
	}
	return TemplateInfo{Pattern: sb.String(), Slots: slots, DocCount: t.DocCount, Dead: d.isDead(ti)}
}

// Stats returns the cumulative serving-path counters (probe, DP, and
// pruning counts — see Stats).
func (d *Detector) Stats() Stats { return d.stats }

// Assignment returns the current verdict for a document id returned by
// Add. Assignments to templates merged away by the lifecycle resolve
// through the merge's forward pointer to the surviving template;
// assignments to evicted or aged-out templates keep the retired id (the
// historical verdict stands, the template just stops matching new
// documents).
func (d *Detector) Assignment(id int) Assignment {
	if t, ok := d.assignments[id]; ok {
		return Assignment{Template: d.resolve(t)}
	}
	if _, ok := d.pendingSet[id]; ok {
		return Assignment{Template: -1, Pending: true}
	}
	return Assignment{Template: -1}
}

// Add ingests one document and returns its id. The document either
// attaches to an existing template immediately or buffers for the next
// mining pass (triggered automatically at BatchSize).
func (d *Detector) Add(text string) int {
	return d.AddTokens(text, d.tk.Tokens(text))
}

// AddTokens is Add over a pre-tokenized document: words must be the
// token stream the package tokenizer produces for text. Serving front
// ends that already tokenized text — shard routing hashes or
// language-detects the token stream — reuse that work here instead of
// tokenizing a second time.
func (d *Detector) AddTokens(text string, words []string) int {
	toks := d.vocab.Encode(words)
	return d.apply(text, toks, d.match(toks, d.vocab.Size(), &d.sc, &d.stats))
}

// NextID returns the id the next ingested document will receive (equal
// to the number of documents ingested plus any SetNextID base). It is
// the snapshot high-water mark the serving layer persists.
func (d *Detector) NextID() int { return d.nextID }

// SetNextID rebases document ids so the next ingested document receives
// id n. Only legal before any document has been ingested through this
// process (restoring state with Load is fine — a serving shard restored
// from a snapshot rebases to the snapshot's high-water mark, so
// write-ahead-log replay reassigns exactly the logged ids), and n must
// not fall below the restored high-water mark (ids would collide with
// persisted ones).
func (d *Detector) SetNextID(n int) error {
	if d.ingested {
		return fmt.Errorf("stream: SetNextID(%d) after documents were ingested", n)
	}
	if n < 0 {
		return fmt.Errorf("stream: SetNextID(%d): negative id", n)
	}
	if n < d.nextID {
		return fmt.Errorf("stream: SetNextID(%d) below restored high-water mark %d", n, d.nextID)
	}
	d.nextID = n
	return nil
}

// apply commits one matched-or-buffered verdict in arrival order: the
// single mutation point Add and AddBatch share, so batched ingestion has
// exactly the serial path's effects (including flushes that fire
// mid-batch).
func (d *Detector) apply(text string, toks []int, verdict int) int {
	id := d.nextID
	d.nextID++
	d.ingested = true
	if verdict >= 0 {
		d.assignments[id] = verdict
		d.templates[verdict].DocCount++
		d.lastMatch[verdict] = id
		return id
	}
	d.pendingSet[id] = len(d.pendingIDs)
	d.pendingTexts = append(d.pendingTexts, text)
	d.pendingToks = append(d.pendingToks, toks)
	d.pendingIDs = append(d.pendingIDs, id)
	if len(d.pendingTexts) >= d.batchSize() {
		d.Flush()
	}
	return id
}

// AddBatch ingests many documents and returns their ids, with verdicts
// byte-identical to calling Add in a loop for any Options.Workers.
//
// The batch is consumed in segments of at most BatchSize−Pending()
// documents: within a segment the serial loop could not have flushed
// before the last document's own verdict (a flush needs that many
// buffered docs, and the triggering doc buffers before its flush runs),
// so every segment document is matched against the template set as of the
// segment start. Tokenization fans out first (stateless); vocabulary
// encoding then replays arrival order serially so token ids keep their
// first-seen assignment and each document sees the vocabulary size it
// would have seen under serial Adds; the match phase fans out over
// contiguous index ranges with one scratch per worker; and the verdicts
// are applied sequentially in arrival order, firing any flush exactly
// where the serial loop would.
func (d *Detector) AddBatch(texts []string) []int {
	if len(texts) == 0 {
		return []int{}
	}
	return d.AddBatchTokens(texts, d.tk.All(texts, par.Workers(d.Options.Workers)))
}

// AddBatchTokens is AddBatch over pre-tokenized documents: words[i]
// must be the token stream of texts[i] as produced by the package
// tokenizer. The serving sharder tokenizes once per document to compute
// its routing key and hands the streams through here, so the encode
// step never re-tokenizes. Verdicts are identical to AddBatch (the
// tokenizer is a pure function of the text).
func (d *Detector) AddBatchTokens(texts []string, words [][]string) []int {
	ids := make([]int, len(texts))
	if len(texts) == 0 {
		return ids
	}
	workers := par.Workers(d.Options.Workers)
	toks := make([][]int, len(texts))
	sizes := make([]int, len(texts)) // vocab size after encoding doc i
	verdicts := make([]int, len(texts))
	for start := 0; start < len(texts); {
		room := d.batchSize() - len(d.pendingTexts)
		if room < 1 {
			room = 1
		}
		end := start + room
		if end > len(texts) {
			end = len(texts)
		}
		for i := start; i < end; i++ {
			toks[i] = d.vocab.Encode(words[i])
			sizes[i] = d.vocab.Size()
		}
		d.matchRange(toks, sizes, verdicts, start, end, workers)
		for i := start; i < end; i++ {
			ids[i] = d.apply(texts[i], toks[i], verdicts[i])
		}
		start = end
	}
	return ids
}

// matchRange fills verdicts[start:end] for already-encoded documents
// against the current template set. Verdicts are pure per-document
// functions of (toks, vocab size, templates), so the fan-out only changes
// scheduling; per-worker stats merge in ascending worker order.
func (d *Detector) matchRange(toks [][]int, sizes, verdicts []int, start, end, workers int) {
	n := end - start
	if workers > n {
		workers = n
	}
	if workers <= 1 || len(d.templates) == 0 {
		for i := start; i < end; i++ {
			verdicts[i] = d.match(toks[i], sizes[i], &d.sc, &d.stats)
		}
		return
	}
	for len(d.batchSc) < workers {
		d.batchSc = append(d.batchSc, &matchScratch{})
	}
	for w := 0; w < workers; w++ {
		d.batchSc[w].stats = Stats{}
	}
	par.Map(verdicts[start:end], workers,
		func(w int) *matchScratch { return d.batchSc[w] },
		func(i int, sc *matchScratch) int {
			return d.match(toks[start+i], sizes[start+i], sc, &sc.stats)
		})
	for w := 0; w < workers; w++ {
		d.stats.add(d.batchSc[w].stats)
	}
}

func (d *Detector) batchSize() int {
	if d.BatchSize <= 0 {
		return 512
	}
	return d.BatchSize
}

// register appends a template — payloads copied into the detector's
// arenas, SlotWords sliced from the shared all-ones vector — and indexes
// its constant tokens. Every template — mined by Flush, restored by Load,
// or bulk-loaded by Register — enters through here, so the tiered index
// is always in sync with the template set. Registration reuses the
// index's pooled scratch: loading a 100k-template snapshot allocates a
// few arena blocks, not two maps per template.
func (d *Detector) register(t Template) {
	slots := 0
	for _, w := range t.Wild {
		if w {
			slots++
		}
	}
	for len(d.ones) < slots {
		d.ones = append(d.ones, 1)
	}
	t.SlotWords = d.ones[:slots:slots]
	t.Tokens = d.tokA.copyIn(t.Tokens)
	t.Wild = d.wildA.copyIn(t.Wild)
	ti := len(d.templates)
	d.templates = append(d.templates, t)
	d.dead = append(d.dead, false)
	d.forward = append(d.forward, -1)
	// Registration seeds the recency clock at the current high-water
	// mark, so a fresh template gets a full TTL before age-out.
	d.lastMatch = append(d.lastMatch, d.nextID)
	d.liveCount++
	d.index.add(ti, t.Tokens, t.Wild, slots)
}

// Register adds one template directly, bypassing mining — the bulk-load
// path for serving processes that receive template sets mined elsewhere.
// words and wild run in lockstep; words at wild positions are ignored
// (slots match any token, exactly as in templates restored by Load).
// Returns the new template's index. DocCount starts at zero and counts
// streaming matches from here on.
func (d *Detector) Register(words []string, wild []bool) (int, error) {
	if len(words) != len(wild) {
		return 0, fmt.Errorf("stream: register: %d words vs %d wild flags", len(words), len(wild))
	}
	if len(words) == 0 {
		return 0, fmt.Errorf("stream: register: empty template")
	}
	t := Template{
		Wild:   append([]bool(nil), wild...),
		Tokens: make([]int, len(words)),
	}
	for i, w := range words {
		if wild[i] {
			continue
		}
		t.Tokens[i] = d.vocab.Add(w)
	}
	ti := len(d.templates)
	d.register(t)
	return ti, nil
}

// Flush mines the buffered documents, appending any accepted templates
// and assigning their member documents. With Lifecycle.Incremental off
// the batch pipeline runs over the buffer (buffered documents that end
// in no template are released as noise: their assignment stays -1 and
// is final); with it on, the incremental miner extends its cross-flush
// state instead (see minestate.go) and unmatched documents are retained
// for a bounded number of later passes. Either way the lifecycle pass
// (merge, age-out, cap eviction) runs after mining.
func (d *Detector) Flush() {
	if len(d.pendingTexts) == 0 {
		return
	}
	d.stats.Flushes++
	d.stats.FlushDocs += len(d.pendingTexts)
	var newTIs []int
	if d.Lifecycle.Incremental {
		newTIs = d.flushIncremental()
	} else {
		newTIs = d.flushBatch()
	}
	d.pendingTexts = nil
	d.pendingToks = nil
	d.pendingIDs = nil
	clear(d.pendingSet)
	d.lifecyclePass(newTIs)
}

// flushBatch mines the buffer with the batch pipeline. The pipeline is
// fed the token streams buffered at ingest time (decoded back to words —
// a slice lookup per token) rather than re-tokenizing the raw texts;
// because the tokenizer is pure, the verdicts are byte-identical
// (legacyFlush forces the old re-tokenizing path for the gate proving
// that).
func (d *Detector) flushBatch() []int {
	var res *core.Result
	if d.legacyFlush {
		res = core.Run(d.pendingTexts, d.Options)
	} else {
		words := make([][]string, len(d.pendingToks))
		for i, toks := range d.pendingToks {
			w := make([]string, len(toks))
			for j, tok := range toks {
				w[j] = d.vocab.Word(tok)
			}
			words[i] = w
		}
		res = core.RunTokens(d.pendingTexts, words, d.Options)
	}
	var newTIs []int
	for ci := range res.Clusters {
		for _, tr := range res.Clusters[ci].Templates {
			// Re-encode the template over the detector's own vocabulary.
			tokens := make([]int, tr.Template.Len())
			wild := make([]bool, tr.Template.Len())
			for i, tid := range tr.Template.TokenIDs {
				if tr.Template.IsSlot[i] {
					wild[i] = true
					if tid >= 0 {
						tokens[i] = d.vocab.Add(res.Vocab.Word(tid))
					}
					continue
				}
				tokens[i] = d.vocab.Add(res.Vocab.Word(tid))
			}
			ti := len(d.templates)
			d.register(Template{
				Pattern:  tr.Template,
				Wild:     wild,
				Tokens:   tokens,
				DocCount: len(tr.Docs),
			})
			d.stats.TemplatesMined++
			newTIs = append(newTIs, ti)
			for _, local := range tr.Docs {
				d.assignments[d.pendingIDs[local]] = ti
			}
		}
	}
	return newTIs
}
