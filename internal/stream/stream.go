// Package stream provides an incremental InfoShield detector for
// continuously arriving documents — the deployment shape of the paper's
// application (law enforcement receives new ads every day; spam filters
// see tweets continuously).
//
// New documents are first tested against the already-mined templates with
// the same MDL criterion the batch pipeline uses (C(d|T) < C(d), with
// slots as wildcards); matches attach immediately. The rest buffer, and
// when the buffer reaches BatchSize the full coarse+fine pipeline runs
// over it to mine new templates. Everything stays deterministic for a
// given input order.
package stream

import (
	"infoshield/internal/align"
	"infoshield/internal/core"
	"infoshield/internal/mdl"
	"infoshield/internal/template"
	"infoshield/internal/tokenize"
)

// Assignment is the detector's verdict for one added document.
type Assignment struct {
	// Template is the index of the matched template, or -1.
	Template int
	// Pending reports that the document waits in the buffer for the next
	// mining pass (its Template is -1 but may change on Flush).
	Pending bool
}

// Template is one mined template with its running document count.
type Template struct {
	Pattern  template.Template
	Wild     []bool // per position: is a slot (wildcard for matching)
	Tokens   []int  // constants (slot positions keep the consensus token)
	DocCount int
}

// Detector accumulates documents and templates incrementally.
type Detector struct {
	// BatchSize is the buffer size that triggers a mining pass
	// (default 512).
	BatchSize int
	// Options configures the mining passes.
	Options core.Options

	tk        tokenize.Tokenizer
	vocab     *tokenize.Vocab
	templates []Template

	pendingTexts []string
	pendingIDs   []int // caller-visible doc ids of buffered docs

	nextID      int
	assignments map[int]int // doc id -> template index
}

// New creates an empty detector.
func New(opt core.Options) *Detector {
	return &Detector{
		BatchSize:   512,
		Options:     opt,
		vocab:       tokenize.NewVocab(),
		assignments: make(map[int]int),
	}
}

// NumTemplates returns the number of mined templates.
func (d *Detector) NumTemplates() int { return len(d.templates) }

// Templates returns the mined templates (shared slice; do not mutate).
func (d *Detector) Templates() []Template { return d.templates }

// Pending returns how many documents wait for the next mining pass.
func (d *Detector) Pending() int { return len(d.pendingTexts) }

// Assignment returns the current verdict for a document id returned by Add.
func (d *Detector) Assignment(id int) Assignment {
	if t, ok := d.assignments[id]; ok {
		return Assignment{Template: t}
	}
	for _, pid := range d.pendingIDs {
		if pid == id {
			return Assignment{Template: -1, Pending: true}
		}
	}
	return Assignment{Template: -1}
}

// Add ingests one document and returns its id. The document either
// attaches to an existing template immediately or buffers for the next
// mining pass (triggered automatically at BatchSize).
func (d *Detector) Add(text string) int {
	id := d.nextID
	d.nextID++
	toks := d.vocab.Encode(d.tk.Tokens(text))
	if t := d.matchTemplate(toks); t >= 0 {
		d.assignments[id] = t
		d.templates[t].DocCount++
		return id
	}
	d.pendingTexts = append(d.pendingTexts, text)
	d.pendingIDs = append(d.pendingIDs, id)
	if len(d.pendingTexts) >= d.batchSize() {
		d.Flush()
	}
	return id
}

// AddBatch ingests many documents and returns their ids.
func (d *Detector) AddBatch(texts []string) []int {
	ids := make([]int, len(texts))
	for i, t := range texts {
		ids[i] = d.Add(t)
	}
	return ids
}

func (d *Detector) batchSize() int {
	if d.BatchSize <= 0 {
		return 512
	}
	return d.BatchSize
}

// matchTemplate returns the cheapest template whose encoding of toks
// beats the standalone cost, or -1. Slots match as wildcards and their
// fill is charged via S(w) ≈ S(1) per slot.
func (d *Detector) matchTemplate(toks []int) int {
	if len(toks) == 0 || len(d.templates) == 0 {
		return -1
	}
	V := d.vocab.Size()
	standalone := mdl.DocCost(len(toks), V)
	best, bestCost := -1, standalone
	numT := len(d.templates)
	for ti := range d.templates {
		t := &d.templates[ti]
		a := align.PairwiseWild(t.Tokens, t.Wild, toks)
		slotWords := make([]int, 0, 4)
		for i, w := range t.Wild {
			if w {
				// Approximate: one word per matched slot position.
				_ = i
				slotWords = append(slotWords, 1)
			}
		}
		cost := mdl.DataCostMatched(mdl.AlignStats{
			AlignLen:   a.Len(),
			Unmatched:  a.Distance(),
			AddedWords: a.Subs + a.Inss,
			SlotWords:  slotWords,
		}, numT, V)
		if cost < bestCost {
			best, bestCost = ti, cost
		}
	}
	return best
}

// Flush mines the buffered documents with the batch pipeline, appending
// any accepted templates and assigning their member documents. Buffered
// documents that end in no template are released as noise (their
// assignment stays -1 and is final).
func (d *Detector) Flush() {
	if len(d.pendingTexts) == 0 {
		return
	}
	res := core.Run(d.pendingTexts, d.Options)
	for ci := range res.Clusters {
		for _, tr := range res.Clusters[ci].Templates {
			// Re-encode the template over the detector's own vocabulary.
			tokens := make([]int, tr.Template.Len())
			wild := make([]bool, tr.Template.Len())
			for i, tid := range tr.Template.TokenIDs {
				if tr.Template.IsSlot[i] {
					wild[i] = true
					if tid >= 0 {
						tokens[i] = d.vocab.Add(res.Vocab.Word(tid))
					}
					continue
				}
				tokens[i] = d.vocab.Add(res.Vocab.Word(tid))
			}
			ti := len(d.templates)
			d.templates = append(d.templates, Template{
				Pattern:  tr.Template,
				Wild:     wild,
				Tokens:   tokens,
				DocCount: len(tr.Docs),
			})
			for _, local := range tr.Docs {
				d.assignments[d.pendingIDs[local]] = ti
			}
		}
	}
	d.pendingTexts = nil
	d.pendingIDs = nil
}
