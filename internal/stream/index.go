package stream

import (
	"infoshield/internal/align"
	"infoshield/internal/mdl"
)

// posting is one inverted-index entry: a template that contains a given
// constant token, with the token's multiset count among the template's
// constants (so a probe can accumulate exact multiset overlaps without
// touching per-template count maps).
type posting struct {
	template int
	count    int
}

// tmplIndex is the candidate-pruning index over the mined template set:
// constant-token id → the templates containing that token. A probe walks
// the postings of its own (distinct) tokens to accumulate, per template,
// the multiset overlap between the template's constants and the document
// — the quantity align.WildConditionalLowerBound turns into an admissible
// lower bound on the matched cost, letting the detector skip the O(l²)
// wildcard DP for templates that provably cannot win. Postings lists are
// appended at registration time only, so each list is ascending in
// template index and the index is read-only during (possibly concurrent)
// matching.
type tmplIndex struct {
	postings map[int][]posting
}

// add registers template ti's constant-token multiset. Wild positions are
// excluded: a slot's consensus token is matching decoration, not a
// constant the document must supply.
func (ix *tmplIndex) add(ti int, t *Template) {
	if ix.postings == nil {
		ix.postings = make(map[int][]posting)
	}
	counts := make(map[int]int, len(t.Tokens))
	order := make([]int, 0, len(t.Tokens)) // first-occurrence order, not map order
	for i, tok := range t.Tokens {
		if t.Wild[i] {
			continue
		}
		if counts[tok] == 0 {
			order = append(order, tok)
		}
		counts[tok]++
	}
	for _, tok := range order {
		ix.postings[tok] = append(ix.postings[tok], posting{template: ti, count: counts[tok]})
	}
}

// Stats counts the serving path's matching work since the detector was
// created — the streaming analogue of Result.Timings()'s stage breakdown,
// exposing how effective the index pruning is (DPPruned / Candidates is
// the DP-skip rate).
type Stats struct {
	// Probes counts documents tested against a non-empty template set.
	Probes int
	// Candidates counts template candidates considered across all probes
	// (Σ per-probe template-set size).
	Candidates int
	// DPRuns counts full wildcard-alignment DPs executed.
	DPRuns int
	// DPPruned counts candidates skipped because their admissible lower
	// bound already reached the best cost found so far.
	DPPruned int
}

func (s *Stats) add(o Stats) {
	s.Probes += o.Probes
	s.Candidates += o.Candidates
	s.DPRuns += o.DPRuns
	s.DPPruned += o.DPPruned
}

// matchScratch is the per-goroutine probe state: the overlap accumulator
// (dense per-template, reset sparsely via touched), the sorted-token
// buffer behind the multiset run-length walk, and the pooled wildcard-DP
// table. Exactly one goroutine owns a matchScratch at a time; the batched
// serve path keeps one per worker, so a steady-state probe allocates
// nothing. stats is the owner's private counter set, merged into the
// detector's totals in deterministic (ascending-worker) order.
type matchScratch struct {
	overlap []int
	touched []int
	sorted  []int
	wild    align.Scratch
	stats   Stats
}

// match returns the cheapest template whose encoding of toks beats the
// standalone cost, or -1 — byte-identical to the pre-index full scan:
// templates are visited in ascending index with the same strict
// cost < bestCost improvement test, and the lower bound only skips
// templates whose exact cost provably could not pass that test.
func (d *Detector) match(toks []int, vocabSize int, sc *matchScratch, st *Stats) int {
	if len(toks) == 0 || len(d.templates) == 0 {
		return -1
	}
	numT := len(d.templates)
	st.Probes++
	st.Candidates += numT
	best, bestCost := -1, mdl.DocCost(len(toks), vocabSize)

	// Accumulate each template's constant-token multiset overlap with the
	// document: sort a copy of toks, walk its runs, and for each distinct
	// token credit min(doc count, template count) to every posting.
	if cap(sc.overlap) < numT {
		sc.overlap = make([]int, numT)
	}
	overlap := sc.overlap[:numT]
	sorted := append(sc.sorted[:0], toks...)
	align.SortInts(sorted)
	sc.sorted = sorted
	touched := sc.touched[:0]
	for lo := 0; lo < len(sorted); {
		hi := lo + 1
		for hi < len(sorted) && sorted[hi] == sorted[lo] {
			hi++
		}
		dc := hi - lo
		for _, p := range d.index.postings[sorted[lo]] {
			if overlap[p.template] == 0 {
				touched = append(touched, p.template)
			}
			if p.count < dc {
				overlap[p.template] += p.count
			} else {
				overlap[p.template] += dc
			}
		}
		lo = hi
	}
	sc.touched = touched

	// Ascending scan over all templates; the DP runs only for survivors of
	// the admissible bound, which tightens as bestCost improves.
	for ti := 0; ti < numT; ti++ {
		t := &d.templates[ti]
		lb := align.WildConditionalLowerBound(
			len(t.Tokens), len(toks), overlap[ti], t.SlotWords, numT, vocabSize)
		if lb >= bestCost && !d.noPrune {
			st.DPPruned++
			continue
		}
		st.DPRuns++
		a := align.PairwiseWildScratch(t.Tokens, t.Wild, toks, &sc.wild)
		cost := mdl.DataCostMatched(mdl.AlignStats{
			AlignLen:   a.Len(),
			Unmatched:  a.Distance(),
			AddedWords: a.Subs + a.Inss,
			SlotWords:  t.SlotWords,
		}, numT, vocabSize)
		if cost < bestCost {
			best, bestCost = ti, cost
		}
	}

	// Sparse reset: only touched entries are nonzero, so the accumulator
	// stays all-zero between probes without an O(T) clear.
	for _, ti := range touched {
		overlap[ti] = 0
	}
	return best
}
