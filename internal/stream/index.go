package stream

import (
	"math/bits"
	"time"

	"infoshield/internal/align"
	"infoshield/internal/mdl"
)

// The candidate-pruning index is tiered so a probe's work tracks the
// handful of templates that share rare tokens with the document, not the
// size of the template set:
//
//   - Tier 0 — bucket skip. Templates are bucketed by ⌈lg⌉ of their
//     constant-token count, and each bucket keeps the aggregates (max
//     constants, min reference length, slot-count range) that evaluate an
//     admissible lower bound for the *entire bucket* against the
//     document's standalone cost. A skipped bucket never contributes a
//     candidate: its chunks are stepped over during the postings walk and
//     its members are pruned wholesale, in O(1) per bucket.
//
//   - Tier 1 — flat postings. Surviving buckets are probed through
//     token → chunk-chain offset tables over one flat chunk slab (no
//     map[int][]posting: no hashing, no per-token list headers, cache-line
//     sized chunks). Chunks are bucket-homogeneous so the walk tests the
//     bucket-skip bit once per chunk, not once per posting.
//
//   - Tier 2 — saturated tokens. A token carried by more than
//     satThreshold templates (the "call", "now", "the" of ad corpora)
//     stops growing a chain and instead feeds a probe-wide overlap
//     credit added to every template's bound. Overcounting overlap only
//     weakens a lower bound, so this tier trades bound tightness for
//     O(1) probe cost on exactly the tokens whose chains would have been
//     longest — and stays admissible by construction, where classic
//     stop-listing (undercounting) would prune true winners. Templates
//     none of whose rare tokens appear in the document are then mass-
//     pruned per bucket with the credit as their whole overlap, which is
//     what keeps candidate generation sublinear in template count.
//
// Candidates that survive all tiers are ranked best-first (overlap
// descending) so the running bound tightens as early as possible, each is
// re-tested against the bit-parallel exact-distance bound, and only the
// remainder runs the full wildcard DP. Every tier preserves the scan
// verdict exactly; see match for the tie-handling that keeps the
// lowest-index winner semantics under reordering.
const (
	// numBuckets caps the ⌈lg constants⌉ bucketing; templates with 2^18+
	// constant tokens share the last bucket.
	numBuckets = 20
	// satThreshold is the postings-chain length beyond which a token is
	// saturated into the overlap credit (tier 2).
	satThreshold = 64
	// chunkEntries sizes postingChunk to one 64-byte cache line.
	chunkEntries = 7

	noHead  = -1 // token has no postings
	satHead = -2 // token is saturated (tier 2)
)

// CandHistBuckets is the size of the per-probe candidate histogram:
// bucket k counts probes whose surviving-candidate set had ⌈lg(n+1)⌉ = k
// (bucket 0 is exactly zero candidates; the last bucket absorbs 2^14+).
const CandHistBuckets = 16

// bucketOf maps a constant-token count to its tier-0 bucket.
func bucketOf(constCount int) int {
	b := bits.Len(uint(constCount))
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// tmplMeta is the per-template matcher state the probe hot loop reads,
// kept apart from Template so the scan touches only packed fields: the
// shape numbers behind the bounds, and the bit-parallel mask table
// (wildMask, eqToks, eqMasks — arena-backed, built at registration) valid
// when refLen ≤ align.WildBitCap.
type tmplMeta struct {
	refLen   int32
	constCnt int32
	slots    int32
	bucket   int16
	wildMask uint64
	eqToks   []int32
	eqMasks  []uint64
}

// bucketInfo aggregates one tier-0 bucket: the member list (ascending —
// registration appends in template order) and the extrema that make the
// bucket-level bound admissible for every member. live counts members
// that are not lifecycle tombstones; the extrema are not tightened when a
// member dies (they still dominate every live member, so the bound stays
// admissible — merely looser until rebuildIndex compacts the bucket).
type bucketInfo struct {
	members []int32
	live    int
	cmax    int // max constant-token count
	rmin    int // min reference length (constants + slots)
	smin    int // min slot count
	smax    int // max slot count
}

// postingChunk is one cache line of postings for a single token and a
// single bucket: up to chunkEntries (template, multiset count) pairs plus
// the chain link. Bucket homogeneity lets the probe walk skip a whole
// chunk with one bucket test.
type postingChunk struct {
	next   int32
	bucket int16
	n      int16
	tmpl   [chunkEntries]int32
	cnt    [chunkEntries]int32
}

// postingStore holds every posting in one flat chunk slab with dense
// token → head/tail offset tables — the tier-1 replacement for
// map[int][]posting. Appends happen at registration only; probes are
// read-only, so concurrent AddBatch workers share the store without
// synchronization.
type postingStore struct {
	heads  []int32
	tails  []int32
	counts []int32 // postings per token, to trigger saturation
	chunks []postingChunk
	// bsets is the token → bucket-set bitmap (bit b set when the token's
	// live chain holds at least one chunk in bucket b; numBuckets ≤ 32).
	// A probe ANDs it with the tier-0 live-bucket mask to decide in one
	// word test whether walking the chain can contribute anything — the
	// rare-token bitmap skip. Saturation zeroes it: the chain is dead and
	// the token's contribution moves to the overlap credit. Rebuilt with
	// the rest of the index whenever registration replays (Load).
	bsets []uint32
}

func (ps *postingStore) grow(tok int) {
	for len(ps.heads) <= tok {
		ps.heads = append(ps.heads, noHead)
		ps.tails = append(ps.tails, noHead)
		ps.counts = append(ps.counts, 0)
		ps.bsets = append(ps.bsets, 0)
	}
}

// add appends one posting, saturating the token once its chain would
// exceed satThreshold (the chain is abandoned in place; orphaned chunks
// cost memory, not probe time).
func (ps *postingStore) add(ti, bucket, tok, count int) {
	ps.grow(tok)
	if ps.heads[tok] == satHead {
		return
	}
	if ps.counts[tok] >= satThreshold {
		ps.heads[tok] = satHead
		ps.tails[tok] = noHead
		ps.bsets[tok] = 0
		return
	}
	ps.counts[tok]++
	ps.bsets[tok] |= 1 << uint(bucket)
	ci := ps.tails[tok]
	if ci == noHead || int(ps.chunks[ci].n) == chunkEntries || ps.chunks[ci].bucket != int16(bucket) {
		ps.chunks = append(ps.chunks, postingChunk{next: noHead, bucket: int16(bucket)})
		ni := int32(len(ps.chunks) - 1)
		if ci == noHead {
			ps.heads[tok] = ni
		} else {
			ps.chunks[ci].next = ni
		}
		ps.tails[tok] = ni
		ci = ni
	}
	ch := &ps.chunks[ci]
	ch.tmpl[ch.n] = int32(ti)
	ch.cnt[ch.n] = int32(count)
	ch.n++
}

// tmplIndex is the tiered candidate-pruning index over the mined template
// set. Registration is single-writer (the detector's owning goroutine);
// probes are read-only and run concurrently from AddBatch workers. The
// reg* slices are the pooled registration scratch: dense per-token counts
// and bit masks with sparse reset via the order list, so registering a
// template — the Load hot loop at 100k templates — allocates nothing in
// steady state.
type tmplIndex struct {
	meta    []tmplMeta
	buckets [numBuckets]bucketInfo
	store   postingStore
	eqTokA  arena[int32]
	eqMaskA arena[uint64]

	regCount []int32
	regMask  []uint64
	regOrder []int
	regToks  []int32
	regMasks []uint64
}

// add registers template ti's constant-token multiset, mask table, and
// bucket membership. Wild positions are excluded from postings: a slot's
// consensus token is matching decoration, not a constant the document
// must supply.
func (ix *tmplIndex) add(ti int, tokens []int, wild []bool, slots int) {
	refLen := len(tokens)
	useBits := refLen <= align.WildBitCap
	order := ix.regOrder[:0]
	var wildMask uint64
	for i, tok := range tokens {
		if wild[i] {
			if useBits {
				wildMask |= 1 << uint(i)
			}
			continue
		}
		for len(ix.regCount) <= tok {
			ix.regCount = append(ix.regCount, 0)
			ix.regMask = append(ix.regMask, 0)
		}
		if ix.regCount[tok] == 0 {
			order = append(order, tok)
			ix.regMask[tok] = 0
		}
		ix.regCount[tok]++
		if useBits {
			ix.regMask[tok] |= 1 << uint(i)
		}
	}
	align.SortInts(order)
	ix.regOrder = order

	constCnt := refLen - slots
	b := bucketOf(constCnt)
	mt := tmplMeta{
		refLen:   int32(refLen),
		constCnt: int32(constCnt),
		slots:    int32(slots),
		bucket:   int16(b),
		wildMask: wildMask,
	}
	if useBits {
		toks := ix.regToks[:0]
		masks := ix.regMasks[:0]
		for _, tok := range order {
			toks = append(toks, int32(tok))
			masks = append(masks, ix.regMask[tok])
		}
		ix.regToks, ix.regMasks = toks, masks
		mt.eqToks = ix.eqTokA.copyIn(toks)
		mt.eqMasks = ix.eqMaskA.copyIn(masks)
	}
	for _, tok := range order {
		ix.store.add(ti, b, tok, int(ix.regCount[tok]))
		ix.regCount[tok] = 0 // sparse reset; regMask re-zeroes on first touch
	}

	bi := &ix.buckets[b]
	if len(bi.members) == 0 {
		bi.cmax, bi.rmin, bi.smin, bi.smax = constCnt, refLen, slots, slots
	} else {
		if constCnt > bi.cmax {
			bi.cmax = constCnt
		}
		if refLen < bi.rmin {
			bi.rmin = refLen
		}
		if slots < bi.smin {
			bi.smin = slots
		}
		if slots > bi.smax {
			bi.smax = slots
		}
	}
	bi.members = append(bi.members, int32(ti))
	bi.live++
	ix.meta = append(ix.meta, mt)
}

// addDead appends a tombstone slot to the meta table so template indices
// stay aligned when rebuildIndex re-registers a template set that holds
// retired templates: the slot joins no bucket and no postings chain, so
// probes can never surface it.
func (ix *tmplIndex) addDead() {
	ix.meta = append(ix.meta, tmplMeta{bucket: -1})
}

// Stats counts the serving path's matching work since the detector was
// created — the streaming analogue of Result.Timings()'s stage breakdown.
// DPPruned / Candidates is the DP-skip rate; Examined / Probes is the
// mean surviving-candidate set the tiered index hands to the bounded
// scan. All counters are pure per-document functions, so they are
// identical for any Options.Workers. The struct stays ==-comparable
// (fixed-size histogram) — tests rely on it.
type Stats struct {
	// Probes counts documents tested against a non-empty template set.
	Probes int
	// Candidates counts template candidates considered across all probes
	// (Σ per-probe template-set size).
	Candidates int
	// Examined counts candidates that survived the tiered index (bucket
	// skip + untouched mass-prune) and reached the per-template bound.
	Examined int
	// DPRuns counts full wildcard-alignment DPs executed.
	DPRuns int
	// DPPruned counts candidates resolved without the full DP: skipped
	// buckets, mass-pruned untouched templates, and per-candidate bound
	// rejections (including the bit-parallel refinements).
	DPPruned int
	// BitDPRuns counts bit-parallel exact-distance evaluations.
	BitDPRuns int
	// BitDPPruned counts candidates the exact-distance bound rejected
	// after the overlap bound had passed them (a subset of DPPruned).
	BitDPPruned int
	// BandRuns counts exact alignments routed through the banded DP
	// (references within the bit cap, seeded by the bit-parallel
	// distance); always ≤ DPRuns. BandRetries counts band widenings —
	// zero whenever the seed distance is exact, so any nonzero value is a
	// bug signal, not a tuning knob.
	BandRuns    int
	BandRetries int
	// BitmapSkips counts probes whose tokens touched no live bucket (the
	// token → bucket-set bitmap proved the whole postings walk useless);
	// PostingsWalks counts probes that walked at least one chain. On the
	// pruned path BitmapSkips + PostingsWalks == Probes.
	BitmapSkips   int
	PostingsWalks int
	// WalkNs / BoundNs / BitDPNs / ExactDPNs attribute pruned-path
	// wall-clock to the matcher's stages: tier-0 + postings walk +
	// candidate assembly, the batched bound loop, the bit-parallel
	// distance refinements (scan time minus exact DPs), and the exact
	// alignments. Unlike every other field they are wall-clock — NOT a
	// pure per-document function — so cross-worker equivalence checks
	// must compare through Counters(), which zeroes them.
	WalkNs    int64
	BoundNs   int64
	BitDPNs   int64
	ExactDPNs int64
	// Flushes counts mining passes; FlushDocs the pending documents they
	// consumed (Σ per-flush buffer size).
	Flushes   int
	FlushDocs int
	// TemplatesMined counts templates accepted by mining passes;
	// TemplatesMerged / TemplatesEvicted / TemplatesAged count lifecycle
	// retirements by cause (MDL merge, cap eviction, TTL age-out). Live
	// templates = TemplatesMined + registrations − the three retirement
	// counters.
	TemplatesMined   int
	TemplatesMerged  int
	TemplatesEvicted int
	TemplatesAged    int
	// MineReusedDocs counts retained documents the incremental miner
	// re-clustered from its cross-flush window without re-extracting
	// their phrases; MineClusteredDocs counts all documents handed to the
	// clustering stage across incremental flushes (reused + new). Their
	// ratio is the incremental-coarse reuse rate; the from-scratch
	// baseline would have re-clustered every retained document every
	// flush.
	MineReusedDocs    int
	MineClusteredDocs int
	// CandHist is the log2 histogram of per-probe Examined sizes: bucket
	// k counts probes with ⌈lg(n+1)⌉ = k surviving candidates. A drift
	// toward high buckets says index pruning is degrading before mean
	// latency shows it.
	CandHist [CandHistBuckets]int
}

func (s *Stats) add(o Stats) {
	s.Probes += o.Probes
	s.Candidates += o.Candidates
	s.Examined += o.Examined
	s.DPRuns += o.DPRuns
	s.DPPruned += o.DPPruned
	s.BitDPRuns += o.BitDPRuns
	s.BitDPPruned += o.BitDPPruned
	s.BandRuns += o.BandRuns
	s.BandRetries += o.BandRetries
	s.BitmapSkips += o.BitmapSkips
	s.PostingsWalks += o.PostingsWalks
	s.WalkNs += o.WalkNs
	s.BoundNs += o.BoundNs
	s.BitDPNs += o.BitDPNs
	s.ExactDPNs += o.ExactDPNs
	s.Flushes += o.Flushes
	s.FlushDocs += o.FlushDocs
	s.TemplatesMined += o.TemplatesMined
	s.TemplatesMerged += o.TemplatesMerged
	s.TemplatesEvicted += o.TemplatesEvicted
	s.TemplatesAged += o.TemplatesAged
	s.MineReusedDocs += o.MineReusedDocs
	s.MineClusteredDocs += o.MineClusteredDocs
	for i := range s.CandHist {
		s.CandHist[i] += o.CandHist[i]
	}
}

// Counters returns s with the wall-clock timing fields zeroed — the
// deterministic slice of the stats. Every remaining field is a pure
// per-document function, identical for any Options.Workers; the
// equivalence tests compare detectors through Counters() so scheduling-
// dependent timings don't trip the exact-equality gates.
func (s Stats) Counters() Stats {
	s.WalkNs, s.BoundNs, s.BitDPNs, s.ExactDPNs = 0, 0, 0, 0
	return s
}

// histBucket maps a per-probe candidate count into CandHist.
func histBucket(n int) int {
	b := bits.Len(uint(n))
	if b >= CandHistBuckets {
		b = CandHistBuckets - 1
	}
	return b
}

// matchScratch is the per-goroutine probe state: the overlap accumulator
// (dense per-template, reset sparsely via touched), the sorted-token
// buffer behind the multiset run-length walk, the candidate key buffer,
// the per-bucket counters, and the pooled wildcard-DP table. Exactly one
// goroutine owns a matchScratch at a time; the batched serve path keeps
// one per worker, so a steady-state probe allocates nothing. stats is the
// owner's private counter set, merged into the detector's totals in
// deterministic (ascending-worker) order.
type matchScratch struct {
	overlap   []int
	touched   []int
	sorted    []int
	cands     []int
	bucketHit [numBuckets]int
	skip      [numBuckets]bool
	wild      align.Scratch
	stats     Stats
	// cRef / cSlots / lbs are the structure-of-arrays candidate batch:
	// one gather pass pulls the surviving candidates' shape numbers out
	// of the meta slab, then the bound loop runs branch-light over flat
	// parallel arrays instead of re-chasing meta per candidate, and the
	// scan reads the precomputed bounds back by position.
	cRef   []int32
	cSlots []int32
	lbs    []float64
}

// bucketBound is the tier-0 admissible lower bound on the matched cost of
// any member of bucket bi against a document of docLen tokens, given an
// upper bound on any member's constant overlap. It evaluates the same
// expression tree as align.WildConditionalLowerBound at componentwise-
// dominated inputs — alignLen from the bucket-min reference length,
// matches from the bucket-max constants and slots, the slot sum over the
// bucket-min slot count (every member's cost sums the identical all-ones
// S(1) terms, so dropped terms are nonnegative) — so bucketBound ≤ member
// bound ≤ exact cost holds in floating point, not just exact arithmetic.
// The bound runs through the probe's hoisted WildBounder, whose CostOnes
// is bit-identical to the mdl.DataCostMatched call it replaces.
func (d *Detector) bucketBound(bounder align.WildBounder, bi *bucketInfo, docLen, overlap int) float64 {
	alignLen := bi.rmin
	if docLen > alignLen {
		alignLen = docLen
	}
	maxMatches := overlap + bi.smax
	if maxMatches > docLen {
		maxMatches = docLen
	}
	unmatched := alignLen - maxMatches
	if unmatched < 0 {
		unmatched = 0
	}
	added := docLen - maxMatches
	if added < 0 {
		added = 0
	}
	return bounder.CostOnes(alignLen, unmatched, added, bi.smin)
}

// match returns the cheapest template whose encoding of toks beats the
// standalone cost, or -1 — byte-identical to the pre-index full ascending
// scan. The scan's verdict is the lexicographic minimum of (exact cost,
// template index) over templates beating the standalone cost, which is
// order-free; the best-first scan preserves it by only skipping a
// candidate when its bound proves it can neither beat the running best
// cost nor tie it from a lower index, and by applying the same
// (cost, index) test on takeover. All comparisons are < / <=: no float
// equality is ever tested.
func (d *Detector) match(toks []int, vocabSize int, sc *matchScratch, st *Stats) int {
	if len(toks) == 0 || d.liveCount == 0 {
		return -1
	}
	// numT is the MDL template count (the lg t term of the matched cost):
	// lifecycle tombstones are out of the model, so only live templates
	// count. total sizes the index-keyed accumulators — template indices
	// still span every slot ever registered. dead is nil until the first
	// retirement, so the hot loops pay one nil test while the lifecycle
	// is off (or idle), not a per-posting bool load.
	numT := d.liveCount
	total := len(d.templates)
	dead := d.dead
	if !d.anyDead {
		dead = nil
	}
	m := len(toks)
	st.Probes++
	st.Candidates += numT
	standalone := mdl.DocCost(m, vocabSize)
	best, bestCost := -1, standalone

	exactCost := func(x int) float64 {
		t := &d.templates[x]
		a := align.PairwiseWildScratch(t.Tokens, t.Wild, toks, &sc.wild)
		return mdl.DataCostMatched(mdl.AlignStats{
			AlignLen:   a.Len(),
			Unmatched:  a.Distance(),
			AddedWords: a.Subs + a.Inss,
			SlotWords:  t.SlotWords,
		}, numT, vocabSize)
	}

	if d.noPrune {
		// Reference path: the full ascending scan with the DP forced on
		// every live template — the oracle the pruning-equivalence gate
		// drives.
		for ti := 0; ti < total; ti++ {
			if dead != nil && dead[ti] {
				continue
			}
			st.DPRuns++
			if cost := exactCost(ti); cost < bestCost {
				best, bestCost = ti, cost
			}
		}
		st.Examined += numT
		st.CandHist[histBucket(numT)]++
		return best
	}

	ix := &d.index
	walkStart := time.Now()
	bounder := align.NewWildBounder(m, numT, vocabSize)

	// Tier 0: evaluate each bucket's bound at its best-possible overlap
	// against the standalone cost. A bucket that cannot beat a cost every
	// candidate must beat is dead for this probe regardless of what the
	// postings would have accumulated. Live buckets accumulate into the
	// bitmap mask the postings walk tests tokens against.
	pruned := 0
	var liveMask uint32
	for b := range ix.buckets {
		bi := &ix.buckets[b]
		if bi.live == 0 {
			sc.skip[b] = true
			continue
		}
		ovMax := bi.cmax
		if ovMax > m {
			ovMax = m
		}
		if d.bucketBound(bounder, bi, m, ovMax) >= standalone {
			sc.skip[b] = true
			pruned += bi.live
		} else {
			sc.skip[b] = false
			liveMask |= 1 << uint(b)
		}
	}

	// Tier 1/2: accumulate each live template's constant-token multiset
	// overlap with the document — sort a copy of toks, walk its runs, and
	// credit min(doc count, template count) per posting — while saturated
	// tokens fold into the probe-wide credit. The token → bucket-set
	// bitmap short-circuits each run first: one AND against the live-
	// bucket mask proves whether the chain holds any chunk the walk
	// wouldn't skip, so rare-market probes whose tokens only index dead
	// buckets (and noise probes, whose tokens index nothing) never touch
	// a postings chunk at all.
	if cap(sc.overlap) < total {
		sc.overlap = make([]int, total)
	}
	overlap := sc.overlap[:total]
	sorted := append(sc.sorted[:0], toks...)
	align.SortInts(sorted)
	sc.sorted = sorted
	touched := sc.touched[:0]
	credit := 0
	walked := false
	heads, chunks, bsets := ix.store.heads, ix.store.chunks, ix.store.bsets
	for lo := 0; lo < len(sorted); {
		hi := lo + 1
		for hi < len(sorted) && sorted[hi] == sorted[lo] {
			hi++
		}
		tok := sorted[lo]
		dc := hi - lo
		lo = hi
		if tok >= len(heads) {
			continue
		}
		if bsets[tok]&liveMask == 0 {
			// No live chunk anywhere in the chain: only the saturation
			// credit (if any) survives of what the walk would have done.
			if heads[tok] == satHead {
				credit += dc
			}
			continue
		}
		walked = true
		for ci := heads[tok]; ci != noHead; ci = chunks[ci].next {
			ch := &chunks[ci]
			if sc.skip[ch.bucket] {
				continue
			}
			for k := 0; k < int(ch.n); k++ {
				x := int(ch.tmpl[k])
				if dead != nil && dead[x] {
					continue
				}
				if overlap[x] == 0 {
					touched = append(touched, x)
					sc.bucketHit[ch.bucket]++
				}
				if pc := int(ch.cnt[k]); pc < dc {
					overlap[x] += pc
				} else {
					overlap[x] += dc
				}
			}
		}
	}
	sc.touched = touched
	if walked {
		st.PostingsWalks++
	} else {
		st.BitmapSkips++
	}

	// Candidate keys pack (docLen − overlap) above the template index, so
	// one integer sort yields overlap-descending, index-ascending order —
	// the best-first schedule that tightens bestCost earliest. (Keys use
	// the native 64-bit int; template counts are bounded far below 2^31.)
	cands := sc.cands[:0]
	for _, x := range touched {
		cands = append(cands, (m-overlap[x])<<32|x)
	}

	// Untouched templates of live buckets share one bound: none of their
	// indexed tokens appeared, so their whole overlap is at most the
	// saturation credit (and at most the bucket's constant count). If that
	// bound cannot beat the standalone cost the bucket's untouched
	// remainder is pruned in O(1); otherwise — rare, credit-heavy probes —
	// each untouched member becomes a zero-overlap candidate.
	for b := range ix.buckets {
		if sc.skip[b] {
			continue
		}
		bi := &ix.buckets[b]
		unt := bi.live - sc.bucketHit[b]
		if unt == 0 {
			continue
		}
		ovZ := credit
		if ovZ > bi.cmax {
			ovZ = bi.cmax
		}
		if ovZ > m {
			ovZ = m
		}
		if d.bucketBound(bounder, bi, m, ovZ) >= standalone {
			pruned += unt
			continue
		}
		for _, x32 := range bi.members {
			if dead != nil && dead[x32] {
				continue
			}
			if overlap[x32] == 0 {
				cands = append(cands, m<<32|int(x32))
			}
		}
	}
	align.SortInts(cands)
	sc.cands = cands
	st.Examined += len(cands)
	st.CandHist[histBucket(len(cands))]++

	// Batched bound evaluation: one gather pass pulls the candidates'
	// shape numbers into flat parallel arrays, then the overlap bound —
	// its per-probe constants hoisted into bounder — runs over the whole
	// batch in a tight branch-light loop. The floats are bit-identical to
	// the per-candidate align.WildConditionalLowerBound calls this
	// replaces (pinned by TestWildBounderBitIdentical), so the pruning
	// decisions below cannot drift.
	boundStart := time.Now()
	st.WalkNs += boundStart.Sub(walkStart).Nanoseconds()
	if cap(sc.cRef) < len(cands) {
		sc.cRef = make([]int32, len(cands))
		sc.cSlots = make([]int32, len(cands))
		sc.lbs = make([]float64, len(cands))
	}
	cRef := sc.cRef[:len(cands)]
	cSlots := sc.cSlots[:len(cands)]
	lbs := sc.lbs[:len(cands)]
	for ii, key := range cands {
		mt := &ix.meta[int(uint32(key))]
		cRef[ii] = mt.refLen
		cSlots[ii] = mt.slots
	}
	for ii, key := range cands {
		ov := m - key>>32 + credit
		lbs[ii] = bounder.Bound(int(cRef[ii]), ov, int(cSlots[ii]))
	}
	scanStart := time.Now()
	st.BoundNs += scanStart.Sub(boundStart).Nanoseconds()

	// Best-first bounded scan. canWin is the reordering-safe prune test:
	// a candidate is dead only if its bound shows it can neither strictly
	// beat bestCost nor tie it while owning a smaller index than the
	// current winner (bound ≤ exact, so lb > bestCost ⟹ cost > bestCost,
	// and on the lb ≤ bestCost ≤ cost boundary only a smaller index could
	// still take the verdict).
	canWin := func(lb float64, x int) bool {
		return lb < bestCost || (best >= 0 && x < best && lb <= bestCost)
	}
	var exactNs int64
	for ii, key := range cands {
		x := int(uint32(key))
		if !canWin(lbs[ii], x) {
			pruned++
			continue
		}
		refLen := int(cRef[ii])
		if refLen <= align.WildBitCap {
			// Survivor of the overlap bound: sharpen with the exact
			// unit-cost distance in O(m) word ops before paying the
			// alignment DP.
			mt := &ix.meta[x]
			dist := align.WildDistanceMasked(refLen, mt.wildMask, mt.eqToks, mt.eqMasks, toks)
			st.BitDPRuns++
			rlb := bounder.DistBound(refLen, dist, int(cSlots[ii]))
			if !canWin(rlb, x) {
				pruned++
				st.BitDPPruned++
				continue
			}
			// Winner candidate: the exact distance seeds a band that
			// shrinks the O(n·m) alignment to O(n·dist) with op-for-op
			// identical output (see align.PairwiseWildBanded); the
			// counts feed the same bit-exact hoisted cost.
			st.DPRuns++
			st.BandRuns++
			t := &d.templates[x]
			dpStart := time.Now()
			a, retries := align.PairwiseWildBanded(t.Tokens, t.Wild, toks, dist, &sc.wild)
			exactNs += time.Since(dpStart).Nanoseconds()
			st.BandRetries += retries
			cost := bounder.CostOnes(a.Len(), a.Distance(), a.Subs+a.Inss, int(cSlots[ii]))
			if cost < bestCost || (best >= 0 && x < best && cost <= bestCost) {
				best, bestCost = x, cost
			}
			continue
		}
		st.DPRuns++
		dpStart := time.Now()
		cost := exactCost(x)
		exactNs += time.Since(dpStart).Nanoseconds()
		if cost < bestCost || (best >= 0 && x < best && cost <= bestCost) {
			best, bestCost = x, cost
		}
	}
	st.DPPruned += pruned
	st.ExactDPNs += exactNs
	st.BitDPNs += time.Since(scanStart).Nanoseconds() - exactNs

	// Sparse reset: only touched entries are nonzero, so the accumulator
	// stays all-zero between probes without an O(T) clear; the per-bucket
	// arrays are fixed-size and cleared densely.
	for _, x := range touched {
		overlap[x] = 0
	}
	for b := range sc.bucketHit {
		sc.bucketHit[b] = 0
	}
	return best
}
