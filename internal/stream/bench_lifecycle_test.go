package stream

import (
	"sort"
	"testing"
	"time"

	"infoshield/internal/core"
	"infoshield/internal/datagen"
)

// BenchmarkStreamLifecycleFlush measures steady-state continuous mining
// on an unbounded drifting-campaign stream (datagen.DriftStream): one
// op is one ingest batch plus its flush, with the full lifecycle on —
// template cap, TTL, MDL merge, and the incremental miner's cross-flush
// window. The incremental variant re-clusters only touched components;
// from-scratch re-clusters the whole retained window every flush (the
// pre-incremental cost shape). Reported beyond ns/op and B/op (the RSS
// proxy): the flush-latency p50/p99 (flush-p50-ns / flush-p99-ns —
// promoted to first-class fields by cmd/benchjson) and the steady-state
// live-template count, which the cap must hold flat no matter how long
// the stream runs.
func BenchmarkStreamLifecycleFlush(b *testing.B) {
	const batch = 256
	for _, mode := range []struct {
		name    string
		mineAll bool
	}{
		{"incremental", false},
		{"from-scratch", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			drift := datagen.NewDriftStream(datagen.DriftConfig{Seed: 42, Active: 10, ChurnEvery: 512})
			d := New(core.Options{})
			d.BatchSize = 1 << 30
			d.Lifecycle = Lifecycle{MaxTemplates: 64, TTL: 50000, Merge: true, Incremental: true}
			d.mineAll = mode.mineAll

			// Warm to steady state: enough cycles to fill the retained
			// window and the template cap, so b.N measures the flat regime.
			k := 0
			for w := 0; w < 12; w++ {
				d.AddBatch(drift.Docs(k, k+batch))
				k += batch
				d.Flush()
			}

			lat := make([]time.Duration, 0, b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				docs := drift.Docs(k, k+batch)
				k += batch
				b.StartTimer()
				d.AddBatch(docs)
				t0 := time.Now()
				d.Flush()
				lat = append(lat, time.Since(t0))
			}
			b.StopTimer()
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			b.ReportMetric(float64(lat[len(lat)/2]), "flush-p50-ns")
			b.ReportMetric(float64(lat[len(lat)*99/100]), "flush-p99-ns")
			b.ReportMetric(float64(d.NumLive()), "live-templates")
			b.ReportMetric(float64(len(d.templates)), "template-slots")
		})
	}
}
