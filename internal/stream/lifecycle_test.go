package stream

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"infoshield/internal/align"
	"infoshield/internal/core"
	"infoshield/internal/datagen"
	"infoshield/internal/mdl"
)

// liveReferenceMatch is referenceMatch restricted to live templates: the
// full DP against every non-tombstoned template, with the model size set
// to the live count — the oracle for what a probe must see after
// evictions, age-outs, and merges.
func liveReferenceMatch(d *Detector, toks []int) int {
	if len(toks) == 0 || d.liveCount == 0 {
		return -1
	}
	V := d.vocab.Size()
	best, bestCost := -1, mdl.DocCost(len(toks), V)
	for ti := range d.templates {
		if d.isDead(ti) {
			continue
		}
		t := &d.templates[ti]
		a := align.PairwiseWild(t.Tokens, t.Wild, toks)
		slotWords := make([]int, 0, 4)
		for _, w := range t.Wild {
			if w {
				slotWords = append(slotWords, 1)
			}
		}
		cost := mdl.DataCostMatched(mdl.AlignStats{
			AlignLen:   a.Len(),
			Unmatched:  a.Distance(),
			AddedWords: a.Subs + a.Inss,
			SlotWords:  slotWords,
		}, d.liveCount, V)
		if cost < bestCost {
			best, bestCost = ti, cost
		}
	}
	return best
}

// TestFlushTokenReuseByteIdentical is the gate for the no-re-tokenize
// satellite: flushing from the token streams buffered at ingest must give
// byte-identical templates, assignments, and pending state to the old
// path that re-tokenized the raw texts, at every worker count.
func TestFlushTokenReuseByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		for seed := int64(1); seed <= 3; seed++ {
			rng := rand.New(rand.NewSource(seed))
			docs := randomStreamCorpus(rng, 300)

			legacy := New(core.Options{Workers: workers})
			legacy.BatchSize = 64
			legacy.legacyFlush = true
			cur := New(core.Options{Workers: workers})
			cur.BatchSize = 64

			for lo := 0; lo < len(docs); lo += 48 {
				hi := lo + 48
				if hi > len(docs) {
					hi = len(docs)
				}
				legacy.AddBatch(docs[lo:hi])
				cur.AddBatch(docs[lo:hi])
			}
			legacy.Flush()
			cur.Flush()
			compareDetectors(t, fmt.Sprintf("workers=%d seed=%d", workers, seed), legacy, cur)
		}
	}
}

// TestLifecycleAgeOut: a template that stops matching for more than TTL
// ingested documents is retired — its slot survives (historical verdicts
// keep their id), but new members of the campaign buffer instead of
// matching.
func TestLifecycleAgeOut(t *testing.T) {
	d := New(core.Options{})
	d.BatchSize = 1 << 30
	d.Lifecycle = Lifecycle{TTL: 50}
	ids := d.AddBatch(append(campaign(20), noise(300, 6)...))
	d.Flush()
	if d.NumTemplates() == 0 {
		t.Fatal("no template mined")
	}
	if d.NumLive() != d.NumTemplates() {
		t.Fatalf("live %d != templates %d before any retirement", d.NumLive(), d.NumTemplates())
	}

	// 60 unmatched documents push the clock past TTL=50; the flush's
	// lifecycle pass ages the campaign template out.
	d.AddBatch(noise(60, 7))
	d.Flush()
	if d.NumLive() != 0 {
		t.Fatalf("live = %d after age-out, want 0", d.NumLive())
	}
	if got := d.Stats().TemplatesAged; got == 0 {
		t.Fatal("TemplatesAged not counted")
	}
	if !d.TemplateInfo(0).Dead {
		t.Fatal("TemplateInfo(0).Dead = false after age-out")
	}
	// Historical verdict stands: the mined members keep their template id.
	if a := d.Assignment(ids[0]); a.Template < 0 || a.Pending {
		t.Fatalf("historical assignment lost: %+v", a)
	}
	// A new campaign member no longer matches — it buffers.
	p := d.Add("limited offer buy the premium golden package today visit site9999.example now")
	if a := d.Assignment(p); !a.Pending {
		t.Fatalf("new member matched a retired template: %+v", a)
	}
}

// TestLifecycleMerge exercises the MDL merge through the lifecycle pass:
// a freshly mined near-duplicate folds into its existing twin, the loser
// tombstones with a forward pointer, and assignments resolve through it.
func TestLifecycleMerge(t *testing.T) {
	d := New(core.Options{})
	d.BatchSize = 1 << 30
	d.Lifecycle = Lifecycle{Merge: true}
	words := strings.Fields("mega casino bonus spin the lucky wheel claim prize now")
	wild := make([]bool, len(words))
	wild[6] = true
	a, err := d.Register(words, wild)
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.Register(words, wild)
	if err != nil {
		t.Fatal(err)
	}
	d.templates[b].DocCount = 3

	d.lifecyclePass([]int{b})
	if !d.isDead(b) || d.isDead(a) {
		t.Fatalf("dead flags: a=%v b=%v, want loser b dead", d.isDead(a), d.isDead(b))
	}
	if d.forward[b] != int32(a) {
		t.Fatalf("forward[b] = %d, want %d", d.forward[b], a)
	}
	if d.resolve(b) != a {
		t.Fatalf("resolve(b) = %d, want %d", d.resolve(b), a)
	}
	if d.NumLive() != 1 {
		t.Fatalf("live = %d, want 1", d.NumLive())
	}
	if d.Stats().TemplatesMerged != 1 {
		t.Fatalf("TemplatesMerged = %d", d.Stats().TemplatesMerged)
	}
	if d.templates[a].DocCount != 3 || d.templates[b].DocCount != 0 {
		t.Fatalf("DocCounts after transfer: a=%d b=%d", d.templates[a].DocCount, d.templates[b].DocCount)
	}
	// New members match the keeper.
	id := d.Add("mega casino bonus spin the lucky jackpot claim prize now")
	if got := d.Assignment(id); got.Template != a || got.Pending {
		t.Fatalf("post-merge verdict %+v, want template %d", got, a)
	}
	checkIndex(t, "after merge", d)

	// Negative control: with lifecycle off, the identical pass is a no-op.
	d2 := New(core.Options{})
	if _, err := d2.Register(words, wild); err != nil {
		t.Fatal(err)
	}
	if _, err := d2.Register(words, wild); err != nil {
		t.Fatal(err)
	}
	d2.lifecyclePass([]int{1})
	if d2.NumLive() != 2 {
		t.Fatalf("lifecycle-off pass retired a template: live = %d", d2.NumLive())
	}
}

// TestLifecycleEvictionAndRebuild: a hard cap far below the registered
// count evicts in (lastMatch, DocCount, index) order, triggers the
// tombstone compaction, and leaves the tiered index byte-consistent with
// a from-scratch rebuild — with every probe agreeing with the live
// reference scan.
func TestLifecycleEvictionAndRebuild(t *testing.T) {
	set := datagen.ScaleTemplates(datagen.ScaleConfig{Seed: 5, Templates: 180})
	d := New(core.Options{})
	d.BatchSize = 1 << 30
	d.Lifecycle = Lifecycle{MaxTemplates: 60}
	for _, tmpl := range set.Templates {
		if _, err := d.Register(tmpl.Words, tmpl.Wild); err != nil {
			t.Fatal(err)
		}
	}
	d.Add("qz1 qz2 qz3 qz4 qz5 qz6 qz7 qz8") // unmatched: arms the flush
	d.Flush()

	if d.NumLive() != 60 {
		t.Fatalf("live = %d, want cap 60", d.NumLive())
	}
	if d.NumTemplates() != 180 {
		t.Fatalf("template slots = %d, want 180 (ids stay stable)", d.NumTemplates())
	}
	if d.Stats().TemplatesEvicted != 120 {
		t.Fatalf("TemplatesEvicted = %d, want 120", d.Stats().TemplatesEvicted)
	}
	// All recency clocks and DocCounts tied, so eviction falls back to
	// index order: 0..119 die, 120..179 survive — and 120 tombstones
	// against 60 live triggers the compaction.
	for ti := 0; ti < 120; ti++ {
		if !d.isDead(ti) {
			t.Fatalf("template %d should be evicted", ti)
		}
	}
	if d.tombSinceRebuild != 0 {
		t.Fatalf("tombSinceRebuild = %d, rebuild did not run", d.tombSinceRebuild)
	}
	checkIndex(t, "after rebuild", d)

	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 80; k++ {
		ti := rng.Intn(180)
		toks := d.vocab.Encode(d.tk.Tokens(set.Probe(rng, ti)))
		got := d.match(toks, d.vocab.Size(), &d.sc, &d.stats)
		if want := liveReferenceMatch(d, toks); got != want {
			t.Fatalf("probe of template %d: tiered %d != live reference %d", ti, got, want)
		}
	}
	st := d.Stats()
	if st.DPPruned+st.DPRuns != st.Candidates {
		t.Fatalf("pruned %d + runs %d != candidates %d", st.DPPruned, st.DPRuns, st.Candidates)
	}
	if st.BitmapSkips+st.PostingsWalks != st.Probes {
		t.Fatalf("bitmap skips %d + walks %d != probes %d", st.BitmapSkips, st.PostingsWalks, st.Probes)
	}
}

// TestLifecycleBounded is the acceptance gate for the cap: a drifting
// campaign stream over 110 flush cycles — far more campaigns than the
// cap admits — keeps the live count at or under the cap after every
// flush while template slots keep growing, and the matcher's accounting
// invariants survive the constant churn.
func TestLifecycleBounded(t *testing.T) {
	drift := datagen.NewDriftStream(datagen.DriftConfig{Seed: 3, Active: 8, ChurnEvery: 96})
	d := New(core.Options{})
	d.BatchSize = 1 << 30
	d.Lifecycle = Lifecycle{MaxTemplates: 16, TTL: 2000, Merge: true, Incremental: true}

	const cycles, batch = 110, 48
	k := 0
	for cycle := 0; cycle < cycles; cycle++ {
		d.AddBatch(drift.Docs(k, k+batch))
		k += batch
		d.Flush()
		if live := d.NumLive(); live > 16 {
			t.Fatalf("cycle %d: live = %d > cap 16", cycle, live)
		}
	}
	st := d.Stats()
	if st.TemplatesMined <= 16 {
		t.Fatalf("only %d templates mined over %d cycles — drift generator not churning", st.TemplatesMined, cycles)
	}
	if st.TemplatesEvicted+st.TemplatesAged+st.TemplatesMerged == 0 {
		t.Fatal("no lifecycle retirements over a drifting stream")
	}
	// FlushDocs counts buffered documents only: campaign members that
	// matched a live template at ingest never reach a flush, which is the
	// point of serving from the template set.
	if st.Flushes != cycles || st.FlushDocs == 0 || st.FlushDocs >= cycles*batch {
		t.Fatalf("flush accounting: %d flushes / %d docs over %d ingested",
			st.Flushes, st.FlushDocs, cycles*batch)
	}
	if d.NumTemplates() <= 16 {
		t.Fatalf("template slots = %d — ids should keep growing past the cap", d.NumTemplates())
	}
	checkIndex(t, "after drift", d)

	// The steady-state matcher still agrees with the live reference scan.
	for probe := 0; probe < 40; probe++ {
		toks := d.vocab.Encode(d.tk.Tokens(drift.Doc(k + probe)))
		got := d.match(toks, d.vocab.Size(), &d.sc, &d.stats)
		if want := liveReferenceMatch(d, toks); got != want {
			t.Fatalf("probe %d: tiered %d != live reference %d", probe, got, want)
		}
	}
	fin := d.Stats()
	if fin.DPPruned+fin.DPRuns != fin.Candidates {
		t.Fatalf("pruned %d + runs %d != candidates %d", fin.DPPruned, fin.DPRuns, fin.Candidates)
	}
	if fin.BitmapSkips+fin.PostingsWalks != fin.Probes {
		t.Fatalf("bitmap skips %d + walks %d != probes %d",
			fin.BitmapSkips, fin.PostingsWalks, fin.Probes)
	}
}

// TestIncrementalEmergence is the capability the batch path lacks: a
// campaign that trickles in below the clustering threshold per flush
// still assembles once later members arrive, and the early member's
// noise verdict is upgraded to the mined template.
func TestIncrementalEmergence(t *testing.T) {
	d := New(core.Options{})
	d.BatchSize = 1 << 30
	d.Lifecycle = Lifecycle{Incremental: true}

	raffle := func(i int) string {
		return fmt.Sprintf("grand winter raffle enter the diamond draw tonight code gw%04d only", i)
	}
	first := d.Add(raffle(0))
	d.AddBatch(noise(5, 41))
	d.Flush()
	if a := d.Assignment(first); a.Template != -1 || a.Pending {
		t.Fatalf("singleton campaign member should be unmatched after flush 1: %+v", a)
	}

	second := d.Add(raffle(1))
	third := d.Add(raffle(2))
	d.AddBatch(noise(5, 42))
	d.Flush()
	a1, a2, a3 := d.Assignment(first), d.Assignment(second), d.Assignment(third)
	if a1.Template < 0 {
		t.Fatalf("flush-1 member not upgraded by the cross-flush component: %+v", a1)
	}
	if a1.Template != a2.Template || a2.Template != a3.Template {
		t.Fatalf("campaign split across templates: %+v %+v %+v", a1, a2, a3)
	}
	if st := d.Stats(); st.MineReusedDocs == 0 {
		t.Fatal("MineReusedDocs = 0 — the retained window was never re-clustered")
	}
}

// TestIncrementalTouchedOnly: the touched-component candidate selection
// must re-cluster strictly fewer documents than the mineAll baseline
// that re-clusters the whole retained window every flush, while both
// stay within the same window bounds.
func TestIncrementalTouchedOnly(t *testing.T) {
	drift := datagen.NewDriftStream(datagen.DriftConfig{Seed: 11, Active: 6, ChurnEvery: 64})
	mk := func(all bool) *Detector {
		d := New(core.Options{})
		d.BatchSize = 1 << 30
		d.Lifecycle = Lifecycle{Incremental: true}
		d.mineAll = all
		return d
	}
	inc, all := mk(false), mk(true)
	k := 0
	for cycle := 0; cycle < 20; cycle++ {
		docs := drift.Docs(k, k+32)
		k += 32
		inc.AddBatch(docs)
		all.AddBatch(docs)
		inc.Flush()
		all.Flush()
	}
	si, sa := inc.Stats(), all.Stats()
	if si.MineClusteredDocs >= sa.MineClusteredDocs {
		t.Fatalf("touched-only clustered %d docs, mineAll %d — no work saved",
			si.MineClusteredDocs, sa.MineClusteredDocs)
	}
	if si.MineReusedDocs == 0 {
		t.Fatal("touched-only never reused a retained document")
	}
}

// TestLifecyclePersistRoundTrip: Save/Load across evictions, merges, and
// a live retained window. The saved state is a fixed point, the restored
// lifecycle markers equal the original's, and two detectors loaded from
// the same state stay byte-identical through further drift — the
// determinism the WAL-replay contract rests on.
func TestLifecyclePersistRoundTrip(t *testing.T) {
	lc := Lifecycle{MaxTemplates: 12, TTL: 3000, Merge: true, Incremental: true}
	drift := datagen.NewDriftStream(datagen.DriftConfig{Seed: 9, Active: 6, ChurnEvery: 64})

	d1 := New(core.Options{})
	d1.BatchSize = 1 << 30
	d1.Lifecycle = lc
	k := 0
	for cycle := 0; cycle < 30; cycle++ {
		d1.AddBatch(drift.Docs(k, k+32))
		k += 32
		d1.Flush()
	}
	d1.AddBatch(drift.Docs(k, k+10)) // leave a pending buffer in the snapshot
	k += 10
	if st := d1.Stats(); st.TemplatesEvicted+st.TemplatesAged+st.TemplatesMerged == 0 {
		t.Fatal("no lifecycle events before the snapshot — test would prove nothing")
	}
	if d1.mine == nil || len(d1.mine.docs) == 0 {
		t.Fatal("no retained window before the snapshot")
	}

	var buf bytes.Buffer
	if err := d1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()

	load := func() *Detector {
		d := New(core.Options{})
		d.BatchSize = 1 << 30
		d.Lifecycle = lc
		if err := d.Load(strings.NewReader(saved)); err != nil {
			t.Fatal(err)
		}
		return d
	}
	d2, d3 := load(), load()

	var buf2 bytes.Buffer
	if err := d2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != saved {
		t.Fatal("save → load → save is not a fixed point with lifecycle state")
	}
	if d2.liveCount != d1.liveCount || d2.anyDead != d1.anyDead {
		t.Fatalf("live %d/%v restored as %d/%v", d1.liveCount, d1.anyDead, d2.liveCount, d2.anyDead)
	}
	if !reflect.DeepEqual(d2.dead, d1.dead) || !reflect.DeepEqual(d2.forward, d1.forward) ||
		!reflect.DeepEqual(d2.lastMatch, d1.lastMatch) {
		t.Fatal("lifecycle markers not restored")
	}
	if d2.Pending() != d1.Pending() {
		t.Fatalf("pending %d restored as %d", d1.Pending(), d2.Pending())
	}
	if len(d2.mine.docs) != len(d1.mine.docs) {
		t.Fatalf("retained window %d restored as %d", len(d1.mine.docs), len(d2.mine.docs))
	}
	checkIndex(t, "d2 after load", d2)

	// Two restores of the same state must stay byte-identical through
	// further churn, including new lifecycle retirements.
	for cycle := 0; cycle < 10; cycle++ {
		docs := drift.Docs(k, k+32)
		k += 32
		d2.AddBatch(docs)
		d3.AddBatch(docs)
		d2.Flush()
		d3.Flush()
	}
	compareDetectors(t, "restored twins after churn", d2, d3)
	if d2.NumLive() > 12 {
		t.Fatalf("cap violated after restore: live = %d", d2.NumLive())
	}
}
