package stream

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"infoshield/internal/align"
	"infoshield/internal/core"
	"infoshield/internal/mdl"
	"infoshield/internal/tokenize"
)

// referenceMatch is the retained pre-index reference scan: the full
// PairwiseWild DP against every template with the per-probe slot-word
// rebuild, exactly as the serving path worked before candidate pruning,
// pooled alignment, and canned SlotWords. The equivalence gate below
// checks the rebuilt path (bound + scratch DP + registration-time
// SlotWords) probe-by-probe against this, which also asserts the
// satellite refactor — SlotWords precomputed once at registration —
// changed no cost.
func referenceMatch(d *Detector, toks []int) int {
	if len(toks) == 0 || len(d.templates) == 0 {
		return -1
	}
	V := d.vocab.Size()
	standalone := mdl.DocCost(len(toks), V)
	best, bestCost := -1, standalone
	numT := len(d.templates)
	for ti := range d.templates {
		t := &d.templates[ti]
		a := align.PairwiseWild(t.Tokens, t.Wild, toks)
		slotWords := make([]int, 0, 4)
		for _, w := range t.Wild {
			if w {
				slotWords = append(slotWords, 1)
			}
		}
		cost := mdl.DataCostMatched(mdl.AlignStats{
			AlignLen:   a.Len(),
			Unmatched:  a.Distance(),
			AddedWords: a.Subs + a.Inss,
			SlotWords:  slotWords,
		}, numT, V)
		if cost < bestCost {
			best, bestCost = ti, cost
		}
	}
	return best
}

// randomStreamCorpus mixes campaign near-duplicates, mutated campaign
// variants, and unique-word noise — the shapes that exercise match,
// buffer, and flush paths.
func randomStreamCorpus(rng *rand.Rand, n int) []string {
	families := []string{
		"limited offer buy the premium golden package today visit",
		"hot deal super cheap flights to sunny islands call agent",
		"brand new luxury watches heavy discount original box ship",
		"work from home earn serious money weekly no experience",
	}
	docs := make([]string, 0, n)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0, 1:
			f := families[rng.Intn(len(families))]
			docs = append(docs, fmt.Sprintf("%s site%04d.example now", f, rng.Intn(3000)))
		case 2:
			// Mutated campaign member: a word dropped or replaced.
			f := families[rng.Intn(len(families))]
			words := []byte(f)
			if rng.Intn(2) == 0 && len(words) > 10 {
				cut := 5 + rng.Intn(len(words)-10)
				words = append(words[:cut], words[cut+1:]...)
			}
			docs = append(docs, fmt.Sprintf("%s extra%d token%d", string(words), rng.Intn(40), rng.Intn(40)))
		default:
			k := rng.Intn(1 << 20)
			docs = append(docs, fmt.Sprintf("nq%da nq%db nq%dc nq%dd nq%de nq%df", k, k, k, k, k, k))
		}
	}
	return docs
}

// compareDetectors fails the test unless a and b agree on every piece of
// caller-visible state: assignments, template order and contents,
// DocCounts, and the pending buffer.
func compareDetectors(t *testing.T, label string, a, b *Detector) {
	t.Helper()
	if !reflect.DeepEqual(a.assignments, b.assignments) {
		t.Fatalf("%s: assignments differ", label)
	}
	if len(a.templates) != len(b.templates) {
		t.Fatalf("%s: template counts %d vs %d", label, len(a.templates), len(b.templates))
	}
	for ti := range a.templates {
		at, bt := &a.templates[ti], &b.templates[ti]
		if !reflect.DeepEqual(at.Tokens, bt.Tokens) || !reflect.DeepEqual(at.Wild, bt.Wild) ||
			at.DocCount != bt.DocCount || !reflect.DeepEqual(at.SlotWords, bt.SlotWords) {
			t.Fatalf("%s: template %d differs: %+v vs %+v", label, ti, at, bt)
		}
	}
	if !reflect.DeepEqual(a.pendingIDs, b.pendingIDs) || !reflect.DeepEqual(a.pendingTexts, b.pendingTexts) {
		t.Fatalf("%s: pending buffers differ", label)
	}
	if !reflect.DeepEqual(a.pendingSet, b.pendingSet) {
		t.Fatalf("%s: pending sets differ", label)
	}
	// Lifecycle bookkeeping is maintained unconditionally (the recency
	// clock is a pure per-document function), so it must agree too.
	if a.liveCount != b.liveCount || a.anyDead != b.anyDead {
		t.Fatalf("%s: live %d/%v vs %d/%v", label, a.liveCount, a.anyDead, b.liveCount, b.anyDead)
	}
	if !reflect.DeepEqual(a.dead, b.dead) || !reflect.DeepEqual(a.forward, b.forward) ||
		!reflect.DeepEqual(a.lastMatch, b.lastMatch) {
		t.Fatalf("%s: lifecycle state differs", label)
	}
}

// TestStreamPruningEquivalence drives the tiered serving path — bucket
// skips, saturated-token credits, best-first candidate ordering, the
// bit-parallel distance refinement — against (1) the same scan with every
// pruning tier disabled and (2) the retained reference scan, over
// randomized corpora with interleaved flushes, then replays the corpus
// through AddBatch at several worker counts against the same no-prune
// oracle. Assignments, template order, and DocCounts must be
// byte-identical everywhere: the bounds may only skip templates that
// provably cannot win, and reordering may not change which template wins
// a tie.
func TestStreamPruningEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		docs := randomStreamCorpus(rng, 400)

		pruned := New(core.Options{})
		pruned.BatchSize = 1 << 30
		full := New(core.Options{})
		full.BatchSize = 1 << 30
		full.noPrune = true

		var tk tokenize.Tokenizer
		var scratch matchScratch
		var probeStats Stats
		for i, text := range docs {
			// Intercept the pruned detector's verdict before committing it,
			// so it can be checked against the reference scan on the very
			// same state.
			toks := pruned.vocab.Encode(tk.Tokens(text))
			verdict := pruned.match(toks, pruned.vocab.Size(), &scratch, &probeStats)
			if ref := referenceMatch(pruned, toks); verdict != ref {
				t.Fatalf("seed %d doc %d: indexed verdict %d != reference %d (templates=%d)",
					seed, i, verdict, ref, pruned.NumTemplates())
			}
			pruned.apply(text, toks, verdict)
			full.Add(text)
			if i == len(docs)/3 || i == 2*len(docs)/3 {
				pruned.Flush()
				full.Flush()
			}
		}
		pruned.Flush()
		full.Flush()
		compareDetectors(t, fmt.Sprintf("seed %d", seed), pruned, full)

		// The bound must have done real work on this corpus, and every
		// candidate is either pruned or aligned — never both, never neither.
		if probeStats.DPPruned+probeStats.DPRuns != probeStats.Candidates {
			t.Fatalf("seed %d: pruned %d + runs %d != candidates %d",
				seed, probeStats.DPPruned, probeStats.DPRuns, probeStats.Candidates)
		}
		if probeStats.Candidates > 0 && probeStats.DPPruned == 0 {
			t.Errorf("seed %d: lower bound never pruned a candidate", seed)
		}
		if probeStats.Examined > 0 && probeStats.BitDPRuns == 0 {
			t.Errorf("seed %d: bit-parallel refinement never ran", seed)
		}
		// The rare-token bitmap and the postings walk partition the pruned
		// probes: every probe either proved all its tokens dead via the
		// bitmap or walked at least one chain — never both, never neither.
		if probeStats.BitmapSkips+probeStats.PostingsWalks != probeStats.Probes {
			t.Fatalf("seed %d: bitmap skips %d + walks %d != probes %d",
				seed, probeStats.BitmapSkips, probeStats.PostingsWalks, probeStats.Probes)
		}
		// Every banded alignment is one of the DP runs, and its band is
		// seeded with the exact bit-parallel distance, so no widening retry
		// can ever fire on the serving path.
		if probeStats.BandRuns > probeStats.DPRuns {
			t.Fatalf("seed %d: band runs %d > DP runs %d",
				seed, probeStats.BandRuns, probeStats.DPRuns)
		}
		if probeStats.BandRetries != 0 {
			t.Fatalf("seed %d: %d band retries on exact-seeded bands", seed, probeStats.BandRetries)
		}

		// The same corpus through the batched fan-out at several worker
		// counts must land on the no-prune oracle's exact state too — the
		// tiered path stays verdict-identical under both pruning and
		// parallel scheduling.
		for _, workers := range []int{1, 2, 4} {
			d := New(core.Options{Workers: workers})
			d.BatchSize = 1 << 30
			// Segment exactly at the serial loop's flush points (after docs
			// len/3 and 2·len/3) so both mine identical batches.
			cut1, cut2 := len(docs)/3+1, 2*len(docs)/3+1
			for _, seg := range [][]string{docs[:cut1], docs[cut1:cut2], docs[cut2:]} {
				d.AddBatch(seg)
				d.Flush()
			}
			compareDetectors(t, fmt.Sprintf("seed %d workers %d", seed, workers), full, d)
			st := d.Stats()
			if st.DPPruned+st.DPRuns != st.Candidates {
				t.Fatalf("seed %d workers %d: pruned %d + runs %d != candidates %d",
					seed, workers, st.DPPruned, st.DPRuns, st.Candidates)
			}
			if st.BitmapSkips+st.PostingsWalks != st.Probes {
				t.Fatalf("seed %d workers %d: bitmap skips %d + walks %d != probes %d",
					seed, workers, st.BitmapSkips, st.PostingsWalks, st.Probes)
			}
			if st.BandRuns > st.DPRuns || st.BandRetries != 0 {
				t.Fatalf("seed %d workers %d: band runs %d (DP runs %d), retries %d",
					seed, workers, st.BandRuns, st.DPRuns, st.BandRetries)
			}
		}
	}
}

// TestStreamWorkersEquivalence checks AddBatch output — assignments,
// templates, DocCounts, pending state, and serving stats — is identical
// for workers ∈ {1, 2, 4, 8} and identical to a serial Add loop,
// including flushes that fire mid-batch (BatchSize 64 over 400 docs).
func TestStreamWorkersEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	docs := randomStreamCorpus(rng, 400)

	serial := New(core.Options{Workers: 1})
	serial.BatchSize = 64
	var serialIDs []int
	for _, text := range docs {
		serialIDs = append(serialIDs, serial.Add(text))
	}

	for _, workers := range []int{1, 2, 4, 8} {
		d := New(core.Options{Workers: workers})
		d.BatchSize = 64
		// Split the corpus into a few AddBatch calls so batches both span
		// and straddle flush boundaries.
		var ids []int
		for lo := 0; lo < len(docs); lo += 150 {
			hi := lo + 150
			if hi > len(docs) {
				hi = len(docs)
			}
			ids = append(ids, d.AddBatch(docs[lo:hi])...)
		}
		if !reflect.DeepEqual(ids, serialIDs) {
			t.Fatalf("workers=%d: ids differ", workers)
		}
		compareDetectors(t, fmt.Sprintf("workers=%d", workers), serial, d)
		if got, want := d.Stats().Counters(), serial.Stats().Counters(); got != want {
			t.Fatalf("workers=%d: stats %+v != serial %+v", workers, got, want)
		}
	}
}

// fuzzStreamDocs turns one fuzz input into a bounded document list.
func fuzzStreamDocs(data string) []string {
	const maxDocs, maxLen = 16, 80
	var texts []string
	start := 0
	for i := 0; i <= len(data) && len(texts) < maxDocs; i++ {
		if i == len(data) || data[i] == '\n' {
			line := data[start:i]
			if len(line) > maxLen {
				line = line[:maxLen]
			}
			texts = append(texts, line)
			start = i + 1
		}
	}
	return texts
}

// FuzzStreamOps drives interleaved Add / AddBatch / Flush / persist
// round-trips on two detectors — one fed serially, one in batches with
// Workers: 4 — and requires identical verdicts, templates, and stats at
// every step. This generalizes the two equivalence gates above from
// pinned corpora to arbitrary interleavings.
func FuzzStreamOps(f *testing.F) {
	f.Add("big sale call now 555-0101\nbig sale call now 555-0102\nbig sale call now 555-0103\nunrelated chatter", uint32(0b10110))
	f.Add("a b c d e\na b c d e\na b x d e\nnoise one two", uint32(0xffff))
	f.Add("", uint32(1))
	f.Fuzz(func(t *testing.T, data string, schedule uint32) {
		texts := fuzzStreamDocs(data)
		if len(texts) == 0 {
			t.Skip("no docs")
		}
		a := New(core.Options{})
		a.BatchSize = 4
		b := New(core.Options{Workers: 4})
		b.BatchSize = 4

		roundTrip := func(d *Detector) *Detector {
			// No flush: Save carries the pending buffer (texts + ids), so
			// the fuzzer exercises mid-buffer snapshots.
			var buf bytes.Buffer
			if err := d.Save(&buf); err != nil {
				t.Fatal(err)
			}
			fresh := New(d.Options)
			fresh.BatchSize = d.BatchSize
			if err := fresh.Load(&buf); err != nil {
				t.Fatal(err)
			}
			return fresh
		}

		step := 0
		for i := 0; i < len(texts); {
			k := 1 + int(schedule>>(uint(step*3)%29)&3)
			if i+k > len(texts) {
				k = len(texts) - i
			}
			chunk := texts[i : i+k]
			var aIDs []int
			for _, tx := range chunk {
				aIDs = append(aIDs, a.Add(tx))
			}
			bIDs := b.AddBatch(chunk)
			if !reflect.DeepEqual(aIDs, bIDs) {
				t.Fatalf("step %d: ids %v vs %v", step, aIDs, bIDs)
			}
			for _, id := range aIDs {
				if av, bv := a.Assignment(id), b.Assignment(id); av != bv {
					t.Fatalf("step %d doc %d: %+v vs %+v", step, id, av, bv)
				}
			}
			switch schedule >> (uint(step) % 31) & 3 {
			case 1:
				a.Flush()
				b.Flush()
			case 2:
				a = roundTrip(a)
				b = roundTrip(b)
			}
			i += k
			step++
		}
		a.Flush()
		b.Flush()
		compareDetectors(t, "final", a, b)
		if a.Stats().Counters() != b.Stats().Counters() {
			t.Fatalf("stats %+v vs %+v", a.Stats(), b.Stats())
		}
	})
}
