package stream

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"infoshield/internal/align"
	"infoshield/internal/core"
)

// refPosting mirrors one postings entry for the from-scratch rebuild the
// tests compare the incrementally-maintained tiered index against.
type refPosting struct{ template, count int }

// expectedIndex recomputes, independently of the index code, everything a
// probe reads: token → postings (template ascending, as registration
// appends), the saturated-token set, and the per-bucket membership.
// Templates whose meta bucket is -1 never entered the current index
// build (tombstones compacted away by rebuildIndex, or dead slots
// restored by Load) and are excluded; tombstones killed since the last
// rebuild still hold postings and membership, exactly as the live index
// does.
func expectedIndex(d *Detector) (post map[int][]refPosting, sat map[int]bool, members [numBuckets][]int32) {
	templates := d.templates
	post = make(map[int][]refPosting)
	for ti := range templates {
		if d.index.meta[ti].bucket < 0 {
			continue
		}
		t := &templates[ti]
		counts := make(map[int]int)
		order := make([]int, 0, len(t.Tokens))
		slots := 0
		for i, tok := range t.Tokens {
			if t.Wild[i] {
				slots++
				continue
			}
			if counts[tok] == 0 {
				order = append(order, tok)
			}
			counts[tok]++
		}
		align.SortInts(order)
		for _, tok := range order {
			post[tok] = append(post[tok], refPosting{template: ti, count: counts[tok]})
		}
		b := bucketOf(len(t.Tokens) - slots)
		members[b] = append(members[b], int32(ti))
	}
	sat = make(map[int]bool)
	for tok, ps := range post {
		if len(ps) > satThreshold {
			sat[tok] = true
			delete(post, tok)
		}
	}
	return post, sat, members
}

// checkIndex requires the live tiered index — postings chains, saturation
// marks, bucket membership and aggregates, and the per-template matcher
// metadata including the bit-parallel mask tables — to equal a
// from-scratch recomputation.
func checkIndex(t *testing.T, label string, d *Detector) {
	t.Helper()
	wantPost, wantSat, wantMembers := expectedIndex(d)

	got := make(map[int][]refPosting)
	st := &d.index.store
	for tok := range st.heads {
		h := st.heads[tok]
		if h == satHead {
			if !wantSat[tok] {
				t.Fatalf("%s: token %d saturated in index but carried by ≤ %d templates",
					label, tok, satThreshold)
			}
			continue
		}
		for ci := h; ci != noHead; ci = st.chunks[ci].next {
			ch := &st.chunks[ci]
			for k := 0; k < int(ch.n); k++ {
				x := int(ch.tmpl[k])
				if int(ch.bucket) != int(d.index.meta[x].bucket) {
					t.Fatalf("%s: token %d chunk bucket %d holds template %d of bucket %d",
						label, tok, ch.bucket, x, d.index.meta[x].bucket)
				}
				got[tok] = append(got[tok], refPosting{template: x, count: int(ch.cnt[k])})
			}
		}
	}
	if len(wantPost) == 0 {
		wantPost = nil
	}
	if len(got) == 0 {
		got = nil
	}
	if !reflect.DeepEqual(got, wantPost) {
		t.Fatalf("%s: postings diverged from a full rebuild (%d vs %d tokens)",
			label, len(got), len(wantPost))
	}
	for tok := range wantSat {
		if tok >= len(st.heads) || st.heads[tok] != satHead {
			t.Fatalf("%s: token %d carried by > %d templates but not saturated", label, tok, satThreshold)
		}
	}

	// The rare-token bitmap must equal a from-scratch recomputation: each
	// live token's bucket set is the OR of its carrying templates' buckets,
	// and saturated or unindexed tokens carry the empty set (saturated
	// tokens are handled by the credit path, not the bitmap).
	if len(st.bsets) != len(st.heads) {
		t.Fatalf("%s: %d bitmap entries for %d heads", label, len(st.bsets), len(st.heads))
	}
	for tok := range st.heads {
		var want uint32
		for _, p := range wantPost[tok] {
			want |= 1 << uint(d.index.meta[p.template].bucket)
		}
		if st.bsets[tok] != want {
			t.Fatalf("%s: token %d bucket bitmap %#x, rebuild says %#x",
				label, tok, st.bsets[tok], want)
		}
		live := st.heads[tok] != noHead && st.heads[tok] != satHead
		if (st.bsets[tok] != 0) != live {
			t.Fatalf("%s: token %d bitmap %#x inconsistent with head %d",
				label, tok, st.bsets[tok], st.heads[tok])
		}
	}

	for b := range d.index.buckets {
		bi := &d.index.buckets[b]
		if !reflect.DeepEqual(bi.members, wantMembers[b]) {
			t.Fatalf("%s: bucket %d members %v, want %v", label, b, bi.members, wantMembers[b])
		}
		wantLive := 0
		for _, x := range bi.members {
			if !d.isDead(int(x)) {
				wantLive++
			}
		}
		if bi.live != wantLive {
			t.Fatalf("%s: bucket %d live %d, want %d", label, b, bi.live, wantLive)
		}
		if len(bi.members) == 0 {
			continue
		}
		cmax, rmin, smin, smax := 0, 1<<30, 1<<30, 0
		for _, x := range bi.members {
			mt := &d.index.meta[x]
			if c := int(mt.constCnt); c > cmax {
				cmax = c
			}
			if r := int(mt.refLen); r < rmin {
				rmin = r
			}
			if s := int(mt.slots); s < smin {
				smin = s
			}
			if s := int(mt.slots); s > smax {
				smax = s
			}
		}
		if bi.cmax != cmax || bi.rmin != rmin || bi.smin != smin || bi.smax != smax {
			t.Fatalf("%s: bucket %d aggregates (%d,%d,%d,%d), want (%d,%d,%d,%d)",
				label, b, bi.cmax, bi.rmin, bi.smin, bi.smax, cmax, rmin, smin, smax)
		}
	}

	if len(d.index.meta) != len(d.templates) {
		t.Fatalf("%s: %d meta entries for %d templates", label, len(d.index.meta), len(d.templates))
	}
	for ti := range d.templates {
		tm := &d.templates[ti]
		mt := &d.index.meta[ti]
		if mt.bucket < 0 {
			// Compacted or restored tombstone: the payload must be gone too.
			if len(tm.Tokens) != 0 || !d.isDead(ti) {
				t.Fatalf("%s: template %d has bucket -1 but payload/live state", label, ti)
			}
			continue
		}
		slots := 0
		for _, w := range tm.Wild {
			if w {
				slots++
			}
		}
		if int(mt.refLen) != len(tm.Tokens) || int(mt.slots) != slots ||
			int(mt.constCnt) != len(tm.Tokens)-slots || int(mt.bucket) != bucketOf(len(tm.Tokens)-slots) {
			t.Fatalf("%s: template %d meta %+v inconsistent with template", label, ti, *mt)
		}
		if len(tm.Tokens) > align.WildBitCap {
			continue
		}
		wildMask, eqToks, eqMasks := align.WildEqMasks(tm.Tokens, tm.Wild)
		if mt.wildMask != wildMask || !reflect.DeepEqual(append([]int32{}, mt.eqToks...), append([]int32{}, eqToks...)) ||
			!reflect.DeepEqual(append([]uint64{}, mt.eqMasks...), append([]uint64{}, eqMasks...)) {
			t.Fatalf("%s: template %d mask table diverged from align.WildEqMasks", label, ti)
		}
	}
}

// TestPersistRoundTripVerdicts saves a detector that holds both mined
// templates and pending documents, loads it into a fresh process-alike,
// replays the pending buffer (Save persists templates only), and then
// requires every subsequent Add verdict — match, buffer, and post-Flush
// assignment — to agree with the never-persisted original. The rebuilt
// inverted index must equal a from-scratch recomputation on both sides.
func TestPersistRoundTripVerdicts(t *testing.T) {
	d1 := New(core.Options{})
	d1.BatchSize = 1 << 30
	d1.AddBatch(append(campaign(20), noise(300, 31)...))
	d1.Flush()
	if d1.NumTemplates() == 0 {
		t.Fatal("no template mined")
	}
	// Leave documents pending: a second campaign too small to have been
	// mined yet, plus fresh noise.
	var pendingTexts []string
	for i := 0; i < 6; i++ {
		pendingTexts = append(pendingTexts,
			fmt.Sprintf("grand winter raffle enter the diamond draw tonight code gw%04d only", i))
	}
	pendingTexts = append(pendingTexts, noise(40, 32)...)
	d1.AddBatch(pendingTexts)
	if d1.Pending() != len(pendingTexts) {
		t.Fatalf("pending = %d, want %d", d1.Pending(), len(pendingTexts))
	}

	var buf bytes.Buffer
	if err := d1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()

	d2 := New(core.Options{})
	d2.BatchSize = 1 << 30
	if err := d2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	checkIndex(t, "d1 after mining", d1)
	checkIndex(t, "d2 after load", d2)

	// Loaded templates serialize back to the identical state.
	var buf2 bytes.Buffer
	if err := d2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != saved {
		t.Fatal("save → load → save is not a fixed point")
	}

	// The pending buffer (texts and ids) travels with the state — no
	// replay needed. Require identical verdicts for a stream of new
	// documents spanning all three outcomes.
	if d1.Pending() != d2.Pending() {
		t.Fatalf("pending after load: %d vs %d", d2.Pending(), d1.Pending())
	}

	probes := []string{
		"limited offer buy the premium golden package today visit site8888.example now",
		"grand winter raffle enter the diamond draw tonight code gw9999 only",
		"completely unrelated musing about rivers and violins tonight",
		"limited offer buy the premium golden package today visit site8889.example now",
	}
	var ids1, ids2 []int
	for _, p := range probes {
		ids1 = append(ids1, d1.Add(p))
		ids2 = append(ids2, d2.Add(p))
	}
	for i := range probes {
		a1, a2 := d1.Assignment(ids1[i]), d2.Assignment(ids2[i])
		if a1 != a2 {
			t.Fatalf("probe %d: verdict %+v (original) vs %+v (loaded)", i, a1, a2)
		}
	}
	if d1.Pending() != d2.Pending() {
		t.Fatalf("pending %d vs %d", d1.Pending(), d2.Pending())
	}

	// Flush both: mining the identical buffer must mine identical
	// templates, keep the indexes rebuild-consistent, and give the new
	// documents matching assignments.
	d1.Flush()
	d2.Flush()
	if d1.NumTemplates() != d2.NumTemplates() {
		t.Fatalf("templates after flush: %d vs %d", d1.NumTemplates(), d2.NumTemplates())
	}
	for ti := range d1.templates {
		if d1.templates[ti].DocCount != d2.templates[ti].DocCount {
			t.Fatalf("template %d DocCount %d vs %d",
				ti, d1.templates[ti].DocCount, d2.templates[ti].DocCount)
		}
		if !reflect.DeepEqual(d1.templates[ti].SlotWords, d2.templates[ti].SlotWords) {
			t.Fatalf("template %d SlotWords differ", ti)
		}
	}
	checkIndex(t, "d1 after second flush", d1)
	checkIndex(t, "d2 after second flush", d2)
	for i := range probes {
		if a1, a2 := d1.Assignment(ids1[i]), d2.Assignment(ids2[i]); a1 != a2 {
			t.Fatalf("probe %d after flush: %+v vs %+v", i, a1, a2)
		}
	}
}
