package stream

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"infoshield/internal/core"
)

// expectedIndex recomputes the inverted candidate-pruning index from a
// template set from scratch — an independent reimplementation the tests
// compare the incrementally-maintained d.index against.
func expectedIndex(templates []Template) map[int][]posting {
	want := make(map[int][]posting)
	for ti := range templates {
		t := &templates[ti]
		counts := make(map[int]int)
		order := make([]int, 0, len(t.Tokens))
		for i, tok := range t.Tokens {
			if t.Wild[i] {
				continue
			}
			if counts[tok] == 0 {
				order = append(order, tok)
			}
			counts[tok]++
		}
		for _, tok := range order {
			want[tok] = append(want[tok], posting{template: ti, count: counts[tok]})
		}
	}
	return want
}

func checkIndex(t *testing.T, label string, d *Detector) {
	t.Helper()
	want := expectedIndex(d.templates)
	if len(want) == 0 {
		want = nil
	}
	got := d.index.postings
	if len(got) == 0 {
		got = nil
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: inverted index diverged from a full rebuild (%d vs %d tokens)",
			label, len(got), len(want))
	}
}

// TestPersistRoundTripVerdicts saves a detector that holds both mined
// templates and pending documents, loads it into a fresh process-alike,
// replays the pending buffer (Save persists templates only), and then
// requires every subsequent Add verdict — match, buffer, and post-Flush
// assignment — to agree with the never-persisted original. The rebuilt
// inverted index must equal a from-scratch recomputation on both sides.
func TestPersistRoundTripVerdicts(t *testing.T) {
	d1 := New(core.Options{})
	d1.BatchSize = 1 << 30
	d1.AddBatch(append(campaign(20), noise(300, 31)...))
	d1.Flush()
	if d1.NumTemplates() == 0 {
		t.Fatal("no template mined")
	}
	// Leave documents pending: a second campaign too small to have been
	// mined yet, plus fresh noise.
	var pendingTexts []string
	for i := 0; i < 6; i++ {
		pendingTexts = append(pendingTexts,
			fmt.Sprintf("grand winter raffle enter the diamond draw tonight code gw%04d only", i))
	}
	pendingTexts = append(pendingTexts, noise(40, 32)...)
	d1.AddBatch(pendingTexts)
	if d1.Pending() != len(pendingTexts) {
		t.Fatalf("pending = %d, want %d", d1.Pending(), len(pendingTexts))
	}

	var buf bytes.Buffer
	if err := d1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()

	d2 := New(core.Options{})
	d2.BatchSize = 1 << 30
	if err := d2.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	checkIndex(t, "d1 after mining", d1)
	checkIndex(t, "d2 after load", d2)

	// Loaded templates serialize back to the identical state.
	var buf2 bytes.Buffer
	if err := d2.Save(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != saved {
		t.Fatal("save → load → save is not a fixed point")
	}

	// Replay the pending buffer so both detectors hold the same state up
	// to process-local ids, then require identical verdicts for a stream
	// of new documents spanning all three outcomes.
	d2.AddBatch(pendingTexts)

	probes := []string{
		"limited offer buy the premium golden package today visit site8888.example now",
		"grand winter raffle enter the diamond draw tonight code gw9999 only",
		"completely unrelated musing about rivers and violins tonight",
		"limited offer buy the premium golden package today visit site8889.example now",
	}
	var ids1, ids2 []int
	for _, p := range probes {
		ids1 = append(ids1, d1.Add(p))
		ids2 = append(ids2, d2.Add(p))
	}
	for i := range probes {
		a1, a2 := d1.Assignment(ids1[i]), d2.Assignment(ids2[i])
		if a1 != a2 {
			t.Fatalf("probe %d: verdict %+v (original) vs %+v (loaded)", i, a1, a2)
		}
	}
	if d1.Pending() != d2.Pending() {
		t.Fatalf("pending %d vs %d", d1.Pending(), d2.Pending())
	}

	// Flush both: mining the identical buffer must mine identical
	// templates, keep the indexes rebuild-consistent, and give the new
	// documents matching assignments.
	d1.Flush()
	d2.Flush()
	if d1.NumTemplates() != d2.NumTemplates() {
		t.Fatalf("templates after flush: %d vs %d", d1.NumTemplates(), d2.NumTemplates())
	}
	for ti := range d1.templates {
		if d1.templates[ti].DocCount != d2.templates[ti].DocCount {
			t.Fatalf("template %d DocCount %d vs %d",
				ti, d1.templates[ti].DocCount, d2.templates[ti].DocCount)
		}
		if !reflect.DeepEqual(d1.templates[ti].SlotWords, d2.templates[ti].SlotWords) {
			t.Fatalf("template %d SlotWords differ", ti)
		}
	}
	checkIndex(t, "d1 after second flush", d1)
	checkIndex(t, "d2 after second flush", d2)
	for i := range probes {
		if a1, a2 := d1.Assignment(ids1[i]), d2.Assignment(ids2[i]); a1 != a2 {
			t.Fatalf("probe %d after flush: %+v vs %+v", i, a1, a2)
		}
	}
}
