package stream

import (
	"sort"

	"infoshield/internal/align"
	"infoshield/internal/mdl"
)

// Template lifecycle: the mechanisms that retire templates so a
// long-running detector's template set — and with it probe cost, arena
// memory, and snapshot size — stays bounded on an unbounded stream.
//
// Retirement never reindexes: a retired template becomes a tombstone
// (dead[ti] = true) whose slot survives, so template ids handed to
// callers stay stable across merges and evictions. The tiered index
// skips tombstones at probe time (see match); once tombstones are a
// meaningful fraction of the live set, rebuildIndex compacts postings,
// bucket aggregates, and arenas in one pass.
//
// Every lifecycle decision is a pure function of the ingest sequence:
// the recency clock is the document id (not wall time), merge candidates
// come from the deterministic tiered probe, and eviction order is a
// total order over (lastMatch, DocCount, index). Write-ahead-log replay
// therefore reproduces retirements exactly — no lifecycle events need
// logging beyond the documents themselves.

const (
	// rebuildMinTombs is the tombstone count below which the index is
	// never rebuilt (a handful of tombstones costs a few skipped
	// postings, not a rebuild).
	rebuildMinTombs = 32
	// rebuildFraction triggers a rebuild once tombstones accumulated
	// since the last one exceed 1/rebuildFraction of the live set.
	rebuildFraction = 4
)

// isDead reports whether template ti is a lifecycle tombstone.
func (d *Detector) isDead(ti int) bool { return d.anyDead && d.dead[ti] }

// resolve follows merge forward pointers to the surviving template.
// Chains terminate at a live template or at a tombstone retired without
// a successor (evicted/aged-out), whose id is returned as-is.
func (d *Detector) resolve(ti int) int {
	if !d.anyDead {
		return ti
	}
	for d.dead[ti] && d.forward[ti] >= 0 {
		ti = int(d.forward[ti])
	}
	return ti
}

// kill retires template ti into a tombstone, forwarding its assignments
// to fwd (-1 for none). The index is not rebuilt here — probes skip the
// tombstone via dead[] until rebuildIndex compacts it away.
func (d *Detector) kill(ti int, fwd int32) {
	d.dead[ti] = true
	d.forward[ti] = fwd
	d.anyDead = true
	d.liveCount--
	d.tombSinceRebuild++
	if b := d.index.meta[ti].bucket; b >= 0 {
		d.index.buckets[b].live--
	}
}

// probeSeq renders template ti as a document: constants verbatim, each
// slot as a fresh sentinel token at or above the vocabulary size.
// Sentinels can never equal a registered constant (token ids are dense
// below vocab.Size()) and never reach a postings chain (heads is at most
// vocab.Size() long), so probing with the sequence measures exactly how
// another template's constants align with this one's — slots stay
// alignable but never fake a constant match.
func (d *Detector) probeSeq(ti int) []int {
	t := &d.templates[ti]
	seq := make([]int, len(t.Tokens))
	slot := 0
	for i, tok := range t.Tokens {
		if t.Wild[i] {
			seq[i] = d.vocab.Size() + slot
			slot++
			continue
		}
		seq[i] = tok
	}
	return seq
}

// encodeCost is the exact matched cost of encoding seq with template ti
// under a numT-template model — the same expression the serving probe
// evaluates (PairwiseWildScratch + DataCostMatched with the S(1) slot
// vector).
func (d *Detector) encodeCost(ti int, seq []int, numT int) float64 {
	t := &d.templates[ti]
	a := align.PairwiseWildScratch(t.Tokens, t.Wild, seq, &d.sc.wild)
	return mdl.DataCostMatched(mdl.AlignStats{
		AlignLen:   a.Len(),
		Unmatched:  a.Distance(),
		AddedWords: a.Subs + a.Inss,
		SlotWords:  t.SlotWords,
	}, numT, d.vocab.Size())
}

// tryMerge tests freshly mined template ti against the existing set and
// merges when MDL says two templates describe one campaign: ti's
// consensus sequence probes the tiered index with ti itself temporarily
// tombstoned, and a hit means some other template encodes ti's consensus
// more cheaply than standalone — the same C(d|T) < C(d) criterion that
// admits documents. The survivor is whichever side encodes the *other's*
// consensus with the larger saving (MDL-preferred direction); the loser
// tombstones with a forward pointer so its assignments resolve to the
// survivor.
func (d *Detector) tryMerge(ti int) {
	seq := d.probeSeq(ti)
	if len(seq) == 0 || d.liveCount < 2 {
		return
	}
	// Probe with ti out of the model so it cannot match itself and the
	// lg t term reflects the counterfactual set. The throwaway Stats
	// keeps merge probes out of the serving counters (their invariants
	// are pinned per ingested document).
	bi := &d.index.buckets[d.index.meta[ti].bucket]
	savedAny := d.anyDead
	d.dead[ti] = true
	d.anyDead = true
	d.liveCount--
	bi.live--
	var tmp Stats
	other := d.match(seq, d.vocab.Size(), &d.sc, &tmp)
	d.dead[ti] = false
	d.anyDead = savedAny
	d.liveCount++
	bi.live++
	if other < 0 {
		return
	}

	// Direction: keep the template that compresses the other better.
	numT := d.liveCount - 1 // the post-merge model size
	seqO := d.probeSeq(other)
	saveKeepOther := mdl.DocCost(len(seq), d.vocab.Size()) - d.encodeCost(other, seq, numT)
	saveKeepNew := mdl.DocCost(len(seqO), d.vocab.Size()) - d.encodeCost(ti, seqO, numT)
	keeper, loser := other, ti
	if saveKeepNew > saveKeepOther {
		keeper, loser = ti, other
	}
	d.templates[keeper].DocCount += d.templates[loser].DocCount
	d.templates[loser].DocCount = 0
	if d.lastMatch[loser] > d.lastMatch[keeper] {
		d.lastMatch[keeper] = d.lastMatch[loser]
	}
	d.kill(loser, int32(keeper))
	d.stats.TemplatesMerged++
}

// lifecyclePass runs after every mining pass: merge each new template,
// age out stale ones, evict down to the cap, and compact the index when
// tombstones pile up. Order matters and is fixed — merge first (a new
// near-duplicate should fold into its twin, not evict it), then TTL,
// then the cap — so replay reproduces the exact retirement sequence.
func (d *Detector) lifecyclePass(newTIs []int) {
	lc := d.Lifecycle
	if !lc.bounded() {
		return
	}
	if lc.Merge {
		for _, ti := range newTIs {
			if d.dead[ti] {
				continue
			}
			d.tryMerge(ti)
		}
	}
	if lc.TTL > 0 {
		for ti := range d.templates {
			if d.isDead(ti) {
				continue
			}
			if d.nextID-d.lastMatch[ti] > lc.TTL {
				d.kill(ti, -1)
				d.stats.TemplatesAged++
			}
		}
	}
	if lc.MaxTemplates > 0 && d.liveCount > lc.MaxTemplates {
		live := make([]int, 0, d.liveCount)
		for ti := range d.templates {
			if !d.dead[ti] {
				live = append(live, ti)
			}
		}
		sort.Slice(live, func(a, b int) bool {
			ta, tb := live[a], live[b]
			if d.lastMatch[ta] != d.lastMatch[tb] {
				return d.lastMatch[ta] < d.lastMatch[tb]
			}
			if d.templates[ta].DocCount != d.templates[tb].DocCount {
				return d.templates[ta].DocCount < d.templates[tb].DocCount
			}
			return ta < tb
		})
		excess := d.liveCount - lc.MaxTemplates
		for _, ti := range live[:excess] {
			d.kill(ti, -1)
			d.stats.TemplatesEvicted++
		}
	}
	if d.tombSinceRebuild >= rebuildMinTombs && d.tombSinceRebuild*rebuildFraction >= d.liveCount {
		d.rebuildIndex()
	}
}

// rebuildIndex re-registers every live template into a fresh tiered
// index and fresh arenas, zeroing tombstoned payloads so their postings,
// bucket aggregates, and arena bytes are actually reclaimed. Template
// indices are preserved (tombstones keep a dead meta slot), so nothing
// outside the index changes.
func (d *Detector) rebuildIndex() {
	old := &d.index
	fresh := tmplIndex{
		regCount: old.regCount, // pooled registration scratch (all-zero between adds)
		regMask:  old.regMask,
		regOrder: old.regOrder,
		regToks:  old.regToks,
		regMasks: old.regMasks,
	}
	var tokA arena[int]
	var wildA arena[bool]
	d.index = fresh
	for ti := range d.templates {
		if d.dead[ti] {
			d.templates[ti] = Template{}
			d.index.addDead()
			continue
		}
		t := &d.templates[ti]
		t.Tokens = tokA.copyIn(t.Tokens)
		t.Wild = wildA.copyIn(t.Wild)
		d.index.add(ti, t.Tokens, t.Wild, len(t.SlotWords))
	}
	d.tokA = tokA
	d.wildA = wildA
	d.tombSinceRebuild = 0
}
