package stream

import (
	"math"
	"sort"

	"infoshield/internal/core"
	"infoshield/internal/tfidf"
)

// The incremental miner replaces the from-scratch batch pipeline on
// Flush when Lifecycle.Incremental is set. Instead of re-running
// coarse+fine over an ever-growing buffer, it keeps cross-flush state —
// a document-frequency table and a bounded window of recent unmatched
// documents — and per flush only:
//
//  1. extracts phrases for the *new* pending documents (the tokens were
//     already encoded at ingest; nothing is re-tokenized),
//  2. selects their top phrases against the window-wide DF table,
//  3. re-clusters only the documents whose selections share a phrase
//     with a new document (plus the new documents themselves), and
//  4. hands those components to the same fine pass (core.Refine) the
//     batch pipeline uses.
//
// Amortized flush cost is proportional to the batch, not the history,
// and campaigns that trickle in below BatchSize per flush still
// assemble: their early members wait in the window and join the
// component the moment a later flush re-touches their phrases —
// upgrading their noise verdicts, which the batch path would have
// frozen at -1.
//
// Two deliberate simplifications versus the batch coarse pass, both
// deterministic: phrase identity is the 64-bit mixed rolling hash
// (collisions merge two phrases instead of chaining — across a bounded
// window the probability is negligible, and a merge only over-connects
// a component, never corrupts state), and component growth always uses
// the permissive single-shared-phrase rule (Options.MinSharedPhrases is
// a batch-pipeline ablation knob). Score ties break by (position,
// length, hash) instead of the batch extractor's lexicographic token
// order. Incremental mining is therefore equivalent in mechanism, not
// byte-identical in output, to the batch path — the byte-identity gate
// covers the default (non-incremental) configuration.

// mineDoc is one unmatched document retained in the miner's window.
type mineDoc struct {
	id    int      // caller-visible document id
	toks  []int    // detector-vocab token ids (owned; encoded at ingest)
	dist  []uint64 // distinct phrase hashes — the doc's DF contributions
	sel   []uint64 // selected top-phrase hashes
	epoch int      // flush epoch of arrival (age = current epoch − epoch)
}

// mineState is the cross-flush miner state.
type mineState struct {
	// df counts, per phrase hash, the window documents containing the
	// phrase. Invariant: df is exactly the multiset union of docs[i].dist
	// plus, transiently inside a flush, the new batch's contributions —
	// every document that leaves the window (matched, aged, capped)
	// decrements its dist from df.
	df    map[uint64]int
	docs  []mineDoc // retained unmatched docs, ascending id
	epoch int
}

func (ms *mineState) decDF(dist []uint64) {
	for _, h := range dist {
		if c := ms.df[h] - 1; c > 0 {
			ms.df[h] = c
		} else {
			delete(ms.df, h)
		}
	}
}

// minePhrase is one distinct phrase of one document during extraction.
type minePhrase struct {
	hash uint64
	tf   int32
	pos  int32 // first occurrence
	n    int32 // length in tokens
}

// minePhrases builds the distinct phrase set (n-grams of 1..maxN token
// ids) of one document — the rolling-hash mirror of tfidf.phraseSet,
// with hash equality as identity (see the package comment above).
func minePhrases(toks []int, maxN int) []minePhrase {
	idx := make(map[uint64]int, len(toks)*maxN)
	var list []minePhrase
	for i := 0; i < len(toks); i++ {
		var h uint64
		for n := 1; n <= maxN && i+n <= len(toks); n++ {
			h = tfidf.PhraseHashExtend(h, toks[i+n-1])
			k := tfidf.PhraseHashMix(h)
			if li, ok := idx[k]; ok {
				list[li].tf++
				continue
			}
			idx[k] = len(list)
			list = append(list, minePhrase{hash: k, tf: 1, pos: int32(i), n: int32(n)})
		}
	}
	return list
}

// mineSelect picks a document's top phrases against the window DF table,
// mirroring the batch extractor's selection dynamics: budget is
// ⌈frac·distinct⌉ (min 1), zero-score phrases (df = N) are excluded, an
// idf floor at floorFrac of the document's best keeps quota-filler
// phrases out, and positional diversity admits a phrase only when its
// first occurrence covers no already-covered token.
func mineSelect(phrases []minePhrase, df map[uint64]int, nDocs, docLen int, frac, floorFrac float64) []uint64 {
	if len(phrases) == 0 {
		return nil
	}
	type scored struct {
		p     minePhrase
		idf   float64
		score float64
	}
	cand := make([]scored, 0, len(phrases))
	maxIdf := 0.0
	for _, p := range phrases {
		d := df[p.hash]
		if d <= 0 {
			continue
		}
		idf := math.Log(float64(nDocs) / float64(d))
		score := float64(p.tf) * idf
		if score <= 0 {
			continue
		}
		if idf > maxIdf {
			maxIdf = idf
		}
		cand = append(cand, scored{p, idf, score})
	}
	if len(cand) == 0 {
		return nil
	}
	sort.Slice(cand, func(a, b int) bool {
		if cand[a].score != cand[b].score {
			return cand[a].score > cand[b].score
		}
		if cand[a].p.pos != cand[b].p.pos {
			return cand[a].p.pos < cand[b].p.pos
		}
		if cand[a].p.n != cand[b].p.n {
			return cand[a].p.n < cand[b].p.n
		}
		return cand[a].p.hash < cand[b].p.hash
	})
	k := int(math.Ceil(frac * float64(len(phrases))))
	if k < 1 {
		k = 1
	}
	floor := maxIdf * floorFrac
	covered := make([]bool, docLen)
	var sel []uint64
	for _, c := range cand {
		if len(sel) >= k {
			break
		}
		if c.idf < floor {
			continue
		}
		fresh := true
		for p := c.p.pos; p < c.p.pos+c.p.n; p++ {
			if covered[p] {
				fresh = false
				break
			}
		}
		if !fresh {
			continue
		}
		for p := c.p.pos; p < c.p.pos+c.p.n; p++ {
			covered[p] = true
		}
		sel = append(sel, c.p.hash)
	}
	return sel
}

func (d *Detector) mineMaxN() int {
	if d.Options.MaxNgram > 0 {
		return d.Options.MaxNgram
	}
	return tfidf.DefaultMaxN
}

func (d *Detector) mineTopFraction() float64 {
	if d.Options.TopFraction > 0 {
		return d.Options.TopFraction
	}
	return tfidf.DefaultTopFraction
}

func (d *Detector) retainFlushes() int {
	if d.Lifecycle.RetainFlushes > 0 {
		return d.Lifecycle.RetainFlushes
	}
	return 8
}

func (d *Detector) retainDocs() int {
	if d.Lifecycle.RetainDocs > 0 {
		return d.Lifecycle.RetainDocs
	}
	return 8 * d.batchSize()
}

// distinctHashes lists a phrase set's hashes — the doc's DF footprint.
func distinctHashes(phrases []minePhrase) []uint64 {
	out := make([]uint64, len(phrases))
	for i, p := range phrases {
		out[i] = p.hash
	}
	return out
}

// flushIncremental is the incremental mining pass; see the package
// comment above for the shape. It returns the newly registered template
// indices for the lifecycle pass.
func (d *Detector) flushIncremental() []int {
	if d.mine == nil {
		d.mine = &mineState{df: make(map[uint64]int)}
	}
	ms := d.mine
	ms.epoch++

	// Age out, then cap, the retained window (oldest-first — docs is in
	// ascending id order, which is arrival order).
	retainF, retainD := d.retainFlushes(), d.retainDocs()
	keep := ms.docs[:0]
	for i := range ms.docs {
		if ms.epoch-ms.docs[i].epoch > retainF {
			ms.decDF(ms.docs[i].dist)
			continue
		}
		keep = append(keep, ms.docs[i])
	}
	if over := len(keep) - retainD; over > 0 {
		for i := 0; i < over; i++ {
			ms.decDF(keep[i].dist)
		}
		n := copy(keep, keep[over:])
		keep = keep[:n]
	}
	ms.docs = keep

	// Extract the new batch's phrases and fold them into the DF table
	// before selection, so new near-duplicates see each other's df.
	maxN := d.mineMaxN()
	newPhrases := make([][]minePhrase, len(d.pendingToks))
	for i, toks := range d.pendingToks {
		ps := minePhrases(toks, maxN)
		newPhrases[i] = ps
		for _, p := range ps {
			ms.df[p.hash]++
		}
	}
	nWindow := len(ms.docs) + len(d.pendingToks)
	frac, floorFrac := d.mineTopFraction(), tfidf.DefaultRelativeFloor
	newSel := make([][]uint64, len(d.pendingToks))
	touched := make(map[uint64]struct{})
	for i, toks := range d.pendingToks {
		sel := mineSelect(newPhrases[i], ms.df, nWindow, len(toks), frac, floorFrac)
		newSel[i] = sel
		for _, h := range sel {
			touched[h] = struct{}{}
		}
	}

	// Candidate set: retained docs whose selections intersect the new
	// batch's (the touched components), then the new docs — ascending id
	// within each group, groups in id order since retained ids precede
	// pending ids. mineAll (the benchmark's from-scratch baseline)
	// re-clusters the whole window instead, paying the stateless miner's
	// full cost: every retained document re-extracts its phrases and
	// re-selects against the window DF. (The maintained DF table equals a
	// fresh count over window + batch by the invariant above, so no
	// recount is needed for the baseline to be faithful.)
	var candIdx []int // retained candidates' positions in ms.docs
	var localToks [][]int
	var localSel [][]uint64
	var localIDs []int
	for i := range ms.docs {
		doc := &ms.docs[i]
		sel := doc.sel
		if d.mineAll {
			ps := minePhrases(doc.toks, maxN)
			sel = mineSelect(ps, ms.df, nWindow, len(doc.toks), frac, floorFrac)
		} else {
			hit := false
			for _, h := range doc.sel {
				if _, ok := touched[h]; ok {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		}
		candIdx = append(candIdx, i)
		localToks = append(localToks, doc.toks)
		localSel = append(localSel, sel)
		localIDs = append(localIDs, doc.id)
	}
	reused := len(candIdx)
	newBase := len(localIDs)
	for i := range d.pendingToks {
		localToks = append(localToks, d.pendingToks[i])
		localSel = append(localSel, newSel[i])
		localIDs = append(localIDs, d.pendingIDs[i])
	}
	d.stats.MineReusedDocs += reused
	d.stats.MineClusteredDocs += len(localIDs)

	// Components over the shared-phrase graph (union-find keyed by
	// first-seen phrase owner), ≥ 2 members, ordered by least member.
	parent := make([]int, len(localIDs))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	owner := make(map[uint64]int, len(touched))
	for l, sel := range localSel {
		for _, h := range sel {
			if o, ok := owner[h]; ok {
				ra, rb := find(o), find(l)
				if ra != rb {
					if ra > rb {
						ra, rb = rb, ra
					}
					parent[rb] = ra
				}
			} else {
				owner[h] = l
			}
		}
	}
	groups := make(map[int][]int)
	for l := range localIDs {
		r := find(l)
		groups[r] = append(groups[r], l)
	}
	roots := make([]int, 0, len(groups))
	for r, g := range groups {
		if len(g) >= 2 {
			roots = append(roots, r)
		}
	}
	sort.Ints(roots) // root is the least member, so this is least-member order
	coarse := make([][]int, 0, len(roots))
	for _, r := range roots {
		coarse = append(coarse, groups[r])
	}

	// Fine pass: same MDL mining as the batch pipeline, over detector-
	// vocab tokens, so accepted templates register without re-encoding.
	topLocal := make([][]tfidf.PhraseID, len(localIDs))
	for l, sel := range localSel {
		ps := make([]tfidf.PhraseID, len(sel))
		for j, h := range sel {
			ps[j] = tfidf.PhraseID{Hash: h}
		}
		topLocal[l] = ps
	}
	refined, _ := core.Refine(coarse, localToks, topLocal, d.vocab.Size(), d.Options)

	matched := make([]bool, len(localIDs))
	var newTIs []int
	for ci := range refined {
		for _, tr := range refined[ci] {
			tokens := make([]int, tr.Template.Len())
			wild := make([]bool, tr.Template.Len())
			for i, tid := range tr.Template.TokenIDs {
				if tr.Template.IsSlot[i] {
					wild[i] = true
					if tid >= 0 {
						tokens[i] = tid
					}
					continue
				}
				tokens[i] = tid
			}
			ti := len(d.templates)
			d.register(Template{
				Pattern:  tr.Template,
				Wild:     wild,
				Tokens:   tokens,
				DocCount: len(tr.Docs),
			})
			d.stats.TemplatesMined++
			newTIs = append(newTIs, ti)
			for _, l := range tr.Docs {
				d.assignments[localIDs[l]] = ti
				matched[l] = true
			}
		}
	}

	// Matched documents leave the window (with their DF contributions);
	// unmatched new documents join it.
	if reused > 0 {
		rm := make(map[int]bool, reused)
		for k := 0; k < reused; k++ {
			if matched[k] {
				rm[candIdx[k]] = true
			}
		}
		if len(rm) > 0 {
			keep := ms.docs[:0]
			for i := range ms.docs {
				if rm[i] {
					ms.decDF(ms.docs[i].dist)
					continue
				}
				keep = append(keep, ms.docs[i])
			}
			ms.docs = keep
		}
	}
	for i := range d.pendingToks {
		if matched[newBase+i] {
			ms.decDF(distinctHashes(newPhrases[i]))
			continue
		}
		ms.docs = append(ms.docs, mineDoc{
			id:    d.pendingIDs[i],
			toks:  d.pendingToks[i],
			dist:  distinctHashes(newPhrases[i]),
			sel:   newSel[i],
			epoch: ms.epoch,
		})
	}
	return newTIs
}
