// Package par provides the small worker-pool primitives shared by the
// pipeline's parallel stages (tokenization, phrase extraction, LSH
// signatures, DF-shard merging). Everything here is deterministic in its
// work assignment: items are split into contiguous chunks in index order,
// so a caller that writes result[i] from worker code gets the same layout
// regardless of how many workers actually run.
package par

import (
	"runtime"
	"sync"
)

// Workers normalizes a worker-count knob: values <= 0 select GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Ranges splits [0, n) into at most workers contiguous chunks and calls
// fn(lo, hi) for each chunk concurrently, returning when all chunks are
// done. Chunk boundaries depend only on n and workers, never on
// scheduling. workers <= 0 selects GOMAXPROCS; n <= 0 is a no-op.
func Ranges(n, workers int, fn func(lo, hi int)) {
	IndexedRanges(n, workers, func(_, lo, hi int) { fn(lo, hi) })
}

// IndexedRanges is Ranges with the chunk's index passed to fn: chunk w
// covers [w*chunkSize, ...), so chunk indices enumerate the chunks in
// ascending item order. The index is what lets callers keep worker-local
// state (e.g. per-worker count maps) and later merge it in a
// deterministic, item-ordered sequence. Indices are < Workers(workers).
func IndexedRanges(n, workers int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, 0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for w, lo := 0, 0; lo < n; w, lo = w+1, lo+chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// Each calls fn(i) for every i in [0, n) across workers goroutines, in
// contiguous chunks. It is Ranges with a per-item callback.
func Each(n, workers int, fn func(i int)) {
	Ranges(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Map fills out[i] = fn(i, scratch) for every index of out, fanning the
// work over contiguous chunks like IndexedRanges with one scratch per
// chunk from newScratch (called with the chunk index, so a caller keeping
// per-worker state — stats counters, pooled DP buffers — can hand out
// long-lived slots and later fold them in ascending chunk order). Results
// land keyed by index, so the join is ascending by construction and the
// output is identical for any worker count whenever fn(i) is a pure
// function of i and its scratch is written by one goroutine at a time.
func Map[T, S any](out []T, workers int, newScratch func(w int) S, fn func(i int, scratch S) T) {
	IndexedRanges(len(out), workers, func(w, lo, hi int) {
		scratch := newScratch(w)
		for i := lo; i < hi; i++ {
			out[i] = fn(i, scratch)
		}
	})
}

// Do runs each task concurrently, bounded by workers, and waits for all.
// Tasks are started in slice order.
func Do(workers int, tasks ...func()) {
	Each(len(tasks), workers, func(i int) { tasks[i]() })
}

// Budget is a pool-wide parallelism allowance: a fixed number of tokens,
// each standing for one goroutine's worth of concurrency. Long-lived pool
// workers hold one token while they work; a worker that wants to fan out
// internally borrows extra tokens non-blockingly, so nested parallelism
// soaks up exactly the capacity idle workers have released and the total
// never exceeds the budget. A nil *Budget grants nothing — callers run
// their fan-out inline — which keeps single-threaded paths trivially
// correct.
type Budget struct {
	tokens chan struct{}
}

// NewBudget creates a budget of n tokens (n < 1 is clamped to 1).
func NewBudget(n int) *Budget {
	if n < 1 {
		n = 1
	}
	b := &Budget{tokens: make(chan struct{}, n)}
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
	return b
}

// Acquire blocks until one token is available and takes it.
func (b *Budget) Acquire() {
	if b == nil {
		return
	}
	<-b.tokens
}

// TryAcquire takes up to max tokens without blocking and returns how many
// it got (0 on a nil budget).
func (b *Budget) TryAcquire(max int) int {
	if b == nil {
		return 0
	}
	got := 0
	for got < max {
		select {
		case <-b.tokens:
			got++
		default:
			return got
		}
	}
	return got
}

// Release returns n tokens to the budget.
func (b *Budget) Release(n int) {
	if b == nil {
		return
	}
	for i := 0; i < n; i++ {
		b.tokens <- struct{}{}
	}
}
