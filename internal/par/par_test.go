package par

import (
	"sync/atomic"
	"testing"
)

func TestRangesCoversAllOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100} {
			hits := make([]int32, n)
			Ranges(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad range [%d,%d) for n=%d workers=%d", lo, hi, n, workers)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestRangesChunksAreDeterministic(t *testing.T) {
	collect := func() map[int]int {
		chunks := make(map[int]int)
		var mu chan struct{} = make(chan struct{}, 1)
		mu <- struct{}{}
		Ranges(10, 3, func(lo, hi int) {
			<-mu
			chunks[lo] = hi
			mu <- struct{}{}
		})
		return chunks
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("chunking not deterministic: %v vs %v", a, b)
	}
	for lo, hi := range a {
		if b[lo] != hi {
			t.Fatalf("chunking not deterministic: %v vs %v", a, b)
		}
	}
}

func TestEachAndDo(t *testing.T) {
	var sum int64
	Each(100, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Errorf("Each sum = %d", sum)
	}
	var calls int64
	Do(2, func() { atomic.AddInt64(&calls, 1) }, func() { atomic.AddInt64(&calls, 1) })
	if calls != 2 {
		t.Errorf("Do calls = %d", calls)
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("Workers must default to >= 1")
	}
	if Workers(5) != 5 {
		t.Error("explicit worker count not respected")
	}
}
