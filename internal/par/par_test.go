package par

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

func TestRangesCoversAllOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100} {
			hits := make([]int32, n)
			Ranges(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("bad range [%d,%d) for n=%d workers=%d", lo, hi, n, workers)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d workers=%d: index %d visited %d times", n, workers, i, h)
				}
			}
		}
	}
}

func TestRangesChunksAreDeterministic(t *testing.T) {
	collect := func() map[int]int {
		chunks := make(map[int]int)
		var mu chan struct{} = make(chan struct{}, 1)
		mu <- struct{}{}
		Ranges(10, 3, func(lo, hi int) {
			<-mu
			chunks[lo] = hi
			mu <- struct{}{}
		})
		return chunks
	}
	a, b := collect(), collect()
	if len(a) != len(b) {
		t.Fatalf("chunking not deterministic: %v vs %v", a, b)
	}
	for lo, hi := range a {
		if b[lo] != hi {
			t.Fatalf("chunking not deterministic: %v vs %v", a, b)
		}
	}
}

func TestEachAndDo(t *testing.T) {
	var sum int64
	Each(100, 4, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if sum != 4950 {
		t.Errorf("Each sum = %d", sum)
	}
	var calls int64
	Do(2, func() { atomic.AddInt64(&calls, 1) }, func() { atomic.AddInt64(&calls, 1) })
	if calls != 2 {
		t.Errorf("Do calls = %d", calls)
	}
}

func TestWorkersDefault(t *testing.T) {
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Error("Workers must default to >= 1")
	}
	if Workers(5) != 5 {
		t.Error("explicit worker count not respected")
	}
}

func TestBudget(t *testing.T) {
	b := NewBudget(3)
	if got := b.TryAcquire(5); got != 3 {
		t.Fatalf("TryAcquire(5) on fresh budget of 3 = %d, want 3", got)
	}
	if got := b.TryAcquire(1); got != 0 {
		t.Fatalf("TryAcquire on drained budget = %d, want 0", got)
	}
	b.Release(2)
	if got := b.TryAcquire(5); got != 2 {
		t.Fatalf("TryAcquire after Release(2) = %d, want 2", got)
	}
	b.Release(3)
	b.Acquire() // must not block: 3 tokens available
	if got := b.TryAcquire(5); got != 2 {
		t.Fatalf("TryAcquire after Acquire = %d, want 2", got)
	}
}

func TestBudgetNil(t *testing.T) {
	var b *Budget
	b.Acquire() // no-op, must not panic or block
	if got := b.TryAcquire(4); got != 0 {
		t.Fatalf("nil TryAcquire = %d, want 0", got)
	}
	b.Release(1)
}

func TestMapDeterministicAcrossWorkers(t *testing.T) {
	const n = 137
	want := make([]int, n)
	Map(want, 1, func(w int) *int { s := w; return &s }, func(i int, _ *int) int {
		return i * i
	})
	for _, workers := range []int{2, 3, 8, 64} {
		got := make([]int, n)
		scratches := make(map[int]bool)
		var mu sync.Mutex
		Map(got, workers, func(w int) *int {
			mu.Lock()
			scratches[w] = true
			mu.Unlock()
			s := w
			return &s
		}, func(i int, sc *int) int {
			return i * i
		})
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: output differs", workers)
		}
		if len(scratches) > Workers(workers) {
			t.Errorf("workers=%d: %d scratches created", workers, len(scratches))
		}
		for w := range scratches {
			if w < 0 || w >= Workers(workers) {
				t.Errorf("workers=%d: scratch index %d out of range", workers, w)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	Map(nil, 4, func(int) struct{} { return struct{}{} },
		func(int, struct{}) int { t.Fatal("fn called on empty out"); return 0 })
}
